// fuzz_verify — differential verification walkthrough and CI smoke gate.
//
//   ./fuzz_verify [scenarios] [report_dir]
//       Runs the adversarial fuzz matrix ({MESI, MOESI} x all four leakage
//       techniques x three decay times x {4-core snoop bus, 8/16-core
//       directory mesh} x seeds) with the reference-model oracle attached,
//       printing a summary. Exit code 1 on any divergence; failing
//       scenarios are captured, shrunk, and written to report_dir as .cdt
//       traces (CI uploads them as artifacts).
//
//   ./fuzz_verify --dmesh-smoke [scenarios] [report_dir]
//       The many-core CI gate: restricts the matrix to 16-core
//       directory-mesh cells (hot-home contention + all-to-all sharing
//       over the NoC, both protocols, all techniques). Default 64
//       scenarios.
//
//   ./fuzz_verify --demo-bug
//       Injects the test-only "dirty decay turn-off loses its write-back"
//       fault and shows the full pipeline: the oracle catching the stale
//       fill, and the shrinker minimizing the captured trace to a few-op
//       repro. Exit code 0 when the bug is caught (that is the expected
//       outcome), 1 when it slips through.
//
// This is also the reference for wiring the pieces manually: build a
// FuzzScenario (or your own SystemConfig), attach a DifferentialChecker
// via CmpSystem::set_observer, capture with workload::capture_factory,
// replay with verify::replay_scenario, minimize with verify::shrink_trace.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cdsim/verify/fuzz.hpp"
#include "cdsim/verify/shrink.hpp"
#include "cli_flags.hpp"

using namespace cdsim;

namespace {

int run_matrix(std::size_t scenarios, const char* report_dir,
               bool dmesh_only, bool three_level_only) {
  verify::FuzzOptions opts;
  opts.scenarios = scenarios;
  opts.dmesh_only = dmesh_only;
  opts.three_level_only = three_level_only;
  if (report_dir != nullptr) opts.report_dir = report_dir;

  std::printf("fuzz_verify: %zu scenarios across {MESI, MOESI} x "
              "{baseline, protocol, decay, sel_decay} x {1K, 2K, 4K} x %s\n",
              opts.scenarios,
              three_level_only
                  ? "{three-level dmesh16/dmesh8, decay at L1+L2+L3}"
                  : (dmesh_only
                         ? "{16-core directory mesh}"
                         : "{bus4-2L, dmesh16/8-2L, dmesh16/8-3L}"));
  const verify::FuzzReport rep = verify::run_fuzz(opts);

  std::printf("\n  scenarios run       %zu\n", rep.scenarios_run);
  std::printf("  loads checked       %llu\n",
              static_cast<unsigned long long>(rep.loads_checked));
  std::printf("  fills checked       %llu\n",
              static_cast<unsigned long long>(rep.fills_checked));
  std::printf("  writes serialized   %llu\n",
              static_cast<unsigned long long>(rep.writes_serialized));
  std::printf("  M->O downgrades     %llu  (MOESI scenarios)\n",
              static_cast<unsigned long long>(rep.owned_downgrades));
  std::printf("  divergences         %llu\n",
              static_cast<unsigned long long>(rep.divergences));

  if (rep.divergences == 0) {
    std::printf("\nOK: every load's value matched the reference model.\n");
    return 0;
  }
  std::printf("\nFAILURES (%zu captured):\n", rep.failures.size());
  for (const verify::FuzzFailure& f : rep.failures) {
    std::printf("  %s\n    trace %zu ops, shrunk to %zu ops\n",
                f.scenario.label().c_str(), f.trace.records.size(),
                f.shrunk.records.size());
    for (const verify::Divergence& d : f.divergences) {
      std::printf("    %s\n", verify::to_string(d).c_str());
    }
  }
  if (report_dir != nullptr) {
    std::printf("  repro traces written to %s/\n", report_dir);
  }
  return 1;
}

int demo_bug() {
  std::printf("fuzz_verify --demo-bug: injecting a lost dirty-decay "
              "write-back\n\n");
  // A scenario tuned so dirty lines decay and get re-read: MESI + full
  // decay with a tiny window, straddle-heavy fuzzing.
  verify::FuzzScenario sc;
  sc.protocol = coherence::Protocol::kMesi;
  sc.decay = decay::DecayConfig{decay::Technique::kDecay, 1024, 4};
  sc.seed = 12345;
  sc.fuzz.decay_window = 1024;
  sc.inject_writeback_loss = true;

  verify::ScenarioOutcome out = verify::run_scenario(sc);
  std::printf("run: %llu loads checked, %llu divergences\n",
              static_cast<unsigned long long>(out.loads_checked),
              static_cast<unsigned long long>(out.total_divergences));
  if (out.total_divergences == 0) {
    std::printf("ERROR: the injected bug was NOT caught\n");
    return 1;
  }
  std::printf("first divergence: %s\n",
              verify::to_string(out.divergences.front()).c_str());

  verify::ShrinkStats st;
  const workload::Trace shrunk = verify::shrink_trace(
      out.trace,
      [&sc](const workload::Trace& t) {
        return verify::replay_scenario(sc, t).total_divergences != 0;
      },
      &st);
  std::printf("shrink: %zu ops -> %zu ops in %zu replays\n", st.initial_ops,
              st.final_ops, st.replays);
  for (const workload::TraceRecord& r : shrunk.records) {
    const char* type = r.op.type == AccessType::kStore  ? "ST"
                       : r.op.type == AccessType::kLoad ? "LD"
                                                        : "IF";
    std::printf("  core %u  %s 0x%llx  gap=%u%s\n", r.core, type,
                static_cast<unsigned long long>(r.op.addr), r.op.gap,
                r.op.dependent ? " dep" : "");
  }
  std::printf("\nOK: the oracle caught the wrong-data bug and the shrinker "
              "reduced it\nto a %zu-op repro.\n", st.final_ops);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool dmesh_only = false;
  bool three_level_only = false;
  bool scenarios_set = false;
  bool bad_positional = false;
  std::size_t scenarios = 208;
  std::string report_dir;

  examples::FlagParser parser;
  parser.toggle("demo-bug", &demo)
      .toggle("dmesh-smoke", &dmesh_only)
      .toggle("three-level-smoke", &three_level_only)
      .on_positional([&](int pos, const std::string& arg) {
        if (pos == 0) {
          const unsigned long long v =
              std::strtoull(arg.c_str(), nullptr, 10);
          if (v == 0) {
            bad_positional = true;
            return;
          }
          scenarios = static_cast<std::size_t>(v);
          scenarios_set = true;
        } else if (pos == 1) {
          report_dir = arg;
        }
      });
  if (!parser.parse(argc, argv) || bad_positional) {
    std::fprintf(stderr,
                 "usage: %s [--dmesh-smoke|--three-level-smoke] "
                 "[scenarios] [report_dir] | --demo-bug\n",
                 argv[0]);
    return 2;
  }
  if (demo) return demo_bug();
  if ((dmesh_only || three_level_only) && !scenarios_set) scenarios = 64;
  return run_matrix(scenarios, report_dir.empty() ? nullptr
                                                  : report_dir.c_str(),
                    dmesh_only, three_level_only);
}
