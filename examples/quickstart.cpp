// quickstart — the smallest complete use of the cdsim public API.
//
// Simulates a 4-core CMP running the mpeg2dec workload model with 4 MB of
// total private L2, once for each leakage technique, and prints the
// headline comparison of the paper: energy reduction vs. IPC loss.
//
//   $ ./quickstart [instructions_per_core]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "cdsim/common/table.hpp"
#include "cdsim/sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace cdsim;

  std::uint64_t instr = 400000;  // small default: this is a demo
  if (argc > 1) instr = std::strtoull(argv[1], nullptr, 10);

  const auto& bench = workload::benchmark_by_name("mpeg2dec");
  sim::ExperimentRunner runner(instr);
  const std::uint64_t size = 4 * MiB;

  std::printf("cdsim quickstart: %s, %u cores, %llu MB total L2, %llu "
              "instructions/core\n\n",
              bench.config.name.c_str(), 4u,
              static_cast<unsigned long long>(size / MiB),
              static_cast<unsigned long long>(instr));

  TextTable t;
  t.row()
      .cell("technique")
      .cell("occupation")
      .cell("L2 miss rate")
      .cell("energy reduction")
      .cell("IPC loss");
  for (const auto& tech : sim::paper_technique_set()) {
    const sim::RelativeMetrics r = runner.relative(bench, size, tech);
    t.row()
        .cell(tech.label())
        .pct(r.occupation)
        .pct(r.miss_rate)
        .pct(r.energy_reduction)
        .pct(r.ipc_loss);
  }
  t.print(std::cout);
  return 0;
}
