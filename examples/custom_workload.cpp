// custom_workload — using the library beyond the paper's six benchmarks.
//
// Builds a synthetic model of an OLTP-style server workload (large shared
// read-mostly buffer pool, hot private scratch, modest log streaming) from
// scratch with SyntheticConfig, then evaluates every leakage technique on
// it. Demonstrates that the evaluation harness is fully parameterizable —
// the benchmark suite is just six presets of the same generator.

#include <cstdio>
#include <iostream>

#include "cdsim/common/table.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"

int main() {
  using namespace cdsim;

  // An OLTP-ish profile: big shared read-mostly pool with a hot front,
  // pointer-heavy private transactions, a steady log stream.
  workload::SyntheticConfig oltp;
  oltp.name = "oltp-like";
  oltp.mem_fraction = 0.34;
  oltp.store_fraction = 0.30;
  oltp.dependent_fraction = 0.45;  // B-tree descent is pointer chasing
  oltp.p_private = 0.35;
  oltp.p_shared_rw = 0.10;
  oltp.p_shared_ro = 0.35;
  oltp.p_stream2 = 0.0;
  oltp.gen_lines = 512;            // transaction scratch, short generations
  oltp.gen_accesses = 60000;
  oltp.num_generations = 20;
  oltp.hot_fraction = 0.20;
  oltp.hot_probability = 0.90;
  oltp.shared_rw_lines = 1024;     // lock/meta pages, migratory
  oltp.shared_chunk_lines = 16;
  oltp.shared_run = 4000;
  oltp.shared_write_fraction = 0.50;
  oltp.shared_ro_lines = 16384;    // 1 MiB buffer pool
  oltp.shared_ro_hot_lines = 512;
  oltp.shared_ro_sweep_fraction = 0.08;
  oltp.stream_lines = 128;         // redo log, always hot
  oltp.stream_wrap_cycles = 48 * 1024;
  oltp.stream_write_fraction = 0.70;

  const workload::Benchmark bench{oltp, /*scientific=*/false};

  std::printf("custom_workload: %s on a 4-core CMP, 4MB total L2\n\n",
              oltp.name.c_str());

  // Baseline first; then each technique, reusing the same config.
  auto run_one = [&](decay::Technique tech, Cycle dt) {
    decay::DecayConfig d{tech, dt, 4};
    sim::SystemConfig cfg = sim::make_system_config(4 * MiB, d);
    cfg.instructions_per_core = 1200000;
    return sim::run_config(cfg, bench);
  };

  const sim::RunMetrics base = run_one(decay::Technique::kBaseline, 0);

  TextTable t;
  t.row()
      .cell("technique")
      .cell("occupation")
      .cell("energy reduction")
      .cell("IPC loss")
      .cell("L2 miss rate");
  for (const auto& [tech, dt] :
       {std::pair{decay::Technique::kProtocol, Cycle{0}},
        std::pair{decay::Technique::kDecay, Cycle{512 * 1024}},
        std::pair{decay::Technique::kDecay, Cycle{64 * 1024}},
        std::pair{decay::Technique::kSelectiveDecay, Cycle{512 * 1024}},
        std::pair{decay::Technique::kSelectiveDecay, Cycle{64 * 1024}}}) {
    const sim::RunMetrics m = run_one(tech, dt);
    const sim::RelativeMetrics r = sim::relative_to(base, m);
    decay::DecayConfig label{tech, dt, 4};
    t.row()
        .cell(label.label())
        .pct(r.occupation)
        .pct(r.energy_reduction)
        .pct(r.ipc_loss)
        .pct(r.miss_rate);
  }
  t.print(std::cout);

  std::printf(
      "\nRead-mostly residency (buffer pool) dies clean, so Selective Decay\n"
      "captures most of full Decay's saving at a fraction of its IPC cost\n"
      "on this profile.\n");
  return 0;
}
