// diagnose — internal-counters dump for one configuration.
//
// Usage: diagnose <benchmark> <technique> <decay_time_k> [instr]
//                 [--topology=bus|dmesh] [--hierarchy=2|3] [--cores=N]
//                 [--trace-out=FILE] [--sample-out=FILE]
//                 [--sample-every=N] [--profile]
// Prints the per-level cache counters, interconnect/memory pressure, and
// energy ledger that the figure-level metrics summarize. Useful for
// calibrating workloads. The topology/hierarchy flags drive the full
// machine family: the paper's 4-core snoop bus, the scaled directory
// mesh, and the three-level machine (private L2s behind the shared
// home-banked L3) with the chosen technique active at every level.
//
// Observability (all strictly observer-only — metrics are bit-identical
// with and without them):
//   --trace-out=FILE     Chrome-trace-event JSON timeline (load it in
//                        Perfetto / chrome://tracing).
//   --sample-out=FILE    windowed time-series CSV.
//   --sample-every=N     sampling window in cycles (default 100000).
//   --profile            host wall-clock phase profile on stderr.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cdsim/common/host_timer.hpp"
#include "cdsim/obs/interval_sampler.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cli_flags.hpp"

using namespace cdsim;

int main(int argc, char** argv) {
  std::string bench_name = "mpeg2dec";
  std::string tech_name = "decay";
  Cycle decay_k = 512;
  std::uint64_t instr = 4000000;

  std::string trace_out;
  std::string sample_out;
  std::uint64_t sample_every = 100000;
  bool profile = false;
  bool bad_positional = false;

  examples::MachineFlags mf;
  examples::FlagParser parser;
  parser.machine(&mf)
      .str("trace-out", &trace_out)
      .str("sample-out", &sample_out)
      .u64("sample-every", &sample_every)
      .toggle("profile", &profile)
      .on_positional([&](int pos, const std::string& arg) {
        switch (pos) {
          case 0: bench_name = arg; break;
          case 1: tech_name = arg; break;
          case 2: decay_k = std::strtoull(arg.c_str(), nullptr, 10); break;
          case 3: instr = std::strtoull(arg.c_str(), nullptr, 10); break;
          default:
            std::fprintf(stderr, "unexpected argument \"%s\"\n", arg.c_str());
            bad_positional = true;
            break;
        }
      });
  if (!parser.parse(argc, argv) || bad_positional) return 2;
  const noc::Topology topology = mf.topology;
  const sim::Hierarchy hierarchy = mf.hierarchy;
  const std::uint32_t cores = mf.effective_cores();

  decay::DecayConfig d;
  if (tech_name == "baseline") d.technique = decay::Technique::kBaseline;
  else if (tech_name == "protocol") d.technique = decay::Technique::kProtocol;
  else if (tech_name == "decay") d.technique = decay::Technique::kDecay;
  else d.technique = decay::Technique::kSelectiveDecay;
  d.decay_time = decay_k * 1024;

  sim::SystemConfig cfg = sim::make_system_config(4 * MiB, d);
  cfg.topology = topology;
  cfg.hierarchy = hierarchy;
  cfg.num_cores = cores;
  cfg.total_l2_bytes = static_cast<std::uint64_t>(cores) * MiB;
  if (hierarchy == sim::Hierarchy::kThreeLevel) {
    cfg.total_l3_bytes = 4 * cfg.total_l2_bytes;
    // Decay at every level: the chosen technique runs in the L1 front
    // ends and the shared L3 banks too.
    cfg.l1_decay = cfg.decay;
    cfg.l3_decay = cfg.decay;
  }
  cfg.instructions_per_core = instr;

  const auto& bench = workload::benchmark_by_name(bench_name);
  sim::CmpSystem sys(cfg, bench);

  obs::TraceRecorder recorder;
  if (!trace_out.empty()) {
    std::string err;
    if (!recorder.open(trace_out, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    sys.set_trace_recorder(&recorder);
  }
  obs::IntervalSampler sampler(sample_every);
  if (!sample_out.empty()) {
    std::string err;
    if (!sampler.open_csv(sample_out, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    sys.set_sampler(&sampler);
  }
  if (profile) prof::HostProfiler::set_enabled(true);

  const sim::RunMetrics m = sys.run();

  if (!trace_out.empty()) {
    if (!recorder.close()) {
      std::fprintf(stderr, "trace write failed: %s\n", trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %llu event(s) on %u track(s) -> %s\n",
                 (unsigned long long)recorder.events(), recorder.tracks(),
                 trace_out.c_str());
  }
  if (!sample_out.empty()) {
    if (!sampler.finish()) {
      std::fprintf(stderr, "series write failed: %s\n", sample_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "series: %llu row(s), checksum %016llx -> %s\n",
                 (unsigned long long)sampler.rows(),
                 (unsigned long long)sampler.checksum(), sample_out.c_str());
  }
  if (profile) prof::HostProfiler::report(stderr);

  std::printf("=== %s / %s / %lluMB L2 / %s%u / %s / %llu instr/core ===\n",
              m.benchmark.c_str(), m.technique.c_str(),
              (unsigned long long)(m.total_l2_bytes / MiB),
              m.topology.c_str(), cfg.num_cores, m.hierarchy.c_str(),
              (unsigned long long)instr);
  std::printf("cycles            %llu\n", (unsigned long long)m.cycles);
  std::printf("IPC               %.3f\n", m.ipc);
  std::printf("occupation        %.3f\n", m.l2_occupation);
  std::printf("L2 accesses       %llu\n", (unsigned long long)m.l2_accesses);
  std::printf("L2 misses         %llu (%.2f%%)\n",
              (unsigned long long)m.l2_misses, 100.0 * m.l2_miss_rate);
  std::printf("  decay-induced   %llu\n",
              (unsigned long long)m.l2_decay_induced_misses);
  std::printf("decay turnoffs    %llu\n",
              (unsigned long long)m.l2_decay_turnoffs);
  std::printf("coherence invals  %llu\n",
              (unsigned long long)m.l2_coherence_invals);
  std::printf("writebacks        %llu\n",
              (unsigned long long)m.l2_writebacks);
  std::printf("AMAT              %.1f cycles\n", m.amat);
  std::printf("mem bytes         %llu (%.3f B/cyc)\n",
              (unsigned long long)m.mem_bytes, m.mem_bandwidth);
  std::printf("fabric util       %.1f%%\n", 100.0 * m.bus_utilization);
  std::printf("avg L2 temp       %.1f K\n", m.avg_l2_temp_kelvin);
  if (cfg.topology == noc::Topology::kDirectoryMesh) {
    std::printf("NoC flit-hops     %llu (avg pkt lat %.1f)\n",
                (unsigned long long)m.noc_flit_hops,
                m.noc_avg_packet_latency);
    std::printf("dir snoops        %llu (recalls %llu, deferrals %llu)\n",
                (unsigned long long)m.dir_directed_snoops,
                (unsigned long long)m.dir_recalls,
                (unsigned long long)m.dir_deferrals);
  }

  const auto print_level = [](const char* name, const sim::LevelMetrics& l) {
    std::printf(
        "  %-3s acc=%llu hit=%llu miss=%llu toff=%llu dmiss=%llu wb=%llu "
        "occ=%.3f\n",
        name, (unsigned long long)l.accesses, (unsigned long long)l.hits,
        (unsigned long long)l.misses, (unsigned long long)l.decay_turnoffs,
        (unsigned long long)l.decay_induced_misses,
        (unsigned long long)l.writebacks, l.occupation);
  };
  std::printf("\nper-level counters (summed over the level):\n");
  print_level("L1", m.l1);
  print_level("L2", m.l2);
  if (sys.has_l3()) print_level("L3", m.l3);

  std::printf("\nper-L2 counters:\n");
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    const auto& st = sys.l2(c).stats();
    std::printf(
        "  L2[%u] rh=%llu rm=%llu wh=%llu wm=%llu ev=%llu wb=%llu "
        "inv=%llu boff=%llu dmiss=%llu retries=%llu upg=%llu\n",
        c, (unsigned long long)st.read_hits.value(),
        (unsigned long long)st.read_misses.value(),
        (unsigned long long)st.write_hits.value(),
        (unsigned long long)st.write_misses.value(),
        (unsigned long long)st.evictions.value(),
        (unsigned long long)st.writebacks.value(),
        (unsigned long long)st.coherence_invals.value(),
        (unsigned long long)st.decay_turnoffs.value(),
        (unsigned long long)st.decay_induced_misses.value(),
        (unsigned long long)sys.l2(c).transient_retries(),
        (unsigned long long)sys.l2(c).upgrades());
  }
  if (sys.has_l3()) {
    std::printf("\nper-L3-bank counters:\n");
    for (std::uint32_t b = 0; b < sys.l3().num_banks(); ++b) {
      const auto& st = sys.l3().bank_stats(b);
      std::printf(
          "  L3[%u] rh=%llu rm=%llu wh=%llu wm=%llu ev=%llu wb=%llu "
          "inv=%llu boff=%llu dmiss=%llu\n",
          b, (unsigned long long)st.read_hits.value(),
          (unsigned long long)st.read_misses.value(),
          (unsigned long long)st.write_hits.value(),
          (unsigned long long)st.write_misses.value(),
          (unsigned long long)st.evictions.value(),
          (unsigned long long)st.writebacks.value(),
          (unsigned long long)st.coherence_invals.value(),
          (unsigned long long)st.decay_turnoffs.value(),
          (unsigned long long)st.decay_induced_misses.value());
    }
  }

  std::printf("\ndecay-induced misses by region (agg): priv=%llu rw=%llu ro=%llu stream=%llu\n",
      [&]{unsigned long long v=0; for (CoreId c=0;c<cfg.num_cores;++c) v+=sys.l2(c).stats().decay_induced_by_region[1].value(); return v;}(),
      [&]{unsigned long long v=0; for (CoreId c=0;c<cfg.num_cores;++c) v+=sys.l2(c).stats().decay_induced_by_region[2].value(); return v;}(),
      [&]{unsigned long long v=0; for (CoreId c=0;c<cfg.num_cores;++c) v+=sys.l2(c).stats().decay_induced_by_region[3].value(); return v;}(),
      [&]{unsigned long long v=0; for (CoreId c=0;c<cfg.num_cores;++c) v+=sys.l2(c).stats().decay_induced_by_region[4].value(); return v;}());

  std::printf("\nper-core stalls (cycles):\n");
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    using SR = core::CoreModel::StallReason;
    const auto& cm = sys.core_model(c);
    std::printf("  core[%u] total=%llu dep=%llu lq=%llu rob=%llu port=%llu store=%llu\n",
                c, (unsigned long long)cm.stall_cycles(),
                (unsigned long long)cm.stall_breakdown(SR::kDep),
                (unsigned long long)cm.stall_breakdown(SR::kLoadQueue),
                (unsigned long long)cm.stall_breakdown(SR::kRob),
                (unsigned long long)cm.stall_breakdown(SR::kPort),
                (unsigned long long)cm.stall_breakdown(SR::kStore));
  }

  std::printf("\nper-L1 counters:\n");
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    const auto& st = sys.l1(c).stats();
    std::printf("  L1[%u] rh=%llu rm=%llu wh=%llu wm=%llu binv=%llu boff=%llu\n",
                c, (unsigned long long)st.read_hits.value(),
                (unsigned long long)st.read_misses.value(),
                (unsigned long long)st.write_hits.value(),
                (unsigned long long)st.write_misses.value(),
                (unsigned long long)st.backinvals.value(),
                (unsigned long long)st.decay_turnoffs.value());
  }

  std::printf("\nenergy ledger (eu):\n");
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto comp = static_cast<power::Component>(i);
    std::printf("  %-16s %.3e\n", std::string(power::to_string(comp)).c_str(),
                m.ledger.get(comp));
  }
  std::printf("  %-16s %.3e\n", "TOTAL", m.ledger.total());
  return 0;
}
