// diagnose — internal-counters dump for one configuration.
//
// Usage: diagnose <benchmark> <technique> <decay_time_k> [instr]
// Prints the per-L2 counters, bus/memory pressure, and energy ledger that
// the figure-level metrics summarize. Useful for calibrating workloads.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"

using namespace cdsim;

int main(int argc, char** argv) {
  const std::string bench_name = argc > 1 ? argv[1] : "mpeg2dec";
  const std::string tech_name = argc > 2 ? argv[2] : "decay";
  const Cycle decay_k = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 512;
  const std::uint64_t instr =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 4000000;

  decay::DecayConfig d;
  if (tech_name == "baseline") d.technique = decay::Technique::kBaseline;
  else if (tech_name == "protocol") d.technique = decay::Technique::kProtocol;
  else if (tech_name == "decay") d.technique = decay::Technique::kDecay;
  else d.technique = decay::Technique::kSelectiveDecay;
  d.decay_time = decay_k * 1024;

  sim::SystemConfig cfg = sim::make_system_config(4 * MiB, d);
  cfg.instructions_per_core = instr;

  const auto& bench = workload::benchmark_by_name(bench_name);
  sim::CmpSystem sys(cfg, bench);
  const sim::RunMetrics m = sys.run();

  std::printf("=== %s / %s / %lluMB / %llu instr/core ===\n",
              m.benchmark.c_str(), m.technique.c_str(),
              (unsigned long long)(m.total_l2_bytes / MiB),
              (unsigned long long)instr);
  std::printf("cycles            %llu\n", (unsigned long long)m.cycles);
  std::printf("IPC               %.3f\n", m.ipc);
  std::printf("occupation        %.3f\n", m.l2_occupation);
  std::printf("L2 accesses       %llu\n", (unsigned long long)m.l2_accesses);
  std::printf("L2 misses         %llu (%.2f%%)\n",
              (unsigned long long)m.l2_misses, 100.0 * m.l2_miss_rate);
  std::printf("  decay-induced   %llu\n",
              (unsigned long long)m.l2_decay_induced_misses);
  std::printf("decay turnoffs    %llu\n",
              (unsigned long long)m.l2_decay_turnoffs);
  std::printf("coherence invals  %llu\n",
              (unsigned long long)m.l2_coherence_invals);
  std::printf("writebacks        %llu\n",
              (unsigned long long)m.l2_writebacks);
  std::printf("AMAT              %.1f cycles\n", m.amat);
  std::printf("mem bytes         %llu (%.3f B/cyc)\n",
              (unsigned long long)m.mem_bytes, m.mem_bandwidth);
  std::printf("bus utilization   %.1f%%\n", 100.0 * m.bus_utilization);
  std::printf("avg L2 temp       %.1f K\n", m.avg_l2_temp_kelvin);

  std::printf("\nper-L2 counters:\n");
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    const auto& st = sys.l2(c).stats();
    std::printf(
        "  L2[%u] rh=%llu rm=%llu wh=%llu wm=%llu ev=%llu wb=%llu "
        "inv=%llu boff=%llu dmiss=%llu retries=%llu upg=%llu\n",
        c, (unsigned long long)st.read_hits.value(),
        (unsigned long long)st.read_misses.value(),
        (unsigned long long)st.write_hits.value(),
        (unsigned long long)st.write_misses.value(),
        (unsigned long long)st.evictions.value(),
        (unsigned long long)st.writebacks.value(),
        (unsigned long long)st.coherence_invals.value(),
        (unsigned long long)st.decay_turnoffs.value(),
        (unsigned long long)st.decay_induced_misses.value(),
        (unsigned long long)sys.l2(c).transient_retries(),
        (unsigned long long)sys.l2(c).upgrades());
  }
  std::printf("\ndecay-induced misses by region (agg): priv=%llu rw=%llu ro=%llu stream=%llu\n",
      [&]{unsigned long long v=0; for (CoreId c=0;c<cfg.num_cores;++c) v+=sys.l2(c).stats().decay_induced_by_region[1].value(); return v;}(),
      [&]{unsigned long long v=0; for (CoreId c=0;c<cfg.num_cores;++c) v+=sys.l2(c).stats().decay_induced_by_region[2].value(); return v;}(),
      [&]{unsigned long long v=0; for (CoreId c=0;c<cfg.num_cores;++c) v+=sys.l2(c).stats().decay_induced_by_region[3].value(); return v;}(),
      [&]{unsigned long long v=0; for (CoreId c=0;c<cfg.num_cores;++c) v+=sys.l2(c).stats().decay_induced_by_region[4].value(); return v;}());

  std::printf("\nper-core stalls (cycles):\n");
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    using SR = core::CoreModel::StallReason;
    const auto& cm = sys.core_model(c);
    std::printf("  core[%u] total=%llu dep=%llu lq=%llu rob=%llu port=%llu store=%llu\n",
                c, (unsigned long long)cm.stall_cycles(),
                (unsigned long long)cm.stall_breakdown(SR::kDep),
                (unsigned long long)cm.stall_breakdown(SR::kLoadQueue),
                (unsigned long long)cm.stall_breakdown(SR::kRob),
                (unsigned long long)cm.stall_breakdown(SR::kPort),
                (unsigned long long)cm.stall_breakdown(SR::kStore));
  }

  std::printf("\nper-L1 counters:\n");
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    const auto& st = sys.l1(c).stats();
    std::printf("  L1[%u] rh=%llu rm=%llu wh=%llu wm=%llu binv=%llu\n", c,
                (unsigned long long)st.read_hits.value(),
                (unsigned long long)st.read_misses.value(),
                (unsigned long long)st.write_hits.value(),
                (unsigned long long)st.write_misses.value(),
                (unsigned long long)st.backinvals.value());
  }

  std::printf("\nenergy ledger (eu):\n");
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto comp = static_cast<power::Component>(i);
    std::printf("  %-16s %.3e\n", std::string(power::to_string(comp)).c_str(),
                m.ledger.get(comp));
  }
  std::printf("  %-16s %.3e\n", "TOTAL", m.ledger.total());
  return 0;
}
