#pragma once
// Shared --topology=/--hierarchy=/--cores= parsing for the example
// binaries (diagnose, leakage_explorer), so the machine-family vocabulary
// cannot drift between them. Strict: an unknown value prints an error and
// the caller exits; positional arguments are passed through to `on_pos`.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "cdsim/noc/interconnect.hpp"
#include "cdsim/sim/cmp_system.hpp"

namespace cdsim::examples {

struct MachineFlags {
  noc::Topology topology = noc::Topology::kSnoopBus;
  sim::Hierarchy hierarchy = sim::Hierarchy::kTwoLevel;
  std::uint32_t cores = 0;  ///< 0 = default for the topology.
  bool any_set = false;     ///< At least one flag was given explicitly.

  /// Cores after defaulting: 4 on the bus, 16 on the mesh.
  [[nodiscard]] std::uint32_t effective_cores() const {
    if (cores != 0) return cores;
    return topology == noc::Topology::kDirectoryMesh ? 16 : 4;
  }
};

/// Parses argv, routing non-flag arguments (in order) to `on_pos`.
/// Returns false (after printing to stderr) on an invalid flag value.
/// The three-level machine is mesh-only; asking for it implies dmesh.
inline bool parse_machine_flags(
    int argc, char** argv, MachineFlags& out,
    const std::function<void(int pos, const std::string&)>& on_pos) {
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--topology=", 0) == 0) {
      const std::string v = arg.substr(11);
      if (v == "dmesh") {
        out.topology = noc::Topology::kDirectoryMesh;
      } else if (v != "bus") {
        std::fprintf(stderr, "unknown topology \"%s\" (bus|dmesh)\n",
                     v.c_str());
        return false;
      }
      out.any_set = true;
    } else if (arg.rfind("--hierarchy=", 0) == 0) {
      const std::string v = arg.substr(12);
      if (v == "3") {
        out.hierarchy = sim::Hierarchy::kThreeLevel;
      } else if (v != "2") {
        std::fprintf(stderr, "unknown hierarchy \"%s\" (2|3)\n", v.c_str());
        return false;
      }
      out.any_set = true;
    } else if (arg.rfind("--cores=", 0) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(arg.c_str() + 8, &end, 10);
      if (v == 0 || (end != nullptr && *end != '\0')) {
        std::fprintf(stderr, "invalid --cores value \"%s\"\n",
                     arg.c_str() + 8);
        return false;
      }
      out.cores = static_cast<std::uint32_t>(v);
      out.any_set = true;
    } else {
      on_pos(pos++, arg);
    }
  }
  if (out.hierarchy == sim::Hierarchy::kThreeLevel) {
    out.topology = noc::Topology::kDirectoryMesh;
  }
  return true;
}

}  // namespace cdsim::examples
