// leakage_explorer — energy/performance trade-off exploration.
//
// For one benchmark and cache size, sweeps the decay interval across both
// decay flavours and prints the energy-reduction / IPC-loss frontier plus a
// simple energy-delay product score — the analysis behind the paper's
// conclusion that "larger decay time might be a better choice from the
// Energy-Delay point of view" (§VI).
//
//   $ ./leakage_explorer [benchmark] [total_l2_mb] [instructions_per_core]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cdsim/common/table.hpp"
#include "cdsim/sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace cdsim;

  const std::string bench_name = argc > 1 ? argv[1] : "VOLREND";
  const std::uint64_t size_mb = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                         : 4;
  const std::uint64_t instr =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1500000;

  const auto& bench = workload::benchmark_by_name(bench_name);
  sim::ExperimentRunner runner(instr);
  const std::uint64_t size = size_mb * MiB;

  std::printf("leakage_explorer: %s, %lluMB total L2, %llu instr/core\n\n",
              bench.config.name.c_str(),
              static_cast<unsigned long long>(size_mb),
              static_cast<unsigned long long>(instr));

  TextTable t;
  t.row()
      .cell("technique")
      .cell("energy reduction")
      .cell("IPC loss")
      .cell("relative ED product");

  double best_ed = 1e18;
  std::string best;
  for (const auto tech :
       {decay::Technique::kProtocol, decay::Technique::kDecay,
        decay::Technique::kSelectiveDecay}) {
    for (const Cycle dt :
         {512u * 1024u, 256u * 1024u, 128u * 1024u, 64u * 1024u}) {
      decay::DecayConfig d{tech, dt, 4};
      const sim::RelativeMetrics r = runner.relative(bench, size, d);
      // ED relative to baseline: (1 - saving) * (1 / (1 - ipc_loss)).
      const double ed = (1.0 - r.energy_reduction) / (1.0 - r.ipc_loss);
      t.row().cell(d.label()).pct(r.energy_reduction).pct(r.ipc_loss).cell(
          ed, 3);
      if (ed < best_ed) {
        best_ed = ed;
        best = d.label();
      }
      if (tech == decay::Technique::kProtocol) break;  // no decay time
    }
  }
  t.print(std::cout);
  std::printf("\nBest Energy-Delay: %s (ED = %.3f of baseline)\n",
              best.c_str(), best_ed);
  return 0;
}
