// leakage_explorer — energy/performance trade-off exploration.
//
// For one benchmark and cache size, sweeps the decay interval across both
// decay flavours and prints the energy-reduction / IPC-loss frontier plus a
// simple energy-delay product score — the analysis behind the paper's
// conclusion that "larger decay time might be a better choice from the
// Energy-Delay point of view" (§VI).
//
//   $ ./leakage_explorer [benchmark] [total_l2_mb] [instructions_per_core]
//                        [--topology=bus|dmesh] [--hierarchy=2|3] [--cores=N]
//
// On the default bus machine results go through the shared ExperimentRunner
// disk cache. The topology/hierarchy flags explore the machine family
// instead — the directory mesh and the three-level hierarchy (private L2s
// behind the shared home-banked L3, the technique active at every level);
// those shapes are keyed outside the figure cache and simulate directly.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "cdsim/common/table.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cli_flags.hpp"

using namespace cdsim;

int main(int argc, char** argv) {
  std::string bench_name = "VOLREND";
  std::uint64_t size_mb = 4;
  std::uint64_t instr = 1500000;

  examples::MachineFlags mf;
  examples::FlagParser parser;
  bool bad_positional = false;
  parser.machine(&mf).on_positional([&](int pos, const std::string& arg) {
    switch (pos) {
      case 0: bench_name = arg; break;
      case 1: size_mb = std::strtoull(arg.c_str(), nullptr, 10); break;
      case 2: instr = std::strtoull(arg.c_str(), nullptr, 10); break;
      default:
        std::fprintf(stderr, "unexpected argument \"%s\"\n", arg.c_str());
        bad_positional = true;
        break;
    }
  });
  if (!parser.parse(argc, argv) || bad_positional) return 2;
  const noc::Topology topology = mf.topology;
  const sim::Hierarchy hierarchy = mf.hierarchy;
  const bool default_machine = !mf.any_set;
  const std::uint32_t cores = mf.effective_cores();

  const auto& bench = workload::benchmark_by_name(bench_name);
  const std::uint64_t size = size_mb * MiB;

  std::printf(
      "leakage_explorer: %s, %lluMB total L2, %s%u cores, %s hierarchy, "
      "%llu instr/core\n\n",
      bench.config.name.c_str(), static_cast<unsigned long long>(size_mb),
      std::string(noc::to_string(topology)).c_str(), cores,
      std::string(sim::to_string(hierarchy)).c_str(),
      static_cast<unsigned long long>(instr));

  // Runs one technique on the selected machine. The default bus machine
  // goes through the ExperimentRunner disk cache; the family shapes are
  // simulated directly (their configs are not part of the figure cache's
  // key space).
  sim::ExperimentRunner runner(instr);
  std::map<std::string, sim::RunMetrics> direct;
  const auto run_one =
      [&](const decay::DecayConfig& d) -> const sim::RunMetrics& {
    if (default_machine) return runner.run(bench, size, d);
    const std::string key = d.label();
    const auto it = direct.find(key);
    if (it != direct.end()) return it->second;
    sim::SystemConfig cfg = sim::make_system_config(size, d);
    cfg.topology = topology;
    cfg.hierarchy = hierarchy;
    cfg.num_cores = cores;
    cfg.instructions_per_core = instr;
    if (hierarchy == sim::Hierarchy::kThreeLevel) {
      cfg.total_l3_bytes = 4 * size;
      cfg.l1_decay = cfg.decay;   // the technique runs at every level
      cfg.l3_decay = cfg.decay;
    }
    return direct.emplace(key, sim::run_config(cfg, bench)).first->second;
  };

  const sim::RunMetrics& baseline = run_one(sim::baseline_config());

  TextTable t;
  t.row()
      .cell("technique")
      .cell("energy reduction")
      .cell("IPC loss")
      .cell("relative ED product");

  double best_ed = 1e18;
  std::string best;
  for (const auto tech :
       {decay::Technique::kProtocol, decay::Technique::kDecay,
        decay::Technique::kSelectiveDecay}) {
    for (const Cycle dt :
         {512u * 1024u, 256u * 1024u, 128u * 1024u, 64u * 1024u}) {
      decay::DecayConfig d{tech, dt, 4};
      const sim::RelativeMetrics r = relative_to(baseline, run_one(d));
      // ED relative to baseline: (1 - saving) * (1 / (1 - ipc_loss)).
      const double ed = (1.0 - r.energy_reduction) / (1.0 - r.ipc_loss);
      t.row().cell(d.label()).pct(r.energy_reduction).pct(r.ipc_loss).cell(
          ed, 3);
      if (ed < best_ed) {
        best_ed = ed;
        best = d.label();
      }
      if (tech == decay::Technique::kProtocol) break;  // no decay time
    }
  }
  t.print(std::cout);
  std::printf("\nBest Energy-Delay: %s (ED = %.3f of baseline)\n",
              best.c_str(), best_ed);
  return 0;
}
