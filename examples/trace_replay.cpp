// trace_replay — driving the hierarchy with an explicit access trace.
//
// Uses ScriptedWorkload to replay a hand-written producer/consumer sharing
// pattern and prints how each leakage technique handles it. This is the
// entry point users with their own traces would start from.

#include <cstdio>
#include <iostream>
#include <vector>

#include "cdsim/bus/snoop_bus.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/table.hpp"
#include "cdsim/core/core_model.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/sim/l1_cache.hpp"
#include "cdsim/sim/l2_cache.hpp"
#include "cdsim/workload/scripted.hpp"

#include <memory>

namespace {

using namespace cdsim;

/// Builds a per-core script: core 0 produces (stores) a block of lines,
/// cores 1..3 consume (load) it, plus per-core private churn.
std::vector<workload::MemOp> make_script(CoreId core) {
  std::vector<workload::MemOp> ops;
  const Addr shared = 0x20000000000ull;  // shared region tag
  const Addr priv = 0x10000000000ull + (static_cast<Addr>(core) << 32);
  for (Addr i = 0; i < 64; ++i) {
    if (core == 0) {
      ops.push_back({AccessType::kStore, shared + i * 64, 3, false, 1});
    } else {
      ops.push_back({AccessType::kLoad, shared + i * 64, 3, false, 1});
    }
    // Private churn between shared touches.
    for (Addr k = 0; k < 4; ++k) {
      ops.push_back(
          {AccessType::kLoad, priv + ((i * 4 + k) % 512) * 64, 2, false, 0});
    }
  }
  return ops;
}

}  // namespace

int main() {
  std::printf("trace_replay: producer/consumer script on 4 cores, 1MB L2\n\n");

  // Direct low-level replay through the cache hierarchy.
  EventQueue eq;
  mem::MemoryController memc(eq, mem::MemoryConfig{});
  bus::SnoopBus bus(eq, bus::BusConfig{}, memc);
  std::vector<std::unique_ptr<sim::L1Cache>> l1s;
  std::vector<std::unique_ptr<sim::L2Cache>> l2s;
  std::vector<std::unique_ptr<workload::ScriptedWorkload>> scripts;
  std::vector<std::unique_ptr<core::CoreModel>> cores;

  decay::DecayConfig d{decay::Technique::kSelectiveDecay, 32 * 1024, 4};
  sim::L2Config l2cfg;
  l2cfg.size_bytes = 256 * KiB;
  for (CoreId c = 0; c < 4; ++c) {
    l1s.push_back(std::make_unique<sim::L1Cache>(eq, sim::L1Config{}, c));
    l2s.push_back(std::make_unique<sim::L2Cache>(eq, l2cfg, d, c, bus,
                                                 l1s.back().get()));
    l1s.back()->connect_l2(l2s.back().get());
    bus.attach(l2s.back().get());
    l2s.back()->start();
    scripts.push_back(
        std::make_unique<workload::ScriptedWorkload>(make_script(c)));
    cores.push_back(std::make_unique<core::CoreModel>(
        eq, core::CoreConfig{}, c, *scripts.back(), *l1s.back(), 60000));
  }

  unsigned done = 0;
  for (auto& core : cores) core->start([&] { ++done; });
  while (done < 4) {
    if (!eq.step()) break;
  }
  for (auto& l2 : l2s) l2->stop();

  TextTable t;
  t.row()
      .cell("core")
      .cell("IPC")
      .cell("L2 state of shared block")
      .cell("L2 occupation")
      .cell("coherence invals");
  for (CoreId c = 0; c < 4; ++c) {
    t.row()
        .cell(std::to_string(c))
        .cell(cores[c]->ipc(eq.now()), 3)
        .cell(std::string(
            coherence::to_string(l2s[c]->line_state(0x20000000000ull))))
        .pct(l2s[c]->occupation(eq.now()))
        .cell(std::to_string(l2s[c]->stats().coherence_invals.value()));
  }
  t.print(std::cout);

  std::printf(
      "\nCore 0's stores repeatedly invalidate the consumers' copies; the\n"
      "Protocol technique would power those lines off for free, while the\n"
      "selective-decay config used here additionally harvests idle clean\n"
      "lines after 32K cycles.\n");
  return 0;
}
