// trace_replay — driving the machine family with recorded access traces.
//
// Two modes:
//
//   $ ./trace_replay
//       No-args demo: replays a hand-written producer/consumer script
//       through the low-level cache plumbing and prints how the leakage
//       technique handles the sharing pattern (the original example).
//
//   $ ./trace_replay prog_a.cdt [prog_b.cdt ...] [flags]
//       Streams one or more .cdt traces (v1 or chunked v2 — the magic is
//       sniffed) through a full CmpSystem. One trace with machine cores ==
//       trace cores is exact per-core replay; several traces (or more
//       machine cores than trace cores) become a rate-mode co-scheduled
//       mix: core c runs program c % P (see cdsim/sim/scenario.hpp).
//       Replay is streaming — multi-GB v2 traces run in O(cores x chunk)
//       memory.
//
//       --topology=bus|dmesh --hierarchy=2|3 --cores=N   machine family
//       --technique=baseline|protocol|decay|sel_decay    leakage technique
//       --decay-k=N        decay window in Kcycles (default 32)
//       --hot=IDX:MULT     weight program IDX by MULT (hot tenant)
//       --verify           attach the differential oracle; exit 1 on any
//                          divergence
//       --in-memory        ALSO replay through the load-it-whole in-memory
//                          path and fail unless the metrics are
//                          bit-identical to the streaming run
//       --max-rss-mb=N     fail if peak RSS exceeded N MiB
//       --metrics-out=F    append "key value" lines (hexfloat doubles) to F
//       --trace-out=F      Chrome-trace-event JSON timeline of the
//                          streaming replay (Perfetto-loadable)
//       --sample-out=F     windowed time-series CSV of the streaming replay
//       --sample-every=N   sampling window in cycles (default 100000)
//       --profile          host wall-clock phase profile on stderr

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cdsim/bus/snoop_bus.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/host_timer.hpp"
#include "cdsim/obs/interval_sampler.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/common/table.hpp"
#include "cdsim/core/core_model.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/sim/l1_cache.hpp"
#include "cdsim/sim/l2_cache.hpp"
#include "cdsim/sim/scenario.hpp"
#include "cdsim/verify/oracle.hpp"
#include "cdsim/workload/scripted.hpp"
#include "cdsim/workload/trace_v2.hpp"
#include "cli_flags.hpp"

namespace {

using namespace cdsim;

/// Builds a per-core script: core 0 produces (stores) a block of lines,
/// cores 1..3 consume (load) it, plus per-core private churn.
std::vector<workload::MemOp> make_script(CoreId core) {
  std::vector<workload::MemOp> ops;
  const Addr shared = 0x20000000000ull;  // shared region tag
  const Addr priv = 0x10000000000ull + (static_cast<Addr>(core) << 32);
  for (Addr i = 0; i < 64; ++i) {
    if (core == 0) {
      ops.push_back({AccessType::kStore, shared + i * 64, 3, false, 1});
    } else {
      ops.push_back({AccessType::kLoad, shared + i * 64, 3, false, 1});
    }
    // Private churn between shared touches.
    for (Addr k = 0; k < 4; ++k) {
      ops.push_back(
          {AccessType::kLoad, priv + ((i * 4 + k) % 512) * 64, 2, false, 0});
    }
  }
  return ops;
}

int run_demo() {
  std::printf("trace_replay: producer/consumer script on 4 cores, 1MB L2\n\n");

  // Direct low-level replay through the cache hierarchy.
  EventQueue eq;
  mem::MemoryController memc(eq, mem::MemoryConfig{});
  bus::SnoopBus bus(eq, bus::BusConfig{}, memc);
  std::vector<std::unique_ptr<sim::L1Cache>> l1s;
  std::vector<std::unique_ptr<sim::L2Cache>> l2s;
  std::vector<std::unique_ptr<workload::ScriptedWorkload>> scripts;
  std::vector<std::unique_ptr<core::CoreModel>> cores;

  decay::DecayConfig d{decay::Technique::kSelectiveDecay, 32 * 1024, 4};
  sim::L2Config l2cfg;
  l2cfg.size_bytes = 256 * KiB;
  for (CoreId c = 0; c < 4; ++c) {
    l1s.push_back(std::make_unique<sim::L1Cache>(eq, sim::L1Config{}, c));
    l2s.push_back(std::make_unique<sim::L2Cache>(eq, l2cfg, d, c, bus,
                                                 l1s.back().get()));
    l1s.back()->connect_l2(l2s.back().get());
    bus.attach(l2s.back().get());
    l2s.back()->start();
    scripts.push_back(
        std::make_unique<workload::ScriptedWorkload>(make_script(c)));
    cores.push_back(std::make_unique<core::CoreModel>(
        eq, core::CoreConfig{}, c, *scripts.back(), *l1s.back(), 60000));
  }

  unsigned done = 0;
  for (auto& core : cores) core->start([&] { ++done; });
  while (done < 4) {
    if (!eq.step()) break;
  }
  for (auto& l2 : l2s) l2->stop();

  TextTable t;
  t.row()
      .cell("core")
      .cell("IPC")
      .cell("L2 state of shared block")
      .cell("L2 occupation")
      .cell("coherence invals");
  for (CoreId c = 0; c < 4; ++c) {
    t.row()
        .cell(std::to_string(c))
        .cell(cores[c]->ipc(eq.now()), 3)
        .cell(std::string(
            coherence::to_string(l2s[c]->line_state(0x20000000000ull))))
        .pct(l2s[c]->occupation(eq.now()))
        .cell(std::to_string(l2s[c]->stats().coherence_invals.value()));
  }
  t.print(std::cout);

  std::printf(
      "\nCore 0's stores repeatedly invalidate the consumers' copies; the\n"
      "Protocol technique would power those lines off for free, while the\n"
      "selective-decay config used here additionally harvests idle clean\n"
      "lines after 32K cycles.\n");
  return 0;
}

double peak_rss_mb() {
  struct rusage ru = {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

struct ReplayResult {
  sim::RunMetrics metrics;
  std::uint64_t divergences = 0;
};

ReplayResult run_machine(const sim::SystemConfig& cfg,
                         const workload::StreamFactory& streams,
                         bool verify, const std::string& name,
                         obs::TraceRecorder* rec = nullptr,
                         obs::IntervalSampler* sampler = nullptr) {
  workload::Benchmark bench;
  bench.config.name = name;
  verify::DifferentialChecker checker(cfg.num_cores);
  sim::CmpSystem sys(cfg, bench, streams);
  if (verify) sys.set_observer(&checker);
  if (rec != nullptr) sys.set_trace_recorder(rec);
  if (sampler != nullptr) sys.set_sampler(sampler);
  ReplayResult out;
  out.metrics = sys.run();
  if (verify) {
    sys.check_coherence_invariants();
    out.divergences = checker.total_divergences();
    if (out.divergences != 0) {
      std::fprintf(stderr, "DIVERGENCE: %s\n",
                   verify::to_string(checker.divergences().front()).c_str());
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return run_demo();

  examples::MachineFlags mf;
  std::string tech_name = "sel_decay";
  std::uint64_t decay_k = 32;
  std::uint64_t max_rss_mb = 0;
  std::string hot_spec;
  std::string metrics_out;
  std::string trace_out;
  std::string sample_out;
  std::uint64_t sample_every = 100000;
  bool profile = false;
  bool verify = false;
  bool in_memory = false;
  std::vector<std::string> paths;

  examples::FlagParser parser;
  parser.machine(&mf)
      .str("technique", &tech_name)
      .u64("decay-k", &decay_k)
      .str("hot", &hot_spec)
      .toggle("verify", &verify)
      .toggle("in-memory", &in_memory)
      .u64("max-rss-mb", &max_rss_mb)
      .str("metrics-out", &metrics_out)
      .str("trace-out", &trace_out)
      .str("sample-out", &sample_out)
      .u64("sample-every", &sample_every)
      .toggle("profile", &profile)
      .on_positional(
          [&](int, const std::string& arg) { paths.push_back(arg); });
  if (!parser.parse(argc, argv)) return 2;
  if (paths.empty()) {
    std::fprintf(stderr, "trace_replay: no trace files given\n");
    return 2;
  }

  // Assemble the mix: one program per trace file, streaming openers.
  std::vector<sim::ProgramSpec> programs;
  for (const std::string& path : paths) {
    sim::ProgramSpec spec;
    spec.name = path;
    spec.open = [path]() -> workload::TraceSourcePtr {
      std::string err;
      auto src = workload::open_trace_source(path, &err);
      if (src == nullptr) {
        std::fprintf(stderr, "trace_replay: %s\n", err.c_str());
      }
      return src;
    };
    programs.push_back(std::move(spec));
  }
  if (!hot_spec.empty()) {
    char* end = nullptr;
    const unsigned long idx = std::strtoul(hot_spec.c_str(), &end, 10);
    const double mult =
        (end != nullptr && *end == ':') ? std::strtod(end + 1, &end) : 0.0;
    if (idx >= programs.size() || !(mult > 0.0) ||
        (end != nullptr && *end != '\0')) {
      std::fprintf(stderr, "invalid --hot value \"%s\" (want IDX:MULT)\n",
                   hot_spec.c_str());
      return 2;
    }
    programs[idx].weight = mult;
  }

  decay::DecayConfig d;
  if (tech_name == "baseline") d.technique = decay::Technique::kBaseline;
  else if (tech_name == "protocol") d.technique = decay::Technique::kProtocol;
  else if (tech_name == "decay") d.technique = decay::Technique::kDecay;
  else if (tech_name == "sel_decay") {
    d.technique = decay::Technique::kSelectiveDecay;
  } else {
    std::fprintf(stderr, "unknown technique \"%s\"\n", tech_name.c_str());
    return 2;
  }
  d.decay_time = decay_k * 1024;

  // Machine cores: explicit --cores wins; otherwise a single program
  // replays on exactly its recorded cores, and a mix defaults to the
  // topology's core count.
  std::uint32_t cores = mf.cores;
  if (cores == 0 && programs.size() == 1) {
    std::string err;
    const auto probe = workload::open_trace_source(paths[0], &err);
    if (probe == nullptr) return 1;
    cores = probe->num_cores();
  }
  if (cores == 0) cores = mf.effective_cores();

  sim::MixPlan plan;
  try {
    plan = sim::plan_mix(std::move(programs), cores);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_replay: %s\n", e.what());
    return 1;
  }

  sim::SystemConfig cfg = sim::make_system_config(
      static_cast<std::uint64_t>(cores) * MiB, d);
  cfg.topology = mf.topology;
  cfg.hierarchy = mf.hierarchy;
  if (mf.hierarchy == sim::Hierarchy::kThreeLevel) {
    cfg.total_l3_bytes = 4 * cfg.total_l2_bytes;
    cfg.l1_decay = cfg.decay;  // the technique runs at every level
    cfg.l3_decay = cfg.decay;
  }
  plan.apply(cfg);

  std::printf("trace_replay: %zu program(s) on %s%u (%s), %s\n", paths.size(),
              std::string(noc::to_string(cfg.topology)).c_str(), cfg.num_cores,
              std::string(sim::to_string(cfg.hierarchy)).c_str(),
              d.label().c_str());
  for (std::size_t c = 0; c < plan.assignment.size(); ++c) {
    const sim::MixAssignment& a = plan.assignment[c];
    std::printf("  core %-3zu <- %s (trace core %u, budget %llu)\n", c,
                plan.program_names[a.program].c_str(), a.trace_core,
                static_cast<unsigned long long>(a.instructions));
  }

  obs::TraceRecorder recorder;
  if (!trace_out.empty()) {
    std::string err;
    if (!recorder.open(trace_out, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
  }
  obs::IntervalSampler sampler(sample_every);
  if (!sample_out.empty()) {
    std::string err;
    if (!sampler.open_csv(sample_out, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
  }
  if (profile) prof::HostProfiler::set_enabled(true);

  const ReplayResult streamed =
      run_machine(cfg, plan.streams, verify, "trace_replay",
                  trace_out.empty() ? nullptr : &recorder,
                  sample_out.empty() ? nullptr : &sampler);
  const sim::RunMetrics& m = streamed.metrics;

  if (!trace_out.empty()) {
    if (!recorder.close()) {
      std::fprintf(stderr, "trace write failed: %s\n", trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %llu event(s) on %u track(s) -> %s\n",
                 static_cast<unsigned long long>(recorder.events()),
                 recorder.tracks(), trace_out.c_str());
  }
  if (!sample_out.empty()) {
    if (!sampler.finish()) {
      std::fprintf(stderr, "series write failed: %s\n", sample_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "series: %llu row(s), checksum %016llx -> %s\n",
                 static_cast<unsigned long long>(sampler.rows()),
                 static_cast<unsigned long long>(sampler.checksum()),
                 sample_out.c_str());
  }
  if (profile) prof::HostProfiler::report(stderr);
  std::printf("\ncycles %llu  IPC %.3f  L2 miss %.2f%%  energy %.3e\n",
              static_cast<unsigned long long>(m.cycles), m.ipc,
              100.0 * m.l2_miss_rate, m.energy);
  std::printf("peak RSS %.1f MiB\n", peak_rss_mb());

  int rc = 0;
  if (verify) {
    if (streamed.divergences == 0) {
      std::printf("verify: OK, zero divergences\n");
    } else {
      std::printf("verify: %llu divergence(s)\n",
                  static_cast<unsigned long long>(streamed.divergences));
      rc = 1;
    }
  }

  if (in_memory) {
    // A/B: load everything through the in-memory demux path and insist on
    // bit-identical metrics. Only meaningful for a single program replayed
    // on its own core count (the mix path is streaming-only).
    if (paths.size() != 1) {
      std::fprintf(stderr, "--in-memory needs exactly one trace\n");
      return 2;
    }
    std::string err;
    auto src = workload::open_trace_source(paths[0], &err);
    if (src == nullptr) {
      std::fprintf(stderr, "trace_replay: %s\n", err.c_str());
      return 1;
    }
    auto whole = std::make_shared<workload::Trace>();
    whole->num_cores = src->num_cores();
    workload::TraceRecord rec;
    while (src->next(rec)) whole->append(rec);
    const ReplayResult mem = run_machine(
        cfg, workload::replay_factory(
                 std::shared_ptr<const workload::Trace>(whole)),
        verify, "trace_replay");
    const bool same = mem.metrics.cycles == m.cycles &&
                      mem.metrics.ipc == m.ipc &&
                      mem.metrics.energy == m.energy &&
                      mem.metrics.l2_miss_rate == m.l2_miss_rate &&
                      mem.metrics.l2_accesses == m.l2_accesses &&
                      mem.metrics.l2_misses == m.l2_misses;
    if (same) {
      std::printf("in-memory A/B: bit-identical to the streaming replay\n");
    } else {
      std::printf("in-memory A/B: MISMATCH (streaming %llu cycles, "
                  "in-memory %llu)\n",
                  static_cast<unsigned long long>(m.cycles),
                  static_cast<unsigned long long>(mem.metrics.cycles));
      rc = 1;
    }
  }

  if (max_rss_mb != 0) {
    const double rss = peak_rss_mb();
    if (rss > static_cast<double>(max_rss_mb)) {
      std::fprintf(stderr, "peak RSS %.1f MiB exceeds bound %llu MiB\n", rss,
                   static_cast<unsigned long long>(max_rss_mb));
      rc = 1;
    }
  }

  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    std::fprintf(f, "cycles %llu\nipc %a\nl2_miss_rate %a\nenergy %a\n",
                 static_cast<unsigned long long>(m.cycles), m.ipc,
                 m.l2_miss_rate, m.energy);
    std::fclose(f);
  }
  return rc;
}
