#pragma once
// Shared CLI parsing for the example binaries (trace_replay, diagnose,
// fuzz_verify, leakage_explorer), so the flag vocabulary cannot drift
// between them. One FlagParser instance declares the options a binary
// accepts — the machine-family trio (--topology=/--hierarchy=/--cores=),
// boolean toggles, and --name=value flags — and routes every non-flag
// argument (in order) to the positional handler. Strict: an unknown or
// malformed flag prints an error and parse() returns false.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cdsim/noc/interconnect.hpp"
#include "cdsim/sim/cmp_system.hpp"

namespace cdsim::examples {

struct MachineFlags {
  noc::Topology topology = noc::Topology::kSnoopBus;
  sim::Hierarchy hierarchy = sim::Hierarchy::kTwoLevel;
  std::uint32_t cores = 0;  ///< 0 = default for the topology.
  bool any_set = false;     ///< At least one flag was given explicitly.

  /// Cores after defaulting: 4 on the bus, 16 on the mesh.
  [[nodiscard]] std::uint32_t effective_cores() const {
    if (cores != 0) return cores;
    return topology == noc::Topology::kDirectoryMesh ? 16 : 4;
  }
};

/// Declarative argv parser. Register options, then parse(); registration
/// order does not matter. Example:
///
///   MachineFlags mf;
///   bool verify = false;
///   examples::FlagParser p;
///   p.machine(&mf).toggle("verify", &verify).on_positional(...);
///   if (!p.parse(argc, argv)) return 2;
class FlagParser {
 public:
  /// The machine-family trio. The three-level machine is mesh-only;
  /// asking for --hierarchy=3 implies --topology=dmesh.
  FlagParser& machine(MachineFlags* out) {
    machine_ = out;
    value_option("topology", [out](const std::string& v) {
      if (v == "dmesh") {
        out->topology = noc::Topology::kDirectoryMesh;
      } else if (v != "bus") {
        std::fprintf(stderr, "unknown topology \"%s\" (bus|dmesh)\n",
                     v.c_str());
        return false;
      }
      out->any_set = true;
      return true;
    });
    value_option("hierarchy", [out](const std::string& v) {
      if (v == "3") {
        out->hierarchy = sim::Hierarchy::kThreeLevel;
      } else if (v != "2") {
        std::fprintf(stderr, "unknown hierarchy \"%s\" (2|3)\n", v.c_str());
        return false;
      }
      out->any_set = true;
      return true;
    });
    value_option("cores", [out](const std::string& v) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (n == 0 || end == nullptr || *end != '\0') {
        std::fprintf(stderr, "invalid --cores value \"%s\"\n", v.c_str());
        return false;
      }
      out->cores = static_cast<std::uint32_t>(n);
      out->any_set = true;
      return true;
    });
    return *this;
  }

  /// Bare boolean switch: --name sets *out (and *seen, when given).
  FlagParser& toggle(const std::string& name, bool* out,
                     bool* seen = nullptr) {
    options_.push_back({name, /*takes_value=*/false,
                        [out, seen](const std::string&) {
                          *out = true;
                          if (seen != nullptr) *seen = true;
                          return true;
                        }});
    return *this;
  }

  /// --name=N with N a positive 64-bit decimal.
  FlagParser& u64(const std::string& name, std::uint64_t* out,
                  bool* seen = nullptr) {
    value_option(name, [name, out, seen](const std::string& v) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
      if (n == 0 || end == nullptr || *end != '\0') {
        std::fprintf(stderr,
                     "invalid --%s value \"%s\" (want a positive integer)\n",
                     name.c_str(), v.c_str());
        return false;
      }
      *out = n;
      if (seen != nullptr) *seen = true;
      return true;
    });
    return *this;
  }

  /// --name=value, any non-empty string.
  FlagParser& str(const std::string& name, std::string* out,
                  bool* seen = nullptr) {
    value_option(name, [name, out, seen](const std::string& v) {
      if (v.empty()) {
        std::fprintf(stderr, "--%s needs a value\n", name.c_str());
        return false;
      }
      *out = v;
      if (seen != nullptr) *seen = true;
      return true;
    });
    return *this;
  }

  /// Handler for non-flag arguments, called with (index, arg) in order.
  FlagParser& on_positional(
      std::function<void(int pos, const std::string&)> fn) {
    on_pos_ = std::move(fn);
    return *this;
  }

  /// Returns false (after printing to stderr) on any unknown flag or
  /// invalid value.
  bool parse(int argc, char** argv) {
    int pos = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        // A single-dash argument is a mistyped flag, not a positional —
        // silently routing "-cores=8" to the positional handler used to
        // make typos vanish. A bare "-" stays positional (stdin idiom).
        if (arg.size() >= 2 && arg[0] == '-') {
          std::fprintf(stderr, "unknown flag \"%s\" (flags use --name[=value])\n",
                       arg.c_str());
          return false;
        }
        if (on_pos_) on_pos_(pos, arg);
        ++pos;
        continue;
      }
      const std::size_t eq = arg.find('=');
      const std::string name =
          arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
      const Option* opt = nullptr;
      for (const Option& o : options_) {
        if (o.name == name) {
          opt = &o;
          break;
        }
      }
      if (opt == nullptr) {
        std::fprintf(stderr, "unknown flag \"%s\"\n", arg.c_str());
        return false;
      }
      if (opt->takes_value != (eq != std::string::npos)) {
        std::fprintf(stderr, "flag --%s %s a =value\n", name.c_str(),
                     opt->takes_value ? "needs" : "does not take");
        return false;
      }
      const std::string value =
          eq == std::string::npos ? std::string() : arg.substr(eq + 1);
      if (!opt->apply(value)) return false;
    }
    if (machine_ != nullptr &&
        machine_->hierarchy == sim::Hierarchy::kThreeLevel) {
      machine_->topology = noc::Topology::kDirectoryMesh;
    }
    return true;
  }

 private:
  struct Option {
    std::string name;
    bool takes_value = false;
    std::function<bool(const std::string&)> apply;
  };

  void value_option(const std::string& name,
                    std::function<bool(const std::string&)> apply) {
    options_.push_back({name, /*takes_value=*/true, std::move(apply)});
  }

  MachineFlags* machine_ = nullptr;
  std::vector<Option> options_;
  std::function<void(int, const std::string&)> on_pos_;
};

}  // namespace cdsim::examples
