// Unit tests for SmallFn (the kernel's move-only callable) and the
// calendar-queue behaviors the EventQueue rewrite introduced: overflow
// spilling, same-cycle appends, and scheduling at now() after run_until
// scanned past it.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/small_fn.hpp"

namespace cdsim {
namespace {

// --- SmallFn ---------------------------------------------------------------

TEST(SmallFn, InvokesInlineTarget) {
  SmallFn<int(int), 48> f = [](int x) { return x + 1; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(41), 42);
}

TEST(SmallFn, DefaultConstructedIsEmpty) {
  SmallFn<void(), 48> f;
  EXPECT_FALSE(static_cast<bool>(f));
  SmallFn<void(), 48> g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(SmallFn, AcceptsMoveOnlyCaptures) {
  auto p = std::make_unique<int>(7);
  SmallFn<int(), 48> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 7);
  // Move transfers the target; the source becomes empty.
  SmallFn<int(), 48> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_EQ(g(), 7);
}

TEST(SmallFn, MoveAssignReplacesTarget) {
  int destroyed = 0;
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
    ~Probe() {
      if (counter != nullptr) ++*counter;
    }
  };
  {
    SmallFn<int(), 48> f = [p = Probe(&destroyed)] { return 1; };
    SmallFn<int(), 48> g = [p = Probe(&destroyed)] { return 2; };
    f = std::move(g);  // destroys f's old target
    EXPECT_EQ(destroyed, 1);
    EXPECT_EQ(f(), 2);
    EXPECT_FALSE(static_cast<bool>(g));
  }
  EXPECT_EQ(destroyed, 2);  // no double-destroy, no leak
}

TEST(SmallFn, OversizedCapturesFallBackToHeap) {
  struct Big {
    char blob[200];
  };
  static_assert(!SmallFn<int(), 48>::fits_inline_v<decltype([b = Big{}] {
    return 0;
  })>);
  Big big{};
  big.blob[199] = 9;
  SmallFn<int(), 48> f = [big] { return static_cast<int>(big.blob[199]); };
  SmallFn<int(), 48> g = std::move(f);
  EXPECT_EQ(g(), 9);
}

TEST(SmallFn, HotPathCapturesStayInline) {
  struct FakeThis {};
  FakeThis* self = nullptr;
  std::uint64_t addr = 0;
  // The shapes the L2 controller schedules on every access.
  auto small = [self, addr] { (void)self; (void)addr; };
  static_assert(EventQueue::Callback::fits_inline_v<decltype(small)>);
  static_assert(EventQueue::Callback::fits_inline_v<decltype([] {})>);
}

// --- EventQueue calendar behaviors ----------------------------------------

TEST(EventQueue, FarEventsBeyondRingWindowStillRunInOrder) {
  EventQueue q;
  std::vector<int> order;
  // Far beyond the 1024-cycle ring window -> overflow list.
  q.schedule_at(5000, [&] { order.push_back(3); });
  q.schedule_at(2000, [&] { order.push_back(2); });
  q.schedule_at(10, [&] { order.push_back(1); });
  EXPECT_EQ(q.pending(), 3u);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 5000u);
}

TEST(EventQueue, SameFarCycleKeepsScheduleOrderAcrossSpills) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5000, [&] { order.push_back(1); });  // overflow, first
  q.schedule_at(100, [&] {
    // Scheduled later than the first 5000-cycle event; must run after it
    // even though it may enter the ring by a different route.
    q.schedule_at(5000, [&] { order.push_back(2); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ScheduleAtNowAfterRunUntilStillRuns) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(500, [&] { ++fired; });
  q.run_until(100);  // the scan passed cycle 100's (empty) bucket
  EXPECT_EQ(q.now(), 100u);
  q.schedule_at(100, [&] { fired += 10; });  // same cycle as now()
  q.run();
  EXPECT_EQ(fired, 11);
  EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, EventChainsAcrossManyRevolutions) {
  EventQueue q;
  // A self-rescheduling event with a period exceeding the ring span
  // exercises spill_overflow repeatedly (the decay sweeper's shape).
  int ticks = 0;
  std::function<void()> rearm = [&] {
    ++ticks;
    if (ticks < 20) q.schedule_in(3000, [&] { rearm(); });
  };
  q.schedule_in(3000, [&] { rearm(); });
  q.run();
  EXPECT_EQ(ticks, 20);
  EXPECT_EQ(q.now(), 20u * 3000u);
  EXPECT_EQ(q.executed(), 20u);
}

TEST(EventQueue, OverflowEventMayShareBucketWithScheduleAtNow) {
  // Regression: an overflow event one full ring revolution ahead maps to
  // the same bucket as a schedule_at(now()) issued while run_until() is
  // parked one cycle before the revolution boundary. A premature overflow
  // spill used to alias the two cycles in one bucket and abort.
  EventQueue q;
  std::vector<Cycle> fired;
  q.schedule_at(2047, [&] { fired.push_back(q.now()); });  // overflow
  q.run_until(1023);  // park exactly one cycle before the ring boundary
  EXPECT_EQ(q.now(), 1023u);
  q.schedule_at(1023, [&] { fired.push_back(q.now()); });  // same bucket
  q.run();
  EXPECT_EQ(fired, (std::vector<Cycle>{1023, 2047}));
}

TEST(EventQueue, PendingCountsRingAndOverflow) {
  EventQueue q;
  q.schedule_at(1, [] {});
  q.schedule_at(100000, [] {});
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_FALSE(q.empty());
  q.run();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace cdsim
