// Unit tests for the 2D-mesh NoC: grid factorization, XY routing, credit
// accounting/backpressure, same-path FIFO ordering, and deadlock freedom
// under all-to-all storms on asymmetric meshes.

#include <gtest/gtest.h>

#include <vector>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/noc/mesh.hpp"

namespace cdsim::noc {
namespace {

TEST(MeshDims, MostSquarePowerOfTwoFactorization) {
  const auto check = [](std::uint32_t n, std::uint32_t w, std::uint32_t h) {
    const MeshDims d = mesh_dims(n);
    EXPECT_EQ(d.width, w) << n << " tiles";
    EXPECT_EQ(d.height, h) << n << " tiles";
    EXPECT_EQ(d.width * d.height, n);
  };
  check(1, 1, 1);
  check(2, 2, 1);
  check(4, 2, 2);
  check(8, 4, 2);   // asymmetric
  check(16, 4, 4);
  check(32, 8, 4);  // asymmetric
  check(64, 8, 8);
}

TEST(MeshNoc, XyHopsAreManhattanDistance) {
  EventQueue eq;
  MeshNoc noc(eq, NocConfig{}, 4, 2);  // tiles 0..7, tile = y*4+x
  EXPECT_EQ(noc.hops(0, 0), 0u);
  EXPECT_EQ(noc.hops(0, 3), 3u);
  EXPECT_EQ(noc.hops(0, 7), 4u);  // 3 east + 1 south
  EXPECT_EQ(noc.hops(7, 0), 4u);
  EXPECT_EQ(noc.hops(1, 5), 1u);
}

TEST(MeshNoc, FlitsIncludeHeaderAndRoundUp) {
  EventQueue eq;
  NocConfig cfg;  // 16 B flits, 8 B header
  MeshNoc noc(eq, cfg, 2, 2);
  EXPECT_EQ(noc.flits_for(0), 1u);    // header only
  EXPECT_EQ(noc.flits_for(8), 1u);    // 16 B total
  EXPECT_EQ(noc.flits_for(9), 2u);
  EXPECT_EQ(noc.flits_for(64), 5u);   // 72 B -> 5 flits
}

TEST(MeshNoc, DeliversAcrossTheMeshAndCountsFlitHops) {
  EventQueue eq;
  MeshNoc noc(eq, NocConfig{}, 4, 2);
  Cycle delivered = 0;
  noc.send(0, 7, /*payload=*/64, [&](Cycle c) { delivered = c; });
  eq.run();
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(noc.packets_delivered(), 1u);
  EXPECT_EQ(noc.packets_in_flight(), 0u);
  // 4 hops x 5 flits.
  EXPECT_EQ(noc.flit_hops(), 20u);
  EXPECT_EQ(noc.bytes_injected(), 64u);
  EXPECT_DOUBLE_EQ(noc.avg_packet_latency(), static_cast<double>(delivered));
}

TEST(MeshNoc, SameTileDeliveryNeverTouchesALink) {
  EventQueue eq;
  MeshNoc noc(eq, NocConfig{}, 2, 2);
  bool delivered = false;
  noc.send(3, 3, 64, [&](Cycle) { delivered = true; });
  eq.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(noc.flit_hops(), 0u);
}

TEST(MeshNoc, CreditBackpressureStallsAndRecovers) {
  EventQueue eq;
  NocConfig cfg;
  cfg.link_credits = 1;  // single buffer: heavy same-link traffic must stall
  MeshNoc noc(eq, cfg, 4, 1);
  int delivered = 0;
  for (int i = 0; i < 16; ++i) {
    noc.send(0, 3, 64, [&](Cycle) { ++delivered; });
  }
  eq.run();
  EXPECT_EQ(delivered, 16);
  EXPECT_GT(noc.total_stalls(), 0u);
  // Credits fully restored: a fresh packet still goes through.
  noc.send(0, 3, 64, [&](Cycle) { ++delivered; });
  eq.run();
  EXPECT_EQ(delivered, 17);
  EXPECT_EQ(noc.packets_in_flight(), 0u);
}

TEST(MeshNoc, SamePathDeliveryIsFifo) {
  // Two packets from the same source to the same destination must arrive
  // in injection order (the directory relies on this for WB-before-refetch
  // ordering from one core).
  EventQueue eq;
  NocConfig cfg;
  cfg.link_credits = 2;
  MeshNoc noc(eq, cfg, 4, 2);
  std::vector<int> order;
  noc.send(0, 7, 64, [&](Cycle) { order.push_back(0); });  // 5 flits
  noc.send(0, 7, 8, [&](Cycle) { order.push_back(1); });   // 1 flit
  noc.send(0, 7, 64, [&](Cycle) { order.push_back(2); });
  eq.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

/// All-to-all storm: every tile sends `k` packets to every other tile with
/// minimal buffering. XY routing's acyclic channel dependencies must drain
/// every packet (deadlock freedom), including on asymmetric grids.
void storm(std::uint32_t w, std::uint32_t h, int k) {
  EventQueue eq;
  NocConfig cfg;
  cfg.link_credits = 1;  // the hardest case
  MeshNoc noc(eq, cfg, w, h);
  const std::uint32_t n = w * h;
  std::uint64_t delivered = 0;
  for (int round = 0; round < k; ++round) {
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::uint32_t d = 0; d < n; ++d) {
        if (s == d) continue;
        noc.send(s, d, 64, [&](Cycle) { ++delivered; });
      }
    }
  }
  eq.run();
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(k) * n * (n - 1))
      << w << "x" << h;
  EXPECT_EQ(noc.packets_in_flight(), 0u);
  EXPECT_GT(noc.max_link_utilization(eq.now()), 0.0);
}

TEST(MeshNoc, AllToAllStormDrainsOnAsymmetricMeshes) {
  storm(4, 2, 3);  // 8 tiles, asymmetric
  storm(8, 4, 1);  // 32 tiles, asymmetric
  storm(4, 1, 4);  // degenerate 1D chain
  storm(4, 4, 2);  // square for contrast
}

TEST(MeshNoc, HotspotConvergecastDrains) {
  // Everyone hammers tile 0 (the hot-home pattern's transport shape).
  EventQueue eq;
  NocConfig cfg;
  cfg.link_credits = 1;
  MeshNoc noc(eq, cfg, 4, 4);
  std::uint64_t delivered = 0;
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t s = 1; s < 16; ++s) {
      noc.send(s, 0, 64, [&](Cycle) { ++delivered; });
    }
  }
  eq.run();
  EXPECT_EQ(delivered, 8u * 15u);
  EXPECT_GT(noc.total_stalls(), 0u);  // the hotspot must backpressure
}

TEST(MeshNoc, LinkStatsAccumulateOnTheRoute) {
  EventQueue eq;
  MeshNoc noc(eq, NocConfig{}, 2, 2);
  noc.send(0, 1, 64, {});
  eq.run();
  // Route 0 -> 1 is one eastward hop: tile 0's east link carries 5 flits.
  const MeshNoc::LinkStats& east = noc.link_stats(0, /*dir=*/0);
  EXPECT_EQ(east.packets, 1u);
  EXPECT_EQ(east.flits, 5u);
  EXPECT_EQ(east.busy_cycles, 5u);
}

}  // namespace
}  // namespace cdsim::noc
