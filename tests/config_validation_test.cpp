// SystemConfig construction-time validation: misconfigurations must throw
// std::invalid_argument with a descriptive message, not silently simulate
// a platform nobody asked for (and not abort deep inside the kernel).

#include <gtest/gtest.h>

#include <stdexcept>

#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::sim {
namespace {

SystemConfig base() {
  SystemConfig cfg;
  cfg.num_cores = 4;
  cfg.total_l2_bytes = 4 * MiB;
  return cfg;
}

void expect_invalid(const SystemConfig& cfg, const char* needle) {
  try {
    validate_system_config(cfg);
    FAIL() << "expected invalid_argument mentioning \"" << needle << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(ConfigValidation, DefaultAndScaledConfigsPass) {
  EXPECT_NO_THROW(validate_system_config(base()));
  SystemConfig big = base();
  big.topology = noc::Topology::kDirectoryMesh;
  big.num_cores = 64;
  big.total_l2_bytes = 64 * MiB;
  EXPECT_NO_THROW(validate_system_config(big));
}

TEST(ConfigValidation, ZeroCoresThrows) {
  SystemConfig cfg = base();
  cfg.num_cores = 0;
  expect_invalid(cfg, "num_cores");
}

TEST(ConfigValidation, MoreThan64CoresThrows) {
  SystemConfig cfg = base();
  cfg.num_cores = 65;
  cfg.total_l2_bytes = 65 * MiB;
  expect_invalid(cfg, "64");
}

TEST(ConfigValidation, IndivisibleL2Throws) {
  SystemConfig cfg = base();
  cfg.num_cores = 3;
  cfg.total_l2_bytes = 4 * MiB;  // 4 MiB does not split 3 ways
  expect_invalid(cfg, "divisible");
  cfg.total_l2_bytes = 0;
  expect_invalid(cfg, "divisible");
}

TEST(ConfigValidation, NonPowerOfTwoCoresOnMeshThrows) {
  SystemConfig cfg = base();
  cfg.topology = noc::Topology::kDirectoryMesh;
  cfg.num_cores = 12;
  cfg.total_l2_bytes = 12 * MiB;
  expect_invalid(cfg, "power of two");
  // The same core count is fine on the bus (no tile grid to factorize).
  cfg.topology = noc::Topology::kSnoopBus;
  EXPECT_NO_THROW(validate_system_config(cfg));
}

TEST(ConfigValidation, WrongPerCoreInstructionLengthThrows) {
  SystemConfig cfg = base();
  cfg.per_core_instructions = {1000, 1000};  // 2 entries for 4 cores
  expect_invalid(cfg, "per_core_instructions");
}

TEST(ConfigValidation, ThreeLevelRequiresDirectoryMesh) {
  SystemConfig cfg = base();
  cfg.hierarchy = Hierarchy::kThreeLevel;
  cfg.topology = noc::Topology::kSnoopBus;
  expect_invalid(cfg, "directory-mesh");
  cfg.topology = noc::Topology::kDirectoryMesh;
  EXPECT_NO_THROW(validate_system_config(cfg));
}

TEST(ConfigValidation, ThreeLevelL3MustSplitIntoBanks) {
  SystemConfig cfg = base();
  cfg.hierarchy = Hierarchy::kThreeLevel;
  cfg.topology = noc::Topology::kDirectoryMesh;
  cfg.total_l3_bytes = 0;
  expect_invalid(cfg, "total_l3_bytes");
  cfg.total_l3_bytes = MiB + 1;  // does not split 4 ways cleanly...
  expect_invalid(cfg, "total_l3_bytes");
  cfg.total_l3_bytes = 3 * MiB;  // ...per-bank 768 KiB not a power of 2
  expect_invalid(cfg, "power of two");
  cfg.total_l3_bytes = 2 * KiB;  // per-bank 512 B < one 16-way 64 B set
  expect_invalid(cfg, "smaller than one set");
}

TEST(ConfigValidation, PerLevelDecayNeedsNonzeroWindow) {
  SystemConfig cfg = base();
  cfg.l1_decay = decay::DecayConfig{decay::Technique::kDecay, 0, 4};
  expect_invalid(cfg, "L1");
  cfg = base();
  cfg.hierarchy = Hierarchy::kThreeLevel;
  cfg.topology = noc::Topology::kDirectoryMesh;
  cfg.l3_decay = decay::DecayConfig{decay::Technique::kSelectiveDecay, 0, 4};
  expect_invalid(cfg, "L3");
  // Baseline/protocol configs never sweep, so a zero window is benign.
  cfg.l3_decay = decay::DecayConfig{decay::Technique::kProtocol, 0, 4};
  EXPECT_NO_THROW(validate_system_config(cfg));
}

TEST(ConfigValidation, CmpSystemConstructorEnforcesIt) {
  SystemConfig cfg = base();
  cfg.num_cores = 0;
  EXPECT_THROW(
      CmpSystem(cfg, workload::benchmark_by_name("mpeg2enc")),
      std::invalid_argument);
}

}  // namespace
}  // namespace cdsim::sim
