// Unit tests for the directory-mesh coherence subsystem: directed (not
// broadcast) snoop fan-out, sharer-bitmap/owner bookkeeping incl. clean
// drops and recall-on-turn-off, late-write-back deferral, and the
// end-to-end CmpSystem wiring (metrics, energy ledger, invariants).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cdsim/coherence/directory.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/noc/directory_mesh.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/verify/oracle.hpp"
#include "cdsim/workload/fuzzer.hpp"

namespace cdsim {
namespace {

using coherence::BusTxKind;
using coherence::MesiState;

// ---------------------------------------------------------------------------
// Directory bookkeeping (no mesh)
// ---------------------------------------------------------------------------

TEST(Directory, RecordProbeTracksSharersAndOwner) {
  coherence::Directory dir(8);
  coherence::DirectoryEntry& e = dir.lookup(0x100);
  dir.record_probe(e, 2, MesiState::kExclusive);
  EXPECT_TRUE(e.tracked(2));
  EXPECT_EQ(e.owner, 2u);

  // Remote read downgraded the owner: E -> S releases ownership.
  dir.record_probe(e, 2, MesiState::kShared);
  dir.record_probe(e, 5, MesiState::kShared);
  EXPECT_TRUE(e.tracked(2));
  EXPECT_TRUE(e.tracked(5));
  EXPECT_EQ(e.owner, kNoCore);

  // A store upgrade: the new M holder owns, the invalidated sharer drops.
  dir.record_probe(e, 5, MesiState::kModified);
  dir.record_probe(e, 2, MesiState::kInvalid);
  EXPECT_FALSE(e.tracked(2));
  EXPECT_EQ(e.owner, 5u);
  EXPECT_EQ(coherence::to_string(e), "{sharers=0x20, owner=5}");
}

TEST(Directory, TransientCleanKeepsExclusiveOwnership) {
  coherence::Directory dir(4);
  coherence::DirectoryEntry& e = dir.lookup(0x200);
  dir.record_probe(e, 1, MesiState::kExclusive);
  // E -> TC (clean turn-off in progress): still the answering copy.
  dir.record_probe(e, 1, MesiState::kTransientClean);
  EXPECT_EQ(e.owner, 1u);
  // The completed turn-off is a PutE: legality recorded, entry reclaimed.
  dir.note_clean_drop(1, 0x200);
  EXPECT_EQ(dir.find(0x200), nullptr);
  EXPECT_EQ(dir.stats().exclusive_drops.value(), 1u);
}

TEST(Directory, CleanDropOfSharedCopyKeepsOtherSharers) {
  coherence::Directory dir(4);
  coherence::DirectoryEntry& e = dir.lookup(0x300);
  dir.record_probe(e, 0, MesiState::kShared);
  dir.record_probe(e, 3, MesiState::kShared);
  dir.note_clean_drop(0, 0x300);
  const coherence::DirectoryEntry* after = dir.find(0x300);
  ASSERT_NE(after, nullptr);
  EXPECT_FALSE(after->tracked(0));
  EXPECT_TRUE(after->tracked(3));
  EXPECT_EQ(dir.stats().clean_drops.value(), 1u);
}

TEST(Directory, LateWritebackLeavesNewOwnerAlone) {
  coherence::Directory dir(4);
  coherence::DirectoryEntry& e = dir.lookup(0x400);
  dir.record_probe(e, 0, MesiState::kModified);
  // Ownership moved on (an upgrade won the race) before core 0's
  // write-back arrived.
  dir.record_probe(e, 1, MesiState::kModified);
  dir.writeback_granted(0, 0x400);
  const coherence::DirectoryEntry* after = dir.find(0x400);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->owner, 1u);
  EXPECT_EQ(dir.stats().late_writebacks.value(), 1u);
}

// ---------------------------------------------------------------------------
// DirectoryMesh transport (mini coherent caches on a mesh)
// ---------------------------------------------------------------------------

/// A minimal coherent cache: per-line MESI/MOESI state driven by the real
/// protocol functions, installing at on_grant like the L2 does — but with
/// no timing, MSHRs or decay, so directory/transport behavior is isolated.
class MiniCache final : public noc::Snooper {
 public:
  explicit MiniCache(coherence::Protocol p = coherence::Protocol::kMesi)
      : protocol_(p) {}

  coherence::Protocol protocol_;
  std::map<Addr, MesiState> lines;
  int snoops_seen = 0;

  noc::SnoopReply snoop(BusTxKind kind, Addr line, CoreId) override {
    ++snoops_seen;
    const auto it = lines.find(line);
    const MesiState s = it == lines.end() ? MesiState::kInvalid : it->second;
    const coherence::SnoopOutcome out =
        coherence::apply_snoop(protocol_, s, kind);
    if (out.next == MesiState::kInvalid) {
      lines.erase(line);
    } else {
      lines[line] = out.next;
    }
    return {out.had_line, out.supply_data, out.memory_update};
  }

  [[nodiscard]] MesiState probe(Addr line) const override {
    const auto it = lines.find(line);
    return it == lines.end() ? MesiState::kInvalid : it->second;
  }
};

struct MeshFixture {
  EventQueue eq;
  mem::MemoryConfig mcfg;
  mem::MemoryController mem{eq, mcfg};
  noc::DirectoryMeshConfig cfg;
  noc::DirectoryMesh mesh{eq, cfg, mem, 4};  // 2x2
  MiniCache c0, c1, c2, c3;
  MiniCache* caches[4] = {&c0, &c1, &c2, &c3};

  MeshFixture() {
    for (MiniCache* c : caches) mesh.attach(c);
  }

  /// Issues a fill and installs the result at the grant, like the L2.
  void fill(CoreId who, Addr line, bool write, Cycle* done = nullptr) {
    noc::RequestHooks hooks;
    hooks.on_grant = [this, who, line, write](const noc::BusResult& r) {
      caches[who]->lines[line] = coherence::fill_state(write, r.shared);
    };
    hooks.on_done = [done](const noc::BusResult& r) {
      if (done != nullptr) *done = r.done_at;
    };
    mesh.request(write ? BusTxKind::kBusRdX : BusTxKind::kBusRd, line, who,
                 64, std::move(hooks));
  }
};

TEST(DirectoryMesh, FillFromMemoryInstallsExclusiveAndTracksOwner) {
  MeshFixture f;
  Cycle done = 0;
  f.fill(0, 0x1000, /*write=*/false, &done);
  f.eq.run();
  EXPECT_GT(done, 0u);
  EXPECT_EQ(f.c0.lines[0x1000], MesiState::kExclusive);
  const auto* e = f.mesh.directory().find(0x1000);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->tracked(0));
  EXPECT_EQ(e->owner, 0u);
  // Nobody held the line: no snoops at all (a bus would have asked 3).
  EXPECT_EQ(f.c1.snoops_seen + f.c2.snoops_seen + f.c3.snoops_seen, 0);
}

TEST(DirectoryMesh, SnoopsAreDirectedAtTrackedHoldersOnly) {
  MeshFixture f;
  f.fill(0, 0x2000, false);
  f.eq.run();
  f.fill(1, 0x2000, false);  // must snoop exactly core 0
  f.eq.run();
  EXPECT_EQ(f.c0.snoops_seen, 1);
  EXPECT_EQ(f.c2.snoops_seen, 0);
  EXPECT_EQ(f.c3.snoops_seen, 0);
  EXPECT_EQ(f.c0.lines[0x2000], MesiState::kShared);  // E -> S
  EXPECT_EQ(f.c1.lines[0x2000], MesiState::kShared);  // shared fill
  const auto* e = f.mesh.directory().find(0x2000);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->tracked(0));
  EXPECT_TRUE(e->tracked(1));
  EXPECT_EQ(e->owner, kNoCore);
}

TEST(DirectoryMesh, WriteFetchInvalidatesAllTrackedSharers) {
  MeshFixture f;
  f.fill(0, 0x3000, false);
  f.eq.run();
  f.fill(1, 0x3000, false);
  f.eq.run();
  f.fill(2, 0x3000, /*write=*/true);
  f.eq.run();
  EXPECT_EQ(f.c0.probe(0x3000), MesiState::kInvalid);
  EXPECT_EQ(f.c1.probe(0x3000), MesiState::kInvalid);
  EXPECT_EQ(f.c2.lines[0x3000], MesiState::kModified);
  const auto* e = f.mesh.directory().find(0x3000);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->sharers, 1u << 2);
  EXPECT_EQ(e->owner, 2u);
  // Core 3 never held the line and was never bothered.
  EXPECT_EQ(f.c3.snoops_seen, 0);
}

TEST(DirectoryMesh, DirtyFillIsSuppliedByOwnerCacheToCache) {
  MeshFixture f;
  f.fill(0, 0x4000, /*write=*/true);
  f.eq.run();
  bool supplied = false;
  noc::RequestHooks hooks;
  hooks.on_grant = [&](const noc::BusResult& r) {
    supplied = r.supplied_by_cache;
    f.c1.lines[0x4000] = coherence::fill_state(false, r.shared);
  };
  f.mesh.request(BusTxKind::kBusRd, 0x4000, 1, 64, std::move(hooks));
  f.eq.run();
  EXPECT_TRUE(supplied);
  EXPECT_EQ(f.c0.lines[0x4000], MesiState::kShared);  // MESI flush: M -> S
  // The flush wrote memory.
  EXPECT_GT(f.mem.bytes_written(), 0u);
}

TEST(DirectoryMesh, RecallOnOwnedTurnoffIsDirectedAndCountsRecalls) {
  // MOESI: build O at core 0 with an S replica at core 1, then run the
  // §III Owned turn-off: TD + Upgr (recall) + write-back.
  MeshFixture f;
  for (MiniCache* c : f.caches) c->protocol_ = coherence::Protocol::kMoesi;
  f.fill(0, 0x5000, /*write=*/true);  // M at 0
  f.eq.run();
  f.fill(1, 0x5000, false);  // MOESI: owner supplies, M -> O
  f.eq.run();
  ASSERT_EQ(f.c0.lines[0x5000], MesiState::kOwned);
  ASSERT_EQ(f.c1.lines[0x5000], MesiState::kShared);

  // Decay turn-off reaches the O line: enter TD, recall the sharers.
  f.c0.lines[0x5000] = MesiState::kTransientDirty;
  f.c2.snoops_seen = f.c3.snoops_seen = 0;
  bool recalled = false;
  noc::RequestHooks hooks;
  hooks.on_done = [&](const noc::BusResult&) { recalled = true; };
  f.mesh.request(BusTxKind::kBusUpgr, 0x5000, 0, 0, std::move(hooks));
  f.eq.run();
  EXPECT_TRUE(recalled);
  EXPECT_EQ(f.mesh.recalls(), 1u);
  EXPECT_EQ(f.c1.probe(0x5000), MesiState::kInvalid);  // directed inval
  EXPECT_EQ(f.c2.snoops_seen + f.c3.snoops_seen, 0);   // not a broadcast

  // The flush write-back retires the TD line; the completion powers it
  // off and releases directory tracking.
  f.mesh.request(BusTxKind::kWriteBack, 0x5000, 0, 64,
                 noc::Interconnect::Completion{[&](const noc::BusResult&) {
                   f.c0.lines.erase(0x5000);
                   f.mesh.note_clean_drop(0, 0x5000);
                 }});
  f.eq.run();
  EXPECT_EQ(f.mesh.directory().find(0x5000), nullptr);
}

TEST(DirectoryMesh, FillDefersBehindInFlightWriteback) {
  MeshFixture f;
  f.fill(0, 0x6040, /*write=*/true);  // M at core 0
  f.eq.run();

  // Core 0 evicts: the copy dies NOW, the write-back crosses the mesh.
  f.c0.lines.erase(0x6040);
  Cycle wb_done = 0;
  f.mesh.request(BusTxKind::kWriteBack, 0x6040, 0, 64,
                 noc::Interconnect::Completion{
                     [&](const noc::BusResult& r) { wb_done = r.done_at; }});
  // Core 1's refetch races it. Whatever the arrival order, it must not
  // read around the in-flight dirty data.
  Cycle fill_done = 0;
  f.fill(1, 0x6040, false, &fill_done);
  f.eq.run();

  EXPECT_GT(wb_done, 0u);
  EXPECT_GT(fill_done, 0u);
  EXPECT_EQ(f.c1.lines[0x6040], MesiState::kExclusive);
  EXPECT_EQ(f.mesh.deferrals(), 1u);
  const auto* e = f.mesh.directory().find(0x6040);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, 1u);
  EXPECT_FALSE(e->tracked(0));
}

// ---------------------------------------------------------------------------
// End to end: a 16-core directory CMP through CmpSystem
// ---------------------------------------------------------------------------

TEST(DirectoryCmp, SixteenCoreMeshRunsVerifiedWithNocMetrics) {
  sim::SystemConfig cfg;
  cfg.topology = noc::Topology::kDirectoryMesh;
  cfg.num_cores = 16;
  cfg.total_l2_bytes = 16 * 32 * KiB;
  cfg.l1.size_bytes = 8 * KiB;
  cfg.instructions_per_core = 12000;
  cfg.decay = decay::DecayConfig{decay::Technique::kDecay, 2048, 4};

  workload::FuzzerConfig fc;
  fc.num_cores = cfg.num_cores;
  fc.decay_window = 2048;
  fc.w_hot_home = 0.2;
  fc.home_tiles = cfg.num_cores;
  workload::Benchmark bench;
  bench.config.name = "dmesh-16";
  const workload::StreamFactory factory = [&fc](CoreId core,
                                                std::uint64_t seed) {
    return std::make_unique<workload::FuzzerWorkload>(fc, core, seed);
  };

  verify::DifferentialChecker checker(cfg.num_cores);
  sim::CmpSystem sys(cfg, bench, factory);
  sys.set_observer(&checker);
  const sim::RunMetrics m = sys.run();
  EXPECT_GT(sys.check_coherence_invariants(), 0u);

  EXPECT_EQ(checker.total_divergences(), 0u);
  EXPECT_EQ(m.topology, "dmesh");
  EXPECT_GE(m.instructions, 16u * 12000u);
  EXPECT_GT(m.noc_flit_hops, 0u);
  EXPECT_GT(m.noc_avg_packet_latency, 0.0);
  EXPECT_GT(m.dir_directed_snoops, 0u);
  EXPECT_GT(m.bus_utilization, 0.0);
  // Interconnect energy lands in the NoC component, not the bus one.
  EXPECT_GT(m.ledger.get(power::Component::kNocDynamic), 0.0);
  EXPECT_DOUBLE_EQ(m.ledger.get(power::Component::kBusDynamic), 0.0);
  // Mesh accessor works; bus accessor must not (wrong topology).
  EXPECT_GT(sys.mesh().noc().packets_delivered(), 0u);
}

TEST(DirectoryCmp, DecayTurnoffsReleaseDirectoryTracking) {
  // After a run with aggressive decay, the directory must not have grown
  // beyond the lines that are actually alive somewhere (clean drops,
  // write-backs and probes reclaim entries).
  sim::SystemConfig cfg;
  cfg.topology = noc::Topology::kDirectoryMesh;
  cfg.num_cores = 8;  // asymmetric 4x2 mesh
  cfg.total_l2_bytes = 8 * 32 * KiB;
  cfg.l1.size_bytes = 8 * KiB;
  cfg.instructions_per_core = 10000;
  cfg.decay = decay::DecayConfig{decay::Technique::kDecay, 1024, 4};

  workload::FuzzerConfig fc;
  fc.num_cores = cfg.num_cores;
  fc.decay_window = 1024;
  workload::Benchmark bench;
  bench.config.name = "dmesh-8-decay";
  const workload::StreamFactory factory = [&fc](CoreId core,
                                                std::uint64_t seed) {
    return std::make_unique<workload::FuzzerWorkload>(fc, core, seed);
  };
  sim::CmpSystem sys(cfg, bench, factory);
  const sim::RunMetrics m = sys.run();
  sys.check_coherence_invariants();
  EXPECT_GT(m.l2_decay_turnoffs, 0u);

  // Every directory entry must track at least one live copy; count live
  // lines and compare against retained entries.
  std::uint64_t live = 0;
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    sys.l2(c).for_each_valid_line([&](Addr, MesiState) { ++live; });
  }
  EXPECT_LE(sys.mesh().directory().entries(), live);
}

}  // namespace
}  // namespace cdsim
