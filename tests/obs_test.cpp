// Tests for cdsim::obs — the timeline recorder, the windowed time-series
// sampler, and the host profiler.
//
// The load-bearing property is in AttachedVsDetached*: attaching the full
// observability stack to a run must leave every RunMetrics field
// bit-identical to the detached run. Everything else here checks the
// artifacts themselves: the trace file is valid Chrome-trace JSON (and
// truncation/corruption is *detected*, not shrugged at), the sampler's
// window arithmetic covers the run exactly, zero-event runs still produce
// valid files, and the series checksum for a pinned config is pinned like
// the golden hexfloat metrics.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cdsim/common/host_timer.hpp"
#include "cdsim/obs/interval_sampler.hpp"
#include "cdsim/obs/json_check.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace {

using namespace cdsim;

std::string tmp_path(const char* stem) {
  return ::testing::TempDir() + stem + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::uint64_t count_token(const std::string& text, const std::string& token) {
  std::uint64_t n = 0;
  for (std::size_t at = text.find(token); at != std::string::npos;
       at = text.find(token, at + token.size())) {
    ++n;
  }
  return n;
}

/// One small pinned run (FMM, 1 MiB, decay64K, 20k instr/core) used by
/// several tests below. Observability hooks attach to whatever the caller
/// passes; nullptr means detached.
sim::RunMetrics run_small(obs::TraceRecorder* rec, obs::IntervalSampler* s) {
  decay::DecayConfig d{decay::Technique::kDecay, 64 * 1024, 4};
  sim::SystemConfig cfg = sim::make_system_config(1 * MiB, d);
  cfg.instructions_per_core = 20000;
  const auto& bench = workload::benchmark_by_name("FMM");
  sim::CmpSystem sys(sim::normalized_run_config(cfg, bench), bench);
  if (rec != nullptr) sys.set_trace_recorder(rec);
  if (s != nullptr) sys.set_sampler(s);
  return sys.run();
}

// --- trace recorder ---------------------------------------------------------

TEST(TraceRecorder, EmitsWellFormedJson) {
  const std::string path = tmp_path("obs_trace") + ".json";
  obs::TraceRecorder rec;
  std::string err;
  ASSERT_TRUE(rec.open(path, &err)) << err;
  const sim::RunMetrics m = run_small(&rec, nullptr);
  ASSERT_TRUE(rec.close());
  EXPECT_GT(m.instructions, 0u);
  EXPECT_GT(rec.events(), 0u);
  EXPECT_GT(rec.tracks(), 0u);

  const std::string text = slurp(path);
  std::remove(path.c_str());
  ASSERT_FALSE(text.empty());
  const obs::JsonCheckResult r = obs::json_check(text);
  EXPECT_TRUE(r.ok) << "at byte " << r.error_at << ": " << r.error;

  // The metadata events name exactly the registered tracks, and every
  // emitted event is accounted for in the file.
  EXPECT_EQ(count_token(text, "\"ph\":\"M\""), rec.tracks());
  EXPECT_EQ(count_token(text, "\"ph\":"), rec.events());
  // The wiring registers one track per core plus the caches and fabric.
  EXPECT_NE(text.find("\"core0\""), std::string::npos);
  EXPECT_NE(text.find("\"L2.0\""), std::string::npos);
  EXPECT_NE(text.find("\"fabric\""), std::string::npos);
}

TEST(TraceRecorder, TruncatedFileIsDetected) {
  const std::string path = tmp_path("obs_trunc") + ".json";
  obs::TraceRecorder rec;
  ASSERT_TRUE(rec.open(path));
  run_small(&rec, nullptr);
  ASSERT_TRUE(rec.close());
  const std::string text = slurp(path);
  std::remove(path.c_str());
  ASSERT_GT(text.size(), 64u);

  // A stream cut anywhere before the closing "]}" must fail validation —
  // this is what lets cdtrace flag a crashed/killed run's trace instead of
  // silently summarizing half a timeline.
  EXPECT_FALSE(obs::json_check(text.substr(0, text.size() / 2)).ok);
  EXPECT_FALSE(obs::json_check(text.substr(0, text.size() - 3)).ok);

  // Single-byte corruption in the middle is caught too, with a position.
  std::string corrupt = text;
  corrupt[corrupt.size() / 2] = '\x01';
  const obs::JsonCheckResult r = obs::json_check(corrupt);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.error_at, 0u);
}

TEST(TraceRecorder, ZeroEventRunIsValidEmptyFile) {
  const std::string path = tmp_path("obs_empty") + ".json";
  obs::TraceRecorder rec;
  ASSERT_TRUE(rec.open(path));
  ASSERT_TRUE(rec.close());
  EXPECT_EQ(rec.events(), 0u);

  const std::string text = slurp(path);
  std::remove(path.c_str());
  const obs::JsonCheckResult r = obs::json_check(text);
  EXPECT_TRUE(r.ok) << "at byte " << r.error_at << ": " << r.error;
  EXPECT_NE(text.find("traceEvents"), std::string::npos);
}

TEST(TraceRecorder, OpenFailureLeavesRecorderInactive) {
  obs::TraceRecorder rec;
  std::string err;
  EXPECT_FALSE(rec.open("/nonexistent-dir/trace.json", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(rec.active());
  // Emission against an inactive recorder is a defined no-op.
  const obs::TrackId t = rec.track("t");
  rec.instant(t, "x", 1);
  rec.span(t, "y", 1, 2);
  EXPECT_EQ(rec.events(), 0u);
}

// --- interval sampler -------------------------------------------------------

TEST(IntervalSampler, WindowArithmeticCoversTheRunExactly) {
  // A period that does not divide the run length: the final partial window
  // must close at the end cycle, so rows == ceil(cycles / period) and the
  // windows tile [0, cycles) without gap or overlap.
  obs::IntervalSampler s(7777);
  const std::string path = tmp_path("obs_series") + ".csv";
  ASSERT_TRUE(s.open_csv(path));
  const sim::RunMetrics m = run_small(nullptr, &s);
  ASSERT_TRUE(s.finish());
  EXPECT_EQ(s.rows(), (m.cycles + 7776) / 7777);

  // The CSV mirrors the pushed rows: header + one line per row.
  const std::string text = slurp(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_token(text, "\n"), s.rows() + 1);
  EXPECT_EQ(text.rfind("window_start,", 0), 0u);
}

TEST(IntervalSampler, ZeroRowRunIsValidHeaderOnlyFile) {
  obs::IntervalSampler s(100);
  const std::string path = tmp_path("obs_empty_series") + ".csv";
  ASSERT_TRUE(s.open_csv(path));
  ASSERT_TRUE(s.finish());
  EXPECT_EQ(s.rows(), 0u);
  const std::string text = slurp(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_token(text, "\n"), 1u);
  EXPECT_EQ(text.rfind("window_start,", 0), 0u);
}

TEST(IntervalSampler, ChecksumCoversBitsNotText) {
  // Two samplers fed the same rows agree; flipping one low mantissa bit —
  // invisible at any printf precision — changes the checksum.
  obs::SampleRow row;
  row.window_start = 0;
  row.window_end = 100;
  row.instructions = 42;
  row.ipc = 0.42;
  obs::IntervalSampler a(100), b(100), c(100);
  a.push(row);
  b.push(row);
  EXPECT_EQ(a.checksum(), b.checksum());
  row.ipc = std::nextafter(row.ipc, 1.0);
  c.push(row);
  EXPECT_NE(a.checksum(), c.checksum());
}

// --- the observer-only contract ---------------------------------------------

TEST(Observability, AttachedVsDetachedMetricsAreBitIdentical) {
  const sim::RunMetrics plain = run_small(nullptr, nullptr);

  const std::string path = tmp_path("obs_attached") + ".json";
  obs::TraceRecorder rec;
  ASSERT_TRUE(rec.open(path));
  obs::IntervalSampler s(5000);
  const sim::RunMetrics traced = run_small(&rec, &s);
  ASSERT_TRUE(rec.close());
  std::remove(path.c_str());

  // Bit-for-bit across every pinned field — EXPECT_EQ on doubles is exact.
  EXPECT_EQ(plain.cycles, traced.cycles);
  EXPECT_EQ(plain.instructions, traced.instructions);
  EXPECT_EQ(plain.ipc, traced.ipc);
  EXPECT_EQ(plain.l2_occupation, traced.l2_occupation);
  EXPECT_EQ(plain.l2_miss_rate, traced.l2_miss_rate);
  EXPECT_EQ(plain.l2_accesses, traced.l2_accesses);
  EXPECT_EQ(plain.l2_misses, traced.l2_misses);
  EXPECT_EQ(plain.l2_decay_turnoffs, traced.l2_decay_turnoffs);
  EXPECT_EQ(plain.l2_decay_induced_misses, traced.l2_decay_induced_misses);
  EXPECT_EQ(plain.l2_coherence_invals, traced.l2_coherence_invals);
  EXPECT_EQ(plain.l2_writebacks, traced.l2_writebacks);
  EXPECT_EQ(plain.amat, traced.amat);
  EXPECT_EQ(plain.mem_bandwidth, traced.mem_bandwidth);
  EXPECT_EQ(plain.mem_bytes, traced.mem_bytes);
  EXPECT_EQ(plain.energy, traced.energy);
  EXPECT_EQ(plain.avg_l2_temp_kelvin, traced.avg_l2_temp_kelvin);
  EXPECT_EQ(plain.bus_utilization, traced.bus_utilization);
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto comp = static_cast<power::Component>(i);
    EXPECT_EQ(plain.ledger.get(comp), traced.ledger.get(comp))
        << to_string(comp);
  }
}

TEST(Observability, DramMachineTracesAndStaysBitIdentical) {
  // The memory-side emission points (bank access spans, refresh instants,
  // TLB walks) ride the kDram model; prove they are observer-only too and
  // that they actually show up in the file.
  decay::DecayConfig d{decay::Technique::kDecay, 64 * 1024, 4};
  sim::SystemConfig cfg = sim::make_system_config(1 * MiB, d);
  cfg.instructions_per_core = 20000;
  cfg.mem.model = mem::MemoryModel::kDram;
  cfg.mem.tlb.enabled = true;
  const auto& bench = workload::benchmark_by_name("mpeg2enc");

  sim::CmpSystem plain_sys(sim::normalized_run_config(cfg, bench), bench);
  const sim::RunMetrics plain = plain_sys.run();

  const std::string path = tmp_path("obs_dram") + ".json";
  obs::TraceRecorder rec;
  ASSERT_TRUE(rec.open(path));
  sim::CmpSystem traced_sys(sim::normalized_run_config(cfg, bench), bench);
  traced_sys.set_trace_recorder(&rec);
  const sim::RunMetrics traced = traced_sys.run();
  ASSERT_TRUE(rec.close());

  EXPECT_EQ(plain.cycles, traced.cycles);
  EXPECT_EQ(plain.energy, traced.energy);
  EXPECT_EQ(plain.dram_row_hits, traced.dram_row_hits);
  EXPECT_EQ(plain.dram_row_conflicts, traced.dram_row_conflicts);
  EXPECT_EQ(plain.tlb_misses, traced.tlb_misses);

  const std::string text = slurp(path);
  std::remove(path.c_str());
  EXPECT_TRUE(obs::json_check(text).ok);
  EXPECT_NE(text.find("\"dram.c0\""), std::string::npos);
  EXPECT_NE(text.find("\"dram.c0.b0\""), std::string::npos);
  EXPECT_NE(text.find("\"tlb.0\""), std::string::npos);
}

// --- golden series pin ------------------------------------------------------

// The time-series analogue of the golden hexfloat metrics: the FNV-1a64
// checksum over every SampleRow's raw bit patterns for one pinned config.
// Captured by running this test and printing sampler.checksum() with
// "%016llx" (the EXPECT_EQ failure message shows the live value). If an
// intentional modeling change shifts it, re-capture in the same commit —
// never widen to a tolerance; the checksum has none.
TEST(Observability, GoldenSeriesChecksumIsPinned) {
  obs::IntervalSampler s(10000);  // checksum-only: no CSV sink needed
  const sim::RunMetrics m = run_small(nullptr, &s);
  EXPECT_EQ(m.instructions, 80000u);
  EXPECT_EQ(s.rows(), (m.cycles + 9999) / 10000);
  EXPECT_EQ(s.checksum(), 0x97068239618517edULL);
}

// --- host profiler ----------------------------------------------------------

TEST(HostProfiler, ScopedPhaseAccumulatesOnlyWhenEnabled) {
  using prof::HostProfiler;
  using prof::Phase;
  HostProfiler::reset();

  {  // Disabled (the default): a scope leaves no trace.
    const prof::ScopedPhase scope(Phase::kOracle);
  }
  EXPECT_EQ(HostProfiler::calls(Phase::kOracle), 0u);
  EXPECT_EQ(HostProfiler::nanos(Phase::kOracle), 0u);

  HostProfiler::set_enabled(true);
  {
    const prof::ScopedPhase scope(Phase::kOracle);
  }
  {
    const prof::ScopedPhase scope(Phase::kOracle);
  }
  HostProfiler::set_enabled(false);
  EXPECT_EQ(HostProfiler::calls(Phase::kOracle), 2u);

  HostProfiler::reset();
  EXPECT_EQ(HostProfiler::calls(Phase::kOracle), 0u);
}

TEST(HostProfiler, ProfiledRunIsStillBitIdentical) {
  // The profiler reads the wall clock, but its measurements flow only into
  // host-side counters — simulated results cannot move.
  const sim::RunMetrics plain = run_small(nullptr, nullptr);
  prof::HostProfiler::reset();
  prof::HostProfiler::set_enabled(true);
  const sim::RunMetrics profiled = run_small(nullptr, nullptr);
  prof::HostProfiler::set_enabled(false);
  EXPECT_EQ(plain.cycles, profiled.cycles);
  EXPECT_EQ(plain.energy, profiled.energy);
  EXPECT_EQ(plain.ipc, profiled.ipc);
  // The run loop was really measured.
  EXPECT_GT(prof::HostProfiler::calls(prof::Phase::kEventDispatch), 0u);
  EXPECT_GT(prof::HostProfiler::nanos(prof::Phase::kEventDispatch), 0u);
  prof::HostProfiler::reset();
}

}  // namespace
