// Unit tests for the core model, driven by a scriptable LoadStorePort.

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/core/core_model.hpp"
#include "cdsim/workload/scripted.hpp"

namespace cdsim::core {
namespace {

using workload::MemOp;

/// Test port: loads hit synchronously with `hit_latency` unless their line
/// address is in `miss_set`, in which case they complete after
/// `miss_latency`. Stores always accepted unless `reject_stores`.
class FakePort final : public LoadStorePort {
 public:
  explicit FakePort(EventQueue& eq) : eq_(eq) {}

  LoadOutcome try_load(Addr addr, LoadCallback on_done) override {
    ++loads;
    if (reject_next_loads > 0) {
      --reject_next_loads;
      return {};
    }
    if (miss_set.count(addr & ~63ull) == 0) {
      return {.accepted = true, .completed = true, .latency = hit_latency};
    }
    ++misses;
    eq_.schedule_in(miss_latency, [cb = std::move(on_done), this] {
      cb(eq_.now());
    });
    return {.accepted = true};
  }

  bool try_store(Addr) override {
    ++stores;
    return !reject_stores;
  }

  void set_resources_freed(core::FreedCallback cb) override {
    freed = std::move(cb);
  }

  EventQueue& eq_;
  std::set<Addr> miss_set;
  Cycle hit_latency = 2;
  Cycle miss_latency = 100;
  int loads = 0, stores = 0, misses = 0;
  int reject_next_loads = 0;
  bool reject_stores = false;
  core::FreedCallback freed;
};

MemOp load(Addr a, std::uint32_t gap = 0, bool dep = false,
           std::uint8_t chain = 0) {
  return MemOp{AccessType::kLoad, a, gap, dep, chain};
}
MemOp store(Addr a, std::uint32_t gap = 0) {
  return MemOp{AccessType::kStore, a, gap, false, 0};
}

TEST(CoreModel, FinishesBudgetAndCountsCommits) {
  EventQueue eq;
  FakePort port(eq);
  workload::ScriptedWorkload w({load(0x40, 3)});
  CoreConfig cfg;
  CoreModel core(eq, cfg, 0, w, port, 100);
  bool finished = false;
  core.start([&] { finished = true; });
  eq.run();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(core.done());
  EXPECT_GE(core.committed(), 100u);
  EXPECT_GT(core.finish_cycle(), 0u);
}

TEST(CoreModel, GapsPaceInstructionsAtIssueWidth) {
  EventQueue eq;
  FakePort port(eq);
  // Every op: 8 gap instructions + 1 load hit. At width 4 that is 2 cycles
  // per op; hits are free.
  workload::ScriptedWorkload w({load(0x40, 8)});
  CoreConfig cfg;
  cfg.issue_width = 4;
  CoreModel core(eq, cfg, 0, w, port, 9000);
  core.start();
  eq.run();
  const double cpi = static_cast<double>(core.finish_cycle()) / 9000.0;
  EXPECT_NEAR(cpi, 2.0 / 9.0, 0.01);  // 2 cycles per 9 instructions
}

TEST(CoreModel, IndependentMissesOverlap) {
  EventQueue eq;
  FakePort port(eq);
  port.miss_set = {0x1000, 0x2000, 0x3000, 0x4000};
  workload::ScriptedWorkload w({
      load(0x1000, 1), load(0x2000, 1), load(0x3000, 1), load(0x4000, 1),
  });
  CoreConfig cfg;
  CoreModel core(eq, cfg, 0, w, port, 8);  // one pass over the script
  core.start();
  eq.run();
  // Four overlapping 100-cycle misses: finish well under 4x100.
  EXPECT_LT(core.finish_cycle(), 160u);
  EXPECT_EQ(port.misses, 4);
}

TEST(CoreModel, DependentLoadsSerializeWithinTheirChain) {
  EventQueue eq;
  FakePort port(eq);
  port.miss_set = {0x1000, 0x2000};
  workload::ScriptedWorkload w({
      load(0x1000, 1, false, /*chain=*/1),
      load(0x2000, 1, true, /*chain=*/1),  // waits for 0x1000
  });
  CoreConfig cfg;
  CoreModel core(eq, cfg, 0, w, port, 4);
  core.start();
  eq.run();
  // Two chained 100-cycle misses: at least ~200 cycles.
  EXPECT_GE(core.finish_cycle(), 200u);
  EXPECT_GT(core.stall_cycles(), 0u);
  EXPECT_GT(core.stall_breakdown(CoreModel::StallReason::kDep), 0u);
}

TEST(CoreModel, DependentLoadIgnoresOtherChains) {
  EventQueue eq;
  FakePort port(eq);
  port.miss_set = {0x1000};
  workload::ScriptedWorkload w({
      load(0x1000, 1, false, /*chain=*/1),  // slow miss on chain 1
      load(0x2000, 1, true, /*chain=*/2),   // dependent, but chain 2: hit
      load(0x3000, 1, true, /*chain=*/2),
      load(0x4000, 1, true, /*chain=*/2),
  });
  CoreConfig cfg;
  CoreModel core(eq, cfg, 0, w, port, 8);
  core.start();
  eq.run();
  // Chain-2 loads all hit and never wait for the chain-1 miss: the run is
  // bounded by the single miss, not by serialization.
  EXPECT_LT(core.finish_cycle(), 140u);
  EXPECT_EQ(core.stall_breakdown(CoreModel::StallReason::kDep), 0u);
}

TEST(CoreModel, LoadQueueCapStalls) {
  EventQueue eq;
  FakePort port(eq);
  std::vector<MemOp> ops;
  for (Addr a = 0; a < 8; ++a) {
    port.miss_set.insert(0x1000 + a * 64);
    ops.push_back(load(0x1000 + a * 64, 0));
  }
  workload::ScriptedWorkload w(ops);
  CoreConfig cfg;
  cfg.max_outstanding_loads = 2;  // tiny LQ
  cfg.rob_window = 10000;
  CoreModel core(eq, cfg, 0, w, port, 8);
  core.start();
  eq.run();
  EXPECT_GT(core.stall_breakdown(CoreModel::StallReason::kLoadQueue), 0u);
  // MLP of 2 over 8 misses of 100 cycles: at least ~400.
  EXPECT_GE(core.finish_cycle(), 400u);
}

TEST(CoreModel, RobWindowLimitsRunahead) {
  EventQueue eq;
  FakePort port(eq);
  port.miss_set = {0x1000};
  // One miss followed by a long stretch of gap instructions: the ROB fills.
  workload::ScriptedWorkload w(
      {load(0x1000, 0), load(0x40, 50)},
      workload::ScriptedWorkload::AtEnd::kLoop);
  CoreConfig cfg;
  cfg.rob_window = 64;
  CoreModel core(eq, cfg, 0, w, port, 400);
  core.start();
  eq.run();
  EXPECT_GT(core.stall_breakdown(CoreModel::StallReason::kRob), 0u);
}

TEST(CoreModel, PortRejectionParksUntilFreed) {
  EventQueue eq;
  FakePort port(eq);
  port.reject_next_loads = 1;
  workload::ScriptedWorkload w({load(0x40, 1)});
  CoreConfig cfg;
  CoreModel core(eq, cfg, 0, w, port, 4);
  core.start();
  eq.run_until(50);
  EXPECT_FALSE(core.done());  // parked on the rejected load
  port.freed();               // resource freed: core resumes
  eq.run();
  EXPECT_TRUE(core.done());
  EXPECT_GT(core.stall_breakdown(CoreModel::StallReason::kPort), 0u);
}

TEST(CoreModel, FullWriteBufferStallsStores) {
  EventQueue eq;
  FakePort port(eq);
  port.reject_stores = true;
  workload::ScriptedWorkload w({store(0x40, 1)});
  CoreConfig cfg;
  CoreModel core(eq, cfg, 0, w, port, 4);
  core.start();
  eq.run_until(100);
  EXPECT_FALSE(core.done());
  port.reject_stores = false;
  port.freed();
  eq.run();
  EXPECT_TRUE(core.done());
  EXPECT_GT(core.stall_breakdown(CoreModel::StallReason::kStore), 0u);
}

TEST(CoreModel, LoadLatencyHistogramSeesHitsAndMisses) {
  EventQueue eq;
  FakePort port(eq);
  port.miss_set = {0x1000};
  workload::ScriptedWorkload w({load(0x40, 1), load(0x1000, 1)});
  CoreConfig cfg;
  CoreModel core(eq, cfg, 0, w, port, 4);
  core.start();
  eq.run();
  EXPECT_EQ(core.load_latency().count(), core.loads_issued());
  // Mean sits between the hit latency and the miss latency.
  EXPECT_GT(core.load_latency().mean(), 2.0);
  EXPECT_LT(core.load_latency().mean(), 100.0);
}

TEST(CoreModel, IpcReflectsFinishTime) {
  EventQueue eq;
  FakePort port(eq);
  workload::ScriptedWorkload w({load(0x40, 7)});
  CoreConfig cfg;
  CoreModel core(eq, cfg, 0, w, port, 800);
  core.start();
  eq.run();
  EXPECT_NEAR(core.ipc(eq.now()),
              static_cast<double>(core.committed()) /
                  static_cast<double>(core.finish_cycle()),
              1e-12);
}

}  // namespace
}  // namespace cdsim::core
