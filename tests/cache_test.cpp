// Unit tests for the cache substrate: geometry maths, tag array + LRU,
// MSHR merge/complete semantics, write-buffer coalescing and the Table I
// pending-write oracle.

#include <gtest/gtest.h>

#include <vector>

#include "cdsim/cache/geometry.hpp"
#include "cdsim/cache/mshr.hpp"
#include "cdsim/cache/tag_array.hpp"
#include "cdsim/cache/write_buffer.hpp"

namespace cdsim::cache {
namespace {

// --- geometry -----------------------------------------------------------------

TEST(Geometry, BasicDerivedQuantities) {
  Geometry g(1 * MiB, 64, 8);
  EXPECT_EQ(g.num_sets(), 1 * MiB / (64 * 8));
  EXPECT_EQ(g.num_lines(), 1 * MiB / 64);
  EXPECT_EQ(g.line_bytes(), 64u);
}

TEST(Geometry, LineAlignment) {
  Geometry g(64 * KiB, 64, 4);
  EXPECT_EQ(g.line_addr(0x12345), 0x12340u);
  EXPECT_EQ(g.line_addr(0x12340), 0x12340u);
  EXPECT_EQ(g.line_addr(0x1237F), 0x12340u);
}

TEST(Geometry, SetIndexWrapsAndDiffers) {
  Geometry g(8 * KiB, 64, 2);  // 64 sets
  EXPECT_EQ(g.set_index(0), g.set_index(64 * 64));  // one full wrap
  EXPECT_NE(g.set_index(0), g.set_index(64));
}

TEST(Geometry, DirectMappedAndFullyAssociativeExtremes) {
  Geometry direct(4 * KiB, 64, 1);
  EXPECT_EQ(direct.num_sets(), 64u);
  Geometry fully(4 * KiB, 64, 64);
  EXPECT_EQ(fully.num_sets(), 1u);
}

// --- tag array -------------------------------------------------------------------

struct Meta {
  int value = 0;
};

TEST(TagArray, FindAfterInstall) {
  TagArray<Meta> t(Geometry(4 * KiB, 64, 4));
  EXPECT_FALSE(t.find(0x1000));
  const auto slot = t.pick_victim(0x1000);
  t.install(slot, 0x1000, Meta{42});
  const auto ln = t.find(0x1000);
  ASSERT_TRUE(ln);
  EXPECT_EQ(ln.payload().value, 42);
  // Any address within the line matches (same handle: equal index).
  EXPECT_EQ(t.find(0x103F), ln);
  EXPECT_FALSE(t.find(0x1040));
}

TEST(TagArray, LruVictimSelection) {
  // 2-way: fill both ways of one set, touch the first, expect the second
  // to be evicted next.
  Geometry g(8 * KiB, 64, 2);  // 64 sets
  TagArray<Meta> t(g);
  const Addr a = 0x0000, b = a + 64 * 64, c = b + 64 * 64;  // same set
  ASSERT_EQ(g.set_index(a), g.set_index(b));
  t.install(t.pick_victim(a), a, Meta{1});
  t.install(t.pick_victim(b), b, Meta{2});
  t.touch(a);  // a becomes MRU; b is LRU
  const auto victim = t.pick_victim(c);
  EXPECT_TRUE(victim.valid());
  EXPECT_EQ(victim.tag(), b);
}

TEST(TagArray, InvalidWayPreferredOverEviction) {
  Geometry g(8 * KiB, 64, 2);
  TagArray<Meta> t(g);
  const Addr a = 0x0000;
  t.install(t.pick_victim(a), a, Meta{1});
  const auto slot = t.pick_victim(a + 64 * 64);
  EXPECT_FALSE(slot.valid());  // empty way chosen, no eviction needed
}

TEST(TagArray, PickVictimIfRespectsPin) {
  Geometry g(8 * KiB, 64, 2);
  TagArray<Meta> t(g);
  const Addr a = 0x0000, b = a + 64 * 64, c = b + 64 * 64;
  t.install(t.pick_victim(a), a, Meta{1});  // value 1 == pinned
  t.install(t.pick_victim(b), b, Meta{2});
  t.touch(a);
  // b would be the LRU victim; pin it and expect a instead... but a is
  // pinned too -> nullptr.
  const auto none =
      t.pick_victim_if(c, [](LineRef<Meta>) { return false; });
  EXPECT_FALSE(none);
  const auto only_b = t.pick_victim_if(
      c, [](LineRef<Meta> ln) { return ln.payload().value == 2; });
  ASSERT_TRUE(only_b);
  EXPECT_EQ(only_b.tag(), b);
}

TEST(TagArray, CountValidAndForEach) {
  TagArray<Meta> t(Geometry(4 * KiB, 64, 4));
  for (Addr a = 0; a < 10 * 64; a += 64) {
    t.install(t.pick_victim(a), a, Meta{static_cast<int>(a / 64)});
  }
  EXPECT_EQ(t.count_valid(), 10u);
  int sum = 0;
  t.for_each_valid([&](LineRef<Meta> ln) { sum += ln.payload().value; });
  EXPECT_EQ(sum, 45);
}

TEST(TagArray, InvalidateRemovesLine) {
  TagArray<Meta> t(Geometry(4 * KiB, 64, 4));
  t.install(t.pick_victim(0x40), 0x40, Meta{});
  const auto ln = t.find(0x40);
  ASSERT_TRUE(ln);
  t.invalidate(ln);
  EXPECT_FALSE(t.find(0x40));
  EXPECT_EQ(t.count_valid(), 0u);
}

// --- MSHR ------------------------------------------------------------------------

TEST(Mshr, AllocateFindComplete) {
  MshrFile m(4);
  EXPECT_FALSE(m.full());
  auto& e = m.allocate(0x100, false, 5);
  EXPECT_EQ(m.find(0x100), &e);
  EXPECT_EQ(m.in_use(), 1u);

  std::vector<Cycle> seen;
  m.merge(e, false, [&](Cycle c) { seen.push_back(c); });
  m.merge(e, false, [&](Cycle c) { seen.push_back(c + 1); });
  m.complete(0x100, 42);
  EXPECT_EQ(seen, (std::vector<Cycle>{42, 43}));  // merge order preserved
  EXPECT_EQ(m.find(0x100), nullptr);
  EXPECT_EQ(m.in_use(), 0u);
}

TEST(Mshr, CapacityAndFull) {
  MshrFile m(2);
  m.allocate(0x100, false, 0);
  m.allocate(0x200, false, 0);
  EXPECT_TRUE(m.full());
  m.complete(0x100, 1);
  EXPECT_FALSE(m.full());
}

TEST(Mshr, WritePromotion) {
  MshrFile m(2);
  auto& e = m.allocate(0x100, false, 0);
  EXPECT_FALSE(e.is_write);
  m.merge(e, true, [](Cycle) {});
  EXPECT_TRUE(e.is_write);
}

TEST(Mshr, WaiterMayReallocateSameLine) {
  MshrFile m(1);
  auto& e = m.allocate(0x100, false, 0);
  bool reallocated = false;
  m.merge(e, false, [&](Cycle) {
    // The entry must already be freed here.
    EXPECT_FALSE(m.full());
    m.allocate(0x100, true, 10);
    reallocated = true;
  });
  m.complete(0x100, 9);
  EXPECT_TRUE(reallocated);
  EXPECT_EQ(m.in_use(), 1u);
}

TEST(Mshr, LifetimeCounters) {
  MshrFile m(4);
  auto& e = m.allocate(0x100, false, 0);
  m.merge(e, false, [](Cycle) {});
  m.merge(e, false, [](Cycle) {});
  m.complete(0x100, 1);
  m.allocate(0x200, true, 2);
  EXPECT_EQ(m.total_allocations(), 2u);
  EXPECT_EQ(m.total_merges(), 2u);
}

// --- write buffer -----------------------------------------------------------------

TEST(WriteBuffer, FifoDrainOrder) {
  WriteBuffer wb(4);
  EXPECT_TRUE(wb.push(0x100, 0));
  EXPECT_TRUE(wb.push(0x200, 1));
  EXPECT_EQ(wb.drain_next(), std::optional<Addr>(0x100));
  EXPECT_EQ(wb.drain_next(), std::optional<Addr>(0x200));
  EXPECT_EQ(wb.drain_next(), std::nullopt);  // everything already draining
  EXPECT_EQ(wb.draining(), 2u);
  wb.drain_done(0x100);
  EXPECT_EQ(wb.size(), 1u);
  wb.drain_done(0x200);
  EXPECT_TRUE(wb.empty());
}

TEST(WriteBuffer, DrainingSlotDoesNotCoalesce) {
  WriteBuffer wb(4);
  EXPECT_TRUE(wb.push(0x100, 0));
  ASSERT_EQ(wb.drain_next(), std::optional<Addr>(0x100));
  // The drained write has left for the L2; a new store to the same line
  // must allocate a fresh slot.
  EXPECT_TRUE(wb.push(0x100, 1));
  EXPECT_EQ(wb.size(), 2u);
  EXPECT_EQ(wb.total_coalesced(), 0u);
  // Both slots still count as pending (Table I).
  EXPECT_TRUE(wb.pending_to(0x100));
  wb.drain_done(0x100);
  EXPECT_TRUE(wb.pending_to(0x100));
}

TEST(WriteBuffer, TailCoalescing) {
  WriteBuffer wb(2);
  EXPECT_TRUE(wb.push(0x100, 0));
  EXPECT_TRUE(wb.push(0x100, 1));  // coalesces, still one slot
  EXPECT_EQ(wb.size(), 1u);
  EXPECT_TRUE(wb.push(0x200, 2));
  EXPECT_TRUE(wb.full());
  // A same-line store can still coalesce into the tail even when full.
  EXPECT_TRUE(wb.push(0x200, 3));
  // A different line cannot.
  EXPECT_FALSE(wb.push(0x300, 4));
  EXPECT_EQ(wb.total_coalesced(), 2u);
}

TEST(WriteBuffer, PendingWriteOracle) {
  WriteBuffer wb(4);
  wb.push(0x100, 0);
  wb.push(0x200, 1);
  EXPECT_TRUE(wb.pending_to(0x100));
  EXPECT_TRUE(wb.pending_to(0x200));
  EXPECT_FALSE(wb.pending_to(0x300));
  ASSERT_TRUE(wb.drain_next().has_value());
  wb.drain_done(0x100);
  EXPECT_FALSE(wb.pending_to(0x100));  // reached L2: Table I gate released
  EXPECT_TRUE(wb.pending_to(0x200));
}

TEST(WriteBuffer, NonAdjacentSameLineUsesNewSlot) {
  WriteBuffer wb(4);
  wb.push(0x100, 0);
  wb.push(0x200, 1);
  wb.push(0x100, 2);  // not the tail anymore... it is tail-coalescing only
  EXPECT_EQ(wb.size(), 3u);
}

}  // namespace
}  // namespace cdsim::cache
