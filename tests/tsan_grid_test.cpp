// tsan_grid_test — the ThreadSanitizer certification workload.
//
// parallel_runner_test pins the determinism contract (parallel == serial,
// bit-identical); this suite pins the *synchronization* contract that makes
// the parallel path sound. It deliberately provokes every cross-thread
// handoff in the sweep engine — slot-indexed result writes, double-checked
// run() memoization, run_grid racing concurrent run() calls, and two
// runners persisting through the same temp+rename cache file — with small
// instruction counts so the whole suite stays fast under TSan's ~10x
// slowdown.
//
// Build with -DCDSIM_SANITIZE=thread and run this binary: any
// happens-before edge missing from ThreadPool/ExperimentRunner shows up as
// a TSan report, and the assertions re-prove parallel == serial *in the
// instrumented build* (TSan changes timing radically, so the determinism
// contract must hold under it too, not just in the Release build the golden
// pins run in). .github/workflows/sanitizers.yml gates on exactly that.
// In an uninstrumented build this is just one more determinism suite.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cdsim/sim/experiment.hpp"
#include "cdsim/sim/parallel.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace {

using namespace cdsim;

// Exact comparison on purpose: under TSan the scheduler interleavings are
// nothing like the Release build's, so equality here certifies that results
// depend only on the configuration, never on thread timing.
void expect_metrics_identical(const sim::RunMetrics& a,
                              const sim::RunMetrics& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.technique, b.technique);
  EXPECT_EQ(a.total_l2_bytes, b.total_l2_bytes);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.l2_occupation, b.l2_occupation);
  EXPECT_EQ(a.l2_miss_rate, b.l2_miss_rate);
  EXPECT_EQ(a.l2_accesses, b.l2_accesses);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.l2_decay_turnoffs, b.l2_decay_turnoffs);
  EXPECT_EQ(a.l2_decay_induced_misses, b.l2_decay_induced_misses);
  EXPECT_EQ(a.l2_coherence_invals, b.l2_coherence_invals);
  EXPECT_EQ(a.l2_writebacks, b.l2_writebacks);
  EXPECT_EQ(a.amat, b.amat);
  EXPECT_EQ(a.mem_bandwidth, b.mem_bandwidth);
  EXPECT_EQ(a.mem_bytes, b.mem_bytes);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.avg_l2_temp_kelvin, b.avg_l2_temp_kelvin);
  EXPECT_EQ(a.bus_utilization, b.bus_utilization);
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto c = static_cast<power::Component>(i);
    EXPECT_EQ(a.ledger.get(c), b.ledger.get(c)) << to_string(c);
  }
}

class TsanGridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("CDSIM_INSTR");
    ::unsetenv("CDSIM_CACHE_FILE");
  }

  std::string cache_path(const std::string& tag) {
    const std::string p = ::testing::TempDir() + "cdsim_tsan_" + tag + "_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name() +
                          ".cache";
    std::remove(p.c_str());
    return p;
  }

  // Small enough to keep a TSan-instrumented multi-config grid in seconds,
  // large enough that decay sweeps and writebacks actually happen.
  static constexpr std::uint64_t kInstr = 20'000;
};

// The tentpole assertion: a multi-config grid sharded across more workers
// than cells-per-wave, run in the instrumented build, is bit-identical to
// the same cells run serially. Decay techniques are included on purpose —
// the expiry wheel and gated-line retries are the paths where an ordering
// bug would first show up as a metrics diff.
TEST_F(TsanGridTest, ParallelGridMatchesSerialUnderInstrumentation) {
  const auto& suite = workload::benchmark_suite();
  ASSERT_GE(suite.size(), 4u);
  const std::vector<workload::Benchmark> benches{suite[0], suite[2]};
  const std::vector<std::uint64_t> sizes{1 * MiB, 2 * MiB};
  const std::vector<decay::DecayConfig> techs{
      {decay::Technique::kProtocol, 0, 4},
      {decay::Technique::kDecay, 64 * 1024, 4},
      {decay::Technique::kSelectiveDecay, 64 * 1024, 4},
  };
  const decay::DecayConfig baseline{decay::Technique::kBaseline, 0, 4};

  sim::ExperimentRunner serial(kInstr, cache_path("serial"));
  sim::ExperimentRunner parallel(kInstr, cache_path("parallel"));

  const sim::SweepStats sweep = parallel.run_grid(benches, sizes, techs, 8);
  EXPECT_EQ(sweep.simulated, 16u);  // 2 benches x 2 sizes x (3 techs + base)
  EXPECT_EQ(sweep.reused, 0u);

  for (const auto& bench : benches) {
    for (const std::uint64_t bytes : sizes) {
      for (const auto* tech : {&baseline, &techs[0], &techs[1], &techs[2]}) {
        SCOPED_TRACE(bench.config.name + "/" + std::to_string(bytes / MiB) +
                     "MB/" + tech->label());
        expect_metrics_identical(serial.run(bench, bytes, *tech),
                                 parallel.run(bench, bytes, *tech));
      }
    }
  }
}

// Double-checked memoization: N threads request the SAME cell at once.
// Exactly one simulate() may run; everyone must read the same entry. The
// handoff is the mu_ release by the inserting thread before the waiters'
// acquire — if that edge were missing, TSan flags the map node reads here.
TEST_F(TsanGridTest, ConcurrentRunCallsShareOneMemoEntry) {
  const auto& suite = workload::benchmark_suite();
  const workload::Benchmark bench = suite[0];
  const decay::DecayConfig tech{decay::Technique::kDecay, 64 * 1024, 4};

  sim::ExperimentRunner runner(kInstr, cache_path("memo"));

  constexpr int kThreads = 8;
  std::vector<const sim::RunMetrics*> seen(kThreads, nullptr);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&runner, &bench, &tech, &seen, t] {
        seen[t] = &runner.run(bench, 1 * MiB, tech);
      });
    }
    for (auto& th : threads) th.join();
  }

  // std::map nodes are stable: every thread must have landed on the one
  // memoized entry, and its contents must match a fresh serial run.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  sim::ExperimentRunner reference(kInstr, cache_path("memo_ref"));
  expect_metrics_identical(*seen[0], reference.run(bench, 1 * MiB, tech));
}

// run_grid racing concurrent run() calls over an overlapping cell set: the
// grid's post-barrier merge detects cells a concurrent run() inserted first
// (counted as reused, not simulated) and every caller still sees identical
// metrics. This is the exact interleaving run_grid's emplace-else-reused
// branch exists for.
TEST_F(TsanGridTest, GridRacingSerialRunsStaysCoherent) {
  const auto& suite = workload::benchmark_suite();
  const std::vector<workload::Benchmark> benches{suite[0]};
  const std::vector<std::uint64_t> sizes{1 * MiB};
  const std::vector<decay::DecayConfig> techs{
      {decay::Technique::kProtocol, 0, 4},
      {decay::Technique::kDecay, 64 * 1024, 4},
  };

  sim::ExperimentRunner runner(kInstr, cache_path("race"));

  sim::SweepStats sweep;
  std::thread grid([&] { sweep = runner.run_grid(benches, sizes, techs, 4); });
  // Meanwhile, request one of the grid's own cells serially.
  const sim::RunMetrics& direct =
      runner.run(benches[0], 1 * MiB, techs[1]);
  grid.join();

  // Whoever lost the race reused the winner's entry; either way the cell
  // count adds up and both views of the cell are the same object.
  EXPECT_EQ(sweep.simulated + sweep.reused, 3u);  // baseline + 2 techniques
  expect_metrics_identical(direct, runner.run(benches[0], 1 * MiB, techs[1]));
}

// Two runners sharing one cache FILE, persisting concurrently: temp+rename
// means readers never observe a torn file, and the merge-on-persist keeps
// both writers' entries available for a third runner. (Cross-process loss
// of the newest entries is documented best-effort; corruption never is.)
TEST_F(TsanGridTest, SharedCacheFileSurvivesConcurrentPersist) {
  const auto& suite = workload::benchmark_suite();
  const std::string shared = cache_path("shared");
  const decay::DecayConfig protocol{decay::Technique::kProtocol, 0, 4};
  const decay::DecayConfig decay64{decay::Technique::kDecay, 64 * 1024, 4};

  {
    sim::ExperimentRunner a(kInstr, shared);
    sim::ExperimentRunner b(kInstr, shared);
    std::thread ta([&] { a.run(suite[0], 1 * MiB, protocol); });
    std::thread tb([&] { b.run(suite[0], 1 * MiB, decay64); });
    ta.join();
    tb.join();
  }  // both destructors persist (temp + rename) into the same path

  // A fresh runner must reuse at least the surviving writer's entries and
  // agree bit-for-bit with an isolated reference runner on every cell.
  sim::ExperimentRunner fresh(kInstr, shared);
  sim::ExperimentRunner reference(kInstr, cache_path("shared_ref"));
  for (const auto* tech : {&protocol, &decay64}) {
    expect_metrics_identical(fresh.run(suite[0], 1 * MiB, *tech),
                             reference.run(suite[0], 1 * MiB, *tech));
  }
}

}  // namespace
