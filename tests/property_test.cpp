// Property-based tests: whole-system invariants under randomized stress,
// swept across techniques, decay times and cache sizes with parameterized
// gtest. These are the "coherence must hold in all situations, specially
// when a line is turned off" guarantees of the paper's §III.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::sim {
namespace {

using Param = std::tuple<decay::Technique, Cycle /*decay*/, std::uint64_t>;

class SystemPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  SystemConfig make_config() const {
    const auto [tech, dtime, size] = GetParam();
    decay::DecayConfig d;
    d.technique = tech;
    d.decay_time = dtime;
    SystemConfig cfg = make_system_config(size, d);
    cfg.instructions_per_core = 90000;
    return cfg;
  }
};

TEST_P(SystemPropertyTest, CoherenceAndInclusionInvariants) {
  // Use the most sharing-intensive workload: it maximizes invalidation
  // races with turn-offs.
  const auto& bench = workload::benchmark_by_name("WATER-NS");
  CmpSystem sys(make_config(), bench);
  const RunMetrics m = sys.run();
  EXPECT_GT(m.cycles, 0u);
  EXPECT_GT(sys.check_coherence_invariants(), 0u);
}

TEST_P(SystemPropertyTest, OccupationIsAFraction) {
  const auto& bench = workload::benchmark_by_name("mpeg2enc");
  CmpSystem sys(make_config(), bench);
  const RunMetrics m = sys.run();
  EXPECT_GE(m.l2_occupation, 0.0);
  EXPECT_LE(m.l2_occupation, 1.0 + 1e-9);
  const auto [tech, dtime, size] = GetParam();
  if (tech == decay::Technique::kBaseline) {
    EXPECT_DOUBLE_EQ(m.l2_occupation, 1.0);
  } else {
    EXPECT_LT(m.l2_occupation, 1.0);  // cold lines alone guarantee < 1
  }
}

TEST_P(SystemPropertyTest, EnergyLedgerConservation) {
  const auto& bench = workload::benchmark_by_name("facerec");
  CmpSystem sys(make_config(), bench);
  const RunMetrics m = sys.run();
  double sum = 0.0;
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const double v = m.ledger.get(static_cast<power::Component>(i));
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, m.energy, 1e-6 * std::max(1.0, m.energy));
  EXPECT_GT(m.ledger.get(power::Component::kL2Leakage), 0.0);
  EXPECT_GT(m.ledger.get(power::Component::kCoreDynamic), 0.0);
}

TEST_P(SystemPropertyTest, MetricsAreFiniteAndSane) {
  const auto& bench = workload::benchmark_by_name("mpeg2dec");
  CmpSystem sys(make_config(), bench);
  const RunMetrics m = sys.run();
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_LT(m.ipc, 16.0);  // 4 cores x issue width
  EXPECT_GE(m.l2_miss_rate, 0.0);
  EXPECT_LE(m.l2_miss_rate, 1.0);
  EXPECT_GT(m.amat, 1.0);
  EXPECT_GE(m.mem_bandwidth, 0.0);
  EXPECT_GT(m.avg_l2_temp_kelvin, 300.0);
  EXPECT_LT(m.avg_l2_temp_kelvin, 420.0);
  EXPECT_GE(m.bus_utilization, 0.0);
  EXPECT_LE(m.bus_utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystemPropertyTest,
    ::testing::Values(
        Param{decay::Technique::kBaseline, 16384, 1 * MiB},
        Param{decay::Technique::kProtocol, 16384, 1 * MiB},
        Param{decay::Technique::kDecay, 16384, 1 * MiB},
        Param{decay::Technique::kDecay, 4096, 2 * MiB},
        Param{decay::Technique::kSelectiveDecay, 16384, 1 * MiB},
        Param{decay::Technique::kSelectiveDecay, 4096, 4 * MiB},
        Param{decay::Technique::kDecay, 8192, 8 * MiB}),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name{decay::to_string(std::get<0>(info.param))};
      name += "_" + std::to_string(std::get<1>(info.param) / 1024) + "K_" +
              std::to_string(std::get<2>(info.param) / MiB) + "MB";
      return name;
    });

// --- cross-technique orderings the paper's figures assert ---------------------

class OrderingTest : public ::testing::Test {
 protected:
  RunMetrics run(decay::Technique tech, Cycle dtime = 16384) {
    decay::DecayConfig d;
    d.technique = tech;
    d.decay_time = dtime;
    SystemConfig cfg = make_system_config(2 * MiB, d);
    cfg.instructions_per_core = 150000;
    const auto& bench = workload::benchmark_by_name("facerec");
    return run_config(cfg, bench);
  }
};

TEST_F(OrderingTest, OccupationOrdering) {
  // Fig 3(a): baseline(1) > protocol > sel_decay > decay.
  const double base = run(decay::Technique::kBaseline).l2_occupation;
  const double prot = run(decay::Technique::kProtocol).l2_occupation;
  const double sel = run(decay::Technique::kSelectiveDecay).l2_occupation;
  const double dec = run(decay::Technique::kDecay).l2_occupation;
  EXPECT_DOUBLE_EQ(base, 1.0);
  EXPECT_LT(prot, base);
  EXPECT_LE(sel, prot + 1e-9);
  EXPECT_LE(dec, sel + 1e-9);
}

TEST_F(OrderingTest, ProtocolIsTimingNeutral) {
  // Fig 5(b): the Protocol technique never loses performance.
  const RunMetrics base = run(decay::Technique::kBaseline);
  const RunMetrics prot = run(decay::Technique::kProtocol);
  EXPECT_EQ(base.cycles, prot.cycles);
  EXPECT_EQ(base.l2_misses, prot.l2_misses);
  EXPECT_EQ(base.mem_bytes, prot.mem_bytes);
}

TEST_F(OrderingTest, DecayCausesMoreMissesThanSelective) {
  // Fig 3(b): the more aggressive the decay, the higher the miss rate.
  const RunMetrics base = run(decay::Technique::kBaseline);
  const RunMetrics sel = run(decay::Technique::kSelectiveDecay);
  const RunMetrics dec = run(decay::Technique::kDecay);
  EXPECT_GE(sel.l2_misses, base.l2_misses);
  EXPECT_GE(dec.l2_misses, sel.l2_misses);
}

TEST_F(OrderingTest, DecayNeedsMoreBandwidth) {
  // Fig 4(a): decay >> selective decay >> protocol (~0).
  const RunMetrics base = run(decay::Technique::kBaseline);
  const RunMetrics sel = run(decay::Technique::kSelectiveDecay);
  const RunMetrics dec = run(decay::Technique::kDecay);
  EXPECT_GT(dec.mem_bytes, base.mem_bytes);
  EXPECT_GE(dec.mem_bytes, sel.mem_bytes);
}

TEST_F(OrderingTest, SmallerDecayTimeLowersOccupation) {
  const double d64 = run(decay::Technique::kDecay, 4096).l2_occupation;
  const double d512 = run(decay::Technique::kDecay, 32768).l2_occupation;
  EXPECT_LT(d64, d512);
}

TEST_F(OrderingTest, GatedTechniquesSaveL2LeakagePower) {
  // Compare leakage *power* (energy per cycle): decay runs longer than the
  // baseline, so absolute leakage energies are not directly comparable.
  auto leak_rate = [](const RunMetrics& m) {
    return m.ledger.get(power::Component::kL2Leakage) /
           static_cast<double>(m.cycles);
  };
  const RunMetrics base = run(decay::Technique::kBaseline);
  const RunMetrics prot = run(decay::Technique::kProtocol);
  const RunMetrics dec = run(decay::Technique::kDecay);
  EXPECT_LT(leak_rate(prot), leak_rate(base));
  EXPECT_LT(leak_rate(dec), leak_rate(prot));
}

}  // namespace
}  // namespace cdsim::sim
