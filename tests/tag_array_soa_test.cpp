// Differential test: the SoA TagArray against an in-test reference that
// reimplements the previous array-of-structs tag array verbatim.
//
// The SoA rewrite (packed valid bitmap + parallel tag/LRU/payload arrays)
// claims *bit-for-bit* the old semantics — every golden hexfloat pin in the
// suite leans on that. This test earns the claim the direct way: drive both
// implementations through the same randomized operation sequences
// (find / touch / pick_victim / pick_victim_if with pinned ways / install /
// invalidate) over small adversarial geometries, and assert after every
// single operation that they agree on the chosen victim way, hit/miss
// outcomes, LRU ordering effects, count_valid, and the exact for_each_valid
// visitation order.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cdsim/cache/geometry.hpp"
#include "cdsim/cache/tag_array.hpp"
#include "cdsim/common/rng.hpp"

namespace cdsim::cache {
namespace {

struct Meta {
  std::uint32_t stamp = 0;  ///< Install serial, to cross-check payloads.
  bool pinned = false;      ///< Drives the pick_victim_if predicate.
};

// --- reference: the pre-SoA array-of-structs tag array ----------------------
//
// A faithful copy of the old implementation's semantics: one record per
// way, ascending-way scans, first-invalid-way victim, strict `<` LRU
// minimum, monotonic clock stamped at install/touch, invalidate clears the
// valid flag only.

struct RefLine {
  bool valid = false;
  Addr tag = 0;
  std::uint64_t lru_stamp = 0;
  Meta payload;
};

class RefTagArray {
 public:
  explicit RefTagArray(const Geometry& geo)
      : geo_(geo), lines_(geo.num_lines()) {}

  static constexpr std::size_t kMiss = ~std::size_t{0};

  std::size_t find(Addr addr) const {
    const Addr t = geo_.tag(addr);
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    for (std::uint32_t w = 0; w < geo_.ways(); ++w) {
      const RefLine& ln = lines_[base + w];
      if (ln.valid && ln.tag == t) return base + w;
    }
    return kMiss;
  }

  void touch(std::size_t idx) { lines_[idx].lru_stamp = ++clock_; }

  std::size_t pick_victim(Addr addr) const {
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    std::size_t victim = base;
    std::uint64_t best = UINT64_MAX;
    for (std::uint32_t w = 0; w < geo_.ways(); ++w) {
      const RefLine& ln = lines_[base + w];
      if (!ln.valid) return base + w;  // first invalid way wins outright
      if (ln.lru_stamp < best) {
        best = ln.lru_stamp;
        victim = base + w;
      }
    }
    return victim;
  }

  std::size_t pick_victim_if(Addr addr) const {
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    std::size_t victim = kMiss;
    std::uint64_t best = UINT64_MAX;
    for (std::uint32_t w = 0; w < geo_.ways(); ++w) {
      const RefLine& ln = lines_[base + w];
      if (!ln.valid) return base + w;
      if (!ln.payload.pinned && ln.lru_stamp < best) {
        best = ln.lru_stamp;
        victim = base + w;
      }
    }
    return victim;
  }

  void install(std::size_t idx, Addr addr, Meta payload) {
    RefLine& ln = lines_[idx];
    ln.valid = true;
    ln.tag = geo_.tag(addr);
    ln.payload = payload;
    ln.lru_stamp = ++clock_;
  }

  void invalidate(std::size_t idx) { lines_[idx].valid = false; }

  std::uint64_t count_valid() const {
    std::uint64_t n = 0;
    for (const RefLine& ln : lines_) n += ln.valid ? 1 : 0;
    return n;
  }

  std::vector<std::size_t> valid_indices() const {
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      if (lines_[i].valid) order.push_back(i);
    }
    return order;
  }

  const RefLine& line(std::size_t idx) const { return lines_[idx]; }

 private:
  Geometry geo_;
  std::vector<RefLine> lines_;
  std::uint64_t clock_ = 0;
};

// --- the differential driver -------------------------------------------------

void check_agreement(TagArray<Meta>& soa, const RefTagArray& ref) {
  ASSERT_EQ(soa.count_valid(), ref.count_valid());
  std::vector<std::size_t> soa_order;
  soa.for_each_valid([&](LineRef<Meta> ln) {
    soa_order.push_back(ln.index());
    const RefLine& r = ref.line(ln.index());
    ASSERT_TRUE(r.valid);
    ASSERT_EQ(ln.tag(), r.tag);
    ASSERT_EQ(ln.payload().stamp, r.payload.stamp);
    ASSERT_EQ(ln.payload().pinned, r.payload.pinned);
  });
  // Identical visitation order, not just identical membership: the decay
  // sweep's turn-off order (and thus golden event/metric pins) rides on it.
  ASSERT_EQ(soa_order, ref.valid_indices());
}

void run_differential(const Geometry& geo, std::uint64_t seed,
                      std::uint32_t ops) {
  TagArray<Meta> soa(geo);
  RefTagArray ref(geo);
  Xoshiro256 rng(seed);
  // A touched footprint a few times the array keeps sets contended without
  // making hits vanish.
  const std::uint64_t footprint_lines = geo.num_lines() * 3 + 7;
  std::uint32_t serial = 0;

  for (std::uint32_t op = 0; op < ops; ++op) {
    const Addr addr =
        (rng.below(footprint_lines) * geo.line_bytes()) + rng.below(geo.line_bytes());
    switch (rng.below(8)) {
      case 0:
      case 1: {  // find (+ payload cross-check on hit)
        const auto ln = soa.find(addr);
        const std::size_t r = ref.find(addr);
        ASSERT_EQ(static_cast<bool>(ln), r != RefTagArray::kMiss);
        if (ln) {
          ASSERT_EQ(ln.index(), r);
          ASSERT_EQ(ln.payload().stamp, ref.line(r).payload.stamp);
        }
        break;
      }
      case 2: {  // touch on hit (LRU reorder must match)
        const auto ln = soa.find(addr);
        const std::size_t r = ref.find(addr);
        ASSERT_EQ(static_cast<bool>(ln), r != RefTagArray::kMiss);
        if (ln) {
          soa.touch(ln);
          ref.touch(r);
        }
        break;
      }
      case 3: {  // touch-by-address flavour of the hit path
        if (soa.find(addr)) {
          soa.touch(addr);
          ref.touch(ref.find(addr));
        }
        break;
      }
      case 4:
      case 5: {  // miss-fill: pick_victim + install (identical victim way)
        if (soa.find(addr)) break;  // AoS install asserted absence too
        const auto slot = soa.pick_victim(addr);
        const std::size_t r = ref.pick_victim(addr);
        ASSERT_EQ(slot.index(), r);
        ASSERT_EQ(slot.valid(), ref.line(r).valid);
        const Meta m{++serial, rng.below(4) == 0};
        soa.install(slot, addr, m);
        ref.install(r, addr, m);
        break;
      }
      case 6: {  // pinned-way victim selection
        const auto slot = soa.pick_victim_if(
            addr, [](LineRef<Meta> ln) { return !ln.payload().pinned; });
        const std::size_t r = ref.pick_victim_if(addr);
        ASSERT_EQ(static_cast<bool>(slot), r != RefTagArray::kMiss);
        if (slot) {
          ASSERT_EQ(slot.index(), r);
        }
        break;
      }
      case 7: {  // invalidate on hit
        const auto ln = soa.find(addr);
        const std::size_t r = ref.find(addr);
        ASSERT_EQ(static_cast<bool>(ln), r != RefTagArray::kMiss);
        if (ln) {
          soa.invalidate(ln);
          ref.invalidate(r);
        }
        break;
      }
    }
    check_agreement(soa, ref);
  }
}

TEST(TagArraySoaDifferential, TwoWayContendedSets) {
  run_differential(Geometry(2 * KiB, 64, 2), 0x5eed0001, 4000);
}

TEST(TagArraySoaDifferential, FourWay) {
  run_differential(Geometry(4 * KiB, 64, 4), 0x5eed0002, 4000);
}

TEST(TagArraySoaDifferential, DirectMapped) {
  run_differential(Geometry(1 * KiB, 64, 1), 0x5eed0003, 3000);
}

TEST(TagArraySoaDifferential, FullyAssociativeSingleSet) {
  // One 16-way set: every address contends, and the set's validity bits
  // exercise a full-width mask.
  run_differential(Geometry(1 * KiB, 64, 16), 0x5eed0004, 3000);
}

TEST(TagArraySoaDifferential, EightWayMultiWordBitmap) {
  // 128 lines across 16 sets: the valid bitmap spans two words and every
  // set's 8 bits land at a different in-word offset.
  run_differential(Geometry(8 * KiB, 64, 8), 0x5eed0005, 4000);
}

TEST(TagArraySoaDifferential, ManySeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_differential(Geometry(2 * KiB, 64, 4), 0xabcd0000 + seed, 600);
  }
}

}  // namespace
}  // namespace cdsim::cache
