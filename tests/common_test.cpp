// Unit tests for the common substrate: event queue determinism, RNG
// statistics, time-weighted integrals, histograms.

#include <gtest/gtest.h>

#include <vector>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/rng.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim {
namespace {

// --- types -----------------------------------------------------------------

TEST(Types, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(64), 6u);
  EXPECT_EQ(log2_pow2(1ull << 33), 33u);
}

// --- event queue -------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    ++fired;
    q.schedule_in(1, [&] {
      ++fired;
      q.schedule_in(0, [&] { ++fired; });
    });
  });
  q.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 2u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenDrained) {
  EventQueue q;
  q.schedule_at(7, [] {});
  q.run_until(100);
  EXPECT_EQ(q.now(), 100u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilStopsBeforeLaterEvents) {
  EventQueue q;
  bool late = false;
  q.schedule_at(200, [&] { late = true; });
  q.run_until(100);
  EXPECT_FALSE(late);
  EXPECT_EQ(q.now(), 100u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, ExecutedCounter) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(static_cast<Cycle>(i), [] {});
  q.run();
  EXPECT_EQ(q.executed(), 5u);
}

// --- RNG ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next(), vb = b.next(), vc = c.next();
    all_equal = all_equal && (va == vb);
    any_diff = any_diff || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 r(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Xoshiro256 r(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// --- stats ---------------------------------------------------------------------

TEST(TimeWeightedValue, ExactIntegral) {
  TimeWeightedValue v(0.0);
  v.set(10, 4.0);   // 0 over [0,10)
  v.set(20, 2.0);   // 4 over [10,20)
  // 2 over [20,50)
  EXPECT_DOUBLE_EQ(v.integral(50), 4.0 * 10 + 2.0 * 30);
  EXPECT_DOUBLE_EQ(v.average(50), (40.0 + 60.0) / 50.0);
}

TEST(TimeWeightedValue, AddDelta) {
  TimeWeightedValue v(0.0);
  v.add(0, 1.0);
  v.add(10, 1.0);   // 2 from t=10
  v.add(20, -2.0);  // 0 from t=20
  EXPECT_DOUBLE_EQ(v.integral(30), 1.0 * 10 + 2.0 * 10);
  EXPECT_DOUBLE_EQ(v.value(), 0.0);
}

TEST(RunningStat, Moments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
}

TEST(Histogram, MeanIsExactDespiteBuckets) {
  Histogram h(10, 8);
  h.add(3);
  h.add(17);
  h.add(1000);  // overflows into the last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), (3 + 17 + 1000) / 3.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
}

TEST(Histogram, Quantiles) {
  Histogram h(1, 100);
  for (std::uint64_t i = 0; i < 100; ++i) h.add(i);
  EXPECT_LE(h.quantile_upper_bound(0.5), 51u);
  EXPECT_GE(h.quantile_upper_bound(0.99), 98u);
}

TEST(SafeDiv, ZeroDenominator) {
  EXPECT_DOUBLE_EQ(safe_div(4.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(safe_div(4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_div(4.0, 0.0, -1.0), -1.0);
}

}  // namespace
}  // namespace cdsim
