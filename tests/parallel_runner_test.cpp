// Parallel sweep engine: ThreadPool behavior, and the central determinism
// contract — a run_grid sweep sharded across >= 4 workers produces
// RunMetrics bit-identical to running the same configurations serially
// through ExperimentRunner::run().

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "cdsim/sim/experiment.hpp"
#include "cdsim/sim/parallel.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace {

using namespace cdsim;

// Exact, field-by-field comparison. Doubles are compared with == on
// purpose: the parallel path must be *bit*-identical, not merely close.
void expect_metrics_identical(const sim::RunMetrics& a,
                              const sim::RunMetrics& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.technique, b.technique);
  EXPECT_EQ(a.total_l2_bytes, b.total_l2_bytes);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.l2_occupation, b.l2_occupation);
  EXPECT_EQ(a.l2_miss_rate, b.l2_miss_rate);
  EXPECT_EQ(a.l2_accesses, b.l2_accesses);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.l2_decay_turnoffs, b.l2_decay_turnoffs);
  EXPECT_EQ(a.l2_decay_induced_misses, b.l2_decay_induced_misses);
  EXPECT_EQ(a.l2_coherence_invals, b.l2_coherence_invals);
  EXPECT_EQ(a.l2_writebacks, b.l2_writebacks);
  EXPECT_EQ(a.amat, b.amat);
  EXPECT_EQ(a.mem_bandwidth, b.mem_bandwidth);
  EXPECT_EQ(a.mem_bytes, b.mem_bytes);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.avg_l2_temp_kelvin, b.avg_l2_temp_kelvin);
  EXPECT_EQ(a.bus_utilization, b.bus_utilization);
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto c = static_cast<power::Component>(i);
    EXPECT_EQ(a.ledger.get(c), b.ledger.get(c)) << to_string(c);
  }
}

class ParallelRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The runner reads these; keep the test hermetic.
    ::unsetenv("CDSIM_INSTR");
    ::unsetenv("CDSIM_CACHE_FILE");
  }

  // A fresh per-test cache path (the file must not pre-exist).
  std::string cache_path(const std::string& tag) {
    const std::string p = ::testing::TempDir() + "cdsim_parallel_" + tag +
                          "_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name() +
                          ".cache";
    std::remove(p.c_str());
    return p;
  }

  static constexpr std::uint64_t kInstr = 60'000;
};

TEST_F(ParallelRunnerTest, PoolRunsEveryIndexExactlyOnce) {
  sim::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);

  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelRunnerTest, PoolWaitIdleIsABarrier) {
  sim::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
  // The pool is reusable after a barrier.
  pool.parallel_for(16, [&done](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 80);
}

TEST_F(ParallelRunnerTest, PoolRethrowsTaskExceptionAtBarrier) {
  sim::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a throwing task and remains usable.
  std::atomic<int> done{0};
  pool.parallel_for(4, [&done](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 4);
}

TEST_F(ParallelRunnerTest, PoolDefaultsToAtLeastOneWorker) {
  sim::ThreadPool pool;  // workers = hardware_concurrency, floor 1
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST_F(ParallelRunnerTest, ParallelGridIsBitIdenticalToSerial) {
  const auto& suite = workload::benchmark_suite();
  ASSERT_GE(suite.size(), 2u);
  const std::vector<workload::Benchmark> benches{suite[0], suite[3]};
  const std::vector<std::uint64_t> sizes{1 * MiB, 2 * MiB};
  // Decay-heavy mix on purpose: the expiry-wheel sweep, its gated-line
  // retries, and a non-default hierarchical tick count must all stay
  // bit-identical between the serial and the sharded engine.
  const std::vector<decay::DecayConfig> techs{
      {decay::Technique::kProtocol, 0, 4},
      {decay::Technique::kDecay, 128 * 1024, 4},
      {decay::Technique::kSelectiveDecay, 64 * 1024, 4},
      {decay::Technique::kDecay, 64 * 1024, 8},
  };
  const decay::DecayConfig baseline{decay::Technique::kBaseline, 0, 4};

  // Serial reference: plain run() calls, one configuration at a time.
  sim::ExperimentRunner serial(kInstr, cache_path("serial"));
  // Parallel: the same grid sharded across 4 workers.
  sim::ExperimentRunner parallel(kInstr, cache_path("parallel"));
  const sim::SweepStats sweep = parallel.run_grid(benches, sizes, techs, 4);
  EXPECT_EQ(sweep.workers, 4u);
  // 2 benchmarks x 2 sizes x (4 techniques + baseline), all fresh.
  EXPECT_EQ(sweep.simulated, 20u);
  EXPECT_EQ(sweep.reused, 0u);

  for (const auto& bench : benches) {
    for (const std::uint64_t bytes : sizes) {
      for (const auto* tech :
           {&baseline, &techs[0], &techs[1], &techs[2], &techs[3]}) {
        SCOPED_TRACE(bench.config.name + "/" + std::to_string(bytes / MiB) +
                     "MB/" + tech->label());
        expect_metrics_identical(serial.run(bench, bytes, *tech),
                                 parallel.run(bench, bytes, *tech));
      }
    }
  }
}

TEST_F(ParallelRunnerTest, GridIsMemoizedAcrossCalls) {
  const auto& suite = workload::benchmark_suite();
  const std::vector<workload::Benchmark> benches{suite[0]};
  const std::vector<std::uint64_t> sizes{1 * MiB};
  const std::vector<decay::DecayConfig> techs{
      {decay::Technique::kProtocol, 0, 4}};

  sim::ExperimentRunner runner(kInstr, cache_path("memo"));
  const sim::SweepStats first = runner.run_grid(benches, sizes, techs, 2);
  EXPECT_EQ(first.simulated, 2u);  // baseline + protocol
  EXPECT_EQ(first.reused, 0u);

  const sim::SweepStats second = runner.run_grid(benches, sizes, techs, 2);
  EXPECT_EQ(second.simulated, 0u);
  EXPECT_EQ(second.reused, 2u);
  EXPECT_EQ(second.workers, 0u);  // nothing ran, no pool spun up
}

TEST_F(ParallelRunnerTest, GridDeduplicatesRepeatedCells) {
  const auto& suite = workload::benchmark_suite();
  const std::vector<workload::Benchmark> benches{suite[0]};
  const std::vector<std::uint64_t> sizes{1 * MiB, 1 * MiB};  // duplicate
  const std::vector<decay::DecayConfig> techs{
      {decay::Technique::kProtocol, 0, 4},
      {decay::Technique::kProtocol, 0, 4},  // duplicate
      // Baseline listed explicitly collapses with the implicit one.
      {decay::Technique::kBaseline, 0, 4},
  };

  sim::ExperimentRunner runner(kInstr, cache_path("dedupe"));
  const sim::SweepStats sweep = runner.run_grid(benches, sizes, techs, 2);
  EXPECT_EQ(sweep.simulated, 2u);  // baseline + protocol, once each
}

TEST_F(ParallelRunnerTest, ConfigSeedIsStableAndPerKey) {
  const std::uint64_t a = sim::derive_config_seed("FMM/1/decay128K/60000/v2");
  const std::uint64_t b = sim::derive_config_seed("FMM/1/decay128K/60000/v2");
  const std::uint64_t c = sim::derive_config_seed("FMM/2/decay128K/60000/v2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
