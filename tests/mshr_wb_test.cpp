// Dedicated edge-case suites for the two structures the CacheLevel engine
// wires into every level: the MSHR file (full-file stall/replay, merge
// ordering, synchronous re-allocation from a completion waiter) and the
// coalescing write buffer (FIFO drain ordering under back-pressure,
// coalescing rules across the draining boundary, pending-write visibility
// while a drain is in flight). Until now neither had a suite of its own —
// their behavior was only pinned indirectly through whole-system runs.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cdsim/bus/snoop_bus.hpp"
#include "cdsim/cache/mshr.hpp"
#include "cdsim/cache/write_buffer.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/sim/l1_cache.hpp"
#include "cdsim/sim/l2_cache.hpp"

namespace cdsim::sim {
namespace {

// ---------------------------------------------------------------------------
// MshrFile unit semantics
// ---------------------------------------------------------------------------

TEST(MshrFile, FillsToCapacityThenReportsFull) {
  cache::MshrFile f(2);
  EXPECT_FALSE(f.full());
  f.allocate(0x1000, false, 1);
  f.allocate(0x2000, true, 2);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.in_use(), 2u);
  f.complete(0x1000, 10);
  EXPECT_FALSE(f.full());
  EXPECT_EQ(f.in_use(), 1u);
}

TEST(MshrFile, WaitersRunInMergeOrderWithTheFillCycle) {
  cache::MshrFile f(4);
  cache::MshrEntry& e = f.allocate(0x1000, false, 1);
  std::vector<int> order;
  std::vector<Cycle> cycles;
  for (int i = 0; i < 3; ++i) {
    f.merge(e, false, [&order, &cycles, i](Cycle done) {
      order.push_back(i);
      cycles.push_back(done);
    });
  }
  f.complete(0x1000, 42);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(cycles, (std::vector<Cycle>{42, 42, 42}));
  EXPECT_EQ(f.total_merges(), 3u);
}

TEST(MshrFile, WriteMergePromotesEntryToOwnershipFetch) {
  cache::MshrFile f(2);
  cache::MshrEntry& e = f.allocate(0x1000, /*is_write=*/false, 1);
  EXPECT_FALSE(e.is_write);
  f.merge(e, /*is_write=*/true, [](Cycle) {});
  EXPECT_TRUE(e.is_write);  // the controller must upgrade the fetch
}

TEST(MshrFile, WaiterMayReallocateTheSameLineSynchronously) {
  // A completion waiter re-entering the cache may miss again and allocate
  // a fresh entry for the very line that just completed — the file must
  // have erased the old entry before running waiters.
  cache::MshrFile f(1);
  cache::MshrEntry& e = f.allocate(0x1000, false, 1);
  bool reallocated = false;
  f.merge(e, false, [&](Cycle) {
    ASSERT_FALSE(f.full());
    ASSERT_EQ(f.find(0x1000), nullptr);
    f.allocate(0x1000, true, 5);
    reallocated = true;
  });
  f.complete(0x1000, 9);
  EXPECT_TRUE(reallocated);
  EXPECT_TRUE(f.full());
  ASSERT_NE(f.find(0x1000), nullptr);
  EXPECT_TRUE(f.find(0x1000)->is_write);
}

// ---------------------------------------------------------------------------
// WriteBuffer unit semantics
// ---------------------------------------------------------------------------

TEST(WriteBuffer, DrainsInFifoOrderUnderBackPressure) {
  cache::WriteBuffer wb(4);
  ASSERT_TRUE(wb.push(0x100, 1));
  ASSERT_TRUE(wb.push(0x200, 2));
  ASSERT_TRUE(wb.push(0x300, 3));
  // Only one drain slot free (back-pressure): claims come oldest-first.
  EXPECT_EQ(wb.drain_next(), std::optional<Addr>(0x100));
  EXPECT_EQ(wb.draining(), 1u);
  // The next claim (a second in-flight drain) is the next-oldest slot.
  EXPECT_EQ(wb.drain_next(), std::optional<Addr>(0x200));
  // Completion out of order: each drain_done releases ITS slot; the
  // remaining drainable entry is still FIFO.
  wb.drain_done(0x200);
  EXPECT_EQ(wb.size(), 2u);
  wb.drain_done(0x100);
  EXPECT_EQ(wb.drain_next(), std::optional<Addr>(0x300));
  wb.drain_done(0x300);
  EXPECT_TRUE(wb.empty());
}

TEST(WriteBuffer, CoalescesOnlyIntoNewestNonDrainingSlot) {
  cache::WriteBuffer wb(4);
  ASSERT_TRUE(wb.push(0x100, 1));
  ASSERT_TRUE(wb.push(0x100, 2));  // coalesced
  EXPECT_EQ(wb.size(), 1u);
  EXPECT_EQ(wb.total_coalesced(), 1u);
  // Once the slot's drain started, the write has left for the L2: a later
  // store to the same line needs a FRESH slot.
  ASSERT_EQ(wb.drain_next(), std::optional<Addr>(0x100));
  ASSERT_TRUE(wb.push(0x100, 3));
  EXPECT_EQ(wb.size(), 2u);
  EXPECT_EQ(wb.total_coalesced(), 1u);
  // A store to a different line in between also blocks coalescing.
  ASSERT_TRUE(wb.push(0x200, 4));
  ASSERT_TRUE(wb.push(0x100, 5));
  EXPECT_EQ(wb.size(), 4u);
  EXPECT_TRUE(wb.full());
  EXPECT_FALSE(wb.push(0x300, 6));  // full and not coalescible: stall
}

TEST(WriteBuffer, PendingCoversDrainingSlotsUntilDone) {
  // The Table-I gate: a write counts as pending while its drain is in
  // flight, and only drain_done clears it.
  cache::WriteBuffer wb(2);
  ASSERT_TRUE(wb.push(0x100, 1));
  EXPECT_TRUE(wb.pending_to(0x100));
  ASSERT_EQ(wb.drain_next(), std::optional<Addr>(0x100));
  EXPECT_TRUE(wb.pending_to(0x100));  // in flight: still pending
  wb.drain_done(0x100);
  EXPECT_FALSE(wb.pending_to(0x100));
}

// ---------------------------------------------------------------------------
// Full-MSHR stall and replay on a live two-cache system
// ---------------------------------------------------------------------------

/// L1+L2 on one bus with configurable MSHR/write-buffer pressure.
struct PressureHarness {
  EventQueue eq;
  mem::MemoryController mem;
  bus::SnoopBus bus;
  std::unique_ptr<L1Cache> l1;
  std::unique_ptr<L2Cache> l2;

  explicit PressureHarness(const L1Config& l1cfg, const L2Config& l2cfg)
      : mem(eq, mem::MemoryConfig{}), bus(eq, bus::BusConfig{}, mem) {
    l1 = std::make_unique<L1Cache>(eq, l1cfg, 0);
    l2 = std::make_unique<L2Cache>(eq, l2cfg, decay::DecayConfig{}, 0, bus,
                                   l1.get());
    l1->connect_l2(l2.get());
    bus.attach(l2.get());
  }

  void drain_all() {
    while (!l1->write_buffer().empty()) ASSERT_TRUE(eq.step());
  }
};

TEST(MshrPressure, L2FullMshrStallsAndReplaysAllReads) {
  L2Config l2cfg;
  l2cfg.size_bytes = 64 * KiB;
  l2cfg.mshr_entries = 2;  // tiny: the 6 concurrent misses must stall
  PressureHarness h(L1Config{}, l2cfg);

  int done = 0;
  for (Addr a = 0; a < 6; ++a) {
    h.l2->read(0x10000 + a * 4096, [&done](Cycle, bool) { ++done; });
  }
  // Everything completes despite the 2-entry file (retry + replay), and
  // each read was a genuine miss exactly once.
  while (done < 6) ASSERT_TRUE(h.eq.step());
  EXPECT_EQ(h.l2->stats().read_misses.value(), 6u);
  EXPECT_EQ(h.l2->stats().read_hits.value(), 0u);
  EXPECT_EQ(h.mem.read_count(), 6u);
}

TEST(MshrPressure, L1FullMshrParksTheCoreUntilACompletion) {
  L1Config l1cfg;
  l1cfg.mshr_entries = 1;
  PressureHarness h(l1cfg, L2Config{});

  bool first_done = false;
  auto out1 = h.l1->try_load(0x1000, [&](Cycle) { first_done = true; });
  ASSERT_TRUE(out1.accepted);
  ASSERT_FALSE(out1.completed);

  // A second miss to a different line finds the file full: NOT accepted —
  // exactly the signal the core uses to park the load queue.
  auto out2 = h.l1->try_load(0x2000, [](Cycle) {});
  EXPECT_FALSE(out2.accepted);

  // A load to the SAME outstanding line merges instead of stalling.
  bool merged_done = false;
  auto out3 = h.l1->try_load(0x1008, [&](Cycle) { merged_done = true; });
  EXPECT_TRUE(out3.accepted);

  while (!first_done || !merged_done) ASSERT_TRUE(h.eq.step());
  // After the completion freed the entry, the parked line goes through.
  auto out4 = h.l1->try_load(0x2000, [](Cycle) {});
  EXPECT_TRUE(out4.accepted);
}

TEST(MshrPressure, WriteBufferBackPressureStallsStoresNotCorrectness) {
  L1Config l1cfg;
  l1cfg.write_buffer_entries = 2;
  l1cfg.max_drains_in_flight = 1;  // serialize drains: maximal pressure
  PressureHarness h(l1cfg, L2Config{});

  // Fill the buffer beyond its drain rate; some stores must stall.
  int accepted = 0, stalled = 0;
  for (Addr a = 0; a < 6; ++a) {
    if (h.l1->try_store(0x20000 + a * 64)) {
      ++accepted;
    } else {
      ++stalled;
      h.eq.step();  // give a drain a chance, then retry once
      if (h.l1->try_store(0x20000 + a * 64)) ++accepted;
    }
  }
  EXPECT_GT(stalled, 0);
  h.drain_all();
  // Every accepted store reached the L2 exactly once (write-through).
  EXPECT_EQ(h.l2->stats().accesses(),
            static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(h.l1->write_buffer().draining(), 0u);
}

}  // namespace
}  // namespace cdsim::sim
