// Unit tests for the banked-DRAM controller and the per-core TLBs: row
// hit / closed / conflict timing, FR-FCFS reordering with its starvation
// cap, lazy refresh, write forwarding (the oracle-threading invariant),
// TLB LRU behaviour and the miss-walk port, plus an oracle-checked kDram
// system run proving flat and DRAM modes agree on every data value.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/mem/tlb.hpp"
#include "cdsim/verify/fuzz.hpp"

namespace cdsim::mem {
namespace {

/// One channel, one rank, two banks, refresh off: with 2 KiB rows and
/// 64 B interleave, lines 0 and 64 share bank 0 row 0, line 4096 is
/// bank 0 row 1, line 2048 is bank 1 row 0.
MemoryConfig dram_cfg() {
  MemoryConfig cfg;
  cfg.model = MemoryModel::kDram;
  cfg.dram.channels = 1;
  cfg.dram.ranks_per_channel = 1;
  cfg.dram.banks_per_rank = 2;
  cfg.dram.t_refi = 0;  // refresh off unless a test turns it on
  return cfg;
}

TEST(Dram, RowHitMissConflictTiming) {
  EventQueue eq;
  const MemoryConfig cfg = dram_cfg();
  MemoryController mem(eq, cfg);
  const Cycle xfer = 64 / cfg.bytes_per_cycle;  // 4
  std::vector<Cycle> done;
  const auto record = [&done](Cycle t) { done.push_back(t); };
  mem.dram_read(0, 64, 0, record);     // closed bank: tRCD + tCAS
  mem.dram_read(0, 64, 64, record);    // same row: tCAS
  mem.dram_read(0, 64, 4096, record);  // other row, same bank: conflict
  eq.run();
  const DramConfig& d = cfg.dram;
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], d.t_rcd + d.t_cas + xfer);
  EXPECT_EQ(done[1], done[0] + d.t_cas + xfer);
  EXPECT_EQ(done[2], done[1] + d.t_rp + d.t_rcd + d.t_cas + xfer);
  const DramStats& st = mem.dram_stats();
  EXPECT_EQ(st.row_hits, 1u);
  EXPECT_EQ(st.row_misses, 1u);
  EXPECT_EQ(st.row_conflicts, 1u);
  EXPECT_EQ(st.activates, 2u);
  EXPECT_EQ(st.precharges, 1u);
  EXPECT_EQ(mem.read_count(), 3u);
  EXPECT_EQ(mem.bytes_read(), 192u);
}

TEST(Dram, FrFcfsServesRowHitsFirst) {
  EventQueue eq;
  MemoryController mem(eq, dram_cfg());
  std::vector<char> order;
  mem.dram_read(0, 64, 0, [&](Cycle) { order.push_back('A'); });
  mem.dram_read(0, 64, 4096, [&](Cycle) { order.push_back('B'); });
  mem.dram_read(0, 64, 64, [&](Cycle) { order.push_back('C'); });
  eq.run();
  // A opens row 0; C is a row hit and bypasses the older conflicting B.
  EXPECT_EQ(std::string(order.begin(), order.end()), "ACB");
}

TEST(Dram, StarvationCapForcesTheOldestRequest) {
  EventQueue eq;
  MemoryConfig cfg = dram_cfg();
  cfg.dram.starvation_limit = 1;
  MemoryController mem(eq, cfg);
  std::vector<char> order;
  mem.dram_read(0, 64, 0, [&](Cycle) { order.push_back('A'); });
  mem.dram_read(0, 64, 4096, [&](Cycle) { order.push_back('B'); });
  mem.dram_read(0, 64, 64, [&](Cycle) { order.push_back('C'); });
  mem.dram_read(0, 64, 128, [&](Cycle) { order.push_back('D'); });
  eq.run();
  // C bypasses B once; the cap then forces B ahead of the row-hitting D.
  EXPECT_EQ(std::string(order.begin(), order.end()), "ACBD");
}

TEST(Dram, RefreshClosesRowsAndStallsTheBank) {
  EventQueue eq;
  MemoryConfig cfg = dram_cfg();
  cfg.dram.t_refi = 100;
  cfg.dram.t_rfc = 50;
  MemoryController mem(eq, cfg);
  const DramConfig& d = cfg.dram;
  const Cycle xfer = 64 / cfg.bytes_per_cycle;
  std::vector<Cycle> done;
  const auto record = [&done](Cycle t) { done.push_back(t); };
  mem.dram_read(0, 64, 0, record);
  // Arrives after the cycle-100 refresh tick: the row it would have hit
  // is closed again and the bank is held until tick + tRFC = 150.
  mem.dram_read(140, 64, 64, record);
  eq.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], d.t_rcd + d.t_cas + xfer);
  EXPECT_EQ(done[1], 150 + d.t_rcd + d.t_cas + xfer);
  const DramStats& st = mem.dram_stats();
  EXPECT_GE(st.refreshes, 1u);
  EXPECT_EQ(st.row_hits, 0u);
  EXPECT_EQ(st.row_misses, 2u);
}

TEST(Dram, QueuedWriteForwardsToAYoungerRead) {
  EventQueue eq;
  const MemoryConfig cfg = dram_cfg();
  MemoryController mem(eq, cfg);
  std::vector<std::pair<char, Cycle>> done;
  mem.dram_write(0, 64, 0, [&](Cycle t) { done.push_back({'w', t}); });
  mem.dram_write(0, 64, 4096, [&](Cycle t) { done.push_back({'W', t}); });
  // The read matches the still-queued second write: it is served from the
  // queue at tCAS + transfer and never visits (or waits for) the bank.
  mem.dram_read(0, 64, 4096, [&](Cycle t) { done.push_back({'r', t}); });
  eq.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].first, 'r');
  EXPECT_EQ(done[0].second, cfg.dram.t_cas + 64 / cfg.bytes_per_cycle);
  EXPECT_EQ(mem.dram_stats().write_forwards, 1u);
}

TEST(Dram, ZeroByteRequestsCompleteWithoutTraffic) {
  EventQueue eq;
  MemoryController mem(eq, dram_cfg());
  std::vector<Cycle> done;
  mem.dram_read(5, 0, 0, [&](Cycle t) { done.push_back(t); });
  mem.dram_write(7, 0, 64, [&](Cycle t) { done.push_back(t); });
  eq.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 5u);
  EXPECT_EQ(done[1], 7u);
  EXPECT_EQ(mem.total_bytes(), 0u);
  EXPECT_EQ(mem.read_count(), 0u);
  EXPECT_EQ(mem.write_count(), 0u);
}

// --- TLB ---------------------------------------------------------------------

TEST(Tlb, PageGranularityAndTrueLru) {
  TlbConfig cfg;
  cfg.enabled = true;
  cfg.entries = 2;
  Tlb tlb(cfg);
  EXPECT_FALSE(tlb.access(0));       // page 0: cold miss
  EXPECT_TRUE(tlb.access(64));       // same page
  EXPECT_FALSE(tlb.access(4096));    // page 1: cold miss
  EXPECT_TRUE(tlb.access(4160));     // same page
  EXPECT_FALSE(tlb.access(8192));    // page 2: evicts LRU page 0
  EXPECT_FALSE(tlb.access(0));       // page 0 is gone again
  EXPECT_EQ(tlb.hits(), 2u);
  EXPECT_EQ(tlb.misses(), 4u);
}

/// Scriptable inner port standing in for the L1.
class FakePort final : public core::LoadStorePort {
 public:
  bool accept = true;
  Cycle hit_latency = 3;
  std::uint64_t loads = 0;
  core::FreedCallback freed;

  core::LoadOutcome try_load(Addr, core::LoadCallback) override {
    if (!accept) return {};
    ++loads;
    return {.accepted = true, .completed = true, .latency = hit_latency};
  }
  bool try_store(Addr) override { return true; }
  void set_resources_freed(core::FreedCallback cb) override {
    freed = std::move(cb);
  }
};

TEST(TlbPort, MissPaysTheWalkAndHitForwardsSynchronously) {
  EventQueue eq;
  TlbConfig cfg;
  cfg.enabled = true;
  cfg.miss_walk_latency = 60;
  FakePort inner;
  TlbPort port(eq, cfg, inner);

  // Cold page: the load is accepted, walks, then completes through the
  // queue at walk + inner-hit latency.
  Cycle done = 0;
  const core::LoadOutcome miss =
      port.try_load(0x40, [&](Cycle t) { done = t; });
  EXPECT_TRUE(miss.accepted);
  EXPECT_FALSE(miss.completed);
  eq.run();
  EXPECT_EQ(done, cfg.miss_walk_latency + inner.hit_latency);

  // Warm page: the TLB hit forwards straight to the inner port, which
  // completes synchronously — no walk, no event.
  const core::LoadOutcome hit =
      port.try_load(0x80, core::LoadCallback{});
  EXPECT_TRUE(hit.completed);
  EXPECT_EQ(hit.latency, inner.hit_latency);
  EXPECT_EQ(inner.loads, 2u);
}

TEST(TlbPort, WalkedLoadParksOnAFullInnerAndRetries) {
  EventQueue eq;
  TlbConfig cfg;
  cfg.enabled = true;
  cfg.miss_walk_latency = 10;
  FakePort inner;
  inner.accept = false;  // MSHRs "full" while the walk completes
  TlbPort port(eq, cfg, inner);

  Cycle done = 0;
  EXPECT_TRUE(port.try_load(0x40, [&](Cycle t) { done = t; }).accepted);
  eq.run();
  EXPECT_EQ(done, 0u);  // parked, not lost
  inner.accept = true;
  ASSERT_TRUE(inner.freed);  // the port registered for the wake-up
  inner.freed();
  eq.run();
  EXPECT_EQ(done, eq.now());
  EXPECT_EQ(inner.loads, 1u);
}

// --- whole-system oracle check ----------------------------------------------

TEST(DramSystem, OracleSeesIdenticalValuesUnderDram) {
  // The acceptance gate for the memory-model swap: a contended 8-core
  // directory-mesh run under kDram (TLBs on, refresh hot) must produce
  // exactly the values the differential oracle predicts — the DRAM
  // scheduler may reorder *service*, never *data*.
  verify::FuzzScenario sc;
  sc.topology = noc::Topology::kDirectoryMesh;
  sc.num_cores = 8;
  sc.fuzz.num_cores = 8;
  sc.decay = decay::DecayConfig{decay::Technique::kDecay, 2048, 4};
  sc.fuzz.decay_window = 2048;
  sc.mem_model = MemoryModel::kDram;
  sc.seed = 90210;
  const verify::ScenarioOutcome out = verify::run_scenario(sc);
  EXPECT_EQ(out.total_divergences, 0u)
      << verify::to_string(out.divergences.front());
  EXPECT_GT(out.loads_checked, 0u);
  EXPECT_EQ(out.metrics.mem_model, "dram");
  // The run really exercised the DRAM engine and the TLBs.
  EXPECT_GT(out.metrics.dram_row_hits + out.metrics.dram_row_misses +
                out.metrics.dram_row_conflicts,
            0u);
  EXPECT_GT(out.metrics.dram_refreshes, 0u);
  EXPECT_GT(out.metrics.tlb_misses, 0u);
  // And it is deterministic.
  const verify::ScenarioOutcome again = verify::run_scenario(sc);
  EXPECT_EQ(again.metrics.cycles, out.metrics.cycles);
  EXPECT_EQ(again.metrics.dram_row_hits, out.metrics.dram_row_hits);
}

}  // namespace
}  // namespace cdsim::mem
