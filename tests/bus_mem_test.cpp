// Unit tests for the shared snoopy bus and the memory controller: grant
// ordering, snoop fan-out, data-source selection, cancellation, bandwidth
// accounting and channel serialization.

#include <gtest/gtest.h>

#include <vector>

#include "cdsim/bus/snoop_bus.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/mem/memory.hpp"

namespace cdsim::bus {
namespace {

using coherence::BusTxKind;

/// Scriptable snooper: reports a configurable reply and records what it saw.
class FakeSnooper final : public Snooper {
 public:
  SnoopReply reply;
  struct Seen {
    BusTxKind kind;
    Addr line;
    CoreId requester;
  };
  std::vector<Seen> seen;

  SnoopReply snoop(BusTxKind kind, Addr line, CoreId requester) override {
    seen.push_back({kind, line, requester});
    return reply;
  }
};

struct BusFixture {
  EventQueue eq;
  mem::MemoryConfig mcfg;
  mem::MemoryController mem{eq, mcfg};
  bus::BusConfig bcfg;
  bus::SnoopBus bus{eq, bcfg, mem};
  FakeSnooper s0, s1, s2;

  BusFixture() {
    bus.attach(&s0);
    bus.attach(&s1);
    bus.attach(&s2);
  }
};

TEST(SnoopBus, RequesterDoesNotSnoopItself) {
  BusFixture f;
  f.bus.request(BusTxKind::kBusRd, 0x1000, /*requester=*/1, 64,
                bus::SnoopBus::Completion{});
  f.eq.run();
  EXPECT_EQ(f.s1.seen.size(), 0u);
  ASSERT_EQ(f.s0.seen.size(), 1u);
  ASSERT_EQ(f.s2.seen.size(), 1u);
  EXPECT_EQ(f.s0.seen[0].line, 0x1000u);
  EXPECT_EQ(f.s0.seen[0].requester, 1u);
}

TEST(SnoopBus, SharedAndSupplierFlagsAggregate) {
  BusFixture f;
  f.s0.reply = {.had_line = true, .supplied_data = false};
  f.s2.reply = {.had_line = true, .supplied_data = true};
  BusResult got;
  f.bus.request(BusTxKind::kBusRd, 0x40, 1, 64,
                [&](const BusResult& r) { got = r; });
  f.eq.run();
  EXPECT_TRUE(got.shared);
  EXPECT_TRUE(got.supplied_by_cache);
}

TEST(SnoopBus, MemorySuppliesWhenNoDirtyOwner) {
  BusFixture f;
  BusResult got;
  f.bus.request(BusTxKind::kBusRd, 0x40, 0, 64,
                [&](const BusResult& r) { got = r; });
  f.eq.run();
  EXPECT_FALSE(got.supplied_by_cache);
  // Memory path: at least the read latency beyond the grant.
  EXPECT_GE(got.done_at, got.granted_at + f.mcfg.read_latency);
  EXPECT_EQ(f.mem.read_count(), 1u);
  EXPECT_EQ(f.mem.bytes_read(), 64u);
}

TEST(SnoopBus, CacheToCacheFasterThanMemory) {
  BusFixture dirty, clean;
  // A MESI dirty owner: flushes to the requester AND memory.
  dirty.s0.reply = {.had_line = true, .supplied_data = true,
                    .memory_update = true};
  BusResult rd, rc;
  dirty.bus.request(BusTxKind::kBusRd, 0x40, 1, 64,
                    [&](const BusResult& r) { rd = r; });
  clean.bus.request(BusTxKind::kBusRd, 0x40, 1, 64,
                    [&](const BusResult& r) { rc = r; });
  dirty.eq.run();
  clean.eq.run();
  EXPECT_LT(rd.done_at - rd.granted_at, rc.done_at - rc.granted_at);
  // The flush also updates memory (write traffic, no read).
  EXPECT_EQ(dirty.mem.write_count(), 1u);
  EXPECT_EQ(dirty.mem.read_count(), 0u);
}

TEST(SnoopBus, OwnedSupplyGeneratesNoMemoryTraffic) {
  // A MOESI Owned supplier keeps ownership: the requester gets the data
  // cache-to-cache while memory stays stale — no write, and no read.
  BusFixture f;
  f.s0.reply = {.had_line = true, .supplied_data = true,
                .memory_update = false};
  BusResult got;
  f.bus.request(BusTxKind::kBusRd, 0x40, 1, 64,
                [&](const BusResult& r) { got = r; });
  f.eq.run();
  EXPECT_TRUE(got.supplied_by_cache);
  EXPECT_EQ(f.mem.write_count(), 0u);
  EXPECT_EQ(f.mem.read_count(), 0u);
}

TEST(SnoopBus, UpgradeCarriesNoData) {
  BusFixture f;
  BusResult got;
  f.bus.request(BusTxKind::kBusUpgr, 0x40, 0, 0,
                [&](const BusResult& r) { got = r; });
  f.eq.run();
  EXPECT_EQ(got.done_at, got.granted_at + f.bcfg.address_phase);
  EXPECT_EQ(f.bus.bytes_transferred(), 0u);
  EXPECT_EQ(f.mem.total_bytes(), 0u);
}

TEST(SnoopBus, WriteBackReachesMemoryOnly) {
  BusFixture f;
  f.bus.request(BusTxKind::kWriteBack, 0x80, 2, 64,
                bus::SnoopBus::Completion{});
  f.eq.run();
  EXPECT_EQ(f.mem.bytes_written(), 64u);
  EXPECT_EQ(f.mem.bytes_read(), 0u);
  // Third parties still observe it (and ignore it).
  EXPECT_EQ(f.s0.seen.size(), 1u);
}

TEST(SnoopBus, ValidatorCancelsTransaction) {
  BusFixture f;
  bool cancelled = false;
  bool done = false;
  RequestHooks hooks;
  hooks.validator = [] { return false; };
  hooks.on_cancel = [&] { cancelled = true; };
  hooks.on_done = [&](const BusResult&) { done = true; };
  f.bus.request(BusTxKind::kWriteBack, 0x80, 0, 64, std::move(hooks));
  f.eq.run();
  EXPECT_TRUE(cancelled);
  EXPECT_FALSE(done);
  EXPECT_EQ(f.mem.total_bytes(), 0u);       // no traffic
  EXPECT_EQ(f.s0.seen.size(), 0u);          // no snoop
  EXPECT_EQ(f.bus.cancelled_transactions(), 1u);
}

TEST(SnoopBus, RoundRobinFairness) {
  BusFixture f;
  std::vector<CoreId> grant_order;
  for (CoreId c : {0u, 0u, 1u, 2u}) {
    RequestHooks hooks;
    hooks.on_grant = [&grant_order, c](const BusResult&) {
      grant_order.push_back(c);
    };
    f.bus.request(BusTxKind::kBusUpgr, 0x40 * (c + 1), c, 0,
                  std::move(hooks));
  }
  f.eq.run();
  // Round-robin: 0,1,2 each served before 0's second request.
  ASSERT_EQ(grant_order.size(), 4u);
  EXPECT_EQ(grant_order[0], 0u);
  EXPECT_EQ(grant_order[1], 1u);
  EXPECT_EQ(grant_order[2], 2u);
  EXPECT_EQ(grant_order[3], 0u);
}

TEST(SnoopBus, TransactionsSerializeOnTheBus) {
  BusFixture f;
  std::vector<Cycle> grants;
  for (int i = 0; i < 3; ++i) {
    RequestHooks hooks;
    hooks.on_grant = [&grants, &f](const BusResult&) {
      grants.push_back(f.eq.now());
    };
    f.bus.request(BusTxKind::kBusRd, 0x40u * (i + 1), 0, 64,
                  std::move(hooks));
  }
  f.eq.run();
  ASSERT_EQ(grants.size(), 3u);
  // Each grant is separated by at least the address+data occupancy.
  const Cycle occupancy = f.bcfg.address_phase + 64 / f.bcfg.bytes_per_cycle;
  EXPECT_GE(grants[1] - grants[0], occupancy);
  EXPECT_GE(grants[2] - grants[1], occupancy);
  EXPECT_GT(f.bus.utilization(f.eq.now()), 0.0);
}

// --- memory controller --------------------------------------------------------

TEST(Memory, ReadLatencyAndTraffic) {
  EventQueue eq;
  mem::MemoryConfig cfg;
  mem::MemoryController mem(eq, cfg);
  const Cycle done = mem.schedule_read(100, 64);
  EXPECT_EQ(done, 100 + cfg.read_latency + 64 / cfg.bytes_per_cycle);
  EXPECT_EQ(mem.bytes_read(), 64u);
}

TEST(Memory, ChannelSerializesTransfers) {
  EventQueue eq;
  mem::MemoryConfig cfg;
  mem::MemoryController mem(eq, cfg);
  const Cycle xfer = 64 / cfg.bytes_per_cycle;
  const Cycle d1 = mem.schedule_read(0, 64);
  const Cycle d2 = mem.schedule_read(0, 64);  // same start: queues behind
  EXPECT_EQ(d2 - d1, xfer);
}

TEST(Memory, PostedWritesConsumeBandwidth) {
  EventQueue eq;
  mem::MemoryConfig cfg;
  mem::MemoryController mem(eq, cfg);
  mem.post_write(0, 64);
  const Cycle done = mem.schedule_read(0, 64);
  // The read queued behind the write's channel occupancy.
  EXPECT_EQ(done, 64 / cfg.bytes_per_cycle + cfg.read_latency +
                      64 / cfg.bytes_per_cycle);
  EXPECT_EQ(mem.total_bytes(), 128u);
}

TEST(Memory, BandwidthMetric) {
  EventQueue eq;
  mem::MemoryConfig cfg;
  mem::MemoryController mem(eq, cfg);
  mem.post_write(0, 640);
  EXPECT_DOUBLE_EQ(mem.bandwidth(1000), 0.64);
}

TEST(Memory, OutOfOrderStartsFillEarlierGaps) {
  // Channel arbitration is time-ordered, not call-ordered: a claim issued
  // late but starting early lands in the idle gap in front of already
  // booked traffic.
  EventQueue eq;
  mem::MemoryConfig cfg;
  mem::MemoryController mem(eq, cfg);
  const Cycle xfer = 64 / cfg.bytes_per_cycle;  // 4
  const Cycle late = mem.schedule_read(1000, 64);
  EXPECT_EQ(late, 1000 + cfg.read_latency + xfer);
  const Cycle early = mem.schedule_read(0, 64);  // fits the gap [0, 1000)
  EXPECT_EQ(early, 0 + cfg.read_latency + xfer);
  // A start that cannot finish before the booked claim queues behind it.
  const Cycle squeezed = mem.schedule_read(998, 64);
  EXPECT_EQ(squeezed, 1000 + xfer + cfg.read_latency + xfer);
}

TEST(Memory, ZeroByteTransfersAreNoOps) {
  EventQueue eq;
  mem::MemoryConfig cfg;
  mem::MemoryController mem(eq, cfg);
  EXPECT_EQ(mem.schedule_read(100, 0), 100u);
  EXPECT_EQ(mem.post_write(50, 0), 50u);
  EXPECT_EQ(mem.read_count(), 0u);
  EXPECT_EQ(mem.write_count(), 0u);
  EXPECT_EQ(mem.total_bytes(), 0u);
  // And no channel time was claimed: a real read still starts at cycle 0.
  EXPECT_EQ(mem.schedule_read(0, 64),
            0 + cfg.read_latency + 64 / cfg.bytes_per_cycle);
}

TEST(Memory, OddSizesRoundUpToWholeCycles) {
  EventQueue eq;
  mem::MemoryConfig cfg;
  mem::MemoryController mem(eq, cfg);
  // 17 bytes at 16 B/cycle occupies ceil(17/16) = 2 channel cycles.
  EXPECT_EQ(mem.schedule_read(0, 17), 0 + cfg.read_latency + 2);
  // A single byte still costs a full cycle, queued behind the first claim.
  EXPECT_EQ(mem.schedule_read(0, 1), 2 + cfg.read_latency + 1);
}

TEST(SnoopBus, NonPostedWriteBackWaitsForTheMemoryChannel) {
  // posted=true: the write-back completes at bus-occupancy time no matter
  // how congested the memory channel is. posted=false: the evicting cache
  // holds the transaction open until the channel absorbs the write.
  Cycle done_at[2] = {0, 0};
  for (int np = 0; np < 2; ++np) {
    EventQueue eq;
    mem::MemoryConfig mcfg;
    mcfg.posted_writes = (np == 0);
    mem::MemoryController mem(eq, mcfg);
    bus::BusConfig bcfg;
    bus::SnoopBus bus(eq, bcfg, mem);
    FakeSnooper s0, s1;
    bus.attach(&s0);
    bus.attach(&s1);
    mem.post_write(0, 640);  // congest the channel until cycle 40
    BusResult got;
    bus.request(BusTxKind::kWriteBack, 0x80, 0, 64,
                [&](const BusResult& r) { got = r; });
    eq.run();
    if (np == 0) {
      EXPECT_EQ(got.done_at, got.granted_at + bcfg.address_phase +
                                 64 / bcfg.bytes_per_cycle);
    }
    done_at[np] = got.done_at;
  }
  EXPECT_GT(done_at[1], done_at[0]);
  // Behind the 640-byte burst plus the write's own transfer.
  EXPECT_EQ(done_at[1], 640 / 16 + 64 / 16);
}

}  // namespace
}  // namespace cdsim::bus
