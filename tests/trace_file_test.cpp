// .cdt trace format: round-trip fidelity, replay determinism, and the
// reader's corruption/version error paths.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cdsim/verify/fuzz.hpp"
#include "cdsim/workload/fuzzer.hpp"
#include "cdsim/workload/trace_file.hpp"

namespace {

using namespace cdsim;
using workload::Trace;
using workload::TraceRecord;

/// Unique temp path per test (tests run in one process; the pid suffix
/// keeps parallel ctest invocations of this binary apart).
std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "cdt_" + tag + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".cdt";
}

Trace small_trace() {
  Trace t;
  t.num_cores = 2;
  t.records.push_back({0, {AccessType::kLoad, 0x1040, 3, false, 0}});
  t.records.push_back({1, {AccessType::kStore, 0x2080, 0, false, 2}});
  t.records.push_back({0, {AccessType::kLoad, 0x10c0, 7, true, 5}});
  t.records.push_back({1, {AccessType::kIFetch, 0x3000, 2, false, 0}});
  return t;
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.num_cores, b.num_cores);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.records[i].core, b.records[i].core);
    EXPECT_EQ(a.records[i].op.addr, b.records[i].op.addr);
    EXPECT_EQ(a.records[i].op.type, b.records[i].op.type);
    EXPECT_EQ(a.records[i].op.gap, b.records[i].op.gap);
    EXPECT_EQ(a.records[i].op.dependent, b.records[i].op.dependent);
    EXPECT_EQ(a.records[i].op.chain, b.records[i].op.chain);
  }
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(TraceFile, SaveLoadRoundTripPreservesEveryField) {
  const Trace t = small_trace();
  const std::string path = temp_path("roundtrip");
  std::string err;
  ASSERT_TRUE(t.save(path, &err)) << err;
  const auto loaded = Trace::load(path, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  expect_traces_equal(t, *loaded);
  std::remove(path.c_str());
}

TEST(TraceFile, CaptureReadReplayIsBitIdentical) {
  // Capture a hostile scenario, write it to disk, read it back, replay it
  // through ScriptedWorkload — the RunMetrics must match the original run
  // exactly (doubles compared bit-for-bit via EXPECT_EQ).
  verify::FuzzScenario sc;
  sc.decay = decay::DecayConfig{decay::Technique::kDecay, 2048, 4};
  sc.seed = 31415;
  sc.fuzz.decay_window = 2048;
  sc.instructions_per_core = 12000;

  const verify::ScenarioOutcome original = verify::run_scenario(sc);
  ASSERT_EQ(original.total_divergences, 0u);
  ASSERT_GT(original.trace.records.size(), 0u);

  const std::string path = temp_path("capture");
  std::string err;
  ASSERT_TRUE(original.trace.save(path, &err)) << err;
  const auto loaded = Trace::load(path, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  expect_traces_equal(original.trace, *loaded);
  std::remove(path.c_str());

  const verify::ScenarioOutcome replay = verify::replay_scenario(sc, *loaded);
  EXPECT_EQ(replay.total_divergences, 0u);
  EXPECT_EQ(replay.metrics.cycles, original.metrics.cycles);
  EXPECT_EQ(replay.metrics.instructions, original.metrics.instructions);
  EXPECT_EQ(replay.metrics.l2_accesses, original.metrics.l2_accesses);
  EXPECT_EQ(replay.metrics.l2_misses, original.metrics.l2_misses);
  EXPECT_EQ(replay.metrics.l2_decay_turnoffs,
            original.metrics.l2_decay_turnoffs);
  EXPECT_EQ(replay.metrics.l2_writebacks, original.metrics.l2_writebacks);
  EXPECT_EQ(replay.metrics.mem_bytes, original.metrics.mem_bytes);
  EXPECT_EQ(replay.metrics.ipc, original.metrics.ipc);
  EXPECT_EQ(replay.metrics.amat, original.metrics.amat);
  EXPECT_EQ(replay.metrics.energy, original.metrics.energy);
  EXPECT_EQ(replay.metrics.l2_occupation, original.metrics.l2_occupation);
}

// ---------------------------------------------------------------------------
// Budgets and idle cores
// ---------------------------------------------------------------------------

TEST(TraceFile, PerCoreInstructionsSumGapPlusOne) {
  const Trace t = small_trace();
  const auto budget = t.per_core_instructions();
  ASSERT_EQ(budget.size(), 2u);
  EXPECT_EQ(budget[0], (3u + 1) + (7u + 1));
  EXPECT_EQ(budget[1], (0u + 1) + (2u + 1));
}

TEST(TraceFile, IdleCoreGetsUnitBudgetAndFillerStream) {
  Trace t;
  t.num_cores = 4;  // cores 1..3 never scheduled
  t.records.push_back({0, {AccessType::kLoad, 0x40, 2, false, 0}});
  const auto budget = t.per_core_instructions();
  ASSERT_EQ(budget.size(), 4u);
  EXPECT_EQ(budget[0], 3u);
  EXPECT_EQ(budget[1], 1u);

  const workload::StreamFactory factory = workload::replay_factory(t);
  const workload::StreamPtr s = factory(3, 0);
  ASSERT_NE(s, nullptr);
  const workload::MemOp op = s->next(0);
  EXPECT_EQ(op.type, AccessType::kLoad);
  EXPECT_EQ(op.gap, 0u);

  // A trace with idle cores must also replay end-to-end.
  verify::FuzzScenario sc;
  sc.instructions_per_core = 1;  // overridden by per-core budgets anyway
  const verify::ScenarioOutcome out = verify::replay_scenario(sc, t);
  EXPECT_EQ(out.total_divergences, 0u);
  EXPECT_EQ(out.metrics.instructions, 3u + 1 + 1 + 1);
}

// ---------------------------------------------------------------------------
// Reader error paths
// ---------------------------------------------------------------------------

class TraceFileErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("errors");
    std::string err;
    ASSERT_TRUE(small_trace().save(path_, &err)) << err;
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes_ = ss.str();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_bytes(const std::string& b) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(TraceFileErrors, RejectsBadMagic) {
  std::string b = bytes_;
  b[0] = 'X';
  write_bytes(b);
  std::string err;
  EXPECT_FALSE(Trace::load(path_, &err).has_value());
  EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
}

TEST_F(TraceFileErrors, RejectsVersionMismatch) {
  std::string b = bytes_;
  b[4] = 99;  // version little-endian low byte
  write_bytes(b);
  std::string err;
  EXPECT_FALSE(Trace::load(path_, &err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST_F(TraceFileErrors, RejectsTruncation) {
  write_bytes(bytes_.substr(0, bytes_.size() - 5));
  std::string err;
  EXPECT_FALSE(Trace::load(path_, &err).has_value());
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST_F(TraceFileErrors, RejectsCorruptRecordByte) {
  std::string b = bytes_;
  b[20] ^= 0x5a;  // first record's addr low byte
  write_bytes(b);
  std::string err;
  EXPECT_FALSE(Trace::load(path_, &err).has_value());
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

TEST_F(TraceFileErrors, RejectsOverflowingRecordCount) {
  // A crafted header whose record count makes the naive size arithmetic
  // (header + n*16 + checksum) wrap back to the file size must be rejected
  // loudly, not reserve petabytes or read out of bounds. The 8 trailing
  // bytes hold the FNV-1a basis — the checksum of a wrapped zero-length
  // record region — so only the count validation stands between this file
  // and the record parser.
  std::string b;
  b += "CDTF";
  const auto u32 = [&b](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) b.push_back(static_cast<char>(v >> (8 * i)));
  };
  const auto u64 = [&b](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) b.push_back(static_cast<char>(v >> (8 * i)));
  };
  u32(Trace::kFormatVersion);
  u32(2);                             // num_cores
  u64(1ull << 60);                    // record count: (1<<60)*16 wraps to 0
  u64(14695981039346656037ull);       // FNV-1a offset basis
  write_bytes(b);
  std::string err;
  EXPECT_FALSE(Trace::load(path_, &err).has_value());
  EXPECT_NE(err.find("truncated or oversized"), std::string::npos) << err;
}

TEST_F(TraceFileErrors, RejectsHeaderShorterThanMinimum) {
  write_bytes("CDTF");
  std::string err;
  EXPECT_FALSE(Trace::load(path_, &err).has_value());
  EXPECT_NE(err.find("too short"), std::string::npos) << err;
}

TEST_F(TraceFileErrors, RejectsMissingFile) {
  std::string err;
  EXPECT_FALSE(Trace::load(path_ + ".does-not-exist", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST_F(TraceFileErrors, SaveRejectsOutOfRangeCore) {
  Trace t = small_trace();
  t.records[1].core = 9;  // > num_cores
  std::string err;
  EXPECT_FALSE(t.save(path_, &err));
  EXPECT_NE(err.find("core"), std::string::npos) << err;
}

}  // namespace
