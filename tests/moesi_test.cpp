// Exhaustive tests of the MOESI + turn-off FSM (the paper's §III protocol
// extension: "considering the Owned state of the MOESI, other copies must
// be invalidated before a line is turned off").

#include <gtest/gtest.h>

#include <vector>

#include "cdsim/coherence/moesi.hpp"

namespace cdsim::coherence {
namespace {

using enum MoesiState;

const std::vector<MoesiState> kAll = {kInvalid,  kShared,        kExclusive,
                                      kOwned,    kModified,      kTransientClean,
                                      kTransientDirty};

// --- predicates -----------------------------------------------------------------

TEST(Moesi, StationaryStates) {
  EXPECT_TRUE(is_stationary(kOwned));
  EXPECT_TRUE(is_stationary(kModified));
  EXPECT_TRUE(is_stationary(kShared));
  EXPECT_TRUE(is_stationary(kExclusive));
  EXPECT_FALSE(is_stationary(kInvalid));
  EXPECT_FALSE(is_stationary(kTransientClean));
  EXPECT_FALSE(is_stationary(kTransientDirty));
}

TEST(Moesi, OwnedIsDirty) {
  EXPECT_TRUE(is_dirty(kOwned));
  EXPECT_TRUE(is_dirty(kModified));
  EXPECT_TRUE(is_dirty(kTransientDirty));
  EXPECT_FALSE(is_dirty(kShared));
  EXPECT_FALSE(is_dirty(kExclusive));
}

TEST(Moesi, Names) {
  EXPECT_EQ(to_string(kOwned), "O");
  EXPECT_EQ(to_string(kTransientDirty), "TD");
}

// --- the MOESI-defining transition: M -> O on remote read -------------------------

TEST(Moesi, BusRdOnModifiedBecomesOwnedWithoutMemoryUpdate) {
  const MoesiSnoopOutcome o = moesi_apply_snoop(kModified, BusTxKind::kBusRd);
  EXPECT_EQ(o.next, kOwned);
  EXPECT_TRUE(o.supply_data);
  EXPECT_FALSE(o.memory_update);  // the deferred write-back: MOESI's point
  EXPECT_FALSE(o.invalidated);
}

TEST(Moesi, OwnerKeepsSupplyingReaders) {
  const MoesiSnoopOutcome o = moesi_apply_snoop(kOwned, BusTxKind::kBusRd);
  EXPECT_EQ(o.next, kOwned);
  EXPECT_TRUE(o.supply_data);
  EXPECT_FALSE(o.memory_update);
}

TEST(Moesi, RemoteWriterFlushesTheOwner) {
  // BusRdX: the requester has no data, so the dying owner must flush.
  const MoesiSnoopOutcome o = moesi_apply_snoop(kOwned, BusTxKind::kBusRdX);
  EXPECT_EQ(o.next, kInvalid);
  EXPECT_TRUE(o.supply_data);
  EXPECT_TRUE(o.memory_update);  // ownership dies: data must be safe
  EXPECT_TRUE(o.invalidated);
}

TEST(Moesi, UpgradeMigratesOwnershipSilently) {
  // BusUpgr: the requester already holds the identical line in S — the
  // owner dies without moving data; the new M inherits the dirty-data
  // responsibility. No bus data phase, no memory write.
  const MoesiSnoopOutcome o = moesi_apply_snoop(kOwned, BusTxKind::kBusUpgr);
  EXPECT_EQ(o.next, kInvalid);
  EXPECT_FALSE(o.supply_data);
  EXPECT_FALSE(o.memory_update);
  EXPECT_TRUE(o.invalidated);
}

TEST(Moesi, CleanStatesMatchMesiBehaviour) {
  // For I/S/E the MOESI outcomes must coincide with MESI's.
  const auto mesi_of = [](MoesiState s) {
    switch (s) {
      case kInvalid: return MesiState::kInvalid;
      case kShared: return MesiState::kShared;
      case kExclusive: return MesiState::kExclusive;
      default: return MesiState::kInvalid;
    }
  };
  for (const MoesiState s : {kInvalid, kShared, kExclusive}) {
    for (const BusTxKind k : {BusTxKind::kBusRd, BusTxKind::kBusRdX,
                              BusTxKind::kBusUpgr, BusTxKind::kWriteBack}) {
      const MoesiSnoopOutcome mo = moesi_apply_snoop(s, k);
      const SnoopOutcome me = apply_snoop(mesi_of(s), k);
      EXPECT_EQ(mo.supply_data, me.supply_data) << to_string(s);
      EXPECT_EQ(mo.invalidated, me.invalidated) << to_string(s);
      EXPECT_EQ(mo.had_line, me.had_line) << to_string(s);
    }
  }
}

TEST(Moesi, WriteBackInertForThirdParties) {
  for (const MoesiState s : kAll) {
    const MoesiSnoopOutcome o = moesi_apply_snoop(s, BusTxKind::kWriteBack);
    EXPECT_EQ(o.next, s) << to_string(s);
    EXPECT_FALSE(o.invalidated);
  }
}

TEST(Moesi, TransientDirtySnoopCancelsItsWriteback) {
  // Data-carrying transactions flush the dying line to the requester and
  // memory; the queued turn-off write-back becomes moot either way.
  for (const BusTxKind k : {BusTxKind::kBusRd, BusTxKind::kBusRdX}) {
    const MoesiSnoopOutcome o = moesi_apply_snoop(kTransientDirty, k);
    EXPECT_EQ(o.next, kInvalid) << to_string(k);
    EXPECT_TRUE(o.cancel_turnoff_wb);
    EXPECT_TRUE(o.memory_update);
  }
  // An upgrade's requester already holds the data: the TD line dies
  // silently and the upgrader's new M copy carries the responsibility.
  const MoesiSnoopOutcome o =
      moesi_apply_snoop(kTransientDirty, BusTxKind::kBusUpgr);
  EXPECT_EQ(o.next, kInvalid);
  EXPECT_TRUE(o.cancel_turnoff_wb);
  EXPECT_FALSE(o.memory_update);
  EXPECT_FALSE(o.supply_data);
}

// --- turn-off classification (the §III extension) -----------------------------------

TEST(Moesi, TurnOffClasses) {
  EXPECT_EQ(moesi_classify_turnoff(kShared),
            MoesiTurnOffClass::kCleanTurnOff);
  EXPECT_EQ(moesi_classify_turnoff(kExclusive),
            MoesiTurnOffClass::kCleanTurnOff);
  EXPECT_EQ(moesi_classify_turnoff(kModified),
            MoesiTurnOffClass::kDirtyTurnOff);
  // The paper's caveat: Owned needs the invalidation broadcast.
  EXPECT_EQ(moesi_classify_turnoff(kOwned),
            MoesiTurnOffClass::kOwnedTurnOff);
  for (const MoesiState s : {kInvalid, kTransientClean, kTransientDirty}) {
    EXPECT_EQ(moesi_classify_turnoff(s), MoesiTurnOffClass::kIgnore);
  }
}

TEST(Moesi, DirtyStatesEnterTransientDirty) {
  EXPECT_EQ(moesi_turnoff_transient(kModified), kTransientDirty);
  EXPECT_EQ(moesi_turnoff_transient(kOwned), kTransientDirty);
  EXPECT_EQ(moesi_turnoff_transient(kShared), kTransientClean);
  EXPECT_EQ(moesi_turnoff_transient(kExclusive), kTransientClean);
}

TEST(Moesi, TurnOffCostOrdering) {
  // S/E free < M (write-back) < O (invalidation broadcast + write-back).
  EXPECT_EQ(moesi_turnoff_bus_cost(kShared), 0);
  EXPECT_EQ(moesi_turnoff_bus_cost(kExclusive), 0);
  EXPECT_LT(moesi_turnoff_bus_cost(kShared),
            moesi_turnoff_bus_cost(kModified));
  EXPECT_LT(moesi_turnoff_bus_cost(kModified),
            moesi_turnoff_bus_cost(kOwned));
}

// --- fills -------------------------------------------------------------------------

TEST(Moesi, FillStates) {
  EXPECT_EQ(moesi_fill_state(true, false), kModified);
  EXPECT_EQ(moesi_fill_state(true, true), kModified);
  EXPECT_EQ(moesi_fill_state(false, true), kShared);
  EXPECT_EQ(moesi_fill_state(false, false), kExclusive);
}

// --- protocol-level invariants over the full input space ---------------------------

TEST(Moesi, SupplyImpliesDirtyOrDying) {
  for (const MoesiState s : kAll) {
    for (const BusTxKind k :
         {BusTxKind::kBusRd, BusTxKind::kBusRdX, BusTxKind::kBusUpgr}) {
      const MoesiSnoopOutcome o = moesi_apply_snoop(s, k);
      if (o.supply_data) {
        EXPECT_TRUE(is_dirty(s)) << to_string(s) << " " << to_string(k);
      }
    }
  }
}

TEST(Moesi, InvalidationAlwaysLandsInInvalid) {
  for (const MoesiState s : kAll) {
    for (const BusTxKind k :
         {BusTxKind::kBusRd, BusTxKind::kBusRdX, BusTxKind::kBusUpgr}) {
      const MoesiSnoopOutcome o = moesi_apply_snoop(s, k);
      if (o.invalidated) {
        EXPECT_EQ(o.next, kInvalid) << to_string(s);
      }
      if (!o.invalidated && s != kInvalid) {
        EXPECT_TRUE(holds_data(o.next)) << to_string(s);
      }
    }
  }
}

TEST(Moesi, NoDirtyDataIsEverSilentlyDropped) {
  // Whenever a dirty state leaves the dirty set, the data must stay safe:
  // either memory is made current, or — on an upgrade — the requester
  // (which already holds the identical line and is entering M) inherits
  // the dirty-data responsibility. Only BusUpgr transfers responsibility;
  // every data-carrying transaction that kills a dirty line writes memory.
  for (const MoesiState s : {kOwned, kModified, kTransientDirty}) {
    for (const BusTxKind k : {BusTxKind::kBusRd, BusTxKind::kBusRdX}) {
      const MoesiSnoopOutcome o = moesi_apply_snoop(s, k);
      if (!is_dirty(o.next)) {
        EXPECT_TRUE(o.supply_data) << to_string(s) << " " << to_string(k);
        // Leaving the dirty set without a surviving owner means memory
        // itself must have been made current.
        EXPECT_TRUE(o.memory_update) << to_string(s) << " " << to_string(k);
      }
    }
    const MoesiSnoopOutcome o = moesi_apply_snoop(s, BusTxKind::kBusUpgr);
    EXPECT_FALSE(is_dirty(o.next)) << to_string(s);
    // The upgrading writer installs M: moesi_fill_state(was_write) is
    // dirty, so responsibility migrated rather than vanished.
    EXPECT_TRUE(is_dirty(moesi_fill_state(/*was_write=*/true, false)));
    EXPECT_FALSE(o.supply_data) << to_string(s);
    EXPECT_FALSE(o.memory_update) << to_string(s);
  }
}

}  // namespace
}  // namespace cdsim::coherence
