// Directed tests of the L1/L2 cache controllers wired to a real bus and
// memory: hit/miss paths, write-through behaviour, MESI state evolution,
// inclusion back-invalidation, and the coherence-safe turn-off choreography
// (TC/TD) of the paper's Figure 2 — exercised on a live two-cache system.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cdsim/bus/snoop_bus.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/sim/l1_cache.hpp"
#include "cdsim/sim/l2_cache.hpp"

namespace cdsim::sim {
namespace {

using coherence::MesiState;

/// Two cores' worth of L1+L2 on one bus, driven directly (no core model).
struct Harness {
  EventQueue eq;
  mem::MemoryController mem;
  bus::SnoopBus bus;
  std::vector<std::unique_ptr<L1Cache>> l1s;
  std::vector<std::unique_ptr<L2Cache>> l2s;

  explicit Harness(decay::Technique tech = decay::Technique::kProtocol,
                   Cycle decay_time = 16384, std::uint32_t cores = 2)
      : mem(eq, mem::MemoryConfig{}), bus(eq, bus::BusConfig{}, mem) {
    decay::DecayConfig d;
    d.technique = tech;
    d.decay_time = decay_time;
    L2Config l2cfg;
    l2cfg.size_bytes = 64 * KiB;  // small: tests can exercise eviction
    for (CoreId c = 0; c < cores; ++c) {
      l1s.push_back(std::make_unique<L1Cache>(eq, L1Config{}, c));
      l2s.push_back(std::make_unique<L2Cache>(eq, l2cfg, d, c, bus,
                                              l1s.back().get()));
      l1s.back()->connect_l2(l2s.back().get());
      bus.attach(l2s.back().get());
      l2s.back()->start();
    }
  }

  ~Harness() {
    for (auto& l2 : l2s) l2->stop();
  }

  /// Issues a load through core `c`'s L1 and runs to completion.
  void load(CoreId c, Addr a) {
    bool done = false;
    const auto out = l1s[c]->try_load(a, [&](Cycle) { done = true; });
    ASSERT_TRUE(out.accepted);
    if (!out.completed) {
      while (!done) ASSERT_TRUE(eq.step());
    }
  }

  /// Issues a store through core `c`'s L1 and drains it to the L2.
  void store(CoreId c, Addr a) {
    ASSERT_TRUE(l1s[c]->try_store(a));
    drain(c);
  }

  void drain(CoreId c) {
    while (!l1s[c]->write_buffer().empty()) ASSERT_TRUE(eq.step());
  }

  void run_for(Cycle cycles) { eq.run_until(eq.now() + cycles); }
};

// --- basic paths ---------------------------------------------------------------

TEST(Hierarchy, ColdLoadFillsBothLevelsExclusive) {
  Harness h;
  h.load(0, 0x1000);
  EXPECT_TRUE(h.l1s[0]->has_line(0x1000));
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kExclusive);
  EXPECT_EQ(h.l1s[0]->stats().read_misses.value(), 1u);
  EXPECT_EQ(h.l2s[0]->stats().read_misses.value(), 1u);
  EXPECT_EQ(h.mem.read_count(), 1u);
}

TEST(Hierarchy, SecondLoadHitsBothLevels) {
  Harness h;
  h.load(0, 0x1000);
  h.load(0, 0x1008);  // same line
  EXPECT_EQ(h.l1s[0]->stats().read_hits.value(), 1u);
  EXPECT_EQ(h.mem.read_count(), 1u);  // no extra traffic
}

TEST(Hierarchy, RemoteReadDowngradesToShared) {
  Harness h;
  h.load(0, 0x1000);
  h.load(1, 0x1000);
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kShared);
  EXPECT_EQ(h.l2s[1]->line_state(0x1000), MesiState::kShared);
}

TEST(Hierarchy, StoreMissInstallsModified) {
  Harness h;
  h.store(0, 0x2000);
  EXPECT_EQ(h.l2s[0]->line_state(0x2000), MesiState::kModified);
  // Write-through, no-write-allocate: the L1 does not hold the line.
  EXPECT_FALSE(h.l1s[0]->has_line(0x2000));
  EXPECT_EQ(h.l2s[0]->stats().write_misses.value(), 1u);
}

TEST(Hierarchy, StoreToExclusiveUpgradesSilently) {
  Harness h;
  h.load(0, 0x1000);
  const auto upgrades_before = h.l2s[0]->upgrades();
  h.store(0, 0x1000);
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kModified);
  EXPECT_EQ(h.l2s[0]->upgrades(), upgrades_before);  // no bus transaction
}

TEST(Hierarchy, StoreToSharedIssuesUpgradeAndInvalidatesRemote) {
  Harness h;
  h.load(0, 0x1000);
  h.load(1, 0x1000);
  h.store(0, 0x1000);
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kModified);
  EXPECT_EQ(h.l2s[1]->line_state(0x1000), MesiState::kInvalid);
  EXPECT_GE(h.l2s[0]->upgrades(), 1u);
  EXPECT_EQ(h.l2s[1]->stats().coherence_invals.value(), 1u);
  // Inclusion: core 1's L1 copy is gone too.
  EXPECT_FALSE(h.l1s[1]->has_line(0x1000));
}

TEST(Hierarchy, RemoteWriteInvalidatesReaderEverywhere) {
  Harness h;
  h.load(0, 0x1000);
  h.store(1, 0x1000);
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kInvalid);
  EXPECT_FALSE(h.l1s[0]->has_line(0x1000));
  EXPECT_EQ(h.l2s[1]->line_state(0x1000), MesiState::kModified);
}

TEST(Hierarchy, DirtyRemoteLineIsFlushedToReader) {
  Harness h;
  h.store(0, 0x3000);  // M in cache 0
  const auto wr_before = h.mem.write_count();
  h.load(1, 0x3000);   // BusRd: cache 0 flushes, memory updated
  EXPECT_EQ(h.l2s[0]->line_state(0x3000), MesiState::kShared);
  EXPECT_EQ(h.l2s[1]->line_state(0x3000), MesiState::kShared);
  EXPECT_GT(h.mem.write_count(), wr_before);
}

// --- decay turn-off choreography --------------------------------------------------

TEST(Hierarchy, CleanLineDecaysWithoutBusTraffic) {
  Harness h(decay::Technique::kDecay, 4096);
  h.load(0, 0x1000);  // E, armed
  const auto mem_before = h.mem.total_bytes();
  h.run_for(3 * 4096);
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kInvalid);
  EXPECT_FALSE(h.l1s[0]->has_line(0x1000));  // inclusion: L1 invalidated
  EXPECT_EQ(h.l2s[0]->stats().decay_turnoffs.value(), 1u);
  EXPECT_EQ(h.l2s[0]->stats().writebacks.value(), 0u);
  EXPECT_EQ(h.mem.total_bytes(), mem_before);  // "no penalty" for clean
}

TEST(Hierarchy, DirtyLineDecayWritesBack) {
  Harness h(decay::Technique::kDecay, 4096);
  h.store(0, 0x2000);  // M
  const auto wr_before = h.mem.bytes_written();
  h.run_for(3 * 4096);
  EXPECT_EQ(h.l2s[0]->line_state(0x2000), MesiState::kInvalid);
  EXPECT_EQ(h.l2s[0]->stats().decay_turnoffs.value(), 1u);
  EXPECT_GE(h.l2s[0]->stats().writebacks.value(), 1u);
  EXPECT_GT(h.mem.bytes_written(), wr_before);  // TD flush reached memory
}

TEST(Hierarchy, AccessResetsDecayCountdown) {
  Harness h(decay::Technique::kDecay, 4096);
  h.load(0, 0x1000);
  // Keep touching within the decay interval: the line must survive.
  for (int i = 0; i < 8; ++i) {
    h.run_for(2048);
    h.load(0, 0x1040);  // different line in L1, same L2? no: same line
    h.load(0, 0x1000);
  }
  EXPECT_TRUE(coherence::holds_data(h.l2s[0]->line_state(0x1000)));
  // Note: the L1 filters repeated loads; this works here because the L1
  // copy is re-fetched after each decay-window-sized gap... to make the
  // touch visible at the L2 we go through a store.
  h.store(0, 0x1000);
  h.run_for(2048);
  EXPECT_TRUE(coherence::holds_data(h.l2s[0]->line_state(0x1000)));
}

TEST(Hierarchy, SelectiveDecaySparesModifiedLines) {
  Harness h(decay::Technique::kSelectiveDecay, 4096);
  h.load(0, 0x1000);   // E -> armed
  h.store(0, 0x2000);  // M -> disarmed
  h.run_for(4 * 4096);
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kInvalid);  // decayed
  EXPECT_EQ(h.l2s[0]->line_state(0x2000), MesiState::kModified);  // spared
  EXPECT_EQ(h.l2s[0]->stats().writebacks.value(), 0u);  // never a TD flush
}

TEST(Hierarchy, SelectiveDecayArmsOnDowngradeToShared) {
  Harness h(decay::Technique::kSelectiveDecay, 4096);
  h.store(0, 0x2000);  // M in cache 0: SD never decays it...
  h.load(1, 0x2000);   // ...until a remote read downgrades it to S
  h.run_for(4 * 4096);
  EXPECT_EQ(h.l2s[0]->line_state(0x2000), MesiState::kInvalid);
  EXPECT_EQ(h.l2s[1]->line_state(0x2000), MesiState::kInvalid);
}

TEST(Hierarchy, PendingWriteGatesTurnOff) {
  // Table I: a line with a pending write in the L1 write buffer must not
  // be switched off. We pin the write buffer by filling it beyond the
  // drain concurrency, then check the line survives a decay interval.
  Harness h(decay::Technique::kDecay, 2048);
  h.load(0, 0x1000);
  // Stores to several distinct lines occupy the drain slots; one targets
  // the decaying line. A write counts as pending until it reaches the L2,
  // including while its drain is in flight.
  for (Addr a = 0; a < 5; ++a) {
    ASSERT_TRUE(h.l1s[0]->try_store(0x8000 + a * 64));
  }
  ASSERT_TRUE(h.l1s[0]->try_store(0x1000));
  // While the write is pending, sweeps must skip the line.
  EXPECT_TRUE(h.l1s[0]->pending_write(0x1000));
  h.eq.run_until(h.eq.now() + 1);  // let nothing else happen yet
  EXPECT_TRUE(coherence::holds_data(h.l2s[0]->line_state(0x1000)));
  // After the buffer drains, the store refreshed the line (it stays on).
  h.drain(0);
  EXPECT_TRUE(coherence::holds_data(h.l2s[0]->line_state(0x1000)));
}

TEST(Hierarchy, ProtocolTechniqueTurnsOffOnlyInvalidLines) {
  Harness h(decay::Technique::kProtocol);
  h.load(0, 0x1000);
  h.run_for(200000);  // far beyond any decay interval
  // Protocol never decays: the line is still powered and valid.
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kExclusive);
  EXPECT_EQ(h.l2s[0]->stats().decay_turnoffs.value(), 0u);
  // A remote write invalidates (and with valid-bit gating, powers off).
  h.store(1, 0x1000);
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kInvalid);
  EXPECT_LT(h.l2s[0]->lines_on(), h.l2s[0]->capacity_lines());
}

// --- occupation accounting ---------------------------------------------------------

TEST(Hierarchy, OccupationTracksPoweredLines) {
  Harness h(decay::Technique::kProtocol);
  EXPECT_EQ(h.l2s[0]->lines_on(), 0u);
  h.load(0, 0x1000);
  h.load(0, 0x2000);
  EXPECT_EQ(h.l2s[0]->lines_on(), 2u);
  h.store(1, 0x1000);  // invalidates one
  EXPECT_EQ(h.l2s[0]->lines_on(), 1u);
  const double occ = h.l2s[0]->occupation(h.eq.now());
  EXPECT_GT(occ, 0.0);
  EXPECT_LT(occ, 1.0);
}

TEST(Hierarchy, BaselineOccupationIsAlwaysFull) {
  Harness h(decay::Technique::kBaseline);
  h.load(0, 0x1000);
  h.run_for(10000);
  EXPECT_DOUBLE_EQ(h.l2s[0]->occupation(h.eq.now()), 1.0);
}

// --- write statistics on contended upgrades ---------------------------------------

TEST(Hierarchy, CancelledUpgradeCountsAsWriteMissNotHit) {
  Harness h;
  h.load(0, 0x1000);
  h.load(1, 0x1000);  // both Shared
  const auto hits0 = h.l2s[0]->stats().write_hits.value();
  const auto hits1 = h.l2s[1]->stats().write_hits.value();

  // Both cores store to the Shared line in the same cycle: both queue a
  // BusUpgr. Core 0's wins arbitration and invalidates core 1's copy, so
  // core 1's queued upgrade is cancelled by its validator and must retire
  // as a write MISS (BusRdX), not the write hit it optimistically looked
  // like at issue time.
  ASSERT_TRUE(h.l1s[0]->try_store(0x1000));
  ASSERT_TRUE(h.l1s[1]->try_store(0x1000));
  h.drain(0);
  h.drain(1);

  EXPECT_EQ(h.bus.cancelled_transactions(), 1u);
  // Core 0: a clean upgrade hit.
  EXPECT_EQ(h.l2s[0]->stats().write_hits.value(), hits0 + 1);
  EXPECT_EQ(h.l2s[0]->stats().write_misses.value(), 0u);
  // Core 1: the cancelled upgrade became a genuine write miss. Before the
  // fix it was double-counted as a hit and the miss vanished entirely.
  EXPECT_EQ(h.l2s[1]->stats().write_hits.value(), hits1);
  EXPECT_EQ(h.l2s[1]->stats().write_misses.value(), 1u);
  // Core 1 ends up the owner (its BusRdX ran last).
  EXPECT_EQ(h.l2s[1]->line_state(0x1000), MesiState::kModified);
  EXPECT_EQ(h.l2s[0]->line_state(0x1000), MesiState::kInvalid);
}

TEST(Hierarchy, WriteMissOnDecayedLineCountsDecayInduced) {
  Harness h(decay::Technique::kDecay, 4096);
  h.load(0, 0x1000);
  h.load(1, 0x1000);             // both Shared
  h.run_for(3 * 4096);           // both copies decay away
  ASSERT_EQ(h.l2s[1]->line_state(0x1000), MesiState::kInvalid);
  const auto dim_before = h.l2s[1]->stats().decay_induced_misses.value();
  h.store(1, 0x1000);            // miss on a line decay killed
  EXPECT_EQ(h.l2s[1]->stats().decay_induced_misses.value(), dim_before + 1);
}

// --- decay-attribution aging -------------------------------------------------------

TEST(Hierarchy, DecayAttributionSetIsBoundedByAging) {
  // Small decay interval so lines decay quickly; every decayed line is a
  // distinct address that is never touched again, the worst case for the
  // attribution map. 64 KiB slice = 1024 lines per generation.
  Harness h(decay::Technique::kDecay, 2048);
  const Addr stride = 64;
  std::size_t peak = 0;
  std::uint64_t addr = 0;
  // Each round streams 1024 fresh lines through the cache, then idles so
  // they all decay. The purge threshold is 4096 entries; by round 8 the
  // map would hold 8K entries without aging.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 1024; ++i, addr += stride) h.load(0, addr);
    h.run_for(3 * 2048);
    peak = std::max(peak, h.l2s[0]->decay_attribution_entries());
  }
  const std::uint64_t turnoffs = h.l2s[0]->stats().decay_turnoffs.value();
  EXPECT_GT(turnoffs, 6000u);  // the workload really did decay ~8K lines
  // Aging kept the map well below one-entry-per-turnoff growth.
  EXPECT_LT(peak, 6000u);
  EXPECT_LT(h.l2s[0]->decay_attribution_entries(), 6000u);
}

// --- eviction / inclusion -----------------------------------------------------------

TEST(Hierarchy, CapacityEvictionBackInvalidatesL1AndWritesBackDirty) {
  Harness h;
  // 64 KiB, 8-way, 64 B lines -> 128 sets. Fill one set beyond capacity.
  const Addr set_stride = 128 * 64;
  h.store(0, 0x0);  // dirty line that will become the LRU victim
  h.load(0, 0x0);   // bring it into L1 as well
  for (int w = 1; w <= 8; ++w) {
    h.load(0, set_stride * static_cast<Addr>(w));
  }
  EXPECT_EQ(h.l2s[0]->line_state(0x0), MesiState::kInvalid);  // evicted
  EXPECT_FALSE(h.l1s[0]->has_line(0x0));  // inclusion enforced
  EXPECT_GE(h.l2s[0]->stats().evictions.value(), 1u);
  EXPECT_GE(h.l2s[0]->stats().writebacks.value(), 1u);  // it was dirty
}

}  // namespace
}  // namespace cdsim::sim
