// cdlint_test — proves every determinism-lint rule fires on its fixture and
// stays quiet on the benign lookalikes, golden-output style.
//
// Fixtures live in tests/lint_fixtures/ and carry their own expectations as
// `// CDLINT-EXPECT: rule[, rule]` trailing markers: the harness parses the
// markers out of the fixture source, lints the same source, and requires
// the (line, rule) multisets to match EXACTLY — a missing finding is a
// regression in the rule, an extra finding is a new false positive. The
// allowlist-file and inline-directive escapes are pinned by dedicated
// tests below.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

#ifndef CDLINT_FIXTURE_DIR
#error "build must define CDLINT_FIXTURE_DIR"
#endif

namespace {

using cdlint::Finding;
using cdlint::LintConfig;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(CDLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// (line, rule) multiset, printable for golden diffs.
using Expectation = std::multiset<std::pair<std::size_t, std::string>>;

std::string to_string(const Expectation& e) {
  std::ostringstream out;
  for (const auto& [line, rule] : e) out << "  line " << line << ": " << rule
                                         << "\n";
  return out.str();
}

/// Parses `// CDLINT-EXPECT: rule[, rule]` markers out of fixture source.
Expectation parse_expectations(const std::string& source) {
  Expectation want;
  std::istringstream in(source);
  std::string line_text;
  std::size_t lineno = 0;
  while (std::getline(in, line_text)) {
    ++lineno;
    const auto tag = line_text.find("CDLINT-EXPECT:");
    if (tag == std::string::npos) continue;
    std::istringstream rules(line_text.substr(tag + 14));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule.erase(0, rule.find_first_not_of(" \t"));
      rule.erase(rule.find_last_not_of(" \t\r") + 1);
      if (!rule.empty()) want.emplace(lineno, rule);
    }
  }
  return want;
}

/// Fixture-oriented config: the fixture directory is a hot path, an
/// uninit-field scope, and (for rng_home negative tests) a random home.
LintConfig fixture_config() {
  LintConfig cfg;
  cfg.hot_paths.push_back("lint_fixtures/hot_event_queue.hpp");
  cfg.uninit_field_scopes = {"lint_fixtures/"};
  // Narrow (one fixture, not the directory): other fixtures deliberately
  // use node containers to exercise their own rules and must not also
  // trip hot-alloc.
  cfg.hot_alloc_scopes.push_back("lint_fixtures/bad_hot_alloc.hpp");
  return cfg;
}

Expectation lint_fixture(const std::string& name, const LintConfig& cfg,
                         bool include_allowlisted = false) {
  const std::string source = read_fixture(name);
  Expectation got;
  for (const Finding& f :
       cdlint::lint_source(cfg, "tests/lint_fixtures/" + name, source)) {
    if (f.allowlisted && !include_allowlisted) continue;
    got.emplace(f.line, f.rule);
  }
  return got;
}

/// The golden check: findings == markers, exactly.
void expect_golden(const std::string& fixture) {
  const std::string source = read_fixture(fixture);
  const Expectation want = parse_expectations(source);
  const Expectation got = lint_fixture(fixture, fixture_config());
  EXPECT_EQ(got, want) << fixture << "\n--- lint found:\n"
                       << to_string(got) << "--- fixture expects:\n"
                       << to_string(want);
}

// ---------------------------------------------------------------------------
// One golden test per rule family
// ---------------------------------------------------------------------------

TEST(CdlintGolden, UnorderedIterationAndFloatAccum) {
  expect_golden("bad_unordered_iter.cpp");
}

TEST(CdlintGolden, DeterministicLookupsStayQuiet) {
  expect_golden("good_unordered_lookup.cpp");
}

TEST(CdlintGolden, RawRandomness) { expect_golden("bad_raw_random.cpp"); }

TEST(CdlintGolden, HostClockOutsideItsGrantedHeaderFires) {
  // A host-profiling timer pasted anywhere but the granted
  // include/cdsim/common/host_timer.hpp must trip raw-random — the grant
  // in tools/cdlint/allowlist.txt is a path suffix, not a rule waiver.
  expect_golden("bad_host_clock.cpp");
}

TEST(CdlintGolden, ChunkCodecIdiomsStayQuiet) {
  // The .cdt v2 codec's shapes — varint shift loops, integer FNV-1a
  // accumulation, zigzag folds, NSDMI'd codec-state structs — must never
  // trip the determinism rules.
  expect_golden("good_chunk_codec.cpp");
}

TEST(CdlintGolden, PointerKeyedContainers) {
  expect_golden("bad_ptr_key.cpp");
}

TEST(CdlintGolden, StdFunctionOnHotPaths) {
  expect_golden("hot_event_queue.hpp");
}

TEST(CdlintGolden, HotPathRuleNeedsHotList) {
  // Same file NOT registered as hot: the rule must stay silent.
  LintConfig cfg;  // defaults: fixture path is not a hot path
  EXPECT_TRUE(lint_fixture("hot_event_queue.hpp", cfg).empty());
}

TEST(CdlintGolden, UninitializedFields) {
  expect_golden("bad_uninit_field.hpp");
}

TEST(CdlintGolden, HotPathAllocations) { expect_golden("bad_hot_alloc.hpp"); }

TEST(CdlintGolden, HotAllocScopedToHotHeaders) {
  // Outside the configured scopes (default: include/cdsim/{cache,noc,bus,
  // core}/) the same shapes are legal — e.g. sim/ controllers own
  // unique_ptr'd subsystems at construction time.
  LintConfig cfg;  // defaults: fixture path is not a hot-alloc scope
  EXPECT_TRUE(lint_fixture("bad_hot_alloc.hpp", cfg).empty());
}

TEST(CdlintGolden, UninitFieldScopedToHeaders) {
  // Outside the configured scope (default: include/cdsim/) nothing fires.
  LintConfig cfg;
  EXPECT_TRUE(lint_fixture("bad_uninit_field.hpp", cfg).empty());
}

// ---------------------------------------------------------------------------
// Escape hatches
// ---------------------------------------------------------------------------

TEST(CdlintAllow, AllowlistFileSuppressesByRuleAndPath) {
  LintConfig cfg = fixture_config();
  cfg.allowlist = cdlint::parse_allowlist(
      "# test grant\n"
      "unordered-iter tests/lint_fixtures/allow_mechanisms.cpp\n");
  ASSERT_TRUE(cfg.allowlist.errors.empty());

  // Nothing unsuppressed...
  EXPECT_TRUE(lint_fixture("allow_mechanisms.cpp", cfg).empty());
  // ...but both findings still exist, marked allowlisted (auditable).
  const Expectation all =
      lint_fixture("allow_mechanisms.cpp", cfg, /*include_allowlisted=*/true);
  EXPECT_EQ(all.size(), 2u) << to_string(all);
}

TEST(CdlintAllow, InlineDirectiveCoversItsStatement) {
  // Without any allowlist file, the inline `cdlint: allow(...)` in the
  // fixture suppresses exactly one of the two violations.
  const Expectation visible =
      lint_fixture("allow_mechanisms.cpp", fixture_config());
  ASSERT_EQ(visible.size(), 1u) << to_string(visible);
  EXPECT_EQ(visible.begin()->second, "unordered-iter");

  // bad_raw_random.cpp's steady_clock::now() is inline-allowed too: it must
  // be present but suppressed.
  LintConfig cfg = fixture_config();
  const Expectation all =
      lint_fixture("bad_raw_random.cpp", cfg, /*include_allowlisted=*/true);
  const Expectation shown = lint_fixture("bad_raw_random.cpp", cfg);
  EXPECT_EQ(all.size(), shown.size() + 1);
}

TEST(CdlintAllow, MalformedAndUnknownAllowlistLinesError) {
  const cdlint::Allowlist al = cdlint::parse_allowlist(
      "unordered-iter include/ok.hpp\n"
      "just-one-token\n"
      "no-such-rule include/x.hpp\n");
  EXPECT_EQ(al.entries.size(), 1u);
  ASSERT_EQ(al.errors.size(), 2u);
  EXPECT_NE(al.errors[0].find("line 2"), std::string::npos);
  EXPECT_NE(al.errors[1].find("unknown rule"), std::string::npos);
}

TEST(CdlintAllow, HostTimerGrantIsConfinedToTheOneHeader) {
  // The repo's actual grant shape: raw-random allowed for the host-timer
  // header and nothing else. The same findings in any other file — the
  // bad_host_clock fixture included — stay visible, which is the mechanism
  // that keeps wall-clock reads confined to common/host_timer.hpp.
  LintConfig cfg = fixture_config();
  cfg.allowlist = cdlint::parse_allowlist(
      "raw-random include/cdsim/common/host_timer.hpp\n");
  ASSERT_TRUE(cfg.allowlist.errors.empty());
  EXPECT_TRUE(
      cfg.allowlist.allows("include/cdsim/common/host_timer.hpp",
                           "raw-random"));
  EXPECT_FALSE(cfg.allowlist.allows("src/sim/cmp_system.cpp", "raw-random"));
  EXPECT_FALSE(cfg.allowlist.allows("include/cdsim/common/host_timer.hpp",
                                    "unordered-iter"));
  // The grant does not reach the fixture: both clock reads still fire.
  EXPECT_EQ(lint_fixture("bad_host_clock.cpp", cfg).size(), 2u);
}

TEST(CdlintAllow, GrantsAreSuffixMatchedPerRule) {
  const cdlint::Allowlist al =
      cdlint::parse_allowlist("unordered-iter cache/level.hpp\n");
  EXPECT_TRUE(al.allows("include/cdsim/cache/level.hpp", "unordered-iter"));
  EXPECT_FALSE(al.allows("include/cdsim/cache/level.hpp", "raw-random"));
  EXPECT_FALSE(al.allows("include/cdsim/cache/mshr.hpp", "unordered-iter"));
}

// ---------------------------------------------------------------------------
// Tooling self-checks
// ---------------------------------------------------------------------------

TEST(CdlintMeta, EveryRuleHasASuggestion) {
  for (const std::string& r : cdlint::known_rules()) {
    EXPECT_FALSE(cdlint::suggestion_for(r).empty()) << r;
  }
}

TEST(CdlintMeta, FindingsAreLineSorted) {
  const std::string source = read_fixture("bad_raw_random.cpp");
  LintConfig cfg;
  const auto findings = cdlint::lint_source(
      cfg, "tests/lint_fixtures/bad_raw_random.cpp", source);
  EXPECT_TRUE(std::is_sorted(
      findings.begin(), findings.end(),
      [](const Finding& a, const Finding& b) { return a.line < b.line; }));
}

TEST(CdlintMeta, LexerSkipsCommentsStringsAndPreprocessor) {
  cdlint::Directives dirs;
  const auto toks = cdlint::lex(
      "// rand() in a comment\n"
      "/* std::random_device too */\n"
      "#define SEED rand()\n"
      "const char* s = \"rand()\";\n"
      "int live = 1;\n",
      dirs);
  for (const auto& t : toks) {
    if (t.kind == cdlint::TokKind::kIdent) {
      EXPECT_NE(t.text, "rand");
    }
  }
  LintConfig cfg;
  EXPECT_TRUE(
      cdlint::lint_source(cfg, "x.cpp",
                          "// rand()\n#define S rand()\nchar c = 'r';\n")
          .empty());
}

}  // namespace
