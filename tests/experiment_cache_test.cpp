// ExperimentRunner disk-cache behavior: lossless round-trips across
// processes, graceful handling of corrupt/truncated cache files, atomic
// (temp + rename) persistence, and strict CDSIM_* env parsing.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace {

using namespace cdsim;

constexpr std::uint64_t kInstr = 50'000;

const workload::Benchmark& bench() {
  return workload::benchmark_suite().front();
}

decay::DecayConfig protocol() {
  return decay::DecayConfig{decay::Technique::kProtocol, 0, 4};
}

void expect_metrics_identical(const sim::RunMetrics& a,
                              const sim::RunMetrics& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.technique, b.technique);
  EXPECT_EQ(a.total_l2_bytes, b.total_l2_bytes);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.l2_occupation, b.l2_occupation);
  EXPECT_EQ(a.l2_miss_rate, b.l2_miss_rate);
  EXPECT_EQ(a.amat, b.amat);
  EXPECT_EQ(a.mem_bandwidth, b.mem_bandwidth);
  EXPECT_EQ(a.mem_bytes, b.mem_bytes);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.avg_l2_temp_kelvin, b.avg_l2_temp_kelvin);
  EXPECT_EQ(a.bus_utilization, b.bus_utilization);
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto c = static_cast<power::Component>(i);
    EXPECT_EQ(a.ledger.get(c), b.ledger.get(c)) << to_string(c);
  }
}

class ExperimentCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("CDSIM_INSTR");
    ::unsetenv("CDSIM_CACHE_FILE");
  }

  std::string cache_path(const std::string& tag) {
    const std::string p = ::testing::TempDir() + "cdsim_cache_" + tag + "_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name() +
                          ".cache";
    std::remove(p.c_str());
    return p;
  }
};

TEST_F(ExperimentCacheTest, RoundTripIsLossless) {
  const std::string path = cache_path("roundtrip");

  sim::RunMetrics first;
  {
    sim::ExperimentRunner writer(kInstr, path);
    first = writer.run(bench(), 1 * MiB, protocol());
  }
  // A new runner on the same file must serve the result from disk without
  // re-simulating, and the deserialized metrics must match exactly (the
  // cache stores doubles with max_digits10 precision).
  sim::ExperimentRunner reader(kInstr, path);
  const sim::SweepStats sweep =
      reader.run_grid({bench()}, {1 * MiB}, {});  // baseline not cached yet
  EXPECT_EQ(sweep.reused, 0u);
  EXPECT_EQ(sweep.simulated, 1u);
  expect_metrics_identical(first, reader.run(bench(), 1 * MiB, protocol()));
}

TEST_F(ExperimentCacheTest, CachedEntriesAreNotResimulated) {
  const std::string path = cache_path("reuse");
  {
    sim::ExperimentRunner writer(kInstr, path);
    writer.run_grid({bench()}, {1 * MiB}, {protocol()});
  }
  sim::ExperimentRunner reader(kInstr, path);
  const sim::SweepStats sweep =
      reader.run_grid({bench()}, {1 * MiB}, {protocol()});
  EXPECT_EQ(sweep.simulated, 0u);
  EXPECT_EQ(sweep.reused, 2u);
}

TEST_F(ExperimentCacheTest, CorruptLinesAreIgnoredAndResimulated) {
  const std::string path = cache_path("corrupt");
  sim::RunMetrics reference;
  {
    sim::ExperimentRunner clean(kInstr, cache_path("corrupt_ref"));
    reference = clean.run(bench(), 1 * MiB, protocol());
  }

  {
    std::ofstream out(path);
    out << "this line has no separator\n"
        << "key/with/bar|but then garbage fields here\n"
        << "WATER-NS/1/protocol/50000/v2|1 2 3\n"  // truncated payload
        << "|\n"
        << "\n"
        << "\x01\x02\x03|\x04\x05\n";
  }

  // Loading must not crash, and none of the junk may masquerade as a
  // result: the real configuration gets re-simulated and matches the
  // clean-cache reference bit-for-bit.
  sim::ExperimentRunner runner(kInstr, path);
  const sim::SweepStats sweep =
      runner.run_grid({bench()}, {1 * MiB}, {protocol()});
  EXPECT_EQ(sweep.simulated, 2u);
  EXPECT_EQ(sweep.reused, 0u);
  expect_metrics_identical(reference, runner.run(bench(), 1 * MiB, protocol()));
}

TEST_F(ExperimentCacheTest, TruncatedTailIsIgnored) {
  const std::string path = cache_path("truncated");
  {
    sim::ExperimentRunner writer(kInstr, path);
    writer.run(bench(), 1 * MiB, protocol());
  }
  // Chop the file mid-line, as if a writer died partway through.
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 20u);
  std::filesystem::resize_file(path, size - 15);

  sim::ExperimentRunner runner(kInstr, path);
  const sim::SweepStats sweep =
      runner.run_grid({bench()}, {1 * MiB}, {protocol()});
  EXPECT_GE(sweep.simulated, 1u);  // the damaged entry ran again
  // And the repaired cache is complete again afterwards.
  sim::ExperimentRunner reader(kInstr, path);
  EXPECT_EQ(reader.run_grid({bench()}, {1 * MiB}, {protocol()}).simulated, 0u);
}

TEST_F(ExperimentCacheTest, StaleVersionEntriesAreNeitherLoadedNorKept) {
  const std::string path = cache_path("stale");
  {
    // A well-formed line from an older cache version: the payload parses,
    // but the key's version tag is not current.
    std::ofstream out(path);
    out << "WATER-NS/1/protocol/50000/v1|";
    for (int i = 0; i < 27; ++i) out << (i ? " " : "") << i + 1;
    out << '\n';
  }

  sim::ExperimentRunner runner(kInstr, path);
  // The v1 entry must not satisfy any lookup...
  const sim::SweepStats sweep =
      runner.run_grid({bench()}, {1 * MiB}, {protocol()});
  EXPECT_EQ(sweep.simulated, 2u);
  EXPECT_EQ(sweep.reused, 0u);

  // ...and the rewritten file must have dropped it.
  std::ifstream in(path);
  std::string line;
  std::size_t v1_lines = 0;
  while (std::getline(in, line)) {
    if (line.find("/v1|") != std::string::npos) ++v1_lines;
  }
  EXPECT_EQ(v1_lines, 0u);
}

TEST_F(ExperimentCacheTest, V4EntriesLoadThroughTheShimAndAreRekeyed) {
  // Build a genuine v5 cache entry, then rewrite it in the v4 line format
  // (v4 key suffix, 14-component ledger, no memory-side tail). The runner
  // must serve it through the loader shim — no re-simulation — with the
  // per-level blocks preserved exactly and the memory block defaulting to
  // a flat channel, and persist it back re-keyed to v5.
  const std::string path = cache_path("v4shim");
  sim::RunMetrics reference;
  {
    sim::ExperimentRunner writer(kInstr, path);
    reference = writer.run(bench(), 1 * MiB, protocol());
  }

  std::string key, payload;
  {
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const auto bar = line.find('|');
    ASSERT_NE(bar, std::string::npos);
    key = line.substr(0, bar);
    payload = line.substr(bar + 1);
  }
  ASSERT_NE(key.find("/v5"), std::string::npos);

  // v5 payload: 17 prefix + kNumComponents ledger + 6 interconnect +
  // per-level tail + 10 memory-side tokens; v4 was the same minus the
  // memory tail with a 14-component ledger (components are append-only,
  // so the first 14 ledger values are the v4 ledger).
  std::vector<std::string> tok;
  {
    std::istringstream is(payload);
    std::string t;
    while (is >> t) tok.push_back(t);
  }
  const std::size_t ic = 17 + power::kNumComponents;  // interconnect start
  ASSERT_GE(tok.size(), ic + 6u + 10u);
  std::ostringstream v4;
  for (std::size_t i = 0; i < 17; ++i) v4 << (i ? " " : "") << tok[i];
  for (std::size_t i = 17; i < 17 + 14; ++i) v4 << ' ' << tok[i];
  for (std::size_t i = ic; i < tok.size() - 10; ++i) v4 << ' ' << tok[i];
  {
    std::ofstream out(path, std::ios::trunc);
    std::string v4key = key;
    v4key.replace(v4key.find("/v5"), 3, "/v4");
    out << v4key << '|' << v4.str() << '\n';
  }

  sim::ExperimentRunner reader(kInstr, path);
  const sim::SweepStats sweep =
      reader.run_grid({bench()}, {1 * MiB}, {});  // the baseline cell
  EXPECT_EQ(sweep.simulated, 1u);  // only the baseline; protocol() shimmed
  const sim::RunMetrics& shimmed = reader.run(bench(), 1 * MiB, protocol());
  EXPECT_EQ(shimmed.cycles, reference.cycles);
  EXPECT_EQ(shimmed.energy, reference.energy);
  // The v4 per-level blocks survive the shim exactly...
  EXPECT_EQ(shimmed.l1.accesses, reference.l1.accesses);
  EXPECT_EQ(shimmed.l2.accesses, reference.l2_accesses);
  EXPECT_EQ(shimmed.l2.misses, reference.l2_misses);
  EXPECT_EQ(shimmed.l2.writebacks, reference.l2_writebacks);
  EXPECT_EQ(shimmed.hierarchy, reference.hierarchy);
  // ...while the memory block defaults to the flat channel every v4 run
  // actually simulated.
  EXPECT_EQ(shimmed.mem_model, "flat");
  EXPECT_EQ(shimmed.dram_row_hits, 0u);
  EXPECT_EQ(shimmed.dram_activates, 0u);
  EXPECT_EQ(shimmed.tlb_misses, 0u);

  // The rewritten file carries only current-version keys.
  std::ifstream in(path);
  std::string line;
  std::size_t v4_lines = 0, v5_lines = 0;
  while (std::getline(in, line)) {
    if (line.find("/v4|") != std::string::npos) ++v4_lines;
    if (line.find("/v5|") != std::string::npos) ++v5_lines;
  }
  EXPECT_EQ(v4_lines, 0u);
  EXPECT_GE(v5_lines, 2u);  // the shimmed entry + the fresh baseline
}

TEST_F(ExperimentCacheTest, PersistLeavesNoTempFilesAndParsableLines) {
  const std::string path = cache_path("atomic");
  sim::ExperimentRunner runner(kInstr, path);
  runner.run_grid({bench()}, {1 * MiB}, {protocol()});

  const auto dir = std::filesystem::path(path).parent_path();
  const auto stem = std::filesystem::path(path).filename().string();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_FALSE(name.rfind(stem + ".tmp.", 0) == 0)
        << "leftover temp file: " << name;
  }

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find('|'), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 2u);  // baseline + protocol
}

TEST_F(ExperimentCacheTest, ParsePositiveU64) {
  using sim::detail::parse_positive_u64;
  EXPECT_EQ(parse_positive_u64("1"), 1u);
  EXPECT_EQ(parse_positive_u64("4000000"), 4000000u);
  EXPECT_EQ(parse_positive_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());

  EXPECT_FALSE(parse_positive_u64(nullptr).has_value());
  EXPECT_FALSE(parse_positive_u64("").has_value());
  EXPECT_FALSE(parse_positive_u64("0").has_value());
  EXPECT_FALSE(parse_positive_u64("-5").has_value());
  EXPECT_FALSE(parse_positive_u64("+5").has_value());
  EXPECT_FALSE(parse_positive_u64(" 5").has_value());
  EXPECT_FALSE(parse_positive_u64("5 ").has_value());
  EXPECT_FALSE(parse_positive_u64("12x").has_value());
  EXPECT_FALSE(parse_positive_u64("0x10").has_value());
  EXPECT_FALSE(parse_positive_u64("1e6").has_value());
  // One past uint64 max, and something absurdly long.
  EXPECT_FALSE(parse_positive_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_positive_u64("999999999999999999999999").has_value());
}

using ExperimentCacheDeathTest = ExperimentCacheTest;

TEST_F(ExperimentCacheDeathTest, RejectsMalformedInstrEnv) {
  ::setenv("CDSIM_INSTR", "lots", 1);
  EXPECT_DEATH(sim::ExperimentRunner runner(0, "unused.cache"),
               "CDSIM_INSTR");
  ::setenv("CDSIM_INSTR", "-3", 1);
  EXPECT_DEATH(sim::ExperimentRunner runner(0, "unused.cache"),
               "CDSIM_INSTR");
  ::unsetenv("CDSIM_INSTR");
}

TEST_F(ExperimentCacheDeathTest, RejectsEmptyCacheFileEnv) {
  ::setenv("CDSIM_CACHE_FILE", "", 1);
  EXPECT_DEATH(sim::ExperimentRunner runner(kInstr),
               "CDSIM_CACHE_FILE");
  ::unsetenv("CDSIM_CACHE_FILE");
}

}  // namespace
