// End-to-end smoke tests: a small CMP runs to completion under every
// technique, produces sane metrics, and preserves the coherence invariants.

#include <gtest/gtest.h>

#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::sim {
namespace {

SystemConfig small_config(decay::Technique tech, Cycle decay_time = 32768) {
  decay::DecayConfig d;
  d.technique = tech;
  d.decay_time = decay_time;
  SystemConfig cfg = make_system_config(1 * MiB, d);
  cfg.instructions_per_core = 120000;
  return cfg;
}

TEST(SimSmoke, BaselineRunsToCompletion) {
  const auto& bench = workload::benchmark_by_name("mpeg2dec");
  CmpSystem sys(small_config(decay::Technique::kBaseline), bench);
  const RunMetrics m = sys.run();
  EXPECT_GT(m.cycles, 0u);
  EXPECT_GE(m.instructions, 4u * 120000u);
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_DOUBLE_EQ(m.l2_occupation, 1.0);  // baseline: always on
  EXPECT_GT(m.energy, 0.0);
  sys.check_coherence_invariants();
}

TEST(SimSmoke, ProtocolTechniqueMatchesBaselineTiming) {
  const auto& bench = workload::benchmark_by_name("WATER-NS");
  CmpSystem base(small_config(decay::Technique::kBaseline), bench);
  CmpSystem prot(small_config(decay::Technique::kProtocol), bench);
  const RunMetrics mb = base.run();
  const RunMetrics mp = prot.run();
  // The Protocol technique only gates power on the valid bit; it must not
  // change timing at all (paper §IV: "does not incur in any performance
  // loss").
  EXPECT_EQ(mb.cycles, mp.cycles);
  EXPECT_EQ(mb.l2_misses, mp.l2_misses);
  EXPECT_DOUBLE_EQ(mb.ipc, mp.ipc);
  // ...but it must be saving power: occupation strictly below 1.
  EXPECT_LT(mp.l2_occupation, 1.0);
  EXPECT_GT(mp.l2_occupation, 0.0);
  EXPECT_LT(mp.energy, mb.energy);
}

TEST(SimSmoke, DecayTurnsLinesOff) {
  const auto& bench = workload::benchmark_by_name("mpeg2enc");
  CmpSystem sys(small_config(decay::Technique::kDecay), bench);
  const RunMetrics m = sys.run();
  EXPECT_GT(m.l2_decay_turnoffs, 0u);
  EXPECT_LT(m.l2_occupation, 0.9);
  sys.check_coherence_invariants();
}

TEST(SimSmoke, SelectiveDecayBetweenProtocolAndDecay) {
  const auto& bench = workload::benchmark_by_name("facerec");
  CmpSystem p(small_config(decay::Technique::kProtocol), bench);
  CmpSystem d(small_config(decay::Technique::kDecay), bench);
  CmpSystem s(small_config(decay::Technique::kSelectiveDecay), bench);
  const double occ_p = p.run().l2_occupation;
  const double occ_d = d.run().l2_occupation;
  const double occ_s = s.run().l2_occupation;
  // Decay kills the most lines; selective decay sits in between (paper
  // Fig. 3a ordering).
  EXPECT_LT(occ_d, occ_s + 1e-9);
  EXPECT_LT(occ_s, occ_p + 1e-9);
}

TEST(SimSmoke, AllBenchmarksRunUnderDecay) {
  for (const auto& bench : workload::benchmark_suite()) {
    CmpSystem sys(small_config(decay::Technique::kDecay), bench);
    const RunMetrics m = sys.run();
    EXPECT_GT(m.cycles, 0u) << bench.config.name;
    EXPECT_GT(m.l2_accesses, 0u) << bench.config.name;
    sys.check_coherence_invariants();
  }
}

TEST(SimSmoke, InvariantsHoldMidRun) {
  const auto& bench = workload::benchmark_by_name("WATER-NS");
  SystemConfig cfg = small_config(decay::Technique::kDecay, 16384);
  const workload::Benchmark& b = bench;
  CmpSystem sys(cfg, b);
  // Drive the system manually and check invariants at several points.
  auto& eq = sys.events();
  for (auto& core : {0u, 1u, 2u, 3u}) {
    (void)core;
  }
  // Start via run() is one-shot; instead run a full run and check at end —
  // plus a dedicated stepped test lives in coherence_integration_test.
  const RunMetrics m = sys.run();
  (void)m;
  EXPECT_GT(sys.check_coherence_invariants(), 0u);
  (void)eq;
}

}  // namespace
}  // namespace cdsim::sim
