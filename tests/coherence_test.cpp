// Exhaustive tests of the MESI + turn-off FSM (paper Figure 2) and the
// Table I turn-off legality matrix, including the cross-check between the
// two: the FSM's behaviour in the multiprocessor column must match what
// Table I promises.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cdsim/coherence/mesi.hpp"
#include "cdsim/coherence/turnoff_legality.hpp"

namespace cdsim::coherence {
namespace {

using enum MesiState;

const std::vector<MesiState> kAllStates = {
    kInvalid, kShared, kExclusive, kModified, kTransientClean,
    kTransientDirty};

// --- state predicates ---------------------------------------------------------

TEST(MesiPredicates, StationaryStates) {
  EXPECT_TRUE(is_stationary(kShared));
  EXPECT_TRUE(is_stationary(kExclusive));
  EXPECT_TRUE(is_stationary(kModified));
  EXPECT_FALSE(is_stationary(kInvalid));
  EXPECT_FALSE(is_stationary(kTransientClean));
  EXPECT_FALSE(is_stationary(kTransientDirty));
}

TEST(MesiPredicates, HoldsDataEverywhereButInvalid) {
  for (MesiState s : kAllStates) {
    EXPECT_EQ(holds_data(s), s != kInvalid) << to_string(s);
  }
}

TEST(MesiPredicates, DirtyStates) {
  EXPECT_TRUE(is_dirty(kModified));
  EXPECT_TRUE(is_dirty(kTransientDirty));
  EXPECT_FALSE(is_dirty(kShared));
  EXPECT_FALSE(is_dirty(kExclusive));
  EXPECT_FALSE(is_dirty(kTransientClean));
  EXPECT_FALSE(is_dirty(kInvalid));
}

TEST(MesiPredicates, Names) {
  EXPECT_EQ(to_string(kModified), "M");
  EXPECT_EQ(to_string(kTransientDirty), "TD");
  EXPECT_EQ(to_string(BusTxKind::kBusRdX), "BusRdX");
}

// --- snoop transitions: BusRd ----------------------------------------------------

TEST(Snoop, BusRdOnModifiedFlushesAndDowngrades) {
  const SnoopOutcome o = apply_snoop(kModified, BusTxKind::kBusRd);
  EXPECT_EQ(o.next, kShared);
  EXPECT_TRUE(o.had_line);
  EXPECT_TRUE(o.supply_data);
  EXPECT_TRUE(o.memory_update);
  EXPECT_FALSE(o.invalidated);
}

TEST(Snoop, BusRdOnExclusiveDowngradesSilently) {
  const SnoopOutcome o = apply_snoop(kExclusive, BusTxKind::kBusRd);
  EXPECT_EQ(o.next, kShared);
  EXPECT_TRUE(o.had_line);
  EXPECT_FALSE(o.supply_data);
}

TEST(Snoop, BusRdOnSharedNoChange) {
  const SnoopOutcome o = apply_snoop(kShared, BusTxKind::kBusRd);
  EXPECT_EQ(o.next, kShared);
  EXPECT_TRUE(o.had_line);
}

TEST(Snoop, BusRdOnInvalidNothing) {
  const SnoopOutcome o = apply_snoop(kInvalid, BusTxKind::kBusRd);
  EXPECT_EQ(o.next, kInvalid);
  EXPECT_FALSE(o.had_line);
  EXPECT_FALSE(o.supply_data);
}

TEST(Snoop, BusRdOnTransientDirtyFlushesAndDies) {
  // The dying line's flush doubles as its turn-off write-back.
  const SnoopOutcome o = apply_snoop(kTransientDirty, BusTxKind::kBusRd);
  EXPECT_EQ(o.next, kInvalid);
  EXPECT_TRUE(o.supply_data);
  EXPECT_TRUE(o.memory_update);
  EXPECT_TRUE(o.invalidated);
  EXPECT_TRUE(o.cancel_turnoff_wb);
}

TEST(Snoop, BusRdOnTransientCleanUnaffected) {
  const SnoopOutcome o = apply_snoop(kTransientClean, BusTxKind::kBusRd);
  EXPECT_EQ(o.next, kTransientClean);
  EXPECT_FALSE(o.supply_data);
  EXPECT_FALSE(o.invalidated);
}

// --- snoop transitions: BusRdX / BusUpgr -------------------------------------------

class InvalidatingSnoopTest
    : public ::testing::TestWithParam<BusTxKind> {};

TEST_P(InvalidatingSnoopTest, AllValidStatesDie) {
  const BusTxKind kind = GetParam();
  for (MesiState s : kAllStates) {
    const SnoopOutcome o = apply_snoop(s, kind);
    if (s == kInvalid) {
      EXPECT_FALSE(o.invalidated);
      EXPECT_EQ(o.next, kInvalid);
    } else {
      EXPECT_EQ(o.next, kInvalid) << to_string(s);
      EXPECT_TRUE(o.invalidated) << to_string(s);
    }
  }
}

TEST_P(InvalidatingSnoopTest, OnlyDirtyStatesFlush) {
  const BusTxKind kind = GetParam();
  for (MesiState s : kAllStates) {
    const SnoopOutcome o = apply_snoop(s, kind);
    EXPECT_EQ(o.supply_data, is_dirty(s)) << to_string(s);
    EXPECT_EQ(o.memory_update, is_dirty(s)) << to_string(s);
  }
}

TEST_P(InvalidatingSnoopTest, TransientStatesCancelTheirWriteback) {
  const BusTxKind kind = GetParam();
  EXPECT_TRUE(apply_snoop(kTransientClean, kind).cancel_turnoff_wb);
  EXPECT_TRUE(apply_snoop(kTransientDirty, kind).cancel_turnoff_wb);
  EXPECT_FALSE(apply_snoop(kModified, kind).cancel_turnoff_wb);
}

INSTANTIATE_TEST_SUITE_P(Kinds, InvalidatingSnoopTest,
                         ::testing::Values(BusTxKind::kBusRdX,
                                           BusTxKind::kBusUpgr));

TEST(Snoop, WriteBackIsInertForThirdParties) {
  for (MesiState s : kAllStates) {
    const SnoopOutcome o = apply_snoop(s, BusTxKind::kWriteBack);
    EXPECT_EQ(o.next, s) << to_string(s);
    EXPECT_FALSE(o.supply_data);
    EXPECT_FALSE(o.invalidated);
  }
}

// --- turn-off classification (Figure 2 dashed edges) --------------------------------

TEST(TurnOff, OnlyStationaryStatesAccept) {
  for (MesiState s : kAllStates) {
    const TurnOffClass c = classify_turnoff(s);
    if (!is_stationary(s)) {
      EXPECT_EQ(c, TurnOffClass::kIgnore) << to_string(s);
    } else {
      EXPECT_NE(c, TurnOffClass::kIgnore) << to_string(s);
    }
  }
}

TEST(TurnOff, ModifiedNeedsWritebackCleanDoesNot) {
  EXPECT_EQ(classify_turnoff(kModified), TurnOffClass::kDirtyTurnOff);
  EXPECT_EQ(classify_turnoff(kShared), TurnOffClass::kCleanTurnOff);
  EXPECT_EQ(classify_turnoff(kExclusive), TurnOffClass::kCleanTurnOff);
}

TEST(TurnOff, TransientTargets) {
  EXPECT_EQ(turnoff_transient(kModified), kTransientDirty);
  EXPECT_EQ(turnoff_transient(kShared), kTransientClean);
  EXPECT_EQ(turnoff_transient(kExclusive), kTransientClean);
}

// --- fill states -----------------------------------------------------------------------

TEST(Fill, WriteAlwaysModified) {
  EXPECT_EQ(fill_state(true, false), kModified);
  EXPECT_EQ(fill_state(true, true), kModified);
}

TEST(Fill, ReadSharedOrExclusive) {
  EXPECT_EQ(fill_state(false, true), kShared);
  EXPECT_EQ(fill_state(false, false), kExclusive);
}

// --- Table I ------------------------------------------------------------------------------

TEST(Table1, UniprocessorWritebackL1) {
  constexpr auto h = HierarchyKind::kUniprocessorWritebackL1;
  // Clean: plain turn off, no conditions.
  auto clean = table1_verdict(h, /*dirty=*/false, /*pending=*/false);
  EXPECT_TRUE(clean.allowed);
  EXPECT_FALSE(clean.requires_writeback);
  EXPECT_FALSE(clean.requires_no_pending_write);
  // Dirty: write back and turn off.
  auto dirty = table1_verdict(h, true, false);
  EXPECT_TRUE(dirty.allowed);
  EXPECT_TRUE(dirty.requires_writeback);
}

TEST(Table1, UniprocessorWritethroughL1GatesOnPendingWrite) {
  constexpr auto h = HierarchyKind::kUniprocessorWritethroughL1;
  EXPECT_TRUE(table1_verdict(h, false, false).allowed);
  EXPECT_FALSE(table1_verdict(h, false, true).allowed);
  EXPECT_FALSE(table1_verdict(h, true, true).allowed);
  auto dirty = table1_verdict(h, true, false);
  EXPECT_TRUE(dirty.allowed);
  EXPECT_TRUE(dirty.requires_writeback);
}

TEST(Table1, MultiprocessorDirtyInvalidatesUpperLevel) {
  constexpr auto h = HierarchyKind::kMultiprocessorWritethroughL1;
  auto dirty = table1_verdict(h, true, false);
  EXPECT_TRUE(dirty.allowed);
  EXPECT_TRUE(dirty.requires_upper_inval);
  EXPECT_TRUE(dirty.requires_writeback);
  auto clean = table1_verdict(h, false, true);
  EXPECT_FALSE(clean.allowed);  // pending write gates clean turn-off
}

// Cross-check: the FSM's turn-off classification agrees with Table I's
// multiprocessor column for every stationary state.
TEST(Table1, ConsistentWithFsm) {
  constexpr auto h = HierarchyKind::kMultiprocessorWritethroughL1;
  for (MesiState s : {kShared, kExclusive, kModified}) {
    const bool dirty = is_dirty(s);
    const auto verdict = table1_verdict(h, dirty, /*pending=*/false);
    const auto cls = classify_turnoff(s);
    EXPECT_TRUE(verdict.allowed);
    EXPECT_EQ(cls == TurnOffClass::kDirtyTurnOff, verdict.requires_writeback)
        << to_string(s);
    // The FSM goes through a transient (upper-inval) state in both cases;
    // Table I only *requires* it for dirty lines, and allows it for clean.
    if (verdict.requires_upper_inval) {
      EXPECT_EQ(cls, TurnOffClass::kDirtyTurnOff);
    }
  }
}

}  // namespace
}  // namespace cdsim::coherence
