// Chunked .cdt v2: round-trip fidelity against v1, corruption rejection at
// chunk and footer granularity, truncation, seek/resume, and bit-identical
// replay between the streaming and load-it-whole paths — plus the
// multi-program scenario mixes built on top (sim/scenario.hpp).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cdsim/sim/scenario.hpp"
#include "cdsim/verify/fuzz.hpp"
#include "cdsim/verify/oracle.hpp"
#include "cdsim/workload/benchmarks.hpp"
#include "cdsim/workload/fuzzer.hpp"
#include "cdsim/workload/trace_v2.hpp"

namespace {

using namespace cdsim;
using workload::ChunkedTraceReader;
using workload::ChunkedTraceWriter;
using workload::Trace;
using workload::TraceRecord;

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "cdt2_" + tag + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".cdt";
}

/// A trace exercising the codec's corners: all access types, dependent and
/// chained ops, zero and large gaps, increasing AND decreasing addresses
/// (negative zigzag deltas), near-max addresses, and per-core interleave.
Trace corner_trace(std::uint32_t num_cores, std::size_t n) {
  Trace t;
  t.num_cores = num_cores;
  Addr walk = 0x1000;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.core = static_cast<CoreId>(i % num_cores);
    switch (i % 5) {
      case 0: r.op.addr = walk += 0x40; break;
      case 1: r.op.addr = walk -= 0x20; break;            // negative delta
      case 2: r.op.addr = 0xffffffffffffff00ull + i; break;  // near max
      case 3: r.op.addr = static_cast<Addr>(i) * 0x10000000ull; break;
      default: r.op.addr = walk; break;
    }
    r.op.type = static_cast<AccessType>(i % 3);
    r.op.gap = i % 7 == 0 ? 900000u + static_cast<std::uint32_t>(i) : i % 4;
    r.op.dependent = i % 3 == 1;
    r.op.chain = static_cast<std::uint8_t>(i % 6);
    t.records.push_back(r);
  }
  return t;
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.num_cores, b.num_cores);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.records[i].core, b.records[i].core);
    EXPECT_EQ(a.records[i].op.addr, b.records[i].op.addr);
    EXPECT_EQ(a.records[i].op.type, b.records[i].op.type);
    EXPECT_EQ(a.records[i].op.gap, b.records[i].op.gap);
    EXPECT_EQ(a.records[i].op.dependent, b.records[i].op.dependent);
    EXPECT_EQ(a.records[i].op.chain, b.records[i].op.chain);
  }
}

Trace drain(workload::TraceSource& src) {
  Trace t;
  t.num_cores = src.num_cores();
  TraceRecord rec;
  while (src.next(rec)) t.append(rec);
  return t;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(TraceV2, RoundTripPreservesEveryFieldAcrossChunks) {
  const Trace t = corner_trace(3, 103);  // chunk_records=16: 7 chunks, short tail
  const std::string path = temp_path("roundtrip");
  std::string err;
  ASSERT_TRUE(workload::save_v2(t, path, &err, /*chunk_records=*/16)) << err;

  auto r = ChunkedTraceReader::open(path, &err);
  ASSERT_NE(r, nullptr) << err;
  EXPECT_EQ(r->info().chunk_count, 7u);
  EXPECT_EQ(r->info().total_records, 103u);
  expect_traces_equal(t, drain(*r));
  EXPECT_FALSE(r->failed());
  std::remove(path.c_str());
}

TEST(TraceV2, MatchesV1RoundTripBitForBit) {
  // The exact record sequence a v1 file preserves, v2 must too.
  const Trace t = corner_trace(2, 41);
  const std::string p1 = temp_path("v1");
  const std::string p2 = temp_path("v2");
  std::string err;
  ASSERT_TRUE(t.save(p1, &err)) << err;
  ASSERT_TRUE(workload::save_v2(t, p2, &err, /*chunk_records=*/8)) << err;

  const auto v1 = Trace::load(p1, &err);
  ASSERT_TRUE(v1.has_value()) << err;
  auto v2 = ChunkedTraceReader::open(p2, &err);
  ASSERT_NE(v2, nullptr) << err;
  expect_traces_equal(*v1, drain(*v2));

  // v2 should not be larger than v1 even on this delta-hostile trace.
  std::ifstream f1(p1, std::ios::binary | std::ios::ate);
  std::ifstream f2(p2, std::ios::binary | std::ios::ate);
  EXPECT_GT(f1.tellg(), 0);
  EXPECT_GT(f2.tellg(), 0);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(TraceV2, OpenTraceSourceSniffsBothFormats) {
  const Trace t = corner_trace(2, 10);
  const std::string p1 = temp_path("sniff1");
  const std::string p2 = temp_path("sniff2");
  std::string err;
  ASSERT_TRUE(t.save(p1, &err)) << err;
  ASSERT_TRUE(workload::save_v2(t, p2, &err)) << err;

  auto s1 = workload::open_trace_source(p1, &err);
  ASSERT_NE(s1, nullptr) << err;  // v1 through the shim
  auto s2 = workload::open_trace_source(p2, &err);
  ASSERT_NE(s2, nullptr) << err;
  expect_traces_equal(drain(*s1), drain(*s2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(TraceV2, FooterCarriesBudgetsAndIdleCoresGetUnitBudget) {
  Trace t;
  t.num_cores = 4;  // cores 2..3 never scheduled
  t.records.push_back({0, {AccessType::kLoad, 0x40, 2, false, 0}});
  t.records.push_back({1, {AccessType::kStore, 0x80, 5, false, 0}});
  t.records.push_back({0, {AccessType::kLoad, 0xc0, 0, true, 1}});
  const std::string path = temp_path("budgets");
  std::string err;
  ASSERT_TRUE(workload::save_v2(t, path, &err)) << err;

  auto r = ChunkedTraceReader::open(path, &err);
  ASSERT_NE(r, nullptr) << err;
  EXPECT_EQ(r->info().per_core_ops, (std::vector<std::uint64_t>{2, 1, 0, 0}));
  EXPECT_EQ(r->info().per_core_instr,
            (std::vector<std::uint64_t>{4, 6, 0, 0}));
  // The TraceSource budget applies the idle-filler minimum, matching
  // Trace::per_core_instructions exactly.
  EXPECT_EQ(r->per_core_instructions(), t.per_core_instructions());
  std::remove(path.c_str());
}

TEST(TraceV2, WriterRejectsOutOfRangeCoreAndBadShape) {
  const std::string path = temp_path("badwrite");
  {
    ChunkedTraceWriter w(path, /*num_cores=*/2);
    w.append({5, {AccessType::kLoad, 0x40, 0, false, 0}});
    EXPECT_FALSE(w.finish());
    EXPECT_NE(w.error().find("core"), std::string::npos) << w.error();
  }
  {
    ChunkedTraceWriter w(path, /*num_cores=*/0);
    EXPECT_FALSE(w.ok());
  }
  {
    ChunkedTraceWriter w(path, /*num_cores=*/2, /*chunk_records=*/0);
    EXPECT_FALSE(w.ok());
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption: reject loudly, never crash, never replay garbage
// ---------------------------------------------------------------------------

class TraceV2Corruption : public ::testing::Test {
 protected:
  static constexpr std::size_t kHeaderBytes = 20;
  static constexpr std::size_t kChunkHeaderBytes = 16;
  static constexpr std::size_t kTrailerBytes = 20;

  void SetUp() override {
    path_ = temp_path("corrupt");
    trace_ = corner_trace(2, 40);  // chunk_records=16: 2 full + 1 short chunk
    std::string err;
    ASSERT_TRUE(workload::save_v2(trace_, path_, &err, /*chunk_records=*/16))
        << err;
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes_ = ss.str();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_bytes(const std::string& b) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  }

  /// File offset where the footer body begins, read from the trailer's
  /// own length field (so tests can aim at chunk bytes vs footer bytes).
  [[nodiscard]] std::size_t footer_start() const {
    std::uint64_t len = 0;
    for (int i = 0; i < 8; ++i) {
      len |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                 bytes_[bytes_.size() - kTrailerBytes + 8 + i]))
             << (8 * i);
    }
    return bytes_.size() - kTrailerBytes - static_cast<std::size_t>(len);
  }

  /// Opens expecting open() itself to reject, returning the error.
  std::string expect_open_rejects() {
    std::string err;
    EXPECT_EQ(ChunkedTraceReader::open(path_, &err), nullptr);
    EXPECT_FALSE(err.empty());
    return err;
  }

  std::string path_;
  std::string bytes_;
  Trace trace_;
};

TEST_F(TraceV2Corruption, RejectsBadMagicAndVersion) {
  std::string b = bytes_;
  b[0] = 'X';
  write_bytes(b);
  EXPECT_NE(expect_open_rejects().find("bad magic"), std::string::npos);

  b = bytes_;
  b[4] = 99;
  write_bytes(b);
  EXPECT_NE(expect_open_rejects().find("version"), std::string::npos);
}

TEST_F(TraceV2Corruption, RejectsCorruptHeaderFields) {
  std::string b = bytes_;
  b[8] = 0;  // num_cores = 0
  write_bytes(b);
  EXPECT_NE(expect_open_rejects().find("num_cores"), std::string::npos);
}

TEST_F(TraceV2Corruption, ChunkPayloadFlipFailsAtDecodeNotAtOpen) {
  // Flip the first payload byte of chunk 0 — exactly on a chunk boundary.
  std::string b = bytes_;
  b[kHeaderBytes + kChunkHeaderBytes] ^= 0x5a;
  write_bytes(b);
  std::string err;
  auto r = ChunkedTraceReader::open(path_, &err);
  ASSERT_NE(r, nullptr) << err;  // footer is intact: open succeeds
  TraceRecord rec;
  EXPECT_FALSE(r->next(rec));  // false on corruption, not a crash
  EXPECT_TRUE(r->failed());
  EXPECT_NE(r->error().find("checksum"), std::string::npos) << r->error();
}

TEST_F(TraceV2Corruption, MidStreamChunkFlipStopsAtTheBoundary) {
  // Corrupt the LAST payload byte before the footer — inside the final
  // (short) chunk. The two intact full chunks must stream cleanly, and
  // the failure surfaces exactly when the cursor crosses the boundary.
  std::string b = bytes_;
  b[footer_start() - 1] ^= 0x5a;
  write_bytes(b);

  std::string err;
  auto r = ChunkedTraceReader::open(path_, &err);
  ASSERT_NE(r, nullptr) << err;
  TraceRecord rec;
  std::size_t streamed = 0;
  while (r->next(rec)) ++streamed;
  EXPECT_TRUE(r->failed());
  EXPECT_EQ(streamed, 32u);  // both full chunks streamed, the short one not
}

TEST_F(TraceV2Corruption, RejectsFooterIndexCorruption) {
  // Flip a byte inside the footer body (first chunk-table entry).
  std::string b = bytes_;
  b[footer_start() + 4] ^= 0xff;
  write_bytes(b);
  EXPECT_NE(expect_open_rejects().find("footer checksum"),
            std::string::npos);
}

TEST_F(TraceV2Corruption, RejectsTruncatedFinalChunk) {
  // A writer that died mid-chunk: file ends inside chunk data, no footer.
  const std::size_t cut = kHeaderBytes + kChunkHeaderBytes + 5;
  write_bytes(bytes_.substr(0, cut));
  const std::string err = expect_open_rejects();
  EXPECT_TRUE(err.find("trailer magic") != std::string::npos ||
              err.find("too short") != std::string::npos)
      << err;
}

TEST_F(TraceV2Corruption, RejectsFooterThatOverlapsMissingChunkBytes) {
  // Drop bytes from the chunk region but keep the footer+trailer intact:
  // the chunk table's offsets no longer span header..footer.
  std::string b = bytes_;
  b.erase(kHeaderBytes + kChunkHeaderBytes, 4);  // shrink chunk 0
  write_bytes(b);
  const std::string err = expect_open_rejects();
  EXPECT_TRUE(err.find("footer") != std::string::npos ||
              err.find("span") != std::string::npos ||
              err.find("inconsistent") != std::string::npos)
      << err;
}

TEST_F(TraceV2Corruption, RejectsTrailerMagicLoss) {
  std::string b = bytes_;
  b[b.size() - 1] = 'X';
  write_bytes(b);
  EXPECT_NE(expect_open_rejects().find("trailer magic"), std::string::npos);
}

TEST_F(TraceV2Corruption, RejectsTooShortAndMissingFiles) {
  write_bytes("CDT2");
  EXPECT_NE(expect_open_rejects().find("too short"), std::string::npos);
  std::string err;
  EXPECT_EQ(ChunkedTraceReader::open(path_ + ".nope", &err), nullptr);
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST_F(TraceV2Corruption, ChunkHeaderFooterDisagreementIsCorruption) {
  // Flip chunk 0's record-count field in its header; the footer still
  // carries the original. No way to tell which is right: reject.
  std::string b = bytes_;
  b[kHeaderBytes + 4] ^= 0x01;
  write_bytes(b);
  std::string err;
  auto r = ChunkedTraceReader::open(path_, &err);
  ASSERT_NE(r, nullptr) << err;
  TraceRecord rec;
  EXPECT_FALSE(r->next(rec));
  EXPECT_TRUE(r->failed());
  EXPECT_NE(r->error().find("disagrees"), std::string::npos) << r->error();
}

// ---------------------------------------------------------------------------
// Seek / resume
// ---------------------------------------------------------------------------

TEST(TraceV2, SeekLandsOnAnyRecordAndResumes) {
  const Trace t = corner_trace(3, 50);
  const std::string path = temp_path("seek");
  std::string err;
  ASSERT_TRUE(workload::save_v2(t, path, &err, /*chunk_records=*/8)) << err;
  auto r = ChunkedTraceReader::open(path, &err);
  ASSERT_NE(r, nullptr) << err;

  // Every position (including chunk boundaries 8, 16, ... and both ends)
  // must yield exactly the suffix of the original record sequence.
  for (const std::uint64_t pos : {0ull, 1ull, 7ull, 8ull, 9ull, 16ull,
                                  31ull, 47ull, 49ull}) {
    SCOPED_TRACE(pos);
    ASSERT_TRUE(r->seek(pos));
    EXPECT_EQ(r->position(), pos);
    TraceRecord rec;
    ASSERT_TRUE(r->next(rec));
    EXPECT_EQ(rec.op.addr, t.records[pos].op.addr);
    EXPECT_EQ(rec.core, t.records[pos].core);
  }

  // Park at end; next() is a clean end-of-trace, not an error.
  ASSERT_TRUE(r->seek(50));
  TraceRecord rec;
  EXPECT_FALSE(r->next(rec));
  EXPECT_FALSE(r->failed());

  // Out of range: clean refusal.
  EXPECT_FALSE(r->seek(51));
  EXPECT_FALSE(r->failed());

  // Resume: seek back mid-trace and drain — suffix matches.
  ASSERT_TRUE(r->seek(40));
  Trace tail = drain(*r);
  ASSERT_EQ(tail.records.size(), 10u);
  for (std::size_t i = 0; i < tail.records.size(); ++i) {
    EXPECT_EQ(tail.records[i].op.addr, t.records[40 + i].op.addr);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Replay equivalence: streaming v2 == in-memory v1, bit for bit
// ---------------------------------------------------------------------------

TEST(TraceV2, StreamingReplayIsBitIdenticalToInMemoryReplay) {
  // Capture a hostile run, save as v2, then replay it twice: through the
  // load-it-whole in-memory demux and through the streaming per-core
  // cursors. Metrics must match bit-for-bit (EXPECT_EQ on doubles).
  verify::FuzzScenario sc;
  sc.decay = decay::DecayConfig{decay::Technique::kDecay, 2048, 4};
  sc.seed = 2718;
  sc.fuzz.decay_window = 2048;
  sc.instructions_per_core = 8000;

  const verify::ScenarioOutcome original = verify::run_scenario(sc);
  ASSERT_EQ(original.total_divergences, 0u);
  const std::string path = temp_path("replayab");
  std::string err;
  ASSERT_TRUE(workload::save_v2(original.trace, path, &err,
                                /*chunk_records=*/512))
      << err;

  const verify::ScenarioOutcome in_memory =
      verify::replay_scenario(sc, original.trace);
  ASSERT_EQ(in_memory.total_divergences, 0u);

  // Streaming: per-core FilteredReplayStream cursors over the v2 file.
  sim::SystemConfig cfg = sc.system_config();
  cfg.per_core_instructions = original.trace.per_core_instructions();
  workload::Benchmark bench;
  bench.config.name = sc.label();
  verify::DifferentialChecker checker(cfg.num_cores);
  sim::CmpSystem sys(cfg, bench,
                     workload::streaming_replay_factory([&path] {
                       return workload::open_trace_source(path);
                     }));
  sys.set_observer(&checker);
  const sim::RunMetrics streamed = sys.run();
  EXPECT_EQ(checker.total_divergences(), 0u);

  EXPECT_EQ(streamed.cycles, in_memory.metrics.cycles);
  EXPECT_EQ(streamed.instructions, in_memory.metrics.instructions);
  EXPECT_EQ(streamed.l2_accesses, in_memory.metrics.l2_accesses);
  EXPECT_EQ(streamed.l2_misses, in_memory.metrics.l2_misses);
  EXPECT_EQ(streamed.l2_decay_turnoffs, in_memory.metrics.l2_decay_turnoffs);
  EXPECT_EQ(streamed.ipc, in_memory.metrics.ipc);
  EXPECT_EQ(streamed.amat, in_memory.metrics.amat);
  EXPECT_EQ(streamed.energy, in_memory.metrics.energy);
  EXPECT_EQ(streamed.l2_occupation, in_memory.metrics.l2_occupation);
  std::remove(path.c_str());
}

TEST(TraceV2, CaptureToChunkedSinkMatchesInMemoryCapture) {
  // The same run captured through both TraceSinks — the in-memory Trace
  // and the streaming ChunkedTraceWriter — must record identical streams.
  verify::FuzzScenario sc;
  sc.seed = 1618;
  sc.instructions_per_core = 4000;

  const verify::ScenarioOutcome mem_run = verify::run_scenario(sc);
  const std::string path = temp_path("sink");
  {
    sim::SystemConfig cfg = sc.system_config();
    ChunkedTraceWriter w(path, cfg.num_cores, /*chunk_records=*/256);
    const workload::FuzzerConfig& fc = sc.fuzz;
    workload::StreamFactory base = [&fc](CoreId core, std::uint64_t seed) {
      return std::make_unique<workload::FuzzerWorkload>(fc, core, seed);
    };
    workload::Benchmark bench;
    bench.config.name = sc.label();
    sim::CmpSystem sys(cfg, bench,
                       workload::capture_factory(std::move(base), &w));
    (void)sys.run();
    ASSERT_TRUE(w.finish()) << w.error();
  }
  std::string err;
  auto r = ChunkedTraceReader::open(path, &err);
  ASSERT_NE(r, nullptr) << err;
  expect_traces_equal(mem_run.trace, drain(*r));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Multi-program scenario mixes
// ---------------------------------------------------------------------------

class ScenarioMix : public ::testing::Test {
 protected:
  void SetUp() override {
    // Four distinct captured programs, saved as v2.
    for (int i = 0; i < 4; ++i) {
      verify::FuzzScenario sc;
      sc.seed = 100 + static_cast<std::uint64_t>(i);
      sc.instructions_per_core = 3000;
      const verify::ScenarioOutcome out = verify::run_scenario(sc);
      ASSERT_EQ(out.total_divergences, 0u);
      const std::string path = temp_path("mix" + std::to_string(i));
      std::string err;
      ASSERT_TRUE(workload::save_v2(out.trace, path, &err,
                                    /*chunk_records=*/256))
          << err;
      paths_.push_back(path);
      budgets_.push_back(out.trace.per_core_instructions());
    }
  }
  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

  [[nodiscard]] std::vector<sim::ProgramSpec> programs() const {
    std::vector<sim::ProgramSpec> progs;
    for (const std::string& p : paths_) {
      sim::ProgramSpec spec;
      spec.name = p;
      spec.open = [p] { return workload::open_trace_source(p); };
      progs.push_back(std::move(spec));
    }
    return progs;
  }

  std::vector<std::string> paths_;
  std::vector<std::vector<std::uint64_t>> budgets_;
};

TEST_F(ScenarioMix, PlanAssignsRoundRobinWithWeightedBudgets) {
  auto progs = programs();
  progs[1].weight = 2.0;  // hot tenant
  const sim::MixPlan plan = sim::plan_mix(std::move(progs), 8);
  ASSERT_EQ(plan.assignment.size(), 8u);
  for (std::uint32_t c = 0; c < 8; ++c) {
    const sim::MixAssignment& a = plan.assignment[c];
    EXPECT_EQ(a.program, c % 4u);
    EXPECT_EQ(a.trace_core, (c / 4u) % 4u);  // 4-core traces, round r = c/4
    const std::uint64_t base = budgets_[a.program][a.trace_core];
    EXPECT_EQ(a.instructions, a.program == 1 ? 2 * base : base);
  }
}

TEST_F(ScenarioMix, SingleProgramMixDegeneratesToExactReplay) {
  std::vector<sim::ProgramSpec> one;
  one.push_back(programs()[0]);
  const sim::MixPlan plan = sim::plan_mix(std::move(one), 4);
  EXPECT_EQ(plan.per_core_instructions(), budgets_[0]);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(plan.assignment[c].trace_core, c);
  }
}

TEST_F(ScenarioMix, FourProgramRateModeMixRunsWithZeroDivergences) {
  // The acceptance gate: a >=4-trace rate-mode mix with a hot tenant on
  // the 8-core directory mesh, differential oracle attached, zero
  // divergences — twice, bit-identically (the factory must be reusable).
  auto progs = programs();
  progs[0].weight = 2.0;
  const sim::MixPlan plan = sim::plan_mix(std::move(progs), 8);

  sim::SystemConfig cfg;
  cfg.topology = noc::Topology::kDirectoryMesh;
  cfg.total_l2_bytes = 8 * 32 * KiB;
  cfg.l1.size_bytes = 8 * KiB;
  cfg.decay = decay::DecayConfig{decay::Technique::kSelectiveDecay, 2048, 4};
  plan.apply(cfg);
  ASSERT_EQ(cfg.num_cores, 8u);

  workload::Benchmark bench;
  bench.config.name = "mix_test";
  sim::RunMetrics first;
  for (int pass = 0; pass < 2; ++pass) {
    verify::DifferentialChecker checker(cfg.num_cores);
    sim::CmpSystem sys(cfg, bench, plan.streams);
    sys.set_observer(&checker);
    const sim::RunMetrics m = sys.run();
    sys.check_coherence_invariants();
    EXPECT_EQ(checker.total_divergences(), 0u);
    if (pass == 0) {
      first = m;
    } else {
      EXPECT_EQ(m.cycles, first.cycles);
      EXPECT_EQ(m.ipc, first.ipc);
      EXPECT_EQ(m.energy, first.energy);
    }
  }
}

TEST_F(ScenarioMix, RejectsEmptyAndBrokenMixes) {
  EXPECT_THROW(sim::plan_mix({}, 4), std::invalid_argument);
  auto progs = programs();
  progs[2].weight = 0.0;
  EXPECT_THROW(sim::plan_mix(std::move(progs), 4), std::invalid_argument);
  std::vector<sim::ProgramSpec> bad;
  bad.push_back({});
  EXPECT_THROW(sim::plan_mix(std::move(bad), 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The fuzz matrix carries multi-program cells
// ---------------------------------------------------------------------------

TEST(TraceV2, FuzzMatrixIncludesMultiProgramCells) {
  verify::FuzzOptions opts;
  opts.scenarios = 64;
  std::size_t mix_cells = 0;
  bool skewed_budget_seen = false;
  for (const verify::FuzzScenario& sc : verify::fuzz_matrix(opts)) {
    if (sc.programs == 0) continue;
    ++mix_cells;
    EXPECT_NE(sc.label().find("progs="), std::string::npos);
    const sim::SystemConfig cfg = sc.system_config();
    ASSERT_EQ(cfg.per_core_instructions.size(), cfg.num_cores);
    // Hot tenant: program 0's cores get a doubled budget.
    EXPECT_EQ(cfg.per_core_instructions[0], 2 * sc.instructions_per_core);
    EXPECT_EQ(cfg.per_core_instructions[1], sc.instructions_per_core);
    skewed_budget_seen = true;
  }
  EXPECT_EQ(mix_cells, 16u);  // two 8-cell blocks of the 64-cell matrix
  EXPECT_TRUE(skewed_budget_seen);
}

TEST(TraceV2, MultiProgramFuzzCellCapturesAndReplaysBitIdentically) {
  // One mix cell end-to-end through the capture/replay contract.
  verify::FuzzOptions opts;
  opts.scenarios = 64;
  const auto matrix = verify::fuzz_matrix(opts);
  const auto it =
      std::find_if(matrix.begin(), matrix.end(),
                   [](const verify::FuzzScenario& s) { return s.programs > 0; });
  ASSERT_NE(it, matrix.end());
  verify::FuzzScenario sc = *it;
  sc.instructions_per_core = 4000;

  const verify::ScenarioOutcome out = verify::run_scenario(sc);
  EXPECT_EQ(out.total_divergences, 0u);
  ASSERT_GT(out.trace.records.size(), 0u);

  const verify::ScenarioOutcome replay =
      verify::replay_scenario(sc, out.trace);
  EXPECT_EQ(replay.total_divergences, 0u);
  EXPECT_EQ(replay.metrics.cycles, out.metrics.cycles);
  EXPECT_EQ(replay.metrics.ipc, out.metrics.ipc);
  EXPECT_EQ(replay.metrics.energy, out.metrics.energy);
}

}  // namespace
