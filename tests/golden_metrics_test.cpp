// Golden-metrics regression guard for the simulation kernel.
//
// Pins four configurations (three decay techniques across cache sizes and
// hierarchical-tick settings, plus one baseline) and asserts EXACT RunMetrics
// equality — integers with EXPECT_EQ, doubles bit-for-bit via hexfloat
// constants. The expectations were captured from the kernel immediately
// before the expiry-wheel / calendar-queue / SmallFn rewrite (after the
// write-stats and decay-attribution fixes of the same PR), so this suite
// is the proof that the performance work preserved simulated behavior
// exactly: turn-off schedules, event interleaving, power integrals,
// everything.
//
// If an intentional modeling change shifts these numbers, re-capture with
// the documented procedure (see the comment on kGolden) in the same commit
// that changes the model — never loosen the comparisons.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "cdsim/power/energy.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"
#include "cdsim/workload/fuzzer.hpp"
#include "cdsim/workload/trace_file.hpp"

namespace {

using namespace cdsim;

struct GoldenCase {
  const char* bench;
  std::uint64_t total_mib;
  decay::Technique technique;
  Cycle decay_time;
  std::uint32_t hierarchical_ticks;
  std::uint64_t instr_per_core;

  Cycle cycles;
  std::uint64_t instructions;
  double ipc;
  double l2_occupation;
  double l2_miss_rate;
  std::uint64_t l2_accesses;
  std::uint64_t l2_misses;
  std::uint64_t l2_decay_turnoffs;
  std::uint64_t l2_decay_induced_misses;
  std::uint64_t l2_coherence_invals;
  std::uint64_t l2_writebacks;
  double amat;
  double mem_bandwidth;
  std::uint64_t mem_bytes;
  double energy;
  double avg_l2_temp_kelvin;
  double bus_utilization;
  double ledger[power::kNumComponents];
};

// Captured by running each configuration through sim::run_config and
// printing every field with "%a" / exact integers (one-off harness; the
// same values are cross-checkable via bench_kernel's JSON for the 8 MiB
// decay64K cell). Hexfloat constants are exact — no rounding on re-parse.
constexpr GoldenCase kGolden[] = {
    // mpeg2enc 4MiB decay64K ticks=4 instr=200000
    {"mpeg2enc", 4, decay::Technique::kDecay, 64 * 1024, 4, 200000,
     160844u, 800008u, 0x1.3e52f454924cep+2, 0x1.bc5f2ddb78311p-5,
     0x1.32eaccf8018dp-3, 89796u, 13457u, 1703u, 400u, 1123u, 783u,
     0x1.a6d57904c21dap+4, 0x1.c1ac3b0e0cf99p+1, 565056u,
     0x1.4611521388846p+19, 0x1.49b220c819294p+8, 0x1.5bbf1687df405p-2,
     {0x1.3880ccccccccdp+18, 0x1.017fc058fb134p+18, 0x1.214beb851eb84p+13,
      0x1.c173edfd0ead2p+14, 0x1.8f9828f5c28f5p+13, 0x1.2005bcd90d6ap+14,
      0x1.1f045c5160962p+13, 0x1.1a872b020c49bp+11, 0x1.ab153bc09fd76p+11}},
    // FMM 8MiB sel_decay64K ticks=4 instr=200000
    {"FMM", 8, decay::Technique::kSelectiveDecay, 64 * 1024, 4, 200000,
     411619u, 800000u, 0x1.f18c2842516f5p+0, 0x1.5236ba75abd56p-5,
     0x1.f6b47007850a1p-3, 102949u, 25270u, 3671u, 1815u, 2653u, 0u,
     0x1.4fe989f54ffa1p+4, 0x1.2c84c871c8bd1p+1, 966400u,
     0x1.2cb0af0345b2ap+20, 0x1.498a472494b73p+8, 0x1.d3049a088261ep-3,
     {0x1.388p+18, 0x1.48f9af555731ep+19, 0x1.06b2666666664p+13,
      0x1.1f1b120950c05p+16, 0x1.f8070a3d70a3fp+13, 0x1.17eb6ef3f4a19p+16,
      0x1.73b4b5af75239p+15, 0x1.e333333333335p+11, 0x1.05af481a34b17p+14}},
    // WATER-NS 2MiB decay128K ticks=8 instr=300000
    {"WATER-NS", 2, decay::Technique::kDecay, 128 * 1024, 8, 300000,
     412161u, 1200012u, 0x1.74ac73036d3c3p+1, 0x1.ecadeb7fda8ddp-4,
     0x1.8b72a55726327p-3, 140603u, 27149u, 7228u, 2717u, 6178u, 2303u,
     0x1.2477f25405a5ap+4, 0x1.894d086125c88p+1, 1266432u,
     0x1.45b736eb30357p+20, 0x1.498a590729906p+8, 0x1.38bc11b11f36dp-2,
     {0x1.d4c1333333333p+18, 0x1.4998fee5c8141p+19, 0x1.6886666666662p+13,
      0x1.1fa61af715035p+16, 0x1.4bee70a3d70a5p+14, 0x1.9866f615dec72p+15,
      0x1.5587404721b0bp+13, 0x1.3c9ba5e353f7ep+12, 0x1.1460959157e71p+12}},
    // mpeg2enc 4MiB baseline instr=200000
    {"mpeg2enc", 4, decay::Technique::kBaseline, 0, 4, 200000,
     150133u, 800008u, 0x1.5508cc01350e5p+2, 0x1p+0, 0x1.1e802cd580851p-3,
     92821u, 12985u, 0u, 0u, 1115u, 0u, 0x1.848baf494991dp+4,
     0x1.a0b6691f6f3d4p+1, 488768u, 0x1.c104eb44f4748p+19,
     0x1.49c54c98e4eep+8, 0x1.4395748213767p-2,
     {0x1.3880cccccccccp+18, 0x1.e0b53556d8de9p+17, 0x1.20f1ae147ae14p+13,
      0x1.a386df6c602d4p+14, 0x1.97be28f5c28f3p+13, 0x1.2747bdc6f1db4p+18,
      0x0p+0, 0x1.e8c49ba5e354p+10, 0x0p+0}},
};

class GoldenMetricsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenMetricsTest, RunMetricsAreBitIdentical) {
  const GoldenCase& g = kGolden[GetParam()];
  decay::DecayConfig d{g.technique, g.decay_time, g.hierarchical_ticks};
  const std::string trace = std::string(g.bench) + "/" +
                            std::to_string(g.total_mib) + "MiB/" + d.label();
  SCOPED_TRACE(trace);
  sim::SystemConfig cfg = sim::make_system_config(g.total_mib * MiB, d);
  cfg.instructions_per_core = g.instr_per_core;
  const sim::RunMetrics m =
      sim::run_config(cfg, workload::benchmark_by_name(g.bench));

  EXPECT_EQ(m.cycles, g.cycles);
  EXPECT_EQ(m.instructions, g.instructions);
  EXPECT_EQ(m.l2_accesses, g.l2_accesses);
  EXPECT_EQ(m.l2_misses, g.l2_misses);
  EXPECT_EQ(m.l2_decay_turnoffs, g.l2_decay_turnoffs);
  EXPECT_EQ(m.l2_decay_induced_misses, g.l2_decay_induced_misses);
  EXPECT_EQ(m.l2_coherence_invals, g.l2_coherence_invals);
  EXPECT_EQ(m.l2_writebacks, g.l2_writebacks);
  EXPECT_EQ(m.mem_bytes, g.mem_bytes);

  // Doubles: exact binary equality, not a tolerance. The kernel is fully
  // deterministic; any drift here means simulated behavior changed.
  EXPECT_EQ(m.ipc, g.ipc);
  EXPECT_EQ(m.l2_occupation, g.l2_occupation);
  EXPECT_EQ(m.l2_miss_rate, g.l2_miss_rate);
  EXPECT_EQ(m.amat, g.amat);
  EXPECT_EQ(m.mem_bandwidth, g.mem_bandwidth);
  EXPECT_EQ(m.energy, g.energy);
  EXPECT_EQ(m.avg_l2_temp_kelvin, g.avg_l2_temp_kelvin);
  EXPECT_EQ(m.bus_utilization, g.bus_utilization);
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto c = static_cast<power::Component>(i);
    EXPECT_EQ(m.ledger.get(c), g.ledger[i]) << to_string(c);
  }
}

INSTANTIATE_TEST_SUITE_P(PinnedConfigs, GoldenMetricsTest,
                         ::testing::Range<std::size_t>(0, std::size(kGolden)));

// The .cdt trace-replay path, pinned the same way: a deterministic
// fuzzer-generated trace is written to disk, read back, and replayed
// through ScriptedWorkload with per-core budgets — every metric must come
// out bit-identical to the values captured when the path was introduced.
// This puts the whole capture -> serialize -> parse -> replay pipeline
// under the exact-hexfloat regression guard.
TEST(GoldenMetricsTest, TraceReplayCdtPathIsPinned) {
  workload::FuzzerConfig fc;
  fc.num_cores = 2;
  fc.decay_window = 2048;
  workload::Trace t;
  t.num_cores = 2;
  for (CoreId c = 0; c < 2; ++c) {
    workload::FuzzerWorkload w(fc, c, /*seed=*/99);
    Cycle now = 0;
    for (int i = 0; i < 1200; ++i) t.records.push_back({c, w.next(now += 2)});
  }

  const std::string path = ::testing::TempDir() + "golden_replay_" +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".cdt";
  std::string err;
  ASSERT_TRUE(t.save(path, &err)) << err;
  const auto loaded = workload::Trace::load(path, &err);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value()) << err;

  sim::SystemConfig cfg;
  cfg.num_cores = 2;
  cfg.total_l2_bytes = 128 * KiB;
  cfg.decay = decay::DecayConfig{decay::Technique::kDecay, 2048, 4};
  cfg.l1.size_bytes = 8 * KiB;
  cfg.per_core_instructions = loaded->per_core_instructions();
  ASSERT_EQ(cfg.per_core_instructions[0], 207251u);
  ASSERT_EQ(cfg.per_core_instructions[1], 286103u);
  workload::Benchmark bench;
  bench.config.name = "trace-replay";
  sim::CmpSystem sys(cfg, bench, workload::replay_factory(*loaded));
  const sim::RunMetrics m = sys.run();

  EXPECT_EQ(m.cycles, 93395u);
  EXPECT_EQ(m.instructions, 493354u);
  EXPECT_EQ(m.l2_accesses, 1985u);
  EXPECT_EQ(m.l2_misses, 1765u);
  EXPECT_EQ(m.l2_decay_turnoffs, 1372u);
  EXPECT_EQ(m.l2_decay_induced_misses, 776u);
  EXPECT_EQ(m.l2_coherence_invals, 66u);
  EXPECT_EQ(m.l2_writebacks, 415u);
  EXPECT_EQ(m.mem_bytes, 119424u);
  EXPECT_EQ(m.ipc, 0x1.5213966768a0ep+2);
  EXPECT_EQ(m.l2_occupation, 0x1.2ace7608f0f88p-6);
  EXPECT_EQ(m.l2_miss_rate, 0x1.c74120e2fb7c7p-1);
  EXPECT_EQ(m.amat, 0x1.040db33747356p+7);
  EXPECT_EQ(m.mem_bandwidth, 0x1.4758c098cbffep+0);
  EXPECT_EQ(m.energy, 0x1.152adee424fddp+18);
}

// The three-level hierarchy, pinned the same way: an 8-core directory
// mesh with private L2 slices behind the shared home-banked L3, MOESI,
// and decay active at EVERY level (L1 64K / L2 64K / L3 128K windows).
// Captured with the one-off "%a" harness when the hierarchy was
// introduced; any drift means the three-level machine's simulated
// behavior changed.
TEST(GoldenMetricsTest, ThreeLevelConfigIsPinned) {
  sim::SystemConfig cfg;
  cfg.num_cores = 8;
  cfg.topology = noc::Topology::kDirectoryMesh;
  cfg.hierarchy = sim::Hierarchy::kThreeLevel;
  cfg.total_l2_bytes = 2 * MiB;
  cfg.total_l3_bytes = 8 * MiB;
  cfg.protocol = coherence::Protocol::kMoesi;
  cfg.decay = decay::DecayConfig{decay::Technique::kDecay, 64 * 1024, 4};
  cfg.l1_decay = decay::DecayConfig{decay::Technique::kDecay, 64 * 1024, 4};
  cfg.l3_decay = decay::DecayConfig{decay::Technique::kDecay, 128 * 1024, 4};
  cfg.instructions_per_core = 100000;
  const sim::RunMetrics m =
      sim::run_config(cfg, workload::benchmark_by_name("FMM"));

  EXPECT_EQ(m.cycles, 243368u);
  EXPECT_EQ(m.instructions, 800000u);
  EXPECT_EQ(m.ipc, 0x1.a4c310b449c05p+1);
  EXPECT_EQ(m.l2_occupation, 0x1.40a200a3ba162p-3);
  EXPECT_EQ(m.l2_miss_rate, 0x1.29f3cd1fc15f1p-2);
  EXPECT_EQ(m.l2_accesses, 103334u);
  EXPECT_EQ(m.l2_misses, 30067u);
  EXPECT_EQ(m.l2_decay_turnoffs, 9004u);
  EXPECT_EQ(m.l2_decay_induced_misses, 1310u);
  EXPECT_EQ(m.l2_coherence_invals, 2903u);
  EXPECT_EQ(m.l2_writebacks, 5792u);
  EXPECT_EQ(m.amat, 0x1.a65fa165cfe6dp+4);
  EXPECT_EQ(m.mem_bandwidth, 0x1.7ba0d7292cff1p+1);
  EXPECT_EQ(m.mem_bytes, 721792u);
  EXPECT_EQ(m.energy, 0x1.4365e02f79726p+20);
  EXPECT_EQ(m.avg_l2_temp_kelvin, 0x1.49a1534742d7ap+8);
  EXPECT_EQ(m.bus_utilization, 0x1.93add566ed426p-3);
  EXPECT_EQ(m.noc_flit_hops, 301983u);
  EXPECT_EQ(m.noc_avg_packet_latency, 0x1.b937deb1c228dp+5);
  EXPECT_EQ(m.dir_directed_snoops, 19007u);
  EXPECT_EQ(m.dir_recalls, 41u);   // MOESI O turn-offs as directed recalls
  EXPECT_EQ(m.dir_deferrals, 0u);

  // Per-level attribution: decay fired at all three levels, and the L3
  // banks really served fills.
  EXPECT_EQ(m.hierarchy, "3L");
  EXPECT_EQ(m.l1.accesses, 280457u);
  EXPECT_EQ(m.l1.hits, 224194u);
  EXPECT_EQ(m.l1.misses, 56263u);
  EXPECT_EQ(m.l1.decay_turnoffs, 193u);
  EXPECT_EQ(m.l1.decay_induced_misses, 11u);
  EXPECT_EQ(m.l1.writebacks, 0u);  // write-through front end
  EXPECT_EQ(m.l1.occupation, 0x1.b154c3df8465ap-1);
  EXPECT_EQ(m.l2.accesses, m.l2_accesses);
  EXPECT_EQ(m.l2.hits, 73267u);
  EXPECT_EQ(m.l2.decay_turnoffs, m.l2_decay_turnoffs);
  EXPECT_EQ(m.l3.accesses, 19194u);
  EXPECT_EQ(m.l3.hits, 8671u);
  EXPECT_EQ(m.l3.misses, 10523u);
  EXPECT_EQ(m.l3.decay_turnoffs, 1579u);
  // 0 is correct, not a regression: every L3 access that lands on a decayed
  // line in this run is an absorbed write-back (55 of them), and absorbs
  // deliberately skip note_miss — writing fresh data into a dead frame costs
  // no refetch, so charging decay_induced_misses would double-count. The
  // demand-access path still attributes decay misses (L1/L2 pins above are
  // non-zero); this config simply never demand-hits a decayed L3 line.
  EXPECT_EQ(m.l3.decay_induced_misses, 0u);
  EXPECT_EQ(m.l3.writebacks, 179u);
  EXPECT_EQ(m.l3.occupation, 0x1.52bace6d02d1bp-5);

  const double ledger[power::kNumComponents] = {
      0x1.388p+18,           0x1.853667d9c7d99p+19, 0x1.06edae147ae15p+13,
      0x1.2dd4ceae7fe96p+16, 0x1.018051eb851eep+14, 0x1.3a3c88fec9c49p+15,
      0x1.830c9390987aep+12, 0x0p+0,                0x1.f38d69cffa017p+12,
      0x1.d7d9333333334p+13, 0x1.d612666666666p+12, 0x1.06a53f665d516p+14,
      0x1.5bcd0b935abacp+13, 0x1.9108cf2a4c66cp+8};
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto c = static_cast<power::Component>(i);
    EXPECT_EQ(m.ledger.get(c), ledger[i]) << to_string(c);
  }
}

// The banked-DRAM memory model, pinned the same way: the mpeg2enc decay64K
// configuration re-run with mem.model = kDram and the per-core TLBs on.
// Captured with the one-off "%a" harness when the DRAM controller was
// introduced; any drift means the DRAM scheduler's simulated behavior
// (row-buffer policy, FR-FCFS order, refresh, TLB walks) changed. The
// flat-mode pins above are untouched by construction — kFlat timing is the
// historical channel, bit for bit.
TEST(GoldenMetricsTest, DramConfigIsPinned) {
  decay::DecayConfig d{decay::Technique::kDecay, 64 * 1024, 4};
  sim::SystemConfig cfg = sim::make_system_config(4 * MiB, d);
  cfg.instructions_per_core = 200000;
  cfg.mem.model = mem::MemoryModel::kDram;
  cfg.mem.tlb.enabled = true;
  const sim::RunMetrics m =
      sim::run_config(cfg, workload::benchmark_by_name("mpeg2enc"));

  EXPECT_EQ(m.cycles, 1236401u);
  EXPECT_EQ(m.instructions, 800008u);
  EXPECT_EQ(m.ipc, 0x1.4b499448c2546p-1);
  EXPECT_EQ(m.l2_occupation, 0x1.7b9ef4f3ae8bdp-6);
  EXPECT_EQ(m.l2_miss_rate, 0x1.72837eee06dfap-2);
  EXPECT_EQ(m.l2_accesses, 88865u);
  EXPECT_EQ(m.l2_misses, 32154u);
  EXPECT_EQ(m.l2_decay_turnoffs, 17079u);
  EXPECT_EQ(m.l2_decay_induced_misses, 11663u);
  EXPECT_EQ(m.l2_coherence_invals, 456u);
  EXPECT_EQ(m.l2_writebacks, 8860u);
  EXPECT_EQ(m.amat, 0x1.18260e43af70dp+8);
  EXPECT_EQ(m.mem_bandwidth, 0x1.72f2084e0c835p+0);
  EXPECT_EQ(m.mem_bytes, 1791552u);
  EXPECT_EQ(m.energy, 0x1.51fa98ad29b67p+21);
  EXPECT_EQ(m.avg_l2_temp_kelvin, 0x1.4901819e49a1ep+8);
  EXPECT_EQ(m.bus_utilization, 0x1.176bec9e0d9c1p-3);

  // The DRAM service mix: mostly hits and conflicts (streaming rows vs
  // decay write-back interleave), refresh really ticking, forwarding
  // really firing, and the TLBs nearly always hitting on these footprints.
  EXPECT_EQ(m.mem_model, "dram");
  EXPECT_EQ(m.dram_row_hits, 12895u);
  EXPECT_EQ(m.dram_row_misses, 753u);
  EXPECT_EQ(m.dram_row_conflicts, 14289u);
  EXPECT_EQ(m.dram_activates, 15042u);
  EXPECT_EQ(m.dram_precharges, 14289u);
  EXPECT_EQ(m.dram_refreshes, 90u);
  EXPECT_EQ(m.dram_write_forwards, 56u);
  EXPECT_EQ(m.tlb_hits, 316243u);
  EXPECT_EQ(m.tlb_misses, 129u);

  const double ledger[power::kNumComponents] = {
      0x1.3880cccccccc8p+18, 0x1.eb745b74635d8p+20, 0x1.289947ae147b2p+13,
      0x1.ace7e01b1a357p+17, 0x1.e2b8666666665p+13, 0x1.d57e085f4b993p+15,
      0x1.1adbd708b681ap+16, 0x1.bfe353f7ced95p+12, 0x1.84dd5fb98fd7fp+14,
      0x0p+0,                0x0p+0,                0x0p+0,
      0x0p+0,                0x0p+0,                0x1.1a0999999999ap+14,
      0x1.0beb333333335p+13};
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    const auto c = static_cast<power::Component>(i);
    EXPECT_EQ(m.ledger.get(c), ledger[i]) << to_string(c);
  }
}

// The kernel must also be self-deterministic: two runs of the same config
// in one process give identical results (guards accidental global state).
TEST(GoldenMetricsTest, RepeatRunsAreIdentical) {
  decay::DecayConfig d{decay::Technique::kDecay, 64 * 1024, 4};
  sim::SystemConfig cfg = sim::make_system_config(1 * MiB, d);
  cfg.instructions_per_core = 50000;
  const auto& bench = workload::benchmark_by_name("FMM");
  const sim::RunMetrics a = sim::run_config(cfg, bench);
  const sim::RunMetrics b = sim::run_config(cfg, bench);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.l2_decay_turnoffs, b.l2_decay_turnoffs);
  EXPECT_EQ(a.l2_occupation, b.l2_occupation);
}

}  // namespace
