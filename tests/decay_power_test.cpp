// Unit tests for the decay policy helpers, the sweeper, the leakage /
// energy models and the RC thermal network.

#include <gtest/gtest.h>

#include <cmath>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/decay/sweeper.hpp"
#include "cdsim/decay/technique.hpp"
#include "cdsim/power/energy.hpp"
#include "cdsim/power/leakage.hpp"
#include "cdsim/thermal/rc_model.hpp"

namespace cdsim {
namespace {

using decay::DecayConfig;
using decay::LineDecayState;
using decay::Technique;

// --- decay config -----------------------------------------------------------

TEST(DecayConfig, ExpiryRequiresArmingAndIdleTime) {
  DecayConfig d{Technique::kDecay, 1000, 4};
  LineDecayState s;
  s.last_touch = 100;
  s.armed = true;
  EXPECT_FALSE(d.expired(s, 1099));
  EXPECT_TRUE(d.expired(s, 1100));
  s.armed = false;
  EXPECT_FALSE(d.expired(s, 5000));
}

TEST(DecayConfig, TickPeriodIsIntervalOverTicks) {
  DecayConfig d{Technique::kDecay, 512 * 1024, 4};
  EXPECT_EQ(d.tick_period(), 128u * 1024u);
}

TEST(DecayConfig, Labels) {
  EXPECT_EQ((DecayConfig{Technique::kDecay, 512 * 1024, 4}).label(),
            "decay512K");
  EXPECT_EQ((DecayConfig{Technique::kSelectiveDecay, 64 * 1024, 4}).label(),
            "sel_decay64K");
  EXPECT_EQ((DecayConfig{Technique::kProtocol, 0, 4}).label(), "protocol");
  EXPECT_EQ((DecayConfig{Technique::kBaseline, 0, 4}).label(), "baseline");
}

// --- sweeper -------------------------------------------------------------------

TEST(DecaySweeper, FiresPeriodically) {
  EventQueue eq;
  DecayConfig d{Technique::kDecay, 4000, 4};
  std::vector<Cycle> fired;
  decay::DecaySweeper sw(eq, d, [&](Cycle now) { fired.push_back(now); });
  sw.start();
  eq.run_until(5000);
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_EQ(fired[0], 1000u);
  EXPECT_EQ(fired[4], 5000u);
  EXPECT_EQ(sw.sweeps_run(), 5u);
}

TEST(DecaySweeper, InertForNonDecayTechniques) {
  EventQueue eq;
  DecayConfig d{Technique::kProtocol, 4000, 4};
  int fired = 0;
  decay::DecaySweeper sw(eq, d, [&](Cycle) { ++fired; });
  sw.start();
  eq.run_until(100000);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(eq.empty());
}

TEST(DecaySweeper, StopEndsRescheduling) {
  EventQueue eq;
  DecayConfig d{Technique::kDecay, 400, 4};
  int fired = 0;
  decay::DecaySweeper sw(eq, d, [&](Cycle) { ++fired; });
  sw.start();
  eq.run_until(250);
  sw.stop();
  eq.run();  // drains the already-scheduled event, which must do nothing
  EXPECT_EQ(fired, 2);
}

// --- expiry wheel -----------------------------------------------------------------

TEST(ExpiryWheel, DisabledForNonDecayTechniques) {
  decay::ExpiryWheel w;
  w.configure(DecayConfig{Technique::kProtocol, 4000, 4});
  EXPECT_FALSE(w.enabled());
  w.configure(DecayConfig{Technique::kBaseline, 0, 4});
  EXPECT_FALSE(w.enabled());
}

TEST(ExpiryWheel, CollectsAtTheRegisteredTickOnly) {
  const DecayConfig d{Technique::kDecay, 1000, 4};  // tick 250
  decay::ExpiryWheel w;
  w.configure(d);
  ASSERT_TRUE(w.enabled());

  // A line touched at cycle 120 expires at the first tick >= 1120 -> 1250.
  const std::uint64_t t = w.add(7, d.first_expiry_tick(120));
  EXPECT_NE(t, 0u);
  std::vector<decay::ExpiryWheel::Entry> due;
  for (Cycle tick = 250; tick <= 1000; tick += 250) {
    w.collect_due(tick, due);
    EXPECT_TRUE(due.empty()) << "tick " << tick;
  }
  w.collect_due(1250, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].line_index, 7u);
  EXPECT_EQ(due[0].ticket, t);
  EXPECT_EQ(w.entries(), 0u);
}

TEST(ExpiryWheel, BucketsComeBackSortedByLineIndex) {
  const DecayConfig d{Technique::kDecay, 1000, 4};
  decay::ExpiryWheel w;
  w.configure(d);
  // Register out of array order; the sweep must visit in array order to
  // reproduce the full sweep's turn-off choreography exactly.
  w.add(42, 1000);
  w.add(3, 1000);
  w.add(17, 1000);
  std::vector<decay::ExpiryWheel::Entry> due;
  w.collect_due(250, due);
  w.collect_due(500, due);
  w.collect_due(750, due);
  w.collect_due(1000, due);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].line_index, 3u);
  EXPECT_EQ(due[1].line_index, 17u);
  EXPECT_EQ(due[2].line_index, 42u);
}

TEST(ExpiryWheel, TicketsDistinguishReRegistrations) {
  const DecayConfig d{Technique::kDecay, 1000, 4};
  decay::ExpiryWheel w;
  w.configure(d);
  const std::uint64_t stale = w.add(5, 250);
  const std::uint64_t live = w.add(5, 500);
  EXPECT_NE(stale, live);
  std::vector<decay::ExpiryWheel::Entry> due;
  w.collect_due(250, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].ticket, stale);  // the consumer drops it by ticket check
  w.collect_due(500, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].ticket, live);
}

// --- leakage model ----------------------------------------------------------------

TEST(LeakageModel, UnityAtReferenceTemperature) {
  power::LeakageModel m;
  EXPECT_NEAR(m.factor(m.params().t0_kelvin), 1.0, 1e-12);
}

TEST(LeakageModel, MonotonicInTemperature) {
  power::LeakageModel m;
  double prev = 0.0;
  for (double t = 300; t <= 400; t += 5) {
    const double f = m.factor(t);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(LeakageModel, RoughlyDoublesOverFiftyKelvin) {
  // The calibration target: ~2x leakage for +40..60 K (Liao et al.).
  power::LeakageModel m;
  const double t0 = m.params().t0_kelvin;
  const double ratio = m.factor(t0 + 50) / m.factor(t0);
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 3.0);
}

// --- energy ledger ------------------------------------------------------------------

TEST(EnergyLedger, TotalsAreExactSums) {
  power::EnergyLedger l;
  l.add(power::Component::kCoreDynamic, 1.5);
  l.add(power::Component::kL2Leakage, 2.5);
  l.add(power::Component::kL2Leakage, 1.0);
  EXPECT_DOUBLE_EQ(l.get(power::Component::kL2Leakage), 3.5);
  EXPECT_DOUBLE_EQ(l.total(), 5.0);
}

TEST(EnergyLedger, L2TotalGroupsL2Components) {
  power::EnergyLedger l;
  l.add(power::Component::kL2Dynamic, 1.0);
  l.add(power::Component::kL2Leakage, 2.0);
  l.add(power::Component::kL2OffResidual, 0.5);
  l.add(power::Component::kDecayOverhead, 0.25);
  l.add(power::Component::kCoreDynamic, 10.0);
  EXPECT_DOUBLE_EQ(l.l2_total(), 3.75);
}

// --- thermal ------------------------------------------------------------------------

TEST(Thermal, HeatsTowardSteadyState) {
  thermal::ThermalConfig cfg;
  std::vector<thermal::BlockParams> blocks = {{"b", 2.0, 1e-3}};
  thermal::RcThermalModel m(cfg, blocks, {});
  const double watts = 5.0;
  for (int i = 0; i < 100000; ++i) m.step(1e-5, {watts});
  // Steady state: ambient + P*R.
  EXPECT_NEAR(m.temperature(0), cfg.ambient_kelvin + watts * 2.0, 0.5);
}

TEST(Thermal, CoolsToAmbientWithoutPower) {
  thermal::ThermalConfig cfg;
  std::vector<thermal::BlockParams> blocks = {{"b", 2.0, 1e-3}};
  thermal::RcThermalModel m(cfg, blocks, {});
  m.warm_start(0, 10.0);
  EXPECT_GT(m.temperature(0), cfg.ambient_kelvin + 10);
  for (int i = 0; i < 100000; ++i) m.step(1e-5, {0.0});
  EXPECT_NEAR(m.temperature(0), cfg.ambient_kelvin, 0.5);
}

TEST(Thermal, LateralCouplingEqualizesNeighbours) {
  thermal::ThermalConfig cfg;
  std::vector<thermal::BlockParams> blocks = {{"hot", 2.0, 1e-3},
                                              {"cold", 2.0, 1e-3}};
  thermal::RcThermalModel coupled(cfg, blocks, {{0, 1}});
  thermal::RcThermalModel isolated(cfg, blocks, {});
  for (int i = 0; i < 50000; ++i) {
    coupled.step(1e-5, {4.0, 0.0});
    isolated.step(1e-5, {4.0, 0.0});
  }
  // Coupling moves heat from the hot block into the cold one.
  EXPECT_LT(coupled.temperature(0), isolated.temperature(0));
  EXPECT_GT(coupled.temperature(1), isolated.temperature(1));
}

TEST(Thermal, WarmStartMatchesSteadyState) {
  thermal::ThermalConfig cfg;
  std::vector<thermal::BlockParams> blocks = {{"b", 1.5, 1e-3}};
  thermal::RcThermalModel m(cfg, blocks, {});
  m.warm_start(0, 4.0);
  const double t0 = m.temperature(0);
  for (int i = 0; i < 1000; ++i) m.step(1e-5, {4.0});
  EXPECT_NEAR(m.temperature(0), t0, 0.1);  // already at equilibrium
}

TEST(Thermal, CmpFloorplanLayout) {
  thermal::ThermalConfig cfg;
  thermal::Floorplan fp = thermal::make_cmp_floorplan(cfg, 4, 1.0);
  EXPECT_EQ(fp.model.num_blocks(), 9u);  // 4 cores + 4 L2 + bus
  EXPECT_EQ(fp.model.block_name(fp.core_block(2)), "core2");
  EXPECT_EQ(fp.model.block_name(fp.l2_block(3)), "l2_3");
  EXPECT_EQ(fp.model.block_name(fp.bus_block()), "bus");
}

}  // namespace
}  // namespace cdsim
