// Differential-verification suite: the reference-model oracle against the
// full hierarchy.
//
// Three layers:
//  1. Unit tests drive DifferentialChecker with hand-scripted event
//     sequences to pin its shadow/oracle semantics (clean propagation
//     passes; a lost write-back's stale refetch diverges; MOESI's
//     deferred-memory flush chain stays consistent).
//  2. The acceptance sweep runs >= 200 seeded hostile scenarios spanning
//     {MESI, MOESI} x all four leakage techniques x three decay times x
//     {4-core snoop bus, 8/16-core directory mesh} and requires ZERO
//     divergences — every load's returned version matches the flat
//     last-writer model, including loads that hit lines that were turned
//     off and refetched, on both interconnect topologies.
//  3. The injected-bug test flips the L2's test-only lost-write-back fault
//     and requires the oracle to CATCH it and the shrinker to minimize the
//     captured trace to a tiny (<= 50 op) replayable repro.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "cdsim/verify/fuzz.hpp"
#include "cdsim/verify/oracle.hpp"
#include "cdsim/verify/shrink.hpp"

namespace {

using namespace cdsim;
using verify::DifferentialChecker;

// ---------------------------------------------------------------------------
// Checker unit semantics (hand-scripted event sequences)
// ---------------------------------------------------------------------------

TEST(DifferentialChecker, CleanWritebackPropagationPasses) {
  DifferentialChecker chk(/*num_cores=*/2);
  const Addr line = 0x1000;

  // Core 0: write-allocate fill from pristine memory, then serialize.
  chk.on_fill(0, line, 10, /*from_cache=*/false, /*for_write=*/true);
  chk.on_write_serialized(0, line, 10);
  // Eviction write-back reaches memory; the copy dies.
  chk.on_writeback_initiated(0, line, 20);
  chk.on_invalidate(0, line, 20);
  chk.on_writeback_resolved(0, line, 25, /*cancelled=*/false, /*to_l3=*/false);
  // Core 1 refetches from memory: must see the written version.
  chk.on_fill(1, line, 30, /*from_cache=*/false, /*for_write=*/false);
  chk.on_load_hit(1, line, 31, /*l1=*/false);

  EXPECT_EQ(chk.total_divergences(), 0u);
  EXPECT_EQ(chk.loads_checked(), 1u);
  EXPECT_EQ(chk.fills_checked(), 2u);
  EXPECT_EQ(chk.writes_serialized(), 1u);
}

TEST(DifferentialChecker, LostWritebackRefetchDiverges) {
  DifferentialChecker chk(2);
  const Addr line = 0x2000;

  chk.on_fill(0, line, 10, false, true);
  chk.on_write_serialized(0, line, 10);
  // BUG under test: the dirty copy dies with NO write-back.
  chk.on_invalidate(0, line, 20);
  // The refetch reads stale memory (version 0, not the write).
  chk.on_fill(1, line, 30, false, false);

  ASSERT_EQ(chk.total_divergences(), 1u);
  const verify::Divergence& d = chk.divergences().front();
  EXPECT_EQ(d.core, 1u);
  EXPECT_EQ(d.line, line);
  EXPECT_EQ(d.observed, 0u);
  EXPECT_EQ(d.expected, 1u);
  EXPECT_EQ(d.context, "fill-mem");
  EXPECT_FALSE(verify::to_string(d).empty());
}

TEST(DifferentialChecker, MesiFlushUpdatesMemory) {
  DifferentialChecker chk(2);
  const Addr line = 0x3000;

  chk.on_fill(0, line, 5, false, true);
  chk.on_write_serialized(0, line, 5);
  // Remote BusRd: MESI owner flushes (memory updated), downgrades to S —
  // both copies now hold the written version; later memory fills do too.
  chk.on_flush_supply(0, line, 9, /*memory_update=*/true);
  chk.on_fill(1, line, 9, /*from_cache=*/true, false);
  chk.on_load_hit(0, line, 11, false);
  chk.on_load_hit(1, line, 12, true);
  chk.on_invalidate(0, line, 20);
  chk.on_invalidate(1, line, 21);
  chk.on_fill(0, line, 30, false, false);  // memory was updated by the flush

  EXPECT_EQ(chk.total_divergences(), 0u);
}

TEST(DifferentialChecker, MoesiDeferredFlushKeepsMemoryStale) {
  DifferentialChecker chk(2);
  const Addr line = 0x4000;

  chk.on_fill(0, line, 5, false, true);
  chk.on_write_serialized(0, line, 5);
  // MOESI: owner supplies WITHOUT memory update (M -> O).
  chk.on_flush_supply(0, line, 9, /*memory_update=*/false);
  chk.on_fill(1, line, 9, true, false);
  EXPECT_EQ(chk.total_divergences(), 0u);

  // If both copies now die without a write-back, memory is genuinely stale
  // and a refetch must diverge — the checker models the deferral exactly.
  chk.on_invalidate(1, line, 20);
  chk.on_invalidate(0, line, 21);  // owner dies silently: the bug
  chk.on_fill(0, line, 30, false, false);
  EXPECT_EQ(chk.total_divergences(), 1u);
}

TEST(DifferentialChecker, CancelledWritebackDoesNotTouchMemory) {
  DifferentialChecker chk(2);
  const Addr line = 0x5000;

  chk.on_fill(0, line, 5, false, true);
  chk.on_write_serialized(0, line, 5);   // v1
  // TD turn-off queues a write-back of v1...
  chk.on_writeback_initiated(0, line, 10);
  // ...but a snoop flush-and-cancel moves v1 to memory first (BusRdX).
  chk.on_flush_supply(0, line, 12, true);
  chk.on_invalidate(0, line, 12);
  chk.on_fill(1, line, 12, true, true);
  chk.on_write_serialized(1, line, 12);  // v2 at the new owner
  // The queued write-back resolves cancelled: memory must stay at v1, not
  // regress anything, and the new owner's copy stays authoritative.
  chk.on_writeback_resolved(0, line, 15, /*cancelled=*/true, /*to_l3=*/false);
  chk.on_load_hit(1, line, 16, false);

  EXPECT_EQ(chk.total_divergences(), 0u);
}

TEST(DifferentialChecker, HitOnUntrackedCopyDiverges) {
  DifferentialChecker chk(1);
  chk.on_load_hit(0, 0x6000, 5, /*l1=*/true);
  ASSERT_EQ(chk.total_divergences(), 1u);
  EXPECT_EQ(chk.divergences().front().context, "l1-hit-untracked");
}

// ---------------------------------------------------------------------------
// The fuzz matrix
// ---------------------------------------------------------------------------

TEST(FuzzMatrix, SpansProtocolsTechniquesTopologiesAndHierarchies) {
  verify::FuzzOptions opts;
  opts.scenarios = 240;
  const auto matrix = verify::fuzz_matrix(opts);
  ASSERT_EQ(matrix.size(), 240u);

  int protocols[2] = {};
  int techniques[4] = {};
  int topologies[2] = {};
  int hierarchies[2] = {};
  std::set<std::uint32_t> mesh_core_counts;
  std::set<std::uint32_t> three_level_core_counts;
  std::set<Cycle> decay_times;
  std::set<std::uint64_t> seeds;
  for (const auto& sc : matrix) {
    protocols[static_cast<int>(sc.protocol)]++;
    techniques[static_cast<int>(sc.decay.technique)]++;
    topologies[static_cast<int>(sc.topology)]++;
    hierarchies[static_cast<int>(sc.hierarchy)]++;
    if (decay::uses_decay(sc.decay.technique)) {
      decay_times.insert(sc.decay.decay_time);
    }
    if (sc.topology == noc::Topology::kDirectoryMesh) {
      mesh_core_counts.insert(sc.num_cores);
      // NoC stressor armed: hot-home contention targets one bank.
      EXPECT_GT(sc.fuzz.w_hot_home, 0.0);
      EXPECT_EQ(sc.fuzz.home_tiles, sc.num_cores);
    }
    if (sc.hierarchy == sim::Hierarchy::kThreeLevel) {
      // Three-level cells are mesh-only with a real L3 behind the L2s.
      EXPECT_EQ(sc.topology, noc::Topology::kDirectoryMesh);
      EXPECT_GT(sc.total_l3_bytes, sc.total_l2_bytes);
      three_level_core_counts.insert(sc.num_cores);
    } else {
      EXPECT_EQ(sc.total_l3_bytes, 0u);
    }
    seeds.insert(sc.seed);
  }
  EXPECT_GT(protocols[0], 50);  // MESI
  EXPECT_GT(protocols[1], 50);  // MOESI
  EXPECT_GT(topologies[0], 50);  // snoop bus
  EXPECT_GT(topologies[1], 50);  // directory mesh
  // The hierarchy axis: {two-level bus, two-level dmesh, three-level
  // dmesh} all present in force.
  EXPECT_GT(hierarchies[0], 100);  // two-level (bus + dmesh)
  EXPECT_GT(hierarchies[1], 50);   // three-level dmesh
  // Mesh cells cover a square 4x4 and an asymmetric 4x2 grid, in both
  // hierarchies.
  EXPECT_TRUE(mesh_core_counts.count(16));
  EXPECT_TRUE(mesh_core_counts.count(8));
  EXPECT_TRUE(three_level_core_counts.count(16));
  EXPECT_TRUE(three_level_core_counts.count(8));
  for (int t = 0; t < 4; ++t) EXPECT_GT(techniques[t], 0) << "technique " << t;
  EXPECT_GE(decay_times.size(), 3u);
  EXPECT_EQ(seeds.size(), matrix.size());  // every scenario a fresh seed
}

// The acceptance criterion: >= 200 seeded hostile scenarios, both
// protocols, all techniques, every hierarchy cell ({two-level bus,
// two-level dmesh, three-level dmesh}), zero value divergences.
TEST(FuzzAcceptance, TwoHundredScenariosZeroDivergences) {
  verify::FuzzOptions opts;
  opts.scenarios = 240;  // 5 full passes over the 48-cell matrix
  opts.shrink_failures = false;  // a failure here fails the test anyway
  const verify::FuzzReport rep = verify::run_fuzz(opts);

  EXPECT_EQ(rep.scenarios_run, 240u);
  EXPECT_EQ(rep.divergences, 0u) << "first failure: "
                                 << (rep.failures.empty()
                                         ? std::string("<none recorded>")
                                         : verify::to_string(
                                               rep.failures[0].divergences[0]));
  // The sweep must actually check things, and MOESI must actually reach O.
  EXPECT_GT(rep.loads_checked, 10000u);
  EXPECT_GT(rep.fills_checked, 50000u);
  EXPECT_GT(rep.writes_serialized, 20000u);
  EXPECT_GT(rep.owned_downgrades, 500u);
}

TEST(FuzzScenarios, MoesiScenarioExercisesOwnedState) {
  verify::FuzzScenario sc;
  sc.protocol = coherence::Protocol::kMoesi;
  sc.decay = decay::DecayConfig{decay::Technique::kDecay, 2048, 4};
  sc.seed = 424242;
  sc.fuzz.decay_window = 2048;
  const verify::ScenarioOutcome out = verify::run_scenario(sc);
  EXPECT_EQ(out.total_divergences, 0u);
  EXPECT_GT(out.owned_downgrades, 0u);
  // Dirty decay turn-offs occurred (write-backs under full decay).
  EXPECT_GT(out.metrics.l2_decay_turnoffs, 0u);
}

TEST(FuzzScenarios, ThreeLevelScenarioDecaysAtEveryLevel) {
  verify::FuzzScenario sc;
  sc.protocol = coherence::Protocol::kMoesi;
  sc.topology = noc::Topology::kDirectoryMesh;
  sc.hierarchy = sim::Hierarchy::kThreeLevel;
  sc.num_cores = 8;
  sc.total_l2_bytes = 8 * 32 * KiB;
  sc.total_l3_bytes = 4 * sc.total_l2_bytes;
  sc.decay = decay::DecayConfig{decay::Technique::kDecay, 2048, 4};
  sc.seed = 31337;
  sc.fuzz.num_cores = 8;
  sc.fuzz.decay_window = 2048;
  sc.fuzz.w_hot_home = 0.18;
  sc.fuzz.home_tiles = 8;
  const verify::ScenarioOutcome out = verify::run_scenario(sc);
  EXPECT_EQ(out.total_divergences, 0u)
      << verify::to_string(out.divergences.front());
  // Decay really ran at all three levels, and the shared L3 really served
  // fills (write-versions threaded through every level).
  EXPECT_EQ(out.metrics.hierarchy, "3L");
  EXPECT_GT(out.metrics.l1.decay_turnoffs, 0u);
  EXPECT_GT(out.metrics.l2.decay_turnoffs, 0u);
  EXPECT_GT(out.metrics.l3.decay_turnoffs, 0u);
  EXPECT_GT(out.metrics.l3.hits, 0u);
  EXPECT_GT(out.metrics.l3.accesses, out.metrics.l3.hits);
  EXPECT_GT(out.owned_downgrades, 0u);  // MOESI's O state in the mix too
}

TEST(FuzzScenarios, MesiScenarioIsMoesiFreeAndDeterministic) {
  verify::FuzzScenario sc;
  sc.seed = 7;
  const verify::ScenarioOutcome a = verify::run_scenario(sc);
  const verify::ScenarioOutcome b = verify::run_scenario(sc);
  EXPECT_EQ(a.owned_downgrades, 0u);  // MESI never reaches O
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.trace.records.size(), b.trace.records.size());
  EXPECT_EQ(a.loads_checked, b.loads_checked);
}

// ---------------------------------------------------------------------------
// Injected wrong-data bug: caught, shrunk, replayable
// ---------------------------------------------------------------------------

TEST(InjectedBug, LostDecayWritebackIsCaughtAndShrunk) {
  verify::FuzzScenario sc;
  sc.protocol = coherence::Protocol::kMesi;
  sc.decay = decay::DecayConfig{decay::Technique::kDecay, 1024, 4};
  sc.seed = 777;
  sc.fuzz.decay_window = 1024;
  sc.inject_writeback_loss = true;

  // The bug keeps every internal invariant intact (run_scenario asserts
  // check_coherence_invariants) yet the oracle must catch the stale data.
  const verify::ScenarioOutcome out = verify::run_scenario(sc);
  ASSERT_GT(out.total_divergences, 0u);
  ASSERT_FALSE(out.divergences.empty());

  // Greedy shrink to a small replayable repro (acceptance bound: <= 50).
  verify::ShrinkStats st;
  const workload::Trace shrunk = verify::shrink_trace(
      out.trace,
      [&sc](const workload::Trace& t) {
        return verify::replay_scenario(sc, t).total_divergences != 0;
      },
      &st);
  EXPECT_TRUE(st.reproduced);
  EXPECT_LE(shrunk.records.size(), 50u);
  EXPECT_LT(shrunk.records.size(), out.trace.records.size());

  // The shrunken trace still reproduces on a fresh replay.
  const verify::ScenarioOutcome replay = verify::replay_scenario(sc, shrunk);
  EXPECT_GT(replay.total_divergences, 0u);

  // And with the fault off, the same trace replays cleanly — the repro
  // pins the bug, not some checker artifact.
  verify::FuzzScenario fixed = sc;
  fixed.inject_writeback_loss = false;
  const verify::ScenarioOutcome clean = verify::replay_scenario(fixed, shrunk);
  EXPECT_EQ(clean.total_divergences, 0u);
}

TEST(InjectedBug, LostWritebackIsCaughtThroughThreeLevels) {
  // The same wrong-data fault, but under the three-level hierarchy: the
  // dropped dirty turn-off means the shared L3 (and memory behind it)
  // keeps a stale version, and the refetch — served by the L3 bank — must
  // diverge. This is the proof that the oracle threads write-versions
  // through all three levels, not just past the L2.
  verify::FuzzScenario sc;
  sc.protocol = coherence::Protocol::kMesi;
  sc.topology = noc::Topology::kDirectoryMesh;
  sc.hierarchy = sim::Hierarchy::kThreeLevel;
  sc.num_cores = 8;
  sc.total_l2_bytes = 8 * 32 * KiB;
  sc.total_l3_bytes = 4 * sc.total_l2_bytes;
  sc.decay = decay::DecayConfig{decay::Technique::kDecay, 1024, 4};
  sc.seed = 777;
  sc.fuzz.num_cores = 8;
  sc.fuzz.decay_window = 1024;
  sc.inject_writeback_loss = true;

  const verify::ScenarioOutcome out = verify::run_scenario(sc);
  EXPECT_GT(out.total_divergences, 0u);

  // With the fault off, the identical trace replays cleanly through all
  // three levels.
  verify::FuzzScenario fixed = sc;
  fixed.inject_writeback_loss = false;
  const verify::ScenarioOutcome clean =
      verify::replay_scenario(fixed, out.trace);
  EXPECT_EQ(clean.total_divergences, 0u);
}

TEST(InjectedBug, RunFuzzPipelineReportsAndShrinksFailures) {
  // The full pipeline through run_fuzz with the fault armed in every
  // scenario: the report must carry failures with shrunken repros, and the
  // report directory must receive the .cdt traces CI uploads on failure.
  const std::string dir = ::testing::TempDir() + "fuzz_report_" +
                          std::to_string(static_cast<long>(::getpid()));
  verify::FuzzOptions opts;
  opts.scenarios = 4;  // cells 0..3: baseline, protocol, decay1K, decay2K
  opts.inject_writeback_loss = true;
  opts.report_dir = dir;
  opts.max_failures = 2;
  const verify::FuzzReport rep = verify::run_fuzz(opts);

  // The fault only bites configurations that decay dirty lines; at least
  // the full-decay cells must have caught it.
  ASSERT_GT(rep.divergences, 0u);
  ASSERT_FALSE(rep.failures.empty());
  for (const verify::FuzzFailure& f : rep.failures) {
    EXPECT_FALSE(f.divergences.empty());
    EXPECT_GT(f.trace.records.size(), 0u);
    EXPECT_GT(f.shrunk.records.size(), 0u);
    EXPECT_LT(f.shrunk.records.size(), f.trace.records.size());

    const std::string stem =
        dir + "/fuzz_" + std::to_string(f.scenario.index);
    std::string err;
    const auto full = workload::Trace::load(stem + ".cdt", &err);
    EXPECT_TRUE(full.has_value()) << err;
    const auto min = workload::Trace::load(stem + ".min.cdt", &err);
    ASSERT_TRUE(min.has_value()) << err;
    EXPECT_EQ(min->records.size(), f.shrunk.records.size());
    std::ifstream report(stem + ".report.txt");
    EXPECT_TRUE(report.good());
    // Clean up.
    std::remove((stem + ".cdt").c_str());
    std::remove((stem + ".min.cdt").c_str());
    std::remove((stem + ".report.txt").c_str());
  }
  std::error_code ec;
  std::filesystem::remove(dir, ec);
}

}  // namespace
