// Unit tests for the synthetic workload generators: determinism, mix
// statistics, region partitioning, generational migration, time-paced
// streaming, and the benchmark suite presets.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "cdsim/workload/benchmarks.hpp"
#include "cdsim/workload/scripted.hpp"
#include "cdsim/workload/synthetic.hpp"

namespace cdsim::workload {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig c;
  c.name = "test";
  c.mem_fraction = 0.40;
  c.store_fraction = 0.50;
  c.p_private = 0.40;
  c.p_shared_rw = 0.20;
  c.p_shared_ro = 0.10;
  c.p_stream2 = 0.05;
  c.gen_lines = 256;
  c.gen_accesses = 5000;
  c.num_generations = 4;
  c.shared_rw_lines = 128;
  c.shared_chunk_lines = 16;
  c.shared_run = 500;
  c.shared_ro_lines = 512;
  c.shared_ro_hot_lines = 64;
  c.stream_lines = 64;
  c.stream_wrap_cycles = 4096;
  c.stream2_lines = 32;
  c.stream2_wrap_cycles = 8192;
  return c;
}

TEST(Synthetic, DeterministicForSeedAndCore) {
  SyntheticWorkload a(small_config(), 0, 7), b(small_config(), 0, 7);
  SyntheticWorkload other_core(small_config(), 1, 7);
  SyntheticWorkload other_seed(small_config(), 0, 8);
  bool same = true, core_differs = false, seed_differs = false;
  Cycle t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 3;
    const MemOp oa = a.next(t), ob = b.next(t);
    same = same && oa.addr == ob.addr && oa.type == ob.type &&
           oa.gap == ob.gap;
    core_differs = core_differs || other_core.next(t).addr != oa.addr;
    seed_differs = seed_differs || other_seed.next(t).addr != oa.addr;
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(core_differs);
  EXPECT_TRUE(seed_differs);
}

TEST(Synthetic, MemFractionMatchesConfig) {
  SyntheticWorkload w(small_config(), 0, 1);
  std::uint64_t gap_sum = 0;
  const int n = 50000;
  Cycle t = 0;
  for (int i = 0; i < n; ++i) gap_sum += w.next(t += 3).gap;
  const double mem_frac =
      static_cast<double>(n) / static_cast<double>(n + gap_sum);
  EXPECT_NEAR(mem_frac, small_config().mem_fraction, 0.01);
}

TEST(Synthetic, RegionOpSharesMatchConfig) {
  const SyntheticConfig cfg = small_config();
  SyntheticWorkload w(cfg, 0, 1);
  std::uint64_t counts[5] = {};
  const int n = 200000;
  Cycle t = 0;
  for (int i = 0; i < n; ++i) {
    const MemOp op = w.next(t += 3);
    const auto region = (op.addr >> 40) & 7;  // 1=priv 2=rw 3=ro 4=stream
    ASSERT_GE(region, 1u);
    ASSERT_LE(region, 4u);
    counts[region] += 1;
  }
  const double total = n;
  EXPECT_NEAR(counts[1] / total, cfg.p_private, 0.02);
  EXPECT_NEAR(counts[2] / total, cfg.p_shared_rw, 0.02);
  EXPECT_NEAR(counts[3] / total, cfg.p_shared_ro, 0.02);
  // Streams share one region tag; both buffers land in region 4.
  EXPECT_NEAR(counts[4] / total, cfg.p_stream() + cfg.p_stream2, 0.02);
}

TEST(Synthetic, SharedRegionsAreCommonPrivateArePartitioned) {
  const SyntheticConfig cfg = small_config();
  SyntheticWorkload w0(cfg, 0, 1), w1(cfg, 1, 1);
  EXPECT_EQ(w0.shared_rw_base(), w1.shared_rw_base());
  EXPECT_EQ(w0.shared_ro_base(), w1.shared_ro_base());
  EXPECT_NE(w0.private_base(), w1.private_base());
  EXPECT_NE(w0.stream_base(), w1.stream_base());
}

TEST(Synthetic, ReadOnlyRegionNeverStores) {
  SyntheticConfig cfg = small_config();
  cfg.p_shared_ro = 0.80;
  cfg.p_private = 0.10;
  cfg.p_shared_rw = 0.05;
  cfg.p_stream2 = 0.0;
  SyntheticWorkload w(cfg, 0, 3);
  Cycle t = 0;
  for (int i = 0; i < 20000; ++i) {
    const MemOp op = w.next(t += 3);
    if (((op.addr >> 40) & 7) == 3) {
      EXPECT_EQ(op.type, AccessType::kLoad);
    }
  }
}

TEST(Synthetic, GenerationalMigrationMovesFootprint) {
  SyntheticConfig cfg = small_config();
  cfg.p_private = 1.0;
  cfg.p_shared_rw = 0.0;
  cfg.p_shared_ro = 0.0;
  cfg.p_stream2 = 0.0;
  // All ops private: generation advances every gen_accesses ops.
  SyntheticWorkload w(cfg, 0, 1);
  std::set<std::uint64_t> first_gen_lines, second_gen_lines;
  Cycle t = 0;
  for (std::uint64_t i = 0; i < cfg.gen_accesses; ++i) {
    first_gen_lines.insert((w.next(t += 3).addr >> 6) % (cfg.gen_lines * 8));
  }
  for (std::uint64_t i = 0; i < cfg.gen_accesses; ++i) {
    second_gen_lines.insert((w.next(t += 3).addr >> 6) % (cfg.gen_lines * 8));
  }
  // The two generations occupy disjoint line ranges.
  for (const auto l : second_gen_lines) {
    EXPECT_EQ(first_gen_lines.count(l), 0u) << l;
  }
}

TEST(Synthetic, StreamPositionIsTimePaced) {
  SyntheticConfig cfg = small_config();
  cfg.p_private = 0.0;
  cfg.p_shared_rw = 0.0;
  cfg.p_shared_ro = 0.0;
  cfg.p_stream2 = 0.0;    // everything from stream 1
  cfg.stream_burst = 1;   // every op samples the clock
  const Cycle period = cfg.stream_wrap_cycles / cfg.stream_lines;

  // The streamed address is a pure function of time: independent of seed
  // and of how many ops were drawn before.
  const Addr a = SyntheticWorkload(cfg, 0, 1).next(10 * period).addr;
  const Addr b = SyntheticWorkload(cfg, 0, 99).next(10 * period).addr;
  EXPECT_EQ(a, b);

  // The position advances one line per period and wraps exactly at the
  // configured wrap interval.
  const Addr next_line =
      SyntheticWorkload(cfg, 0, 1).next(11 * period).addr;
  EXPECT_EQ(next_line, a + cfg.line_bytes);
  const Addr wrapped =
      SyntheticWorkload(cfg, 0, 1).next(10 * period + cfg.stream_wrap_cycles)
          .addr;
  EXPECT_EQ(wrapped, a);
}

TEST(Synthetic, FootprintBytesAccountsAllRegions) {
  const SyntheticConfig cfg = small_config();
  const std::uint64_t lines = cfg.gen_lines * cfg.num_generations +
                              cfg.shared_rw_lines + cfg.shared_ro_lines +
                              cfg.stream_lines + cfg.stream2_lines;
  EXPECT_EQ(cfg.footprint_bytes(), lines * cfg.line_bytes);
}

// --- benchmark suite ----------------------------------------------------------

TEST(BenchmarkSuite, HasThePaperSixInOrder) {
  const auto& suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].config.name, "mpeg2enc");
  EXPECT_EQ(suite[1].config.name, "mpeg2dec");
  EXPECT_EQ(suite[2].config.name, "facerec");
  EXPECT_EQ(suite[3].config.name, "WATER-NS");
  EXPECT_EQ(suite[4].config.name, "FMM");
  EXPECT_EQ(suite[5].config.name, "VOLREND");
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FALSE(suite[i].scientific);
  for (std::size_t i = 3; i < 6; ++i) EXPECT_TRUE(suite[i].scientific);
}

TEST(BenchmarkSuite, LookupByName) {
  EXPECT_EQ(benchmark_by_name("FMM").config.name, "FMM");
  EXPECT_TRUE(benchmark_by_name("WATER-NS").scientific);
}

TEST(BenchmarkSuite, ConfigsAreInternallyConsistent) {
  for (const auto& b : benchmark_suite()) {
    const auto& c = b.config;
    EXPECT_GT(c.p_stream(), 0.0) << c.name;
    EXPECT_LE(c.p_private + c.p_shared_rw + c.p_shared_ro + c.p_stream2, 1.0)
        << c.name;
    EXPECT_GE(c.shared_rw_lines, c.shared_chunk_lines) << c.name;
    EXPECT_LE(c.shared_ro_hot_lines, c.shared_ro_lines) << c.name;
    // Streams must be constructible and their wrap periods resolvable.
    EXPECT_GE(c.stream_wrap_cycles / c.stream_lines, 1u) << c.name;
    // Footprint stays within a sane band (DESIGN.md §6 calibration).
    EXPECT_GT(c.footprint_bytes(), 512 * KiB) << c.name;
    EXPECT_LT(c.footprint_bytes(), 4 * MiB) << c.name;
  }
}

TEST(BenchmarkSuite, StreamsInstantiateForEveryCore) {
  for (const auto& b : benchmark_suite()) {
    for (CoreId c = 0; c < 4; ++c) {
      auto s = make_stream(b, c, 42);
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->name(), b.config.name);
      Cycle t = 0;
      for (int i = 0; i < 100; ++i) {
        const MemOp op = s->next(t += 3);
        EXPECT_NE(op.addr, 0u);
      }
    }
  }
}

// --- scripted ---------------------------------------------------------------------

TEST(Scripted, LoopsByDefault) {
  std::vector<MemOp> ops = {
      {AccessType::kLoad, 0x40, 1, false, 0},
      {AccessType::kStore, 0x80, 2, false, 0},
  };
  ScriptedWorkload w(ops);
  EXPECT_EQ(w.next(0).addr, 0x40u);
  EXPECT_EQ(w.next(0).addr, 0x80u);
  EXPECT_EQ(w.next(0).addr, 0x40u);  // wrapped
}

TEST(Scripted, RepeatLastHoldsFinalOp) {
  std::vector<MemOp> ops = {
      {AccessType::kLoad, 0x40, 1, false, 0},
      {AccessType::kLoad, 0x80, 1, false, 0},
  };
  ScriptedWorkload w(ops, ScriptedWorkload::AtEnd::kRepeatLast);
  (void)w.next(0);
  EXPECT_EQ(w.next(0).addr, 0x80u);
  EXPECT_EQ(w.next(0).addr, 0x80u);
  EXPECT_EQ(w.next(0).addr, 0x80u);
}

TEST(Scripted, RepeatLastRestampsDependenceConsistently) {
  // The final op is a dependent pointer-chase load. It must be returned
  // verbatim once (it is part of the script); every repeat after that is
  // the same op re-stamped independent — a repeated dependent load would
  // chain on its own previous issue and serialize the filler tail, making
  // replay timing depend on the repeat count instead of the script.
  std::vector<MemOp> ops = {
      {AccessType::kLoad, 0x40, 2, false, 1},
      {AccessType::kLoad, 0x80, 5, true, 3},
  };
  ScriptedWorkload w(ops, ScriptedWorkload::AtEnd::kRepeatLast);
  (void)w.next(0);

  const MemOp last = w.next(0);  // the scripted final op, verbatim
  EXPECT_EQ(last.addr, 0x80u);
  EXPECT_TRUE(last.dependent);
  EXPECT_EQ(last.gap, 5u);
  EXPECT_EQ(last.chain, 3u);

  for (int i = 0; i < 3; ++i) {
    const MemOp rep = w.next(0);  // tail filler: re-stamped
    EXPECT_EQ(rep.addr, 0x80u);
    EXPECT_EQ(rep.type, AccessType::kLoad);
    EXPECT_FALSE(rep.dependent);
    EXPECT_EQ(rep.gap, 5u);    // pacing preserved
    EXPECT_EQ(rep.chain, 3u);  // identity preserved
  }
}

TEST(Scripted, LoopModeNeverRestamps) {
  std::vector<MemOp> ops = {
      {AccessType::kLoad, 0x40, 1, true, 2},
  };
  ScriptedWorkload w(ops);  // kLoop
  for (int i = 0; i < 4; ++i) {
    const MemOp op = w.next(0);
    EXPECT_TRUE(op.dependent) << i;
    EXPECT_EQ(op.chain, 2u) << i;
  }
}

}  // namespace
}  // namespace cdsim::workload
