// cdlint fixture: deterministic unordered-container use — lookups, erases
// by key, and iteration over *ordered* structures. Zero findings expected.
#include <map>
#include <unordered_map>
#include <vector>

int lookups(std::unordered_map<int, int>& m, const std::vector<int>& keys) {
  int hits = 0;
  for (int k : keys) {                  // range-for over a vector: fine
    if (m.find(k) != m.end()) ++hits;   // find/end compare: a lookup
    if (m.count(k) != 0) ++hits;
  }
  m.erase(7);                           // erase by key: no iteration
  return hits;
}

// NB: named `om`, not `m` — cdlint's name table is file-local (documented
// heuristic), so reusing an unordered variable's name would false-positive.
double ordered_sum(const std::map<int, double>& om) {
  double total = 0.0;
  for (const auto& [k, v] : om) total += v;  // std::map: deterministic order
  return total;
}
