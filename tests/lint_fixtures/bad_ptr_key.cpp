// cdlint fixture: pointer-keyed ordered containers (address order is
// allocator order) vs. benign pointer *values* and stable-id keys.
#include <map>
#include <set>

struct Node {
  int id = 0;
};

std::map<Node*, int> reach_count;        // CDLINT-EXPECT: ptr-key
std::set<const Node*> visited;           // CDLINT-EXPECT: ptr-key
std::multimap<Node*, Node*> edges;       // CDLINT-EXPECT: ptr-key

// Benign: pointers as VALUES, stable ids as keys, and a non-std `set`.
std::map<int, Node*> by_id;
std::set<unsigned long> line_addrs;
template <typename T>
struct set {};
set<Node*> not_a_std_set;
