// cdlint fixture: every flavor of nondeterministic unordered iteration.
// The expect-marker comments trailing each bad line are the golden
// expectations the harness checks lint findings against, line-exact.
#include <string>
#include <unordered_map>
#include <unordered_set>

using Shadow = std::unordered_map<unsigned long, unsigned long>;

double sum_versions(const std::unordered_map<int, double>& versions) {
  std::unordered_map<int, double> copy = versions;
  double total = 0.0;
  for (const auto& [addr, v] : copy) {  // CDLINT-EXPECT: unordered-iter
    total += v;                         // CDLINT-EXPECT: float-accum-unordered
  }
  return total;
}

int iterator_walk() {
  std::unordered_set<int> live;
  int n = 0;
  for (auto it = live.begin(); it != live.end(); ++it) {  // CDLINT-EXPECT: unordered-iter
    ++n;
  }
  return n;
}

unsigned long alias_walk() {
  Shadow shadow;
  unsigned long acc = 0;
  for (const auto& kv : shadow) {  // CDLINT-EXPECT: unordered-iter
    acc ^= kv.first;               // integer fold: no float-accum finding
  }
  return acc;
}
