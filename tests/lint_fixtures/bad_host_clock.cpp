// cdlint fixture: a host-profiling timer written OUTSIDE
// include/cdsim/common/host_timer.hpp. The repo allowlist grants raw-random
// to that one header only, so the same shapes anywhere else — a scoped
// wall-clock timer pasted into a component, say — must still fire. This is
// what keeps host-time measurement confined to the single audited seam.
#include <chrono>
#include <cstdint>

struct LocalScopedTimer {
  std::uint64_t* sink = nullptr;
  std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();  // CDLINT-EXPECT: raw-random
  ~LocalScopedTimer() {
    const auto t1 = std::chrono::steady_clock::now();  // CDLINT-EXPECT: raw-random
    *sink += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  }
};

std::uint64_t profile_something() {
  std::uint64_t ns = 0;
  {
    LocalScopedTimer t{&ns};
  }
  return ns;
}

// Benign lookalikes that must NOT fire: simulated-time vocabulary that
// merely mentions clocks without reading one.
struct CycleClock {
  unsigned long now_cycle = 0;
  unsigned long now() const { return now_cycle; }
};
unsigned long benign(const CycleClock& c) { return c.now(); }
