// cdlint fixture: indeterminate fields in a header the harness registers
// under the uninit-field scope. Initialized/static/function members and
// non-scalar types must not fire.
#pragma once
#include <cstdint>
#include <string>
#include <vector>

struct Packet {
  std::uint64_t line;        // CDLINT-EXPECT: uninit-field
  std::uint32_t bytes;       // CDLINT-EXPECT: uninit-field
  bool posted;               // CDLINT-EXPECT: uninit-field
  double energy_pj;          // CDLINT-EXPECT: uninit-field
  Packet* next;              // CDLINT-EXPECT: uninit-field

  std::uint64_t seq = 0;               // initialized: fine
  bool valid{false};                   // braced init: fine
  static constexpr int kMax = 8;       // static: fine
  std::string tag;                     // non-scalar: default ctor is fine
  std::vector<int> lanes;              // non-scalar: fine
  unsigned flags : 3;                  // bitfield: skipped (has ':')
  std::uint32_t size() const { return bytes; }  // function: fine
};

class Router {
 public:
  explicit Router(int id) : id_(id) {}
  int id() const { return id_; }

 private:
  int id_;                   // CDLINT-EXPECT: uninit-field
};
