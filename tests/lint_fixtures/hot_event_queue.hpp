// cdlint fixture: std::function on a file the harness registers as a hot
// path (stand-in for common/event_queue.hpp, where SmallFn is mandated).
#pragma once
#include <functional>

struct FakeQueue {
  using Callback = std::function<void()>;  // CDLINT-EXPECT: hot-std-function
  void schedule(std::function<void()> cb);  // CDLINT-EXPECT: hot-std-function
};
