// cdlint fixture: chunk-codec idioms from the .cdt v2 reader/writer —
// varint encode/decode loops, FNV-1a checksum accumulation in integer
// arithmetic, zigzag folding, byte packing into a std::string buffer, and
// an NSDMI'd codec-state struct. All deterministic; zero findings expected.
#include <cstdint>
#include <string>
#include <vector>

namespace {

// Codec state with every scalar initialized (the uninit_field rule watches
// this directory): per-core delta bases plus the running chunk totals.
struct ChunkState {
  std::uint64_t checksum = 14695981039346656037ull;
  std::uint32_t records = 0;
  std::uint64_t prev_addr = 0;
  bool sealed = false;
};

// FNV-1a over a byte buffer: integer accumulation, no float totals.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// LEB128-style varint: shift/mask loops are pure integer control flow.
void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool get_varint(const std::string& in, std::size_t& off, std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (off >= in.size()) return false;
    const auto byte = static_cast<unsigned char>(in[off++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

// Zigzag fold: signed deltas into small unsigned varints.
std::uint64_t zigzag(std::uint64_t delta) {
  return (delta << 1) ^ (delta >> 63 ? ~0ull : 0ull);
}

}  // namespace

// Round-trips a delta-encoded address walk through the codec primitives.
bool codec_round_trip(const std::vector<std::uint64_t>& addrs) {
  ChunkState st;
  std::string buf;
  for (const std::uint64_t a : addrs) {
    put_varint(buf, zigzag(a - st.prev_addr));
    st.prev_addr = a;
    ++st.records;
  }
  st.checksum = fnv1a(buf);
  st.sealed = true;

  std::size_t off = 0;
  std::uint64_t prev = 0;
  for (std::uint32_t i = 0; i < st.records; ++i) {
    std::uint64_t z = 0;
    if (!get_varint(buf, off, z)) return false;
    prev += (z >> 1) ^ (~(z & 1) + 1);
    if (prev != addrs[i]) return false;
  }
  return st.sealed && off == buf.size() && st.checksum == fnv1a(buf);
}
