// cdlint fixture: the two escape hatches. The harness feeds an allowlist
// granting `unordered-iter` for this file, and the second site uses an
// inline directive — both findings must come back with allowlisted=true.
#include <unordered_map>

int file_grant() {
  std::unordered_map<int, int> m;
  int n = 0;
  for (const auto& kv : m) n += kv.second;  // suppressed by allowlist file
  return n;
}

int inline_grant() {
  std::unordered_map<int, int> m;
  int n = 0;
  // cdlint: allow(unordered-iter) order-independent integer fold, proven by test
  for (const auto& kv : m) n += kv.second;
  return n;
}
