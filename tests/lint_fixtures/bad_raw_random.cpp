// cdlint fixture: every banned nondeterminism source.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned seed_soup() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // CDLINT-EXPECT: raw-random, raw-random
  unsigned s = static_cast<unsigned>(rand());             // CDLINT-EXPECT: raw-random
  std::random_device rd;                                  // CDLINT-EXPECT: raw-random
  std::mt19937 gen(rd());                                 // CDLINT-EXPECT: raw-random
  s ^= static_cast<unsigned>(gen());
  s ^= static_cast<unsigned>(clock());                    // CDLINT-EXPECT: raw-random
  s ^= static_cast<unsigned>(
      std::chrono::steady_clock::now().time_since_epoch().count());  // cdlint: allow(raw-random) exercised by the inline-directive test
  return s;
}

// Benign lookalikes that must NOT fire: member access and project names.
struct Timing {
  unsigned long decay_time = 0;
  unsigned long time_to_live() const { return decay_time; }
};
unsigned long benign(const Timing& t) { return t.time_to_live(); }
