// Fixture for the hot-alloc rule: steady-state heap allocation shapes that
// must never appear in a hot-path header (cache/, noc/, bus/, core/),
// alongside the benign shapes the rule must leave alone.
//
// Linted with the fixture path registered as a hot_alloc scope; the
// scope-negative test lints the same file under the default config and
// expects silence.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

namespace fixture {

struct Record {
  std::uint64_t key = 0;
  int value = 0;
};

struct BadFabric {
  // Chunk-allocating FIFO on the event path.
  std::deque<Record> waitq;  // CDLINT-EXPECT: hot-alloc

  // Node-per-entry associative containers.
  std::map<std::uint64_t, Record> by_line;  // CDLINT-EXPECT: hot-alloc
  std::unordered_map<std::uint64_t, int> idx;  // CDLINT-EXPECT: hot-alloc

  void enqueue() {
    // Per-object allocations per transaction.
    auto owned = std::make_unique<Record>();  // CDLINT-EXPECT: hot-alloc
    auto shared = std::make_shared<Record>();  // CDLINT-EXPECT: hot-alloc
    Record* raw = new Record();  // CDLINT-EXPECT: hot-alloc
    delete raw;
    (void)owned;
    (void)shared;
  }
};

struct GoodFabric {
  // The blessed shapes: contiguous storage the constructor pre-sizes.
  std::vector<Record> slots;
  std::vector<std::uint32_t> free_list;

  explicit GoodFabric(std::size_t budget) {
    slots.reserve(budget);
    free_list.reserve(budget);
  }

  // `operator new` is the customization point, not an allocation site.
  static void* operator new(std::size_t n);

  // An unqualified local name that happens to collide with a banned
  // container name is not std::deque.
  struct deque {
    int depth = 0;
  };
  deque local;
};

}  // namespace fixture
