// Directed tests of the three-level hierarchy: the shared home-banked L3
// (sim::L3Cache on the generic cache::CacheLevel engine) driven standalone
// through its noc::MemorySideCache interface, plus end-to-end CmpSystem
// runs proving the L3 filters memory traffic, decay runs at every level,
// and the whole machine stays deterministic and invariant-clean.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/sim/l3_cache.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::sim {
namespace {

/// One-bank L3 with a counting memory port.
struct L3Harness {
  EventQueue eq;
  std::vector<Addr> mem_writes;
  L3Cache l3;

  explicit L3Harness(decay::Technique tech = decay::Technique::kProtocol,
                     Cycle decay_time = 4096, std::uint32_t ways = 2)
      : l3(eq, make_cfg(ways),
           decay::DecayConfig{tech, decay_time, 4}, /*num_banks=*/1) {
    l3.connect_memory_port(
        [this](std::uint32_t /*bank*/, Addr line, std::uint32_t /*bytes*/) {
          mem_writes.push_back(line);
        });
    l3.start();
  }

  ~L3Harness() { l3.stop(); }

  static L3Config make_cfg(std::uint32_t ways) {
    L3Config cfg;
    cfg.bank_bytes = 16 * KiB;  // 128 sets x 2 ways: evictable in tests
    cfg.ways = ways;
    return cfg;
  }

  void run_for(Cycle cycles) { eq.run_until(eq.now() + cycles); }
};

// --- fill / absorb / invalidate paths --------------------------------------

TEST(L3Bank, MissThenInstallThenHit) {
  L3Harness h;
  EXPECT_FALSE(h.l3.lookup_for_fill(0, 0x1000));  // cold miss
  h.l3.install_from_memory(0, 0x1000);
  EXPECT_TRUE(h.l3.has_line(0, 0x1000));
  EXPECT_FALSE(h.l3.line_dirty(0, 0x1000));
  EXPECT_TRUE(h.l3.lookup_for_fill(0, 0x1000));  // now a hit
  EXPECT_EQ(h.l3.hits(), 1u);
  EXPECT_EQ(h.l3.misses(), 1u);
  EXPECT_EQ(h.l3.fills(), 1u);
}

TEST(L3Bank, AbsorbedWritebackIsDirtyAndOverwritesCleanCopy) {
  L3Harness h;
  h.l3.install_from_memory(0, 0x2000);
  EXPECT_FALSE(h.l3.line_dirty(0, 0x2000));
  h.l3.absorb_writeback(0, 0x2000);  // in-place: clean copy superseded
  EXPECT_TRUE(h.l3.line_dirty(0, 0x2000));
  h.l3.absorb_writeback(0, 0x3000);  // allocating absorb
  EXPECT_TRUE(h.l3.line_dirty(0, 0x3000));
  EXPECT_TRUE(h.mem_writes.empty());  // nothing reached memory
}

TEST(L3Bank, DirtyVictimEvictionWritesToMemory) {
  L3Harness h;
  // 16 KiB, 2-way, 64 B lines -> 128 sets; set stride = 128 * 64.
  const Addr stride = 128 * 64;
  h.l3.absorb_writeback(0, 0x0);             // dirty, will become LRU
  h.l3.install_from_memory(0, stride);       // fills the other way
  h.l3.install_from_memory(0, 2 * stride);   // evicts the dirty line
  EXPECT_FALSE(h.l3.has_line(0, 0x0));
  ASSERT_EQ(h.mem_writes.size(), 1u);
  EXPECT_EQ(h.mem_writes[0], 0x0u);
  EXPECT_EQ(h.l3.evictions(), 1u);
  EXPECT_EQ(h.l3.writebacks(), 1u);
}

TEST(L3Bank, CleanVictimEvictionIsSilent) {
  L3Harness h;
  const Addr stride = 128 * 64;
  h.l3.install_from_memory(0, 0x0);
  h.l3.install_from_memory(0, stride);
  h.l3.install_from_memory(0, 2 * stride);
  EXPECT_EQ(h.l3.evictions(), 1u);
  EXPECT_TRUE(h.mem_writes.empty());
}

TEST(L3Bank, InvalidateDropsEvenDirtyCopies) {
  // A memory-updating owner flush supersedes the bank's data: the copy is
  // dropped with NO memory write (the flush carries the newer version).
  L3Harness h;
  h.l3.absorb_writeback(0, 0x4000);
  h.l3.invalidate(0, 0x4000);
  EXPECT_FALSE(h.l3.has_line(0, 0x4000));
  EXPECT_TRUE(h.mem_writes.empty());
  h.l3.invalidate(0, 0x4000);  // absent line: no-op
}

// --- decay legality at the last level --------------------------------------

TEST(L3Bank, CleanLineDecaysSilently) {
  L3Harness h(decay::Technique::kDecay, 4096);
  h.l3.install_from_memory(0, 0x1000);
  h.run_for(3 * 4096);
  EXPECT_FALSE(h.l3.has_line(0, 0x1000));
  EXPECT_EQ(h.l3.decay_turnoffs(), 1u);
  EXPECT_TRUE(h.mem_writes.empty());  // clean: droppable for free
}

TEST(L3Bank, DirtyLineDecayWritesBackFirst) {
  L3Harness h(decay::Technique::kDecay, 4096);
  h.l3.absorb_writeback(0, 0x2000);
  h.run_for(3 * 4096);
  EXPECT_FALSE(h.l3.has_line(0, 0x2000));
  EXPECT_EQ(h.l3.decay_turnoffs(), 1u);
  ASSERT_EQ(h.mem_writes.size(), 1u);  // §III: dirty must reach memory
  EXPECT_EQ(h.mem_writes[0], 0x2000u);
}

TEST(L3Bank, SelectiveDecaySparesDirtyBanks) {
  L3Harness h(decay::Technique::kSelectiveDecay, 4096);
  h.l3.install_from_memory(0, 0x1000);  // clean: armed
  h.l3.absorb_writeback(0, 0x2000);     // dirty: disarmed
  h.run_for(4 * 4096);
  EXPECT_FALSE(h.l3.has_line(0, 0x1000));  // decayed
  EXPECT_TRUE(h.l3.has_line(0, 0x2000));   // spared
  EXPECT_TRUE(h.mem_writes.empty());       // never a dirty turn-off
}

TEST(L3Bank, TouchRestartsTheCountdown) {
  L3Harness h(decay::Technique::kDecay, 4096);
  h.l3.install_from_memory(0, 0x1000);
  for (int i = 0; i < 6; ++i) {
    h.run_for(2048);
    ASSERT_TRUE(h.l3.lookup_for_fill(0, 0x1000)) << "round " << i;
  }
  EXPECT_TRUE(h.l3.has_line(0, 0x1000));
  EXPECT_EQ(h.l3.decay_turnoffs(), 0u);
}

TEST(L3Bank, DecayInducedMissesAreAttributed) {
  L3Harness h(decay::Technique::kDecay, 4096);
  h.l3.install_from_memory(0, 0x1000);
  h.run_for(3 * 4096);
  ASSERT_FALSE(h.l3.has_line(0, 0x1000));
  EXPECT_FALSE(h.l3.lookup_for_fill(0, 0x1000));  // refetch of a killed line
  EXPECT_EQ(h.l3.decay_induced_misses(), 1u);
}

// --- end-to-end three-level machine ----------------------------------------

SystemConfig three_level_base() {
  SystemConfig cfg;
  cfg.num_cores = 8;
  cfg.topology = noc::Topology::kDirectoryMesh;
  cfg.hierarchy = Hierarchy::kThreeLevel;
  cfg.total_l2_bytes = 1 * MiB;
  cfg.total_l3_bytes = 4 * MiB;
  cfg.instructions_per_core = 30000;
  return cfg;
}

TEST(ThreeLevelSystem, L3FiltersMemoryTraffic) {
  SystemConfig cfg3 = three_level_base();
  SystemConfig cfg2 = cfg3;
  cfg2.hierarchy = Hierarchy::kTwoLevel;
  const auto& bench = workload::benchmark_by_name("FMM");
  const RunMetrics m3 = run_config(cfg3, bench);
  const RunMetrics m2 = run_config(cfg2, bench);

  // Same cores, same L2s, same workload stream (the seed derivation does
  // not include the hierarchy): the added L3 can only remove off-chip
  // traffic — absorbed write-backs and bank-served refetches.
  EXPECT_EQ(m3.hierarchy, "3L");
  EXPECT_EQ(m2.hierarchy, "2L");
  EXPECT_GT(m3.l3.accesses, 0u);
  EXPECT_GT(m3.l3.hits, 0u);
  EXPECT_LT(m3.mem_bytes, m2.mem_bytes);
  EXPECT_EQ(m3.total_l3_bytes, cfg3.total_l3_bytes);
  EXPECT_EQ(m2.total_l3_bytes, 0u);
}

TEST(ThreeLevelSystem, InvariantsHoldAndRunsAreDeterministic) {
  SystemConfig cfg = three_level_base();
  cfg.protocol = coherence::Protocol::kMoesi;
  cfg.decay = decay::DecayConfig{decay::Technique::kDecay, 8192, 4};
  cfg.l1_decay = cfg.decay;
  cfg.l3_decay = cfg.decay;
  const auto& bench = workload::benchmark_by_name("WATER-NS");

  const SystemConfig fixed = normalized_run_config(cfg, bench);
  CmpSystem sys(fixed, bench);
  const RunMetrics a = sys.run();
  EXPECT_GT(sys.check_coherence_invariants(), 0u);

  CmpSystem sys2(fixed, bench);
  const RunMetrics b = sys2.run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.l3.hits, b.l3.hits);
  EXPECT_EQ(a.l3.decay_turnoffs, b.l3.decay_turnoffs);

  // Decay really fired at every level of this machine.
  EXPECT_GT(a.l1.decay_turnoffs, 0u);
  EXPECT_GT(a.l2.decay_turnoffs, 0u);
  EXPECT_GT(a.l3.decay_turnoffs, 0u);
  // And the L3 ledger components are live (leakage always; dynamic when
  // the banks saw traffic).
  EXPECT_GT(a.ledger.get(power::Component::kL3Leakage), 0.0);
  EXPECT_GT(a.ledger.get(power::Component::kL3Dynamic), 0.0);
}

TEST(ThreeLevelSystem, LevelPoliciesDescribeTheHierarchy) {
  SystemConfig cfg = three_level_base();
  cfg.instructions_per_core = 1000;
  workload::Benchmark bench = workload::benchmark_by_name("FMM");
  CmpSystem sys(cfg, bench);
  // The LevelPolicy is the machine-readable form of DESIGN.md's
  // per-level legality table.
  EXPECT_TRUE(sys.l1(0).policy().write_through);
  EXPECT_FALSE(sys.l1(0).policy().allocate_on_write);
  EXPECT_FALSE(sys.l1(0).policy().coherent);
  EXPECT_GT(sys.l1(0).policy().write_buffer_entries, 0u);
  EXPECT_TRUE(sys.l2(0).policy().coherent);
  EXPECT_TRUE(sys.l2(0).policy().inclusive_above);
  EXPECT_TRUE(sys.l2(0).policy().allocate_on_write);
  EXPECT_FALSE(sys.l3().policy().coherent);      // home-bank serialized
  EXPECT_FALSE(sys.l3().policy().inclusive_above);  // memory-side
  EXPECT_EQ(sys.l3().num_banks(), cfg.num_cores);
}

}  // namespace
}  // namespace cdsim::sim
