// cdtrace — converter and toolbox for .cdt trace files.
//
//   cdtrace gen <out> --records=N [--cores=N] [--seed=N] [--text]
//                     [--chunk-records=N]
//       Generates a synthetic multi-core address trace: per-core pointer
//       churn over a private region, a shared pool, and random far
//       touches (deliberately delta-hostile so compressed sizes stay
//       honest). --text writes the "simple" text format below instead of
//       .cdt v2 — that is what CI feeds back through `convert`.
//
//   cdtrace convert <in> <out> [--format=simple|lackey] [--cores=N]
//                   [--chunk-records=N]
//       Ingests a text address trace into chunked .cdt v2, streaming —
//       O(chunk) memory regardless of input size.
//
//       simple (ChampSim-style one-access-per-line dumps):
//           <core> <L|S|I> <hex-addr> <gap>
//         '#' starts a comment; blank lines are skipped.
//
//       lackey (Valgrind --tool=lackey --trace-mem=yes output):
//           I  0023c790,2     instruction fetch: folded into the next
//                             record's gap (one retired instruction)
//            L 04ebab53,1     data load
//            S 1c0000b0,4     data store
//            M 0421c7f0,4     modify: expanded to load + store
//         Lackey is single-threaded; records land on core 0 unless
//         --cores=N spreads them round-robin per line.
//
//   cdtrace inspect <file>
//       Header/footer summary (no chunk decodes): cores, chunks, records,
//       per-core budgets, compression ratio.
//
//   cdtrace inspect --timeline <trace.json>
//       Validates a Chrome-trace-event timeline emitted by the simulator's
//       --trace-out flag (full JSON well-formedness walk, first error with
//       byte offset) and summarizes it: tracks, spans, instants, and the
//       covered cycle range.
//
//   cdtrace head <file> [--n=N]
//       First N records (default 10) in the simple text format.
//
//   cdtrace stats <file>
//       Full streaming pass: per-core and per-type counts, address range,
//       gap total. Works on v1 and v2 files alike.

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cdsim/common/rng.hpp"
#include "cdsim/obs/json_check.hpp"
#include "cdsim/workload/trace_v2.hpp"

namespace {

using namespace cdsim;

int usage() {
  std::fprintf(stderr,
               "usage: cdtrace gen <out> --records=N [--cores=N] [--seed=N] "
               "[--text] [--chunk-records=N]\n"
               "       cdtrace convert <in> <out> [--format=simple|lackey] "
               "[--cores=N] [--chunk-records=N]\n"
               "       cdtrace inspect <file>\n"
               "       cdtrace inspect --timeline <trace.json>\n"
               "       cdtrace head <file> [--n=N]\n"
               "       cdtrace stats <file>\n");
  return 2;
}

struct Flags {
  std::uint64_t records = 0;
  std::uint32_t cores = 4;
  bool cores_set = false;
  std::uint64_t seed = 1;
  std::uint64_t n = 10;
  std::uint32_t chunk_records =
      workload::ChunkedTraceWriter::kDefaultChunkRecords;
  std::string format = "simple";
  bool text = false;
  bool timeline = false;
  std::vector<std::string> paths;
};

bool parse_flags(int argc, char** argv, int first, Flags& f) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto num = [&arg](std::size_t prefix) {
      return std::strtoull(arg.c_str() + prefix, nullptr, 10);
    };
    if (arg.rfind("--records=", 0) == 0) {
      f.records = num(10);
    } else if (arg.rfind("--cores=", 0) == 0) {
      f.cores = static_cast<std::uint32_t>(num(8));
      f.cores_set = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      f.seed = num(7);
    } else if (arg.rfind("--n=", 0) == 0) {
      f.n = num(4);
    } else if (arg.rfind("--chunk-records=", 0) == 0) {
      f.chunk_records = static_cast<std::uint32_t>(num(16));
    } else if (arg.rfind("--format=", 0) == 0) {
      f.format = arg.substr(9);
    } else if (arg == "--text") {
      f.text = true;
    } else if (arg == "--timeline") {
      f.timeline = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "cdtrace: unknown flag \"%s\"\n", arg.c_str());
      return false;
    } else {
      f.paths.push_back(arg);
    }
  }
  return true;
}

const char* type_letter(AccessType t) {
  switch (t) {
    case AccessType::kStore: return "S";
    case AccessType::kIFetch: return "I";
    default: return "L";
  }
}

/// Deterministic synthetic workload: sequential private churn, a shared
/// hot pool, and uniform-random far touches that defeat delta coding.
void gen_record(Xoshiro256& rng, std::uint32_t cores,
                workload::TraceRecord& rec) {
  const std::uint64_t r = rng.next();
  rec.core = static_cast<CoreId>(r % cores);
  const Addr priv = 0x100000000ull * (rec.core + 1);
  const std::uint64_t kind = (r >> 8) % 100;
  if (kind < 50) {  // private sequential-ish churn
    rec.op.addr = priv + ((r >> 16) % (1u << 20)) * 64;
  } else if (kind < 65) {  // shared pool: cross-core coherence traffic
    rec.op.addr = 0x20000000000ull + ((r >> 16) % 4096) * 64;
  } else {  // far touch: uniform over 1 TiB, ~5-byte deltas when encoded
    rec.op.addr = (r >> 12) % (1ull << 40);
  }
  rec.op.type = kind % 10 == 0
                    ? AccessType::kStore
                    : (kind % 37 == 0 ? AccessType::kIFetch
                                      : AccessType::kLoad);
  rec.op.gap = static_cast<std::uint32_t>((r >> 56) % 4);
  rec.op.dependent = (r >> 61) % 8 == 0;
  rec.op.chain = static_cast<std::uint8_t>((r >> 48) % 4);
}

int cmd_gen(const Flags& f) {
  if (f.paths.size() != 1 || f.records == 0 || f.cores == 0 ||
      f.cores > 255) {
    return usage();
  }
  Xoshiro256 rng(f.seed);
  workload::TraceRecord rec;
  if (f.text) {
    std::ofstream out(f.paths[0], std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cdtrace: cannot open %s\n", f.paths[0].c_str());
      return 1;
    }
    out << "# cdtrace gen: <core> <L|S|I> <hex-addr> <gap>\n";
    for (std::uint64_t i = 0; i < f.records; ++i) {
      gen_record(rng, f.cores, rec);
      out << static_cast<unsigned>(rec.core) << ' '
          << type_letter(rec.op.type) << ' ' << std::hex << rec.op.addr
          << std::dec << ' ' << rec.op.gap << '\n';
    }
    if (!out.good()) {
      std::fprintf(stderr, "cdtrace: short write to %s\n",
                   f.paths[0].c_str());
      return 1;
    }
    return 0;
  }
  workload::ChunkedTraceWriter w(f.paths[0], f.cores, f.chunk_records);
  for (std::uint64_t i = 0; i < f.records; ++i) {
    gen_record(rng, f.cores, rec);
    w.append(rec);
  }
  if (!w.finish()) {
    std::fprintf(stderr, "cdtrace: %s\n", w.error().c_str());
    return 1;
  }
  std::printf("wrote %" PRIu64 " records to %s\n", w.records_written(),
              f.paths[0].c_str());
  return 0;
}

int convert_simple(std::istream& in, workload::ChunkedTraceWriter& w,
                   std::uint32_t cores) {
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    unsigned core = 0;
    std::string type;
    std::uint64_t addr = 0;
    std::uint32_t gap = 0;
    if (!(ss >> core >> type)) continue;  // blank/comment line
    ss >> std::hex >> addr >> std::dec >> gap;
    if (ss.fail() || core >= cores ||
        (type != "L" && type != "S" && type != "I")) {
      std::fprintf(stderr, "cdtrace: line %" PRIu64 ": bad record \"%s\"\n",
                   lineno, line.c_str());
      return 1;
    }
    workload::TraceRecord rec;
    rec.core = static_cast<CoreId>(core);
    rec.op.addr = addr;
    rec.op.gap = gap;
    rec.op.type = type == "S"   ? AccessType::kStore
                  : type == "I" ? AccessType::kIFetch
                                : AccessType::kLoad;
    w.append(rec);
  }
  return 0;
}

int convert_lackey(std::istream& in, workload::ChunkedTraceWriter& w,
                   std::uint32_t cores) {
  std::string line;
  std::uint64_t lineno = 0;
  std::uint32_t pending_gap = 0;
  std::uint64_t next_core = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::string kind;
    std::string rest;
    if (!(ss >> kind)) continue;
    if (kind == "==" || kind.rfind("==", 0) == 0) continue;  // valgrind noise
    if (!(ss >> rest)) {
      // "I addr,size" sometimes parses as one token ("I" already holds
      // the kind); anything else without an operand is noise.
      continue;
    }
    const std::size_t comma = rest.find(',');
    if (comma != std::string::npos) rest.resize(comma);
    char* end = nullptr;
    const std::uint64_t addr = std::strtoull(rest.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') continue;  // not an address: skip
    if (kind == "I") {
      // Instruction fetch: retire one instruction before the next data
      // access instead of emitting a record (keeps traces compact and
      // budgets faithful).
      if (pending_gap < 0xffffffffu) ++pending_gap;
      continue;
    }
    if (kind != "L" && kind != "S" && kind != "M") {
      std::fprintf(stderr, "cdtrace: line %" PRIu64 ": bad record \"%s\"\n",
                   lineno, line.c_str());
      return 1;
    }
    workload::TraceRecord rec;
    rec.core = static_cast<CoreId>(next_core);
    next_core = (next_core + 1) % cores;
    rec.op.addr = addr;
    rec.op.gap = pending_gap;
    pending_gap = 0;
    if (kind == "M") {  // modify: read-modify-write
      rec.op.type = AccessType::kLoad;
      w.append(rec);
      rec.op.gap = 0;
      rec.op.type = AccessType::kStore;
      w.append(rec);
      continue;
    }
    rec.op.type = kind == "S" ? AccessType::kStore : AccessType::kLoad;
    w.append(rec);
  }
  return 0;
}

int cmd_convert(const Flags& f) {
  if (f.paths.size() != 2 || f.cores == 0 || f.cores > 255) return usage();
  if (f.format != "simple" && f.format != "lackey") {
    std::fprintf(stderr, "cdtrace: unknown format \"%s\"\n",
                 f.format.c_str());
    return 2;
  }
  // Lackey input is single-threaded: everything lands on core 0 unless
  // --cores explicitly spreads it.
  const std::uint32_t cores =
      (f.format == "lackey" && !f.cores_set) ? 1 : f.cores;
  std::ifstream in(f.paths[0]);
  if (!in) {
    std::fprintf(stderr, "cdtrace: cannot open %s\n", f.paths[0].c_str());
    return 1;
  }
  workload::ChunkedTraceWriter w(f.paths[1], cores, f.chunk_records);
  const int rc = f.format == "simple" ? convert_simple(in, w, cores)
                                      : convert_lackey(in, w, cores);
  if (rc != 0) return rc;
  if (!w.finish()) {
    std::fprintf(stderr, "cdtrace: %s\n", w.error().c_str());
    return 1;
  }
  std::printf("wrote %" PRIu64 " records to %s\n", w.records_written(),
              f.paths[1].c_str());
  return 0;
}

/// Counts non-overlapping occurrences of `needle` in `hay`.
std::uint64_t count_token(const std::string& hay, std::string_view needle) {
  std::uint64_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

int cmd_inspect_timeline(const Flags& f) {
  std::ifstream in(f.paths[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cdtrace: cannot open %s\n", f.paths[0].c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const obs::JsonCheckResult chk = obs::json_check(text);
  if (!chk.ok) {
    std::fprintf(stderr,
                 "cdtrace: %s: invalid trace JSON at byte %zu: %s\n",
                 f.paths[0].c_str(), chk.error_at, chk.error.c_str());
    return 1;
  }

  // The checker proved well-formedness and the recorder's emitter writes
  // exactly one "ph" marker per event, so token counts are an accurate
  // summary without a DOM in memory.
  const std::uint64_t tracks = count_token(text, "\"ph\":\"M\"");
  const std::uint64_t spans = count_token(text, "\"ph\":\"X\"");
  const std::uint64_t instants = count_token(text, "\"ph\":\"i\"");

  // Covered cycle range: scan "ts": values (and span ends via "dur").
  std::uint64_t ts_lo = ~0ull;
  std::uint64_t ts_hi = 0;
  for (std::size_t at = text.find("\"ts\":"); at != std::string::npos;
       at = text.find("\"ts\":", at + 5)) {
    char* end = nullptr;
    const std::uint64_t ts = std::strtoull(text.c_str() + at + 5, &end, 10);
    std::uint64_t hi = ts;
    const std::size_t dur = text.find("\"dur\":", at);
    const std::size_t next = text.find("\"ts\":", at + 5);
    if (dur != std::string::npos && (next == std::string::npos || dur < next)) {
      hi += std::strtoull(text.c_str() + dur + 6, &end, 10);
    }
    if (ts < ts_lo) ts_lo = ts;
    if (hi > ts_hi) ts_hi = hi;
  }

  std::printf("format        trace-event JSON (valid)\n");
  std::printf("file bytes    %zu\n", text.size());
  std::printf("tracks        %" PRIu64 "\n", tracks);
  std::printf("spans         %" PRIu64 "\n", spans);
  std::printf("instants      %" PRIu64 "\n", instants);
  if (spans + instants > 0) {
    std::printf("cycle range   [%" PRIu64 ", %" PRIu64 "]\n", ts_lo, ts_hi);
  }
  return 0;
}

int cmd_inspect(const Flags& f) {
  if (f.paths.size() != 1) return usage();
  if (f.timeline) return cmd_inspect_timeline(f);
  std::string err;
  const auto r = workload::ChunkedTraceReader::open(f.paths[0], &err);
  if (r == nullptr) {
    std::fprintf(stderr, "cdtrace: %s\n", err.c_str());
    return 1;
  }
  const workload::TraceV2Info& info = r->info();
  std::printf("format        .cdt v2 (chunked)\n");
  std::printf("cores         %u\n", info.num_cores);
  std::printf("records       %" PRIu64 "\n", info.total_records);
  std::printf("chunks        %u x %u records\n", info.chunk_count,
              info.chunk_records);
  std::printf("file bytes    %" PRIu64 "\n", info.file_bytes);
  if (info.total_records > 0) {
    std::printf("payload       %" PRIu64 " bytes (%.2f B/record, %.2fx vs "
                "v1's 16)\n",
                info.payload_bytes,
                static_cast<double>(info.payload_bytes) /
                    static_cast<double>(info.total_records),
                16.0 * static_cast<double>(info.total_records) /
                    static_cast<double>(info.payload_bytes));
  }
  for (std::uint32_t c = 0; c < info.num_cores; ++c) {
    std::printf("core %-3u      %" PRIu64 " ops, %" PRIu64 " instr\n", c,
                info.per_core_ops[c], info.per_core_instr[c]);
  }
  return 0;
}

int cmd_head(const Flags& f) {
  if (f.paths.size() != 1) return usage();
  std::string err;
  const auto src = workload::open_trace_source(f.paths[0], &err);
  if (src == nullptr) {
    std::fprintf(stderr, "cdtrace: %s\n", err.c_str());
    return 1;
  }
  workload::TraceRecord rec;
  for (std::uint64_t i = 0; i < f.n && src->next(rec); ++i) {
    std::printf("%u %s %" PRIx64 " %u%s\n", rec.core,
                type_letter(rec.op.type), rec.op.addr, rec.op.gap,
                rec.op.dependent ? " dep" : "");
  }
  return 0;
}

int cmd_stats(const Flags& f) {
  if (f.paths.size() != 1) return usage();
  std::string err;
  const auto src = workload::open_trace_source(f.paths[0], &err);
  if (src == nullptr) {
    std::fprintf(stderr, "cdtrace: %s\n", err.c_str());
    return 1;
  }
  std::vector<std::uint64_t> per_core(src->num_cores(), 0);
  std::uint64_t by_type[3] = {0, 0, 0};
  std::uint64_t total = 0;
  std::uint64_t gaps = 0;
  std::uint64_t dependent = 0;
  Addr lo = ~0ull;
  Addr hi = 0;
  workload::TraceRecord rec;
  while (src->next(rec)) {
    ++total;
    per_core[rec.core] += 1;
    by_type[static_cast<unsigned>(rec.op.type) % 3] += 1;
    gaps += rec.op.gap;
    dependent += rec.op.dependent ? 1 : 0;
    if (rec.op.addr < lo) lo = rec.op.addr;
    if (rec.op.addr > hi) hi = rec.op.addr;
  }
  std::printf("records       %" PRIu64 "\n", total);
  std::printf("loads/stores/ifetch  %" PRIu64 " / %" PRIu64 " / %" PRIu64
              "\n",
              by_type[static_cast<unsigned>(AccessType::kLoad) % 3],
              by_type[static_cast<unsigned>(AccessType::kStore) % 3],
              by_type[static_cast<unsigned>(AccessType::kIFetch) % 3]);
  std::printf("dependent     %" PRIu64 "\n", dependent);
  std::printf("instructions  %" PRIu64 " (records + gaps)\n", total + gaps);
  if (total > 0) {
    std::printf("addr range    [%" PRIx64 ", %" PRIx64 "]\n", lo, hi);
  }
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    std::printf("core %-3zu      %" PRIu64 " ops\n", c, per_core[c]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Flags f;
  if (!parse_flags(argc, argv, 2, f)) return 2;
  if (cmd == "gen") return cmd_gen(f);
  if (cmd == "convert") return cmd_convert(f);
  if (cmd == "inspect") return cmd_inspect(f);
  if (cmd == "head") return cmd_head(f);
  if (cmd == "stats") return cmd_stats(f);
  return usage();
}
