#!/usr/bin/env sh
# Runs clang-tidy (profile: .clang-tidy at the repo root) over the
# first-party C++ files changed since a base revision.
#
#   tools/run_clang_tidy.sh [BASE_REV] [BUILD_DIR]
#
#   BASE_REV   revision to diff against (default: HEAD~1)
#   BUILD_DIR  build tree with compile_commands.json (default: build);
#              configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
#
# Exits 0 when clang-tidy is not installed (local convenience — the tool
# is CI-mandatory there via the clang-tidy job, but a developer box with
# only g++ must still be able to run every other check), 0 when no
# relevant files changed, and clang-tidy's own status otherwise.
set -eu

base="${1:-HEAD~1}"
build="${2:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not installed; skipping (CI runs it)" >&2
    exit 0
fi
if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_clang_tidy: $build/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

# First-party translation units only: headers are pulled in through
# HeaderFilterRegex, and tests/lint_fixtures/ holds deliberately-broken
# lint fodder that must never be analyzed.
changed=$(git diff --name-only --diff-filter=ACMR "$base" -- \
              'src/*.cpp' 'tools/*.cpp' 'tests/*.cpp' 'bench/*.cpp' \
              'examples/*.cpp' |
          grep -v '^tests/lint_fixtures/' || true)

if [ -z "$changed" ]; then
    echo "run_clang_tidy: no first-party C++ changes vs $base"
    exit 0
fi

echo "run_clang_tidy: analyzing vs $base:"
printf '  %s\n' $changed
# shellcheck disable=SC2086  # word-splitting the file list is intended
exec clang-tidy -p "$build" --quiet $changed
