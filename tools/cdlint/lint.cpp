#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace cdlint {

namespace {

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string normalize_path(std::string_view p) {
  std::string out(p);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

/// Records a `cdlint: allow(a, b)` directive found in a comment.
void harvest_directive(std::string_view comment, std::size_t line,
                       Directives& dirs) {
  const auto tag = comment.find("cdlint:");
  if (tag == std::string_view::npos) return;
  const auto open = comment.find("allow(", tag);
  if (open == std::string_view::npos) return;
  const auto close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view rules = comment.substr(open + 6, close - (open + 6));
  std::size_t pos = 0;
  while (pos < rules.size()) {
    std::size_t comma = rules.find(',', pos);
    if (comma == std::string_view::npos) comma = rules.size();
    std::string_view r = rules.substr(pos, comma - pos);
    while (!r.empty() && std::isspace(static_cast<unsigned char>(r.front())))
      r.remove_prefix(1);
    while (!r.empty() && std::isspace(static_cast<unsigned char>(r.back())))
      r.remove_suffix(1);
    if (!r.empty()) dirs.allow_by_line[line].insert(std::string(r));
    pos = comma + 1;
  }
}

// Multi-character punctuators we need as single tokens. `<` and `>` are
// deliberately kept single-character so template-argument scanning can
// balance them (no `>>`/`<<` merging).
constexpr std::array<std::string_view, 13> kPuncts2 = {
    "::", "->", "+=", "-=", "*=", "/=", "==",
    "!=", "<=", ">=", "&&", "||", "%=",
};

}  // namespace

bool Directives::allows(std::size_t line, std::string_view rule) const {
  for (std::size_t l : {line, line == 0 ? line : line - 1}) {
    auto it = allow_by_line.find(l);
    if (it != allow_by_line.end() &&
        it->second.count(std::string(rule)) != 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

std::vector<Token> lex(std::string_view src, Directives& dirs) {
  std::vector<Token> out;
  std::size_t i = 0, line = 1;
  const std::size_t n = src.size();

  auto push = [&](TokKind k, std::string text) {
    out.push_back(Token{k, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      harvest_directive(src.substr(i, end - i), line, dirs);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      std::string_view body = src.substr(i, end - i);
      harvest_directive(body, line, dirs);
      line += static_cast<std::size_t>(
          std::count(body.begin(), body.end(), '\n'));
      i = (end == n) ? n : end + 2;
      continue;
    }
    // Preprocessor directive: consume to end of line (honoring \-splices).
    // #include paths and macro bodies are not linted.
    if (c == '#') {
      while (i < n) {
        std::size_t end = src.find('\n', i);
        if (end == std::string_view::npos) {
          i = n;
          break;
        }
        bool spliced = end > 0 && src[end - 1] == '\\';
        ++line;
        i = end + 1;
        if (!spliced) break;
      }
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::size_t paren = src.find('(', p);
      if (paren == std::string_view::npos) {
        ++i;
        continue;
      }
      // Built with append (not operator+) to sidestep GCC 12's bogus
      // -Wrestrict diagnostic on `const char* + std::string&&` at -O2.
      std::string close(")");
      close.append(src.substr(p, paren - p));
      close.push_back('"');
      std::size_t end = src.find(close, paren + 1);
      if (end == std::string_view::npos) end = n;
      std::string_view body = src.substr(i, end - i);
      line += static_cast<std::size_t>(
          std::count(body.begin(), body.end(), '\n'));
      push(TokKind::kString, "");
      i = (end == n) ? n : end + close.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char q = c;
      std::size_t p = i + 1;
      while (p < n && src[p] != q) {
        if (src[p] == '\\' && p + 1 < n) ++p;
        if (src[p] == '\n') ++line;
        ++p;
      }
      push(q == '"' ? TokKind::kString : TokKind::kChar,
           std::string(src.substr(i + 1, p - i - 1)));
      i = (p < n) ? p + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(src[p])) ++p;
      push(TokKind::kIdent, std::string(src.substr(i, p - i)));
      i = p;
      continue;
    }
    // Number (coarse: consumes hexfloats, suffixes, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t p = i + 1;
      while (p < n && (ident_char(src[p]) || src[p] == '.' || src[p] == '\'' ||
                       ((src[p] == '+' || src[p] == '-') &&
                        (src[p - 1] == 'e' || src[p - 1] == 'E' ||
                         src[p - 1] == 'p' || src[p - 1] == 'P')))) {
        ++p;
      }
      push(TokKind::kNumber, std::string(src.substr(i, p - i)));
      i = p;
      continue;
    }
    // Punctuation, longest-match over the two-char set.
    if (i + 1 < n) {
      std::string_view two = src.substr(i, 2);
      bool matched = false;
      for (std::string_view p2 : kPuncts2) {
        if (two == p2) {
          push(TokKind::kPunct, std::string(p2));
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

Allowlist parse_allowlist(std::string_view text) {
  Allowlist al;
  std::size_t pos = 0, lineno = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view ln = text.substr(pos, end - pos);
    ++lineno;
    pos = end + 1;
    // Strip comment and whitespace.
    if (auto h = ln.find('#'); h != std::string_view::npos)
      ln = ln.substr(0, h);
    while (!ln.empty() && std::isspace(static_cast<unsigned char>(ln.back())))
      ln.remove_suffix(1);
    while (!ln.empty() && std::isspace(static_cast<unsigned char>(ln.front())))
      ln.remove_prefix(1);
    if (ln.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    std::size_t sp = ln.find_first_of(" \t");
    if (sp == std::string_view::npos) {
      al.errors.push_back("allowlist line " + std::to_string(lineno) +
                          ": expected '<rule-id> <path-suffix>'");
      continue;
    }
    AllowEntry e;
    e.rule = std::string(ln.substr(0, sp));
    std::string_view rest = ln.substr(sp);
    while (!rest.empty() &&
           std::isspace(static_cast<unsigned char>(rest.front())))
      rest.remove_prefix(1);
    e.path_suffix = normalize_path(rest);
    const auto& rules = known_rules();
    if (std::find(rules.begin(), rules.end(), e.rule) == rules.end()) {
      al.errors.push_back("allowlist line " + std::to_string(lineno) +
                          ": unknown rule '" + e.rule + "'");
      continue;
    }
    al.entries.push_back(std::move(e));
    if (pos > text.size()) break;
  }
  return al;
}

bool Allowlist::allows(std::string_view path, std::string_view rule) const {
  for (const AllowEntry& e : entries) {
    if (e.rule == rule && ends_with(path, e.path_suffix)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {
      "float-accum-unordered", "hot-alloc",    "hot-std-function",
      "ptr-key",               "raw-random",   "uninit-field",
      "unordered-iter",
  };
  return kRules;
}

std::string_view suggestion_for(std::string_view rule) {
  if (rule == "unordered-iter") {
    return "iterate a deterministically-ordered structure instead (std::map, "
           "sorted std::vector, or the index-ordered tag array); if the "
           "loop's effect is provably order-independent (pure predicate "
           "erase, like the CacheLevel attribution purge), grant it in "
           "tools/cdlint/allowlist.txt with a justification";
  }
  if (rule == "raw-random") {
    return "draw from an explicitly-seeded cdsim::Xoshiro256 (common/rng.hpp) "
           "owned by the consumer; seeds must come from the configuration, "
           "never from time or hardware entropy";
  }
  if (rule == "ptr-key") {
    return "key the container on a stable id (line index, CoreId, Addr) "
           "instead of a pointer — pointer order is allocator order and "
           "changes run to run";
  }
  if (rule == "hot-std-function") {
    return "use cdsim::SmallFn (common/small_fn.hpp): fixed-size buffer, "
           "no heap allocation, move-only — mandated on event/MSHR/bus hot "
           "paths since PR 2";
  }
  if (rule == "float-accum-unordered") {
    return "FP addition is not associative: accumulate over a sorted "
           "snapshot of the container, or keep integer accumulators and "
           "convert once at the end";
  }
  if (rule == "uninit-field") {
    return "add a default member initializer (e.g. `= 0`, `= nullptr`, "
           "`= {}`) — indeterminate fields make two identical configs "
           "diverge and are UB to read";
  }
  if (rule == "hot-alloc") {
    return "keep the per-event path heap-free: replace the node container "
           "with a reserve()d std::vector, a FifoRing (common/ring.hpp), or "
           "a slot pool with a free list (EventQueue/MeshNoc are the "
           "templates); if occupancy is provably bounded or growth stops at "
           "a high-water mark, grant it in tools/cdlint/allowlist.txt with "
           "that argument";
  }
  return "";
}

// ---------------------------------------------------------------------------
// LintConfig defaults
// ---------------------------------------------------------------------------

LintConfig::LintConfig() {
  // Hot paths where SmallFn is mandated (PR 2's contract): the event queue,
  // the MSHR/write-buffer machinery, and the fabric request hooks.
  hot_paths = {
      "common/event_queue.hpp", "common/small_fn.hpp",
      "cache/mshr.hpp",         "cache/write_buffer.hpp",
      "bus/snoop_bus.hpp",      "noc/interconnect.hpp",
  };
  random_homes = {"common/rng.hpp", "common/rng.cpp"};
  uninit_field_scopes = {"include/cdsim/"};
  // Headers whose code runs per simulated event: every cache access walks
  // cache/, every coherence transaction walks noc/ or bus/, every
  // instruction walks core/. Steady-state allocation here is a host-time
  // regression the throughput bench would pay on each of millions of
  // events.
  hot_alloc_scopes = {
      "include/cdsim/cache/",
      "include/cdsim/noc/",
      "include/cdsim/bus/",
      "include/cdsim/core/",
  };
}

// ---------------------------------------------------------------------------
// The linter
// ---------------------------------------------------------------------------

namespace {

struct Linter {
  const LintConfig& cfg;
  std::string path;
  const std::vector<Token>& t;
  const Directives& dirs;
  std::vector<Finding> findings = {};

  // File-local name tables (heuristic: names are file-unique enough).
  std::set<std::string> unordered_types = {"unordered_map", "unordered_set",
                                           "unordered_multimap",
                                           "unordered_multiset"};
  std::set<std::string> unordered_names = {};
  std::set<std::string> float_names = {};

  // Range-for loops over unordered containers: [body_begin, body_end) token
  // extents, reused by the float-accum rule.
  std::vector<std::pair<std::size_t, std::size_t>> unordered_loop_bodies = {};

  bool is(std::size_t i, TokKind k, std::string_view text) const {
    return i < t.size() && t[i].kind == k && t[i].text == text;
  }
  bool ident(std::size_t i, std::string_view text) const {
    return is(i, TokKind::kIdent, text);
  }
  bool punct(std::size_t i, std::string_view text) const {
    return is(i, TokKind::kPunct, text);
  }

  void report(std::size_t line, std::string_view rule, std::string message) {
    findings.push_back(
        Finding{path, line, std::string(rule), std::move(message), false});
  }

  /// Token index just past a balanced <...> starting at `open` (which must
  /// be '<'). Stops at end of stream on imbalance.
  std::size_t skip_angles(std::size_t open) const {
    int depth = 0;
    std::size_t i = open;
    for (; i < t.size(); ++i) {
      if (punct(i, "<")) ++depth;
      if (punct(i, ">")) {
        if (--depth == 0) return i + 1;
      }
      // Statement-ish terminator without balance: bail (it was a
      // comparison, not a template argument list).
      if (punct(i, ";")) break;
    }
    return i;
  }

  /// Token index just past a balanced pair starting at `open`.
  std::size_t skip_balanced(std::size_t open, std::string_view o,
                            std::string_view c) const {
    int depth = 0;
    std::size_t i = open;
    for (; i < t.size(); ++i) {
      if (punct(i, o)) ++depth;
      if (punct(i, c)) {
        if (--depth == 0) return i + 1;
      }
    }
    return i;
  }

  bool path_matches(const std::vector<std::string>& suffixes) const {
    for (const std::string& s : suffixes) {
      if (ends_with(path, s)) return true;
    }
    return false;
  }
  bool path_contains(const std::vector<std::string>& subs) const {
    for (const std::string& s : subs) {
      if (path.find(s) != std::string::npos) return true;
    }
    return false;
  }

  // --- pass A: name tables -------------------------------------------------

  void collect_names() {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      // `using Alias = ... unordered_map< ... ;` makes Alias an unordered
      // type name for the rest of the file.
      if (ident(i, "using") && i + 2 < t.size() &&
          t[i + 1].kind == TokKind::kIdent && punct(i + 2, "=")) {
        for (std::size_t j = i + 3; j < t.size() && !punct(j, ";"); ++j) {
          if (t[j].kind == TokKind::kIdent &&
              unordered_types.count(t[j].text) != 0) {
            unordered_types.insert(t[i + 1].text);
            break;
          }
        }
        continue;
      }
      // `unordered_map<K, V> name` — or an alias, `Shadow name` — optionally
      // through const/&/* clutter.
      if (unordered_types.count(t[i].text) != 0) {
        std::size_t j = punct(i + 1, "<") ? skip_angles(i + 1) : i + 1;
        while (j < t.size() &&
               (ident(j, "const") || punct(j, "&") || punct(j, "*"))) {
          ++j;
        }
        if (j < t.size() && t[j].kind == TokKind::kIdent) {
          unordered_names.insert(t[j].text);
        }
      }
      // `double name` / `float name` (+ comma declarators).
      if (ident(i, "double") || ident(i, "float")) {
        std::size_t j = i + 1;
        while (j < t.size() && t[j].kind == TokKind::kIdent &&
               (t[j].text == "const")) {
          ++j;
        }
        while (j < t.size() && t[j].kind == TokKind::kIdent) {
          float_names.insert(t[j].text);
          // Skip past an initializer to a possible `, next_name`.
          std::size_t k = j + 1;
          int pdepth = 0;
          while (k < t.size()) {
            if (punct(k, "(") || punct(k, "[") || punct(k, "{")) ++pdepth;
            if (punct(k, ")") || punct(k, "]") || punct(k, "}")) --pdepth;
            if (pdepth == 0 && (punct(k, ";") || punct(k, ","))) break;
            if (pdepth < 0) break;
            ++k;
          }
          if (k < t.size() && punct(k, ",") &&
              k + 1 < t.size() && t[k + 1].kind == TokKind::kIdent) {
            j = k + 1;
          } else {
            break;
          }
        }
      }
    }
  }

  // --- rule: unordered-iter (+ loop extents for float-accum) ---------------

  void rule_unordered_iter() {
    for (std::size_t i = 0; i < t.size(); ++i) {
      // Range-for over an unordered name.
      if (ident(i, "for") && punct(i + 1, "(")) {
        std::size_t close = skip_balanced(i + 1, "(", ")");
        // Find the range-for ':' at paren depth 1 ('::' is one token, so a
        // bare ':' here is the range separator).
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (punct(j, "(") || punct(j, "[") || punct(j, "{")) ++depth;
          if (punct(j, ")") || punct(j, "]") || punct(j, "}")) --depth;
          if (depth == 1 && punct(j, ":")) {
            colon = j;
            break;
          }
        }
        if (colon != 0) {
          bool over_unordered = false;
          for (std::size_t j = colon + 1; j + 1 < close; ++j) {
            if (t[j].kind == TokKind::kIdent &&
                unordered_names.count(t[j].text) != 0) {
              over_unordered = true;
              break;
            }
          }
          if (over_unordered) {
            report(t[i].line, "unordered-iter",
                   "range-for over an unordered container: bucket order is "
                   "nondeterministic");
            if (close < t.size() && punct(close, "{")) {
              unordered_loop_bodies.emplace_back(
                  close, skip_balanced(close, "{", "}"));
            } else {
              // Single-statement body: extend to the terminating ';'.
              std::size_t e = close;
              while (e < t.size() && !punct(e, ";")) ++e;
              unordered_loop_bodies.emplace_back(close, e);
            }
          }
        }
        continue;
      }
      // Iterator form: name.begin()/cbegin()/rbegin() etc.
      if (t[i].kind == TokKind::kIdent &&
          unordered_names.count(t[i].text) != 0 &&
          (punct(i + 1, ".") || is(i + 1, TokKind::kPunct, "->"))) {
        // `.end()` alone is NOT iteration — `find(k) != end()` is the
        // canonical deterministic lookup — so only begin-family calls
        // (the thing a traversal cannot start without) trip the rule.
        static const std::set<std::string> kIterFns = {"begin", "cbegin",
                                                       "rbegin"};
        if (i + 3 < t.size() && t[i + 2].kind == TokKind::kIdent &&
            kIterFns.count(t[i + 2].text) != 0 && punct(i + 3, "(")) {
          report(t[i].line, "unordered-iter",
                 "iterator over an unordered container ('" + t[i].text +
                     "." + t[i + 2].text +
                     "()'): bucket order is nondeterministic");
        }
      }
    }
  }

  // --- rule: raw-random ----------------------------------------------------

  void rule_raw_random() {
    if (path_matches(cfg.random_homes)) return;
    static const std::set<std::string> kBannedTypes = {
        "random_device", "mt19937",     "mt19937_64",
        "minstd_rand",   "minstd_rand0", "default_random_engine",
        "knuth_b",       "ranlux24",    "ranlux48",
    };
    static const std::set<std::string> kBannedCalls = {
        "rand", "srand", "drand48", "lrand48", "rand_r", "random",
        "random_shuffle", "gettimeofday", "timespec_get",
    };
    static const std::set<std::string> kClocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const bool memberish =
          i > 0 && (punct(i - 1, ".") || is(i - 1, TokKind::kPunct, "->"));
      if (kBannedTypes.count(t[i].text) != 0) {
        report(t[i].line, "raw-random",
               "'" + t[i].text +
                   "' outside common/rng: all randomness must be "
                   "explicitly seeded from the configuration");
        continue;
      }
      if (!memberish && kBannedCalls.count(t[i].text) != 0 &&
          punct(i + 1, "(")) {
        report(t[i].line, "raw-random",
               "call to '" + t[i].text +
                   "()' outside common/rng: nondeterministic source");
        continue;
      }
      // time(NULL)/time(0)/time(nullptr), clock() — the canonical wall-clock
      // seeds. Restricted forms to avoid flagging unrelated `time` members.
      if (!memberish && ident(i, "time") && punct(i + 1, "(") &&
          (ident(i + 2, "nullptr") || ident(i + 2, "NULL") ||
           is(i + 2, TokKind::kNumber, "0"))) {
        report(t[i].line, "raw-random",
               "'time(...)' wall-clock seed: nondeterministic source");
        continue;
      }
      if (!memberish && ident(i, "clock") && punct(i + 1, "(") &&
          punct(i + 2, ")")) {
        report(t[i].line, "raw-random",
               "'clock()' wall-clock read: nondeterministic source");
        continue;
      }
      if (kClocks.count(t[i].text) != 0 && is(i + 1, TokKind::kPunct, "::") &&
          ident(i + 2, "now")) {
        report(t[i].line, "raw-random",
               "'" + t[i].text +
                   "::now()': wall-clock time must never reach simulation "
                   "state");
      }
    }
  }

  // --- rule: ptr-key -------------------------------------------------------

  void rule_ptr_key() {
    static const std::set<std::string> kOrdered = {"map", "set", "multimap",
                                                   "multiset"};
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || kOrdered.count(t[i].text) == 0 ||
          !punct(i + 1, "<")) {
        continue;
      }
      // Require std:: qualification (or global scope) so locally-named
      // `set`/`map` identifiers don't trip the rule.
      if (!(i >= 2 && is(i - 1, TokKind::kPunct, "::") &&
            ident(i - 2, "std"))) {
        continue;
      }
      // Scan the first template argument (depth-1 until ',' or close).
      int depth = 0;
      bool ptr = false;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (punct(j, "<")) ++depth;
        if (punct(j, ">")) {
          if (--depth == 0) break;
        }
        if (depth == 1 && punct(j, ",")) break;
        if (depth >= 1 && punct(j, "*")) ptr = true;
        if (punct(j, ";")) break;  // unbalanced: comparison, not template
      }
      if (ptr) {
        report(t[i].line, "ptr-key",
               "std::" + t[i].text +
                   " keyed on a pointer: iteration order is address order "
                   "(allocator-dependent)");
      }
    }
  }

  // --- rule: hot-std-function ----------------------------------------------

  void rule_hot_std_function() {
    if (!path_matches(cfg.hot_paths)) return;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (ident(i, "std") && is(i + 1, TokKind::kPunct, "::") &&
          ident(i + 2, "function")) {
        report(t[i].line, "hot-std-function",
               "std::function on a hot path: SmallFn is mandated here "
               "(heap allocation + double indirection per call)");
      }
    }
  }

  // --- rule: hot-alloc -----------------------------------------------------

  void rule_hot_alloc() {
    if (!path_contains(cfg.hot_alloc_scopes)) return;
    // Containers whose growth allocates nodes or chunks as the structure
    // is used (vs. a vector whose reserve() is a one-time cost the caller
    // controls).
    static const std::set<std::string> kNodeContainers = {
        "deque",         "list",
        "forward_list",  "map",
        "multimap",      "set",
        "multiset",      "unordered_map",
        "unordered_multimap", "unordered_set",
        "unordered_multiset",
    };
    static const std::set<std::string> kAllocCalls = {"make_unique",
                                                      "make_shared"};
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const bool std_qualified =
          i >= 2 && is(i - 1, TokKind::kPunct, "::") && ident(i - 2, "std");
      if (std_qualified && kNodeContainers.count(t[i].text) != 0 &&
          punct(i + 1, "<")) {
        report(t[i].line, "hot-alloc",
               "std::" + t[i].text +
                   " in a hot-path header: node/chunk-based containers "
                   "allocate as they are used — pre-size a vector, FifoRing "
                   "or slot pool instead");
        continue;
      }
      if (kAllocCalls.count(t[i].text) != 0 &&
          (punct(i + 1, "<") || punct(i + 1, "("))) {
        report(t[i].line, "hot-alloc",
               "'" + t[i].text +
                   "' in a hot-path header: per-object heap allocation on "
                   "the event path — pool the records and pass handles");
        continue;
      }
      // `new` expressions; `operator new` declarations are the customization
      // point itself, not an allocation site.
      if (ident(i, "new") && !(i > 0 && ident(i - 1, "operator"))) {
        report(t[i].line, "hot-alloc",
               "'new' in a hot-path header: per-object heap allocation on "
               "the event path — pool the records and pass handles");
      }
    }
  }

  // --- rule: float-accum-unordered -----------------------------------------

  void rule_float_accum() {
    for (const auto& [b, e] : unordered_loop_bodies) {
      for (std::size_t i = b; i < e && i < t.size(); ++i) {
        if ((is(i, TokKind::kPunct, "+=") || is(i, TokKind::kPunct, "-=")) &&
            i > 0 && t[i - 1].kind == TokKind::kIdent &&
            float_names.count(t[i - 1].text) != 0) {
          report(t[i].line, "float-accum-unordered",
                 "floating-point accumulation into '" + t[i - 1].text +
                     "' inside an unordered-container loop: FP addition is "
                     "not associative, the sum depends on bucket order");
        }
      }
    }
  }

  // --- rule: uninit-field --------------------------------------------------

  void rule_uninit_field() {
    if (!path_contains(cfg.uninit_field_scopes)) return;
    static const std::set<std::string> kScalar = {
        "bool",          "char",          "short",        "int",
        "long",          "unsigned",      "signed",       "float",
        "double",        "size_t",        "ptrdiff_t",    "int8_t",
        "int16_t",       "int32_t",       "int64_t",      "uint8_t",
        "uint16_t",      "uint32_t",      "uint64_t",     "intptr_t",
        "uintptr_t",     "Cycle",         "Addr",         "CoreId",
    };
    static const std::set<std::string> kSkipLead = {
        "static", "constexpr", "using",    "typedef", "friend",
        "template", "virtual", "operator", "enum",    "return",
    };

    // Class-body brace depths (stack).
    std::vector<int> class_depths;
    int depth = 0;
    std::size_t i = 0;
    while (i < t.size()) {
      if (punct(i, "{")) {
        ++depth;
        ++i;
        continue;
      }
      if (punct(i, "}")) {
        if (!class_depths.empty() && class_depths.back() == depth) {
          class_depths.pop_back();
        }
        --depth;
        ++i;
        continue;
      }
      // Enter a class/struct body: `struct X ... {` with no ';' before '{'.
      if ((ident(i, "struct") || ident(i, "class")) &&
          !(i > 0 && ident(i - 1, "enum"))) {
        std::size_t j = i + 1;
        int adepth = 0;
        while (j < t.size()) {
          if (punct(j, "<")) ++adepth;
          if (punct(j, ">")) --adepth;
          if (adepth == 0 && (punct(j, "{") || punct(j, ";"))) break;
          ++j;
        }
        if (j < t.size() && punct(j, "{")) {
          class_depths.push_back(depth + 1);
          depth += 1;
          i = j + 1;
          continue;
        }
        i = j + 1;
        continue;
      }
      const bool in_class_body =
          !class_depths.empty() && class_depths.back() == depth;
      if (!in_class_body) {
        ++i;
        continue;
      }
      // Access specifier: `public:` etc.
      if ((ident(i, "public") || ident(i, "private") ||
           ident(i, "protected")) &&
          punct(i + 1, ":")) {
        i += 2;
        continue;
      }
      // Collect one member statement: to ';' at this depth, or a balanced
      // '{...}' (function body / braced init) after which the statement
      // ends at the next ';' or immediately.
      std::size_t stmt_begin = i;
      bool has_init = false, has_paren = false, has_colon = false;
      int sdepth = 0;
      std::size_t j = i;
      for (; j < t.size(); ++j) {
        if (punct(j, "(")) {
          has_paren = true;
          j = skip_balanced(j, "(", ")") - 1;
          continue;
        }
        if (punct(j, "[")) {
          j = skip_balanced(j, "[", "]") - 1;
          continue;
        }
        if (punct(j, "<")) {
          ++sdepth;
          continue;
        }
        if (punct(j, ">")) {
          --sdepth;
          continue;
        }
        if (punct(j, "{")) {
          has_init = true;
          j = skip_balanced(j, "{", "}") - 1;
          // A function/struct body also terminates the statement.
          if (j + 1 < t.size() && !punct(j + 1, ";") && !punct(j + 1, ",")) {
            ++j;
            break;
          }
          continue;
        }
        if (punct(j, "=")) has_init = true;
        if (sdepth == 0 && punct(j, ":")) has_colon = true;
        if (punct(j, ";")) {
          ++j;
          break;
        }
      }
      i = j;
      if (has_init || has_colon) continue;
      // Leading token filters.
      std::size_t k = stmt_begin;
      while (k < i && (ident(k, "mutable") || ident(k, "const") ||
                       ident(k, "volatile") || ident(k, "inline"))) {
        ++k;
      }
      if (k >= i || t[k].kind != TokKind::kIdent) continue;
      if (kSkipLead.count(t[k].text) != 0) continue;
      // Parse `[std::]Type [<...>] [*]* name ;` — flag if Type is scalar, or
      // if the declarator is a raw pointer.
      std::size_t ty = k;
      if (ident(ty, "std") && is(ty + 1, TokKind::kPunct, "::")) ty += 2;
      if (ty >= i || t[ty].kind != TokKind::kIdent) continue;
      const std::string& type_name = t[ty].text;
      std::size_t after_ty = ty + 1;
      if (after_ty < i && punct(after_ty, "<")) {
        after_ty = skip_angles(after_ty);
      }
      bool pointer = false;
      while (after_ty < i &&
             (punct(after_ty, "*") || punct(after_ty, "&") ||
              ident(after_ty, "const"))) {
        if (punct(after_ty, "*")) pointer = true;
        if (punct(after_ty, "&")) pointer = false;  // references must bind
        ++after_ty;
      }
      if (after_ty >= i || t[after_ty].kind != TokKind::kIdent) continue;
      // References can't be default-initialized meaningfully here and
      // functions were filtered by has_paren above.
      if (has_paren) continue;
      const bool scalar = kScalar.count(type_name) != 0;
      if (!scalar && !pointer) continue;
      // Member must actually end the statement as a declaration:
      // `name ;` or `name , ...` or `name [N] ;` (array handled above).
      report(t[stmt_begin].line, "uninit-field",
             std::string(pointer ? "pointer" : "scalar") + " field '" +
                 t[after_ty].text +
                 "' has no default member initializer (indeterminate until "
                 "every constructor path proves otherwise)");
    }
  }

  void run() {
    collect_names();
    rule_unordered_iter();
    rule_raw_random();
    rule_ptr_key();
    rule_hot_std_function();
    rule_hot_alloc();
    rule_float_accum();
    rule_uninit_field();
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
  }
};

}  // namespace

std::vector<Finding> lint_source(const LintConfig& cfg, std::string_view path,
                                 std::string_view source) {
  Directives dirs;
  std::vector<Token> toks = lex(source, dirs);
  Linter lint{cfg, normalize_path(path), toks, dirs};
  lint.run();
  for (Finding& f : lint.findings) {
    f.allowlisted = cfg.allowlist.allows(f.path, f.rule) ||
                    dirs.allows(f.line, f.rule) ||
                    // A directive *below* the finding's line also covers it
                    // when it sits on the same statement's closing line.
                    dirs.allows(f.line + 1, f.rule);
  }
  return lint.findings;
}

}  // namespace cdlint
