#pragma once
// cdlint — the determinism lint for the cdsim tree.
//
// The simulator's core contract is that every run is a pure function of its
// configuration: parallel grid sweeps are bit-identical to serial ones,
// golden metrics are pinned as exact hexfloats, and the differential oracle
// asserts zero divergence over the fuzz matrix. Those are *runtime* checks —
// they sample behavior. cdlint is the static side of the same contract: it
// mechanically rejects the code shapes that historically break determinism
// before they can reach a runtime check that might not cover them.
//
// Rules (ids are stable; the allowlist and inline directives key on them):
//
//   unordered-iter        Iterating a std::unordered_{map,set} — bucket
//                         order depends on hash seeding, allocation history
//                         and libstdc++ version, so any observable effect of
//                         the traversal is nondeterministic. Lookups are
//                         fine; iteration needs an allowlist grant proving
//                         the loop's effect is order-independent (the
//                         CacheLevel attribution purge is the template: it
//                         erases by simulated-time predicate only).
//   raw-random            rand()/srand()/time()/clock()/std::random_device/
//                         std::mt19937/chrono clock now() outside
//                         common/rng. All randomness must flow through the
//                         explicitly-seeded Xoshiro256 streams.
//   ptr-key               std::{map,set,multimap,multiset} keyed on a
//                         pointer: iteration order is address order, i.e.
//                         allocator behavior. unordered_* pointer keys are
//                         caught by unordered-iter the moment they are
//                         iterated.
//   hot-std-function      std::function in a file on the hot-path list
//                         (event queue, MSHR, write buffer, bus/fabric
//                         hooks) where SmallFn is mandated — std::function
//                         heap-allocates and double-indirects on the
//                         simulator's innermost loops.
//   float-accum-unordered Floating-point accumulation (+=, -=) inside a
//                         loop over an unordered container: FP addition is
//                         not associative, so a bucket-order-dependent sum
//                         changes value run to run even if the element set
//                         is identical.
//   uninit-field          A scalar/pointer field of a struct/class in
//                         include/cdsim/** without a default member
//                         initializer. Indeterminate fields are how two
//                         "identical" configs diverge (and how MSan/valgrind
//                         findings are born).
//   hot-alloc             Steady-state heap allocation in a hot-path header
//                         (cache/, noc/, bus/, core/): `new`,
//                         make_unique/make_shared, or a node/chunk-based
//                         std container (deque, list, map/set families,
//                         unordered_*). The SoA/arena PR moved the fabric
//                         and tag arrays onto pre-sized pools and rings;
//                         this rule keeps allocation from creeping back.
//                         Grants must argue either bounded occupancy or
//                         high-water-only growth (see allowlist.txt).
//
// Escapes, both deliberate and committed to review history:
//   - tools/cdlint/allowlist.txt: `<rule-id> <path-suffix>  # why`
//   - inline, same line or the line above: `// cdlint: allow(rule-id) why`
//
// The tool is a tokenizer plus lightweight pattern matching — deliberately
// not a compiler plugin, so it builds in this tree with zero dependencies
// and runs in milliseconds over the whole repo. That costs precision
// (heuristics over token streams, file-local name resolution), which is why
// every rule has an escape hatch; the point is that the escape is explicit
// and reviewed, not that the matcher is perfect.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cdlint {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    ///< identifier or keyword
  kNumber,   ///< numeric literal
  kString,   ///< string literal (incl. raw strings), text excludes quotes
  kChar,     ///< character literal
  kPunct,    ///< operator / punctuation, longest-match (e.g. "+=", "::")
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line;  ///< 1-based
};

/// Inline lint directives harvested from comments during lexing:
/// `// cdlint: allow(rule-id[, rule-id...]) optional justification`.
/// A directive covers its own line and the line directly below it (so it
/// can sit on the flagged statement or immediately above it).
struct Directives {
  std::map<std::size_t, std::set<std::string>> allow_by_line;
  [[nodiscard]] bool allows(std::size_t line, std::string_view rule) const;
};

/// Tokenizes C++ source. Comments and preprocessor line contents are
/// consumed (not emitted as tokens); cdlint directives inside comments are
/// collected into `dirs`.
std::vector<Token> lex(std::string_view source, Directives& dirs);

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string path;   ///< As passed in (normalized to '/' separators).
  std::size_t line;
  std::string rule;   ///< Stable rule id, e.g. "unordered-iter".
  std::string message;
  bool allowlisted = false;  ///< Suppressed by allowlist file or directive.
};

/// One allowlist grant: rule + path suffix (both required).
struct AllowEntry {
  std::string rule;
  std::string path_suffix;
};

/// Parses the committed allowlist format; returns human-readable errors for
/// malformed lines instead of silently dropping them.
struct Allowlist {
  std::vector<AllowEntry> entries;
  std::vector<std::string> errors;
  [[nodiscard]] bool allows(std::string_view path,
                            std::string_view rule) const;
};
Allowlist parse_allowlist(std::string_view text);

// ---------------------------------------------------------------------------
// Lint configuration + entry points
// ---------------------------------------------------------------------------

struct LintConfig {
  Allowlist allowlist;
  /// Path suffixes of files where std::function is banned in favor of
  /// SmallFn (the simulator's hot paths). Defaults below.
  std::vector<std::string> hot_paths;
  /// Path suffixes where raw-random is permitted (the RNG home).
  std::vector<std::string> random_homes;
  /// Path prefixes/substrings in which uninit-field applies (the public
  /// headers; .cpp-local structs are caught by -Werror=uninitialized at
  /// use sites instead).
  std::vector<std::string> uninit_field_scopes;
  /// Path prefixes/substrings in which hot-alloc applies (the headers of
  /// the per-event machinery: caches, fabric, bus, core model).
  std::vector<std::string> hot_alloc_scopes;

  LintConfig();
};

/// Lints one in-memory file. Findings come back in line order; allowlisted
/// findings are included with `allowlisted = true` so callers can count or
/// display them.
std::vector<Finding> lint_source(const LintConfig& cfg, std::string_view path,
                                 std::string_view source);

/// Per-rule one-line remediation hint for --fix-suggestions output.
std::string_view suggestion_for(std::string_view rule);

/// All rule ids the tool knows (sorted), for directive/allowlist validation.
const std::vector<std::string>& known_rules();

}  // namespace cdlint
