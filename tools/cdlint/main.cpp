// cdlint CLI — determinism lint over the cdsim tree.
//
// Usage:
//   cdlint [--allowlist FILE] [--fix-suggestions] [--list-rules]
//          PATH [PATH...]
//
// Each PATH is a file or a directory (searched recursively for
// .hpp/.h/.cpp/.cc). Findings print as `path:line: [rule] message`, sorted
// by path then line — the tool's own output is deterministic. Exit status:
//   0  no unallowlisted findings
//   1  at least one unallowlisted finding
//   2  usage / IO / allowlist-parse error

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string allowlist_path;
  bool fix_suggestions = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cdlint: --allowlist needs a file argument\n");
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : cdlint::known_rules()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: cdlint [--allowlist FILE] [--fix-suggestions] "
          "[--list-rules] PATH [PATH...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cdlint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "cdlint: no paths given (try --help)\n");
    return 2;
  }

  cdlint::LintConfig cfg;
  if (!allowlist_path.empty()) {
    std::string text;
    if (!read_file(allowlist_path, text)) {
      std::fprintf(stderr, "cdlint: cannot read allowlist '%s'\n",
                   allowlist_path.c_str());
      return 2;
    }
    cfg.allowlist = cdlint::parse_allowlist(text);
    for (const std::string& e : cfg.allowlist.errors) {
      std::fprintf(stderr, "cdlint: %s: %s\n", allowlist_path.c_str(),
                   e.c_str());
    }
    if (!cfg.allowlist.errors.empty()) return 2;
  }

  // Expand roots into a sorted file list: deterministic scan order no
  // matter what the directory iteration order is.
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    const fs::path p(root);
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.generic_string());
    } else {
      std::fprintf(stderr, "cdlint: no such file or directory: '%s'\n",
                   root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::size_t reported = 0, suppressed = 0;
  for (const std::string& f : files) {
    std::string source;
    if (!read_file(f, source)) {
      std::fprintf(stderr, "cdlint: cannot read '%s'\n", f.c_str());
      return 2;
    }
    for (const cdlint::Finding& fd : cdlint::lint_source(cfg, f, source)) {
      if (fd.allowlisted) {
        ++suppressed;
        continue;
      }
      ++reported;
      std::printf("%s:%zu: [%s] %s\n", fd.path.c_str(), fd.line,
                  fd.rule.c_str(), fd.message.c_str());
      if (fix_suggestions) {
        std::printf("    fix: %s\n",
                    std::string(cdlint::suggestion_for(fd.rule)).c_str());
      }
    }
  }

  std::fprintf(stderr,
               "cdlint: %zu file(s), %zu finding(s), %zu allowlisted\n",
               files.size(), reported, suppressed);
  return reported == 0 ? 0 : 1;
}
