// Ablation A3 — temperature-dependent leakage feedback.
//
// The paper stresses using "a detailed temperature-dependent leakage model"
// (Liao et al.) rather than a constant per-line leakage. This ablation runs
// the 4 MB grid with the thermal feedback enabled vs. leakage pinned at the
// reference temperature, showing how much the reported savings move.

#include <iostream>

#include "cdsim/common/table.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace {

cdsim::sim::RunMetrics run(const cdsim::workload::Benchmark& bench,
                           cdsim::decay::Technique tech, bool feedback) {
  using namespace cdsim;
  decay::DecayConfig d;
  d.technique = tech;
  d.decay_time = 512 * 1024;
  sim::SystemConfig cfg = sim::make_system_config(4 * MiB, d);
  cfg.instructions_per_core = 1500000;
  cfg.thermal_feedback = feedback;
  return sim::run_config(cfg, bench);
}

}  // namespace

int main() {
  using namespace cdsim;
  const auto& bench = workload::benchmark_by_name("facerec");

  std::cout << "Ablation: thermal feedback on leakage (facerec, 4MB, "
               "decay 512K)\n\n";

  TextTable t;
  t.row()
      .cell("technique")
      .cell("thermal feedback")
      .cell("avg L2 temp (K)")
      .cell("energy reduction");
  for (const auto tech :
       {decay::Technique::kProtocol, decay::Technique::kDecay}) {
    for (const bool fb : {true, false}) {
      const sim::RunMetrics base =
          run(bench, decay::Technique::kBaseline, fb);
      const sim::RunMetrics m = run(bench, tech, fb);
      t.row()
          .cell(std::string(decay::to_string(tech)))
          .cell(fb ? "on" : "off (T = T0)")
          .cell(m.avg_l2_temp_kelvin, 1)
          .pct((base.energy - m.energy) / base.energy);
    }
  }
  t.print(std::cout);
  std::cout << "\nNote: with feedback on, blocks settle below the reference\n"
               "temperature T0, so absolute leakage (and thus the absolute\n"
               "saving) is slightly smaller than the pinned-T0 model reports;\n"
               "the technique ordering is unchanged. Hotter floorplans would\n"
               "move the comparison the other way, which is why the paper\n"
               "insists on temperature-dependent leakage.\n";
  return 0;
}
