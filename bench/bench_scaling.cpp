// bench_scaling — the first many-core datapoint: 4 -> 32 cores, snoop bus
// vs. directory mesh, baseline and decay, one shared workload per cell
// pair so bus and mesh face identical streams (paired comparison).
//
// Emits BENCH_scaling.json (CI uploads it as an artifact). The interesting
// columns: aggregate IPC (does the fabric scale?), fabric utilization (the
// bus saturates, the mesh's bottleneck link does not), memory bandwidth,
// and the directory/NoC counters that only exist past the bus.
//
// Usage: bench_scaling [output.json]   (default: BENCH_scaling.json)
//        CDSIM_INSTR=<n> overrides the 120000 instructions/core default
//        (CI uses a small value: this is a datapoint generator, not a
//        statistically rigorous benchmark harness).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cdsim/common/version.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

using namespace cdsim;

namespace {

constexpr std::uint32_t kCoreCounts[] = {4, 8, 16, 32};
constexpr noc::Topology kTopologies[] = {noc::Topology::kSnoopBus,
                                         noc::Topology::kDirectoryMesh};
constexpr const char* kBenchmark = "FMM";  // sharing-heavy scientific code

struct Cell {
  std::uint32_t cores;
  noc::Topology topology;
  decay::DecayConfig technique;
  sim::RunMetrics m;
  double wall_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t instr = 120000;
  if (const char* env = std::getenv("CDSIM_INSTR")) {
    const auto v = sim::detail::parse_positive_u64(env);
    if (!v.has_value()) {
      std::fprintf(stderr, "bench_scaling: invalid CDSIM_INSTR \"%s\"\n",
                   env);
      return 1;
    }
    instr = *v;
  }

  const std::vector<decay::DecayConfig> techniques = {
      sim::baseline_config(),
      decay::DecayConfig{decay::Technique::kDecay, 64 * 1024, 4},
  };

  const workload::Benchmark& bench = workload::benchmark_by_name(kBenchmark);
  std::vector<Cell> cells;
  std::printf("bench_scaling: %s, %llu instr/core, 4->32 cores, "
              "bus vs. directory mesh\n",
              kBenchmark, static_cast<unsigned long long>(instr));

  for (const std::uint32_t cores : kCoreCounts) {
    for (const noc::Topology topo : kTopologies) {
      for (const decay::DecayConfig& tech : techniques) {
        sim::SystemConfig cfg = sim::make_system_config(
            static_cast<std::uint64_t>(cores) * MiB, tech);
        cfg.num_cores = cores;
        cfg.topology = topo;
        cfg.instructions_per_core = instr;

        const auto t0 = std::chrono::steady_clock::now();
        Cell cell{cores, topo, tech, sim::run_config(cfg, bench), 0.0};
        cell.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        std::printf(
            "  %2u cores %-5s %-9s ipc=%6.3f util=%5.3f bw=%6.3f "
            "energy=%.3e  (%.0f ms)\n",
            cores, std::string(noc::to_string(topo)).c_str(),
            tech.label().c_str(), cell.m.ipc, cell.m.bus_utilization,
            cell.m.mem_bandwidth, cell.m.energy, cell.wall_ms);
        cells.push_back(std::move(cell));
      }
    }
  }

  const char* out = argc > 1 ? argv[1] : "BENCH_scaling.json";
  std::FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scaling: cannot write %s\n", out);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_scaling\",\n");
  std::fprintf(f, "  \"version\": \"%s\",\n", version());
  std::fprintf(f, "  \"benchmark\": \"%s\",\n", kBenchmark);
  std::fprintf(f, "  \"instructions_per_core\": %llu,\n  \"configs\": [\n",
               static_cast<unsigned long long>(instr));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const sim::RunMetrics& m = c.m;
    std::fprintf(f,
                 "    {\"cores\": %u, \"topology\": \"%s\", "
                 "\"technique\": \"%s\",\n"
                 "     \"cycles\": %llu, \"instructions\": %llu, "
                 "\"ipc\": %.6f, \"l2_miss_rate\": %.6f,\n"
                 "     \"l2_occupation\": %.6f, "
                 "\"fabric_utilization\": %.6f, \"mem_bandwidth\": %.6f,\n"
                 "     \"energy\": %.6e, \"noc_flit_hops\": %llu, "
                 "\"noc_avg_packet_latency\": %.3f,\n"
                 "     \"dir_directed_snoops\": %llu, "
                 "\"dir_recalls\": %llu, \"dir_deferrals\": %llu, "
                 "\"wall_ms\": %.3f}%s\n",
                 c.cores, std::string(noc::to_string(c.topology)).c_str(),
                 c.technique.label().c_str(),
                 static_cast<unsigned long long>(m.cycles),
                 static_cast<unsigned long long>(m.instructions), m.ipc,
                 m.l2_miss_rate, m.l2_occupation, m.bus_utilization,
                 m.mem_bandwidth, m.energy,
                 static_cast<unsigned long long>(m.noc_flit_hops),
                 m.noc_avg_packet_latency,
                 static_cast<unsigned long long>(m.dir_directed_snoops),
                 static_cast<unsigned long long>(m.dir_recalls),
                 static_cast<unsigned long long>(m.dir_deferrals), c.wall_ms,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("bench_scaling: wrote %s (%zu configs)\n", out, cells.size());
  return 0;
}
