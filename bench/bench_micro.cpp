// google-benchmark microbenchmarks for the simulator's hot paths: tag-array
// lookup, MSHR traffic, event-queue throughput, and workload generation.
// These guard the simulator's own performance (a slow simulator caps the
// experiment sweep sizes).

#include <benchmark/benchmark.h>

#include "cdsim/cache/mshr.hpp"
#include "cdsim/cache/tag_array.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/rng.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace {

using namespace cdsim;

void BM_TagArrayLookup(benchmark::State& state) {
  cache::TagArray<int> tags(cache::Geometry(1 * MiB, 64, 8));
  Xoshiro256 rng(1);
  for (int i = 0; i < 4096; ++i) {
    const Addr a = rng.below(1 << 22) * 64;
    tags.install(tags.pick_victim(a), a, 0);
  }
  Xoshiro256 probe(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tags.find(probe.below(1 << 22) * 64));
  }
}
BENCHMARK(BM_TagArrayLookup);

void BM_MshrAllocateComplete(benchmark::State& state) {
  cache::MshrFile mshr(16);
  Addr a = 0;
  for (auto _ : state) {
    auto& e = mshr.allocate(a, false, 0);
    mshr.merge(e, false, [](Cycle) {});
    mshr.complete(a, 1);
    a += 64;
  }
}
BENCHMARK(BM_MshrAllocateComplete);

void BM_EventQueueThroughput(benchmark::State& state) {
  EventQueue eq;
  for (auto _ : state) {
    eq.schedule_in(1, [] {});
    eq.step();
  }
}
BENCHMARK(BM_EventQueueThroughput);

void BM_WorkloadGeneration(benchmark::State& state) {
  const auto& bench = workload::benchmark_suite()[static_cast<std::size_t>(
      state.range(0))];
  auto stream = workload::make_stream(bench, 0, 42);
  Cycle now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream->next(now += 3));
  }
}
BENCHMARK(BM_WorkloadGeneration)->DenseRange(0, 5);

}  // namespace

BENCHMARK_MAIN();
