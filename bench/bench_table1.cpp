// Table I — "Summary of the various situations related to line state and
// possibility of turning off".
//
// Regenerates the paper's decision matrix from the library's
// turnoff-legality encoding, and cross-validates the multiprocessor column
// against the live Figure 2 FSM (classify_turnoff).

#include <iostream>
#include <string>

#include "cdsim/coherence/mesi.hpp"
#include "cdsim/coherence/turnoff_legality.hpp"
#include "cdsim/common/table.hpp"

using namespace cdsim;
using namespace cdsim::coherence;

namespace {

std::string describe(const TurnOffVerdict& v) {
  std::string s;
  if (!v.allowed && v.requires_no_pending_write) {
    return "turn off, if no pending write [blocked: pending write]";
  }
  s = "turn off";
  if (v.requires_no_pending_write) s += ", if no pending write";
  if (v.requires_writeback) s += " + write back";
  if (v.requires_upper_inval) s += " + invalidate upper level";
  return s;
}

}  // namespace

int main() {
  std::cout << "Table I: turn-off legality by hierarchy and L2 line state\n"
            << "(pending-write column shows the gated case)\n\n";

  TextTable t;
  t.row().cell("hierarchy").cell("L2 line").cell("no pending write").cell(
      "pending write");
  for (const HierarchyKind h :
       {HierarchyKind::kUniprocessorWritebackL1,
        HierarchyKind::kUniprocessorWritethroughL1,
        HierarchyKind::kMultiprocessorWritethroughL1}) {
    for (const bool dirty : {false, true}) {
      const auto free_v = table1_verdict(h, dirty, /*pending=*/false);
      const auto pend_v = table1_verdict(h, dirty, /*pending=*/true);
      t.row()
          .cell(std::string(to_string(h)))
          .cell(dirty ? "Dirty" : "Clean")
          .cell(describe(free_v))
          .cell(pend_v.allowed ? describe(pend_v) : "wait");
    }
  }
  t.print(std::cout);

  // Cross-check against the FSM (multiprocessor column).
  std::cout << "\nFSM cross-check (multiprocessor, WT L1):\n";
  TextTable f;
  f.row().cell("MESI state").cell("classify_turnoff").cell("transient");
  for (const MesiState s :
       {MesiState::kShared, MesiState::kExclusive, MesiState::kModified}) {
    const TurnOffClass c = classify_turnoff(s);
    f.row()
        .cell(std::string(to_string(s)))
        .cell(c == TurnOffClass::kDirtyTurnOff
                  ? "dirty: invalidate L1, write back, off"
                  : "clean: invalidate L1, off")
        .cell(std::string(to_string(turnoff_transient(s))));
  }
  f.print(std::cout);
  return 0;
}
