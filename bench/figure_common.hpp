#pragma once
// Shared scaffolding for the per-figure bench binaries.
//
// Every figure bench sweeps (a subset of) the paper's grid — 6 benchmarks x
// {1,2,4,8} MB x 7 techniques + baseline — through one ExperimentRunner,
// which persists results to cdsim_results.cache so the whole bench suite
// pays for each configuration exactly once.

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "cdsim/common/table.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/sim/parallel.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::bench {

/// Fills the paper grid (suite x sizes x techniques + baselines) in
/// parallel and reports what actually had to be simulated. After this,
/// every runner.relative()/suite_average() on those cells is a memo hit.
/// Figures that only need one column pass their own size list.
inline sim::SweepStats prefetch_paper_grid(
    sim::ExperimentRunner& runner,
    const std::vector<std::uint64_t>& sizes = sim::paper_cache_sizes()) {
  const sim::SweepStats sweep = runner.run_grid(
      workload::benchmark_suite(), sizes, sim::paper_technique_set());
  // Progress goes to stderr: stdout carries only figure data, so cached
  // and uncached runs of a bench produce identical redirectable output.
  if (sweep.simulated > 0) {
    std::cerr << "[simulated " << sweep.simulated << " configurations on "
              << sweep.workers << " workers; " << sweep.reused
              << " already cached]\n";
  }
  return sweep;
}

/// Prints one paper figure: rows = techniques, columns = total cache sizes
/// (the paper's BM1/BM2/BM4/BM8 groups), cell = suite-average metric.
inline void print_size_sweep_figure(
    const std::string& title, const std::string& metric_name,
    const std::function<double(const sim::RelativeMetrics&)>& metric,
    int precision = 1) {
  sim::ExperimentRunner runner;
  prefetch_paper_grid(runner);
  std::cout << title << "\n";
  std::cout << "(metric: " << metric_name << "; suite average over "
            << workload::benchmark_suite().size() << " benchmarks, "
            << runner.instructions_per_core()
            << " instructions/core; columns are total L2 capacity)\n\n";

  TextTable t;
  auto& header = t.row().cell("technique");
  for (const std::uint64_t size : sim::paper_cache_sizes()) {
    header.cell(std::to_string(size / MiB) + "MB");
  }
  for (const auto& tech : sim::paper_technique_set()) {
    auto& row = t.row().cell(tech.label());
    for (const std::uint64_t size : sim::paper_cache_sizes()) {
      const sim::RelativeMetrics r = runner.suite_average(size, tech);
      row.pct(metric(r), precision);
    }
  }
  t.print(std::cout);
}

}  // namespace cdsim::bench
