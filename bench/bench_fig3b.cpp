// Figure 3(b) — aggregate L2 miss rate.
//
// Paper shape: low overall; decay > selective decay > protocol == baseline;
// decay-induced misses are roughly insensitive to cache size.

#include "figure_common.hpp"

int main() {
  cdsim::bench::print_size_sweep_figure(
      "Figure 3(b): L2 miss rate", "miss_rate",
      [](const cdsim::sim::RelativeMetrics& r) { return r.miss_rate; });
  return 0;
}
