// Figure 3(a) — L2 occupation rate.
//
// Average fraction of time an L2 line is powered on, per technique and
// total cache size (baseline == 100% by definition). Paper shape: protocol
// 87%..50% falling with size; decay <10%..<1%; selective decay in between.

#include "figure_common.hpp"

int main() {
  cdsim::bench::print_size_sweep_figure(
      "Figure 3(a): L2 occupation rate", "occupation",
      [](const cdsim::sim::RelativeMetrics& r) { return r.occupation; });
  return 0;
}
