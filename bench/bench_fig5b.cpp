// Figure 5(b) — IPC loss vs. the always-on baseline.
//
// Paper shape: protocol == 0; decay worst and strongly sensitive to the
// decay time; selective decay recovers most of decay's loss.

#include "figure_common.hpp"

int main() {
  cdsim::bench::print_size_sweep_figure(
      "Figure 5(b): IPC loss vs. baseline", "ipc_loss",
      [](const cdsim::sim::RelativeMetrics& r) { return r.ipc_loss; });
  return 0;
}
