// Figure 4(b) — AMAT (average memory access time) increase vs. baseline.
//
// Paper shape: decay worsens AMAT by ~10% on average; selective decay
// recovers roughly half of that; protocol adds nothing.

#include "figure_common.hpp"

int main() {
  cdsim::bench::print_size_sweep_figure(
      "Figure 4(b): AMAT increase vs. baseline", "amat_increase",
      [](const cdsim::sim::RelativeMetrics& r) { return r.amat_increase; });
  return 0;
}
