// Figure 5(a) — system energy reduction vs. the always-on baseline.
//
// Paper shape: savings grow with cache size (the optimized fraction is L2
// leakage); at 4 MB protocol/decay/SD save ~13%/30%/21%; decay time is only
// mildly influential; aggressive decay on small caches can go negative.

#include "figure_common.hpp"

int main() {
  cdsim::bench::print_size_sweep_figure(
      "Figure 5(a): system energy reduction vs. baseline", "energy",
      [](const cdsim::sim::RelativeMetrics& r) { return r.energy_reduction; });
  return 0;
}
