// Figures 6(a) and 6(b) — per-benchmark energy reduction and IPC loss at
// 4 MB total L2.
//
// Paper shape: heterogeneous. Protocol competes with decay on WATER-NS and
// mpeg2dec; selective decay matches decay except on FMM (dirty residency);
// scientific codes lose far more IPC to aggressive decay than multimedia.

#include <iostream>

#include "figure_common.hpp"

int main() {
  using namespace cdsim;
  sim::ExperimentRunner runner;
  const std::uint64_t size = 4 * MiB;
  const auto techniques = sim::paper_technique_set();

  // This figure only needs the 4 MB column; fill it in parallel up front.
  bench::prefetch_paper_grid(runner, {size});

  std::cout << "Figure 6: per-benchmark results at 4MB total L2 ("
            << runner.instructions_per_core() << " instructions/core)\n\n";

  std::cout << "Figure 6(a): energy reduction vs. baseline\n";
  TextTable ta;
  auto& ha = ta.row().cell("technique");
  for (const auto& b : workload::benchmark_suite()) ha.cell(b.config.name);
  for (const auto& tech : techniques) {
    auto& row = ta.row().cell(tech.label());
    for (const auto& b : workload::benchmark_suite()) {
      row.pct(runner.relative(b, size, tech).energy_reduction);
    }
  }
  ta.print(std::cout);

  std::cout << "\nFigure 6(b): IPC loss vs. baseline\n";
  TextTable tb;
  auto& hb = tb.row().cell("technique");
  for (const auto& b : workload::benchmark_suite()) hb.cell(b.config.name);
  for (const auto& tech : techniques) {
    auto& row = tb.row().cell(tech.label());
    for (const auto& b : workload::benchmark_suite()) {
      row.pct(runner.relative(b, size, tech).ipc_loss);
    }
  }
  tb.print(std::cout);
  return 0;
}
