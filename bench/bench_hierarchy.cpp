// bench_hierarchy — the hierarchy-family datapoint: the same cores and
// workload run as {two-level bus, two-level dmesh, three-level dmesh},
// baseline vs. decay-at-every-level, with per-level hit/miss/turn-off
// attribution in the output. The interesting columns: how much off-chip
// traffic the shared L3 filters (mem_bytes, l3 hit share), what decay at
// each level contributes (per-level turn-offs and occupations), and the
// IPC cost of the deeper hierarchy.
//
// Emits BENCH_hierarchy.json (CI uploads it as an artifact).
//
// Usage: bench_hierarchy [output.json]   (default: BENCH_hierarchy.json)
//        CDSIM_INSTR=<n> overrides the 120000 instructions/core default
//        (CI uses a small value: this is a datapoint generator, not a
//        statistically rigorous benchmark harness).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cdsim/common/version.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

using namespace cdsim;

namespace {

constexpr const char* kBenchmark = "FMM";  // sharing-heavy scientific code
constexpr std::uint32_t kCores = 16;

struct Shape {
  const char* name;
  noc::Topology topology;
  sim::Hierarchy hierarchy;
};

constexpr Shape kShapes[] = {
    {"bus-2L", noc::Topology::kSnoopBus, sim::Hierarchy::kTwoLevel},
    {"dmesh-2L", noc::Topology::kDirectoryMesh, sim::Hierarchy::kTwoLevel},
    {"dmesh-3L", noc::Topology::kDirectoryMesh, sim::Hierarchy::kThreeLevel},
};

struct Cell {
  const Shape* shape;
  decay::DecayConfig technique;
  sim::RunMetrics m;
  double wall_ms = 0.0;
};

void print_level_json(std::FILE* f, const char* name,
                      const sim::LevelMetrics& l, const char* tail) {
  std::fprintf(f,
               "     \"%s\": {\"accesses\": %llu, \"hits\": %llu, "
               "\"misses\": %llu, \"decay_turnoffs\": %llu, "
               "\"decay_induced_misses\": %llu, \"writebacks\": %llu, "
               "\"occupation\": %.6f}%s\n",
               name, static_cast<unsigned long long>(l.accesses),
               static_cast<unsigned long long>(l.hits),
               static_cast<unsigned long long>(l.misses),
               static_cast<unsigned long long>(l.decay_turnoffs),
               static_cast<unsigned long long>(l.decay_induced_misses),
               static_cast<unsigned long long>(l.writebacks), l.occupation,
               tail);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t instr = 120000;
  if (const char* env = std::getenv("CDSIM_INSTR")) {
    const auto v = sim::detail::parse_positive_u64(env);
    if (!v.has_value()) {
      std::fprintf(stderr, "bench_hierarchy: invalid CDSIM_INSTR \"%s\"\n",
                   env);
      return 1;
    }
    instr = *v;
  }

  const std::vector<decay::DecayConfig> techniques = {
      sim::baseline_config(),
      decay::DecayConfig{decay::Technique::kDecay, 64 * 1024, 4},
  };

  const workload::Benchmark& bench = workload::benchmark_by_name(kBenchmark);
  std::vector<Cell> cells;
  std::printf("bench_hierarchy: %s, %u cores, %llu instr/core, "
              "{bus-2L, dmesh-2L, dmesh-3L}\n",
              kBenchmark, kCores, static_cast<unsigned long long>(instr));

  for (const Shape& shape : kShapes) {
    for (const decay::DecayConfig& tech : techniques) {
      // The bus machine caps out at 4 cores of scaling interest but runs
      // 16 here too so every shape faces the identical workload grid.
      sim::SystemConfig cfg = sim::make_system_config(
          static_cast<std::uint64_t>(kCores) * MiB, tech);
      cfg.num_cores = kCores;
      cfg.topology = shape.topology;
      cfg.hierarchy = shape.hierarchy;
      cfg.instructions_per_core = instr;
      if (shape.hierarchy == sim::Hierarchy::kThreeLevel) {
        cfg.total_l3_bytes = 4 * cfg.total_l2_bytes;
        // Decay at every level: the technique runs in the L1 front ends
        // and the shared L3 banks too.
        cfg.l1_decay = cfg.decay;
        cfg.l3_decay = cfg.decay;
      }

      const auto t0 = std::chrono::steady_clock::now();
      Cell cell{&shape, tech, sim::run_config(cfg, bench), 0.0};
      cell.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      std::printf(
          "  %-8s %-9s ipc=%6.3f mem=%8llu B l3hit%%=%5.1f "
          "toffs=[%llu,%llu,%llu]  (%.0f ms)\n",
          shape.name, tech.label().c_str(), cell.m.ipc,
          static_cast<unsigned long long>(cell.m.mem_bytes),
          cell.m.l3.accesses
              ? 100.0 * static_cast<double>(cell.m.l3.hits) /
                    static_cast<double>(cell.m.l3.accesses)
              : 0.0,
          static_cast<unsigned long long>(cell.m.l1.decay_turnoffs),
          static_cast<unsigned long long>(cell.m.l2.decay_turnoffs),
          static_cast<unsigned long long>(cell.m.l3.decay_turnoffs),
          cell.wall_ms);
      cells.push_back(std::move(cell));
    }
  }

  const char* out = argc > 1 ? argv[1] : "BENCH_hierarchy.json";
  std::FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_hierarchy: cannot write %s\n", out);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_hierarchy\",\n");
  std::fprintf(f, "  \"version\": \"%s\",\n", version());
  std::fprintf(f, "  \"benchmark\": \"%s\",\n  \"cores\": %u,\n", kBenchmark,
               kCores);
  std::fprintf(f, "  \"instructions_per_core\": %llu,\n  \"configs\": [\n",
               static_cast<unsigned long long>(instr));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const sim::RunMetrics& m = c.m;
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"topology\": \"%s\", "
                 "\"hierarchy\": \"%s\", \"technique\": \"%s\",\n"
                 "     \"cycles\": %llu, \"ipc\": %.6f, "
                 "\"mem_bytes\": %llu, \"mem_bandwidth\": %.6f, "
                 "\"energy\": %.6e,\n"
                 "     \"fabric_utilization\": %.6f, "
                 "\"total_l3_bytes\": %llu,\n",
                 c.shape->name,
                 std::string(noc::to_string(c.shape->topology)).c_str(),
                 m.hierarchy.c_str(), c.technique.label().c_str(),
                 static_cast<unsigned long long>(m.cycles), m.ipc,
                 static_cast<unsigned long long>(m.mem_bytes),
                 m.mem_bandwidth, m.energy, m.bus_utilization,
                 static_cast<unsigned long long>(m.total_l3_bytes));
    print_level_json(f, "l1", m.l1, ",");
    print_level_json(f, "l2", m.l2, ",");
    print_level_json(f, "l3", m.l3, ",");
    std::fprintf(f, "     \"wall_ms\": %.3f}%s\n", c.wall_ms,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("bench_hierarchy: wrote %s (%zu configs)\n", out,
              cells.size());
  return 0;
}
