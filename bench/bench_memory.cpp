// bench_memory — the memory-side datapoint: the same workload run against
// the banked DRAM model (per-core TLBs on) under increasingly aggressive
// cache decay. The interesting column is the row-buffer hit rate: decay
// turn-offs eject dirty lines in bursts, and those write-backs interleave
// with demand reads at the DRAM banks, replacing streaming row hits with
// row conflicts. A flat-model reference cell anchors the IPC comparison.
//
// Emits BENCH_memory.json (CI uploads it as an artifact).
//
// Usage: bench_memory [output.json]   (default: BENCH_memory.json)
//        CDSIM_INSTR=<n> overrides the 120000 instructions/core default
//        (CI uses a small value: this is a datapoint generator, not a
//        statistically rigorous benchmark harness).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cdsim/common/version.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

using namespace cdsim;

namespace {

constexpr const char* kBenchmark = "mpeg2enc";  // streaming + working set
constexpr std::uint64_t kTotalL2MiB = 4;

struct Cell {
  const char* name;
  mem::MemoryModel model;
  decay::DecayConfig technique;
  sim::RunMetrics m;
  double wall_ms = 0.0;
};

double row_hit_rate(const sim::RunMetrics& m) {
  const double total = static_cast<double>(
      m.dram_row_hits + m.dram_row_misses + m.dram_row_conflicts);
  return total > 0.0 ? static_cast<double>(m.dram_row_hits) / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t instr = 120000;
  if (const char* env = std::getenv("CDSIM_INSTR")) {
    const auto v = sim::detail::parse_positive_u64(env);
    if (!v.has_value()) {
      std::fprintf(stderr, "bench_memory: invalid CDSIM_INSTR \"%s\"\n", env);
      return 1;
    }
    instr = *v;
  }

  struct Shape {
    const char* name;
    mem::MemoryModel model;
    decay::DecayConfig technique;
  };
  const Shape shapes[] = {
      {"flat/decay64K", mem::MemoryModel::kFlat,
       decay::DecayConfig{decay::Technique::kDecay, 64 * 1024, 4}},
      {"dram/baseline", mem::MemoryModel::kDram, sim::baseline_config()},
      {"dram/decay256K", mem::MemoryModel::kDram,
       decay::DecayConfig{decay::Technique::kDecay, 256 * 1024, 4}},
      {"dram/decay64K", mem::MemoryModel::kDram,
       decay::DecayConfig{decay::Technique::kDecay, 64 * 1024, 4}},
      {"dram/decay16K", mem::MemoryModel::kDram,
       decay::DecayConfig{decay::Technique::kDecay, 16 * 1024, 4}},
  };

  const workload::Benchmark& bench = workload::benchmark_by_name(kBenchmark);
  std::vector<Cell> cells;
  std::printf("bench_memory: %s, %llu MiB L2, %llu instr/core, "
              "flat reference + DRAM x decay aggressiveness\n",
              kBenchmark, static_cast<unsigned long long>(kTotalL2MiB),
              static_cast<unsigned long long>(instr));

  for (const Shape& shape : shapes) {
    sim::SystemConfig cfg =
        sim::make_system_config(kTotalL2MiB * MiB, shape.technique);
    cfg.instructions_per_core = instr;
    cfg.mem.model = shape.model;
    cfg.mem.tlb.enabled = shape.model == mem::MemoryModel::kDram;
    // One channel: with the default fine-grained channel interleave the
    // cores' streams already shred row locality and the decay effect is
    // buried; a single channel keeps the baseline row-hit rate high so
    // the write-back bursts' damage is measurable.
    cfg.mem.dram.channels = 1;

    const auto t0 = std::chrono::steady_clock::now();
    Cell cell{shape.name, shape.model, shape.technique,
              sim::run_config(cfg, bench), 0.0};
    cell.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    const sim::RunMetrics& m = cell.m;
    std::printf("  %-14s ipc=%6.3f mem=%8llu B rowhit%%=%5.1f "
                "conflicts=%7llu wb=%6llu fwd=%4llu  (%.0f ms)\n",
                cell.name, m.ipc,
                static_cast<unsigned long long>(m.mem_bytes),
                100.0 * row_hit_rate(m),
                static_cast<unsigned long long>(m.dram_row_conflicts),
                static_cast<unsigned long long>(m.l2_writebacks),
                static_cast<unsigned long long>(m.dram_write_forwards),
                cell.wall_ms);
    cells.push_back(std::move(cell));
  }

  const char* out = argc > 1 ? argv[1] : "BENCH_memory.json";
  std::FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_memory: cannot write %s\n", out);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_memory\",\n");
  std::fprintf(f, "  \"version\": \"%s\",\n", version());
  std::fprintf(f, "  \"benchmark\": \"%s\",\n  \"total_l2_mib\": %llu,\n",
               kBenchmark, static_cast<unsigned long long>(kTotalL2MiB));
  std::fprintf(f, "  \"instructions_per_core\": %llu,\n  \"configs\": [\n",
               static_cast<unsigned long long>(instr));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const sim::RunMetrics& m = c.m;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"mem_model\": \"%s\", "
                 "\"technique\": \"%s\",\n"
                 "     \"cycles\": %llu, \"ipc\": %.6f, "
                 "\"mem_bytes\": %llu, \"l2_writebacks\": %llu, "
                 "\"energy\": %.6e,\n"
                 "     \"dram\": {\"row_hits\": %llu, \"row_misses\": %llu, "
                 "\"row_conflicts\": %llu, \"row_hit_rate\": %.6f,\n"
                 "              \"activates\": %llu, \"precharges\": %llu, "
                 "\"refreshes\": %llu, \"write_forwards\": %llu},\n"
                 "     \"tlb\": {\"hits\": %llu, \"misses\": %llu},\n"
                 "     \"wall_ms\": %.3f}%s\n",
                 c.name, m.mem_model.c_str(), c.technique.label().c_str(),
                 static_cast<unsigned long long>(m.cycles), m.ipc,
                 static_cast<unsigned long long>(m.mem_bytes),
                 static_cast<unsigned long long>(m.l2_writebacks), m.energy,
                 static_cast<unsigned long long>(m.dram_row_hits),
                 static_cast<unsigned long long>(m.dram_row_misses),
                 static_cast<unsigned long long>(m.dram_row_conflicts),
                 row_hit_rate(m),
                 static_cast<unsigned long long>(m.dram_activates),
                 static_cast<unsigned long long>(m.dram_precharges),
                 static_cast<unsigned long long>(m.dram_refreshes),
                 static_cast<unsigned long long>(m.dram_write_forwards),
                 static_cast<unsigned long long>(m.tlb_hits),
                 static_cast<unsigned long long>(m.tlb_misses), c.wall_ms,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("bench_memory: wrote %s (%zu configs)\n", out, cells.size());
  return 0;
}
