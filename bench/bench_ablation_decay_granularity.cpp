// Ablation A1 — hierarchical-counter granularity.
//
// The decay hardware quantizes idle time: a line dies between decay_time
// and decay_time + decay_time/N for an N-tick cascaded counter. This
// ablation sweeps N to show the quantization's effect on occupation and on
// decay-induced misses — justifying the paper's (and Kaxiras et al.'s)
// choice of 2-bit per-line counters (N = 4).

#include <iostream>

#include "cdsim/common/table.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

int main() {
  using namespace cdsim;
  const auto& bench = workload::benchmark_by_name("mpeg2dec");

  std::cout << "Ablation: hierarchical decay-counter ticks per interval\n"
            << "(mpeg2dec, 4MB total L2, decay 128K)\n\n";

  TextTable t;
  t.row()
      .cell("ticks")
      .cell("sweep period")
      .cell("occupation")
      .cell("decay-induced misses")
      .cell("IPC");
  for (const std::uint32_t ticks : {1u, 2u, 4u, 8u, 16u}) {
    decay::DecayConfig d;
    d.technique = decay::Technique::kDecay;
    d.decay_time = 128 * 1024;
    d.hierarchical_ticks = ticks;
    sim::SystemConfig cfg = sim::make_system_config(4 * MiB, d);
    cfg.instructions_per_core = 1500000;
    const sim::RunMetrics m = sim::run_config(cfg, bench);
    t.row()
        .cell(std::to_string(ticks))
        .cell(std::to_string(d.tick_period()) + " cyc")
        .pct(m.l2_occupation)
        .cell(std::to_string(m.l2_decay_induced_misses))
        .cell(m.ipc, 3);
  }
  t.print(std::cout);
  return 0;
}
