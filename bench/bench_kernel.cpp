// End-to-end simulation-kernel benchmark: wall-times one pinned
// fig3a-class configuration (mpeg2enc, 8 MB total L2, decay64K — a cell of
// the paper's Figure 3(a) grid) plus its always-on baseline, and writes the
// result to BENCH_kernel.json so the kernel's throughput is tracked across
// PRs.
//
// Unlike the figure benches this deliberately bypasses the result cache:
// every invocation simulates, because the simulation itself is the thing
// being measured. CDSIM_INSTR scales the run (CI smoke uses a small value);
// the default of 1M instructions/core keeps a full-fidelity sample under a
// couple of seconds.
//
// Usage: bench_kernel [output.json] [--baseline file] [--tolerance ratio]
//   output.json   where to write this run's numbers (default BENCH_kernel.json)
//   --baseline    a previously committed BENCH_kernel.json to gate against:
//                 the deterministic fields (events, cycles, l2_misses,
//                 decay_turnoffs, occupation) must match BIT-EXACTLY when the
//                 instruction budgets agree, and best_ms may not exceed
//                 baseline * tolerance. This is the CI perf gate for the
//                 throughput-class sweep.
//   --tolerance   wall-clock slowdown ratio allowed vs. the baseline
//                 (default 3.0 — wide on purpose: shared CI runners are
//                 noisy and the committed baseline came from different
//                 hardware; the gate catches order-of-magnitude sins, the
//                 committed history catches drift).

#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cdsim/common/version.hpp"
#include "cdsim/obs/interval_sampler.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace {

using namespace cdsim;

constexpr int kReps = 3;  ///< Best-of-N to shed scheduler noise.

struct Sample {
  std::string label;
  std::vector<double> runs_ms;
  double best_ms = 0.0;
  std::uint64_t events = 0;
  Cycle cycles = 0;
  sim::RunMetrics metrics;
};

Sample run_pinned(const decay::DecayConfig& dcfg, std::uint64_t instr,
                  bool traced = false) {
  Sample s;
  s.label = dcfg.label() + (traced ? "+obs" : "");
  const workload::Benchmark& bench = workload::benchmark_by_name("mpeg2enc");
  sim::SystemConfig cfg = sim::make_system_config(8 * MiB, dcfg);
  cfg.instructions_per_core = instr;
  s.best_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    // Fresh system per rep, seeded exactly as run_config would seed this
    // cell, so the metrics match what the figure benches compute for it.
    sim::CmpSystem sys(sim::normalized_run_config(cfg, bench), bench);
    // The traced sample measures observability *attached*: full recorder
    // emission streamed to the bit bucket (so disk speed isn't in the
    // measurement) plus a checksum-only sampler. Comparing its metrics
    // against the plain sample's is the observer-only proof; comparing its
    // best_ms is the attached-overhead number.
    obs::TraceRecorder rec;
    obs::IntervalSampler sampler(10'000);
    if (traced) {
      if (!rec.open("/dev/null")) {
        std::fprintf(stderr, "bench_kernel: cannot open /dev/null\n");
        std::exit(1);
      }
      sys.set_trace_recorder(&rec);
      sys.set_sampler(&sampler);
    }
    const auto t0 = std::chrono::steady_clock::now();
    sim::RunMetrics m = sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (traced) rec.close();
    s.runs_ms.push_back(ms);
    if (ms < s.best_ms) s.best_ms = ms;
    s.events = sys.events().executed();
    s.cycles = m.cycles;
    s.metrics = std::move(m);
  }
  return s;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Bit-identity across the fields the golden tests pin. Tolerance-free on
/// purpose: the observability seam promises *zero* perturbation, not
/// "close enough".
bool metrics_identical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  return a.cycles == b.cycles && a.instructions == b.instructions &&
         same_bits(a.ipc, b.ipc) &&
         same_bits(a.l2_occupation, b.l2_occupation) &&
         same_bits(a.l2_miss_rate, b.l2_miss_rate) &&
         a.l2_accesses == b.l2_accesses && a.l2_misses == b.l2_misses &&
         a.l2_decay_turnoffs == b.l2_decay_turnoffs &&
         same_bits(a.amat, b.amat) && same_bits(a.energy, b.energy) &&
         a.mem_bytes == b.mem_bytes &&
         same_bits(a.bus_utilization, b.bus_utilization) &&
         same_bits(a.avg_l2_temp_kelvin, b.avg_l2_temp_kelvin);
}

void print_json(std::FILE* f, const std::vector<Sample>& samples,
                std::uint64_t instr, double traced_over_plain) {
  std::fprintf(f, "{\n  \"bench\": \"bench_kernel\",\n");
  std::fprintf(f, "  \"version\": \"%s\",\n", version());
  std::fprintf(f, "  \"benchmark\": \"mpeg2enc\",\n");
  std::fprintf(f, "  \"total_l2_bytes\": %llu,\n",
               static_cast<unsigned long long>(8 * MiB));
  std::fprintf(f, "  \"instructions_per_core\": %llu,\n",
               static_cast<unsigned long long>(instr));
  std::fprintf(f, "  \"reps\": %d,\n  \"configs\": [\n", kReps);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f, "    {\"technique\": \"%s\", \"best_ms\": %.3f, ",
                 s.label.c_str(), s.best_ms);
    std::fprintf(f, "\"runs_ms\": [");
    for (std::size_t r = 0; r < s.runs_ms.size(); ++r) {
      std::fprintf(f, "%s%.3f", r ? ", " : "", s.runs_ms[r]);
    }
    std::fprintf(f, "], \"events\": %llu, \"cycles\": %llu, ",
                 static_cast<unsigned long long>(s.events),
                 static_cast<unsigned long long>(s.cycles));
    std::fprintf(f, "\"events_per_sec\": %.0f, ",
                 s.best_ms > 0.0 ? static_cast<double>(s.events) /
                                       (s.best_ms / 1000.0)
                                 : 0.0);
    // Enough of the metrics to cross-check against the golden test.
    std::fprintf(f,
                 "\"l2_misses\": %llu, \"decay_turnoffs\": %llu, "
                 "\"occupation\": %.17g}%s\n",
                 static_cast<unsigned long long>(s.metrics.l2_misses),
                 static_cast<unsigned long long>(s.metrics.l2_decay_turnoffs),
                 s.metrics.l2_occupation, i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Wall-clock cost of running with the recorder + sampler attached,
  // relative to the same config untraced. The compiled-in-but-detached
  // cost is invisible here by construction (every sample pays the same
  // null-pointer branches); this ratio bounds the *attached* cost.
  std::fprintf(f, "  \"traced_over_plain\": %.3f,\n", traced_over_plain);
  std::fprintf(f, "  \"observer_invariant\": true\n}\n");
}

// ---------------------------------------------------------------------------
// Baseline gate (--baseline): hand-rolled extraction tuned to print_json's
// own output — every config object is a single line, every scalar is
// `"key": value`. No JSON library in the tree, and none needed to re-read
// a format this file itself wrote.
// ---------------------------------------------------------------------------

struct BaselineConfig {
  double best_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t cycles = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t decay_turnoffs = 0;
  double occupation = 0.0;
};

struct Baseline {
  std::uint64_t instructions_per_core = 0;
  // Parallel arrays keyed by technique label, in file order.
  std::vector<std::string> labels;
  std::vector<BaselineConfig> configs;

  [[nodiscard]] const BaselineConfig* find(const std::string& label) const {
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == label) return &configs[i];
    }
    return nullptr;
  }
};

/// Extracts `"key": <number>` from one line; nullopt if the key is absent.
std::optional<double> field_number(const std::string& line,
                                   const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> field_u64(const std::string& line,
                                       const std::string& key) {
  const auto v = field_number(line, key);
  if (!v.has_value()) return std::nullopt;
  return static_cast<std::uint64_t>(*v);
}

/// Extracts `"key": "<text>"` from one line.
std::optional<std::string> field_string(const std::string& line,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return std::nullopt;
  return line.substr(start, close - start);
}

std::optional<Baseline> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  Baseline b;
  std::string line;
  while (std::getline(in, line)) {
    if (const auto instr = field_u64(line, "instructions_per_core")) {
      b.instructions_per_core = *instr;
    }
    const auto label = field_string(line, "technique");
    if (!label.has_value()) continue;
    BaselineConfig c;
    const auto best = field_number(line, "best_ms");
    const auto events = field_u64(line, "events");
    const auto cycles = field_u64(line, "cycles");
    const auto misses = field_u64(line, "l2_misses");
    const auto turnoffs = field_u64(line, "decay_turnoffs");
    const auto occ = field_number(line, "occupation");
    if (!best || !events || !cycles || !misses || !turnoffs || !occ) {
      std::fprintf(stderr,
                   "bench_kernel: malformed baseline config line: %s\n",
                   line.c_str());
      return std::nullopt;
    }
    c.best_ms = *best;
    c.events = *events;
    c.cycles = *cycles;
    c.l2_misses = *misses;
    c.decay_turnoffs = *turnoffs;
    c.occupation = *occ;
    b.labels.push_back(*label);
    b.configs.push_back(c);
  }
  return b;
}

/// Compares this run against the baseline. Deterministic fields (event
/// count, cycles, misses, turnoffs, occupation) are a hard gate: the
/// simulator promises bit-identical runs per config, so ANY drift is a
/// functional regression, not noise. Wall clock is gated by `tolerance`
/// (slowdown only — getting faster is the point). Returns failure count.
int check_against_baseline(const std::vector<Sample>& samples,
                           const Baseline& base, std::uint64_t instr,
                           double tolerance) {
  if (base.instructions_per_core != instr) {
    std::printf(
        "bench_kernel: baseline was recorded at %llu instr/core, this run "
        "uses %llu — skipping gate (rerun with CDSIM_INSTR=%llu to compare)\n",
        static_cast<unsigned long long>(base.instructions_per_core),
        static_cast<unsigned long long>(instr),
        static_cast<unsigned long long>(base.instructions_per_core));
    return 0;
  }
  int failures = 0;
  const auto fail = [&failures](const std::string& label, const char* what,
                                double got, double want) {
    std::fprintf(stderr,
                 "bench_kernel: BASELINE MISMATCH [%s] %s: got %.17g, "
                 "baseline %.17g\n",
                 label.c_str(), what, got, want);
    ++failures;
  };
  for (const Sample& s : samples) {
    const BaselineConfig* c = base.find(s.label);
    if (c == nullptr) {
      std::fprintf(stderr,
                   "bench_kernel: baseline has no \"%s\" config — "
                   "regenerate it with this binary\n",
                   s.label.c_str());
      ++failures;
      continue;
    }
    if (s.events != c->events) {
      fail(s.label, "events", static_cast<double>(s.events),
           static_cast<double>(c->events));
    }
    if (s.cycles != c->cycles) {
      fail(s.label, "cycles", static_cast<double>(s.cycles),
           static_cast<double>(c->cycles));
    }
    if (s.metrics.l2_misses != c->l2_misses) {
      fail(s.label, "l2_misses", static_cast<double>(s.metrics.l2_misses),
           static_cast<double>(c->l2_misses));
    }
    if (s.metrics.l2_decay_turnoffs != c->decay_turnoffs) {
      fail(s.label, "decay_turnoffs",
           static_cast<double>(s.metrics.l2_decay_turnoffs),
           static_cast<double>(c->decay_turnoffs));
    }
    // %.17g round-trips doubles exactly, so plain equality IS bit equality
    // (modulo -0.0/NaN, which l2_occupation never is).
    if (s.metrics.l2_occupation != c->occupation) {
      fail(s.label, "occupation", s.metrics.l2_occupation, c->occupation);
    }
    if (c->best_ms > 0.0 && s.best_ms > c->best_ms * tolerance) {
      std::fprintf(stderr,
                   "bench_kernel: PERF REGRESSION [%s] best %.1f ms vs "
                   "baseline %.1f ms (limit %.1f ms = %.2fx)\n",
                   s.label.c_str(), s.best_ms, c->best_ms,
                   c->best_ms * tolerance, tolerance);
      ++failures;
    } else {
      std::printf("  gate [%s]: %.1f ms vs baseline %.1f ms (%.2fx, "
                  "limit %.2fx)\n",
                  s.label.c_str(), s.best_ms, c->best_ms,
                  c->best_ms > 0.0 ? s.best_ms / c->best_ms : 0.0, tolerance);
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_kernel.json";
  std::string baseline_path;
  double tolerance = 3.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_kernel: --baseline needs a file\n");
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_kernel: --tolerance needs a ratio\n");
        return 2;
      }
      char* end = nullptr;
      tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || tolerance <= 0.0) {
        std::fprintf(stderr, "bench_kernel: invalid --tolerance \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_kernel: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      out = arg;
    }
  }

  // Load (and validate) the baseline up front so a bad path fails in
  // milliseconds, not after the measurement runs.
  std::optional<Baseline> baseline;
  if (!baseline_path.empty()) {
    baseline = load_baseline(baseline_path);
    if (!baseline.has_value()) {
      std::fprintf(stderr, "bench_kernel: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
  }

  std::uint64_t instr = 1'000'000;
  if (const char* env = std::getenv("CDSIM_INSTR")) {
    const auto v = cdsim::sim::detail::parse_positive_u64(env);
    if (!v.has_value()) {
      std::fprintf(stderr, "bench_kernel: invalid CDSIM_INSTR \"%s\"\n", env);
      return 1;
    }
    instr = *v;
  }

  const decay::DecayConfig decay64k{decay::Technique::kDecay, 64 * 1024, 4};
  std::vector<Sample> samples;
  samples.push_back(run_pinned(sim::baseline_config(), instr));
  samples.push_back(run_pinned(decay64k, instr));
  samples.push_back(run_pinned(decay64k, instr, /*traced=*/true));

  // The observer-only gate: attaching the recorder + sampler must leave
  // every pinned metric bit-identical. A drift here means an emission
  // point read back into (or scheduled into) simulated state.
  if (!metrics_identical(samples[1].metrics, samples[2].metrics)) {
    std::fprintf(stderr,
                 "bench_kernel: FAIL — metrics drifted with observability "
                 "attached (traced run is not observer-only)\n");
    return 1;
  }
  const double traced_over_plain =
      samples[1].best_ms > 0.0 ? samples[2].best_ms / samples[1].best_ms : 0.0;

  std::printf("bench_kernel: mpeg2enc / 8MB / %llu instr/core, best of %d\n",
              static_cast<unsigned long long>(instr), kReps);
  for (const Sample& s : samples) {
    std::printf(
        "  %-10s best %8.1f ms   %10llu events   %8.0f Kevents/s   "
        "%8llu cycles\n",
        s.label.c_str(), s.best_ms,
        static_cast<unsigned long long>(s.events),
        static_cast<double>(s.events) / s.best_ms,
        static_cast<unsigned long long>(s.cycles));
  }
  std::printf("  traced/plain wall-clock ratio: %.3f (metrics bit-identical)\n",
              traced_over_plain);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kernel: cannot write %s\n", out.c_str());
    return 1;
  }
  print_json(f, samples, instr, traced_over_plain);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  // The perf gate runs AFTER the JSON is written: a failing run still
  // leaves its numbers on disk for the CI artifact upload / postmortem.
  if (baseline.has_value()) {
    const int failures =
        check_against_baseline(samples, *baseline, instr, tolerance);
    if (failures != 0) {
      std::fprintf(stderr, "bench_kernel: %d baseline gate failure(s)\n",
                   failures);
      return 1;
    }
  }
  return 0;
}
