// End-to-end simulation-kernel benchmark: wall-times one pinned
// fig3a-class configuration (mpeg2enc, 8 MB total L2, decay64K — a cell of
// the paper's Figure 3(a) grid) plus its always-on baseline, and writes the
// result to BENCH_kernel.json so the kernel's throughput is tracked across
// PRs.
//
// Unlike the figure benches this deliberately bypasses the result cache:
// every invocation simulates, because the simulation itself is the thing
// being measured. CDSIM_INSTR scales the run (CI smoke uses a small value);
// the default of 1M instructions/core keeps a full-fidelity sample under a
// couple of seconds.
//
// Usage: bench_kernel [output.json]   (default: BENCH_kernel.json in cwd)

#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <string>
#include <vector>

#include "cdsim/common/version.hpp"
#include "cdsim/obs/interval_sampler.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/experiment.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace {

using namespace cdsim;

constexpr int kReps = 3;  ///< Best-of-N to shed scheduler noise.

struct Sample {
  std::string label;
  std::vector<double> runs_ms;
  double best_ms = 0.0;
  std::uint64_t events = 0;
  Cycle cycles = 0;
  sim::RunMetrics metrics;
};

Sample run_pinned(const decay::DecayConfig& dcfg, std::uint64_t instr,
                  bool traced = false) {
  Sample s;
  s.label = dcfg.label() + (traced ? "+obs" : "");
  const workload::Benchmark& bench = workload::benchmark_by_name("mpeg2enc");
  sim::SystemConfig cfg = sim::make_system_config(8 * MiB, dcfg);
  cfg.instructions_per_core = instr;
  s.best_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    // Fresh system per rep, seeded exactly as run_config would seed this
    // cell, so the metrics match what the figure benches compute for it.
    sim::CmpSystem sys(sim::normalized_run_config(cfg, bench), bench);
    // The traced sample measures observability *attached*: full recorder
    // emission streamed to the bit bucket (so disk speed isn't in the
    // measurement) plus a checksum-only sampler. Comparing its metrics
    // against the plain sample's is the observer-only proof; comparing its
    // best_ms is the attached-overhead number.
    obs::TraceRecorder rec;
    obs::IntervalSampler sampler(10'000);
    if (traced) {
      if (!rec.open("/dev/null")) {
        std::fprintf(stderr, "bench_kernel: cannot open /dev/null\n");
        std::exit(1);
      }
      sys.set_trace_recorder(&rec);
      sys.set_sampler(&sampler);
    }
    const auto t0 = std::chrono::steady_clock::now();
    sim::RunMetrics m = sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (traced) rec.close();
    s.runs_ms.push_back(ms);
    if (ms < s.best_ms) s.best_ms = ms;
    s.events = sys.events().executed();
    s.cycles = m.cycles;
    s.metrics = std::move(m);
  }
  return s;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Bit-identity across the fields the golden tests pin. Tolerance-free on
/// purpose: the observability seam promises *zero* perturbation, not
/// "close enough".
bool metrics_identical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  return a.cycles == b.cycles && a.instructions == b.instructions &&
         same_bits(a.ipc, b.ipc) &&
         same_bits(a.l2_occupation, b.l2_occupation) &&
         same_bits(a.l2_miss_rate, b.l2_miss_rate) &&
         a.l2_accesses == b.l2_accesses && a.l2_misses == b.l2_misses &&
         a.l2_decay_turnoffs == b.l2_decay_turnoffs &&
         same_bits(a.amat, b.amat) && same_bits(a.energy, b.energy) &&
         a.mem_bytes == b.mem_bytes &&
         same_bits(a.bus_utilization, b.bus_utilization) &&
         same_bits(a.avg_l2_temp_kelvin, b.avg_l2_temp_kelvin);
}

void print_json(std::FILE* f, const std::vector<Sample>& samples,
                std::uint64_t instr, double traced_over_plain) {
  std::fprintf(f, "{\n  \"bench\": \"bench_kernel\",\n");
  std::fprintf(f, "  \"version\": \"%s\",\n", version());
  std::fprintf(f, "  \"benchmark\": \"mpeg2enc\",\n");
  std::fprintf(f, "  \"total_l2_bytes\": %llu,\n",
               static_cast<unsigned long long>(8 * MiB));
  std::fprintf(f, "  \"instructions_per_core\": %llu,\n",
               static_cast<unsigned long long>(instr));
  std::fprintf(f, "  \"reps\": %d,\n  \"configs\": [\n", kReps);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f, "    {\"technique\": \"%s\", \"best_ms\": %.3f, ",
                 s.label.c_str(), s.best_ms);
    std::fprintf(f, "\"runs_ms\": [");
    for (std::size_t r = 0; r < s.runs_ms.size(); ++r) {
      std::fprintf(f, "%s%.3f", r ? ", " : "", s.runs_ms[r]);
    }
    std::fprintf(f, "], \"events\": %llu, \"cycles\": %llu, ",
                 static_cast<unsigned long long>(s.events),
                 static_cast<unsigned long long>(s.cycles));
    std::fprintf(f, "\"events_per_sec\": %.0f, ",
                 s.best_ms > 0.0 ? static_cast<double>(s.events) /
                                       (s.best_ms / 1000.0)
                                 : 0.0);
    // Enough of the metrics to cross-check against the golden test.
    std::fprintf(f,
                 "\"l2_misses\": %llu, \"decay_turnoffs\": %llu, "
                 "\"occupation\": %.17g}%s\n",
                 static_cast<unsigned long long>(s.metrics.l2_misses),
                 static_cast<unsigned long long>(s.metrics.l2_decay_turnoffs),
                 s.metrics.l2_occupation, i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Wall-clock cost of running with the recorder + sampler attached,
  // relative to the same config untraced. The compiled-in-but-detached
  // cost is invisible here by construction (every sample pays the same
  // null-pointer branches); this ratio bounds the *attached* cost.
  std::fprintf(f, "  \"traced_over_plain\": %.3f,\n", traced_over_plain);
  std::fprintf(f, "  \"observer_invariant\": true\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t instr = 1'000'000;
  if (const char* env = std::getenv("CDSIM_INSTR")) {
    const auto v = cdsim::sim::detail::parse_positive_u64(env);
    if (!v.has_value()) {
      std::fprintf(stderr, "bench_kernel: invalid CDSIM_INSTR \"%s\"\n", env);
      return 1;
    }
    instr = *v;
  }

  const decay::DecayConfig decay64k{decay::Technique::kDecay, 64 * 1024, 4};
  std::vector<Sample> samples;
  samples.push_back(run_pinned(sim::baseline_config(), instr));
  samples.push_back(run_pinned(decay64k, instr));
  samples.push_back(run_pinned(decay64k, instr, /*traced=*/true));

  // The observer-only gate: attaching the recorder + sampler must leave
  // every pinned metric bit-identical. A drift here means an emission
  // point read back into (or scheduled into) simulated state.
  if (!metrics_identical(samples[1].metrics, samples[2].metrics)) {
    std::fprintf(stderr,
                 "bench_kernel: FAIL — metrics drifted with observability "
                 "attached (traced run is not observer-only)\n");
    return 1;
  }
  const double traced_over_plain =
      samples[1].best_ms > 0.0 ? samples[2].best_ms / samples[1].best_ms : 0.0;

  std::printf("bench_kernel: mpeg2enc / 8MB / %llu instr/core, best of %d\n",
              static_cast<unsigned long long>(instr), kReps);
  for (const Sample& s : samples) {
    std::printf(
        "  %-10s best %8.1f ms   %10llu events   %8.0f Kevents/s   "
        "%8llu cycles\n",
        s.label.c_str(), s.best_ms,
        static_cast<unsigned long long>(s.events),
        static_cast<double>(s.events) / s.best_ms,
        static_cast<unsigned long long>(s.cycles));
  }
  std::printf("  traced/plain wall-clock ratio: %.3f (metrics bit-identical)\n",
              traced_over_plain);

  const char* out = argc > 1 ? argv[1] : "BENCH_kernel.json";
  std::FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kernel: cannot write %s\n", out);
    return 1;
  }
  print_json(f, samples, instr, traced_over_plain);
  std::fclose(f);
  std::printf("wrote %s\n", out);
  return 0;
}
