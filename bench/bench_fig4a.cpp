// Figure 4(a) — memory bandwidth increase vs. the unoptimized baseline.
//
// Decay-induced refetches and turn-off write-backs all cross the external
// memory channel. Paper shape: decay largest (up to ~200% at 8 MB),
// selective decay about half of decay, protocol ~0%.

#include "figure_common.hpp"

int main() {
  cdsim::bench::print_size_sweep_figure(
      "Figure 4(a): memory bandwidth increase vs. baseline", "bw_increase",
      [](const cdsim::sim::RelativeMetrics& r) { return r.bw_increase; });
  return 0;
}
