#pragma once
// Temperature-dependent subthreshold leakage model.
//
// Following Liao, He & Lepak (TCAD'05), subthreshold leakage at a fixed Vdd
// scales with temperature approximately as
//
//     P_leak(T) = P_leak(T0) * (T/T0)^2 * exp(beta * (T - T0))
//
// where the quadratic term captures the thermal-voltage (kT/q)^2 factor and
// the exponential captures the Vth temperature coefficient. `beta` around
// 0.01-0.02 1/K reproduces the commonly reported ~2x leakage increase per
// 30-50 K. The model is normalized so factor(T0) == 1; callers multiply
// their reference (T0) leakage powers by factor(T).

#include <cmath>

#include "cdsim/common/assert.hpp"

namespace cdsim::power {

struct LeakageParams {
  double t0_kelvin = 343.0;  ///< Reference temperature (70 °C).
  double beta = 0.014;       ///< Exponential slope, 1/K.
};

class LeakageModel {
 public:
  explicit LeakageModel(const LeakageParams& p = {}) : p_(p) {
    CDSIM_ASSERT(p_.t0_kelvin > 0.0);
  }

  /// Multiplier on T0-referenced leakage power at temperature `t_kelvin`.
  [[nodiscard]] double factor(double t_kelvin) const {
    CDSIM_ASSERT(t_kelvin > 0.0);
    const double r = t_kelvin / p_.t0_kelvin;
    return r * r * std::exp(p_.beta * (t_kelvin - p_.t0_kelvin));
  }

  [[nodiscard]] const LeakageParams& params() const noexcept { return p_; }

 private:
  LeakageParams p_;
};

}  // namespace cdsim::power
