#pragma once
// System energy accounting: per-component ledger plus the calibrated
// per-event/per-cycle energy constants.
//
// Energies are in an arbitrary consistent unit ("eu"; think picojoules).
// Only *relative* energy matters for the paper's figures — every result is
// normalized to the always-on baseline — so the constants below are
// calibrated to reproduce the published component breakdown rather than an
// absolute wattage:
//
//   * At 4 MB total L2 the L2 leakage is ~1/3 of baseline system energy
//     (the paper's 30% system saving for Decay at ~5% occupation implies
//     exactly that), growing to ~1/2 at 8 MB and shrinking to ~1/10 at 1 MB.
//   * "System" = cores + L1s + L2s + shared bus (paper fn. 2); off-chip
//     DRAM energy is excluded, matching the paper's methodology (§V), and
//     off-chip traffic is reported separately (Fig. 4a).

#include <array>
#include <cstdint>
#include <string_view>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::power {

enum class Component : std::uint8_t {
  kCoreDynamic,
  kCoreLeakage,
  kL1Dynamic,
  kL1Leakage,
  kL2Dynamic,
  kL2Leakage,       ///< Powered-line leakage (incl. Gated-Vdd area overhead).
  kL2OffResidual,   ///< Residual leakage of gated (off) lines.
  kBusDynamic,
  kDecayOverhead,   ///< Decay counters: dynamic resets + counter leakage.
  kNocDynamic,      ///< Mesh-NoC link/router switching (flit-hops).
  kL3Dynamic,       ///< Shared L3 home banks (three-level hierarchy only).
  kL3Leakage,       ///< Powered L3 lines (incl. Gated-Vdd area overhead).
  kL3OffResidual,   ///< Residual leakage of gated (off) L3 lines.
  /// Residual leakage of gated (off) L1 lines (l1_decay active). Appended
  /// after the L3 block to keep component indices append-only (the
  /// experiment-cache shim depends on old indices staying valid).
  kL1OffResidual,
  /// Off-chip DRAM row activations (kDram model only; flat runs log zero,
  /// so the "system" total of every golden pin is untouched — DRAM energy
  /// is reported alongside, not folded into the paper's normalization).
  kDramActivate,
  /// Off-chip DRAM precharges (row-conflict closes; kDram only).
  kDramPrecharge,
  kCount,
};

constexpr std::size_t kNumComponents =
    static_cast<std::size_t>(Component::kCount);

constexpr std::string_view to_string(Component c) noexcept {
  switch (c) {
    case Component::kCoreDynamic: return "core_dyn";
    case Component::kCoreLeakage: return "core_leak";
    case Component::kL1Dynamic: return "l1_dyn";
    case Component::kL1Leakage: return "l1_leak";
    case Component::kL2Dynamic: return "l2_dyn";
    case Component::kL2Leakage: return "l2_leak";
    case Component::kL2OffResidual: return "l2_off_residual";
    case Component::kBusDynamic: return "bus_dyn";
    case Component::kDecayOverhead: return "decay_overhead";
    case Component::kNocDynamic: return "noc_dyn";
    case Component::kL3Dynamic: return "l3_dyn";
    case Component::kL3Leakage: return "l3_leak";
    case Component::kL3OffResidual: return "l3_off_residual";
    case Component::kL1OffResidual: return "l1_off_residual";
    case Component::kDramActivate: return "dram_activate";
    case Component::kDramPrecharge: return "dram_precharge";
    case Component::kCount: break;
  }
  return "?";
}

/// Accumulates energy per component. Totals are exact sums; no sampling.
class EnergyLedger {
 public:
  void add(Component c, double eu) {
    CDSIM_ASSERT(c != Component::kCount);
    CDSIM_ASSERT_MSG(eu >= 0.0, "negative energy contribution");
    e_[static_cast<std::size_t>(c)] += eu;
  }

  [[nodiscard]] double get(Component c) const {
    return e_[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (double v : e_) t += v;
    return t;
  }

  /// Sum of the L2-related components (for the optimized-fraction metric).
  [[nodiscard]] double l2_total() const {
    return get(Component::kL2Dynamic) + get(Component::kL2Leakage) +
           get(Component::kL2OffResidual) + get(Component::kDecayOverhead);
  }

 private:
  std::array<double, kNumComponents> e_{};
};

/// Calibrated energy constants (see file comment for methodology).
struct PowerConfig {
  // --- L2 (the optimized structure) --------------------------------------
  /// Leakage per powered L2 line per cycle at T0, before the Gated-Vdd
  /// area overhead. Calibrated against the non-L2 system power below.
  double l2_leak_per_line_cycle = 4.0e-5;
  /// Gated-Vdd gating transistors add ~5% area => ~5% extra leakage on
  /// powered lines in gated caches (Powell et al.; paper §V).
  double gated_vdd_overhead = 0.05;
  /// Residual leakage of a gated (off) line, fraction of on-leakage.
  double off_residual_frac = 0.03;
  /// Dynamic energy per L2 access (read or write of one line).
  double l2_dyn_per_access = 0.12;
  /// Extra dynamic energy per L2 line fill (refetch cost that erodes decay
  /// savings; includes tag + array write).
  double l2_dyn_per_fill = 0.25;

  // --- Decay hardware overhead --------------------------------------------
  /// Per-line 2-bit counter leakage, fraction of a line's leakage. Counters
  /// stay powered even when their line is off.
  double decay_counter_leak_frac = 0.01;
  /// Dynamic energy per counter reset (every L2 access touches a counter).
  double decay_counter_dyn = 0.002;

  // --- Unoptimized components (dilute the savings) ------------------------
  /// Core leakage + clock per cycle, per core.
  double core_leak_per_cycle = 0.55;
  /// Core dynamic energy per committed instruction.
  double core_dyn_per_instr = 0.40;
  /// L1 leakage per cycle, per core (L1 is always on; it is not optimized).
  double l1_leak_per_cycle = 0.06;
  /// L1 dynamic energy per access.
  double l1_dyn_per_access = 0.03;
  /// Shared-bus dynamic energy per byte transferred.
  double bus_dyn_per_byte = 0.004;
  /// Mesh-NoC dynamic energy per flit-hop (one flit crossing one
  /// router+link). Calibrated so a one-hop line transfer (4-5 flits) costs
  /// about what the same line costs on the bus, with longer routes paying
  /// proportionally more.
  double noc_dyn_per_flit_hop = 0.05;

  // --- shared L3 home banks (three-level hierarchy) -----------------------
  /// Leakage per powered L3 line per cycle at T0. Denser last-level arrays
  /// leak less per line than the L2 slices.
  double l3_leak_per_line_cycle = 2.0e-5;
  /// Dynamic energy per L3 bank access (lookup/serve/absorb).
  double l3_dyn_per_access = 0.20;
  /// Extra dynamic energy per L3 line install.
  double l3_dyn_per_fill = 0.35;

  // --- off-chip DRAM (kDram memory model; flat runs contribute zero) ------
  /// Energy per DRAM row activation (ACT: wordline + sense amplifiers).
  double dram_act_energy = 1.2;
  /// Energy per DRAM precharge (PRE closing a conflicting row).
  double dram_pre_energy = 0.6;
};

}  // namespace cdsim::power
