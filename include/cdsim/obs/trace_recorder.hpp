#pragma once
// Streaming Chrome-trace-event recorder: the timeline half of cdsim::obs.
//
// A TraceRecorder turns instrumentation hooks scattered through the
// simulator (core stalls, cache miss lifetimes, decay sweeps, bus grants,
// DRAM bank activity, TLB walks) into a single Perfetto/chrome://tracing
// loadable JSON file. The contract mirrors verify::AccessObserver exactly:
//
//   * Observer-only. A recorder never reads back into simulated state and
//     never schedules events; attaching one must leave every RunMetrics
//     double bit-identical (the golden hexfloat pins enforce this).
//   * Null means off. Components hold a raw `obs::TraceRecorder*` that
//     defaults to nullptr and guard every emission with one branch; the
//     disabled cost is that branch and nothing else (bench_kernel gates
//     it).
//   * O(chunk) memory. Events stream through a fixed buffer to the file
//     as they happen, like the .cdt v2 chunk writer — a trace of any
//     length never materializes in memory.
//
// File format: the Chrome trace-event "JSON object" flavor,
//   {"traceEvents":[ ... ]}
// with "X" complete events for spans, "i" instants, and "M" thread_name
// metadata naming each track. One simulated cycle maps to one microsecond
// of trace time (ts/dur are µs in the format), so Perfetto's timeline
// reads directly in cycles. Every track is a (pid=1, tid=track-id) pair;
// track() registers the name lazily and emission is append-only, so the
// writer needs no global state beyond "has anything been written yet".

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cdsim/common/types.hpp"

namespace cdsim::obs {

/// Identifies one timeline row (a core, a cache, a DRAM bank, ...). Dense
/// small integers handed out by TraceRecorder::track() in registration
/// order; value 0 is the first real track, so components can default-init
/// their cached id and rely on the null-recorder guard for correctness.
using TrackId = std::uint32_t;

class TraceRecorder {
 public:
  TraceRecorder() = default;
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens `path` for streaming and writes the JSON preamble. Returns
  /// false (with *err filled when non-null) on failure; the recorder then
  /// stays inactive and every emission is a no-op.
  bool open(const std::string& path, std::string* err = nullptr);

  [[nodiscard]] bool active() const noexcept { return out_ != nullptr; }

  /// Registers a timeline row and emits its thread_name metadata event.
  /// Deterministic: ids are handed out in call order, which the plumbing
  /// keeps fixed (cores, caches, fabric, memory, in CmpSystem wiring
  /// order).
  TrackId track(const std::string& name);

  /// Point event at cycle `at`.
  void instant(TrackId t, const char* name, Cycle at);
  /// Point event with one integer argument (shown in Perfetto's detail
  /// pane), e.g. the line address of a turn-off or a DRAM row number.
  void instant(TrackId t, const char* name, Cycle at, const char* key,
               std::uint64_t value);

  /// Duration event covering [begin, end]. Zero-length spans are emitted
  /// with dur 0 (Perfetto renders them as slivers), so callers don't need
  /// their own emptiness checks.
  void span(TrackId t, const char* name, Cycle begin, Cycle end);
  void span(TrackId t, const char* name, Cycle begin, Cycle end,
            const char* key, std::uint64_t value);

  /// Flushes the buffer and writes the closing "]}"; returns false if any
  /// write failed along the way (short disk, closed pipe). Safe to call
  /// twice; the destructor calls it.
  bool close();

  /// Events emitted so far (metadata events included) — cdtrace's
  /// --timeline summary and the tests use this to cross-check the file.
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::uint32_t tracks() const noexcept { return next_track_; }

 private:
  void emit(const char* data, std::size_t len);
  void emit_str(const std::string& s) { emit(s.data(), s.size()); }
  /// Appends the separating comma (all events but the first) and counts.
  void begin_event();
  void flush_buffer();

  std::FILE* out_ = nullptr;
  std::string buf_;           ///< Pending bytes; flushed at ~64 KiB.
  std::uint64_t events_ = 0;
  std::uint32_t next_track_ = 0;
  bool any_event_ = false;    ///< Comma bookkeeping for valid JSON.
  bool write_error_ = false;
};

}  // namespace cdsim::obs
