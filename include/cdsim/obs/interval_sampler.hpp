#pragma once
// Windowed time-series sampler: the second half of cdsim::obs.
//
// RunMetrics is an end-of-run aggregate; the IntervalSampler exposes the
// dynamics between cycle 0 and the end. CmpSystem drives it from its own
// run loop — NOT from EventQueue events — so attaching a sampler cannot
// change the event schedule and the golden hexfloat pins hold with a
// sampler attached or detached. Every `period` cycles CmpSystem snapshots
// deltas of the counters it already keeps (instructions, L2 accesses /
// misses, powered-line integral, DRAM row activity, fabric busy cycles)
// plus the instantaneous per-tile temperatures, and pushes one SampleRow.
//
// Determinism: every field derives from deterministic simulator counters,
// so the series for a pinned config is bit-stable across runs and
// platforms. The sampler folds each row into a running FNV-1a checksum
// over the *raw IEEE-754 bit patterns* of its fields (never the formatted
// text — printf float formatting has per-libc freedom), and obs_test pins
// that checksum next to the hexfloat RunMetrics pins. The CSV output is
// for humans and plotting; the checksum is the contract.

#include <cstdint>
#include <cstdio>
#include <string>

#include "cdsim/common/types.hpp"

namespace cdsim::obs {

/// One window of the time-series. All deltas cover [window_start,
/// window_end); rates are computed over that window only. Fields that a
/// configuration lacks (row-hit rate under the flat memory model,
/// temperatures without a floorplan) stay at their initializers.
struct SampleRow {
  Cycle window_start = 0;
  Cycle window_end = 0;
  std::uint64_t instructions = 0;   ///< Committed in this window (all cores).
  std::uint64_t l2_accesses = 0;    ///< L2 demand accesses in this window.
  std::uint64_t l2_misses = 0;
  double ipc = 0.0;                 ///< instructions / window length.
  double l2_miss_rate = 0.0;        ///< misses / accesses (0 when idle).
  double l2_powered_frac = 0.0;     ///< Avg powered fraction of L2 lines.
  double dram_row_hit_rate = 0.0;   ///< Row hits / row activity (kDram only).
  double fabric_occupancy = 0.0;    ///< Busy fraction of the scarcest link.
  double avg_l2_temp_kelvin = 0.0;  ///< Mean L2 tile temperature at window end.
  double max_l2_temp_kelvin = 0.0;
};

class IntervalSampler {
 public:
  /// `period` = window length in cycles (must be >= 1).
  explicit IntervalSampler(Cycle period);
  ~IntervalSampler();

  IntervalSampler(const IntervalSampler&) = delete;
  IntervalSampler& operator=(const IntervalSampler&) = delete;

  /// Streams rows as CSV (with header) to `path`. Optional — a sampler
  /// without a sink still accumulates the checksum, which is how the
  /// golden-series test runs without touching the filesystem.
  bool open_csv(const std::string& path, std::string* err = nullptr);

  [[nodiscard]] Cycle period() const noexcept { return period_; }

  /// Folds the row into the checksum and appends it to the CSV sink (if
  /// open). Called by CmpSystem; tests may call it directly.
  void push(const SampleRow& row);

  /// Flushes and closes the CSV sink. Returns false if any write failed.
  /// Zero-row runs still produce a valid file (header only). Safe to call
  /// twice; the destructor calls it.
  bool finish();

  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  /// FNV-1a64 over every pushed row's raw field bit patterns.
  [[nodiscard]] std::uint64_t checksum() const noexcept { return hash_; }

 private:
  void fold(std::uint64_t bits) noexcept;

  Cycle period_ = 1;
  std::FILE* out_ = nullptr;
  std::uint64_t rows_ = 0;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  ///< FNV-1a64 offset basis.
  bool write_error_ = false;
};

}  // namespace cdsim::obs
