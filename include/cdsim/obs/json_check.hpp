#pragma once
// Minimal dependency-free JSON well-formedness checker.
//
// Shared by `cdtrace inspect --timeline` (sanity-check a trace before
// summarizing it) and obs_test (prove that a truncated or corrupted
// trace stream is *detected*, and that every complete stream the
// recorder emits validates). This is a validator, not a parser: it
// walks the grammar and reports the first structural error, keeping
// nothing in memory but a containment stack. Accepts any JSON value at
// top level; trailing whitespace is fine, trailing garbage is not.

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace cdsim::obs {

struct JsonCheckResult {
  bool ok = false;
  std::size_t error_at = 0;  ///< Byte offset of the first error.
  std::string error;         ///< Human-readable reason when !ok.
};

namespace detail {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  JsonCheckResult run() {
    skip_ws();
    if (!value()) return fail_result();
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing garbage after top-level value";
      return fail_result();
    }
    return {true, 0, {}};
  }

 private:
  [[nodiscard]] JsonCheckResult fail_result() const {
    return {false, pos_, err_.empty() ? "malformed JSON" : err_};
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      err_ = "bad literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) break;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0) {
              err_ = "bad \\u escape";
              return false;
            }
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          err_ = "bad escape";
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        err_ = "control byte in string";
        return false;
      }
    }
    err_ = "unterminated string";
    return false;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      err_ = "bad number";
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
      ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        err_ = "bad fraction";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        err_ = "bad exponent";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++pos_;
    }
    return true;
  }

  bool enter() {
    if (++depth_ > 64) {  // traces nest ~4 deep; cap guards hostile input
      err_ = "nesting too deep";
      return false;
    }
    return true;
  }

  bool object() {
    if (!enter()) return false;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') {
        err_ = "expected object key";
        return false;
      }
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        err_ = "expected ':'";
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      err_ = "expected ',' or '}'";
      return false;
    }
  }

  bool array() {
    if (!enter()) return false;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      err_ = "expected ',' or ']'";
      return false;
    }
  }

  bool value() {  // NOLINT(misc-no-recursion) — bounded by trace nesting (~4)
    if (eof()) {
      err_ = "unexpected end of input";
      return false;
    }
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace detail

/// Validates `text` as one complete JSON document.
inline JsonCheckResult json_check(std::string_view text) {
  return detail::JsonChecker(text).run();
}

}  // namespace cdsim::obs
