#pragma once
// Per-access observation interface for differential verification.
//
// The cache hierarchy and bus carry an optional AccessObserver pointer and
// report every event that creates or moves line *data*: load hits, fills
// (with their data source), write serializations, dirty-owner flushes,
// write-backs, and data-dropping invalidations. A null observer costs one
// predicted branch per event, so attaching nothing keeps the kernel
// bit-identical and effectively free.
//
// verify::DifferentialChecker (cdsim/verify/oracle.hpp) implements this
// interface to maintain a flat reference memory model — a per-line
// last-writer version map with bus-order semantics — and checks every
// load's returned version against it.
//
// This header is intentionally dependency-free (fundamental types only) so
// the sim-layer headers can include it without pulling the verifier in.

#include "cdsim/common/types.hpp"

namespace cdsim::verify {

/// Events are reported at their *serialization point* in bus order:
///  * hits at the hit-decision cycle;
///  * fills at the bus grant (where the snoop broadcast resolved and the
///    data source — memory or a flushing owner — was decided);
///  * write serializations at the cycle the line atomically becomes (or
///    already is) Modified for that store;
///  * flushes during the address phase of the transaction that triggered
///    them (always before the same transaction's on_fill);
///  * write-backs in two halves: `initiated` when the controller queues the
///    transaction (the data snapshot), `resolved` at the bus grant where it
///    either reaches memory or is cancelled by its validator.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// A load served by a valid local copy at `core` (`l1`: served by the L1,
  /// otherwise by the L2 slice).
  virtual void on_load_hit(CoreId core, Addr line, Cycle now, bool l1) {
    (void)core, (void)line, (void)now, (void)l1;
  }

  /// A line installed at `core` at a fill's bus grant. `from_cache`: the
  /// data is supplied by the snooped owner's flush (otherwise memory).
  /// `for_write`: the fill is a BusRdX write-allocate (the fetched data
  /// underlies the merging store).
  virtual void on_fill(CoreId core, Addr line, Cycle now, bool from_cache,
                       bool for_write) {
    (void)core, (void)line, (void)now, (void)from_cache, (void)for_write;
  }

  /// A store to `line` serialized at `core` (the copy is Modified from this
  /// instant in bus order).
  virtual void on_write_serialized(CoreId core, Addr line, Cycle now) {
    (void)core, (void)line, (void)now;
  }

  /// The dirty owner `core` flushes `line` on the bus in response to a
  /// snoop. `memory_update`: the flush also writes memory (MESI always;
  /// MOESI only for ownership-ending transactions).
  virtual void on_flush_supply(CoreId core, Addr line, Cycle now,
                               bool memory_update) {
    (void)core, (void)line, (void)now, (void)memory_update;
  }

  /// `core` queued a write-back of its dirty copy of `line` (eviction or
  /// turn-off). The data carried is the copy's content at this instant.
  virtual void on_writeback_initiated(CoreId core, Addr line, Cycle now) {
    (void)core, (void)line, (void)now;
  }

  /// A previously-initiated write-back reached its bus grant. `cancelled`:
  /// its validator dropped it (the data already reached memory via a snoop
  /// flush), so memory is NOT written. `to_l3`: the data is captured by the
  /// shared L3 home bank instead of memory (three-level hierarchy — the
  /// fabric routes every accepted write-back into its home bank there).
  virtual void on_writeback_resolved(CoreId core, Addr line, Cycle now,
                                     bool cancelled, bool to_l3 = false) {
    (void)core, (void)line, (void)now, (void)cancelled, (void)to_l3;
  }

  // --- shared L3 home banks (three-level hierarchy only) --------------------
  /// The L3 bank installed a clean copy of `line` fetched from memory
  /// (the memory-side tail of a fill that missed the L3).
  virtual void on_l3_install(Addr line, Cycle now) { (void)line, (void)now; }

  /// The L3 bank's dirty copy of `line` was pushed to memory (decay
  /// turn-off of a dirty line, or a dirty victim evicted by an install).
  virtual void on_l3_writeback(Addr line, Cycle now) {
    (void)line, (void)now;
  }

  /// The L3 bank's copy of `line` stopped holding data (eviction, decay
  /// turn-off completion, or a memory-updating owner flush overwriting it).
  virtual void on_l3_invalidate(Addr line, Cycle now) {
    (void)line, (void)now;
  }

  /// `core`'s copy of `line` stopped holding data (snoop invalidation,
  /// eviction, or turn-off completion).
  virtual void on_invalidate(CoreId core, Addr line, Cycle now) {
    (void)core, (void)line, (void)now;
  }
};

}  // namespace cdsim::verify
