#pragma once
// Reference-model oracle for differential verification.
//
// The simulator is a timing model: it moves no data bytes. What it *does*
// decide, exactly, is where each load's data would have come from — a local
// valid copy, a snooped owner's flush, or memory. DifferentialChecker
// exploits that: it tags every write with a fresh version number at its
// serialization point in bus order and threads versions through shadow
// copies of the same data movements the hierarchy performs (fills, flushes,
// write-backs, invalidations). In parallel it maintains a *flat* reference
// memory model — per-line, the version of the last write serialized on the
// bus, with none of the hierarchy's machinery.
//
// The invariant under test is the coherence value property: at any instant,
// every readable copy holds the version of the last serialized write. So at
// every load hit and every fill the checker compares the version the
// hierarchy actually hands the core against the flat model's answer. A
// turn-off that loses dirty data, a write-back that is wrongly cancelled, a
// flush routed from the wrong owner, an inclusion break — all keep the
// internal invariants of check_coherence_invariants() perfectly satisfied
// and all diverge here.
//
// Scope: line-granular, coherence-level value propagation. Program-order
// effects below the bus (a core reading its own write-buffered store early)
// are uniprocessor semantics the timing model does not represent and are
// not checked.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cdsim/verify/observer.hpp"

namespace cdsim::verify {

/// Monotone write-serialization tag. 0 = the initial memory content.
using Version = std::uint64_t;

/// One observed disagreement between the hierarchy and the flat model.
struct Divergence {
  CoreId core = 0;
  Addr line = 0;
  Cycle cycle = 0;
  Version observed = 0;  ///< Version the hierarchy handed the core.
  Version expected = 0;  ///< Flat-model version at the same instant.
  std::string context;   ///< Check site, e.g. "l1-hit", "fill-mem".
};

/// Human-readable one-liner for reports and test failure messages.
std::string to_string(const Divergence& d);

/// The oracle. Attach via CmpSystem::set_observer before run().
class DifferentialChecker final : public AccessObserver {
 public:
  /// @param max_recorded divergences kept with full detail (the count keeps
  ///        accumulating past this; a broken run can diverge millions of
  ///        times).
  explicit DifferentialChecker(std::uint32_t num_cores,
                               std::size_t max_recorded = 32);

  // --- AccessObserver -------------------------------------------------------
  void on_load_hit(CoreId core, Addr line, Cycle now, bool l1) override;
  void on_fill(CoreId core, Addr line, Cycle now, bool from_cache,
               bool for_write) override;
  void on_write_serialized(CoreId core, Addr line, Cycle now) override;
  void on_flush_supply(CoreId core, Addr line, Cycle now,
                       bool memory_update) override;
  void on_writeback_initiated(CoreId core, Addr line, Cycle now) override;
  // NOTE: no default for to_l3 here — defaults on virtuals bind statically
  // and a duplicated default could silently diverge from the base's.
  void on_writeback_resolved(CoreId core, Addr line, Cycle now,
                             bool cancelled, bool to_l3) override;
  void on_invalidate(CoreId core, Addr line, Cycle now) override;
  void on_l3_install(Addr line, Cycle now) override;
  void on_l3_writeback(Addr line, Cycle now) override;
  void on_l3_invalidate(Addr line, Cycle now) override;

  // --- results --------------------------------------------------------------
  [[nodiscard]] const std::vector<Divergence>& divergences() const noexcept {
    return recorded_;
  }
  [[nodiscard]] std::uint64_t total_divergences() const noexcept {
    return total_divergences_;
  }
  [[nodiscard]] std::uint64_t loads_checked() const noexcept {
    return loads_checked_;
  }
  [[nodiscard]] std::uint64_t fills_checked() const noexcept {
    return fills_checked_;
  }
  [[nodiscard]] std::uint64_t writes_serialized() const noexcept {
    return writes_serialized_;
  }

 private:
  void diverge(CoreId core, Addr line, Cycle now, Version observed,
               Version expected, const char* context);
  [[nodiscard]] Version mem_version(Addr line) const;
  [[nodiscard]] Version oracle_version(Addr line) const;

  std::uint32_t num_cores_ = 0;
  std::size_t max_recorded_ = 0;
  Version next_version_ = 0;

  /// Flat reference model: last bus-serialized write per line.
  std::unordered_map<Addr, Version> oracle_;
  /// Shadow of memory content (write-backs and memory-updating flushes).
  std::unordered_map<Addr, Version> mem_;
  /// Shadow of the shared L3 home banks (three-level hierarchy): lines the
  /// L3 currently holds, whether absorbed dirty from a write-back or
  /// installed clean from memory. A memory-side fill reads this shadow
  /// first — exactly the lookup order of the real fabric — which is how
  /// write-versions thread through all three levels.
  std::unordered_map<Addr, Version> l3_;
  /// Shadow of each L2 slice's valid copies.
  std::vector<std::unordered_map<Addr, Version>> copy_;
  /// Write-backs initiated but not yet resolved, FIFO per (core, line).
  /// Ordered map on the exact pair: write-backs are rare, and no key
  /// packing means no assumption about the address bit width (user traces
  /// may use full 64-bit addresses).
  std::map<std::pair<CoreId, Addr>, std::deque<Version>> pending_wb_;
  /// Flush within the currently-resolving bus grant (consumed by on_fill).
  bool flush_valid_ = false;
  Addr flush_line_ = 0;
  Version flush_version_ = 0;

  std::uint64_t loads_checked_ = 0;
  std::uint64_t fills_checked_ = 0;
  std::uint64_t writes_serialized_ = 0;
  std::uint64_t total_divergences_ = 0;
  std::vector<Divergence> recorded_;
};

}  // namespace cdsim::verify
