#pragma once
// Adversarial fuzz driver for the differential-verification oracle.
//
// run_fuzz() sweeps a matrix of hostile scenarios — {MESI, MOESI} x
// {baseline, protocol, decay, selective decay} x several decay times x
// {snoop bus @4 cores, directory mesh @8/16 cores} x seeds — each driving
// a contended CMP with FuzzerWorkload streams
// while DifferentialChecker shadows every data movement. Every scenario is
// captured to a Trace as it runs, so a divergence immediately yields a
// replayable repro; failures are greedily shrunk (verify/shrink.hpp) and,
// when a report directory is configured, written next to a plain-text
// failure report as .cdt files CI can upload.

#include <cstdint>
#include <string>
#include <vector>

#include "cdsim/coherence/protocol.hpp"
#include "cdsim/decay/technique.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/verify/oracle.hpp"
#include "cdsim/workload/fuzzer.hpp"
#include "cdsim/workload/trace_file.hpp"

namespace cdsim::verify {

struct FuzzOptions {
  /// Total scenarios; the 32-cell (protocol x technique x decay-time x
  /// topology) matrix repeats with fresh seeds until this many ran.
  std::size_t scenarios = 208;
  std::uint64_t base_seed = 0x5eedu;
  std::uint64_t instructions_per_core = 30000;
  /// When nonempty, each failure writes fuzz_<i>.cdt, fuzz_<i>.min.cdt and
  /// fuzz_<i>.report.txt into this directory (created if missing).
  std::string report_dir;
  bool shrink_failures = true;
  std::size_t max_failures = 4;  ///< Stop keeping detail after this many.
  /// TEST-ONLY: arm the L2's lost-write-back fault in every scenario, so
  /// the capture -> shrink -> report pipeline itself can be exercised.
  bool inject_writeback_loss = false;
  /// Restrict the matrix to 16-core directory-mesh cells (the CI
  /// many-core smoke gate): hot-home + all-to-all NoC stress only.
  bool dmesh_only = false;
  /// Restrict the matrix to three-level-hierarchy cells (the CI
  /// three-level smoke gate): private L2s behind the shared L3 banks,
  /// decay active at every level.
  bool three_level_only = false;
};

/// One cell of the fuzz matrix, self-contained and replayable.
struct FuzzScenario {
  std::size_t index = 0;
  coherence::Protocol protocol = coherence::Protocol::kMesi;
  noc::Topology topology = noc::Topology::kSnoopBus;
  sim::Hierarchy hierarchy = sim::Hierarchy::kTwoLevel;
  decay::DecayConfig decay;
  std::uint32_t num_cores = 4;
  std::uint64_t total_l2_bytes = 128 * KiB;
  /// Shared-L3 capacity for three-level cells (decay runs at every level
  /// there: the scenario's technique is applied at L1, L2, and L3).
  std::uint64_t total_l3_bytes = 0;
  std::uint64_t instructions_per_core = 30000;
  std::uint64_t seed = 1;
  /// Multi-program cell: 0 runs the classic homogeneous fuzzer on every
  /// core; N > 0 co-schedules N distinct fuzzer personalities (core c runs
  /// program c % N) with a rate-mode "hot tenant" budget skew — the cores
  /// running program 0 get a doubled instruction budget, so they keep
  /// issuing after their neighbours retire.
  std::uint32_t programs = 0;
  /// Memory model behind the fabric. kDram cells run the banked DRAM
  /// controller with per-core TLBs enabled — the oracle must see identical
  /// values to a flat run (only timing may differ).
  mem::MemoryModel mem_model = mem::MemoryModel::kFlat;
  workload::FuzzerConfig fuzz;
  /// Enables the L2's test-only lost-write-back fault (the bug the suite
  /// proves the oracle catches).
  bool inject_writeback_loss = false;

  [[nodiscard]] std::string label() const;
  [[nodiscard]] sim::SystemConfig system_config() const;
};

/// The deterministic scenario matrix for `opts`.
std::vector<FuzzScenario> fuzz_matrix(const FuzzOptions& opts);

/// Result of one checked run (fresh generation or trace replay).
struct ScenarioOutcome {
  sim::RunMetrics metrics;
  std::vector<Divergence> divergences;  ///< First few, with detail.
  std::uint64_t total_divergences = 0;
  std::uint64_t loads_checked = 0;
  std::uint64_t fills_checked = 0;
  std::uint64_t writes_serialized = 0;
  std::uint64_t owned_downgrades = 0;  ///< MOESI M->O transitions seen.
  workload::Trace trace;               ///< Captured ops (when capturing).
};

/// Runs one scenario with the oracle attached; `capture` records the ops.
ScenarioOutcome run_scenario(const FuzzScenario& sc, bool capture = true);

/// Replays `trace` under the scenario's configuration with the oracle
/// attached (used by the shrinker's predicate and by repro tooling).
ScenarioOutcome replay_scenario(const FuzzScenario& sc,
                                const workload::Trace& trace);

struct FuzzFailure {
  FuzzScenario scenario;
  std::vector<Divergence> divergences;
  workload::Trace trace;   ///< Full captured repro.
  workload::Trace shrunk;  ///< Minimized repro (empty if shrinking off).
};

struct FuzzReport {
  std::size_t scenarios_run = 0;
  std::uint64_t loads_checked = 0;
  std::uint64_t fills_checked = 0;
  std::uint64_t writes_serialized = 0;
  std::uint64_t divergences = 0;
  std::uint64_t owned_downgrades = 0;
  std::vector<FuzzFailure> failures;
};

FuzzReport run_fuzz(const FuzzOptions& opts = {});

}  // namespace cdsim::verify
