#pragma once
// Greedy failure-trace minimizer.
//
// Given a trace whose replay diverges from the reference model, shrink it
// to a small still-diverging repro: first binary-search the shortest
// failing prefix (the divergence is an event at a point in time; nothing
// after it is needed), then delta-debug the remainder with geometrically
// shrinking removal chunks until the trace is 1-minimal or the replay
// budget runs out. Every candidate is validated by actually replaying it,
// so the result is guaranteed to still reproduce — no monotonicity
// assumption is trusted beyond search ordering.
//
// This is the executable cousin of the CSP-based error-localisation idea
// (Bekkouche et al., arXiv:1404.6567): explain a failing run by the
// minimal subset of it that still fails.

#include <cstddef>
#include <functional>

#include "cdsim/workload/trace_file.hpp"

namespace cdsim::verify {

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (each replays a simulation).
  std::size_t max_replays = 500;
};

struct ShrinkStats {
  std::size_t replays = 0;
  std::size_t initial_ops = 0;
  std::size_t final_ops = 0;
  bool reproduced = false;  ///< The input trace failed at all.
};

/// Predicate: does replaying this candidate still show the failure?
using ReproPredicate = std::function<bool(const workload::Trace&)>;

/// Minimizes `failing` under `still_fails`. Returns the smallest found
/// still-failing trace (or `failing` unchanged when it does not reproduce).
workload::Trace shrink_trace(const workload::Trace& failing,
                             const ReproPredicate& still_fails,
                             ShrinkStats* stats = nullptr,
                             const ShrinkOptions& opts = {});

}  // namespace cdsim::verify
