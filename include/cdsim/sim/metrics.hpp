#pragma once
// Whole-run metrics: everything the paper's figures are built from.

#include <cstdint>
#include <string>

#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"
#include "cdsim/power/energy.hpp"

namespace cdsim::sim {

/// Aggregate counters for one cache level (summed over all structures at
/// that level: per-core L1s, per-core L2 slices, L3 home banks). The
/// cache-v4 schema persists one of these per level, which is what lets the
/// figure tooling attribute hits/misses/turn-offs to the level that
/// produced them instead of folding everything into "the L2".
struct LevelMetrics {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t decay_turnoffs = 0;
  std::uint64_t decay_induced_misses = 0;
  std::uint64_t writebacks = 0;
  double occupation = 1.0;  ///< Powered-line fraction (1.0 when ungated).
};

/// Absolute measurements from one simulation run.
struct RunMetrics {
  std::string benchmark;
  std::string technique;
  std::uint64_t total_l2_bytes = 0;

  Cycle cycles = 0;                  ///< Last core's finish cycle.
  std::uint64_t instructions = 0;    ///< Committed across all cores.
  double ipc = 0.0;                  ///< Aggregate instructions / cycles.

  double l2_occupation = 0.0;        ///< Fig. 3(a): powered-line fraction.
  double l2_miss_rate = 0.0;         ///< Fig. 3(b): aggregate L2 miss rate.
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l2_decay_turnoffs = 0;
  std::uint64_t l2_decay_induced_misses = 0;
  std::uint64_t l2_coherence_invals = 0;
  std::uint64_t l2_writebacks = 0;

  double amat = 0.0;                 ///< Fig. 4(b): mean load latency, cycles.
  double mem_bandwidth = 0.0;        ///< Fig. 4(a): bytes/cycle off-chip.
  std::uint64_t mem_bytes = 0;

  double energy = 0.0;               ///< Fig. 5(a): system energy (eu).
  power::EnergyLedger ledger;

  double avg_l2_temp_kelvin = 0.0;   ///< Mean end-of-run L2 block temp.
  /// Fabric-bottleneck occupancy: the shared bus (kSnoopBus) or the
  /// busiest mesh link (kDirectoryMesh).
  double bus_utilization = 0.0;

  // --- interconnect (all zero / "bus" for snoop-bus runs) -----------------
  std::string topology = "bus";      ///< noc::to_string of the fabric.
  std::uint64_t noc_flit_hops = 0;   ///< Link traversals x flits (energy).
  double noc_avg_packet_latency = 0.0;  ///< Mean mesh packet latency.
  std::uint64_t dir_directed_snoops = 0;  ///< Snoops actually sent.
  std::uint64_t dir_recalls = 0;     ///< Directed O-turn-off recalls.
  std::uint64_t dir_deferrals = 0;   ///< Fills parked behind in-flight WBs.

  // --- per-level attribution (cache-v4) -----------------------------------
  std::string hierarchy = "2L";      ///< sim::to_string(Hierarchy).
  LevelMetrics l1;                   ///< Per-core L1 front ends, summed.
  LevelMetrics l2;                   ///< Private L2 slices, summed.
  LevelMetrics l3;                   ///< Shared L3 home banks (3L only).
  std::uint64_t total_l3_bytes = 0;  ///< 0 for two-level runs.

  // --- memory side (cache-v5; all zero / "flat" under kFlat) --------------
  std::string mem_model = "flat";    ///< mem::to_string(MemoryConfig.model).
  std::uint64_t dram_row_hits = 0;
  std::uint64_t dram_row_misses = 0;     ///< Closed-bank activates.
  std::uint64_t dram_row_conflicts = 0;  ///< Open-row replacements.
  std::uint64_t dram_activates = 0;
  std::uint64_t dram_precharges = 0;
  std::uint64_t dram_refreshes = 0;
  std::uint64_t dram_write_forwards = 0;  ///< Reads served from queued writes.
  std::uint64_t tlb_hits = 0;        ///< Per-core TLBs, summed.
  std::uint64_t tlb_misses = 0;
};

/// A technique run normalized against its baseline (same benchmark, same
/// cache size, baseline technique).
struct RelativeMetrics {
  double occupation = 1.0;        ///< Absolute (baseline is 1 by definition).
  double miss_rate = 0.0;         ///< Absolute.
  double bw_increase = 0.0;       ///< (bw - bw_base) / bw_base.
  double amat_increase = 0.0;     ///< (amat - amat_base) / amat_base.
  double energy_reduction = 0.0;  ///< (e_base - e) / e_base.
  double ipc_loss = 0.0;          ///< (ipc_base - ipc) / ipc_base.
};

/// Computes technique-vs-baseline relative metrics.
inline RelativeMetrics relative_to(const RunMetrics& base,
                                   const RunMetrics& tech) {
  RelativeMetrics r;
  r.occupation = tech.l2_occupation;
  r.miss_rate = tech.l2_miss_rate;
  r.bw_increase =
      safe_div(tech.mem_bandwidth - base.mem_bandwidth, base.mem_bandwidth);
  r.amat_increase = safe_div(tech.amat - base.amat, base.amat);
  r.energy_reduction = safe_div(base.energy - tech.energy, base.energy);
  r.ipc_loss = safe_div(base.ipc - tech.ipc, base.ipc);
  return r;
}

}  // namespace cdsim::sim
