#pragma once
// Private L1 data cache: write-through, no-write-allocate, inclusive under
// the private L2 (the paper's §III design point, chosen there "for ease of
// design" of the turn-off mechanism).
//
// Responsibilities:
//  * serve core loads (hit latency or miss via L2 read + fill);
//  * retire core stores through the coalescing write buffer, which drains
//    to the L2 as PrWr operations — this is why "the operations on the L2
//    are mostly writes" (§VI);
//  * accept back-invalidations from the L2 (inclusion on eviction,
//    coherence invalidation, and line turn-off);
//  * expose the write buffer to the L2's turn-off logic (the Table I
//    "pending write" gate).

#include <cstdint>
#include <functional>

#include "cdsim/cache/cache_stats.hpp"
#include "cdsim/cache/geometry.hpp"
#include "cdsim/cache/mshr.hpp"
#include "cdsim/cache/tag_array.hpp"
#include "cdsim/cache/write_buffer.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/types.hpp"
#include "cdsim/core/core_model.hpp"
#include "cdsim/verify/observer.hpp"

namespace cdsim::sim {

class L2Cache;  // the level below (l2_cache.hpp)

struct L1Config {
  std::uint64_t size_bytes = 32 * KiB;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
  Cycle hit_latency = 2;   ///< Must be >= 1 (callbacks are always async).
  std::uint32_t mshr_entries = 16;
  std::uint32_t write_buffer_entries = 12;
  /// Pause between consecutive write-buffer drains to the L2 port.
  Cycle drain_interval = 1;
  /// Concurrent drains in flight (store-miss MLP): a write-allocate miss on
  /// one buffered line must not head-of-line-block the others.
  std::uint32_t max_drains_in_flight = 8;
};

/// Per-core L1 data cache controller. Implements the core-facing
/// LoadStorePort and the L2-facing inclusion hooks.
class L1Cache final : public core::LoadStorePort {
 public:
  L1Cache(EventQueue& eq, const L1Config& cfg, CoreId core);

  /// Wires the level below. Must be called before any access.
  void connect_l2(L2Cache* l2) { l2_ = l2; }

  /// Attaches a differential-verification observer (nullptr detaches).
  void set_observer(verify::AccessObserver* obs) noexcept { obs_ = obs; }

  // --- core-facing (LoadStorePort) ----------------------------------------
  core::LoadOutcome try_load(Addr addr, core::LoadCallback on_done) override;
  bool try_store(Addr addr) override;
  void set_resources_freed(std::function<void()> cb) override {
    resources_freed_ = std::move(cb);
  }

  // --- L2-facing ------------------------------------------------------------
  /// Invalidates the L1 copy of `line_addr` (inclusion). Called on L2
  /// eviction, coherence invalidation, and line turn-off.
  void back_invalidate(Addr line_addr);

  /// True when a buffered store to `line_addr` has not drained yet —
  /// the paper's Table I "pending write" condition.
  [[nodiscard]] bool pending_write(Addr line_addr) const {
    return wb_.pending_to(line_addr);
  }

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] const cache::CacheStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const cache::Geometry& geometry() const noexcept {
    return tags_.geometry();
  }
  [[nodiscard]] const cache::WriteBuffer& write_buffer() const noexcept {
    return wb_;
  }
  [[nodiscard]] bool has_line(Addr line_addr) const {
    return tags_.find(line_addr) != nullptr;
  }
  /// Test/checker hook: visits every valid line's address.
  void for_each_valid_line(const std::function<void(Addr)>& fn) const {
    const_cast<cache::TagArray<NoPayload>&>(tags_).for_each_valid(
        [&](cache::Line<NoPayload>& ln) { fn(ln.tag); });
  }
  [[nodiscard]] CoreId core() const noexcept { return core_; }
  /// Total accesses (for dynamic-energy accounting).
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return stats_.accesses();
  }

 private:
  struct NoPayload {};

  void drain_write_buffer();
  void notify_resources_freed();

  EventQueue& eq_;
  L1Config cfg_;
  CoreId core_;
  L2Cache* l2_ = nullptr;
  verify::AccessObserver* obs_ = nullptr;

  cache::TagArray<NoPayload> tags_;
  cache::MshrFile mshr_;
  cache::WriteBuffer wb_;
  std::uint32_t drains_in_flight_ = 0;
  std::uint32_t next_drain_slot_ = 0;

  std::function<void()> resources_freed_;
  cache::CacheStats stats_;
};

}  // namespace cdsim::sim
