#pragma once
// Private L1 data cache: write-through, no-write-allocate, inclusive under
// the private L2 (the paper's §III design point, chosen there "for ease of
// design" of the turn-off mechanism).
//
// Built on the generic cache::CacheLevel engine (cache/level.hpp): the tag
// array, MSHR file, write buffer, statistics, and — when enabled — the
// decay sweeper all come from the engine; this controller keeps the
// write-through drain choreography and the core-facing port.
//
// Responsibilities:
//  * serve core loads (hit latency or miss via L2 read + fill);
//  * retire core stores through the coalescing write buffer, which drains
//    to the L2 as PrWr operations — this is why "the operations on the L2
//    are mostly writes" (§VI);
//  * accept back-invalidations from the L2 (inclusion on eviction,
//    coherence invalidation, and line turn-off);
//  * expose the write buffer to the L2's turn-off logic (the Table I
//    "pending write" gate);
//  * optionally run decay at level 1: every L1 line is clean by
//    construction (write-through), so §III legality reduces to "drop
//    silently unless a buffered store to the line has not reached the L2
//    yet" — the level-1 form of the Table I pending-write gate.

#include <cstdint>
#include <functional>

#include "cdsim/cache/cache_stats.hpp"
#include "cdsim/cache/geometry.hpp"
#include "cdsim/cache/level.hpp"
#include "cdsim/cache/mshr.hpp"
#include "cdsim/cache/tag_array.hpp"
#include "cdsim/cache/write_buffer.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/types.hpp"
#include "cdsim/core/core_model.hpp"
#include "cdsim/decay/technique.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/verify/observer.hpp"

namespace cdsim::sim {

class L2Cache;  // the level below (l2_cache.hpp)

struct L1Config {
  std::uint64_t size_bytes = 32 * KiB;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
  Cycle hit_latency = 2;   ///< Must be >= 1 (callbacks are always async).
  std::uint32_t mshr_entries = 16;
  std::uint32_t write_buffer_entries = 12;
  /// Pause between consecutive write-buffer drains to the L2 port.
  Cycle drain_interval = 1;
  /// Concurrent drains in flight (store-miss MLP): a write-allocate miss on
  /// one buffered line must not head-of-line-block the others.
  std::uint32_t max_drains_in_flight = 8;
};

/// Per-core L1 data cache controller. Implements the core-facing
/// LoadStorePort and the L2-facing inclusion hooks.
class L1Cache final : public core::LoadStorePort {
 public:
  /// `dcfg` enables decay at this level (default: always-on baseline, the
  /// historical behavior).
  L1Cache(EventQueue& eq, const L1Config& cfg, CoreId core,
          const decay::DecayConfig& dcfg = {});

  /// Arms the decay sweeper (no-op without an L1 decay technique).
  void start();
  /// Stops the sweeper (simulation teardown).
  void stop();

  /// Wires the level below. Must be called before any access.
  void connect_l2(L2Cache* l2) { l2_ = l2; }

  /// Attaches a differential-verification observer (nullptr detaches).
  void set_observer(verify::AccessObserver* obs) noexcept { obs_ = obs; }

  /// Attaches the timeline recorder (observer-only; nullptr detaches):
  /// write-buffer drain spans, decay-sweep and back-invalidation instants.
  void set_trace(obs::TraceRecorder* rec, obs::TrackId track) noexcept {
    trace_ = rec;
    trace_track_ = track;
  }

  // --- core-facing (LoadStorePort) ----------------------------------------
  core::LoadOutcome try_load(Addr addr, core::LoadCallback on_done) override;
  bool try_store(Addr addr) override;
  void set_resources_freed(core::FreedCallback cb) override {
    resources_freed_ = std::move(cb);
  }

  // --- L2-facing ------------------------------------------------------------
  /// Invalidates the L1 copy of `line_addr` (inclusion). Called on L2
  /// eviction, coherence invalidation, and line turn-off.
  void back_invalidate(Addr line_addr);

  /// True when a buffered store to `line_addr` has not drained yet —
  /// the paper's Table I "pending write" condition.
  [[nodiscard]] bool pending_write(Addr line_addr) const {
    return level_.write_buffer().pending_to(line_addr);
  }

  // --- decay ----------------------------------------------------------------
  /// Periodic sweep: silently turns off expired (always-clean) lines.
  void decay_sweep(Cycle now);

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] const cache::CacheStats& stats() const noexcept {
    return level_.stats();
  }
  [[nodiscard]] const cache::Geometry& geometry() const noexcept {
    return level_.geometry();
  }
  [[nodiscard]] const cache::WriteBuffer& write_buffer() const noexcept {
    return level_.write_buffer();
  }
  [[nodiscard]] const cache::LevelPolicy& policy() const noexcept {
    return level_.policy();
  }
  [[nodiscard]] bool has_line(Addr line_addr) const {
    return static_cast<bool>(level_.tags().find(line_addr));
  }
  /// Test/checker hook: visits every valid line's address.
  void for_each_valid_line(const std::function<void(Addr)>& fn) const {
    const_cast<cache::TagArray<Payload>&>(level_.tags())
        .for_each_valid([&](cache::LineRef<Payload> ln) { fn(ln.tag()); });
  }
  [[nodiscard]] CoreId core() const noexcept { return core_; }
  /// Total accesses (for dynamic-energy accounting).
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return level_.stats().accesses();
  }
  /// Powered-line integral / capacity (per-level leakage ledger).
  [[nodiscard]] double powered_line_cycles(Cycle now) const {
    return level_.powered_line_cycles(now);
  }
  [[nodiscard]] std::uint64_t capacity_lines() const noexcept {
    return level_.capacity_lines();
  }
  [[nodiscard]] std::uint64_t lines_on() const noexcept {
    return level_.lines_on();
  }

 private:
  struct Payload {
    decay::LineDecayState decay;
  };
  using Level = cache::CacheLevel<Payload>;
  using LineT = cache::LineRef<Payload>;

  void drain_write_buffer();
  void notify_resources_freed();

  EventQueue& eq_;
  L1Config cfg_;
  CoreId core_ = 0;
  L2Cache* l2_ = nullptr;
  verify::AccessObserver* obs_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId trace_track_ = 0;

  /// The level-agnostic engine: tags, MSHRs, write buffer, decay, stats.
  Level level_;
  std::uint32_t drains_in_flight_ = 0;

  core::FreedCallback resources_freed_;
};

}  // namespace cdsim::sim
