#pragma once
// Multi-program scenario mixes: rate-mode co-scheduling of N independent
// trace programs onto M machine cores.
//
// A mix assigns machine core c the program c % N; assignment round
// r = c / N picks which of the program's recorded cores that machine core
// replays (r % program_cores), so a 4-core trace co-scheduled onto a
// 16-core mesh cycles through its recorded cores and a single-program mix
// with machine cores == trace cores degenerates to exact per-core replay.
//
// Budgets are rate-mode: each core's instruction budget is its assigned
// trace core's recorded budget scaled by the program's weight, so a
// "hot tenant" (weight > 1) keeps issuing after its neighbours retire
// while everyone shares the same caches, directory, and NoC. Weights only
// stretch or shrink budgets — the op sequence each core draws is the
// recorded one, so runs stay bit-deterministic.
//
// Streams come from FilteredReplayStream over a private cursor per core
// (each opener call opens its own ChunkedTraceReader), so an M-core mix
// of multi-GB .cdt v2 traces replays in O(M x chunk) memory.

#include <cstdint>
#include <string>
#include <vector>

#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/workload/trace_source.hpp"

namespace cdsim::sim {

/// One program of a mix: an opener that yields a fresh streaming cursor
/// over the program's trace (called once per core per pass), plus a
/// rate-mode weight.
struct ProgramSpec {
  workload::TraceOpener open;
  std::string name = "prog";
  /// Relative instruction-budget multiplier. 1.0 replays the assigned
  /// trace core's recorded budget exactly; a hot tenant gets > 1.
  double weight = 1.0;
};

/// What one machine core runs.
struct MixAssignment {
  std::uint32_t program = 0;  ///< Index into the mix's program list.
  CoreId trace_core = 0;      ///< Recorded core it replays.
  std::uint64_t instructions = 1;  ///< Weighted budget (>= 1).
};

/// A planned mix: the stream factory plus the per-core schedule. The
/// factory is reusable across CmpSystem constructions (each call opens a
/// fresh cursor) and every derived quantity is deterministic.
struct MixPlan {
  workload::StreamFactory streams;
  std::vector<MixAssignment> assignment;  ///< Size = machine cores.
  std::vector<std::string> program_names;

  [[nodiscard]] std::vector<std::uint64_t> per_core_instructions() const;

  /// Stamps the machine config: num_cores = assignment size and the
  /// weighted per-core budgets.
  void apply(SystemConfig& cfg) const;
};

/// Plans a rate-mode co-schedule of `programs` onto `num_cores` machine
/// cores. Opens each program once (to read its core count and recorded
/// budgets — O(1) for .cdt v2, which carries them in the footer); throws
/// std::invalid_argument for an empty mix, a program whose opener fails,
/// or a non-positive weight.
MixPlan plan_mix(std::vector<ProgramSpec> programs, std::uint32_t num_cores);

}  // namespace cdsim::sim
