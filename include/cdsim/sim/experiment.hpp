#pragma once
// Experiment driver shared by the figure benches, examples and tests.
//
// The paper's evaluation grid is: 6 benchmarks x {1,2,4,8} MB total L2 x
// 7 techniques (protocol, decay/sel_decay x {512K,128K,64K}) plus the
// always-on baseline every number is normalized against. This driver runs
// single configurations and caches baseline results so each figure bench
// only pays for what it prints.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdsim/decay/technique.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/metrics.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::sim {

/// The paper's seven techniques (Figure legends, left to right).
std::vector<decay::DecayConfig> paper_technique_set();

/// The paper's total-L2 sweep: 1, 2, 4, 8 MB.
std::vector<std::uint64_t> paper_cache_sizes();

/// Builds the default SystemConfig of the paper's platform (4 cores,
/// parameters of §V) with the given total L2 size and technique.
SystemConfig make_system_config(std::uint64_t total_l2_bytes,
                                const decay::DecayConfig& technique);

/// Runs one configuration to completion.
RunMetrics run_config(const SystemConfig& cfg,
                      const workload::Benchmark& bench);

/// Runs configurations on demand, memoizing results (baselines are shared
/// by every figure series).
///
/// Results are also persisted to a small text cache file so the per-figure
/// bench binaries share one sweep instead of each re-simulating the grid.
/// Cache location: $CDSIM_CACHE_FILE, default "cdsim_results.cache" in the
/// working directory; delete the file (or change CDSIM_INSTR) to re-run.
class ExperimentRunner {
 public:
  /// @param instructions_per_core 0 = keep the platform default. The
  ///        CDSIM_INSTR environment variable overrides either.
  explicit ExperimentRunner(std::uint64_t instructions_per_core = 0);

  /// Result for (benchmark, size, technique); runs it on first use.
  const RunMetrics& run(const workload::Benchmark& bench,
                        std::uint64_t total_l2_bytes,
                        const decay::DecayConfig& technique);

  /// Technique metrics normalized against the matching baseline run.
  RelativeMetrics relative(const workload::Benchmark& bench,
                           std::uint64_t total_l2_bytes,
                           const decay::DecayConfig& technique);

  /// Average of `relative` over the whole benchmark suite — the paper's
  /// "average across the benchmarks" figures (3, 4, 5).
  RelativeMetrics suite_average(std::uint64_t total_l2_bytes,
                                const decay::DecayConfig& technique);

  [[nodiscard]] std::uint64_t instructions_per_core() const noexcept {
    return instructions_;
  }

 private:
  void load_disk_cache();
  void append_disk_cache(const std::string& key, const RunMetrics& m);

  std::uint64_t instructions_;
  std::string cache_path_;
  std::map<std::string, RunMetrics> cache_;
};

}  // namespace cdsim::sim
