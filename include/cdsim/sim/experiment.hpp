#pragma once
// Experiment driver shared by the figure benches, examples and tests.
//
// The paper's evaluation grid is: 6 benchmarks x {1,2,4,8} MB total L2 x
// 7 techniques (protocol, decay/sel_decay x {512K,128K,64K}) plus the
// always-on baseline every number is normalized against. This driver runs
// single configurations and caches baseline results so each figure bench
// only pays for what it prints.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cdsim/decay/technique.hpp"
#include "cdsim/sim/cmp_system.hpp"
#include "cdsim/sim/metrics.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::sim {

namespace detail {
/// Strict base-10 parse of a positive 64-bit integer: rejects empty
/// strings, signs, whitespace, trailing garbage, zero, and overflow.
/// Used for the CDSIM_* environment variables so a typo'd value fails
/// loudly instead of silently falling back to a default.
std::optional<std::uint64_t> parse_positive_u64(const char* s) noexcept;
}  // namespace detail

/// Deterministic seed derived from a configuration description string by
/// hashing it and whitening through Xoshiro256. run_config seeds every
/// (benchmark, size, instructions) cell with this — the technique and the
/// cache version are deliberately excluded, so every technique faces the
/// identical workload stream as its baseline (paired comparison) and
/// cache-format bumps never change simulation results. A pure function of
/// its input, which is what makes the parallel sweep bit-identical to the
/// serial one.
std::uint64_t derive_config_seed(std::string_view config) noexcept;

/// The always-on baseline configuration every figure normalizes against.
decay::DecayConfig baseline_config();

/// The paper's seven techniques (Figure legends, left to right).
std::vector<decay::DecayConfig> paper_technique_set();

/// The paper's total-L2 sweep: 1, 2, 4, 8 MB.
std::vector<std::uint64_t> paper_cache_sizes();

/// Builds the default SystemConfig of the paper's platform (4 cores,
/// parameters of §V) with the given total L2 size and technique.
SystemConfig make_system_config(std::uint64_t total_l2_bytes,
                                const decay::DecayConfig& technique);

/// The exact SystemConfig run_config simulates for (cfg, bench): the
/// benign decay_time normalization plus the deterministic per-cell seed
/// mix. Exposed so harnesses that need to own the CmpSystem themselves
/// (bench_kernel, custom drivers) simulate the identical stream — if the
/// seeding recipe ever changes, it changes in exactly one place.
SystemConfig normalized_run_config(const SystemConfig& cfg,
                                   const workload::Benchmark& bench);

/// Runs one configuration to completion.
RunMetrics run_config(const SystemConfig& cfg,
                      const workload::Benchmark& bench);

/// Outcome of one ExperimentRunner::run_grid call.
struct SweepStats {
  std::size_t simulated = 0;  ///< Configurations actually simulated.
  std::size_t reused = 0;     ///< Served from the memo map / disk cache.
  unsigned workers = 0;       ///< Pool size used (0 when nothing ran).
};

/// Runs configurations on demand, memoizing results (baselines are shared
/// by every figure series).
///
/// Results are also persisted to a small text cache file so the per-figure
/// bench binaries share one sweep instead of each re-simulating the grid.
/// Cache location: $CDSIM_CACHE_FILE, default "cdsim_results.cache" in the
/// working directory; delete the file (or change CDSIM_INSTR) to re-run.
/// The cache file is replaced atomically (temp file + rename) and merged
/// with concurrent writers' entries, so parallel bench binaries sharing one
/// cache can never corrupt it. The merge is best-effort, not transactional:
/// two processes persisting at the same instant can drop the other's newest
/// entries (they are simply re-simulated later). Persistence happens at the
/// end of each
/// run_grid call, on destruction, and every kPersistEvery-th new serial
/// result (not per run(): a cold serial sweep would otherwise rewrite the
/// file once per configuration).
///
/// All public methods are thread-safe; simulations run outside the lock.
class ExperimentRunner {
 public:
  /// @param instructions_per_core 0 = keep the platform default. The
  ///        CDSIM_INSTR environment variable overrides either.
  /// @param cache_path overrides the disk-cache location when nonempty
  ///        (tests use this for isolated temporary caches); empty = use
  ///        $CDSIM_CACHE_FILE or the default.
  explicit ExperimentRunner(std::uint64_t instructions_per_core = 0,
                            std::string cache_path = {});
  ~ExperimentRunner();

  /// Result for (benchmark, size, technique); runs it on first use.
  const RunMetrics& run(const workload::Benchmark& bench,
                        std::uint64_t total_l2_bytes,
                        const decay::DecayConfig& technique);

  /// Fills the (benchmark x size x technique) grid — plus the baseline run
  /// of every (benchmark, size) cell, which all relative metrics need — by
  /// sharding the not-yet-cached configurations across a ThreadPool of
  /// `workers` threads (0 = one per hardware thread). Results are merged
  /// into the memo map and persisted once at the end. Bit-identical to
  /// calling run() for each cell serially.
  SweepStats run_grid(const std::vector<workload::Benchmark>& benchmarks,
                      const std::vector<std::uint64_t>& sizes,
                      const std::vector<decay::DecayConfig>& techniques,
                      unsigned workers = 0);

  /// Technique metrics normalized against the matching baseline run.
  RelativeMetrics relative(const workload::Benchmark& bench,
                           std::uint64_t total_l2_bytes,
                           const decay::DecayConfig& technique);

  /// Average of `relative` over the whole benchmark suite — the paper's
  /// "average across the benchmarks" figures (3, 4, 5).
  RelativeMetrics suite_average(std::uint64_t total_l2_bytes,
                                const decay::DecayConfig& technique);

  [[nodiscard]] std::uint64_t instructions_per_core() const noexcept {
    return instructions_;
  }

  [[nodiscard]] const std::string& cache_path() const noexcept {
    return cache_path_;
  }

 private:
  /// Version-free configuration description
  /// (benchmark/bytes/label/raw-decay-params/instructions): the prefix of
  /// the memo key. Sizes are kept in bytes and decay parameters verbatim
  /// so distinct configurations never collide.
  [[nodiscard]] std::string config_desc(
      const workload::Benchmark& bench, std::uint64_t total_l2_bytes,
      const decay::DecayConfig& technique) const;
  /// Memo key: config_desc plus "/<cache version>".
  [[nodiscard]] std::string key_for(const workload::Benchmark& bench,
                                    std::uint64_t total_l2_bytes,
                                    const decay::DecayConfig& technique) const;
  /// Runs one configuration with its configuration-derived seed. Pure: no
  /// locking, no shared state — safe to call from any pool worker.
  [[nodiscard]] RunMetrics simulate(const workload::Benchmark& bench,
                                    std::uint64_t total_l2_bytes,
                                    const decay::DecayConfig& technique) const;
  void load_disk_cache();
  /// Atomically rewrites the cache file (temp + rename) with the union of
  /// on-disk and in-memory entries, dropping lines from other cache
  /// versions. Caller must hold mu_.
  void persist_disk_cache_locked();

  /// Serial run() persists after this many new results (run_grid persists
  /// once at the end regardless), bounding loss on an interrupted sweep.
  static constexpr std::size_t kPersistEvery = 16;

  std::uint64_t instructions_ = 0;
  std::string cache_path_;
  std::mutex mu_;  ///< Guards cache_, dirty_, unsaved_, and persistence.
  std::map<std::string, RunMetrics> cache_;
  bool dirty_ = false;        ///< In-memory results not yet persisted.
  std::size_t unsaved_ = 0;   ///< New results since the last persist.
  bool persist_warned_ = false;  ///< One-time unwritable-cache warning fired.
};

}  // namespace cdsim::sim
