#pragma once
// Private, inclusive, MESI-snoopy L2 cache controller with the paper's
// turn-off mechanism (§III) and the three leakage techniques (§IV).
//
// The level mechanics — tag array, MSHR file, decay sweeper + expiry wheel,
// powered-line integral, decay attribution, statistics — live in the
// generic cache::CacheLevel engine (cache/level.hpp); this controller keeps
// only the coherence choreography. In the two-level hierarchy it is the
// outermost private level on the fabric; in the three-level hierarchy the
// same controller runs as the (smaller) private mid-level cache in front of
// the shared L3 banks.
//
// Coherence state changes are atomic in bus order: a fill installs its
// tag+state at the grant cycle (data arrives later, tracked by the
// `fetching` flag), so overlapping split transactions always observe a
// consistent global state. The decay sweeper calls back into this
// controller, which owns the TC/TD transient-state choreography:
//
//   clean (S/E):  Turn-off -> TC -> invalidate L1 copy -> off.     (no bus)
//   dirty (M):    Turn-off -> TD -> invalidate L1 copy ->
//                 write-back on the bus -> off.
//
// A snoop that reaches a TC/TD line completes the turn-off early (the
// flush-and-cancel edges of Figure 2), using the bus-level write-back
// cancellation validator.
//
// Power accounting: the engine maintains an exact time integral of the
// number of powered lines. Techniques other than the baseline gate Vdd with
// the valid bit, so "powered" == "valid (incl. TC/TD)".

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cdsim/noc/interconnect.hpp"
#include "cdsim/cache/cache_stats.hpp"
#include "cdsim/cache/level.hpp"
#include "cdsim/cache/mshr.hpp"
#include "cdsim/cache/tag_array.hpp"
#include "cdsim/coherence/mesi.hpp"
#include "cdsim/coherence/protocol.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/decay/sweeper.hpp"
#include "cdsim/decay/technique.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/sim/l1_cache.hpp"
#include "cdsim/verify/observer.hpp"

namespace cdsim::sim {

struct L2Config {
  std::uint64_t size_bytes = 1 * MiB;  ///< Per-core slice (paper: total/4).
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;
  Cycle hit_latency = 12;
  std::uint32_t mshr_entries = 24;
  /// Backoff before re-attempting an access that found its line in a
  /// transient (TC/TD) state or the MSHR file full.
  Cycle retry_interval = 4;
  /// Cycles to invalidate the L1 copy during a turn-off (InvUpp edge).
  Cycle l1_inval_latency = 2;
  /// Snooping protocol this slice speaks. All slices on one bus must agree.
  coherence::Protocol protocol = coherence::Protocol::kMesi;
  /// TEST-ONLY fault injection: a dirty decay turn-off silently discards
  /// the line instead of writing it back (memory keeps stale data). Used by
  /// the differential-verification suite to prove the oracle catches
  /// wrong-data bugs; never set outside tests.
  bool test_lose_decay_writeback = false;
};

/// One private L2 slice.
class L2Cache final : public noc::Snooper {
 public:
  /// Completion callback for upper-level requests. `may_cache_upper` is
  /// false when the line was invalidated while its fill was in flight — the
  /// L1 must then consume the data without caching it (inclusion).
  /// Move-only; the L1's captures (a `this` and a line address) fit the
  /// 32-byte inline buffer, so the request path never allocates.
  using Response = SmallFn<void(Cycle done, bool may_cache_upper), 32>;

  L2Cache(EventQueue& eq, const L2Config& cfg,
          const decay::DecayConfig& dcfg, CoreId core, noc::Interconnect& ic,
          L1Cache* upper);

  /// Arms the decay sweeper. Call once after construction.
  void start();
  /// Stops the sweeper (simulation teardown).
  void stop();

  /// Attaches a differential-verification observer (nullptr detaches).
  void set_observer(verify::AccessObserver* obs) noexcept { obs_ = obs; }

  /// Attaches the timeline recorder (observer-only; nullptr detaches):
  /// miss-lifetime spans, decay-sweep / turn-off / write-back instants.
  void set_trace(obs::TraceRecorder* rec, obs::TrackId track) noexcept {
    trace_ = rec;
    trace_track_ = track;
  }

  // --- upper-level (L1) interface -----------------------------------------
  /// Read request from an L1 miss. Always eventually responds (internally
  /// retries on MSHR pressure / transient lines).
  void read(Addr addr, Response on_done);

  /// Write from the L1 write-buffer drain (write-through L1: the L2 sees
  /// every store). Write-allocate on miss.
  void write(Addr addr, Response on_done);

  // --- noc::Snooper (snoopy bus AND directory mesh) -----------------------
  noc::SnoopReply snoop(coherence::BusTxKind kind, Addr line_addr,
                        CoreId requester) override;
  /// Side-effect-free state probe; the directory's bitmap-refresh hook.
  [[nodiscard]] coherence::MesiState probe(Addr line_addr) const override {
    return line_state(line_addr);
  }

  // --- decay ------------------------------------------------------------------
  /// Periodic hierarchical-counter sweep: turns off expired lines.
  void decay_sweep(Cycle now);

  // --- introspection ------------------------------------------------------------
  [[nodiscard]] const cache::CacheStats& stats() const noexcept {
    return level_.stats();
  }
  [[nodiscard]] const cache::Geometry& geometry() const noexcept {
    return level_.geometry();
  }
  [[nodiscard]] const decay::DecayConfig& decay_config() const noexcept {
    return level_.decay_config();
  }
  [[nodiscard]] const cache::LevelPolicy& policy() const noexcept {
    return level_.policy();
  }
  [[nodiscard]] CoreId core() const noexcept { return core_; }

  /// Exact time integral of powered lines over [0, now]. For gated
  /// techniques this integrates valid lines; for the baseline every line is
  /// always powered.
  [[nodiscard]] double powered_line_cycles(Cycle now) const {
    return level_.powered_line_cycles(now);
  }
  /// Powered fraction of the array, time-averaged over [0, now] — the
  /// paper's occupation rate for this slice.
  [[nodiscard]] double occupation(Cycle now) const {
    return level_.occupation(now);
  }
  /// Currently powered lines.
  [[nodiscard]] std::uint64_t lines_on() const noexcept {
    return level_.lines_on();
  }
  [[nodiscard]] std::uint64_t capacity_lines() const noexcept {
    return level_.capacity_lines();
  }

  /// Lifetime counters for dynamic-energy accounting.
  [[nodiscard]] std::uint64_t fills() const noexcept {
    return level_.fills().value();
  }
  [[nodiscard]] std::uint64_t transient_retries() const noexcept {
    return level_.transient_retries().value();
  }
  [[nodiscard]] std::uint64_t upgrades() const noexcept {
    return upgrades_.value();
  }

  /// Effective hit latency: +1 cycle when decay hardware is present
  /// (Gated-Vdd access penalty, paper §V).
  [[nodiscard]] Cycle access_latency() const noexcept {
    return level_.access_latency();
  }

  /// Test hook: state of a line (Invalid when absent).
  [[nodiscard]] coherence::MesiState line_state(Addr addr) const;

  /// Test hook: live decay-attribution entries (see cache::CacheLevel).
  [[nodiscard]] std::size_t decay_attribution_entries() const noexcept {
    return level_.decay_attribution_entries();
  }

  /// Test/checker hook: visits every valid line as (line_addr, state).
  void for_each_valid_line(
      const std::function<void(Addr, coherence::MesiState)>& fn) const;

 private:
  struct Payload {
    coherence::MesiState state = coherence::MesiState::kInvalid;
    decay::LineDecayState decay;
    bool fetching = false;   ///< Tag/state installed; data still in flight.
    bool upgrading = false;  ///< BusUpgr queued for this S line.
    /// Cancellation token for a TD turn-off write-back queued on the bus.
    std::shared_ptr<bool> td_wb_token;
  };
  using Level = cache::CacheLevel<Payload>;
  using LineT = cache::LineRef<Payload>;

  void do_read(Addr line_addr, Response on_done, bool counted);
  void do_write(Addr line_addr, Response on_done, bool counted);
  void issue_fetch(Addr line_addr, bool is_write);
  void install_at_grant(Addr line_addr, bool is_write,
                        const noc::BusResult& res);
  void evict(LineT victim);
  void line_off(LineT ln);
  void retry(EventQueue::Callback fn) { level_.retry(std::move(fn)); }
  void turn_off_clean(Addr line_addr);
  void turn_off_dirty(Addr line_addr);
  /// MOESI O-state turn-off: revoke the remaining S copies (BusUpgr
  /// broadcast), then write back like a dirty turn-off (§III extension).
  void turn_off_owned(Addr line_addr);
  /// Queues the TD flush write-back (shared tail of the dirty and owned
  /// turn-off paths).
  void issue_turnoff_writeback(Addr line_addr);
  void cancel_td_wb(Payload& p);

  EventQueue& eq_;
  L2Config cfg_;
  CoreId core_ = 0;
  noc::Interconnect& ic_;
  L1Cache* upper_ = nullptr;
  verify::AccessObserver* obs_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId trace_track_ = 0;

  /// The level-agnostic engine: tags, MSHRs, decay machinery, stats.
  Level level_;
  Counter upgrades_;
};

}  // namespace cdsim::sim
