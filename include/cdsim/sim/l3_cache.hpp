#pragma once
// Shared, home-banked L3: the last-level cache of the three-level
// hierarchy, built on the generic cache::CacheLevel engine.
//
// One bank per mesh tile, colocated with the directory home bank that
// serializes every transaction for its lines (noc::MemorySideCache). That
// colocation is what makes decay at this level simple: there are no
// transient TC/TD states because no snooper can reach an L3 copy except
// through the home bank itself — the serialization point and the cache are
// the same place. Section-III turn-off legality therefore degenerates to
// its essence (see DESIGN.md):
//
//   clean bank line:  drop silently, any time — memory holds the data.
//   dirty bank line:  push the line to memory first (the bank absorbed a
//                     write-back the channel never saw), then drop.
//
// The bank is memory-side and non-inclusive: it never tracks upper-level
// copies (the directory does), so dropping a line can never violate
// coherence — the worst case is a refetch from memory. Upper-owner
// staleness is handled by the fabric: a memory-updating owner flush
// invalidates the bank's (older) copy, and fills with a live dirty owner
// never reach the bank at all.

#include <cstdint>
#include <memory>
#include <vector>

#include "cdsim/cache/level.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/decay/technique.hpp"
#include "cdsim/noc/directory_mesh.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/verify/observer.hpp"

namespace cdsim::sim {

struct L3Config {
  /// Per-bank capacity. CmpSystem sets this to total_l3_bytes / num_cores
  /// (one bank per tile).
  std::uint64_t bank_bytes = 2 * MiB;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 16;
  /// Bank access latency on the fill-serve path (slower, bigger arrays
  /// than the private L2 slices).
  Cycle hit_latency = 24;
  /// Engine bookkeeping only: the home bank serializes per-line, so the
  /// bank never tracks concurrent fills itself.
  std::uint32_t mshr_entries = 4;
};

/// The shared L3: an array of home banks implementing the fabric's
/// memory-side cache interface.
class L3Cache final : public noc::MemorySideCache {
 public:
  L3Cache(EventQueue& eq, const L3Config& cfg,
          const decay::DecayConfig& dcfg, std::uint32_t num_banks);

  L3Cache(const L3Cache&) = delete;
  L3Cache& operator=(const L3Cache&) = delete;

  /// Arms each bank's decay sweeper. Call once after construction.
  void start();
  void stop();

  /// Attaches a differential-verification observer (nullptr detaches).
  void set_observer(verify::AccessObserver* obs) noexcept { obs_ = obs; }

  /// Attaches the timeline recorder (observer-only; nullptr detaches):
  /// per-bank decay-sweep and memory-push instants on one shared track.
  void set_trace(obs::TraceRecorder* rec, obs::TrackId track) noexcept {
    trace_ = rec;
    trace_track_ = track;
  }

  // --- noc::MemorySideCache ------------------------------------------------
  void connect_memory_port(MemWritePort port) override {
    mem_port_ = std::move(port);
  }
  [[nodiscard]] Cycle access_latency() const override {
    return banks_.front()->level.access_latency();
  }
  bool lookup_for_fill(std::uint32_t bank, Addr line) override;
  void install_from_memory(std::uint32_t bank, Addr line) override;
  void absorb_writeback(std::uint32_t bank, Addr line) override;
  void invalidate(std::uint32_t bank, Addr line) override;

  // --- decay ----------------------------------------------------------------
  void decay_sweep(std::uint32_t bank, Cycle now);

  // --- introspection (aggregated over all banks) ----------------------------
  [[nodiscard]] std::uint32_t num_banks() const noexcept {
    return static_cast<std::uint32_t>(banks_.size());
  }
  [[nodiscard]] const cache::CacheStats& bank_stats(std::uint32_t b) const {
    return banks_.at(b)->level.stats();
  }
  [[nodiscard]] const decay::DecayConfig& decay_config() const noexcept {
    return banks_.front()->level.decay_config();
  }
  [[nodiscard]] const cache::LevelPolicy& policy() const noexcept {
    return banks_.front()->level.policy();
  }

  [[nodiscard]] std::uint64_t accesses() const noexcept;
  [[nodiscard]] std::uint64_t hits() const noexcept;
  [[nodiscard]] std::uint64_t misses() const noexcept;
  [[nodiscard]] std::uint64_t decay_turnoffs() const noexcept;
  [[nodiscard]] std::uint64_t decay_induced_misses() const noexcept;
  [[nodiscard]] std::uint64_t writebacks() const noexcept;
  [[nodiscard]] std::uint64_t evictions() const noexcept;
  [[nodiscard]] std::uint64_t fills() const noexcept;
  [[nodiscard]] std::uint64_t lines_on() const noexcept;
  [[nodiscard]] std::uint64_t capacity_lines() const noexcept;
  /// Exact powered-line time integral over all banks.
  [[nodiscard]] double powered_line_cycles(Cycle now) const;
  /// Powered fraction of the whole L3, time-averaged over [0, now].
  [[nodiscard]] double occupation(Cycle now) const;

  /// Test hook: whether a bank holds `line`, and whether it is dirty.
  [[nodiscard]] bool has_line(std::uint32_t bank, Addr line) const;
  [[nodiscard]] bool line_dirty(std::uint32_t bank, Addr line) const;

 private:
  struct Payload {
    decay::LineDecayState decay;
    /// The bank absorbed a write-back the memory channel never saw.
    bool dirty = false;
  };
  using Level = cache::CacheLevel<Payload>;
  using LineT = cache::LineRef<Payload>;

  struct Bank {
    template <typename... Args>
    explicit Bank(Args&&... args) : level(std::forward<Args>(args)...) {}
    Level level;
  };

  void line_off(Bank& b, LineT ln);
  void evict(std::uint32_t bank, LineT victim);
  void push_to_memory(std::uint32_t bank, Addr line);

  EventQueue& eq_;
  L3Config cfg_;
  verify::AccessObserver* obs_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId trace_track_ = 0;
  MemWritePort mem_port_;
  std::vector<std::unique_ptr<Bank>> banks_;
};

// Fail here, at the implementation, if the fabric interface grows a member
// L3Cache does not override — not at the make_unique in cmp_system.
static_assert(noc::MemorySideCacheImpl<L3Cache>,
              "L3Cache must implement every noc::MemorySideCache virtual "
              "(is the class abstract after an interface change?)");

}  // namespace cdsim::sim
