#pragma once
// Parallel sweep engine for the experiment grid.
//
// The paper's evaluation grid — 6 benchmarks x {1,2,4,8} MB total L2 x
// 7 techniques plus the always-on baseline — is ~200 completely independent
// simulations. ThreadPool shards them across std::thread workers; the
// determinism contract is that a configuration's result depends only on its
// own (benchmark, size, technique, instructions) description — deterministic
// per-cell Xoshiro256 seeding, no shared mutable simulation state — so a
// parallel sweep is bit-identical to running the same configurations
// serially (tests/parallel_runner_test.cpp proves it).
//
// Happens-before map (the synchronization contract TSan certifies via
// tests/tsan_grid_test.cpp; every edge below is a mutex release/acquire or
// thread join — no lock-free tricks anywhere in the engine):
//
//   submit()           releases mu_ after pushing   -> worker_loop() acquires
//                      mu_ to pop: the task body happens-after everything
//                      the submitter wrote before submit().
//   worker_loop()      releases mu_ after --in_flight_ (post-task)
//                      -> wait_idle() acquires mu_ and observes
//                      in_flight_ == 0: everything every task wrote
//                      happens-before wait_idle() returning. This is the
//                      edge that lets run_grid read its slot-indexed
//                      results vector unguarded after the barrier.
//   ~ThreadPool()      joins the workers: all task effects happen-before
//                      pool destruction completing.
//
// Task exceptions ride the same edges: first_error_ is written under mu_ in
// worker_loop and consumed under mu_ in wait_idle.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cdsim::sim {

/// A fixed-size fork-join worker pool. Tasks are drained FIFO by whichever
/// worker frees up first; wait_idle() is the join barrier.
class ThreadPool {
 public:
  /// @param workers 0 = one worker per hardware thread (at least one).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueues one task. Safe from any thread, including pool workers'
  /// callers, but not from inside a task (a task waiting on the pool it
  /// runs in deadlocks a one-worker pool).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first such exception here (remaining tasks still ran to
  /// the barrier first) instead of terminating the worker thread.
  void wait_idle();

  /// Runs fn(0) .. fn(n-1) across the workers and blocks until all are
  /// done. Slot-indexed: each call owns index i exclusively, so writing
  /// results[i] needs no locking.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but submits contiguous index ranges of up to
  /// `batch` indices per pool task: one queue push, one mutex round trip
  /// and one std::function allocation amortize over the whole range. The
  /// call order inside a task is ascending, and every index still runs
  /// exactly once — so any fn whose work is a pure function of its index
  /// (the grid determinism contract) produces bit-identical results for
  /// every batch size, 1 included. `batch == 0` is clamped to 1.
  void parallel_for_batched(std::size_t n, std::size_t batch,
                            const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_cv_;  ///< Signals workers: task or stop.
  std::condition_variable idle_cv_;  ///< Signals wait_idle: all drained.
  std::size_t in_flight_ = 0;        ///< Queued + currently-executing tasks.
  std::exception_ptr first_error_;   ///< First task exception; rethrown at the barrier.
  bool stop_ = false;
};

}  // namespace cdsim::sim
