#pragma once
// CmpSystem: the paper's evaluation platform in one object.
//
// 4 (configurable) out-of-order cores, each with a private write-through L1
// and a private inclusive L2; MESI snooping on a shared pipelined bus; a
// bandwidth-limited memory channel behind it; per-block RC thermal model
// sampled every 10K cycles feeding a temperature-dependent leakage model
// (§V of the paper). One leakage technique (baseline / protocol / decay /
// selective decay) is active per run.

#include <cstdint>
#include <memory>
#include <vector>

#include "cdsim/bus/snoop_bus.hpp"
#include "cdsim/coherence/protocol.hpp"
#include "cdsim/noc/directory_mesh.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/core/core_model.hpp"
#include "cdsim/decay/technique.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/mem/tlb.hpp"
#include "cdsim/obs/interval_sampler.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/power/energy.hpp"
#include "cdsim/power/leakage.hpp"
#include "cdsim/sim/l1_cache.hpp"
#include "cdsim/sim/l2_cache.hpp"
#include "cdsim/sim/l3_cache.hpp"
#include "cdsim/sim/metrics.hpp"
#include "cdsim/thermal/rc_model.hpp"
#include "cdsim/verify/observer.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::sim {

/// Cache-hierarchy depth of the machine (SystemConfig::hierarchy).
enum class Hierarchy : std::uint8_t {
  /// The paper's machine: per-core write-through L1s in front of private
  /// coherent L2 slices on the fabric (bus or mesh).
  kTwoLevel,
  /// Scale-out machine: the same private L1+L2 front end, but the L2
  /// slices are smaller and a shared, home-banked L3 sits at the directory
  /// home tiles between the fabric and memory. Directory-mesh only.
  kThreeLevel,
};

constexpr std::string_view to_string(Hierarchy h) noexcept {
  return h == Hierarchy::kTwoLevel ? "2L" : "3L";
}

struct SystemConfig {
  std::uint32_t num_cores = 4;
  /// Coherence fabric: the paper's snoopy bus, or a sharer-bitmap
  /// directory over a 2D mesh for scaled-up CMPs (8-64 cores). The mesh
  /// requires a power-of-two num_cores (tile-grid factorization).
  noc::Topology topology = noc::Topology::kSnoopBus;
  /// Cache depth: the paper's two-level machine, or private L2s behind a
  /// shared home-banked L3 on the mesh.
  Hierarchy hierarchy = Hierarchy::kTwoLevel;
  /// Total L2 capacity across all private slices (paper sweeps 1..8 MB).
  std::uint64_t total_l2_bytes = 4 * MiB;
  /// Total shared-L3 capacity across all home banks (three-level only).
  std::uint64_t total_l3_bytes = 16 * MiB;
  /// Snooping protocol of the L2 slices (paper §III: MESI; the MOESI
  /// extension realizes the §III sketch for the Owned state).
  coherence::Protocol protocol = coherence::Protocol::kMesi;

  core::CoreConfig core;
  L1Config l1;
  L2Config l2;  ///< size_bytes/protocol are overridden from the above.
  L3Config l3;  ///< bank_bytes is overridden from total_l3_bytes (3L only).
  bus::BusConfig bus;      ///< Used when topology == kSnoopBus.
  noc::DirectoryMeshConfig dmesh;  ///< Used when topology == kDirectoryMesh.
  mem::MemoryConfig mem;
  /// Leakage technique at the private L2 level (the paper's knob).
  decay::DecayConfig decay;
  /// Leakage technique at the L1 front ends (default: always-on baseline).
  /// Every L1 line is clean (write-through), so decay here is always a
  /// silent drop gated only by the Table-I pending-write condition.
  decay::DecayConfig l1_decay;
  /// Leakage technique at the shared L3 home banks (three-level only;
  /// default: always-on baseline). Dirty bank lines write back to memory
  /// before dying — the §III legality rule at the last level.
  decay::DecayConfig l3_decay;
  power::PowerConfig power;
  power::LeakageParams leakage;
  thermal::ThermalConfig thermal;
  /// When false, leakage is evaluated at the reference temperature
  /// (ablation A3 in DESIGN.md).
  bool thermal_feedback = true;

  std::uint64_t instructions_per_core = 4'000'000;
  /// Per-core instruction budgets for trace replay (empty = every core
  /// uses instructions_per_core; otherwise size must equal num_cores).
  std::vector<std::uint64_t> per_core_instructions;
  std::uint64_t seed = 42;
};

/// Validates a SystemConfig, throwing std::invalid_argument with a
/// descriptive message on misconfiguration (zero cores, > 64 cores, a
/// total L2 size not divisible into per-core slices, a non-power-of-two
/// core count on the mesh topology, or a per-core instruction vector of
/// the wrong length). CmpSystem's constructor calls this; harnesses can
/// call it early to fail before building workloads.
void validate_system_config(const SystemConfig& cfg);

/// One fully-wired CMP simulation.
class CmpSystem {
 public:
  /// `streams` overrides the benchmark's preset workload streams when set
  /// (fuzzing, trace capture/replay); `bench` still names the run.
  CmpSystem(const SystemConfig& cfg, const workload::Benchmark& bench,
            const workload::StreamFactory& streams = {});
  ~CmpSystem();

  CmpSystem(const CmpSystem&) = delete;
  CmpSystem& operator=(const CmpSystem&) = delete;

  /// Runs all cores to completion of their instruction budgets and closes
  /// the books (final power/thermal sample). Call once.
  RunMetrics run();

  /// Attaches a differential-verification observer to every component that
  /// reports data movement (L1s, L2s, bus). Must be called before run().
  void set_observer(verify::AccessObserver* obs);

  /// Attaches a timeline trace recorder to every instrumented component
  /// (cores, caches, fabric, memory side, TLBs), registering one track per
  /// component in a fixed order. Observer-only: attaching a recorder never
  /// changes simulated state (the golden pins hold either way). nullptr
  /// detaches. Must be called before run().
  void set_trace_recorder(obs::TraceRecorder* rec);

  /// Attaches a windowed time-series sampler. The run loop — not the event
  /// queue — drives it, so a sampler can never perturb the event schedule.
  /// Window boundaries are quantized to event execution times (deltas stay
  /// exact and deterministic at event granularity). nullptr detaches. Must
  /// be called before run().
  void set_sampler(obs::IntervalSampler* s);

  // --- component access (tests, custom harnesses) -------------------------
  [[nodiscard]] EventQueue& events() noexcept { return eq_; }
  [[nodiscard]] core::CoreModel& core_model(CoreId c) { return *cores_.at(c); }
  [[nodiscard]] L1Cache& l1(CoreId c) { return *l1s_.at(c); }
  [[nodiscard]] L2Cache& l2(CoreId c) { return *l2s_.at(c); }
  /// The snoopy bus (topology kSnoopBus only; asserts otherwise).
  [[nodiscard]] bus::SnoopBus& bus() noexcept {
    CDSIM_ASSERT(bus_ != nullptr);
    return *bus_;
  }
  /// The directory mesh (topology kDirectoryMesh only; asserts otherwise).
  [[nodiscard]] noc::DirectoryMesh& mesh() noexcept {
    CDSIM_ASSERT(mesh_ != nullptr);
    return *mesh_;
  }
  /// The shared L3 (hierarchy kThreeLevel only; asserts otherwise).
  [[nodiscard]] L3Cache& l3() noexcept {
    CDSIM_ASSERT(l3_ != nullptr);
    return *l3_;
  }
  [[nodiscard]] bool has_l3() const noexcept { return l3_ != nullptr; }
  /// Topology-agnostic view of the coherence fabric.
  [[nodiscard]] noc::Interconnect& interconnect() noexcept { return *ic_; }
  [[nodiscard]] mem::MemoryController& memory() noexcept { return *mem_; }
  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const thermal::RcThermalModel& thermal_model() const {
    return floorplan_->model;
  }

  /// Invariant checker used by property tests: at most one M/E/TD copy of
  /// any line system-wide, and every L1 line is backed by a valid L2 line.
  /// Aborts (assert) on violation; returns lines checked.
  std::uint64_t check_coherence_invariants() const;

 private:
  void sample_power(Cycle upto);
  void arm_sampler();
  /// Emits one time-series window [wstart, wend) from counter deltas.
  void sample_window(Cycle wstart, Cycle wend);
  RunMetrics collect(Cycle end) const;

  SystemConfig cfg_;
  const workload::Benchmark& bench_;

  EventQueue eq_;
  std::unique_ptr<mem::MemoryController> mem_;
  std::unique_ptr<bus::SnoopBus> bus_;    ///< kSnoopBus (else null).
  std::unique_ptr<noc::DirectoryMesh> mesh_;  ///< kDirectoryMesh (else null).
  noc::Interconnect* ic_ = nullptr;       ///< Whichever of the two exists.
  std::vector<std::unique_ptr<workload::WorkloadStream>> streams_;
  std::vector<std::unique_ptr<L1Cache>> l1s_;
  std::vector<std::unique_ptr<L2Cache>> l2s_;
  std::unique_ptr<L3Cache> l3_;  ///< kThreeLevel only (else null).
  /// Per-core TLB interposers (mem.tlb.enabled only, else empty). Declared
  /// between the L1s they wrap and the cores that load through them so
  /// destruction order stays reference-safe.
  std::vector<std::unique_ptr<mem::TlbPort>> tlbs_;
  std::vector<std::unique_ptr<core::CoreModel>> cores_;
  std::unique_ptr<thermal::Floorplan> floorplan_;
  power::LeakageModel leak_model_;

  power::EnergyLedger ledger_;
  std::uint32_t cores_done_ = 0;
  bool ran_ = false;

  // Sampling state: previous counter snapshots per window.
  Cycle last_sample_ = 0;
  std::vector<std::uint64_t> prev_committed_;
  std::vector<std::uint64_t> prev_l1_acc_;
  std::vector<double> prev_l1_powered_;
  std::vector<std::uint64_t> prev_l2_acc_;
  std::vector<std::uint64_t> prev_l2_fills_;
  std::vector<double> prev_l2_powered_;
  std::uint64_t prev_bus_bytes_ = 0;
  std::uint64_t prev_noc_flit_hops_ = 0;
  std::uint64_t prev_l3_acc_ = 0;
  std::uint64_t prev_l3_fills_ = 0;
  double prev_l3_powered_ = 0.0;
  std::uint64_t prev_dram_act_ = 0;
  std::uint64_t prev_dram_pre_ = 0;

  // Time-series sampling state (cdsim::obs). Kept strictly separate from
  // the power-sampling prev_* snapshots above: the sampler reads counters
  // at its own window boundaries and must never disturb the power model's
  // deltas.
  obs::IntervalSampler* sampler_ = nullptr;
  Cycle sampler_wstart_ = 0;      ///< Start of the open window.
  Cycle sampler_next_ = 0;        ///< Next window boundary.
  std::uint64_t s_prev_instr_ = 0;
  std::uint64_t s_prev_l2_acc_ = 0;
  std::uint64_t s_prev_l2_miss_ = 0;
  double s_prev_l2_powered_ = 0.0;
  std::uint64_t s_prev_row_hits_ = 0;
  std::uint64_t s_prev_row_activity_ = 0;
  double s_prev_fabric_busy_ = 0.0;
};

}  // namespace cdsim::sim
