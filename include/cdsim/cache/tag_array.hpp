#pragma once
// Generic set-associative tag array with true-LRU replacement, laid out
// structure-of-arrays.
//
// The array owns validity, tag, and LRU ordering; the `Payload` template
// parameter carries whatever per-line metadata the controller needs (MESI
// state, decay bookkeeping, ...). Lookup never allocates; allocation is an
// explicit two-step: pick_victim() then install().
//
// Layout: validity is a packed bitmap (one std::uint64_t word per 64
// lines), and tags / LRU stamps / payloads live in parallel arrays indexed
// by the same set-major line index. The per-access set scan (find,
// pick_victim, pick_victim_if) therefore touches only the packed valid
// word and the tag words of one set — it never strides over Payload
// records, whose size is controller business (the L2's payload alone is
// several cache lines of decay + coherence state). Controllers hold lines
// through the LineRef handle below, which carries (array, index) instead
// of a Line<Payload>*; the index is the same stable identity the expiry
// wheel registers, so LineRef::index() == the wheel's line_index and
// line_at() round-trips it.
//
// Semantics are bit-for-bit those of the previous AoS array (golden pins
// depend on this; tests/tag_array_soa_test.cpp checks it differentially):
//   * find/pick_victim/pick_victim_if scan ways in ascending order;
//   * pick_victim returns the first invalid way, else the minimum-stamp
//     valid way with strict `<` comparison (earliest way wins ties);
//   * for_each_valid visits lines in ascending index (set-major) order;
//   * install stamps MRU with a monotonically increasing clock;
//   * invalidate clears validity only — the payload is NOT reset.

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "cdsim/cache/geometry.hpp"
#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::cache {

template <typename Payload>
class TagArray;

/// Handle to one way of one set — the SoA replacement for `Line<Payload>&`.
///
/// A LineRef is (array, line index), copyable and passed by value; a
/// default-constructed or find()-miss ref is null and tests false. The
/// index is stable for the lifetime of the array (the expiry-wheel
/// contract), so a LineRef can be stored across events as long as the
/// holder revalidates `valid()` — exactly the discipline the controllers
/// already follow for wheel entries.
template <typename Payload>
class LineRef {
 public:
  constexpr LineRef() = default;

  /// True when the ref points at a way (valid or not); false on find miss.
  [[nodiscard]] constexpr explicit operator bool() const noexcept {
    return arr_ != nullptr;
  }
  [[nodiscard]] bool valid() const noexcept { return arr_->is_valid(idx_); }
  [[nodiscard]] Addr tag() const noexcept { return arr_->tag_at(idx_); }
  /// Controller metadata. Shallow-const on purpose (pointer semantics,
  /// like the `Line*` API it replaces): a const LineRef still hands out a
  /// mutable payload.
  [[nodiscard]] Payload& payload() const noexcept {
    return arr_->payload_at(idx_);
  }
  /// Stable set-major line index — the expiry wheel's line_index.
  [[nodiscard]] constexpr std::size_t index() const noexcept { return idx_; }

  friend constexpr bool operator==(const LineRef&, const LineRef&) = default;

 private:
  friend class TagArray<Payload>;
  constexpr LineRef(TagArray<Payload>* arr, std::size_t idx) noexcept
      : arr_(arr), idx_(idx) {}

  TagArray<Payload>* arr_ = nullptr;
  std::size_t idx_ = 0;
};

/// Set-associative array with true-LRU, structure-of-arrays layout.
///
/// LRU is kept as a per-line monotonic timestamp; victim selection scans the
/// set's ways (ways <= 16 in practice, so a scan beats a linked list).
template <typename Payload>
class TagArray {
 public:
  explicit TagArray(const Geometry& geo)
      : geo_(geo),
        valid_((geo.num_lines() + 63) / 64, 0),
        tags_(geo.num_lines(), 0),
        lru_stamp_(geo.num_lines(), 0),
        payloads_(geo.num_lines()) {}

  using Ref = LineRef<Payload>;

  [[nodiscard]] const Geometry& geometry() const noexcept { return geo_; }

  /// Finds the valid line holding `addr`'s tag. Does not touch LRU.
  /// Returns a null ref on miss.
  [[nodiscard]] Ref find(Addr addr) {
    const Addr t = geo_.tag(addr);
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    // Scan only the set's valid ways, lowest way first: at most one way
    // can hold the tag, so bit order only needs to match the AoS scan's
    // ascending-way order (which countr_zero does).
    std::uint64_t live = set_valid_bits(base);
    while (live != 0) {
      const auto w = static_cast<std::uint32_t>(std::countr_zero(live));
      live &= live - 1;
      if (tags_[base + w] == t) return Ref(this, base + w);
    }
    return Ref{};
  }
  [[nodiscard]] Ref find(Addr addr) const {
    // Shallow const, matching the Line* API: const callers get a ref whose
    // payload() is still mutable (controllers const_cast exactly this way
    // today).
    return const_cast<TagArray*>(this)->find(addr);
  }

  /// Marks `addr`'s line most-recently used. Caller must know it exists.
  void touch(Addr addr) {
    const Ref ln = find(addr);
    CDSIM_ASSERT_MSG(static_cast<bool>(ln), "touch() on absent line");
    lru_stamp_[ln.index()] = ++clock_;
  }

  /// Marks an already-looked-up line most-recently used — the hit path
  /// pairs find() with this overload to avoid a second set scan.
  void touch(Ref ln) { lru_stamp_[ln.index()] = ++clock_; }

  /// Selects the victim way for installing `addr`'s line: an invalid way if
  /// any, otherwise the LRU valid way. The returned line may be valid — the
  /// caller is responsible for eviction side effects before install().
  [[nodiscard]] Ref pick_victim(Addr addr) {
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    const std::uint64_t hole = ~set_valid_bits(base) & ways_mask();
    if (hole != 0) {
      // First invalid way, as the AoS scan returned.
      return Ref(this, base + std::countr_zero(hole));
    }
    std::size_t victim = base;
    std::uint64_t best = UINT64_MAX;
    for (std::uint32_t w = 0; w < geo_.ways(); ++w) {
      if (lru_stamp_[base + w] < best) {
        best = lru_stamp_[base + w];
        victim = base + w;
      }
    }
    return Ref(this, victim);
  }

  /// Like pick_victim, but only considers ways satisfying `evictable`
  /// (invalid ways always qualify). Returns a null ref when every valid
  /// way is pinned — the caller must then skip the install (e.g. a set
  /// whose every way has a fill in flight).
  template <typename Pred>
  [[nodiscard]] Ref pick_victim_if(Addr addr, Pred evictable) {
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    const std::uint64_t hole = ~set_valid_bits(base) & ways_mask();
    if (hole != 0) return Ref(this, base + std::countr_zero(hole));
    Ref victim{};
    std::uint64_t best = UINT64_MAX;
    for (std::uint32_t w = 0; w < geo_.ways(); ++w) {
      const Ref ln(this, base + w);
      if (evictable(ln) && lru_stamp_[base + w] < best) {
        best = lru_stamp_[base + w];
        victim = ln;
      }
    }
    return victim;
  }

  /// Installs `addr`'s line into `slot` (obtained from pick_victim) and
  /// marks it MRU. Returns the installed line.
  Ref install(Ref slot, Addr addr, Payload payload) {
    set_valid(slot.index());
    tags_[slot.index()] = geo_.tag(addr);
    payloads_[slot.index()] = std::move(payload);
    lru_stamp_[slot.index()] = ++clock_;
    return slot;
  }

  /// Invalidates a line (does not reset its payload).
  void invalidate(Ref ln) {
    valid_[ln.index() >> 6] &= ~(std::uint64_t{1} << (ln.index() & 63));
  }

  /// Number of currently valid lines: a popcount over the packed bitmap
  /// (O(lines/64)), so invariant checkers can afford to call it per event.
  [[nodiscard]] std::uint64_t count_valid() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t w : valid_) {
      n += static_cast<std::uint64_t>(std::popcount(w));
    }
    return n;
  }

  /// Applies `fn(LineRef)` to every valid line in array (set-major) order,
  /// skipping whole invalid words via the bitmap. Used by checkers and
  /// tests. Templated (no std::function) so per-line dispatch inlines.
  /// `fn` may invalidate the lines it visits (the bit is re-checked live);
  /// it must not install new lines mid-walk.
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (std::size_t wi = 0; wi < valid_.size(); ++wi) {
      std::uint64_t bits = valid_[wi];
      while (bits != 0) {
        const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t idx = (wi << 6) | b;
        if (is_valid(idx)) fn(Ref(this, idx));
      }
    }
  }

  /// Total ways in the array (valid or not).
  [[nodiscard]] std::uint64_t capacity_lines() const noexcept {
    return tags_.size();
  }

  /// Line handle for a stable array index (set-major, way-minor): the
  /// identity an expiry wheel registers so a slot can be revisited in
  /// O(1). Indices are valid for the lifetime of the array and compare in
  /// the same order for_each_valid visits lines.
  [[nodiscard]] Ref line_at(std::size_t index) noexcept {
    return Ref(this, index);
  }

 private:
  friend class LineRef<Payload>;

  [[nodiscard]] bool is_valid(std::size_t idx) const noexcept {
    return (valid_[idx >> 6] >> (idx & 63)) & 1u;
  }
  void set_valid(std::size_t idx) noexcept {
    valid_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  [[nodiscard]] Addr tag_at(std::size_t idx) const noexcept {
    return tags_[idx];
  }
  [[nodiscard]] Payload& payload_at(std::size_t idx) noexcept {
    return payloads_[idx];
  }

  /// The set's validity bits as one word: bit w == valid(base + w).
  /// Sets never straddle words when ways is a power of two <= 64 (base is
  /// then way-aligned), but the generic splice keeps odd geometries right.
  [[nodiscard]] std::uint64_t set_valid_bits(std::uint64_t base) const {
    const std::size_t word = base >> 6;
    const std::uint32_t off = base & 63;
    std::uint64_t bits = valid_[word] >> off;
    if (off != 0 && word + 1 < valid_.size()) {
      bits |= valid_[word + 1] << (64 - off);
    }
    return bits & ways_mask();
  }
  [[nodiscard]] std::uint64_t ways_mask() const noexcept {
    return geo_.ways() >= 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << geo_.ways()) - 1;
  }

  Geometry geo_;
  std::vector<std::uint64_t> valid_;     ///< Packed validity bitmap.
  std::vector<Addr> tags_;               ///< Full line address per way.
  std::vector<std::uint64_t> lru_stamp_; ///< True-LRU monotonic stamps.
  std::vector<Payload> payloads_;        ///< Controller metadata per way.
  std::uint64_t clock_ = 0;
};

}  // namespace cdsim::cache
