#pragma once
// Generic set-associative tag array with true-LRU replacement.
//
// The array owns validity, tag, and LRU ordering; the `Payload` template
// parameter carries whatever per-line metadata the controller needs (MESI
// state, decay bookkeeping, ...). Lookup never allocates; allocation is an
// explicit two-step: pick_victim() then install().

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "cdsim/cache/geometry.hpp"
#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::cache {

/// One way of one set, as exposed to controllers.
template <typename Payload>
struct Line {
  bool valid = false;
  Addr tag = 0;  ///< Full line address (see Geometry::tag).
  Payload payload{};
};

/// Set-associative array of Line<Payload> with true-LRU.
///
/// LRU is kept as a per-line monotonic timestamp; victim selection scans the
/// set's ways (ways <= 16 in practice, so a scan beats a linked list).
template <typename Payload>
class TagArray {
 public:
  explicit TagArray(const Geometry& geo)
      : geo_(geo),
        lines_(geo.num_lines()),
        lru_stamp_(geo.num_lines(), 0) {}

  [[nodiscard]] const Geometry& geometry() const noexcept { return geo_; }

  /// Finds the valid line holding `addr`'s tag. Does not touch LRU.
  [[nodiscard]] Line<Payload>* find(Addr addr) {
    const Addr t = geo_.tag(addr);
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    for (std::uint32_t w = 0; w < geo_.ways(); ++w) {
      Line<Payload>& ln = lines_[base + w];
      if (ln.valid && ln.tag == t) return &ln;
    }
    return nullptr;
  }
  [[nodiscard]] const Line<Payload>* find(Addr addr) const {
    return const_cast<TagArray*>(this)->find(addr);
  }

  /// Marks `addr`'s line most-recently used. Caller must know it exists.
  void touch(Addr addr) {
    Line<Payload>* ln = find(addr);
    CDSIM_ASSERT_MSG(ln != nullptr, "touch() on absent line");
    lru_stamp_[index_of(ln)] = ++clock_;
  }

  /// Marks an already-looked-up line most-recently used — the hit path
  /// pairs find() with this overload to avoid a second set scan.
  void touch(Line<Payload>& ln) { lru_stamp_[index_of(&ln)] = ++clock_; }

  /// Selects the victim way for installing `addr`'s line: an invalid way if
  /// any, otherwise the LRU valid way. The returned line may be valid — the
  /// caller is responsible for eviction side effects before install().
  [[nodiscard]] Line<Payload>& pick_victim(Addr addr) {
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    Line<Payload>* victim = nullptr;
    std::uint64_t best = UINT64_MAX;
    for (std::uint32_t w = 0; w < geo_.ways(); ++w) {
      Line<Payload>& ln = lines_[base + w];
      if (!ln.valid) return ln;
      if (lru_stamp_[base + w] < best) {
        best = lru_stamp_[base + w];
        victim = &ln;
      }
    }
    CDSIM_ASSERT(victim != nullptr);
    return *victim;
  }

  /// Like pick_victim, but only considers ways satisfying `evictable`
  /// (invalid ways always qualify). Returns nullptr when every valid way is
  /// pinned — the caller must then skip the install (e.g. a set whose every
  /// way has a fill in flight).
  template <typename Pred>
  [[nodiscard]] Line<Payload>* pick_victim_if(Addr addr, Pred evictable) {
    const std::uint64_t base = geo_.set_index(addr) * geo_.ways();
    Line<Payload>* victim = nullptr;
    std::uint64_t best = UINT64_MAX;
    for (std::uint32_t w = 0; w < geo_.ways(); ++w) {
      Line<Payload>& ln = lines_[base + w];
      if (!ln.valid) return &ln;
      if (evictable(ln) && lru_stamp_[base + w] < best) {
        best = lru_stamp_[base + w];
        victim = &ln;
      }
    }
    return victim;
  }

  /// Installs `addr`'s line into `slot` (obtained from pick_victim) and
  /// marks it MRU. Returns the installed line.
  Line<Payload>& install(Line<Payload>& slot, Addr addr, Payload payload) {
    slot.valid = true;
    slot.tag = geo_.tag(addr);
    slot.payload = std::move(payload);
    lru_stamp_[index_of(&slot)] = ++clock_;
    return slot;
  }

  /// Invalidates a line (does not reset its payload).
  void invalidate(Line<Payload>& ln) { ln.valid = false; }

  /// Number of currently valid lines (O(lines); use for assertions/tests).
  [[nodiscard]] std::uint64_t count_valid() const {
    std::uint64_t n = 0;
    for (const auto& ln : lines_) n += ln.valid ? 1 : 0;
    return n;
  }

  /// Applies `fn` to every valid line in array (set-major) order. Used by
  /// checkers and tests. Templated (no std::function) so per-line dispatch
  /// inlines.
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& ln : lines_) {
      if (ln.valid) fn(ln);
    }
  }

  /// Total ways in the array (valid or not).
  [[nodiscard]] std::uint64_t capacity_lines() const noexcept {
    return lines_.size();
  }

  /// Stable array index of a line (set-major, way-minor): the identity an
  /// expiry wheel registers so a slot can be revisited in O(1). Valid for
  /// the lifetime of the array; indices compare in the same order
  /// for_each_valid visits lines.
  [[nodiscard]] std::size_t line_index(const Line<Payload>& ln) const noexcept {
    return index_of(&ln);
  }
  [[nodiscard]] Line<Payload>& line_at(std::size_t index) noexcept {
    return lines_[index];
  }

 private:
  [[nodiscard]] std::size_t index_of(const Line<Payload>* ln) const noexcept {
    return static_cast<std::size_t>(ln - lines_.data());
  }

  Geometry geo_;
  std::vector<Line<Payload>> lines_;
  std::vector<std::uint64_t> lru_stamp_;
  std::uint64_t clock_ = 0;
};

}  // namespace cdsim::cache
