#pragma once
// Level-agnostic cache engine: the mechanics every cache level shares.
//
// A cache level — the per-core L1, a private L2 slice, or a shared L3 home
// bank — is built from the same parts: a set-associative tag array, an MSHR
// file, an optional coalescing write buffer, the decay sweeper with its
// expiry wheel, the powered-line time integral behind the paper's
// occupation metric, the decay-attribution map behind decay-induced-miss
// accounting, and the hit/miss statistics. Before this engine existed those
// parts were wired by hand inside each controller (631 lines of L2 logic
// that could not be reused); now a controller composes one CacheLevel and
// keeps only its protocol choreography — MESI/MOESI snooping for a private
// coherent level, write-through draining for the L1 front end, memory-side
// absorption for the shared L3.
//
// The LevelPolicy describes what kind of level this is: whether writes
// allocate, whether stores propagate straight through, whether the level
// back-invalidates the level above on line death (inclusion), whether it
// participates in coherence as a snooper, and whether it carries a write
// buffer. The policy is descriptive — the engine never branches on the
// protocol itself — but it is what makes a level's turn-off legality rules
// (DESIGN.md §Section-III-per-level) checkable in one place.
//
// The Payload template parameter carries the controller's per-line metadata
// and must embed a `decay::LineDecayState decay;` member — the engine owns
// the decay bookkeeping (arming, wheel registration, expiry) uniformly for
// every level.
//
// Extraction contract: every method here was moved verbatim from the L2
// controller (PR 2's expiry-wheel and attribution-aging semantics
// included), so a two-level system rebuilt on this engine is bit-identical
// to the hand-wired one — the golden-metrics pins prove it.

#include <concepts>
#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cdsim/cache/cache_stats.hpp"
#include "cdsim/cache/geometry.hpp"
#include "cdsim/cache/mshr.hpp"
#include "cdsim/cache/tag_array.hpp"
#include "cdsim/cache/write_buffer.hpp"
#include "cdsim/coherence/mesi.hpp"
#include "cdsim/common/assert.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/decay/sweeper.hpp"
#include "cdsim/decay/technique.hpp"

namespace cdsim::cache {

/// What kind of level a CacheLevel instance is. Controllers configure it
/// once; tests and documentation read it back.
struct LevelPolicy {
  const char* name = "L?";
  /// Write misses allocate the line (write-allocate). The write-through L1
  /// front end does not allocate on stores; the L2 and L3 do.
  bool allocate_on_write = true;
  /// Stores propagate immediately to the level below (write-through).
  bool write_through = false;
  /// Line death at this level back-invalidates the level above (inclusion).
  bool inclusive_above = false;
  /// The level is a coherence participant (a Snooper on the fabric). The
  /// shared L3 is memory-side: the directory home serializes for it.
  bool coherent = false;
  /// Coalescing write-buffer entries between this level and the one below
  /// (0 = no write buffer).
  std::uint32_t write_buffer_entries = 0;
};

/// Shape/timing knobs shared by every level.
struct LevelTiming {
  Cycle hit_latency = 1;
  std::uint32_t mshr_entries = 8;
  /// Backoff before re-attempting an access that found its line transient
  /// or the MSHR file full.
  Cycle retry_interval = 4;
};

// LevelPolicy is read by designated-initializer configs all over the tree
// and snapshotted by value into every CacheLevel; keep it an aggregate of
// trivially-copyable flags so a policy can never grow behavior of its own
// (the engine must stay policy-descriptive, never policy-dispatched).
static_assert(std::is_aggregate_v<LevelPolicy>,
              "LevelPolicy must stay an aggregate: controllers build it "
              "with designated initializers");
static_assert(std::is_trivially_copyable_v<LevelPolicy>,
              "LevelPolicy must stay trivially copyable: CacheLevel "
              "snapshots it by value in its constructor");

/// Compile-time contract for CacheLevel's Payload parameter. The engine
/// owns decay bookkeeping (arming, wheel registration, expiry) uniformly
/// for every level, which requires an embedded `decay::LineDecayState
/// decay;` member it can reach by name; payloads are also value types the
/// tag array default-constructs per line.
template <typename P>
concept LevelPayload = std::default_initializable<P> &&
                       std::copy_constructible<P> && requires(P p) {
                         { p.decay } -> std::same_as<decay::LineDecayState&>;
                       };

/// The level-agnostic engine. One instance per physical cache structure
/// (per-core L1, per-core L2 slice, per-tile L3 bank).
template <typename Payload>
class CacheLevel {
 public:
  /// Line handle (SoA LineRef, passed by value — see tag_array.hpp).
  using LineT = LineRef<Payload>;

  CacheLevel(EventQueue& eq, const Geometry& geo, const LevelTiming& timing,
             const decay::DecayConfig& dcfg, const LevelPolicy& policy,
             std::function<void(Cycle)> sweep_fn)
      : eq_(eq),
        timing_(timing),
        dcfg_(dcfg),
        policy_(policy),
        tags_(geo),
        mshr_(timing.mshr_entries),
        sweeper_(eq, dcfg, std::move(sweep_fn)) {
    // Checked here, not at class scope: controllers nest their Payload
    // inside themselves, and a nested struct's default member initializers
    // are only usable once the enclosing class is complete — at class
    // scope the concept would spuriously fail for every controller.
    static_assert(LevelPayload<Payload>,
                  "CacheLevel<Payload>: Payload must be "
                  "default-constructible, copyable, and embed a "
                  "`decay::LineDecayState decay;` member — the decay engine "
                  "reaches line state through that field");
    CDSIM_ASSERT(timing_.hit_latency >= 1);
    if (policy_.write_buffer_entries > 0) {
      wb_.emplace(policy_.write_buffer_entries);
    }
    wheel_.configure(dcfg_);
  }

  // --- lifecycle ----------------------------------------------------------
  /// Arms the decay sweeper (no-op for non-decay techniques).
  void start() { sweeper_.start(); }
  /// Stops the sweeper (simulation teardown).
  void stop() { sweeper_.stop(); }

  // --- structure access ---------------------------------------------------
  [[nodiscard]] TagArray<Payload>& tags() noexcept { return tags_; }
  [[nodiscard]] const TagArray<Payload>& tags() const noexcept {
    return tags_;
  }
  [[nodiscard]] MshrFile& mshr() noexcept { return mshr_; }
  [[nodiscard]] WriteBuffer& write_buffer() noexcept {
    CDSIM_ASSERT_MSG(wb_.has_value(), "level has no write buffer");
    return *wb_;
  }
  [[nodiscard]] const WriteBuffer& write_buffer() const noexcept {
    CDSIM_ASSERT_MSG(wb_.has_value(), "level has no write buffer");
    return *wb_;
  }
  [[nodiscard]] CacheStats& stats() noexcept { return stats_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Geometry& geometry() const noexcept {
    return tags_.geometry();
  }
  [[nodiscard]] const decay::DecayConfig& decay_config() const noexcept {
    return dcfg_;
  }
  [[nodiscard]] const LevelPolicy& policy() const noexcept { return policy_; }

  // --- shared counters ----------------------------------------------------
  [[nodiscard]] Counter& fills() noexcept { return fills_; }
  [[nodiscard]] const Counter& fills() const noexcept { return fills_; }
  [[nodiscard]] Counter& transient_retries() noexcept {
    return transient_retries_;
  }
  [[nodiscard]] const Counter& transient_retries() const noexcept {
    return transient_retries_;
  }

  // --- timing -------------------------------------------------------------
  /// Effective hit latency: +1 cycle when decay hardware is present
  /// (Gated-Vdd access penalty, paper §V) — at any level that decays.
  [[nodiscard]] Cycle access_latency() const noexcept {
    return timing_.hit_latency +
           (decay::uses_decay(dcfg_.technique) ? 1 : 0);
  }

  /// Schedules `fn` after the level's retry backoff.
  void retry(EventQueue::Callback fn) {
    eq_.schedule_in(timing_.retry_interval, std::move(fn));
  }

  // --- LRU + decay countdown ----------------------------------------------
  /// Marks a line most-recently-used and restarts its decay countdown.
  void touch(LineT ln) {
    tags_.touch(ln);
    ln.payload().decay.last_touch = eq_.now();
    wheel_register(ln);
  }

  /// Registers an armed, unregistered line with the expiry wheel under its
  /// predicted expiry tick. No-op for unarmed/already-registered lines and
  /// non-decay techniques, so it is safe (and cheap) on the hit path.
  void wheel_register(LineT ln) {
    decay::LineDecayState& d = ln.payload().decay;
    if (!d.armed || d.wheel_ticket != 0 || !wheel_.enabled()) return;
    d.wheel_ticket =
        wheel_.add(ln.index(), dcfg_.first_expiry_tick(d.last_touch));
  }

  /// Updates the decay-arming bit on a transition *into* `to` (paper §IV).
  /// Non-coherent levels map their line flavor onto the equivalent MESI
  /// state (dirty -> kModified, clean -> kShared) so the selective-decay
  /// rule — never arm a line whose turn-off would cost a write-back — means
  /// the same thing at every level.
  void arm_on_entry(decay::LineDecayState& d, coherence::MesiState to) const {
    using coherence::MesiState;
    if (dcfg_.technique == decay::Technique::kDecay) {
      d.armed = coherence::holds_data(to);
    } else if (dcfg_.technique == decay::Technique::kSelectiveDecay) {
      if (to == MesiState::kShared || to == MesiState::kExclusive) {
        d.armed = true;
      } else if (to == MesiState::kModified || to == MesiState::kOwned) {
        // Dirty states disarm: Selective Decay avoids costly dirty
        // turn-offs, and an Owned turn-off is costlier still.
        d.armed = false;
      }
    }
  }

  /// One decay-sweep tick: visits every line whose registration is due and
  /// invokes `fn(line, line_index)` for the genuinely expired ones, in
  /// line-index order. Handles the whole wheel protocol — stale-ticket
  /// discard, ticket clearing, dead/disarmed skips, and the lazy
  /// re-registration of lines touched since they were registered — so a
  /// controller's sweep is only its per-level legality gates and turn-off
  /// choreography. Also ages the attribution map. No-op for non-decay
  /// techniques.
  template <typename Fn>
  void for_each_expired(Cycle now, Fn&& fn) {
    if (!decay::uses_decay(dcfg_.technique)) return;
    age_decay_attribution(now);
    wheel_.collect_due(now, due_scratch_);
    for (const decay::ExpiryWheel::Entry& e : due_scratch_) {
      LineT ln = tags_.line_at(e.line_index);
      decay::LineDecayState& d = ln.payload().decay;
      if (d.wheel_ticket != e.ticket) continue;  // slot was reused
      d.wheel_ticket = 0;
      if (!ln.valid() || !d.armed) continue;  // died or disarmed meanwhile
      if (!dcfg_.expired(d, now)) {
        // Touched since registration: lazily reschedule at the new
        // deadline (registrations are never updated on the hit path).
        wheel_register(ln);
        continue;
      }
      fn(ln, static_cast<std::size_t>(e.line_index));
    }
  }

  /// Re-examines a gated (turn-off-ineligible) expired line at the next
  /// sweep tick — the full-array sweep re-examined gated lines every tick;
  /// this mirrors that.
  void defer_to_next_tick(LineT ln, std::size_t line_index, Cycle now) {
    ln.payload().decay.wheel_ticket =
        wheel_.add(line_index, now + dcfg_.tick_period());
  }

  // --- powered-line accounting --------------------------------------------
  /// A line started holding data (fill/install).
  void power_on() { on_lines_.add(eq_.now(), +1.0); }
  /// A line stopped holding data (eviction, invalidation, turn-off).
  void power_off() { on_lines_.add(eq_.now(), -1.0); }

  /// Currently powered lines.
  [[nodiscard]] std::uint64_t lines_on() const noexcept {
    return static_cast<std::uint64_t>(on_lines_.value());
  }
  [[nodiscard]] std::uint64_t capacity_lines() const noexcept {
    return tags_.capacity_lines();
  }

  /// Exact time integral of powered lines over [0, now]. For gated
  /// techniques this integrates valid lines; for the baseline every line
  /// is always powered.
  [[nodiscard]] double powered_line_cycles(Cycle now) const {
    if (!decay::gates_invalid_lines(dcfg_.technique)) {
      return static_cast<double>(tags_.capacity_lines()) *
             static_cast<double>(now);
    }
    return on_lines_.integral(now);
  }

  /// Powered fraction of the array, time-averaged over [0, now] — the
  /// paper's occupation rate for this structure.
  [[nodiscard]] double occupation(Cycle now) const {
    if (now == 0) return 1.0;
    return powered_line_cycles(now) /
           (static_cast<double>(tags_.capacity_lines()) *
            static_cast<double>(now));
  }

  // --- miss accounting + decay attribution --------------------------------
  /// Counts a miss and attributes it to a decay turn-off when this line was
  /// recently killed by the sweeper.
  void note_miss(Addr line_addr, bool is_write) {
    if (is_write) {
      stats_.write_misses.inc();
    } else {
      stats_.read_misses.inc();
    }
    auto it = decayed_lines_.find(line_addr);
    if (it != decayed_lines_.end()) {
      stats_.decay_induced_misses.inc();
      stats_.decay_induced_by_region[(line_addr >> 40) & 7].inc();
      decayed_lines_.erase(it);
    }
  }

  /// Records a decay turn-off of `line_addr` for later miss attribution.
  void mark_decayed(Addr line_addr) { decayed_lines_[line_addr] = eq_.now(); }

  /// Drops any pending attribution for `line_addr` (the line was refilled
  /// through a path that already consumed or invalidated it).
  void clear_attribution(Addr line_addr) { decayed_lines_.erase(line_addr); }

  /// Live decay-attribution entries (test/diagnostic hook).
  [[nodiscard]] std::size_t decay_attribution_entries() const noexcept {
    return decayed_lines_.size();
  }

  /// Deterministic aging of the attribution map: purges entries older than
  /// kAttributionWindowIntervals full decay intervals once the map reaches
  /// the doubling purge threshold. Driven by simulated time only, so
  /// parallel and serial sweeps stay bit-identical. Within the window the
  /// attribution is exact; a line slot can decay at most once per
  /// decay_time (it must be refilled and sit idle a full interval first),
  /// so live entries are bounded by ~(window + 1) x capacity_lines.
  void age_decay_attribution(Cycle now) {
    if (decayed_lines_.size() < attribution_purge_at_) return;
    const Cycle window = kAttributionWindowIntervals * dcfg_.decay_time;
    for (auto it = decayed_lines_.begin(); it != decayed_lines_.end();) {
      if (now - it->second > window) {
        it = decayed_lines_.erase(it);
      } else {
        ++it;
      }
    }
    attribution_purge_at_ =
        std::max(kAttributionMinEntries, decayed_lines_.size() * 2);
  }

 private:
  static constexpr std::size_t kAttributionMinEntries = 4096;
  static constexpr Cycle kAttributionWindowIntervals = 16;

  EventQueue& eq_;
  LevelTiming timing_;
  decay::DecayConfig dcfg_;
  LevelPolicy policy_;

  TagArray<Payload> tags_;
  MshrFile mshr_;
  std::optional<WriteBuffer> wb_;
  decay::DecaySweeper sweeper_;
  /// Expiry wheel feeding the sweep: O(due lines) per tick instead of a
  /// full tag-array walk, with a bit-identical turn-off schedule.
  decay::ExpiryWheel wheel_;
  /// Scratch bucket reused by every sweep tick (no per-tick allocation).
  std::vector<decay::ExpiryWheel::Entry> due_scratch_;

  /// Powered-line count integral (valid lines for gated techniques).
  TimeWeightedValue on_lines_{0.0};

  /// Lines killed by decay (line address -> turn-off cycle), to attribute
  /// later misses to the technique. Entries are consumed by the first
  /// subsequent miss (note_miss) or install of the same line; stale entries
  /// are purged by age_decay_attribution.
  std::unordered_map<Addr, Cycle> decayed_lines_;
  /// Purge when the map reaches this size (amortizes the O(size) scan).
  std::size_t attribution_purge_at_ = kAttributionMinEntries;

  CacheStats stats_;
  Counter fills_, transient_retries_;
};

}  // namespace cdsim::cache
