#pragma once
// Miss Status Holding Registers.
//
// An MSHR file lets a cache service hits (and merge further misses to the
// same line) while earlier misses are outstanding. Each entry tracks one
// in-flight line fill plus the requests waiting on it. Capacity pressure is
// part of the timing model: when the file is full the cache must stall new
// misses, which is how limited memory-level parallelism reaches the core.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/small_fn.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::cache {

/// Callback invoked when the fill a waiter was merged into completes.
/// `fill_done` is the cycle the data became available. Move-only with a
/// 72-byte inline buffer: the L2's largest fill waiter (`this` + line
/// address + a 48-byte response functor + the counted flag) fits without
/// allocating.
using FillCallback = SmallFn<void(Cycle fill_done), 72>;

/// One outstanding line fill.
struct MshrEntry {
  Addr line_addr = 0;
  bool is_write = false;  ///< Fetch was issued for ownership (BusRdX).
  Cycle allocated_at = 0;
  std::vector<FillCallback> waiters;
};

/// Fixed-capacity MSHR file keyed by line address.
class MshrFile {
 public:
  explicit MshrFile(std::uint32_t capacity) : capacity_(capacity) {
    CDSIM_ASSERT(capacity >= 1);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t in_use() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] bool full() const noexcept { return in_use() >= capacity_; }

  /// Entry for `line_addr`, or nullptr when no fill is outstanding.
  [[nodiscard]] MshrEntry* find(Addr line_addr) {
    auto it = entries_.find(line_addr);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Allocates an entry for a new outstanding fill. Precondition: !full()
  /// and no entry exists for this line (merge instead).
  MshrEntry& allocate(Addr line_addr, bool is_write, Cycle now) {
    CDSIM_ASSERT_MSG(!full(), "MSHR allocate on full file");
    CDSIM_ASSERT_MSG(find(line_addr) == nullptr,
                     "MSHR allocate with existing entry (merge instead)");
    MshrEntry& e = entries_[line_addr];
    e.line_addr = line_addr;
    e.is_write = is_write;
    e.allocated_at = now;
    ++allocations_;
    return e;
  }

  /// Merges a waiter into an existing entry. If the merged request needs
  /// ownership, the entry is promoted to a write fetch (the controller
  /// must upgrade the bus request if it has not been granted yet).
  void merge(MshrEntry& e, bool is_write, FillCallback cb) {
    if (is_write) e.is_write = true;
    e.waiters.push_back(std::move(cb));
    ++merges_;
  }

  /// Completes the fill for `line_addr`: invokes all waiters with
  /// `fill_done` and frees the entry. Waiters run in merge order.
  void complete(Addr line_addr, Cycle fill_done) {
    auto it = entries_.find(line_addr);
    CDSIM_ASSERT_MSG(it != entries_.end(), "MSHR complete on absent entry");
    // Move waiters out first: a waiter may synchronously allocate a new
    // MSHR entry (even for the same line).
    std::vector<FillCallback> waiters = std::move(it->second.waiters);
    entries_.erase(it);
    for (auto& cb : waiters) cb(fill_done);
  }

  /// Statistics: lifetime totals.
  [[nodiscard]] std::uint64_t total_allocations() const noexcept {
    return allocations_;
  }
  [[nodiscard]] std::uint64_t total_merges() const noexcept { return merges_; }

 private:
  std::uint32_t capacity_ = 0;
  std::unordered_map<Addr, MshrEntry> entries_;
  std::uint64_t allocations_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace cdsim::cache
