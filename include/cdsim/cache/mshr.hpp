#pragma once
// Miss Status Holding Registers.
//
// An MSHR file lets a cache service hits (and merge further misses to the
// same line) while earlier misses are outstanding. Each entry tracks one
// in-flight line fill plus the requests waiting on it. Capacity pressure is
// part of the timing model: when the file is full the cache must stall new
// misses, which is how limited memory-level parallelism reaches the core.
//
// Layout: the file is a fixed-capacity slot array (sized once, at
// construction) with a packed live bitmask and a parallel line-address
// array. find() — the hottest call, one per cache access that misses the
// tag array — scans live bits and compares addresses out of one cache line
// instead of chasing hash-table buckets, and allocate/complete recycle the
// waiter vectors' buffers through a spare pool, so the steady state
// performs no heap allocation at all.

#include <bit>
#include <cstdint>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/small_fn.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::cache {

/// Callback invoked when the fill a waiter was merged into completes.
/// `fill_done` is the cycle the data became available. Move-only with a
/// 72-byte inline buffer: the L2's largest fill waiter (`this` + line
/// address + a 48-byte response functor + the counted flag) fits without
/// allocating.
using FillCallback = SmallFn<void(Cycle fill_done), 72>;

/// One outstanding line fill.
struct MshrEntry {
  Addr line_addr = 0;
  bool is_write = false;  ///< Fetch was issued for ownership (BusRdX).
  Cycle allocated_at = 0;
  std::vector<FillCallback> waiters;
};

/// Fixed-capacity MSHR file keyed by line address.
class MshrFile {
 public:
  explicit MshrFile(std::uint32_t capacity)
      : capacity_(capacity),
        addrs_(capacity, 0),
        live_((capacity + 63) / 64, 0),
        slots_(capacity) {
    CDSIM_ASSERT(capacity >= 1);
    spare_waiters_.reserve(capacity);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] bool full() const noexcept { return in_use_ >= capacity_; }

  /// Entry for `line_addr`, or nullptr when no fill is outstanding.
  [[nodiscard]] MshrEntry* find(Addr line_addr) {
    const std::size_t i = index_of(line_addr);
    return i == kNone ? nullptr : &slots_[i];
  }

  /// Allocates an entry for a new outstanding fill. Precondition: !full()
  /// and no entry exists for this line (merge instead). The returned
  /// reference stays valid until the entry completes: the slot array never
  /// reallocates.
  MshrEntry& allocate(Addr line_addr, bool is_write, Cycle now) {
    CDSIM_ASSERT_MSG(!full(), "MSHR allocate on full file");
    CDSIM_ASSERT_MSG(find(line_addr) == nullptr,
                     "MSHR allocate with existing entry (merge instead)");
    std::size_t i = 0;
    for (std::size_t w = 0; w < live_.size(); ++w) {
      if (live_[w] != ~std::uint64_t{0}) {
        i = w * 64 + static_cast<std::size_t>(std::countr_one(live_[w]));
        live_[w] |= std::uint64_t{1} << (i & 63);
        break;
      }
    }
    ++in_use_;
    addrs_[i] = line_addr;
    MshrEntry& e = slots_[i];
    e.line_addr = line_addr;
    e.is_write = is_write;
    e.allocated_at = now;
    if (!spare_waiters_.empty()) {
      // Reuse a retired waiter buffer (empty, capacity retained) so a
      // steady-state miss never allocates.
      e.waiters = std::move(spare_waiters_.back());
      spare_waiters_.pop_back();
    }
    ++allocations_;
    return e;
  }

  /// Merges a waiter into an existing entry. If the merged request needs
  /// ownership, the entry is promoted to a write fetch (the controller
  /// must upgrade the bus request if it has not been granted yet).
  void merge(MshrEntry& e, bool is_write, FillCallback cb) {
    if (is_write) e.is_write = true;
    e.waiters.push_back(std::move(cb));
    ++merges_;
  }

  /// Completes the fill for `line_addr`: invokes all waiters with
  /// `fill_done` and frees the entry. Waiters run in merge order.
  void complete(Addr line_addr, Cycle fill_done) {
    const std::size_t i = index_of(line_addr);
    CDSIM_ASSERT_MSG(i != kNone, "MSHR complete on absent entry");
    // Move waiters out and free the slot first: a waiter may synchronously
    // allocate a new MSHR entry (even for the same line).
    std::vector<FillCallback> waiters = std::move(slots_[i].waiters);
    live_[i / 64] &= ~(std::uint64_t{1} << (i & 63));
    --in_use_;
    for (auto& cb : waiters) cb(fill_done);
    // Retire the buffer into the spare pool. Waiters may have refilled the
    // file, so the pool can briefly exceed capacity_ — cap it there.
    if (spare_waiters_.size() < capacity_) {
      waiters.clear();
      spare_waiters_.push_back(std::move(waiters));
    }
  }

  /// Statistics: lifetime totals.
  [[nodiscard]] std::uint64_t total_allocations() const noexcept {
    return allocations_;
  }
  [[nodiscard]] std::uint64_t total_merges() const noexcept { return merges_; }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};

  [[nodiscard]] std::size_t index_of(Addr line_addr) const noexcept {
    for (std::size_t w = 0; w < live_.size(); ++w) {
      std::uint64_t bits = live_[w];
      while (bits != 0) {
        const std::size_t i =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (addrs_[i] == line_addr) return i;
      }
    }
    return kNone;
  }

  std::uint32_t capacity_ = 0;
  std::uint32_t in_use_ = 0;
  std::vector<Addr> addrs_;          ///< Scan keys, parallel to slots_.
  std::vector<std::uint64_t> live_;  ///< Bit i set <=> slot i allocated.
  std::vector<MshrEntry> slots_;     ///< Fixed at capacity_; never grows.
  /// Retired waiter buffers (empty, capacity retained) for reuse.
  std::vector<std::vector<FillCallback>> spare_waiters_;
  std::uint64_t allocations_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace cdsim::cache
