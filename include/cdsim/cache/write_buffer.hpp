#pragma once
// Store write buffer for a write-through L1.
//
// Stores retire into this buffer and drain to the L2 in FIFO order,
// coalescing consecutive stores to the same line. Several drains may be in
// flight at once (store-miss MLP); a slot is released only when its write
// reached the L2. The buffer is also the "pending write" oracle the
// turn-off mechanism must consult (paper Table I: a clean L2 line may be
// turned off only "if no pending write") — a write still counts as pending
// while its drain is in flight.

#include <cstdint>
#include <optional>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::cache {

/// FIFO coalescing write buffer, line-granular, with multi-drain support.
class WriteBuffer {
 public:
  explicit WriteBuffer(std::uint32_t capacity) : capacity_(capacity) {
    CDSIM_ASSERT(capacity >= 1);
    // Occupancy never exceeds capacity_, so this one reservation is the
    // buffer's only allocation — the push/drain hot path stays heap-free.
    fifo_.reserve(capacity_);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(fifo_.size());
  }
  [[nodiscard]] bool full() const noexcept { return size() >= capacity_; }
  [[nodiscard]] bool empty() const noexcept { return fifo_.empty(); }

  /// True when a write to `line_addr` has not reached the L2 yet —
  /// the Table I "pending write" condition. Draining slots still count.
  [[nodiscard]] bool pending_to(Addr line_addr) const {
    for (const Slot& s : fifo_) {
      if (s.line_addr == line_addr) return true;
    }
    return false;
  }

  /// Enqueues a store to `line_addr`. Coalesces into the newest slot if it
  /// targets the same line and its drain has not started (once draining,
  /// the write has left for the L2 and later stores need a fresh slot).
  /// Returns false when the buffer is full and cannot coalesce — the
  /// caller must stall the store.
  bool push(Addr line_addr, Cycle now) {
    if (!fifo_.empty() && fifo_.back().line_addr == line_addr &&
        !fifo_.back().draining) {
      ++fifo_.back().coalesced;
      ++coalesced_total_;
      return true;
    }
    if (full()) return false;
    fifo_.push_back(Slot{line_addr, now, 0, false});
    ++pushes_;
    return true;
  }

  /// Claims the oldest slot whose drain has not started, marking it
  /// draining, and returns its line. Empty when nothing is drainable.
  std::optional<Addr> drain_next() {
    for (Slot& s : fifo_) {
      if (!s.draining) {
        s.draining = true;
        return s.line_addr;
      }
    }
    return std::nullopt;
  }

  /// Releases the (oldest) draining slot for `line_addr` after its write
  /// reached the L2.
  void drain_done(Addr line_addr) {
    for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
      if (it->draining && it->line_addr == line_addr) {
        fifo_.erase(it);
        return;
      }
    }
    CDSIM_UNREACHABLE("drain_done without matching draining slot");
  }

  /// Number of drains currently claimed but not completed.
  [[nodiscard]] std::uint32_t draining() const noexcept {
    std::uint32_t n = 0;
    for (const Slot& s : fifo_) n += s.draining ? 1 : 0;
    return n;
  }

  [[nodiscard]] std::uint64_t total_pushes() const noexcept { return pushes_; }
  [[nodiscard]] std::uint64_t total_coalesced() const noexcept {
    return coalesced_total_;
  }

 private:
  struct Slot {
    Addr line_addr = 0;
    Cycle enqueued_at = 0;
    std::uint32_t coalesced = 0;  ///< Extra stores folded into this slot.
    bool draining = false;            ///< Write is on its way to the L2.
  };

  std::uint32_t capacity_ = 0;
  /// FIFO by construction (erase preserves order); a vector because the
  /// occupancy is bounded by capacity_ — see the constructor reservation.
  std::vector<Slot> fifo_;
  std::uint64_t pushes_ = 0;
  std::uint64_t coalesced_total_ = 0;
};

}  // namespace cdsim::cache
