#pragma once
// Cache geometry arithmetic: size/line/ways -> sets, and address slicing.
//
// Every cache in the hierarchy (L1, L2) shares this geometry model. All
// dimensions must be powers of two so tag/index extraction is shift/mask.

#include <cstdint>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::cache {

/// Immutable description of a set-associative cache's shape.
class Geometry {
 public:
  /// @param size_bytes  total capacity (power of two)
  /// @param line_bytes  line size (power of two, >= 8)
  /// @param ways        associativity (power of two, >= 1)
  Geometry(std::uint64_t size_bytes, std::uint32_t line_bytes,
           std::uint32_t ways)
      : size_(size_bytes), line_(line_bytes), ways_(ways) {
    CDSIM_ASSERT_MSG(is_pow2(size_bytes), "cache size must be a power of two");
    CDSIM_ASSERT_MSG(is_pow2(line_bytes) && line_bytes >= 8,
                     "line size must be a power of two >= 8");
    CDSIM_ASSERT_MSG(is_pow2(ways) && ways >= 1,
                     "associativity must be a power of two >= 1");
    CDSIM_ASSERT_MSG(size_bytes >= static_cast<std::uint64_t>(line_bytes) * ways,
                     "cache smaller than one set");
    line_shift_ = log2_pow2(line_bytes);
    sets_ = size_ / (static_cast<std::uint64_t>(line_) * ways_);
    set_mask_ = sets_ - 1;
  }

  [[nodiscard]] std::uint64_t size_bytes() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t line_bytes() const noexcept { return line_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint64_t num_sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint64_t num_lines() const noexcept {
    return sets_ * ways_;
  }

  /// Line-aligned address (the unit of coherence and decay).
  [[nodiscard]] Addr line_addr(Addr a) const noexcept {
    return a & ~(static_cast<Addr>(line_) - 1);
  }

  /// Set index for an address.
  [[nodiscard]] std::uint64_t set_index(Addr a) const noexcept {
    return (a >> line_shift_) & set_mask_;
  }

  /// Tag (the line address bits above the index). We store full line
  /// addresses as tags — simpler and unambiguous across geometries.
  [[nodiscard]] Addr tag(Addr a) const noexcept { return line_addr(a); }

 private:
  std::uint64_t size_ = 0;
  std::uint32_t line_ = 0;
  std::uint32_t ways_ = 0;
  unsigned line_shift_ = 0;
  std::uint64_t sets_ = 0;
  std::uint64_t set_mask_ = 0;
};

}  // namespace cdsim::cache
