#pragma once
// Per-cache access statistics shared by L1 and L2 controllers.

#include <cstdint>

#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::cache {

/// Hit/miss bookkeeping plus the latency histogram behind AMAT.
struct CacheStats {
  Counter read_hits;
  Counter read_misses;
  Counter write_hits;
  Counter write_misses;
  Counter evictions;          ///< Replacement-driven invalidations.
  Counter writebacks;         ///< Dirty data pushed below this level.
  Counter coherence_invals;   ///< Lines invalidated by remote activity.
  Counter backinvals;         ///< Inclusion-driven invalidations from below.
  Counter decay_turnoffs;     ///< Lines switched off by a decay engine.
  Counter decay_induced_misses;  ///< Misses to lines a decay engine killed.
  /// MOESI only: M->O downgrades (dirty owner answered a remote BusRd and
  /// kept ownership). Always 0 under MESI — tests use this to prove a run
  /// actually exercised the Owned state.
  Counter owned_downgrades;
  /// Decay-induced misses split by address-space region (bits 40+ of the
  /// line address; see workload synthetic address map). Diagnostic only.
  Counter decay_induced_by_region[8];

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return read_hits.value() + read_misses.value() + write_hits.value() +
           write_misses.value();
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return read_misses.value() + write_misses.value();
  }
  [[nodiscard]] double miss_rate() const noexcept {
    return safe_div(static_cast<double>(misses()),
                    static_cast<double>(accesses()));
  }
};

}  // namespace cdsim::cache
