#pragma once
// Periodic decay sweep scheduling and the expiry wheel behind it.
//
// Hardware cache decay uses a cascaded (hierarchical) counter: one global
// counter ticks every decay_time/N cycles and advances saturating 2-bit
// per-line counters; a line whose counter saturates is switched off. The
// observable quantization is therefore: a line dies at the first global
// tick at least decay_time after its last touch.
//
// The original model reproduced this by walking the *entire* tag array
// every tick and testing each line — O(capacity) per tick, the dominant
// simulation cost for large L2s. The ExpiryWheel produces the exact same
// turn-off schedule in O(lines actually due): every armed line registers
// the tick DecayConfig::first_expiry_tick() predicts, and the sweep visits
// only that tick's bucket. Touches do not move registrations (that would
// put a wheel update on the hit path); instead a visited entry whose line
// was touched since registration is lazily re-registered at its new expiry
// tick. Entries are matched to lines by ticket (LineDecayState::
// wheel_ticket), so entries orphaned by eviction or reuse of the slot are
// discarded on visit. Buckets are sorted by line index before processing,
// which reproduces the array-order visitation of the full sweep — the
// turn-off choreography (and therefore every metric) is bit-identical.

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/decay/technique.hpp"

namespace cdsim::decay {

/// Timer wheel over sweep ticks: each bucket holds the lines predicted to
/// reach their decay deadline at that tick. Ring size covers one full decay
/// interval of ticks (plus slack for the ceiling and the next-tick retry of
/// gated lines), so a registration can never collide with an unvisited
/// earlier bucket.
class ExpiryWheel {
 public:
  struct Entry {
    std::uint32_t line_index = 0;
    std::uint64_t ticket = 0;
  };

  ExpiryWheel() = default;

  /// Sizes the ring for `cfg`. No-op (wheel stays disabled) for techniques
  /// without decay.
  void configure(const DecayConfig& cfg) {
    if (!uses_decay(cfg.technique)) return;
    tick_period_ = cfg.tick_period();
    CDSIM_ASSERT(tick_period_ > 0);
    const Cycle ticks_per_interval =
        (cfg.decay_time + tick_period_ - 1) / tick_period_;
    buckets_.assign(static_cast<std::size_t>(ticks_per_interval) + 2, {});
    next_tick_ = tick_period_;
  }

  [[nodiscard]] bool enabled() const noexcept { return !buckets_.empty(); }

  /// Registers `line_index` for the bucket of absolute cycle `expiry_tick`
  /// (a multiple of the tick period, strictly in the future and within one
  /// ring revolution). Returns the nonzero ticket identifying this
  /// registration.
  std::uint64_t add(std::size_t line_index, Cycle expiry_tick) {
    CDSIM_ASSERT(enabled());
    CDSIM_ASSERT_MSG(expiry_tick % tick_period_ == 0 &&
                         expiry_tick >= next_tick_ &&
                         (expiry_tick - next_tick_) / tick_period_ + 1 <
                             buckets_.size(),
                     "expiry tick outside the wheel's horizon");
    const std::uint64_t ticket = next_ticket_++;
    buckets_[static_cast<std::size_t>((expiry_tick / tick_period_) %
                                      buckets_.size())]
        .push_back(Entry{static_cast<std::uint32_t>(line_index), ticket});
    return ticket;
  }

  /// Empties the bucket due at tick `now` into `out`, sorted by line index
  /// (the order a full array sweep would visit them). Must be called once
  /// per tick, in tick order.
  void collect_due(Cycle now, std::vector<Entry>& out) {
    CDSIM_ASSERT(enabled());
    CDSIM_ASSERT_MSG(now == next_tick_, "sweep ticks must not be skipped");
    next_tick_ += tick_period_;
    std::vector<Entry>& bucket =
        buckets_[static_cast<std::size_t>((now / tick_period_) %
                                          buckets_.size())];
    out.clear();
    out.swap(bucket);
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.line_index != b.line_index) return a.line_index < b.line_index;
      return a.ticket < b.ticket;
    });
  }

  /// Live + stale entries currently in the ring (test/diagnostic hook).
  [[nodiscard]] std::size_t entries() const noexcept {
    std::size_t n = 0;
    for (const auto& b : buckets_) n += b.size();
    return n;
  }

 private:
  std::vector<std::vector<Entry>> buckets_;
  Cycle tick_period_ = 0;
  Cycle next_tick_ = 0;
  std::uint64_t next_ticket_ = 1;
};

/// Schedules the periodic sweep callbacks for one L2 cache.
class DecaySweeper {
 public:
  /// `sweep_fn(now)` must examine the cache and turn off expired lines.
  DecaySweeper(EventQueue& eq, const DecayConfig& cfg,
               std::function<void(Cycle)> sweep_fn)
      : eq_(eq), cfg_(cfg), sweep_fn_(std::move(sweep_fn)) {}

  /// Arms the periodic sweep (no-op for techniques without decay). The
  /// sweeper reschedules itself for the lifetime of the event queue; the
  /// `stop()` latch ends it (used at simulation teardown).
  void start() {
    if (!uses_decay(cfg_.technique)) return;
    CDSIM_ASSERT(cfg_.tick_period() > 0);
    arm();
  }

  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t sweeps_run() const noexcept { return sweeps_; }

 private:
  void arm() {
    eq_.schedule_in(cfg_.tick_period(), [this] {
      if (stopped_) return;
      ++sweeps_;
      sweep_fn_(eq_.now());
      arm();
    });
  }

  EventQueue& eq_;
  DecayConfig cfg_;
  std::function<void(Cycle)> sweep_fn_;
  bool stopped_ = false;
  std::uint64_t sweeps_ = 0;
};

}  // namespace cdsim::decay
