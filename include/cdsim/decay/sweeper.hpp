#pragma once
// Periodic decay sweep scheduling.
//
// Hardware cache decay uses a cascaded (hierarchical) counter: one global
// counter ticks every decay_time/N cycles and advances saturating 2-bit
// per-line counters; a line whose counter saturates is switched off. We
// model this exactly by sweeping the tag array every tick period and
// switching off lines idle for >= decay_time — the same quantization the
// cascaded counters produce, at a fraction of the simulation cost.

#include <functional>
#include <utility>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/decay/technique.hpp"

namespace cdsim::decay {

/// Schedules the periodic sweep callbacks for one L2 cache.
class DecaySweeper {
 public:
  /// `sweep_fn(now)` must examine the cache and turn off expired lines.
  DecaySweeper(EventQueue& eq, const DecayConfig& cfg,
               std::function<void(Cycle)> sweep_fn)
      : eq_(eq), cfg_(cfg), sweep_fn_(std::move(sweep_fn)) {}

  /// Arms the periodic sweep (no-op for techniques without decay). The
  /// sweeper reschedules itself for the lifetime of the event queue; the
  /// `stop()` latch ends it (used at simulation teardown).
  void start() {
    if (!uses_decay(cfg_.technique)) return;
    CDSIM_ASSERT(cfg_.tick_period() > 0);
    arm();
  }

  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t sweeps_run() const noexcept { return sweeps_; }

 private:
  void arm() {
    eq_.schedule_in(cfg_.tick_period(), [this] {
      if (stopped_) return;
      ++sweeps_;
      sweep_fn_(eq_.now());
      arm();
    });
  }

  EventQueue& eq_;
  DecayConfig cfg_;
  std::function<void(Cycle)> sweep_fn_;
  bool stopped_ = false;
  std::uint64_t sweeps_ = 0;
};

}  // namespace cdsim::decay
