#pragma once
// The leakage-saving techniques evaluated by the paper (§IV), plus the
// always-on baseline they are normalized against.

#include <cstdint>
#include <string>
#include <string_view>

#include "cdsim/coherence/mesi.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::decay {

enum class Technique : std::uint8_t {
  /// No optimization: every line powered at all times (occupation == 100%).
  kBaseline,
  /// "Turn off on Protocol Invalidation": the valid bit gates Vdd, so a
  /// line is off exactly when it is invalid (cold or protocol-invalidated).
  /// Timing is identical to baseline — no extra misses, ever.
  kProtocol,
  /// Fixed-interval cache decay (Kaxiras et al.) on top of the coherence-
  /// safe turn-off primitive: every valid line decays after `decay_time`
  /// idle cycles, including Modified lines (which must back-invalidate the
  /// L1 and write back through the TD transient state).
  kDecay,
  /// Selective Decay: decay is armed only on transitions *into* Shared or
  /// Exclusive; lines entering Modified are disarmed, avoiding the costly
  /// dirty turn-offs (paper §IV).
  kSelectiveDecay,
};

constexpr std::string_view to_string(Technique t) noexcept {
  switch (t) {
    case Technique::kBaseline: return "baseline";
    case Technique::kProtocol: return "protocol";
    case Technique::kDecay: return "decay";
    case Technique::kSelectiveDecay: return "sel_decay";
  }
  return "?";
}

/// True when the technique power-gates invalid lines (everything except the
/// ungated baseline).
constexpr bool gates_invalid_lines(Technique t) noexcept {
  return t != Technique::kBaseline;
}

/// True when the technique generates decay turn-off signals.
constexpr bool uses_decay(Technique t) noexcept {
  return t == Technique::kDecay || t == Technique::kSelectiveDecay;
}

/// Whether a line becomes armed for decay when it enters `to`.
/// - kDecay arms on every valid state (all lines decay);
/// - kSelectiveDecay arms only on transitions into S or E and *disarms*
///   on transitions into M.
constexpr bool arms_on_entry(Technique t, coherence::MesiState to) noexcept {
  using coherence::MesiState;
  if (t == Technique::kDecay) return coherence::holds_data(to);
  if (t == Technique::kSelectiveDecay) {
    return to == MesiState::kShared || to == MesiState::kExclusive;
  }
  return false;
}

/// Per-line decay bookkeeping embedded in the L2 line payload.
struct LineDecayState {
  Cycle last_touch = 0;  ///< Cycle of the most recent access / fill.
  /// Expiry-wheel registration ticket (0 = not registered). Matches the
  /// entry the wheel holds for this slot; a stale wheel entry (slot reused
  /// or re-registered since) carries a different ticket and is discarded
  /// when its bucket is visited.
  std::uint64_t wheel_ticket = 0;
  bool armed = false;    ///< Decay countdown active for this line.
};

/// Decay configuration for one experiment.
struct DecayConfig {
  Technique technique = Technique::kBaseline;
  /// Idle interval after which an armed line is switched off, in cycles.
  /// The paper sweeps 512K / 128K / 64K.
  Cycle decay_time = 512 * 1024;
  /// Hierarchical counter resolution: the global tick advances per-line
  /// 2-bit counters `hierarchical_ticks` times per decay interval, so a
  /// line actually dies between decay_time and decay_time + tick period
  /// after its last touch (Kaxiras et al. §3).
  std::uint32_t hierarchical_ticks = 4;

  [[nodiscard]] constexpr Cycle tick_period() const noexcept {
    return decay_time / hierarchical_ticks;
  }

  /// Decayed test as the hierarchical counters would observe it: evaluated
  /// only at sweep boundaries.
  [[nodiscard]] constexpr bool expired(const LineDecayState& s,
                                       Cycle now) const {
    return s.armed && now >= s.last_touch && now - s.last_touch >= decay_time;
  }

  /// First sweep tick (absolute cycle, a multiple of tick_period()) at
  /// which a line last touched at `last_touch` satisfies expired():
  /// the smallest k*tick_period >= last_touch + decay_time. This is the
  /// bucket an expiry wheel registers the line under — by construction the
  /// wheel and a full per-tick sweep switch every line off at the exact
  /// same tick.
  [[nodiscard]] constexpr Cycle first_expiry_tick(
      Cycle last_touch) const noexcept {
    const Cycle t = tick_period();
    const Cycle deadline = last_touch + decay_time;
    return ((deadline + t - 1) / t) * t;
  }

  /// Label used in figure legends, e.g. "decay512K" / "sel_decay64K".
  [[nodiscard]] std::string label() const {
    std::string base{to_string(technique)};
    if (!uses_decay(technique)) return base;
    return base + std::to_string(decay_time / 1024) + "K";
  }
};

}  // namespace cdsim::decay
