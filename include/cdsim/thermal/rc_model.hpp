#pragma once
// Lumped-RC chip thermal model (HotSpot-style, block granularity).
//
// Each floorplan block is one thermal node with a resistance to ambient and
// a heat capacity; optional lateral resistances couple adjacent blocks
// (each core to its private L2 slice). The simulator samples per-block
// power every `sample_period` cycles — the same 10K-cycle granularity the
// paper's HotSpot traces use — and advances the network one explicit Euler
// step per sample.
//
// Note on time constants: the paper simulates whole benchmarks (seconds of
// real time), so silicon-realistic RC constants reach steady state. Our
// synthetic runs cover a few milliseconds, so the default heat capacities
// are scaled down to keep the thermal feedback loop observable within a
// run; the steady-state temperatures (set by R and power alone) are
// unaffected by this scaling.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::thermal {

struct BlockParams {
  std::string name;
  double r_to_ambient = 0.0;  ///< K/W vertical resistance (spreader+sink).
  double heat_capacity = 0.0; ///< J/K lumped capacitance.
};

struct ThermalConfig {
  double ambient_kelvin = 318.0;  ///< 45 °C case-inside ambient.
  /// Converts the simulator's energy unit per cycle into watts.
  double watts_per_eu_cycle = 9.0;
  /// Core clock, for cycles -> seconds.
  double clock_hz = 3.0e9;
  /// Power sampling period in cycles (paper: every 10000 cycles).
  Cycle sample_period = 10000;
  /// Lateral resistance between coupled blocks, K/W.
  double lateral_r = 4.0;
};

/// Block-level RC thermal network.
class RcThermalModel {
 public:
  /// @param couplings pairs of block indices joined by a lateral resistance
  RcThermalModel(const ThermalConfig& cfg, std::vector<BlockParams> blocks,
                 std::vector<std::pair<std::size_t, std::size_t>> couplings)
      : cfg_(cfg),
        blocks_(std::move(blocks)),
        couplings_(std::move(couplings)),
        temp_(blocks_.size(), cfg.ambient_kelvin) {
    for (const auto& b : blocks_) {
      CDSIM_ASSERT(b.r_to_ambient > 0.0 && b.heat_capacity > 0.0);
    }
    for (const auto& [a, b] : couplings_) {
      CDSIM_ASSERT(a < blocks_.size() && b < blocks_.size() && a != b);
    }
  }

  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] const std::string& block_name(std::size_t i) const {
    return blocks_.at(i).name;
  }
  [[nodiscard]] double temperature(std::size_t i) const {
    return temp_.at(i);
  }

  /// Sets block `i` to its steady-state temperature under power `watts`
  /// (ignoring lateral flow). Used to start runs near thermal equilibrium.
  void warm_start(std::size_t i, double watts) {
    temp_.at(i) = cfg_.ambient_kelvin + watts * blocks_.at(i).r_to_ambient;
  }

  /// Advances the network by `dt_sec` with per-block dissipation `watts`
  /// (size must equal num_blocks). Explicit Euler; caller keeps dt well
  /// under min(RC) — the default sample period does.
  void step(double dt_sec, const std::vector<double>& watts) {
    CDSIM_ASSERT(watts.size() == blocks_.size());
    std::vector<double> heat(blocks_.size());
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      heat[i] = watts[i] - (temp_[i] - cfg_.ambient_kelvin) /
                               blocks_[i].r_to_ambient;
    }
    for (const auto& [a, b] : couplings_) {
      const double flow = (temp_[a] - temp_[b]) / cfg_.lateral_r;
      heat[a] -= flow;
      heat[b] += flow;
    }
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      temp_[i] += dt_sec * heat[i] / blocks_[i].heat_capacity;
      // Physical floor: a passive block cannot cool below ambient.
      if (temp_[i] < cfg_.ambient_kelvin) temp_[i] = cfg_.ambient_kelvin;
    }
  }

  /// Seconds per sample period, for callers converting cycles to time.
  [[nodiscard]] double sample_dt_sec() const noexcept {
    return static_cast<double>(cfg_.sample_period) / cfg_.clock_hz;
  }

  [[nodiscard]] const ThermalConfig& config() const noexcept { return cfg_; }

 private:
  ThermalConfig cfg_;
  std::vector<BlockParams> blocks_;
  std::vector<std::pair<std::size_t, std::size_t>> couplings_;
  std::vector<double> temp_;
};

/// Builds the paper's floorplan: N cores, N private L2 slices, one bus
/// block; each core laterally coupled to its L2 slice.
struct Floorplan {
  RcThermalModel model;
  std::size_t core_block(CoreId c) const { return c; }
  std::size_t l2_block(CoreId c) const { return num_cores + c; }
  std::size_t bus_block() const { return 2 * num_cores; }
  std::size_t num_cores = 0;
};

Floorplan make_cmp_floorplan(const ThermalConfig& cfg, std::size_t num_cores,
                             double l2_slice_mb);

}  // namespace cdsim::thermal
