#pragma once
// The six-benchmark suite of the paper (§V), as synthetic models.
//
// Splash-2 WATER-NS / FMM / VOLREND and ALPbench mpeg2enc / mpeg2dec /
// facerec are modeled by SyntheticConfig parameter sets chosen to land each
// program in the qualitative regime the paper reports for it (working-set
// size vs. L2 capacity, sharing intensity, store fraction, streaming-ness,
// and reuse-interval placement relative to the 64K-512K decay window).
// DESIGN.md §6 documents the intent of each preset.

#include <string_view>
#include <vector>

#include "cdsim/workload/synthetic.hpp"

namespace cdsim::workload {

/// One benchmark of the suite.
struct Benchmark {
  SyntheticConfig config;
  /// Scientific (Splash-2) vs. multimedia (ALPbench); the paper splits its
  /// conclusions along this axis.
  bool scientific = false;
};

/// The paper's six benchmarks, in the order of Figure 6.
const std::vector<Benchmark>& benchmark_suite();

/// Lookup by name ("WATER-NS", "FMM", "VOLREND", "mpeg2enc", "mpeg2dec",
/// "facerec"). Asserts on unknown names.
const Benchmark& benchmark_by_name(std::string_view name);

/// Creates the per-core stream for a benchmark.
StreamPtr make_stream(const Benchmark& b, CoreId core, std::uint64_t seed);

}  // namespace cdsim::workload
