#pragma once
// Adversarial workload generator for differential verification.
//
// The six benchmark presets are calibrated to be *representative*; the
// fuzzer is calibrated to be *hostile*. Each draw continues one of five
// seeded attack patterns chosen to hit the coherence/turn-off machinery
// where wrong-data bugs would hide:
//
//  * false sharing    — all cores hammer byte offsets of the same small
//                       line pool with mixed loads/stores, so ownership
//                       ping-pongs through BusRdX/BusUpgr invalidations;
//  * ping-pong        — store/load alternation on a tiny shared pool:
//                       S->M upgrades racing remote invalidations, and
//                       (under MOESI) M->O downgrades with O-supplied
//                       fills;
//  * decay straddle   — touch a shared line (often dirtying it), sleep
//                       just under / just past the decay window via one
//                       large-gap filler op, then re-access: reuse lands
//                       exactly on the turn-off edge, covering loads that
//                       hit lines that were switched off and refetched;
//  * dependent chains — pointer-chase bursts over per-core pools
//                       (dependent=true) so load completion order feeds
//                       back into issue order;
//  * private churn    — sequential per-core sweep with occasional stores
//                       and ifetches: eviction pressure, clean decays, and
//                       trace-format coverage of every AccessType;
//  * hot home node    — (directory topologies) every core hammers a pool
//                       of lines that all interleave to ONE home tile:
//                       maximal directory-bank serialization plus
//                       all-to-all false sharing through a single mesh
//                       hotspot. Off by default (w_hot_home = 0), so
//                       snoop-bus streams are unchanged.
//
// A FuzzerWorkload is a pure function of (config, core, seed); the `now`
// argument is deliberately ignored so a captured fuzz trace replays the
// identical op sequence regardless of timing.

#include <cstdint>
#include <deque>
#include <string>

#include "cdsim/common/rng.hpp"
#include "cdsim/workload/stream.hpp"

namespace cdsim::workload {

/// Knobs of the adversarial generator. Defaults are tuned for small L2
/// slices (32-64 KiB) and decay windows of 1K-4K cycles.
struct FuzzerConfig {
  std::string name = "fuzzer";
  std::uint32_t line_bytes = 64;
  std::uint32_t num_cores = 4;  ///< Shapes false-sharing offsets.

  // Pool sizes (lines).
  std::uint64_t false_share_lines = 16;
  std::uint64_t pingpong_lines = 8;
  std::uint64_t straddle_lines = 32;
  std::uint64_t chain_lines = 64;    ///< Per-core pointer-chase pool.
  std::uint64_t churn_lines = 192;   ///< Per-core eviction-pressure pool.
  std::uint64_t hot_home_lines = 12; ///< Hot-home contention pool.

  /// Decay window the straddle sleeps target (cycles). Straddle fillers
  /// sleep between 0.5x and 1.3x this window so reuse lands on both sides
  /// of the turn-off edge.
  Cycle decay_window = 2048;
  /// Non-memory instructions the core retires per cycle; converts the
  /// straddle window from cycles into a gap instruction count.
  std::uint32_t issue_width = 4;
  /// Lines parked per straddle episode (amortizes one sleep over several
  /// decay-edge reuses).
  std::uint32_t straddle_park = 3;

  double store_fraction = 0.5;   ///< Stores among contended accesses.
  double ifetch_fraction = 0.05; ///< IFetches among churn accesses.
  std::uint32_t max_gap = 3;     ///< Ordinary inter-op gap (0..max_gap).

  // Cumulative mode weights; remainder goes to private churn. The straddle
  // weight is low because each episode burns a decay window's worth of the
  // instruction budget in one sleep gap; idle-past-the-window coverage
  // also arises naturally from every other pool going cold.
  double w_false_share = 0.26;
  double w_pingpong = 0.26;
  double w_straddle = 0.10;
  double w_chain = 0.16;
  /// Hot-home weight; 0 (the default) disables the pattern and leaves
  /// every legacy stream bit-identical. Enable together with home_tiles.
  double w_hot_home = 0.0;
  /// Home-interleave modulus of the system under test (the mesh tile
  /// count): hot-home lines are spaced home_tiles lines apart so they all
  /// map to one directory bank. Required (nonzero) when w_hot_home > 0.
  std::uint32_t home_tiles = 0;
};

/// Deterministic hostile stream for one core.
class FuzzerWorkload final : public WorkloadStream {
 public:
  FuzzerWorkload(const FuzzerConfig& cfg, CoreId core, std::uint64_t seed);

  MemOp next(Cycle now) override;
  [[nodiscard]] std::string_view name() const override { return cfg_.name; }

 private:
  void refill();
  void push(AccessType type, Addr addr, std::uint32_t gap, bool dependent,
            std::uint8_t chain);
  [[nodiscard]] std::uint32_t small_gap();

  void burst_false_share();
  void burst_pingpong();
  void burst_straddle();
  void burst_chain();
  void burst_churn();
  void burst_hot_home();

  FuzzerConfig cfg_;
  CoreId core_ = 0;
  Xoshiro256 rng_;
  std::deque<MemOp> queue_;
  std::uint64_t pingpong_step_ = 0;
  std::uint64_t churn_pos_ = 0;
  std::uint8_t next_chain_ = 0;
};

}  // namespace cdsim::workload
