#pragma once
// Scripted (trace) workload: replays a fixed operation sequence.
//
// Used by unit/integration tests to drive the hierarchy with directed
// access patterns, and by users who want to replay captured traces through
// the leakage techniques.

#include <utility>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/workload/stream.hpp"

namespace cdsim::workload {

/// Replays `ops` in order; when the script ends it either loops or repeats
/// the final op forever (so the simulator's instruction budget, not the
/// script length, ends the run).
///
/// kRepeatLast tail semantics: the final op is returned verbatim exactly
/// once (it is part of the script); every repeat after that is re-stamped
/// with `dependent = false` while addr/type/gap/chain are preserved. A
/// repeated *dependent* load would chain on its own previous issue through
/// the core's per-chain tracker, serializing the filler tail on the memory
/// latency — the tail's timing would then depend on how often the op
/// happens to repeat instead of on the script, which breaks the
/// determinism contract trace replay relies on (a captured run replayed
/// with a larger budget must degrade into uniform, independent filler).
class ScriptedWorkload final : public WorkloadStream {
 public:
  enum class AtEnd { kLoop, kRepeatLast };

  ScriptedWorkload(std::vector<MemOp> ops, AtEnd at_end = AtEnd::kLoop,
                   std::string name = "scripted")
      : ops_(std::move(ops)), at_end_(at_end), name_(std::move(name)) {
    CDSIM_ASSERT(!ops_.empty());
  }

  MemOp next(Cycle /*now*/) override {
    MemOp op = ops_[pos_];
    if (pos_ + 1 < ops_.size()) {
      ++pos_;
    } else if (at_end_ == AtEnd::kLoop) {
      pos_ = 0;
    } else if (tail_repeat_) {
      op.dependent = false;  // see class comment
    } else {
      tail_repeat_ = true;  // final op returned verbatim this once
    }
    return op;
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::vector<MemOp> ops_;
  std::size_t pos_ = 0;
  AtEnd at_end_;
  bool tail_repeat_ = false;
  std::string name_;
};

}  // namespace cdsim::workload
