#pragma once
// Scripted (trace) workload: replays a fixed operation sequence.
//
// Used by unit/integration tests to drive the hierarchy with directed
// access patterns, and by users who want to replay captured traces through
// the leakage techniques.

#include <utility>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/workload/stream.hpp"

namespace cdsim::workload {

/// Replays `ops` in order; when the script ends it either loops or repeats
/// the final op forever (so the simulator's instruction budget, not the
/// script length, ends the run).
class ScriptedWorkload final : public WorkloadStream {
 public:
  enum class AtEnd { kLoop, kRepeatLast };

  ScriptedWorkload(std::vector<MemOp> ops, AtEnd at_end = AtEnd::kLoop,
                   std::string name = "scripted")
      : ops_(std::move(ops)), at_end_(at_end), name_(std::move(name)) {
    CDSIM_ASSERT(!ops_.empty());
  }

  MemOp next(Cycle /*now*/) override {
    const MemOp op = ops_[pos_];
    if (pos_ + 1 < ops_.size()) {
      ++pos_;
    } else if (at_end_ == AtEnd::kLoop) {
      pos_ = 0;
    }
    return op;
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::vector<MemOp> ops_;
  std::size_t pos_ = 0;
  AtEnd at_end_;
  std::string name_;
};

}  // namespace cdsim::workload
