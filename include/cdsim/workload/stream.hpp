#pragma once
// Workload abstraction: a per-core stream of memory operations.
//
// A WorkloadStream is an infinite generator; the simulator draws operations
// until each core's instruction budget is spent. Streams are deterministic
// functions of (benchmark parameters, core id, seed), so every experiment
// is exactly reproducible.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "cdsim/common/types.hpp"

namespace cdsim::workload {

/// One memory operation plus its instruction-stream context.
struct MemOp {
  AccessType type = AccessType::kLoad;
  Addr addr = 0;
  /// Non-memory instructions the core executes before this operation.
  std::uint32_t gap = 0;
  /// For loads: the address depends on an in-flight earlier load (pointer
  /// chasing), so the core cannot issue it until that load completes.
  /// Dependent fraction is the knob that differentiates latency-tolerant
  /// multimedia streams from latency-bound scientific codes.
  bool dependent = false;
  /// Dependence chain id: a dependent load waits only for the previous
  /// load of the *same chain* (its own data structure). Chains map to the
  /// generator's address regions, so a pointer-chase stall never serializes
  /// against an unrelated streaming miss.
  std::uint8_t chain = 0;
};

/// Number of distinct dependence chains a stream may use.
inline constexpr std::uint8_t kMaxChains = 8;

/// Interface of every workload generator.
class WorkloadStream {
 public:
  virtual ~WorkloadStream() = default;

  /// Produces the next operation for this core. Never ends; the simulator
  /// enforces the instruction budget. `now` is the current cycle: streams
  /// with real-time pacing (video frame buffers) derive their sweep
  /// position from it, so buffer wrap periods are exact cycle counts
  /// independent of the core's achieved IPC.
  virtual MemOp next(Cycle now) = 0;

  /// Benchmark name (figure row labels).
  [[nodiscard]] virtual std::string_view name() const = 0;
};

using StreamPtr = std::unique_ptr<WorkloadStream>;

/// Builds the stream for one core. Harnesses that drive the simulator with
/// non-benchmark workloads (fuzzing, trace replay, capture decorators) pass
/// one of these to CmpSystem instead of the benchmark's preset streams.
using StreamFactory = std::function<StreamPtr(CoreId core,
                                              std::uint64_t seed)>;

}  // namespace cdsim::workload
