#pragma once
// Streaming trace plumbing: the TraceSource/TraceSink abstraction every
// trace producer and consumer in the repo is built on.
//
// A TraceSink receives drawn operations one at a time, in global draw
// order (capture decorators write into one; an in-memory Trace and the
// chunked .cdt v2 writer both implement it). A TraceSource is a forward
// cursor over a stored trace — pull records one at a time, O(1) state —
// implemented by the in-memory v1 Trace bridge and the chunked v2 reader.
// Replay is built on sources, never on materialized per-core vectors, so
// a multi-gigabyte trace replays without ever living in memory:
//
//   * replay_factory(open): ONE shared cursor per system, demultiplexed
//     into per-core queues. Memory is bounded by the capture's
//     interleaving skew (simulator captures interleave fairly, so queues
//     stay shallow). Cheapest when the source is already in memory.
//   * streaming_replay_factory(open): every core opens its OWN cursor and
//     discards other cores' records. Strictly O(chunk) memory per core no
//     matter how skewed the trace is — the path the multi-gigabyte CI
//     smoke uses — at the price of N file cursors.
//
// Both factories reproduce ScriptedWorkload's kRepeatLast contract
// exactly (see scripted.hpp): the final recorded op is returned verbatim
// once, every repeat after that is re-stamped dependent=false, and a core
// the trace never scheduled replays a single idle filler op. That is what
// keeps the golden replay pins bit-identical across the in-memory and
// streaming paths.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/workload/stream.hpp"

namespace cdsim::workload {

/// One drawn operation: which core drew it plus the op itself.
struct TraceRecord {
  CoreId core = 0;
  MemOp op;
};

/// Receives records in global draw order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void append(const TraceRecord& rec) = 0;
};

/// Forward cursor over a stored trace.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Pulls the next record in global draw order. Returns false at the end
  /// of the trace (or, for disk-backed sources, on a read error — check
  /// the source's own error state when that matters).
  virtual bool next(TraceRecord& out) = 0;

  [[nodiscard]] virtual std::uint32_t num_cores() const = 0;

  /// Per-core instruction budgets that make a replayed core commit exactly
  /// its recorded ops: sum of (gap + 1) per core, with op-less cores
  /// bumped to 1 (they replay the idle filler). Available without scanning
  /// for footer-indexed formats; the in-memory bridge computes it.
  [[nodiscard]] virtual std::vector<std::uint64_t> per_core_instructions()
      const = 0;
};

using TraceSourcePtr = std::unique_ptr<TraceSource>;

/// Opens one fresh, independent cursor over a trace, positioned at the
/// start. Replay factories take openers rather than sources so a factory
/// can be reused across systems (each pass re-opens) and so rate-mode
/// co-scheduling can give every assigned core its own cursor.
using TraceOpener = std::function<TraceSourcePtr()>;

/// Reserved region for the idle filler op of cores a trace never
/// scheduled (region id 7 in the synthetic address map's bits 40+, far
/// from every generator).
inline constexpr Addr kReplayIdleRegion = 0x7ull << 40;

/// The single idle load an op-less core replays (budget 1 via
/// per_core_instructions()): a reserved, never-shared line.
[[nodiscard]] inline MemOp replay_idle_op(CoreId core) {
  return MemOp{AccessType::kLoad,
               kReplayIdleRegion | (static_cast<Addr>(core) << 32), 0, false,
               0};
}

/// Stream decorator that records every drawn op into `sink` before handing
/// it to the simulator. The event kernel is single-threaded, so appends
/// from all cores interleave in deterministic global draw order.
class CaptureStream final : public WorkloadStream {
 public:
  CaptureStream(StreamPtr inner, CoreId core, TraceSink* sink)
      : inner_(std::move(inner)), core_(core), sink_(sink) {}

  MemOp next(Cycle now) override {
    const MemOp op = inner_->next(now);
    sink_->append(TraceRecord{core_, op});
    return op;
  }

  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }

 private:
  StreamPtr inner_;
  CoreId core_ = 0;
  TraceSink* sink_ = nullptr;
};

/// Wraps `inner` so every produced stream records into `sink` (an
/// in-memory Trace, a ChunkedTraceWriter, ...). The caller keeps the sink
/// alive for the run and finalizes it afterwards if the sink needs it.
StreamFactory capture_factory(StreamFactory inner, TraceSink* sink);

/// Shared-cursor demultiplexer: one forward pass over a TraceSource
/// feeding per-core FIFO queues. pop(core) advances the source (queueing
/// other cores' ops) until an op for `core` appears or the source ends.
class ReplayDemux {
 public:
  explicit ReplayDemux(TraceSourcePtr source)
      : source_(std::move(source)), queues_(source_->num_cores()) {
    CDSIM_ASSERT(source_ != nullptr);
  }

  /// False once the source is exhausted and `core`'s queue is empty.
  bool pop(CoreId core, MemOp& out);

  [[nodiscard]] std::uint32_t num_cores() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

 private:
  TraceSourcePtr source_;
  std::vector<std::deque<MemOp>> queues_;
  bool exhausted_ = false;
};

/// Per-core replay over a shared demux, with ScriptedWorkload's
/// kRepeatLast tail semantics (final op verbatim once, then re-stamped
/// dependent=false; idle filler for op-less cores).
class DemuxReplayStream final : public WorkloadStream {
 public:
  DemuxReplayStream(std::shared_ptr<ReplayDemux> demux, CoreId core,
                    std::string name = "replay")
      : demux_(std::move(demux)), core_(core), name_(std::move(name)) {}

  MemOp next(Cycle now) override;

  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::shared_ptr<ReplayDemux> demux_;
  CoreId core_ = 0;
  std::string name_;
  MemOp last_;
  bool have_last_ = false;
  bool tail_ = false;
};

/// Per-core replay over a PRIVATE cursor: skips records of other cores as
/// it streams, so memory stays O(1) in trace length regardless of how the
/// capture interleaved. Same tail semantics as DemuxReplayStream.
class FilteredReplayStream final : public WorkloadStream {
 public:
  /// `target` is the trace-core whose ops this stream replays (rate-mode
  /// co-scheduling maps machine cores onto trace cores explicitly).
  FilteredReplayStream(TraceSourcePtr source, CoreId target,
                       std::string name = "replay")
      : source_(std::move(source)), target_(target), name_(std::move(name)) {
    CDSIM_ASSERT(source_ != nullptr);
  }

  MemOp next(Cycle now) override;

  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  TraceSourcePtr source_;
  CoreId target_ = 0;
  std::string name_;
  MemOp last_;
  bool have_last_ = false;
  bool tail_ = false;
  bool exhausted_ = false;
};

/// Replay on a single shared cursor (one forward pass, per-core queues).
/// The opener runs once per system: CmpSystem requests streams in core
/// order, and a request for a core at or below the previous one starts a
/// fresh pass, so the factory is safely reusable across runs.
StreamFactory replay_factory(TraceOpener open);

/// Replay with strictly O(chunk) memory: every core opens its own cursor
/// via `open` and filters to its own records.
StreamFactory streaming_replay_factory(TraceOpener open);

}  // namespace cdsim::workload
