#pragma once
// Parameterized synthetic workload generator.
//
// Substitutes for the paper's Splash-2 / ALPbench binaries (see DESIGN.md
// §2). The generator composes four address regions whose statistics are the
// first-order drivers of the paper's results:
//
//  * private/generational — per-core data with a hot/cold split inside the
//    current "generation"; after a fixed number of accesses the generation
//    migrates, leaving the old lines dead in the L2 (the residency decay
//    exploits). Reuse intervals of the cold subset are what decay-induced
//    misses feed on.
//  * shared read-write — one region all cores touch with reads and writes
//    in migratory chunks; writes invalidate remote copies, feeding the
//    Protocol technique.
//  * shared read-only — replicated S lines (volume data, image galleries).
//  * streaming — sequential sweep over a buffer far larger than the cache;
//    lines are touched a couple of times and never again.

#include <cstdint>
#include <string>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/rng.hpp"
#include "cdsim/workload/stream.hpp"

namespace cdsim::workload {

/// All knobs of the synthetic generator. Defaults give a generic
/// scientific-ish workload; the benchmark presets override them.
struct SyntheticConfig {
  std::string name = "synthetic";
  std::uint32_t line_bytes = 64;

  // --- instruction mix ----------------------------------------------------
  /// Memory operations per instruction (rest are the `gap`).
  double mem_fraction = 0.33;
  /// Stores as a fraction of memory operations (hot-data store rate; cold
  /// private data uses cold_write_fraction).
  double store_fraction = 0.30;
  /// Loads whose address depends on an outstanding load (pointer chasing).
  /// Applies to the private and shared regions; streaming accesses are
  /// address-predictable and use stream_dependent_fraction.
  double dependent_fraction = 0.30;
  /// Dependence among streaming loads (nearly none: induction variables).
  double stream_dependent_fraction = 0.02;

  // --- line-burst model -----------------------------------------------------
  // Real programs touch a cache line several times (word-granular access);
  // each picked line receives a burst of consecutive operations. This is
  // what makes L2 traffic mostly *hitting writes* under a write-through L1
  // (paper §VI) instead of one-touch misses.
  std::uint32_t private_burst = 4;
  std::uint32_t shared_burst = 3;
  std::uint32_t stream_burst = 12;

  // --- region mix (fractions of *operations*; remainder to streaming) -----
  // These are op shares, not burst-pick probabilities: the generator
  // down-weights long-burst regions when picking the next burst so that the
  // long-run fraction of operations hitting each region matches these
  // numbers exactly.
  double p_private = 0.55;
  double p_shared_rw = 0.15;
  double p_shared_ro = 0.10;
  // p_stream = 1 - p_private - p_shared_rw - p_shared_ro

  // --- private generational region ----------------------------------------
  /// Lines in one generation (per core).
  std::uint64_t gen_lines = 4096;
  /// Accesses to the private region before the generation migrates.
  std::uint64_t gen_accesses = 150000;
  /// Distinct generations before the footprint wraps.
  std::uint64_t num_generations = 24;
  /// Fraction of the generation that is "hot" (gets most accesses).
  double hot_fraction = 0.10;
  /// Probability an access goes to the hot subset.
  double hot_probability = 0.85;
  /// Store probability on *cold* private lines. Kept low so cold lines die
  /// clean (E) — the population Selective Decay can harvest.
  double cold_write_fraction = 0.05;

  // --- shared read-write region --------------------------------------------
  std::uint64_t shared_rw_lines = 4096;
  /// Chunk size a core works on before rotating (migratory sharing).
  std::uint64_t shared_chunk_lines = 64;
  /// Accesses before this core rotates to the next chunk.
  std::uint64_t shared_run = 256;
  /// Stores as a fraction of shared-RW accesses (RMW-ness).
  double shared_write_fraction = 0.45;

  // --- shared read-only region ----------------------------------------------
  std::uint64_t shared_ro_lines = 8192;
  /// Hot front of the read-only region (uniformly re-read lookup data).
  std::uint64_t shared_ro_hot_lines = 512;
  /// Probability a read-only burst advances the per-core gallery sweep
  /// (one-pass coverage) instead of re-reading the hot front. Sweeping
  /// populates dead residency without the random-revisit cost a flat
  /// distribution would incur under decay.
  double shared_ro_sweep_fraction = 0.30;

  // --- streaming regions ------------------------------------------------------
  // Per-core streaming buffers (frame buffers, row pools) paced in *real
  // time*: the sweep position is derived from the cycle count, so each
  // buffer's wrap period — its reuse interval — is an exact cycle constant
  // regardless of achieved IPC. This pins every buffer decisively inside or
  // outside each decay window (64K/128K/512K), the way a fixed-fps video
  // pipeline pins frame-buffer reuse. Two buffers give two reuse tiers.
  std::uint64_t stream_lines = 256;
  /// Cycles for one full sweep of the buffer (the reuse interval).
  Cycle stream_wrap_cycles = 96 * 1024;
  /// Stores as a fraction of streaming burst operations (both buffers).
  double stream_write_fraction = 0.30;
  /// Second streaming buffer; 0 op share disables it.
  double p_stream2 = 0.0;
  std::uint64_t stream2_lines = 64;
  Cycle stream2_wrap_cycles = 192 * 1024;
  std::uint32_t stream2_burst = 10;

  [[nodiscard]] double p_stream() const noexcept {
    return 1.0 - p_private - p_shared_rw - p_shared_ro - p_stream2;
  }

  /// Total distinct bytes this core will touch (footprint), for sizing
  /// experiments against cache capacity.
  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept {
    const std::uint64_t lines = gen_lines * num_generations +
                                shared_rw_lines + shared_ro_lines +
                                stream_lines + stream2_lines;
    return lines * line_bytes;
  }
};

/// Deterministic synthetic stream for one core.
class SyntheticWorkload final : public WorkloadStream {
 public:
  SyntheticWorkload(const SyntheticConfig& cfg, CoreId core,
                    std::uint64_t seed);

  MemOp next(Cycle now) override;
  [[nodiscard]] std::string_view name() const override { return cfg_.name; }

  [[nodiscard]] const SyntheticConfig& config() const noexcept { return cfg_; }

  // Region base addresses (public so tests can classify generated
  // addresses). Region id bits live at bit 40+; per-core partitions at 32+.
  [[nodiscard]] Addr private_base() const noexcept;
  [[nodiscard]] Addr shared_rw_base() const noexcept;
  [[nodiscard]] Addr shared_ro_base() const noexcept;
  [[nodiscard]] Addr stream_base() const noexcept;

 private:
  /// Picks a new line and burst parameters when the current burst ends.
  void start_new_burst(Cycle now);
  void start_private_burst();
  void start_shared_rw_burst();
  void start_shared_ro_burst();
  void start_stream_burst(Cycle now);
  void start_stream2_burst(Cycle now);

  SyntheticConfig cfg_;
  CoreId core_ = 0;
  Xoshiro256 rng_;

  // Current burst: consecutive ops to one line.
  Addr burst_addr_ = 0;
  std::uint32_t burst_remaining_ = 0;
  double burst_store_p_ = 0.0;
  double burst_dep_p_ = 0.0;
  std::uint8_t burst_chain_ = 0;

  // Burst-pick thresholds derived from the op shares (cumulative).
  double pick_private_ = 0.0;
  double pick_shared_rw_ = 0.0;
  double pick_shared_ro_ = 0.0;
  double pick_stream2_ = 0.0;

  // Private-region state.
  std::uint64_t gen_index_ = 0;
  std::uint64_t gen_access_count_ = 0;
  std::uint64_t cold_ptr_ = 0;  ///< Sequential cold coverage within the gen.

  // Shared-RW rotation state.
  std::uint64_t shared_counter_ = 0;

  // Shared-RO sweep state.
  std::uint64_t ro_sweep_pos_ = 0;


  // Gap accumulator keeps the long-run mem_fraction exact even though
  // individual gaps are integers.
  double gap_debt_ = 0.0;
};

}  // namespace cdsim::workload
