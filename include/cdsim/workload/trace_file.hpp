#pragma once
// Portable .cdt v1 trace format: capture, storage, and replay of per-core
// memory-operation streams.
//
// A Trace is the exact sequence of MemOps the simulator drew from each
// core's workload stream, in global draw order. Because every workload
// stream is a deterministic function of its inputs and the event kernel is
// deterministic, replaying a captured trace (with per-core budgets of
// exactly sum(gap+1)) reproduces the original run bit-identically — which
// is what makes traces usable as divergence repros, as shrinker input, and
// as a scenario class of their own (real program traces driven through the
// leakage techniques).
//
// On-disk layout (.cdt, all integers little-endian, version 1):
//
//   offset  size  field
//   0       4     magic "CDTF"
//   4       4     u32 format version (1)
//   8       4     u32 num_cores
//   12      8     u64 record count N
//   20      16*N  records: u64 addr | u32 gap | u8 core | u8 type
//                          | u8 flags (bit0 = dependent) | u8 chain
//   20+16N  8     u64 FNV-1a checksum over the N*16 record bytes
//
// The reader rejects wrong magic, unsupported versions, truncated or
// oversized files, checksum mismatches, and out-of-range fields — a
// corrupt trace fails loudly instead of replaying garbage.
//
// v1 is the uncompressed, load-it-whole format kept for shrinker repros
// and hand-built tests; the chunked, compressed, O(1)-memory successor is
// .cdt v2 (trace_v2.hpp). open_trace_source() in trace_v2.hpp streams
// either version through the TraceSource interface.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cdsim/workload/trace_source.hpp"

namespace cdsim::workload {

/// A captured (or hand-built) in-memory trace plus its .cdt v1
/// (de)serialization. Implements TraceSink, so capture decorators write
/// into it directly.
struct Trace : TraceSink {
  static constexpr std::uint32_t kFormatVersion = 1;

  std::uint32_t num_cores = 0;
  std::vector<TraceRecord> records;  ///< Global draw order.

  void append(const TraceRecord& rec) override { records.push_back(rec); }

  /// Writes the trace to `path`. Returns false (and sets *error) on I/O
  /// failure or unserializable content.
  bool save(const std::string& path, std::string* error = nullptr) const;

  /// Reads a .cdt v1 file. Returns nullopt (and sets *error) for
  /// unreadable, corrupt, truncated, or version-mismatched files.
  static std::optional<Trace> load(const std::string& path,
                                   std::string* error = nullptr);

  /// Per-core op sequences, in draw order (size = num_cores).
  [[nodiscard]] std::vector<std::vector<MemOp>> ops_by_core() const;

  /// Instruction budget that makes a replayed core commit exactly its
  /// recorded ops: sum of (gap + 1) per core. Cores with no records get 1
  /// (they replay a single idle filler op — see replay_factory).
  [[nodiscard]] std::vector<std::uint64_t> per_core_instructions() const;
};

/// TraceSource cursor over an in-memory Trace (shared, never copied).
/// Bridges v1 traces — and any hand-built Trace — into the streaming
/// replay machinery.
class InMemoryTraceSource final : public TraceSource {
 public:
  explicit InMemoryTraceSource(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)) {
    CDSIM_ASSERT(trace_ != nullptr);
  }

  bool next(TraceRecord& out) override {
    if (pos_ >= trace_->records.size()) return false;
    out = trace_->records[pos_++];
    return true;
  }

  [[nodiscard]] std::uint32_t num_cores() const override {
    return trace_->num_cores;
  }

  [[nodiscard]] std::vector<std::uint64_t> per_core_instructions()
      const override {
    return trace_->per_core_instructions();
  }

 private:
  std::shared_ptr<const Trace> trace_;
  std::size_t pos_ = 0;
};

/// Replays a shared in-memory trace without duplicating its records: each
/// pass opens an InMemoryTraceSource cursor over `trace` and demultiplexes
/// it per core (see trace_source.hpp for the tail/idle-core contract).
StreamFactory replay_factory(std::shared_ptr<const Trace> trace);

/// Convenience overload for temporaries: copies `trace` once into shared
/// ownership so the factory outlives it. Callers holding a stable Trace
/// should prefer the shared_ptr overload (no copy).
StreamFactory replay_factory(const Trace& trace);

}  // namespace cdsim::workload
