#pragma once
// Portable .cdt trace format: capture, storage, and replay of per-core
// memory-operation streams.
//
// A Trace is the exact sequence of MemOps the simulator drew from each
// core's workload stream, in global draw order. Because every workload
// stream is a deterministic function of its inputs and the event kernel is
// deterministic, replaying a captured trace through ScriptedWorkload (with
// per-core budgets of exactly sum(gap+1)) reproduces the original run
// bit-identically — which is what makes traces usable as divergence
// repros, as shrinker input, and as a scenario class of their own (real
// program traces driven through the leakage techniques).
//
// On-disk layout (.cdt, all integers little-endian, version 1):
//
//   offset  size  field
//   0       4     magic "CDTF"
//   4       4     u32 format version (1)
//   8       4     u32 num_cores
//   12      8     u64 record count N
//   20      16*N  records: u64 addr | u32 gap | u8 core | u8 type
//                          | u8 flags (bit0 = dependent) | u8 chain
//   20+16N  8     u64 FNV-1a checksum over the N*16 record bytes
//
// The reader rejects wrong magic, unsupported versions, truncated or
// oversized files, checksum mismatches, and out-of-range fields — a
// corrupt trace fails loudly instead of replaying garbage.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdsim/workload/scripted.hpp"
#include "cdsim/workload/stream.hpp"

namespace cdsim::workload {

/// One drawn operation: which core drew it plus the op itself.
struct TraceRecord {
  CoreId core = 0;
  MemOp op;
};

/// A captured (or hand-built) trace plus its .cdt (de)serialization.
struct Trace {
  static constexpr std::uint32_t kFormatVersion = 1;

  std::uint32_t num_cores = 0;
  std::vector<TraceRecord> records;  ///< Global draw order.

  /// Writes the trace to `path`. Returns false (and sets *error) on I/O
  /// failure or unserializable content.
  bool save(const std::string& path, std::string* error = nullptr) const;

  /// Reads a .cdt file. Returns nullopt (and sets *error) for unreadable,
  /// corrupt, truncated, or version-mismatched files.
  static std::optional<Trace> load(const std::string& path,
                                   std::string* error = nullptr);

  /// Per-core op sequences, in draw order (size = num_cores).
  [[nodiscard]] std::vector<std::vector<MemOp>> ops_by_core() const;

  /// Instruction budget that makes a replayed core commit exactly its
  /// recorded ops: sum of (gap + 1) per core. Cores with no records get 1
  /// (they replay a single idle filler op — see replay_factory).
  [[nodiscard]] std::vector<std::uint64_t> per_core_instructions() const;
};

/// Stream decorator that records every drawn op into `sink` before handing
/// it to the simulator. The event kernel is single-threaded, so appends
/// from all cores interleave in deterministic global draw order.
class CaptureStream final : public WorkloadStream {
 public:
  CaptureStream(StreamPtr inner, CoreId core, Trace* sink)
      : inner_(std::move(inner)), core_(core), sink_(sink) {}

  MemOp next(Cycle now) override {
    const MemOp op = inner_->next(now);
    sink_->records.push_back(TraceRecord{core_, op});
    return op;
  }

  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }

 private:
  StreamPtr inner_;
  CoreId core_ = 0;
  Trace* sink_ = nullptr;
};

/// Wraps `inner` so every produced stream records into `sink`. The caller
/// must size sink->num_cores and keep it alive for the run.
StreamFactory capture_factory(StreamFactory inner, Trace* sink);

/// Replays a trace: each core gets a ScriptedWorkload over its recorded
/// ops (AtEnd::kRepeatLast). Cores without records replay a single idle
/// load to a reserved line so the core model stays constructible; pair
/// with Trace::per_core_instructions() so such cores commit exactly one
/// instruction. The trace is copied into shared state — the factory
/// outlives the Trace it was built from.
StreamFactory replay_factory(const Trace& trace);

}  // namespace cdsim::workload
