#pragma once
// Chunked, compressed .cdt v2: the streaming trace format. Multi-gigabyte
// traces replay with O(chunk) memory; capture streams straight to disk.
//
// On-disk layout (all integers little-endian):
//
//   header (20 bytes)
//     0   4   magic "CDT2"
//     4   4   u32 format version (2)
//     8   4   u32 num_cores (1..255)
//     12  4   u32 chunk_records (records per full chunk)
//     16  4   u32 reserved (0)
//
//   chunks (repeated; every chunk self-contained and checksummed)
//     0   4   u32 payload_bytes
//     4   4   u32 record_count (1..chunk_records; only the final chunk
//              may be short)
//     8   8   u64 FNV-1a checksum of the payload bytes
//     16  *   compressed payload (see below)
//
//   footer body
//     u32 chunk_count
//     chunk_count x { u64 file_offset, u32 record_count, u32 payload_bytes }
//     u32 num_cores (must match the header)
//     num_cores x { u64 ops, u64 instr_sum }   // instr_sum = sum(gap + 1)
//     u64 total_records
//
//   trailer (20 bytes, parsed from the end of the file)
//     u64 FNV-1a checksum of the footer body
//     u64 footer body length in bytes
//     4   magic "2TDC"
//
// Payload compression is per-core delta + zigzag varint: each record is
//   u8 core | u8 meta (type in bits 0-1, dependent in bit 2) | u8 chain |
//   varint gap | varint zigzag(addr - prev_addr[core])
// with prev_addr reset to 0 at every chunk boundary, so any chunk decodes
// without its predecessors — that is what makes the footer index a real
// seek table (seek/resume lands on a chunk and decodes forward). Typical
// captures compress ~3-4x against v1's fixed 16-byte records.
//
// The reader validates the header, the trailer magic, the footer checksum
// and every cross-reference (chunk offsets contiguous from the header to
// the footer, record counts consistent, per-core sums matching the total)
// at open(); each chunk's checksum and field ranges are checked when the
// chunk is first decoded. Corruption anywhere fails loudly — never
// crashes, never replays garbage.

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cdsim/workload/trace_file.hpp"
#include "cdsim/workload/trace_source.hpp"

namespace cdsim::workload {

/// Parsed header + footer summary of a v2 file (cheap: no chunk reads).
struct TraceV2Info {
  std::uint32_t num_cores = 0;
  std::uint32_t chunk_records = 0;
  std::uint32_t chunk_count = 0;
  std::uint64_t total_records = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_bytes = 0;  ///< Compressed payload across chunks.
  std::vector<std::uint64_t> per_core_ops;
  /// Raw per-core sum(gap + 1); 0 for cores the trace never scheduled
  /// (per_core_instructions() applies the idle-filler minimum of 1).
  std::vector<std::uint64_t> per_core_instr;
};

/// Streaming .cdt v2 writer: O(chunk) memory, append one record at a
/// time, finish() (or destruction) seals the footer. All I/O errors latch
/// into ok()/error() — appends after a failure are ignored.
class ChunkedTraceWriter final : public TraceSink {
 public:
  static constexpr std::uint32_t kDefaultChunkRecords = 1u << 16;

  ChunkedTraceWriter(const std::string& path, std::uint32_t num_cores,
                     std::uint32_t chunk_records = kDefaultChunkRecords);
  ~ChunkedTraceWriter() override;

  ChunkedTraceWriter(const ChunkedTraceWriter&) = delete;
  ChunkedTraceWriter& operator=(const ChunkedTraceWriter&) = delete;

  void append(const TraceRecord& rec) override;

  /// Flushes the partial chunk and writes the footer. Idempotent. Returns
  /// ok(): false if any write failed or a record was invalid.
  bool finish();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t records_written() const { return total_; }

 private:
  void fail(const std::string& msg);
  void flush_chunk();

  struct ChunkEntry {
    std::uint64_t offset = 0;
    std::uint32_t records = 0;
    std::uint32_t payload_bytes = 0;
  };

  std::ofstream out_;
  std::string path_;
  std::uint32_t num_cores_ = 0;
  std::uint32_t chunk_records_ = 0;
  std::string buf_;                  ///< Encoded payload of the open chunk.
  std::uint32_t buf_records_ = 0;
  std::vector<Addr> prev_addr_;      ///< Per-core delta state (chunk-local).
  std::vector<ChunkEntry> index_;
  std::vector<std::uint64_t> core_ops_;
  std::vector<std::uint64_t> core_instr_;
  std::uint64_t total_ = 0;
  std::uint64_t offset_ = 0;         ///< Current file write offset.
  bool finished_ = false;
  std::string error_;
};

/// Streaming .cdt v2 reader: validates header/footer at open(), then
/// decodes one chunk at a time. next() returns false at end-of-trace OR
/// on corruption — failed()/error() distinguish the two.
class ChunkedTraceReader final : public TraceSource {
 public:
  /// Returns nullptr (and sets *error) on any validation failure.
  static std::unique_ptr<ChunkedTraceReader> open(
      const std::string& path, std::string* error = nullptr);

  bool next(TraceRecord& out) override;

  [[nodiscard]] std::uint32_t num_cores() const override {
    return info_.num_cores;
  }

  [[nodiscard]] std::vector<std::uint64_t> per_core_instructions()
      const override;

  /// Repositions the cursor to global record index `rec` (0-based; `rec`
  /// == total_records parks at end). Lands on the containing chunk via
  /// the footer index and decodes forward. Returns false (failed() set)
  /// on corruption, or cleanly if rec is out of range.
  bool seek(std::uint64_t rec);

  /// Global index of the record next() will return.
  [[nodiscard]] std::uint64_t position() const { return pos_; }

  [[nodiscard]] const TraceV2Info& info() const { return info_; }
  [[nodiscard]] bool failed() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  ChunkedTraceReader() = default;

  bool fail(const std::string& msg);
  bool load_chunk(std::uint32_t idx);

  struct ChunkEntry {
    std::uint64_t offset = 0;
    std::uint64_t first_record = 0;  ///< Global index of its first record.
    std::uint32_t records = 0;
    std::uint32_t payload_bytes = 0;
  };

  std::ifstream in_;
  std::string path_;
  TraceV2Info info_;
  std::vector<ChunkEntry> index_;
  std::vector<TraceRecord> chunk_;   ///< Decoded records of cur_chunk_.
  std::uint32_t cur_chunk_ = 0;      ///< Index of the chunk in chunk_.
  bool chunk_loaded_ = false;
  std::size_t chunk_pos_ = 0;        ///< Next record within chunk_.
  std::uint64_t pos_ = 0;            ///< Global record index of next().
  std::string error_;
};

/// Writes an in-memory trace as .cdt v2.
bool save_v2(const Trace& trace, const std::string& path,
             std::string* error = nullptr,
             std::uint32_t chunk_records =
                 ChunkedTraceWriter::kDefaultChunkRecords);

/// Copies a source to a .cdt v2 file (streaming, O(chunk) memory).
bool write_v2_from_source(TraceSource& src, const std::string& path,
                          std::string* error = nullptr,
                          std::uint32_t chunk_records =
                              ChunkedTraceWriter::kDefaultChunkRecords);

/// Sniffs the magic and opens a streaming cursor over either format: v2
/// files stream chunk-by-chunk; v1 files load whole (they are small —
/// shrinker repros and goldens) behind an InMemoryTraceSource shim.
/// Returns nullptr and sets *error on failure.
std::unique_ptr<TraceSource> open_trace_source(const std::string& path,
                                               std::string* error = nullptr);

}  // namespace cdsim::workload
