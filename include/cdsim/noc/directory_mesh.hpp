#pragma once
// Directory coherence over a 2D-mesh NoC: the scale-out Interconnect.
//
// Cores/L2 slices sit one per mesh tile; every line address is interleaved
// to a *home tile* whose directory bank serializes all transactions for
// that line. A transaction's life is:
//
//   request packet (requester -> home, XY mesh route)
//     -> [home bank latency + occupancy]  -> GRANT at the home:
//          validator check, directed snoops to exactly the tracked
//          holders (atomic-at-grant, like the bus's address phase),
//          directory bitmap refresh by probing the involved caches
//     -> data legs over the mesh:
//          fill from owner:   home -> owner (fwd) -> requester (data)
//          fill from memory:  home -> memory tile -> memory read
//                             -> requester (data)
//          upgrade:           home -> sharers (inval) -> acks -> home
//                             -> requester (ack)
//          write-back:        data travelled with the request; home ->
//                             memory tile (data), posted write
//
// Functional equivalence with the snoopy bus: coherence side effects apply
// atomically at the grant, exactly as the bus applies them at its grant —
// so the L2 controller and the differential oracle see the same contract,
// and every directory run is verifiable against the flat last-writer
// reference model. The directory merely *narrows* the snoop set (a snoop
// at a non-holder is a no-op on the bus too) and re-times the data.
//
// One behavior is deliberately stronger than the bus: a read that reaches
// the home while the owner's write-back is still in flight (the copy died
// at eviction; memory is stale until the write-back lands) is *deferred*
// behind that write-back instead of reading stale memory. The per-core
// FIFO queues of the bus make that window unreachable there; the mesh's
// many paths would expose it, so the home closes it — the standard
// late-write-back handling of directory protocols.

#include <concepts>
#include <cstdint>
#include <deque>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "cdsim/coherence/directory.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/noc/interconnect.hpp"
#include "cdsim/noc/mesh.hpp"
#include "cdsim/obs/trace_recorder.hpp"

namespace cdsim::noc {

struct DirectoryMeshConfig {
  NocConfig noc;
  /// Cycles from request arrival at the home tile to its earliest grant
  /// (directory bank lookup).
  Cycle directory_latency = 3;
  /// Cycles one grant occupies its home bank (serialization under hot-home
  /// contention).
  Cycle bank_occupancy = 1;
  /// Payload bytes of a control message (request, forward, inval, ack).
  std::uint32_t ctrl_bytes = 8;
  /// Tile adjacent to the memory controller (edge of the mesh).
  std::uint32_t mem_tile = 0;
  /// Home-interleave granularity; CmpSystem sets it to the L2 line size so
  /// consecutive lines map to consecutive home tiles.
  std::uint32_t home_interleave_bytes = 64;
};

/// Memory-side cache colocated with the directory home banks — the shared
/// L3 of the three-level hierarchy. One bank per mesh tile; the home bank
/// that serializes a line's coherence transactions also caches it, so
/// every call below happens under the home's serialization and needs no
/// transient states of its own. The fabric consults it on the memory legs:
/// fills that miss every upper cache look the bank up before going
/// off-chip, accepted write-backs are absorbed by the bank instead of
/// crossing the channel, and a memory-updating owner flush invalidates the
/// bank's (now stale) copy. Dirty bank lines reach memory through the
/// MemWritePort the fabric wires at attach time.
class MemorySideCache {
 public:
  /// (bank/tile, line, payload bytes) -> posted memory write over the NoC.
  using MemWritePort =
      std::function<void(std::uint32_t bank, Addr line, std::uint32_t bytes)>;

  virtual ~MemorySideCache() = default;
  virtual void connect_memory_port(MemWritePort port) = 0;
  /// Bank hit latency (fill-serve path).
  [[nodiscard]] virtual Cycle access_latency() const = 0;
  /// Fill lookup at the home: true = hit (the bank serves the line).
  virtual bool lookup_for_fill(std::uint32_t bank, Addr line) = 0;
  /// The channel delivered `line` for a fill that missed this bank:
  /// install a clean copy (possibly evicting).
  virtual void install_from_memory(std::uint32_t bank, Addr line) = 0;
  /// An accepted write-back's data is captured by the bank (dirty).
  virtual void absorb_writeback(std::uint32_t bank, Addr line) = 0;
  /// Drop the bank's copy (memory-updating flush made it stale).
  virtual void invalidate(std::uint32_t bank, Addr line) = 0;
};

/// Compile-time shape check for MemorySideCache implementations. Derivation
/// alone is not enough: adding a pure virtual to the interface would leave
/// a bank abstract, and the error would only surface at the distant
/// make_unique call in cmp_system. A `static_assert(MemorySideCacheImpl<
/// MyBank>)` next to the implementation turns that into a one-line error at
/// the class itself (sim/l3_cache.hpp does exactly this).
template <typename T>
concept MemorySideCacheImpl =
    std::derived_from<T, MemorySideCache> && !std::is_abstract_v<T> &&
    std::destructible<T>;

/// The directory-mesh fabric. CoreId c lives on tile c.
class DirectoryMesh final : public Interconnect {
 public:
  using Interconnect::request;  // the Completion convenience overload

  DirectoryMesh(EventQueue& eq, const DirectoryMeshConfig& cfg,
                mem::MemoryController& mem, std::uint32_t num_cores);

  DirectoryMesh(const DirectoryMesh&) = delete;
  DirectoryMesh& operator=(const DirectoryMesh&) = delete;

  // --- Interconnect -------------------------------------------------------
  void attach(Snooper* s) override;
  [[nodiscard]] std::size_t num_agents() const noexcept override {
    return snoopers_.size();
  }
  void set_observer(verify::AccessObserver* obs) noexcept override {
    obs_ = obs;
  }
  void request(coherence::BusTxKind kind, Addr line_addr, CoreId requester,
               std::uint32_t bytes, RequestHooks hooks) override;
  void note_clean_drop(CoreId core, Addr line_addr) override;

  /// Attaches the timeline recorder (observer-only; nullptr detaches):
  /// one span per home-bank grant, named by the transaction kind.
  void set_trace(obs::TraceRecorder* rec, obs::TrackId track) noexcept {
    trace_ = rec;
    trace_track_ = track;
  }

  /// Wires the shared L3 home banks into the memory legs (three-level
  /// hierarchy). Must be called before any request; also hands the cache
  /// its memory write port (bank -> memory tile over the NoC). nullptr
  /// detaches (two-level behavior, bit-identical to pre-L3 builds).
  void attach_l3(MemorySideCache* l3);

  [[nodiscard]] std::uint64_t transactions(
      coherence::BusTxKind k) const override {
    return tx_count_[static_cast<std::size_t>(k)].value();
  }
  [[nodiscard]] std::uint64_t total_transactions() const override {
    std::uint64_t n = 0;
    for (const auto& c : tx_count_) n += c.value();
    return n;
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept override {
    return noc_.bytes_injected();
  }
  /// Bottleneck (busiest-link) occupancy — the mesh's analogue of bus
  /// utilization.
  [[nodiscard]] double utilization(Cycle now) const override {
    return noc_.max_link_utilization(now);
  }
  [[nodiscard]] std::uint64_t cancelled_transactions() const noexcept override {
    return cancelled_.value();
  }

  // --- introspection ------------------------------------------------------
  [[nodiscard]] const coherence::Directory& directory() const noexcept {
    return dir_;
  }
  [[nodiscard]] const MeshNoc& noc() const noexcept { return noc_; }
  [[nodiscard]] std::uint32_t home_tile(Addr line_addr) const noexcept {
    // Line-interleaved homes: consecutive lines map to consecutive tiles,
    // spreading an arbitrary stream across every bank.
    return static_cast<std::uint32_t>(
        (line_addr / cfg_.home_interleave_bytes) % noc_.num_tiles());
  }
  /// Requests parked behind an in-flight write-back (see file comment).
  [[nodiscard]] std::uint64_t deferrals() const noexcept {
    return dir_.stats().deferrals.value();
  }
  /// BusUpgr grants whose requester held the line in TD — the §III Owned
  /// turn-off's invalidation round, served as a directed recall.
  [[nodiscard]] std::uint64_t recalls() const noexcept {
    return dir_.stats().recalls.value();
  }

 private:
  /// Handle into the transaction-record pool below. Handles (not pointers)
  /// cross the mesh inside packet captures: a 4-byte id keeps every fabric
  /// lambda inside its SmallFn inline buffer, and the pool slot is recycled
  /// the moment the transaction retires.
  using TxId = std::uint32_t;
  static constexpr TxId kNoTx = 0xffffffffu;

  struct Tx {
    coherence::BusTxKind kind;
    Addr line = 0;
    CoreId requester = 0;
    std::uint32_t bytes = 0;
    RequestHooks hooks;
    /// Outstanding inval/ack round trips of a BusUpgr (fan-in counter).
    std::uint32_t remaining = 0;
    /// Intrusive link: next transaction in the same per-line deferred FIFO.
    TxId next = kNoTx;
  };

  /// Intrusive FIFO of transactions parked behind an in-flight write-back
  /// (chained through Tx::next — no per-deferral container allocation).
  struct DefList {
    TxId head = kNoTx;
    TxId tail = kNoTx;
  };

  TxId alloc_tx(Tx&& tx);
  void free_tx(TxId id);
  void defer_append(DefList& q, TxId id);
  /// Request packet arrived at the home: schedule its bank grant.
  void home_arrive(TxId id);
  /// The grant: validator, directed snoops, directory refresh, data legs.
  void process(TxId id);
  void data_legs(TxId id, BusResult res, std::uint64_t targets,
                 bool flush_writes_memory, CoreId supplier);
  /// Terminal delivery: moves on_done out of the record, releases the pool
  /// slot, then fires the hook with `done_at = at`. Every data leg that
  /// delivers at a packet arrival funnels through here, so each record is
  /// freed exactly once and is already reusable when the hook reenters.
  void finish_tx(TxId id, BusResult res, Cycle at);
  /// Write-back completion: schedules finish_tx at `at` — but only when an
  /// on_done hook exists (event counts are pinned metrics; a hook-less
  /// write-back must not add a scheduled event).
  void wb_finish(TxId id, BusResult res, Cycle at);
  /// Re-dispatches transactions deferred on `line` (newest write-back for
  /// it just resolved).
  void wake_deferred(Addr line);
  /// Posted memory write at the channel (model-dispatched): flat
  /// post_write or a fire-and-forget DRAM enqueue.
  void mem_write(Cycle at, std::uint32_t bytes, Addr line);

  EventQueue& eq_;
  DirectoryMeshConfig cfg_;
  mem::MemoryController& mem_;
  MeshNoc noc_;
  coherence::Directory dir_;
  verify::AccessObserver* obs_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId trace_track_ = 0;
  MemorySideCache* l3_ = nullptr;  ///< Shared L3 banks (three-level only).
  std::vector<Snooper*> snoopers_;

  /// Earliest next grant per home bank.
  std::vector<Cycle> bank_free_;
  /// Transaction-record pool + LIFO free list. A deque (not a vector) so
  /// Tx& references stay valid across pool growth: process() holds a
  /// reference while snoops and grant hooks may reenter request() and
  /// allocate. The deque's chunk allocations stop at the high-water mark of
  /// concurrently-live transactions; steady state recycles slots through
  /// tx_free_ and never touches the heap (same policy as the EventQueue
  /// slot pool).
  std::deque<Tx> tx_pool_;
  std::vector<TxId> tx_free_;
  /// Per-line FIFO of transactions waiting for an in-flight write-back
  /// (intrusive chains through Tx::next; an entry exists iff nonempty).
  std::unordered_map<Addr, DefList> deferred_;

  Counter tx_count_[4];
  Counter cancelled_;
};

}  // namespace cdsim::noc
