#pragma once
// 2D-mesh network-on-chip with XY deterministic routing and credit-based
// flow control.
//
// Model: one router per tile, connected to its N/S/E/W neighbours by
// unidirectional links. A packet of `flits` flits traverses hop by hop:
//
//   * routing is dimension-ordered (X first, then Y) — the channel
//     dependency graph is acyclic, so with sinking destinations the mesh is
//     deadlock-free for any traffic pattern and any (nonzero) buffer depth;
//   * each link serializes one flit per cycle (`free_at` tracks the tail)
//     and is backed by `link_credits` packet buffers at the receiving
//     router. A packet may only start a hop when a credit is available;
//     otherwise it waits FIFO in the link's queue, holding its current
//     buffer — that is the backpressure that makes hot-home contention
//     visible end to end;
//   * a credit returns when the packet leaves the downstream buffer (it is
//     forwarded onward, or consumed at its destination).
//
// Everything runs on the shared EventQueue with FIFO wait queues, so a
// simulation using the mesh stays bit-exact reproducible. Per-link
// occupancy/packet/flit/stall statistics feed the scaling bench and the
// energy ledger (flit-hops x per-hop energy, see PowerConfig).

#include <cstdint>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/ring.hpp"
#include "cdsim/common/small_fn.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::noc {

struct NocConfig {
  /// Pipeline latency of one router traversal (route compute + switch).
  Cycle router_latency = 1;
  /// Wire latency of one link hop.
  Cycle link_latency = 1;
  /// Payload bytes per flit (link width).
  std::uint32_t flit_bytes = 16;
  /// Header/command overhead added to every packet, in bytes.
  std::uint32_t header_bytes = 8;
  /// Packet buffers per link at the receiving router (credits). Must be
  /// at least 1; small values surface backpressure sooner.
  std::uint32_t link_credits = 4;
};

/// Tile grid shape used for `n` tiles: the most square w x h factorization
/// with both sides powers of two (16 -> 4x4, 32 -> 8x4, 8 -> 4x2).
/// Precondition: is_pow2(n).
struct MeshDims {
  std::uint32_t width = 1;
  std::uint32_t height = 1;
};
[[nodiscard]] MeshDims mesh_dims(std::uint32_t tiles) noexcept;

/// The mesh fabric.
class MeshNoc {
 public:
  /// Delivery callback, fired when the packet's tail reaches (and is
  /// consumed by) the destination tile. The buffer is sized for the
  /// directory mesh's largest capture (a result + a completion hook);
  /// larger captures fall back to the heap transparently.
  using Delivery = SmallFn<void(Cycle), 64>;

  struct LinkStats {
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    Cycle busy_cycles = 0;    ///< Cycles the link serialized flits.
    std::uint64_t stalls = 0; ///< Packets that had to wait for a credit.
  };

  MeshNoc(EventQueue& eq, const NocConfig& cfg, std::uint32_t width,
          std::uint32_t height);

  MeshNoc(const MeshNoc&) = delete;
  MeshNoc& operator=(const MeshNoc&) = delete;

  /// Injects a packet of `payload_bytes` (+ header) from tile `src` to
  /// tile `dst`. `on_delivered` fires at the consumption cycle.
  void send(std::uint32_t src, std::uint32_t dst, std::uint32_t payload_bytes,
            Delivery on_delivered);

  // --- geometry -----------------------------------------------------------
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] std::uint32_t num_tiles() const noexcept {
    return width_ * height_;
  }
  /// Manhattan hop count of the XY route.
  [[nodiscard]] std::uint32_t hops(std::uint32_t src,
                                   std::uint32_t dst) const noexcept;

  // --- statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return packets_sent_;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const noexcept {
    return packets_delivered_;
  }
  /// Packets injected but not yet consumed (0 after a drained run).
  [[nodiscard]] std::uint64_t packets_in_flight() const noexcept {
    return packets_sent_ - packets_delivered_;
  }
  /// Sum over hops of the flits that crossed each link — the dynamic-energy
  /// driver (energy = flit_hops x PowerConfig::noc_dyn_per_flit_hop).
  [[nodiscard]] std::uint64_t flit_hops() const noexcept { return flit_hops_; }
  [[nodiscard]] std::uint64_t bytes_injected() const noexcept {
    return bytes_injected_;
  }
  /// Mean injection-to-consumption latency of delivered packets, cycles.
  [[nodiscard]] double avg_packet_latency() const noexcept {
    return safe_div(static_cast<double>(latency_sum_),
                    static_cast<double>(packets_delivered_));
  }
  /// Busy fraction of the most-occupied link over [0, now] (clamped to 1):
  /// the fabric's bottleneck, comparable to bus utilization.
  [[nodiscard]] double max_link_utilization(Cycle now) const noexcept;
  /// Total credit-stall events across all links.
  [[nodiscard]] std::uint64_t total_stalls() const noexcept;
  [[nodiscard]] const LinkStats& link_stats(std::uint32_t tile,
                                            std::uint32_t dir) const {
    return links_[tile * kDirs + dir].stats;
  }

  /// Flits for a payload of `bytes` (header included, at least one flit).
  [[nodiscard]] std::uint32_t flits_for(std::uint32_t bytes) const noexcept {
    const std::uint32_t total = bytes + cfg_.header_bytes;
    const std::uint32_t f = (total + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
    return f == 0 ? 1 : f;
  }

  static constexpr std::uint32_t kDirs = 4;  ///< E, W, N, S.

 private:
  static constexpr std::uint32_t kEast = 0, kWest = 1, kNorth = 2, kSouth = 3;
  static constexpr std::int32_t kNoLink = -1;

  struct Packet {
    std::uint32_t dst = 0;
    std::uint32_t flits = 0;
    Cycle injected = 0;
    std::int32_t in_link = kNoLink;  ///< Link whose buffer the packet holds.
    Delivery on_delivered;
  };

  struct Link {
    std::uint32_t to = 0;        ///< Receiving tile.
    std::uint32_t credits = 0;   ///< Free buffers at the receiving router.
    Cycle free_at = 0;           ///< Serialization tail on the wire.
    /// Packets (slots) awaiting a credit, FIFO. Ring capacity is fixed at
    /// construction from the credit budget (see the MeshNoc constructor's
    /// sizing proof); only injection bursts beyond every buffer in the
    /// mesh can ever grow it.
    FifoRing<std::uint32_t> waitq;
    LinkStats stats;
  };

  [[nodiscard]] std::uint32_t tile_x(std::uint32_t t) const noexcept {
    return t % width_;
  }
  [[nodiscard]] std::uint32_t tile_y(std::uint32_t t) const noexcept {
    return t / width_;
  }
  /// Output direction of the XY route from `at` toward `dst` (at != dst).
  [[nodiscard]] std::uint32_t xy_dir(std::uint32_t at,
                                     std::uint32_t dst) const noexcept;

  std::uint32_t acquire_slot(Packet&& p);
  void release_slot(std::uint32_t slot);
  /// Routes the packet one hop onward from `tile` (or consumes it there).
  void advance(std::uint32_t slot, std::uint32_t tile);
  /// Starts the hop across `link` (a credit is available).
  void traverse(std::uint32_t slot, std::uint32_t link);
  /// Returns one credit to `link` and unblocks its oldest waiter.
  void release_credit(std::uint32_t link);

  EventQueue& eq_;
  NocConfig cfg_;
  std::uint32_t width_ = 0, height_ = 0;
  std::vector<Link> links_;  ///< tile * kDirs + dir (unused edges inert).
  /// Packet slot pool + LIFO free list, pre-sized from the credit budget
  /// at construction so the steady-state fabric never touches the heap.
  /// Safe as a vector (growth moves elements): no Packet& is ever held
  /// across an acquire_slot(), and delivery callbacks run only after the
  /// packet's slot has been released.
  std::vector<Packet> slots_;
  std::vector<std::uint32_t> free_slots_;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t flit_hops_ = 0;
  std::uint64_t bytes_injected_ = 0;
  std::uint64_t latency_sum_ = 0;
};

}  // namespace cdsim::noc
