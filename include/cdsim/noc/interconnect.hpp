#pragma once
// Interconnect abstraction shared by the snoopy bus and the directory mesh.
//
// The L2 controllers speak one transaction vocabulary (BusRd / BusRdX /
// BusUpgr / WriteBack with atomic-at-grant semantics) regardless of what
// fabric carries it. This header defines that vocabulary — the snoop
// interface, the per-transaction result and hook set — plus the abstract
// Interconnect every fabric implements:
//
//   * bus::SnoopBus (bus/snoop_bus.hpp): the paper's 4-core shared snoopy
//     bus. Grants serialize on the single bus; the address phase snoops
//     every other agent.
//   * noc::DirectoryMesh (noc/directory_mesh.hpp): a sharer-bitmap
//     directory over a 2D-mesh NoC for 8-64 cores. Grants serialize at the
//     line's home tile; the directory snoops exactly the tracked holders.
//
// Both provide the same functional contract — coherence decisions are
// atomic at the grant, on_grant/on_done/validator/on_cancel fire with the
// same meaning — so the L2 controller, the decay techniques, and the
// differential-verification oracle are topology-agnostic. Only timing,
// traffic, and energy differ.

#include <cstdint>

#include "cdsim/coherence/mesi.hpp"
#include "cdsim/common/assert.hpp"
#include "cdsim/common/small_fn.hpp"
#include "cdsim/common/types.hpp"
#include "cdsim/verify/observer.hpp"

namespace cdsim::noc {

/// Which fabric a CmpSystem builds (sim::SystemConfig::topology).
enum class Topology : std::uint8_t {
  kSnoopBus,      ///< Shared snoopy bus (the paper's §V platform).
  kDirectoryMesh, ///< Sharer-bitmap directory over a 2D mesh (scale-out).
};

constexpr std::string_view to_string(Topology t) noexcept {
  return t == Topology::kSnoopBus ? "bus" : "dmesh";
}

/// What a snooping cache reports back during the address phase.
struct SnoopReply {
  bool had_line = false;      ///< Held valid data (drives S vs E fill).
  bool supplied_data = false; ///< Is the dirty owner and will flush.
  /// The flush also writes memory. Under MESI every flush does; under MOESI
  /// an Owned/Modified owner answering a BusRd keeps ownership and leaves
  /// memory stale — the fabric must then not generate memory write traffic.
  bool memory_update = false;
};

/// Interface implemented by every agent on the interconnect (the L2
/// controllers). `snoop` must apply the coherence side effects immediately
/// (atomic-at-grant semantics) and return what happened.
class Snooper {
 public:
  virtual ~Snooper() = default;
  virtual SnoopReply snoop(coherence::BusTxKind kind, Addr line_addr,
                           CoreId requester) = 0;
  /// Side-effect-free state probe. The directory uses it at each grant to
  /// keep its sharer bitmap exact (a snoopy bus never calls it).
  [[nodiscard]] virtual coherence::MesiState probe(Addr line_addr) const {
    (void)line_addr;
    return coherence::MesiState::kInvalid;
  }
};

/// Completion report for one interconnect transaction.
struct BusResult {
  Cycle granted_at = 0;
  /// Cycle the requested line is available at the requester (fills), or the
  /// transaction fully retired (upgrades / write-backs).
  Cycle done_at = 0;
  /// Another L2 held the line at snoop time (requester fills S, not E).
  bool shared = false;
  /// Data came from a dirty owner's flush rather than memory.
  bool supplied_by_cache = false;
};

/// Callbacks and guards attached to one transaction. All four are
/// move-only SmallFn with inline buffers sized for the L2 controller's
/// captures, so the hooks themselves never allocate. (On the snoopy bus
/// the whole request path is allocation-free; the directory mesh parks the
/// hooks in a pooled Tx record and passes a 4-byte handle across the NoC,
/// so its steady state is allocation-free too.)
struct RequestHooks {
  /// Fires at BusResult::done_at (data delivered / transaction retired).
  SmallFn<void(const BusResult&), 32> on_done;
  /// Fires at the grant cycle, after the snoop set resolved. L2
  /// controllers use this to install the line's tag+state atomically in
  /// grant order (data arrives later), which keeps coherence exact across
  /// overlapping split transactions.
  SmallFn<void(const BusResult&), 32> on_grant;
  /// Checked at the grant cycle before anything happens. Returning false
  /// drops the transaction (no snoop, no occupancy, no traffic) — used to
  /// cancel a TD turn-off write-back whose data already reached memory via
  /// a snoop flush (see coherence::SnoopOutcome::cancel_turnoff_wb), and to
  /// abandon a BusUpgr whose S line was invalidated while queued.
  SmallFn<bool(), 24> validator;
  /// Fires at the grant cycle when the validator dropped the transaction,
  /// so the requester can fall back (e.g. reissue an upgrade as BusRdX).
  SmallFn<void(), 40> on_cancel;
};

/// Abstract coherent interconnect: what the L2 slices are built against.
class Interconnect {
 public:
  using Completion = SmallFn<void(const BusResult&), 32>;

  virtual ~Interconnect() = default;

  /// Registers an agent; its position in attach order is its CoreId on the
  /// fabric. Must be called before any request.
  virtual void attach(Snooper* s) = 0;
  [[nodiscard]] virtual std::size_t num_agents() const noexcept = 0;

  /// Attaches a differential-verification observer (nullptr detaches). The
  /// fabric reports write-back resolutions — the single point that knows
  /// whether a queued write-back actually reached memory or was dropped by
  /// its cancellation validator.
  virtual void set_observer(verify::AccessObserver* obs) noexcept = 0;

  /// Full-control transaction issue with grant hook and cancellation
  /// validator. `bytes` is the payload size (a line for fills and
  /// write-backs, 0 for upgrades).
  virtual void request(coherence::BusTxKind kind, Addr line_addr,
                       CoreId requester, std::uint32_t bytes,
                       RequestHooks hooks) = 0;

  /// Convenience variant: completion callback only.
  void request(coherence::BusTxKind kind, Addr line_addr, CoreId requester,
               std::uint32_t bytes, Completion on_done) {
    RequestHooks hooks;
    hooks.on_done = std::move(on_done);
    request(kind, line_addr, requester, bytes, std::move(hooks));
  }

  /// A clean line at `core` stopped holding data without any data traffic
  /// (silent clean eviction or a decay turn-off of an S/E line). A snoopy
  /// bus ignores it — snooping needs no global bookkeeping — while the
  /// directory uses it to keep the sharer bitmap exact, which is what makes
  /// the paper's "a decayed line is droppable iff clean" rule checkable
  /// (see coherence/directory.hpp).
  virtual void note_clean_drop(CoreId core, Addr line_addr) {
    (void)core, (void)line_addr;
  }

  // --- statistics ---------------------------------------------------------
  [[nodiscard]] virtual std::uint64_t transactions(
      coherence::BusTxKind k) const = 0;
  [[nodiscard]] virtual std::uint64_t total_transactions() const = 0;
  /// Payload bytes accepted onto the fabric.
  [[nodiscard]] virtual std::uint64_t bytes_transferred() const noexcept = 0;
  /// Occupancy of the fabric's scarcest resource over [0, now], in [0, 1]:
  /// the single bus for kSnoopBus, the busiest mesh link for
  /// kDirectoryMesh.
  [[nodiscard]] virtual double utilization(Cycle now) const = 0;
  /// Transactions dropped by their validator (cancelled write-backs).
  [[nodiscard]] virtual std::uint64_t cancelled_transactions()
      const noexcept = 0;
};

}  // namespace cdsim::noc
