#pragma once
// Shared split-transaction snoopy bus connecting the private L2 caches.
//
// Model (matches the paper's §V platform): a pipelined shared bus clocked at
// half the core clock with high bandwidth; coherence acts directly among the
// L2 caches. A transaction's life is:
//
//   request -> [round-robin arbitration, bus busy wait] -> grant
//          -> address phase (bus occupied, snoop broadcast resolves
//             atomically at the grant cycle)
//          -> data source latency (dirty-owner flush or memory read)
//          -> data phase (bus occupied per line-transfer beats)
//          -> completion callback at the requester
//
// Snooping is atomic-at-grant: all other caches observe and apply the
// transaction at the grant cycle, which serializes coherence decisions in
// bus order — exactly the property a physical snoopy bus provides.

#include <cstdint>
#include <vector>

#include "cdsim/coherence/mesi.hpp"
#include "cdsim/common/assert.hpp"
#include "cdsim/common/ring.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/small_fn.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"
#include "cdsim/common/host_timer.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/noc/interconnect.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/verify/observer.hpp"

namespace cdsim::bus {

// The transaction vocabulary (snoop interface, result, hooks) is shared
// with the directory mesh and lives in noc/interconnect.hpp; these aliases
// keep the historical bus:: spellings working.
using noc::BusResult;
using noc::RequestHooks;
using noc::Snooper;
using noc::SnoopReply;

struct BusConfig {
  /// Cycles from request to earliest possible grant (arbiter latency).
  Cycle arbitration_latency = 2;
  /// Cycles the bus is held for the address/snoop phase of any transaction.
  Cycle address_phase = 2;
  /// Data beats: bytes moved per core cycle once a transfer starts. The
  /// paper's 57 GB/s at a ~3.5 GHz core is ~16 B/core-cycle.
  std::uint32_t bytes_per_cycle = 16;
  /// Latency for a dirty owner to start flushing after grant.
  Cycle cache_to_cache_latency = 10;
};

/// The shared snoopy bus.
class SnoopBus final : public noc::Interconnect {
 public:
  using noc::Interconnect::request;  // the Completion convenience overload

  SnoopBus(EventQueue& eq, const BusConfig& cfg, mem::MemoryController& mem)
      : eq_(eq), cfg_(cfg), mem_(mem) {}

  SnoopBus(const SnoopBus&) = delete;
  SnoopBus& operator=(const SnoopBus&) = delete;

  /// Registers a snooping agent. The agent's position in attach order is
  /// its round-robin arbitration slot. Must be called before any request.
  void attach(Snooper* s) override {
    CDSIM_ASSERT(s != nullptr);
    snoopers_.push_back(s);
    queues_.emplace_back(kQueueCapacity);
  }

  [[nodiscard]] std::size_t num_agents() const noexcept override {
    return snoopers_.size();
  }

  /// Attaches a differential-verification observer (nullptr detaches). The
  /// bus reports write-back resolutions — the single point that knows
  /// whether a queued write-back actually reached memory or was dropped by
  /// its cancellation validator.
  void set_observer(verify::AccessObserver* obs) noexcept override {
    obs_ = obs;
  }

  /// Attaches the timeline recorder (observer-only; nullptr detaches):
  /// one span per grant covering the bus-occupied window, named by the
  /// transaction kind.
  void set_trace(obs::TraceRecorder* rec, obs::TrackId track) noexcept {
    trace_ = rec;
    trace_track_ = track;
  }

  /// Full-control variant with grant hook and cancellation validator.
  void request(coherence::BusTxKind kind, Addr line_addr, CoreId requester,
               std::uint32_t bytes, RequestHooks hooks) override {
    CDSIM_ASSERT(requester < queues_.size());
    queues_[requester].push_back(
        Pending{kind, line_addr, requester, bytes, std::move(hooks)});
    ++queued_;
    schedule_arbitration();
  }

  // --- statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t transactions(
      coherence::BusTxKind k) const override {
    return tx_count_[static_cast<std::size_t>(k)].value();
  }
  [[nodiscard]] std::uint64_t total_transactions() const override {
    std::uint64_t n = 0;
    for (const auto& c : tx_count_) n += c.value();
    return n;
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept override {
    return bytes_.value();
  }
  /// Fraction of cycles the bus was occupied over [0, now]. The last
  /// transaction may extend past `now`; the ratio is clamped to 1.
  [[nodiscard]] double utilization(Cycle now) const override {
    const double u =
        safe_div(static_cast<double>(busy_cycles_), static_cast<double>(now));
    return u > 1.0 ? 1.0 : u;
  }

  /// Transactions dropped by their validator (cancelled write-backs).
  [[nodiscard]] std::uint64_t cancelled_transactions() const noexcept override {
    return cancelled_.value();
  }

 private:
  struct Pending {
    coherence::BusTxKind kind;
    Addr line_addr = 0;
    CoreId requester = 0;
    std::uint32_t bytes = 0;
    RequestHooks hooks;
  };

  [[nodiscard]] Cycle transfer_cycles(std::uint32_t bytes) const noexcept {
    return bytes == 0 ? 0
                      : (bytes + cfg_.bytes_per_cycle - 1) /
                            cfg_.bytes_per_cycle;
  }

  /// Arms an arbitration event if transactions are waiting and none armed.
  void schedule_arbitration() {
    if (arb_armed_ || queued_ == 0) return;
    arb_armed_ = true;
    const Cycle now = eq_.now();
    Cycle grant = now + cfg_.arbitration_latency;
    if (grant < free_at_) grant = free_at_;
    eq_.schedule_at(grant, [this] {
      arb_armed_ = false;
      grant_next();
      schedule_arbitration();
    });
  }

  /// Picks the next requester round-robin and executes its transaction's
  /// address phase (snoop) at the current cycle.
  void grant_next() {
    if (queued_ == 0) return;
    const std::size_t n = queues_.size();
    std::size_t who = next_rr_;
    for (std::size_t i = 0; i < n; ++i, who = (who + 1) % n) {
      if (!queues_[who].empty()) break;
    }
    CDSIM_ASSERT(!queues_[who].empty());
    next_rr_ = (who + 1) % n;
    Pending tx = std::move(queues_[who].front());
    queues_[who].pop_front();
    --queued_;
    execute(std::move(tx));
  }

  void execute(Pending tx) {
    const prof::ScopedPhase prof_scope(prof::Phase::kFabric);
    const Cycle granted = eq_.now();

    // A cancelled transaction vanishes before the address phase: no snoop,
    // no occupancy, no memory traffic.
    if (tx.hooks.validator && !tx.hooks.validator()) {
      cancelled_.inc();
      if (obs_ && tx.kind == coherence::BusTxKind::kWriteBack) {
        obs_->on_writeback_resolved(tx.requester, tx.line_addr, granted,
                                    /*cancelled=*/true);
      }
      if (tx.hooks.on_cancel) tx.hooks.on_cancel();
      return;
    }
    tx_count_[static_cast<std::size_t>(tx.kind)].inc();

    BusResult res;
    res.granted_at = granted;

    // Address/snoop phase: all *other* agents observe the transaction now.
    // (Write-backs are point-to-point to memory; no snoop needed, but they
    // are still broadcast for protocol completeness — third parties ignore
    // them, see coherence::apply_snoop.)
    bool flush_writes_memory = false;
    for (std::size_t i = 0; i < snoopers_.size(); ++i) {
      if (static_cast<CoreId>(i) == tx.requester) continue;
      const SnoopReply r = snoopers_[i]->snoop(tx.kind, tx.line_addr,
                                               tx.requester);
      res.shared = res.shared || r.had_line;
      res.supplied_by_cache = res.supplied_by_cache || r.supplied_data;
      flush_writes_memory = flush_writes_memory || r.memory_update;
    }

    Cycle done = granted + cfg_.address_phase;
    const Cycle beats = transfer_cycles(tx.bytes);
    const bool dram = mem_.model() == mem::MemoryModel::kDram;
    // kDram resolves memory completions through callbacks; these flags
    // divert the tail of execute() onto the asynchronous path.
    bool async_read = false;
    bool async_write = false;

    switch (tx.kind) {
      case coherence::BusTxKind::kBusRd:
      case coherence::BusTxKind::kBusRdX: {
        if (res.supplied_by_cache) {
          // Dirty owner flushes: data to the requester, and to memory when
          // the protocol says the flush ends ownership (MESI always; MOESI
          // keeps an Owned supplier responsible and memory stale). The
          // memory-update side of a flush is always posted — the requester
          // got its data from the owner and never waits on memory.
          done += cfg_.cache_to_cache_latency + beats;
          if (flush_writes_memory) {
            if (dram) {
              mem_.dram_write(granted + cfg_.address_phase, tx.bytes,
                              tx.line_addr, {});
            } else {
              mem_.post_write(granted + cfg_.address_phase, tx.bytes);
            }
          }
        } else if (dram) {
          async_read = true;  // memory supplies; fill time known later
        } else {
          // Memory supplies.
          done = mem_.schedule_read(granted + cfg_.address_phase, tx.bytes);
        }
        break;
      }
      case coherence::BusTxKind::kBusUpgr:
        // Invalidation-only: done after the address phase.
        break;
      case coherence::BusTxKind::kWriteBack:
        done += beats;
        if (dram) {
          if (mem_.config().posted_writes) {
            mem_.dram_write(granted + cfg_.address_phase, tx.bytes,
                            tx.line_addr, {});
          } else {
            async_write = true;  // completion rides the DRAM service
          }
        } else {
          const Cycle wdone =
              mem_.post_write(granted + cfg_.address_phase, tx.bytes);
          // Non-posted: the evicting cache holds the transaction open
          // until the channel has absorbed the write.
          if (!mem_.config().posted_writes && wdone > done) done = wdone;
        }
        if (obs_) {
          obs_->on_writeback_resolved(tx.requester, tx.line_addr, granted,
                                      /*cancelled=*/false);
        }
        break;
    }

    // Bus occupancy: address phase always; data phase when data moved on
    // the shared bus (fills and write-backs).
    const Cycle occupied_until = granted + cfg_.address_phase + beats;
    busy_cycles_ += occupied_until - granted;
    free_at_ = occupied_until;
    bytes_.inc(tx.bytes);
    if (trace_ != nullptr) {
      trace_->span(trace_track_, coherence::to_string(tx.kind).data(),
                   granted, occupied_until, "line", tx.line_addr);
    }

    if (async_read || async_write) {
      // DRAM decides the completion cycle. The grant-time contract is
      // unchanged: on_grant consumers never read done_at (the directory
      // mesh sets the same provisional value), coherence state still
      // updates atomically at grant.
      res.done_at = granted;  // provisional; the DRAM callback sets it
      if (tx.hooks.on_grant) tx.hooks.on_grant(res);
      const Cycle local_done = done;
      auto finish = [this, cb = std::move(tx.hooks.on_done), res,
                     local_done](Cycle t) mutable {
        if (!cb) return;
        // A write-back is complete when both the bus data phase and the
        // memory service are over (reads always finish at the fill).
        res.done_at = t > local_done ? t : local_done;
        if (res.done_at == t) {
          cb(res);
        } else {
          eq_.schedule_at(res.done_at,
                          [cb = std::move(cb), res]() mutable { cb(res); });
        }
      };
      if (async_read) {
        mem_.dram_read(granted + cfg_.address_phase, tx.bytes, tx.line_addr,
                       std::move(finish));
      } else {
        mem_.dram_write(granted + cfg_.address_phase, tx.bytes, tx.line_addr,
                        std::move(finish));
      }
      return;
    }

    res.done_at = done;
    if (tx.hooks.on_grant) tx.hooks.on_grant(res);
    if (tx.hooks.on_done) {
      eq_.schedule_at(done,
                      [cb = std::move(tx.hooks.on_done), res] { cb(res); });
    }
  }

  EventQueue& eq_;
  BusConfig cfg_;
  mem::MemoryController& mem_;
  verify::AccessObserver* obs_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId trace_track_ = 0;
  std::vector<Snooper*> snoopers_;
  static constexpr std::size_t kQueueCapacity = 16;
  /// Per-agent pending-request rings (FIFO within an agent, round-robin
  /// across agents). Sized for the in-flight budget an L2 can sustain (its
  /// MSHR file plus turn-off write-backs); deeper bursts grow a ring to
  /// its high-water mark once, after which arbitration is allocation-free.
  std::vector<FifoRing<Pending>> queues_;
  std::size_t next_rr_ = 0;
  std::size_t queued_ = 0;
  bool arb_armed_ = false;
  Cycle free_at_ = 0;
  Counter tx_count_[4];
  Counter bytes_;
  Counter cancelled_;
  Cycle busy_cycles_ = 0;
};

}  // namespace cdsim::bus
