#pragma once
// Deterministic discrete-event simulation kernel.
//
// All cdsim components share one EventQueue. Events are ordered by
// (cycle, insertion sequence): two events scheduled for the same cycle run
// in the order they were scheduled, which makes every simulation bit-exact
// reproducible regardless of platform or standard-library heap tie-breaking.
//
// The queue is built for throughput on the simulator's hot path:
//
//   * callbacks are SmallFn (move-only, 72-byte inline buffer, memcpy
//     relocation for trivially-copyable captures), so scheduling a typical
//     kernel lambda allocates nothing and moves cheaply;
//   * events live in a calendar ring of one bucket per cycle: scheduling is
//     an O(1) append, popping is an O(1) index bump (plus an occasional
//     scan over empty cycles — the simulated platform averages several
//     events per cycle, so the scan is essentially free). Cycle-level
//     simulators cluster deltas within a few hundred cycles; the rare
//     farther-out event waits in an overflow list that is spilled into the
//     ring once per ring revolution;
//   * per-bucket insertion order IS (cycle, sequence) order — events for a
//     cycle still in the overflow list were by construction scheduled
//     before the ring window reached that cycle, and the spill precedes
//     any direct append for that window — so determinism needs no
//     comparator at all;
//   * callbacks execute in place out of a stable slot pool (fixed-size
//     chunks, indexed by shift/mask), so bucket entries are a tiny POD
//     (cycle, slot) — cheap to append, cheap to spill — and an event may
//     freely schedule further events (including at the same cycle) while
//     it runs; the pool grows only to the high-water mark of concurrently
//     pending events and never allocates after that.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/small_fn.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim {

/// Discrete-event scheduler with deterministic same-cycle ordering.
///
/// Usage:
///   EventQueue q;
///   q.schedule_at(100, [] { ... });
///   q.schedule_in(5,  [] { ... });  // relative to q.now()
///   q.run_until(1'000'000);
class EventQueue {
 public:
  /// Inline capture budget: fits the kernel's largest hot-path callback
  /// (a bus completion: a 48-byte completion functor plus a 24-byte
  /// BusResult). Larger captures fall back to the heap transparently.
  using Callback = SmallFn<void(), 72>;

  EventQueue() : ring_(kRingBuckets) { free_slots_.reserve(256); }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Advances monotonically as events execute.
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Number of events not yet executed.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }

  /// Schedules `fn` to run at absolute cycle `when`. Scheduling in the past
  /// is a logic error (asserts).
  void schedule_at(Cycle when, Callback fn) {
    CDSIM_ASSERT_MSG(when >= now_, "event scheduled in the past");
    const Event ev{when, acquire_slot(std::move(fn))};
    if (when < horizon_) {
      ring_[when & kRingMask].push_back(ev);
      if (when < scan_) {
        // run_until() stopped mid-scan past this cycle (its bucket was
        // drained and cleared); rewind so the new event is not skipped.
        // Only empty buckets lie between `when` and the old scan position.
        CDSIM_ASSERT(head_ == 0);
        scan_ = when;
      }
    } else {
      overflow_.push_back(ev);
    }
    ++pending_;
  }

  /// Schedules `fn` to run `delta` cycles from now.
  void schedule_in(Cycle delta, Callback fn) {
    schedule_at(now_ + delta, std::move(fn));
  }

  /// Executes the earliest pending event, advancing now(). Returns false if
  /// the queue was empty. The callback may schedule more events (including
  /// at the same cycle) while it runs.
  bool step() {
    if (pending_ == 0) return false;
    for (;;) {
      // Spill lazily, just before bucket horizon_ is first examined. This
      // keeps the window from advancing while run_until() is parked at a
      // revolution boundary — a premature spill there would let a
      // schedule_at(now()) share a bucket with a spilled far event one
      // full revolution later (two cycles aliasing one bucket).
      if (scan_ == horizon_) spill_overflow();
      std::vector<Event>& bucket = ring_[scan_ & kRingMask];
      if (head_ < bucket.size()) {
        execute(bucket[head_++]);
        return true;
      }
      bucket.clear();
      head_ = 0;
      ++scan_;
    }
  }

  /// Runs events until the queue drains or the next event lies strictly
  /// after `horizon`. Afterwards now() == min(horizon, last event time) —
  /// the clock is advanced to `horizon` if the queue drained early.
  void run_until(Cycle horizon) {
    while (pending_ > 0 && scan_ <= horizon) {
      if (scan_ == horizon_) spill_overflow();  // see step()
      std::vector<Event>& bucket = ring_[scan_ & kRingMask];
      if (head_ >= bucket.size()) {
        bucket.clear();
        head_ = 0;
        ++scan_;
        continue;
      }
      execute(bucket[head_++]);
    }
    if (now_ < horizon) now_ = horizon;
  }

  /// Runs until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Total events executed since construction (for perf accounting).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Cycle when = 0;
    std::uint32_t slot = 0;
  };

  /// Ring span in cycles. Covers every recurring kernel delta (retries,
  /// hit latencies, memory round-trips) with slack; only backlogged memory
  /// transfers and decay ticks overflow. Power of two for cheap indexing.
  static constexpr std::size_t kRingBuckets = 1024;
  static constexpr Cycle kRingMask = kRingBuckets - 1;

  // Takes the event BY VALUE: the callback may append to the bucket the
  // event was read from, reallocating its storage mid-execution.
  void execute(const Event ev) {
    CDSIM_ASSERT(ev.when == scan_);
    now_ = scan_;
    // Invoke in place: chunks give slots stable addresses, so the callback
    // may schedule further events (growing the pool) while it runs and the
    // reference stays good. The slot is recycled only after it returns.
    Callback& cb = slot(ev.slot);
    cb();
    cb = nullptr;
    free_slots_.push_back(ev.slot);
    --pending_;
    ++executed_;
  }

  /// Advances the ring window one revolution and spills the overflow
  /// events that now fall inside it into their buckets. Iterating the
  /// overflow list in order preserves scheduling order, and every spill
  /// happens before any direct append into the new window — so bucket
  /// order remains global scheduling order.
  void spill_overflow() {
    horizon_ += kRingBuckets;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < overflow_.size(); ++i) {
      const Event ev = overflow_[i];
      if (ev.when < horizon_) {
        ring_[ev.when & kRingMask].push_back(ev);
      } else {
        overflow_[keep++] = ev;
      }
    }
    overflow_.resize(keep);
  }

  /// Stable-address slot access: chunk base + offset, both powers of two.
  [[nodiscard]] Callback& slot(std::uint32_t i) noexcept {
    return slot_chunks_[i >> kSlotChunkShift][i & kSlotChunkMask];
  }

  [[nodiscard]] std::uint32_t acquire_slot(Callback&& fn) {
    if (free_slots_.empty()) {
      if ((slot_count_ & kSlotChunkMask) == 0) {
        slot_chunks_.push_back(
            std::make_unique<Callback[]>(std::size_t{1} << kSlotChunkShift));
      }
      const std::uint32_t i = slot_count_++;
      slot(i) = std::move(fn);
      return i;
    }
    const std::uint32_t i = free_slots_.back();
    free_slots_.pop_back();
    slot(i) = std::move(fn);
    return i;
  }

  /// Calendar ring: bucket b holds the events for every cycle c with
  /// c & kRingMask == b inside the current window [horizon_ - kRingBuckets,
  /// horizon_), in scheduling order. Buckets keep their capacity across
  /// revolutions, so steady state never allocates.
  std::vector<std::vector<Event>> ring_;
  /// Events scheduled at or beyond horizon_, in scheduling order.
  std::vector<Event> overflow_;
  /// First cycle beyond the current ring window.
  Cycle horizon_ = kRingBuckets;
  /// Next bucket cycle to inspect; all buckets before it are drained.
  /// Invariant: now_ <= scan_, and scan_ > now_ only while every bucket in
  /// (now_, scan_) is empty.
  Cycle scan_ = 0;
  /// Index of the next unexecuted event in bucket scan_.
  std::size_t head_ = 0;
  /// Callback pool indexed by Event::slot; the free list recycles LIFO so
  /// the working set of slots stays cache-hot. Chunked (stable references)
  /// so in-flight callbacks survive pool growth; the chunk list grows only
  /// to the high-water mark of simultaneously pending events.
  static constexpr std::uint32_t kSlotChunkShift = 8;  ///< 256 slots/chunk.
  static constexpr std::uint32_t kSlotChunkMask =
      (std::uint32_t{1} << kSlotChunkShift) - 1;
  std::vector<std::unique_ptr<Callback[]>> slot_chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::size_t pending_ = 0;
  Cycle now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace cdsim
