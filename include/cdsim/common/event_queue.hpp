#pragma once
// Deterministic discrete-event simulation kernel.
//
// All cdsim components share one EventQueue. Events are ordered by
// (cycle, insertion sequence): two events scheduled for the same cycle run
// in the order they were scheduled, which makes every simulation bit-exact
// reproducible regardless of platform or standard-library heap tie-breaking.

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim {

/// Discrete-event scheduler with deterministic same-cycle ordering.
///
/// Usage:
///   EventQueue q;
///   q.schedule_at(100, [] { ... });
///   q.schedule_in(5,  [] { ... });  // relative to q.now()
///   q.run_until(1'000'000);
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Advances monotonically as events execute.
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Number of events not yet executed.
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Schedules `fn` to run at absolute cycle `when`. Scheduling in the past
  /// is a logic error (asserts).
  void schedule_at(Cycle when, Callback fn) {
    CDSIM_ASSERT_MSG(when >= now_, "event scheduled in the past");
    heap_.push(Event{when, seq_++, std::move(fn)});
  }

  /// Schedules `fn` to run `delta` cycles from now.
  void schedule_in(Cycle delta, Callback fn) {
    schedule_at(now_ + delta, std::move(fn));
  }

  /// Executes the earliest pending event, advancing now(). Returns false if
  /// the queue was empty.
  bool step() {
    if (heap_.empty()) return false;
    // Move the callback out before popping so the event may schedule more
    // events (including at the same cycle) without invalidating anything.
    Event ev = heap_.top();
    heap_.pop();
    CDSIM_ASSERT(ev.when >= now_);
    now_ = ev.when;
    ev.fn();
    ++executed_;
    return true;
  }

  /// Runs events until the queue drains or the next event lies strictly
  /// after `horizon`. Afterwards now() == min(horizon, last event time) —
  /// the clock is advanced to `horizon` if the queue drained early.
  void run_until(Cycle horizon) {
    while (!heap_.empty() && heap_.top().when <= horizon) step();
    if (now_ < horizon) now_ = horizon;
  }

  /// Runs until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Total events executed since construction (for perf accounting).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace cdsim
