#pragma once
// Power-of-two circular FIFO for hot-path wait queues.
//
// The fabric's wait queues (mesh link waiters, snoop-bus per-core request
// queues) used std::deque, whose chunk map allocates and frees as the FIFO
// walks memory — heap traffic on every sustained burst. FifoRing replaces
// that with one contiguous buffer and head/size arithmetic: steady state
// never allocates. Capacity is fixed at construction from the caller's
// worst-case bound (credits in flight, MSHR budget); if a burst the bound
// did not cover arrives anyway the ring grows by doubling — an amortized,
// high-water-only allocation, after which steady state is allocation-free
// again (the EventQueue slot pool follows the same philosophy).
//
// T must be default-constructible and movable (SmallFn-bearing records
// qualify). Elements are value-stored; pop_front() destroys by move-out on
// the caller's side: `T v = std::move(ring.front()); ring.pop_front();`.

#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "cdsim/common/assert.hpp"

namespace cdsim {

template <typename T>
class FifoRing {
 public:
  /// Rounds `min_capacity` up to a power of two (>= 2) and allocates once.
  explicit FifoRing(std::size_t min_capacity = 8)
      : buf_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)) {
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  [[nodiscard]] T& front() {
    CDSIM_ASSERT(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    CDSIM_ASSERT(size_ > 0);
    buf_[head_] = T{};  // drop captures/payload now, not at overwrite time
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

 private:
  void grow() {
    std::vector<T> bigger(buf_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cdsim
