#pragma once
// Plain-text aligned-table writer used by the figure/table bench harnesses.
//
// Every bench prints its figure as rows of an aligned table so the output
// can be diffed, grepped, and pasted next to the paper's plots.

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace cdsim {

/// Accumulates rows of string cells and prints them with per-column
/// alignment. The first row added is treated as the header.
class TextTable {
 public:
  /// Starts a new row.
  TextTable& row() {
    rows_.emplace_back();
    return *this;
  }

  /// Appends a cell to the current row.
  TextTable& cell(const std::string& s) {
    rows_.back().push_back(s);
    return *this;
  }

  TextTable& cell(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return cell(os.str());
  }

  /// Formats `v` (a fraction, e.g. 0.31) as a percentage string "31.0%".
  TextTable& pct(double v, int precision = 1) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
    return cell(os.str());
  }

  /// Writes the table with columns padded to their widest cell.
  void print(std::ostream& os) const {
    std::vector<std::size_t> widths;
    for (const auto& r : rows_) {
      if (r.size() > widths.size()) widths.resize(r.size(), 0);
      for (std::size_t c = 0; c < r.size(); ++c)
        widths[c] = std::max(widths[c], r[c].size());
    }
    for (std::size_t ri = 0; ri < rows_.size(); ++ri) {
      const auto& r = rows_[ri];
      for (std::size_t c = 0; c < r.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << r[c];
      }
      os << '\n';
      if (ri == 0) {
        // Underline the header.
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
        os << std::string(total, '-') << '\n';
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cdsim
