#pragma once
// Deterministic, fast pseudo-random number generation.
//
// Simulation reproducibility demands that randomness is (a) seeded
// explicitly, (b) independent per consumer (each core's workload generator
// owns its own stream), and (c) identical across platforms. std::mt19937_64
// would satisfy this too, but xoshiro256** is ~4x faster and its state is
// four words, which matters when workload generators draw per memory access.

#include <cstdint>

namespace cdsim {

/// SplitMix64 — used to expand a single user seed into full generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_ = 0;
};

/// xoshiro256** 1.0 (Blackman & Vigna). All-purpose 64-bit generator.
class Xoshiro256 {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64, as
  /// the reference implementation recommends.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero. Uses Lemire's
  /// multiply-shift rejection-free approximation (bias < 2^-64·bound, which
  /// is negligible for simulation workloads).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply-high.
    const __uint128_t m =
        static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric-ish draw: number of failures before first success with
  /// probability p per trial, capped at `cap`. Used for burst lengths.
  constexpr std::uint64_t geometric(double p, std::uint64_t cap) noexcept {
    std::uint64_t n = 0;
    while (n < cap && !chance(p)) ++n;
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace cdsim
