#pragma once
// Fundamental scalar types shared by every cdsim subsystem.
//
// The simulator measures time in core clock cycles (`Cycle`), addresses the
// memory space in bytes (`Addr`), and identifies hardware agents with small
// dense integer ids (`CoreId`). All of these are plain integer aliases; the
// strong-typing burden is carried by function signatures and naming rather
// than wrapper classes, matching the style of mature HPC simulators.

#include <cstdint>
#include <limits>

namespace cdsim {

/// Simulated time, in core clock cycles. 64 bits: a multi-billion-cycle run
/// never wraps.
using Cycle = std::uint64_t;

/// Largest representable cycle; used as "never" / "not scheduled".
inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/// Physical byte address.
using Addr = std::uint64_t;

/// Identifier of a core (and, by construction, of its private L1/L2 slice).
using CoreId = std::uint32_t;

/// Identifier used for "no core" (e.g. a memory-originated action).
inline constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/// Convenience byte-size literals.
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;

/// Kinds of accesses a core issues to its memory hierarchy.
enum class AccessType : std::uint8_t {
  kLoad,   ///< Demand load; the core may stall on its latency.
  kStore,  ///< Store; retires through the write buffer (write-through L1).
  kIFetch, ///< Instruction fetch (modeled through the same L1 port).
};

/// Returns true when `x` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Integer log2 for powers of two. Precondition: is_pow2(x).
constexpr unsigned log2_pow2(std::uint64_t x) noexcept {
  unsigned n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

}  // namespace cdsim
