#pragma once
// Lightweight statistics primitives used across the simulator.
//
// Counters are plain 64-bit accumulators; TimeWeightedValue integrates a
// piecewise-constant signal over simulated time exactly (no sampling error) —
// this is what makes the paper's "occupation rate" metric exact; Histogram
// supports the latency distributions behind AMAT.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Exact integral of a piecewise-constant signal over simulated time.
///
/// Call set(now, v) whenever the signal changes; integral(now) returns
/// ∫ signal dt from construction (or last reset) to `now`. Used for
/// "number of powered-on lines" whose time integral, divided by
/// lines × elapsed cycles, is the paper's L2 occupation rate.
class TimeWeightedValue {
 public:
  explicit TimeWeightedValue(double initial = 0.0) : value_(initial) {}

  /// Updates the signal to `v` effective at time `now`.
  void set(Cycle now, double v) {
    CDSIM_ASSERT_MSG(now >= last_change_, "time went backwards");
    integral_ += value_ * static_cast<double>(now - last_change_);
    last_change_ = now;
    value_ = v;
  }

  /// Adds `delta` to the current value at time `now`.
  void add(Cycle now, double delta) { set(now, value_ + delta); }

  [[nodiscard]] double value() const noexcept { return value_; }

  /// Integral of the signal from t=start to `now`.
  [[nodiscard]] double integral(Cycle now) const {
    CDSIM_ASSERT(now >= last_change_);
    return integral_ + value_ * static_cast<double>(now - last_change_);
  }

  /// Time-average of the signal over [start, now].
  [[nodiscard]] double average(Cycle now, Cycle start = 0) const {
    if (now <= start) return value_;
    return integral(now) / static_cast<double>(now - start);
  }

  void reset(Cycle now, double v) {
    integral_ = 0.0;
    last_change_ = now;
    value_ = v;
  }

 private:
  double value_ = 0.0;
  double integral_ = 0.0;
  Cycle last_change_ = 0;
};

/// Streaming mean/min/max/variance (Welford).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0;
};

/// Fixed-bucket histogram with a configurable bucket width; the last bucket
/// absorbs overflow. Tracks the exact sum so mean() has no bucketing error.
class Histogram {
 public:
  Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
      : width_(bucket_width), buckets_(num_buckets, 0) {
    CDSIM_ASSERT(bucket_width > 0 && num_buckets > 0);
  }

  void add(std::uint64_t x) noexcept {
    const std::size_t i =
        std::min<std::size_t>(x / width_, buckets_.size() - 1);
    ++buckets_[i];
    ++n_;
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept {
    return n_ ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }

  /// Smallest value v such that at least `q` fraction of samples are <= the
  /// upper edge of v's bucket. Returns the bucket upper edge.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const {
    CDSIM_ASSERT(q >= 0.0 && q <= 1.0);
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(n_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) return (i + 1) * width_;
    }
    return buckets_.size() * width_;
  }

 private:
  std::uint64_t width_ = 0;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t n_ = 0;
  std::uint64_t sum_ = 0;
};

/// Ratio helper: returns a/b, or `if_zero` when b == 0.
inline double safe_div(double a, double b, double if_zero = 0.0) {
  return b == 0.0 ? if_zero : a / b;
}

}  // namespace cdsim
