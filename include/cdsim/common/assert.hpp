#pragma once
// Simulator-grade assertion macro.
//
// Unlike <cassert>, CDSIM_ASSERT stays enabled in release builds: a coherence
// protocol violation silently producing wrong energy numbers is far worse
// than the nanoseconds the check costs. The failure message includes the
// expression, location, and an optional formatted context string.

#include <cstdio>
#include <cstdlib>

namespace cdsim::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "cdsim assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}
}  // namespace cdsim::detail

#define CDSIM_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::cdsim::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                   \
  } while (false)

#define CDSIM_ASSERT_MSG(expr, msg)                                  \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::cdsim::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                \
  } while (false)

/// Marks unreachable control flow; aborts if reached.
#define CDSIM_UNREACHABLE(msg) \
  ::cdsim::detail::assert_fail("unreachable", __FILE__, __LINE__, msg)
