#pragma once
// Library version string.

namespace cdsim {

/// Returns the semantic version of the cdsim library.
const char* version() noexcept;

}  // namespace cdsim
