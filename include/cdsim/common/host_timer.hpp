#pragma once
// Host-side wall-clock profiling: the third part of cdsim::obs, living in
// common/ because, like the RNG, it is the single sanctioned home for an
// otherwise-banned primitive. This is the ONLY file in include/ or src/
// that may read a wall clock — cdlint's raw-random rule enforces that
// (see tools/cdlint/allowlist.txt), so wall time provably never leaks
// into simulated state. Everything else references clocks exclusively
// through ScopedPhase.
//
// The profiler attributes real (host) nanoseconds to the simulator's
// major subsystems so ROADMAP's "profile-driven single-run speed" work
// has data to aim at: event dispatch, decay sweeps, coherence snoops,
// fabric transactions, DRAM scheduling, and oracle verification.
//
// Design constraints, in order:
//   * Zero-cost when disabled: ScopedPhase construction is one relaxed
//     atomic bool load and a branch — no clock read, no stores.
//   * Safe under run_grid: accumulators are process-global relaxed
//     atomics, so sweep threads profile concurrently without races and
//     the aggregate across all shards falls out for free.
//   * Observer-only by construction: nothing here touches simulator
//     types at all; there is no path from a timestamp to an event.
//
// Phases nest (an oracle hook fires inside a fabric grant which fires
// inside event dispatch), so times are INCLUSIVE and kEventDispatch ~=
// total run loop time. report() prints each phase against that total;
// "unattributed" is dispatch minus the (non-overlapping portion of the)
// leaves, which in practice reads as core/L1 bookkeeping.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>

namespace cdsim::prof {

enum class Phase : std::uint32_t {
  kEventDispatch = 0,  ///< The CmpSystem run loop (inclusive total).
  kDecaySweep,         ///< L1/L2/L3 decay sweeps (expiry-wheel walks).
  kCoherence,          ///< Snoop application in the caches.
  kFabric,             ///< Bus grants / mesh transaction processing.
  kDram,               ///< DRAM controller scheduling + completions.
  kOracle,             ///< Differential-verification hooks.
  kCount,
};

constexpr const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kEventDispatch: return "event_dispatch";
    case Phase::kDecaySweep: return "decay_sweep";
    case Phase::kCoherence: return "coherence";
    case Phase::kFabric: return "fabric";
    case Phase::kDram: return "dram";
    case Phase::kOracle: return "oracle";
    case Phase::kCount: break;
  }
  return "?";
}

/// Process-global phase accumulators. All statics, no instance: scopes in
/// hot code need no pointer plumbed to them, and run_grid shards
/// aggregate simply by sharing the process.
class HostProfiler {
 public:
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  static void add(Phase p, std::uint64_t ns) noexcept {
    const auto i = static_cast<std::size_t>(p);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    calls_[i].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::uint64_t nanos(Phase p) noexcept {
    return ns_[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] static std::uint64_t calls(Phase p) noexcept {
    return calls_[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
  }

  static void reset() noexcept {
    for (auto& a : ns_) a.store(0, std::memory_order_relaxed);
    for (auto& a : calls_) a.store(0, std::memory_order_relaxed);
  }

  /// Human-readable attribution table. The denominator is kEventDispatch
  /// (the inclusive run-loop total); leaf phases overlap it by design.
  static void report(std::FILE* out) {
    const double total_ms =
        static_cast<double>(nanos(Phase::kEventDispatch)) / 1e6;
    std::fprintf(out, "host-profile (wall time by subsystem):\n");
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Phase::kCount);
         ++i) {
      const auto p = static_cast<Phase>(i);
      const double ms = static_cast<double>(nanos(p)) / 1e6;
      const double pct = total_ms > 0.0 ? 100.0 * ms / total_ms : 0.0;
      std::fprintf(out, "  %-15s %10.3f ms  %6.2f%%  (%llu scopes)\n",
                   phase_name(p), ms, pct,
                   static_cast<unsigned long long>(calls(p)));
    }
  }

 private:
  static inline std::atomic<bool> enabled_{false};
  static inline std::atomic<std::uint64_t>
      ns_[static_cast<std::size_t>(Phase::kCount)]{};
  static inline std::atomic<std::uint64_t>
      calls_[static_cast<std::size_t>(Phase::kCount)]{};
};

/// RAII phase scope. When profiling is disabled (the default) the
/// constructor is a relaxed load + branch and the destructor a branch —
/// cheap enough for the event-dispatch hot loop (bench_kernel gates it).
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p) noexcept
      : phase_(p), armed_(HostProfiler::enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      HostProfiler::add(phase_, static_cast<std::uint64_t>(ns));
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_ = Phase::kEventDispatch;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace cdsim::prof
