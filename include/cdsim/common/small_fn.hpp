#pragma once
// SmallFn: a move-only std::function replacement for the simulation kernel's
// hot paths.
//
// The discrete-event kernel stores millions of short-lived callbacks (event
// callbacks, MSHR fill waiters, bus transaction hooks). std::function copies
// them freely and heap-allocates any capture list larger than its ~16-byte
// small-buffer — on the hot path that is one malloc/free pair per event.
// SmallFn fixes both costs:
//
//   * move-only: a callback is created once, moved to its resting place, and
//     invoked — never copied, so captures need not be copyable;
//   * configurable inline storage (default 48 bytes): the kernel's capture
//     lists (a `this`, a line address, a response functor) fit inline, so
//     scheduling an event allocates nothing;
//   * heap fallback: oversized or over-aligned callables still work, they
//     just pay the allocation std::function would have paid anyway.
//
// Moves are always noexcept (inline targets must be nothrow-move-
// constructible or they fall back to the heap), which lets containers of
// SmallFn-holding events relocate with memmove-class cost.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "cdsim/common/assert.hpp"

namespace cdsim {

template <typename Signature, std::size_t InlineBytes = 48>
class SmallFn;  // primary template intentionally undefined

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable invocable as R(Args...). Intentionally implicit,
  /// mirroring std::function, so lambdas convert at call sites.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  /// Invokes the target (const like std::function: the wrapper is const,
  /// the target is logically mutable).
  R operator()(Args... args) const {
    CDSIM_ASSERT_MSG(invoke_ != nullptr, "empty SmallFn invoked");
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  /// Compile-time check: would callable `F` be stored inline (no heap)?
  /// Used by tests and static_asserts guarding hot-path capture sizes.
  /// (Definition duplicated from kFitsInline below, which must stay in the
  /// private section but cannot be referenced before its declaration.)
  template <typename F>
  static constexpr bool fits_inline_v =
      sizeof(std::remove_cvref_t<F>) <= InlineBytes &&
      alignof(std::remove_cvref_t<F>) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<std::remove_cvref_t<F>>;

 private:
  enum class Op : std::uint8_t { kDestroy, kMoveDestroy };
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(Op, void* self, void* other) noexcept;

  // Inline storage is pointer-aligned (not max_align_t): keeping the whole
  // SmallFn 8-byte aligned lets a SmallFn nest inside another callable's
  // inline capture without alignment padding blowing the outer budget.
  // Over-aligned callables take the heap path, which aligns them correctly.
  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(F) <= InlineBytes && alignof(F) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineOps {
    static R invoke(void* s, Args&&... args) {
      return (*static_cast<F*>(s))(std::forward<Args>(args)...);
    }
    static void manage(Op op, void* self, void* other) noexcept {
      switch (op) {
        case Op::kMoveDestroy: {
          F* src = static_cast<F*>(other);
          ::new (self) F(std::move(*src));
          src->~F();
          break;
        }
        case Op::kDestroy:
          static_cast<F*>(self)->~F();
          break;
      }
    }
  };

  template <typename F>
  struct HeapOps {
    static R invoke(void* s, Args&&... args) {
      return (**static_cast<F**>(s))(std::forward<Args>(args)...);
    }
    static void manage(Op op, void* self, void* other) noexcept {
      switch (op) {
        case Op::kMoveDestroy:
          *static_cast<F**>(self) = *static_cast<F**>(other);
          break;
        case Op::kDestroy:
          delete *static_cast<F**>(self);
          break;
      }
    }
  };

  template <typename F0>
  void emplace(F0&& f) {
    using F = std::remove_cvref_t<F0>;
    if constexpr (kFitsInline<F>) {
      ::new (static_cast<void*>(storage_)) F(std::forward<F0>(f));
      invoke_ = &InlineOps<F>::invoke;
      // Trivially copyable + trivially destructible targets (a captured
      // `this`, addresses, flags — most kernel lambdas) need no manager:
      // moves become a fixed-size memcpy and destruction a no-op, with no
      // indirect call on either. Everything else keeps a manager.
      if constexpr (std::is_trivially_copyable_v<F> &&
                    std::is_trivially_destructible_v<F>) {
        manage_ = nullptr;
      } else {
        manage_ = &InlineOps<F>::manage;
      }
    } else {
      *reinterpret_cast<F**>(static_cast<void*>(storage_)) =
          new F(std::forward<F0>(f));
      invoke_ = &HeapOps<F>::invoke;
      manage_ = &HeapOps<F>::manage;
    }
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Precondition: *this is empty. Leaves `other` empty.
  void move_from(SmallFn& other) noexcept {
    if (other.invoke_ == nullptr) return;
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMoveDestroy, storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, InlineBytes);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  // Zero-initialized so the trivial-relocation memcpy in move_from reads
  // no indeterminate bytes (GCC -Wmaybe-uninitialized stays quiet and the
  // copied tail is well-defined). The memset is a few bytes per
  // construction — noise next to the malloc it replaces.
  alignas(alignof(void*)) mutable std::byte storage_[InlineBytes] = {};
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace cdsim
