#pragma once
// Minimal leveled logger.
//
// cdsim is a library first: logging defaults to warnings-and-above on
// stderr and is globally adjustable. Hot paths guard with level checks so a
// disabled level costs one branch.

#include <cstdarg>
#include <cstdio>

namespace cdsim {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Log {
 public:
  static LogLevel& level() noexcept {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  static bool enabled(LogLevel lvl) noexcept {
    return static_cast<int>(lvl) <= static_cast<int>(level());
  }

#if defined(__GNUC__)
  __attribute__((format(printf, 2, 3)))
#endif
  static void write(LogLevel lvl, const char* fmt, ...) {
    if (!enabled(lvl)) return;
    static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
    std::fprintf(stderr, "[cdsim %s] ", names[static_cast<int>(lvl)]);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
  }
};

#define CDSIM_LOG_ERROR(...) ::cdsim::Log::write(::cdsim::LogLevel::kError, __VA_ARGS__)
#define CDSIM_LOG_WARN(...) ::cdsim::Log::write(::cdsim::LogLevel::kWarn, __VA_ARGS__)
#define CDSIM_LOG_INFO(...) ::cdsim::Log::write(::cdsim::LogLevel::kInfo, __VA_ARGS__)
#define CDSIM_LOG_DEBUG(...) ::cdsim::Log::write(::cdsim::LogLevel::kDebug, __VA_ARGS__)

}  // namespace cdsim
