#pragma once
// Minimal leveled logger.
//
// cdsim is a library first: logging defaults to warnings-and-above on
// stderr and is globally adjustable. Hot paths guard with level checks so a
// disabled level costs one relaxed atomic load and a branch.
//
// Thread safety: run_grid logs from worker threads, so the level is an
// atomic (the old mutable-reference accessor was a data race waiting for a
// TSan run) and each message is formatted into one stack buffer and handed
// to the sink as a single call — no interleaved fragments from concurrent
// writers. The sink itself is swappable (atomically) so tests can capture
// output instead of scraping stderr.

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace cdsim {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

constexpr const char* to_string(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

class Log {
 public:
  /// One fully formatted message (no trailing newline). `len` excludes the
  /// NUL terminator. Sinks must be callable from multiple threads.
  using Sink = void (*)(LogLevel lvl, const char* msg, std::size_t len);

  [[nodiscard]] static LogLevel level() noexcept {
    return level_().load(std::memory_order_relaxed);
  }
  static void set_level(LogLevel lvl) noexcept {
    level_().store(lvl, std::memory_order_relaxed);
  }

  static bool enabled(LogLevel lvl) noexcept {
    return static_cast<int>(lvl) <= static_cast<int>(level());
  }

  /// Swaps the sink; nullptr restores the default (one stderr line per
  /// message). Returns the previous sink (nullptr if it was the default),
  /// so tests can restore it.
  static Sink set_sink(Sink sink) noexcept {
    return sink_().exchange(sink, std::memory_order_acq_rel);
  }

#if defined(__GNUC__)
  __attribute__((format(printf, 2, 3)))
#endif
  static void write(LogLevel lvl, const char* fmt, ...) {
    if (!enabled(lvl)) return;
    // Single buffer, single sink call: concurrent writers can interleave
    // whole lines but never fragments. Long messages truncate.
    char buf[1024];
    const int prefix =
        std::snprintf(buf, sizeof(buf), "[cdsim %s] ", to_string(lvl));
    std::size_t len = prefix > 0 ? static_cast<std::size_t>(prefix) : 0;
    va_list ap;
    va_start(ap, fmt);
    const int body =
        std::vsnprintf(buf + len, sizeof(buf) - len, fmt, ap);
    va_end(ap);
    if (body > 0) {
      len += static_cast<std::size_t>(body);
      if (len >= sizeof(buf)) len = sizeof(buf) - 1;
    }
    const Sink sink = sink_().load(std::memory_order_acquire);
    if (sink != nullptr) {
      sink(lvl, buf, len);
      return;
    }
    buf[len] = '\n';  // one write syscall per message, newline included
    (void)std::fwrite(buf, 1, len + 1, stderr);
  }

 private:
  static std::atomic<LogLevel>& level_() noexcept {
    static std::atomic<LogLevel> lvl{LogLevel::kWarn};
    return lvl;
  }
  static std::atomic<Sink>& sink_() noexcept {
    static std::atomic<Sink> sink{nullptr};
    return sink;
  }
};

#define CDSIM_LOG_ERROR(...) ::cdsim::Log::write(::cdsim::LogLevel::kError, __VA_ARGS__)
#define CDSIM_LOG_WARN(...) ::cdsim::Log::write(::cdsim::LogLevel::kWarn, __VA_ARGS__)
#define CDSIM_LOG_INFO(...) ::cdsim::Log::write(::cdsim::LogLevel::kInfo, __VA_ARGS__)
#define CDSIM_LOG_DEBUG(...) ::cdsim::Log::write(::cdsim::LogLevel::kDebug, __VA_ARGS__)

}  // namespace cdsim
