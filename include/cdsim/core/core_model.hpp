#pragma once
// Abstract out-of-order core model.
//
// The paper's platform simulates Alpha-21264-class OoO cores; for the
// leakage study the core's only relevant behaviours are (1) how fast it
// generates memory references and (2) how much of a miss's latency it can
// hide. This model captures exactly those:
//
//  * non-memory instructions retire `issue_width` per cycle;
//  * loads can overlap up to `max_outstanding_loads`, but a load marked
//    `dependent` must wait for the previous load (pointer chasing);
//  * the reorder window limits run-ahead: the core stalls when the oldest
//    outstanding load is more than `rob_window` instructions behind;
//  * stores retire through the L1 write buffer and only stall the core
//    when the buffer is full.
//
// IPC falls out of (instruction budget) / (finish cycle); every load's
// issue-to-data latency feeds the AMAT histogram.

#include <cstdint>
#include <deque>
#include <functional>

#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/small_fn.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"
#include "cdsim/obs/trace_recorder.hpp"
#include "cdsim/workload/stream.hpp"

namespace cdsim::core {

/// Load-completion callback handed down the cache hierarchy. The same
/// SmallFn instantiation as cache::FillCallback, so an L1 can merge it
/// into an MSHR waiter list without re-wrapping (and without allocating:
/// the core's capture list fits the 72-byte inline buffer).
using LoadCallback = SmallFn<void(Cycle), 72>;

/// Resources-freed waiter the core registers with its port. Fired on every
/// load completion and write-buffer drain (the simulator's hottest wakeup
/// path), so it is a SmallFn: the core's `this` capture lives inline.
using FreedCallback = SmallFn<void(), 16>;

/// Result of offering a load to the cache.
struct LoadOutcome {
  bool accepted = false;
  /// Synchronous completion (L1 hit): data available after `latency`
  /// cycles; the callback will NOT be invoked. Hits resolve synchronously
  /// so the simulator spends events only on misses.
  bool completed = false;
  Cycle latency = 0;
};

/// Interface the core uses to talk to its L1 data cache.
class LoadStorePort {
 public:
  virtual ~LoadStorePort() = default;

  /// Issues a load. Not accepted when the cache cannot take it (MSHR
  /// full); the port must invoke the resources-freed callback later.
  /// On asynchronous acceptance, `on_done` fires when the data is
  /// available; on synchronous completion it never fires.
  virtual LoadOutcome try_load(Addr addr, LoadCallback on_done) = 0;

  /// Issues a store (write-through). Returns false when the write buffer
  /// is full; the port must invoke the resources-freed callback later.
  virtual bool try_store(Addr addr) = 0;

  /// Registers the single waiter notified when a previously-full resource
  /// (MSHR or write buffer) frees up.
  virtual void set_resources_freed(FreedCallback cb) = 0;
};

struct CoreConfig {
  std::uint32_t issue_width = 4;            ///< Non-mem instructions/cycle.
  /// Load-queue entries: outstanding loads the core tracks. Distinct-line
  /// concurrency is limited by the L1 MSHR file, not this value; the ROB
  /// window limits run-ahead. Several loads of one missing line (a line
  /// burst) merge into one MSHR but each holds a load-queue slot.
  std::uint32_t max_outstanding_loads = 48;
  std::uint32_t rob_window = 512;           ///< Instructions of run-ahead.
};

/// One simulated core executing a workload stream against a memory port.
class CoreModel {
 public:
  CoreModel(EventQueue& eq, const CoreConfig& cfg, CoreId id,
            workload::WorkloadStream& stream, LoadStorePort& port,
            std::uint64_t instr_budget);

  /// Begins execution at the current queue time. `on_finished` fires once
  /// the instruction budget is committed.
  void start(std::function<void()> on_finished = {});

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] Cycle finish_cycle() const noexcept { return finish_; }
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }
  [[nodiscard]] CoreId id() const noexcept { return id_; }

  /// Committed instructions / elapsed cycles (to `now` or finish).
  [[nodiscard]] double ipc(Cycle now) const;

  /// Issue-to-data latency of every load, in cycles (AMAT numerator).
  [[nodiscard]] const Histogram& load_latency() const noexcept {
    return load_lat_;
  }
  [[nodiscard]] std::uint64_t loads_issued() const noexcept {
    return loads_.value();
  }
  [[nodiscard]] std::uint64_t stores_issued() const noexcept {
    return stores_.value();
  }
  /// Cycles spent unable to issue (all stall reasons).
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept {
    return stall_cycles_.value();
  }
  /// Stall-cycle attribution (reason recorded at park time).
  enum class StallReason : std::uint8_t { kDep, kLoadQueue, kRob, kPort, kStore, kCount };
  [[nodiscard]] std::uint64_t stall_breakdown(StallReason r) const noexcept {
    return stall_by_[static_cast<std::size_t>(r)].value();
  }

  /// Attaches the timeline recorder (observer-only; nullptr detaches).
  /// Emits one span per stall interval, named by its StallReason, on
  /// `track`.
  void set_trace(obs::TraceRecorder* rec, obs::TrackId track) noexcept {
    trace_ = rec;
    trace_track_ = track;
  }

 private:
  struct OutstandingLoad {
    std::uint64_t instr_no = 0;  ///< Position in program order.
    Cycle issued_at = 0;
    bool completed = false;
  };

  void advance();          ///< Fetches/paces the next operation.
  void try_issue();        ///< Attempts to issue the pending operation.
  void park(StallReason r); ///< Records a stall; resumed by wake().
  void wake();             ///< Re-attempts issue after a resource freed.
  void on_load_done(std::size_t slot, Cycle done);
  void finish();

  [[nodiscard]] bool rob_blocked() const;

  EventQueue& eq_;
  CoreConfig cfg_;
  CoreId id_ = 0;
  workload::WorkloadStream& stream_;
  LoadStorePort& port_;
  std::uint64_t budget_ = 0;

  std::uint64_t committed_ = 0;
  bool have_op_ = false;
  workload::MemOp op_{};
  double gap_carry_ = 0.0;
  /// Integer pacing fast path, used when issue_width is a power of two
  /// (every config in the tree): the carry is kept exactly, in units of
  /// 1/issue_width cycles. Bit-identical to the double accumulation —
  /// division by a power of two is exact in binary floating point — while
  /// skipping the per-op int<->double round trips.
  bool pow2_width_ = false;
  std::uint32_t gap_shift_ = 0;
  std::uint64_t gap_rem_ = 0;

  // Outstanding loads in program order; slots index into this deque's
  // logical sequence (we keep completed entries until they are the oldest,
  // mirroring ROB retirement).
  std::deque<OutstandingLoad> outstanding_;
  std::uint64_t outstanding_count_ = 0;
  std::uint64_t next_load_seq_ = 1;
  /// Per-dependence-chain tracking: sequence id and in-flight flag of the
  /// newest load on each chain (see workload::MemOp::chain).
  std::uint64_t chain_last_seq_[workload::kMaxChains] = {};
  bool chain_outstanding_[workload::kMaxChains] = {};

  bool parked_ = false;
  Cycle parked_since_ = 0;
  bool done_ = false;
  Cycle finish_ = 0;
  std::function<void()> on_finished_;
  /// Direct-call depth for the zero-delay advance fast path.
  std::uint32_t chain_depth_ = 0;

  Counter loads_, stores_, stall_cycles_;
  Counter stall_by_[static_cast<std::size_t>(StallReason::kCount)];
  StallReason park_reason_ = StallReason::kDep;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId trace_track_ = 0;
  Histogram load_lat_{4, 256};  ///< 4-cycle buckets up to ~1K cycles.
};

}  // namespace cdsim::core
