#pragma once
// Runtime coherence-protocol selection over the unified controller state
// space.
//
// The L2 controller stores coherence::MesiState (extended with kOwned) and
// dispatches its pure protocol decisions — snoop application and turn-off
// classification — through the functions below. kMesi forwards directly to
// the MESI transition functions of mesi.hpp; kMoesi converts into the
// MoesiState space of moesi.hpp, applies the MOESI functions, and converts
// back, so each protocol's canonical FSM remains the single source of truth
// and stays testable in isolation (tests/moesi_test.cpp).

#include "cdsim/coherence/mesi.hpp"
#include "cdsim/coherence/moesi.hpp"

namespace cdsim::coherence {

/// Which snooping protocol a cache hierarchy runs. MESI is the paper's §III
/// design point; MOESI realizes the §III extension sketch (Owned-state
/// turn-off requires invalidating the remaining copies first).
enum class Protocol : std::uint8_t { kMesi, kMoesi };

constexpr std::string_view to_string(Protocol p) noexcept {
  return p == Protocol::kMesi ? "MESI" : "MOESI";
}

/// Exact, total conversion between the unified state space and MoesiState.
constexpr MoesiState to_moesi(MesiState s) noexcept {
  switch (s) {
    case MesiState::kInvalid: return MoesiState::kInvalid;
    case MesiState::kShared: return MoesiState::kShared;
    case MesiState::kExclusive: return MoesiState::kExclusive;
    case MesiState::kModified: return MoesiState::kModified;
    case MesiState::kTransientClean: return MoesiState::kTransientClean;
    case MesiState::kTransientDirty: return MoesiState::kTransientDirty;
    case MesiState::kOwned: return MoesiState::kOwned;
  }
  return MoesiState::kInvalid;
}

constexpr MesiState from_moesi(MoesiState s) noexcept {
  switch (s) {
    case MoesiState::kInvalid: return MesiState::kInvalid;
    case MoesiState::kShared: return MesiState::kShared;
    case MoesiState::kExclusive: return MesiState::kExclusive;
    case MoesiState::kModified: return MesiState::kModified;
    case MoesiState::kTransientClean: return MesiState::kTransientClean;
    case MoesiState::kTransientDirty: return MesiState::kTransientDirty;
    case MoesiState::kOwned: return MesiState::kOwned;
  }
  return MesiState::kInvalid;
}

/// Protocol-dispatched snoop application over the unified state space.
constexpr SnoopOutcome apply_snoop(Protocol p, MesiState s,
                                   BusTxKind kind) noexcept {
  if (p == Protocol::kMesi) return apply_snoop(s, kind);
  const MoesiSnoopOutcome mo = moesi_apply_snoop(to_moesi(s), kind);
  SnoopOutcome o;
  o.next = from_moesi(mo.next);
  o.had_line = mo.had_line;
  o.supply_data = mo.supply_data;
  o.memory_update = mo.memory_update;
  o.invalidated = mo.invalidated;
  o.cancel_turnoff_wb = mo.cancel_turnoff_wb;
  return o;
}

/// Protocol-dispatched turn-off classification in the MOESI class space
/// (a superset; MESI never yields kOwnedTurnOff).
constexpr MoesiTurnOffClass classify_turnoff(Protocol p,
                                             MesiState s) noexcept {
  if (p == Protocol::kMoesi) return moesi_classify_turnoff(to_moesi(s));
  switch (classify_turnoff(s)) {
    case TurnOffClass::kCleanTurnOff:
      return MoesiTurnOffClass::kCleanTurnOff;
    case TurnOffClass::kDirtyTurnOff:
      return MoesiTurnOffClass::kDirtyTurnOff;
    case TurnOffClass::kIgnore:
      return MoesiTurnOffClass::kIgnore;
  }
  return MoesiTurnOffClass::kIgnore;
}

// --- sanity: the conversions are inverse bijections ------------------------
static_assert(from_moesi(to_moesi(MesiState::kOwned)) == MesiState::kOwned);
static_assert(from_moesi(to_moesi(MesiState::kModified)) ==
              MesiState::kModified);
static_assert(to_moesi(from_moesi(MoesiState::kOwned)) == MoesiState::kOwned);
static_assert(to_moesi(from_moesi(MoesiState::kTransientDirty)) ==
              MoesiState::kTransientDirty);

// The MOESI-defining edges survive the dispatch: a dirty owner answering a
// BusRd keeps ownership (M -> O) and does NOT update memory.
static_assert(apply_snoop(Protocol::kMoesi, MesiState::kModified,
                          BusTxKind::kBusRd)
                  .next == MesiState::kOwned);
static_assert(!apply_snoop(Protocol::kMoesi, MesiState::kModified,
                           BusTxKind::kBusRd)
                   .memory_update);
static_assert(apply_snoop(Protocol::kMesi, MesiState::kModified,
                          BusTxKind::kBusRd)
                  .memory_update);
static_assert(classify_turnoff(Protocol::kMoesi, MesiState::kOwned) ==
              MoesiTurnOffClass::kOwnedTurnOff);
static_assert(classify_turnoff(Protocol::kMesi, MesiState::kModified) ==
              MoesiTurnOffClass::kDirtyTurnOff);
// Upgrades are invalidation-only: a snooped Owned owner dies silently (the
// requester's identical S copy becomes the new M), so no data or memory
// traffic may be implied — the bus's kBusUpgr arm moves no bytes.
static_assert(!apply_snoop(Protocol::kMoesi, MesiState::kOwned,
                           BusTxKind::kBusUpgr)
                   .supply_data);
static_assert(!apply_snoop(Protocol::kMoesi, MesiState::kOwned,
                           BusTxKind::kBusUpgr)
                   .memory_update);
static_assert(apply_snoop(Protocol::kMoesi, MesiState::kOwned,
                          BusTxKind::kBusUpgr)
                  .invalidated);

}  // namespace cdsim::coherence
