#pragma once
// MESI coherence protocol extended with the turn-off mechanism of
// Monchiero/Canal/González (ICPP'09), Figure 2.
//
// The protocol logic is expressed as *pure functions* over an explicit state
// enum: given a state and an input (processor op, snooped bus transaction,
// or turn-off signal), they return the next state plus the set of actions
// the controller must perform (supply data, write back, invalidate the upper
// level, ...). Keeping the FSM side-effect-free makes the paper's Table I
// and Figure 2 directly testable, transition by transition.
//
// States:
//   I  — Invalid. Under any gating technique an invalid line is also
//        *powered off* (the valid bit gates Vdd, paper §III).
//   S  — Shared: clean, possibly replicated in other L2s.
//   E  — Exclusive: clean, only copy among the L2s.
//   M  — Modified: dirty, only copy; memory is stale.
//   TC — Transient Clean: a clean line whose turn-off is in progress; the
//        upper level (L1) is being invalidated to preserve inclusion.
//   TD — Transient Dirty: a dirty line whose turn-off is in progress; the
//        upper level is being invalidated and the line awaits a bus grant
//        to flush its data to memory before switching off.

#include <cstdint>
#include <string_view>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::coherence {

enum class MesiState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
  kTransientClean,
  kTransientDirty,
  /// Owned (MOESI runs only): dirty *and* shared — this cache answers for
  /// the line while S copies replicate it; memory is stale. MesiState is
  /// the unified controller state space; a controller running plain MESI
  /// never enters this state (see coherence/protocol.hpp).
  kOwned,
};

/// Human-readable state name (for logs, tests and the Table I harness).
constexpr std::string_view to_string(MesiState s) noexcept {
  switch (s) {
    case MesiState::kInvalid: return "I";
    case MesiState::kShared: return "S";
    case MesiState::kExclusive: return "E";
    case MesiState::kModified: return "M";
    case MesiState::kTransientClean: return "TC";
    case MesiState::kTransientDirty: return "TD";
    case MesiState::kOwned: return "O";
  }
  return "?";
}

/// A state is "stationary" when the line is not mid-transaction. The paper
/// requires turn-off requests to wait for a stationary state (§III).
constexpr bool is_stationary(MesiState s) noexcept {
  return s == MesiState::kShared || s == MesiState::kExclusive ||
         s == MesiState::kModified || s == MesiState::kOwned;
}

/// Valid (powered, data-holding) states. TC/TD still hold data and must
/// respond to snoops.
constexpr bool holds_data(MesiState s) noexcept {
  return s != MesiState::kInvalid;
}

constexpr bool is_dirty(MesiState s) noexcept {
  return s == MesiState::kModified || s == MesiState::kTransientDirty ||
         s == MesiState::kOwned;
}

/// Bus transactions a snoopy L2 can observe or issue.
enum class BusTxKind : std::uint8_t {
  kBusRd,     ///< Read for sharing (load miss).
  kBusRdX,    ///< Read for ownership (store miss).
  kBusUpgr,   ///< Ownership upgrade of an already-held S line (no data).
  kWriteBack, ///< Dirty data flushed to memory (eviction or turn-off).
};

constexpr std::string_view to_string(BusTxKind k) noexcept {
  switch (k) {
    case BusTxKind::kBusRd: return "BusRd";
    case BusTxKind::kBusRdX: return "BusRdX";
    case BusTxKind::kBusUpgr: return "BusUpgr";
    case BusTxKind::kWriteBack: return "WB";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Snoop side
// ---------------------------------------------------------------------------

/// Outcome of applying a snooped transaction to a local line.
struct SnoopOutcome {
  MesiState next = MesiState::kInvalid;
  bool had_line = false;      ///< We held valid data (drives S vs E fills).
  bool supply_data = false;   ///< We flush the line on the bus (dirty owner).
  bool memory_update = false; ///< Memory is written with our dirty data.
  bool invalidated = false;   ///< The line was invalidated by this snoop.
  bool cancel_turnoff_wb = false;  ///< A pending TD write-back became moot.
};

/// Applies a snooped bus transaction `kind` to a line in state `s`.
///
/// MESI variant: memory supplies data for clean remote hits; only a dirty
/// owner flushes (supply_data). A flush updates memory as well, so the
/// requester may install a clean copy.
constexpr SnoopOutcome apply_snoop(MesiState s, BusTxKind kind) noexcept {
  SnoopOutcome o;
  o.had_line = holds_data(s);
  switch (kind) {
    case BusTxKind::kBusRd:
      switch (s) {
        case MesiState::kInvalid:
          o.next = MesiState::kInvalid;
          break;
        case MesiState::kShared:
          o.next = MesiState::kShared;
          break;
        case MesiState::kExclusive:
          o.next = MesiState::kShared;
          break;
        case MesiState::kModified:
        case MesiState::kOwned:  // unreachable under MESI; defensively as M
          // BusRd/Flush edge of Fig. 2: supply and downgrade.
          o.next = MesiState::kShared;
          o.supply_data = true;
          o.memory_update = true;
          break;
        case MesiState::kTransientClean:
          // Clean data; memory supplies the requester. The turn-off keeps
          // draining; our copy is still clean so nothing changes here.
          o.next = MesiState::kTransientClean;
          break;
        case MesiState::kTransientDirty:
          // We are dying with dirty data and someone wants the line: flush
          // now; the flush doubles as the write-back the TD state was
          // queued for, so the line can switch off immediately.
          o.next = MesiState::kInvalid;
          o.supply_data = true;
          o.memory_update = true;
          o.invalidated = true;
          o.cancel_turnoff_wb = true;
          break;
      }
      break;

    case BusTxKind::kBusRdX:
    case BusTxKind::kBusUpgr:
      switch (s) {
        case MesiState::kInvalid:
          o.next = MesiState::kInvalid;
          break;
        case MesiState::kShared:
        case MesiState::kExclusive:
          o.next = MesiState::kInvalid;
          o.invalidated = true;
          break;
        case MesiState::kModified:
        case MesiState::kOwned:  // unreachable under MESI; defensively as M
          o.next = MesiState::kInvalid;
          o.supply_data = true;
          o.memory_update = true;
          o.invalidated = true;
          break;
        case MesiState::kTransientClean:
          // Remote writer invalidates us mid-turn-off; the turn-off
          // completes trivially (line dies now).
          o.next = MesiState::kInvalid;
          o.invalidated = true;
          o.cancel_turnoff_wb = true;
          break;
        case MesiState::kTransientDirty:
          o.next = MesiState::kInvalid;
          o.supply_data = true;
          o.memory_update = true;
          o.invalidated = true;
          o.cancel_turnoff_wb = true;
          break;
      }
      break;

    case BusTxKind::kWriteBack:
      // Write-backs carry no coherence action for third parties.
      o.next = s;
      break;
  }
  return o;
}

// ---------------------------------------------------------------------------
// Turn-off side (the paper's contribution)
// ---------------------------------------------------------------------------

/// What a turn-off request requires for a line in a given state.
enum class TurnOffClass : std::uint8_t {
  kIgnore,        ///< I / TC / TD — nothing to do (or already in progress).
  kCleanTurnOff,  ///< S/E -> TC: invalidate upper level, then off. No bus.
  kDirtyTurnOff,  ///< M -> TD: invalidate upper level, flush on bus, off.
};

/// Classifies a turn-off request (Fig. 2 "Turn-off" edges). Requests in
/// transient states must be retried once the line is stationary; the decay
/// sweep naturally provides the retry.
constexpr TurnOffClass classify_turnoff(MesiState s) noexcept {
  switch (s) {
    case MesiState::kShared:
    case MesiState::kExclusive:
      return TurnOffClass::kCleanTurnOff;
    case MesiState::kModified:
    case MesiState::kOwned:  // unreachable under MESI; dirty either way
      return TurnOffClass::kDirtyTurnOff;
    case MesiState::kInvalid:
    case MesiState::kTransientClean:
    case MesiState::kTransientDirty:
      return TurnOffClass::kIgnore;
  }
  return TurnOffClass::kIgnore;
}

/// State entered when a turn-off request is accepted.
constexpr MesiState turnoff_transient(MesiState s) noexcept {
  CDSIM_ASSERT(is_stationary(s));
  return is_dirty(s) ? MesiState::kTransientDirty
                     : MesiState::kTransientClean;
}

// ---------------------------------------------------------------------------
// Fill side
// ---------------------------------------------------------------------------

/// State a requester installs after a bus fill.
/// @param was_write  the fetch was BusRdX (store miss)
/// @param shared     some other L2 held the line at snoop time
constexpr MesiState fill_state(bool was_write, bool shared) noexcept {
  if (was_write) return MesiState::kModified;
  return shared ? MesiState::kShared : MesiState::kExclusive;
}

}  // namespace cdsim::coherence
