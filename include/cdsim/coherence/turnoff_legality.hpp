#pragma once
// Paper Table I: when may an L2 line be switched off, and at what cost?
//
// The table compares three hierarchy design points (uniprocessor with
// write-back L1, uniprocessor with write-through L1, private-L2
// multiprocessor with write-through L1) against the state of the L2 line.
// This header encodes that decision table as a function, used both by the
// simulator's assertions and by the `bench_table1` harness that regenerates
// the table; the gtest suite cross-checks it against the Figure 2 FSM.

#include <cstdint>
#include <string_view>

#include "cdsim/coherence/mesi.hpp"

namespace cdsim::coherence {

/// The hierarchy design points of Table I.
enum class HierarchyKind : std::uint8_t {
  kUniprocessorWritebackL1,
  kUniprocessorWritethroughL1,
  kMultiprocessorWritethroughL1,  ///< The paper's (and this library's) target.
};

constexpr std::string_view to_string(HierarchyKind h) noexcept {
  switch (h) {
    case HierarchyKind::kUniprocessorWritebackL1:
      return "uniprocessor, WB L1";
    case HierarchyKind::kUniprocessorWritethroughL1:
      return "uniprocessor, WT L1";
    case HierarchyKind::kMultiprocessorWritethroughL1:
      return "multiprocessor (private L2), WT L1";
  }
  return "?";
}

/// Verdict for one Table I cell.
struct TurnOffVerdict {
  bool allowed = false;            ///< Line may be switched off now.
  bool requires_no_pending_write = false;  ///< Gate on the L1 write buffer.
  bool requires_writeback = false;         ///< Dirty data must reach memory.
  bool requires_upper_inval = false;       ///< L1 copy must be invalidated.
};

/// Evaluates Table I for a line that is `dirty` or clean under hierarchy
/// `h`, assuming `pending_write` reflects the L1 write buffer.
constexpr TurnOffVerdict table1_verdict(HierarchyKind h, bool dirty,
                                        bool pending_write) noexcept {
  TurnOffVerdict v;
  switch (h) {
    case HierarchyKind::kUniprocessorWritebackL1:
      if (!dirty) {
        v.allowed = true;  // "Turn off"
      } else {
        v.allowed = true;  // "Write back and turn off"
        v.requires_writeback = true;
      }
      break;
    case HierarchyKind::kUniprocessorWritethroughL1:
      v.requires_no_pending_write = true;
      v.allowed = !pending_write;
      if (dirty) v.requires_writeback = true;
      break;
    case HierarchyKind::kMultiprocessorWritethroughL1:
      if (!dirty) {
        v.requires_no_pending_write = true;
        v.allowed = !pending_write;
      } else {
        // "Turn off, but invalidate the upper level" — inclusion forces the
        // L1 copy out, and the only up-to-date data must reach memory.
        v.allowed = true;
        v.requires_upper_inval = true;
        v.requires_writeback = true;
      }
      break;
  }
  return v;
}

}  // namespace cdsim::coherence
