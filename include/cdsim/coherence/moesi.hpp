#pragma once
// MOESI coherence protocol with the turn-off extension — the protocol
// generalization the paper sketches in §III:
//
//   "This technique may be easily extended to any coherence protocol, of
//    course taking care of the different semantic of the states. For
//    example, considering the Owned state of the MOESI, other copies must
//    be invalidated before a line is turned off."
//
// MOESI adds the **Owned (O)** state: dirty *and shared* — the owner
// supplies data to readers without updating memory, so memory stays stale
// while S copies replicate the line. That changes the turn-off rules:
//
//  * An O line's turn-off must (a) write the dirty data back, like M, and
//    (b) invalidate the other S copies first — otherwise those copies
//    would survive with no owner responsible for memory consistency and,
//    worse, no agent left to order a later writer against them. This is
//    the paper's "other copies must be invalidated" caveat, realized here
//    as an ownership-revoking bus transaction before the flush.
//  * S copies can no longer assume memory is up to date, but turning an S
//    copy off is still free: the owner (or memory) still has the data.
//
// The transient-state treatment mirrors the MESI implementation
// (mesi.hpp): TC for clean lines, TD for dirty lines (M and O both),
// with O additionally requiring the invalidation broadcast.

#include <cstdint>
#include <string_view>

#include "cdsim/coherence/mesi.hpp"

namespace cdsim::coherence {

enum class MoesiState : std::uint8_t {
  kInvalid,
  kShared,     ///< Clean or stale-memory copy; some owner may exist.
  kExclusive,  ///< Clean, only copy.
  kOwned,      ///< Dirty and shared: this cache answers for the line.
  kModified,   ///< Dirty, only copy.
  kTransientClean,
  kTransientDirty,
};

constexpr std::string_view to_string(MoesiState s) noexcept {
  switch (s) {
    case MoesiState::kInvalid: return "I";
    case MoesiState::kShared: return "S";
    case MoesiState::kExclusive: return "E";
    case MoesiState::kOwned: return "O";
    case MoesiState::kModified: return "M";
    case MoesiState::kTransientClean: return "TC";
    case MoesiState::kTransientDirty: return "TD";
  }
  return "?";
}

constexpr bool is_stationary(MoesiState s) noexcept {
  return s == MoesiState::kShared || s == MoesiState::kExclusive ||
         s == MoesiState::kOwned || s == MoesiState::kModified;
}

constexpr bool holds_data(MoesiState s) noexcept {
  return s != MoesiState::kInvalid;
}

/// Dirty = this cache is responsible for the only up-to-date copy.
constexpr bool is_dirty(MoesiState s) noexcept {
  return s == MoesiState::kModified || s == MoesiState::kOwned ||
         s == MoesiState::kTransientDirty;
}

/// Outcome of applying a snooped transaction to a local MOESI line.
struct MoesiSnoopOutcome {
  MoesiState next = MoesiState::kInvalid;
  bool had_line = false;
  bool supply_data = false;    ///< Owner-supplies (cache-to-cache).
  bool memory_update = false;  ///< Memory is written with our dirty data.
  bool invalidated = false;
  bool cancel_turnoff_wb = false;
};

/// Applies a snooped transaction. The MOESI difference from MESI: a dirty
/// owner answering a BusRd *keeps ownership* (M -> O) and does NOT update
/// memory — that deferred write-back is exactly what makes the O-state
/// turn-off more involved.
constexpr MoesiSnoopOutcome moesi_apply_snoop(MoesiState s,
                                              BusTxKind kind) noexcept {
  MoesiSnoopOutcome o;
  o.had_line = holds_data(s);
  switch (kind) {
    case BusTxKind::kBusRd:
      switch (s) {
        case MoesiState::kInvalid:
          break;
        case MoesiState::kShared:
          o.next = MoesiState::kShared;
          break;
        case MoesiState::kExclusive:
          o.next = MoesiState::kShared;
          break;
        case MoesiState::kOwned:
          // Owner keeps supplying; memory stays stale.
          o.next = MoesiState::kOwned;
          o.supply_data = true;
          break;
        case MoesiState::kModified:
          // MOESI: downgrade to Owned, supply the reader, defer the
          // memory write-back (the key difference from MESI's M->S).
          o.next = MoesiState::kOwned;
          o.supply_data = true;
          break;
        case MoesiState::kTransientClean:
          o.next = MoesiState::kTransientClean;
          break;
        case MoesiState::kTransientDirty:
          // Dying dirty line: flush to requester AND memory so the
          // turn-off completes (same resolution as MESI).
          o.next = MoesiState::kInvalid;
          o.supply_data = true;
          o.memory_update = true;
          o.invalidated = true;
          o.cancel_turnoff_wb = true;
          break;
      }
      break;

    case BusTxKind::kBusRdX:
      switch (s) {
        case MoesiState::kInvalid:
          break;
        case MoesiState::kShared:
        case MoesiState::kExclusive:
          o.next = MoesiState::kInvalid;
          o.invalidated = true;
          break;
        case MoesiState::kOwned:
        case MoesiState::kModified:
          o.next = MoesiState::kInvalid;
          o.supply_data = true;
          o.memory_update = true;
          o.invalidated = true;
          break;
        case MoesiState::kTransientClean:
          o.next = MoesiState::kInvalid;
          o.invalidated = true;
          o.cancel_turnoff_wb = true;
          break;
        case MoesiState::kTransientDirty:
          o.next = MoesiState::kInvalid;
          o.supply_data = true;
          o.memory_update = true;
          o.invalidated = true;
          o.cancel_turnoff_wb = true;
          break;
      }
      break;

    case BusTxKind::kBusUpgr:
      // Invalidation-only: the requester already holds the line (it issued
      // the upgrade from S, or O) — no data moves and memory is not
      // written. A snooped O (or dying TD) owner therefore dies *silently*:
      // the requester's identical copy becomes the new M and inherits the
      // dirty-data responsibility, exactly how ownership migrates in real
      // MOESI. (BusRdX differs: there the requester has no data, so the
      // owner must flush.)
      switch (s) {
        case MoesiState::kInvalid:
          break;
        case MoesiState::kShared:
        case MoesiState::kExclusive:
        case MoesiState::kOwned:
        case MoesiState::kModified:  // unreachable: M excludes sharers
          o.next = MoesiState::kInvalid;
          o.invalidated = true;
          break;
        case MoesiState::kTransientClean:
        case MoesiState::kTransientDirty:
          o.next = MoesiState::kInvalid;
          o.invalidated = true;
          o.cancel_turnoff_wb = true;
          break;
      }
      break;

    case BusTxKind::kWriteBack:
      o.next = s;
      break;
  }
  return o;
}

/// Turn-off requirements per MOESI state — the §III extension table.
enum class MoesiTurnOffClass : std::uint8_t {
  kIgnore,
  kCleanTurnOff,   ///< S/E: invalidate upper level, off. No bus traffic.
  kDirtyTurnOff,   ///< M: invalidate upper level, write back, off.
  /// O: *first* invalidate the remaining S copies system-wide (ownership
  /// revocation broadcast), then write back, then off — "other copies must
  /// be invalidated before a line is turned off" (§III).
  kOwnedTurnOff,
};

constexpr MoesiTurnOffClass moesi_classify_turnoff(MoesiState s) noexcept {
  switch (s) {
    case MoesiState::kShared:
    case MoesiState::kExclusive:
      return MoesiTurnOffClass::kCleanTurnOff;
    case MoesiState::kModified:
      return MoesiTurnOffClass::kDirtyTurnOff;
    case MoesiState::kOwned:
      return MoesiTurnOffClass::kOwnedTurnOff;
    case MoesiState::kInvalid:
    case MoesiState::kTransientClean:
    case MoesiState::kTransientDirty:
      return MoesiTurnOffClass::kIgnore;
  }
  return MoesiTurnOffClass::kIgnore;
}

/// Transient state entered when a turn-off is accepted. O joins the dirty
/// path (its data must reach memory before the line dies).
constexpr MoesiState moesi_turnoff_transient(MoesiState s) noexcept {
  CDSIM_ASSERT(is_stationary(s));
  return is_dirty(s) ? MoesiState::kTransientDirty
                     : MoesiState::kTransientClean;
}

/// Fill state after a bus transaction: like MESI, except a read serviced
/// by a dirty owner installs S *while the owner retains O* (no memory
/// update happened).
constexpr MoesiState moesi_fill_state(bool was_write, bool shared) noexcept {
  if (was_write) return MoesiState::kModified;
  return shared ? MoesiState::kShared : MoesiState::kExclusive;
}

/// Relative cost ranking of a turn-off (bus transactions required):
/// S/E = 0 (free), M = 1 (write-back), O = 2 (invalidation broadcast +
/// write-back). Used by cost-aware selective policies.
constexpr int moesi_turnoff_bus_cost(MoesiState s) noexcept {
  switch (moesi_classify_turnoff(s)) {
    case MoesiTurnOffClass::kCleanTurnOff: return 0;
    case MoesiTurnOffClass::kDirtyTurnOff: return 1;
    case MoesiTurnOffClass::kOwnedTurnOff: return 2;
    case MoesiTurnOffClass::kIgnore: return 0;
  }
  return 0;
}

}  // namespace cdsim::coherence
