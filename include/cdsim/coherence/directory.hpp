#pragma once
// Sharer-bitmap directory for the mesh-interconnect coherence protocol.
//
// One logical directory, banked by home tile, tracks for every cached line:
//
//   * `sharers` — a bit per core that may hold the line (up to 64 cores);
//   * `owner`   — the core whose copy answers for the line, i.e. the one
//                 holding it in E, M, O or TD. Silent E->M upgrades are
//                 invisible to any directory, so ownership conservatively
//                 covers both clean-exclusive and dirty.
//
// The bitmap is kept *exact* (not merely conservative) by two mechanisms:
// the home re-probes every involved cache after each grant's snoops
// resolve (noc::Snooper::probe, side-effect-free), and silent clean drops —
// evictions of clean lines and the paper's §III clean turn-offs — notify
// the home through Interconnect::note_clean_drop.
//
// That exactness is what maps the paper's snoop-bus turn-off rules onto
// directory state (DESIGN.md has the full table):
//
//   S/E turn-off  -> PutS / PutE: droppable with no data traffic exactly
//                    when the directory shows the line clean at that core
//                    (sharer bit set; for E, owner == core). note_clean_drop
//                    asserts this agreement.
//   M turn-off    -> write-back to home; the home clears ownership when the
//                    write-back is granted (writeback_granted).
//   O turn-off    -> a *directed recall*: the home invalidates exactly the
//                    tracked sharers instead of broadcasting, then the
//                    owner's flush proceeds as a dirty turn-off.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "cdsim/coherence/mesi.hpp"
#include "cdsim/common/assert.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::coherence {

struct DirectoryEntry {
  std::uint64_t sharers = 0;  ///< Bit c set: core c may hold the line.
  CoreId owner = kNoCore;     ///< Core holding E/M/O/TD, or kNoCore.

  [[nodiscard]] bool tracked(CoreId c) const noexcept {
    return (sharers >> c) & 1u;
  }
  [[nodiscard]] bool uncached() const noexcept {
    return sharers == 0 && owner == kNoCore;
  }
};

/// Debug/test rendering, e.g. "{sharers=0x5, owner=2}".
std::string to_string(const DirectoryEntry& e);

struct DirectoryStats {
  Counter lookups;           ///< Grants processed against an entry.
  Counter directed_snoops;   ///< Snoops sent (vs. (n-1) per broadcast).
  Counter clean_drops;       ///< PutS notifications (S turn-off/eviction).
  Counter exclusive_drops;   ///< PutE notifications (owner dropped clean).
  Counter recalls;           ///< Directed O-turn-off invalidation rounds.
  Counter owner_writebacks;  ///< Write-backs granted from the owner.
  Counter late_writebacks;   ///< Write-backs whose ownership moved on.
  Counter deferrals;         ///< Requests parked behind an in-flight WB.
};

/// The bookkeeping core of the directory protocol. The transport (who gets
/// snooped when, over which links) lives in noc::DirectoryMesh; this class
/// owns the entries, the bit algebra and the protocol-agreement checks, so
/// it is unit-testable without a mesh.
class Directory {
 public:
  explicit Directory(std::uint32_t num_cores) : num_cores_(num_cores) {
    CDSIM_ASSERT_MSG(num_cores >= 1 && num_cores <= 64,
                     "sharer bitmap holds at most 64 cores");
  }

  [[nodiscard]] std::uint32_t num_cores() const noexcept { return num_cores_; }

  /// Entry for `line`, created on first use.
  DirectoryEntry& lookup(Addr line) {
    stats_.lookups.inc();
    return map_[line];
  }
  /// Read-only find (nullptr when the line was never cached).
  [[nodiscard]] const DirectoryEntry* find(Addr line) const {
    const auto it = map_.find(line);
    return it == map_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t entries() const noexcept { return map_.size(); }

  /// Cores to snoop for a transaction on `e` issued by `requester`: every
  /// tracked holder except the requester itself.
  [[nodiscard]] std::uint64_t snoop_targets(const DirectoryEntry& e,
                                            CoreId requester) const noexcept {
    std::uint64_t t = e.sharers;
    if (e.owner != kNoCore) t |= std::uint64_t{1} << e.owner;
    t &= ~(std::uint64_t{1} << requester);
    return t;
  }

  /// §III clean-drop legality: `core` dropped a clean (S/E/TC) copy with no
  /// data traffic. Legal iff the directory agrees the copy existed and no
  /// write-back was owed; asserts that agreement, then clears the bit.
  void note_clean_drop(CoreId core, Addr line) {
    auto it = map_.find(line);
    CDSIM_ASSERT_MSG(it != map_.end() && it->second.tracked(core),
                     "clean drop of a line the directory does not track");
    DirectoryEntry& e = it->second;
    if (e.owner == core) {
      // The owner's copy was clean (E, or TC entered from E): had it been
      // dirty the controller would have taken the write-back path instead.
      e.owner = kNoCore;
      stats_.exclusive_drops.inc();
    } else {
      stats_.clean_drops.inc();
    }
    e.sharers &= ~(std::uint64_t{1} << core);
    if (e.uncached()) map_.erase(it);
  }

  /// A write-back from `core` reached its home grant (and memory). Clears
  /// the core's tracking; ownership is released only if it still rests
  /// with `core` — a concurrent upgrade may have moved it on (the "late
  /// write-back" of directory protocols).
  void writeback_granted(CoreId core, Addr line) {
    auto it = map_.find(line);
    if (it == map_.end()) return;
    DirectoryEntry& e = it->second;
    if (e.owner == core) {
      e.owner = kNoCore;
      stats_.owner_writebacks.inc();
    } else {
      stats_.late_writebacks.inc();
    }
    e.sharers &= ~(std::uint64_t{1} << core);
    if (e.uncached()) map_.erase(it);
  }

  /// Records `core`'s post-grant probed state into the entry: this is the
  /// precision-recovery step that keeps the bitmap exact.
  void record_probe(DirectoryEntry& e, CoreId core, MesiState s) {
    const std::uint64_t bit = std::uint64_t{1} << core;
    if (!holds_data(s)) {
      e.sharers &= ~bit;
      if (e.owner == core) e.owner = kNoCore;
      return;
    }
    e.sharers |= bit;
    switch (s) {
      case MesiState::kExclusive:
      case MesiState::kModified:
      case MesiState::kOwned:
      case MesiState::kTransientDirty:
        e.owner = core;
        break;
      case MesiState::kShared:
        // Downgraded (M->S under MESI, E->S on a remote read).
        if (e.owner == core) e.owner = kNoCore;
        break;
      case MesiState::kTransientClean:
        // Keep ownership as-is: a TC entered from E still answers
        // note_clean_drop as the exclusive holder; a TC entered from S
        // never owned the line.
        break;
      case MesiState::kInvalid:
        break;  // unreachable (holds_data above)
    }
  }

  void drop_if_uncached(Addr line) {
    const auto it = map_.find(line);
    if (it != map_.end() && it->second.uncached()) map_.erase(it);
  }

  [[nodiscard]] DirectoryStats& stats() noexcept { return stats_; }
  [[nodiscard]] const DirectoryStats& stats() const noexcept { return stats_; }

 private:
  std::uint32_t num_cores_ = 0;
  std::unordered_map<Addr, DirectoryEntry> map_;
  DirectoryStats stats_;
};

}  // namespace cdsim::coherence
