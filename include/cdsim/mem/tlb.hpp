#pragma once
// Per-core TLBs in front of the cache hierarchy.
//
// mem::Tlb is the translation structure itself: page-granularity, true-LRU,
// fully associative (a deterministic linear scan over <= a few dozen
// entries). mem::TlbPort interposes it on the core's LoadStorePort: a TLB
// hit forwards to the L1 untouched; a miss pays a fixed walk latency before
// the load is issued. The port honours the L1's contract that completion
// callbacks never fire inside try_load (the walk is at least one cycle and
// all deferred work goes through the EventQueue).
//
// Stores consult and refill the TLB (state + stats) but never stall on the
// walk — the write buffer hides it, matching the simulator's store model
// where try_store either retires into the buffer or rejects on capacity.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/types.hpp"
#include "cdsim/core/core_model.hpp"
#include "cdsim/mem/memory.hpp"
#include "cdsim/obs/trace_recorder.hpp"

namespace cdsim::mem {

/// Fully associative, true-LRU page-translation buffer.
class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg) : cfg_(cfg), entries_(cfg.entries) {
    CDSIM_ASSERT(cfg.entries >= 1);
    CDSIM_ASSERT(cfg.page_bytes >= 1);
  }

  /// Looks up the page of `addr`; refills the LRU way on a miss.
  /// Returns true on a hit.
  bool access(Addr addr) {
    const Addr page = addr / cfg_.page_bytes;
    ++tick_;
    for (Entry& e : entries_) {
      if (e.valid && e.page == page) {
        e.last_use = tick_;
        hits_.inc();
        return true;
      }
    }
    misses_.inc();
    Entry* victim = &entries_.front();
    for (Entry& e : entries_) {
      if (!e.valid) {
        victim = &e;
        break;
      }
      if (e.last_use < victim->last_use) victim = &e;
    }
    victim->valid = true;
    victim->page = page;
    victim->last_use = tick_;
    return false;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.value(); }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.value();
  }

 private:
  struct Entry {
    Addr page = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  TlbConfig cfg_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  Counter hits_, misses_;
};

/// LoadStorePort interposer: TLB in front of an inner port (the L1).
class TlbPort final : public core::LoadStorePort {
 public:
  TlbPort(EventQueue& eq, const TlbConfig& cfg, core::LoadStorePort& inner)
      : eq_(eq), cfg_(cfg), tlb_(cfg), inner_(inner) {
    CDSIM_ASSERT(cfg.enabled);
    inner_.set_resources_freed([this] { on_inner_freed(); });
  }

  core::LoadOutcome try_load(Addr addr, core::LoadCallback on_done) override {
    if (tlb_.access(addr)) return inner_.try_load(addr, std::move(on_done));
    // Miss: accept the load now, issue it after the fixed walk. The walk is
    // clamped to >= 1 cycle so the completion can never fire inside
    // try_load (the core's bookkeeping relies on that).
    const std::uint64_t id = next_id_++;
    pending_.emplace(id, std::move(on_done));
    const Cycle walk =
        cfg_.miss_walk_latency >= 1 ? cfg_.miss_walk_latency : 1;
    // The walk duration is fixed and known at issue, so the span can be
    // emitted up front (the recorder orders events by emission, not time).
    if (trace_ != nullptr) {
      trace_->span(trace_track_, "walk", eq_.now(), eq_.now() + walk, "page",
                   addr / cfg_.page_bytes);
    }
    eq_.schedule_in(walk, [this, addr, id] { issue_after_walk(addr, id); });
    return {.accepted = true};
  }

  bool try_store(Addr addr) override {
    tlb_.access(addr);
    return inner_.try_store(addr);
  }

  void set_resources_freed(core::FreedCallback cb) override {
    core_waiter_ = std::move(cb);
  }

  [[nodiscard]] const Tlb& tlb() const noexcept { return tlb_; }

  /// Attaches the timeline recorder (observer-only; nullptr detaches):
  /// one span per load-miss page walk.
  void set_trace(obs::TraceRecorder* rec, obs::TrackId track) noexcept {
    trace_ = rec;
    trace_track_ = track;
  }

 private:
  void issue_after_walk(Addr addr, std::uint64_t id) {
    const core::LoadOutcome out =
        inner_.try_load(addr, [this, id](Cycle t) { complete(id, t); });
    if (!out.accepted) {
      // Inner MSHRs full: park and retry when the L1 frees a resource.
      parked_.push_back(ParkedLoad{addr, id});
      return;
    }
    if (out.completed) {
      // Synchronous inner hit — surface it asynchronously at the hit's
      // completion cycle, like any walked load.
      const Cycle done = eq_.now() + out.latency;
      eq_.schedule_at(done, [this, id, done] { complete(id, done); });
    }
  }

  void complete(std::uint64_t id, Cycle t) {
    const auto it = pending_.find(id);
    CDSIM_ASSERT(it != pending_.end());
    core::LoadCallback cb = std::move(it->second);
    pending_.erase(it);
    if (cb) cb(t);
  }

  void on_inner_freed() {
    // Walked loads parked on a full MSHR retry first (FIFO order; a retry
    // that rejects again re-parks into the fresh deque). The core's own
    // waiter is then woken regardless — a spurious wake is benign, the
    // core re-checks and parks again.
    std::deque<ParkedLoad> retry;
    retry.swap(parked_);
    for (ParkedLoad& p : retry) issue_after_walk(p.addr, p.id);
    if (core_waiter_) core_waiter_();
  }

  struct ParkedLoad {
    Addr addr = 0;
    std::uint64_t id = 0;
  };

  EventQueue& eq_;
  TlbConfig cfg_;
  Tlb tlb_;
  core::LoadStorePort& inner_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId trace_track_ = 0;
  std::map<std::uint64_t, core::LoadCallback> pending_;
  std::deque<ParkedLoad> parked_;
  std::uint64_t next_id_ = 0;
  core::FreedCallback core_waiter_;
};

}  // namespace cdsim::mem
