#pragma once
// Main-memory model: fixed access latency plus a bandwidth-limited channel.
//
// The external bus / memory channel is where the paper's Figure 4(a) metric
// lives: decay-induced refetches and turn-off write-backs all cross this
// channel, so the controller counts every byte moved in each direction.

#include <cstdint>
#include <functional>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"

namespace cdsim::mem {

struct MemoryConfig {
  /// Core cycles from channel issue to first data beat (row activation,
  /// controller queuing not included — queuing is modeled explicitly).
  Cycle read_latency = 130;
  /// Channel bandwidth in bytes per core cycle (both directions share it).
  std::uint32_t bytes_per_cycle = 16;
  /// Writes are posted: the issuer never waits for them, but they occupy
  /// channel bandwidth and are counted as traffic.
  bool posted_writes = true;
};

/// Bandwidth-limited, fixed-latency memory controller.
///
/// The channel serializes transfers: each request occupies the channel for
/// ceil(bytes / bytes_per_cycle) cycles starting no earlier than the
/// previous occupant finished. Reads additionally pay `read_latency` before
/// their data is available to the requester.
class MemoryController {
 public:
  MemoryController(EventQueue& eq, const MemoryConfig& cfg)
      : eq_(eq), cfg_(cfg) {
    CDSIM_ASSERT(cfg.bytes_per_cycle >= 1);
  }

  /// Schedules a read of `bytes` starting at `start`; returns the cycle the
  /// data is fully available at the on-chip side.
  Cycle schedule_read(Cycle start, std::uint32_t bytes) {
    const Cycle begin = claim_channel(start, bytes);
    reads_.inc();
    bytes_read_.inc(bytes);
    return begin + cfg_.read_latency + transfer_cycles(bytes);
  }

  /// Posts a write of `bytes` at `start` (fire-and-forget). Returns the
  /// cycle the channel finished moving it (for tests).
  Cycle post_write(Cycle start, std::uint32_t bytes) {
    const Cycle begin = claim_channel(start, bytes);
    writes_.inc();
    bytes_written_.inc(bytes);
    return begin + transfer_cycles(bytes);
  }

  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_.value();
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_.value();
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_read() + bytes_written();
  }
  [[nodiscard]] std::uint64_t read_count() const noexcept {
    return reads_.value();
  }
  [[nodiscard]] std::uint64_t write_count() const noexcept {
    return writes_.value();
  }

  /// Average bytes per cycle moved over [0, now] — the Fig. 4(a) numerator.
  [[nodiscard]] double bandwidth(Cycle now) const {
    return safe_div(static_cast<double>(total_bytes()),
                    static_cast<double>(now));
  }

  [[nodiscard]] const MemoryConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] Cycle transfer_cycles(std::uint32_t bytes) const noexcept {
    return (bytes + cfg_.bytes_per_cycle - 1) / cfg_.bytes_per_cycle;
  }

  /// Serializes channel occupancy; returns when this transfer may begin.
  Cycle claim_channel(Cycle start, std::uint32_t bytes) {
    const Cycle begin = start > channel_free_at_ ? start : channel_free_at_;
    channel_free_at_ = begin + transfer_cycles(bytes);
    return begin;
  }

  EventQueue& eq_;
  MemoryConfig cfg_;
  Cycle channel_free_at_ = 0;
  Counter reads_, writes_, bytes_read_, bytes_written_;
};

}  // namespace cdsim::mem
