#pragma once
// Main-memory models behind the bus / memory-channel seam.
//
// Two models share one facade (MemoryController), selected by
// MemoryConfig.model:
//
//   * kFlat — the historical fixed-latency, bandwidth-limited channel. The
//     external bus is where the paper's Figure 4(a) metric lives: decay
//     refetches and turn-off write-backs all cross it, so the controller
//     counts every byte in each direction. Flat-mode timing is bit-exact
//     with the pre-DRAM simulator (all golden pins hold).
//   * kDram — channels -> ranks -> banks with per-bank open-row state,
//     row-buffer hit/miss/conflict timing (tCAS / tRCD+tCAS /
//     tRP+tRCD+tCAS), an FR-FCFS scheduler over a bounded per-channel
//     request queue, and a periodic (lazily applied) refresh. Requests
//     complete through callbacks at their true service time.
//
// Oracle threading (kDram): the differential checker's memory shadow is
// updated at write-back *grant* time, before the DRAM write is serviced. A
// read arriving while an older write to the same line is still queued is
// therefore served from the queue (write forwarding) instead of the bank —
// a younger read can never bypass an older queued write and observe the
// pre-write version. See DESIGN.md §9.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/event_queue.hpp"
#include "cdsim/common/small_fn.hpp"
#include "cdsim/common/stats.hpp"
#include "cdsim/common/types.hpp"
#include "cdsim/obs/trace_recorder.hpp"

namespace cdsim::mem {

/// Which memory model serves the channel (MemoryConfig.model).
enum class MemoryModel : std::uint8_t {
  kFlat,  ///< Fixed latency + bandwidth-limited channel (the paper's sink).
  kDram,  ///< Banked DRAM with row-buffer timing and FR-FCFS scheduling.
};

constexpr std::string_view to_string(MemoryModel m) noexcept {
  return m == MemoryModel::kFlat ? "flat" : "dram";
}

/// DRAM geometry and timing (kDram only). Timings are in *core* cycles; the
/// defaults approximate DDR-class parts behind a ~3.5 GHz core (one DRAM
/// clock ~ 9 core cycles, tRCD/tRP/tCAS ~ 13-14 DRAM clocks).
struct DramConfig {
  std::uint32_t channels = 2;
  std::uint32_t ranks_per_channel = 2;
  std::uint32_t banks_per_rank = 8;
  /// Row-buffer size per bank; consecutive interleave units of one channel
  /// stay in one row, so streaming traffic earns row hits.
  std::uint32_t row_bytes = 2048;
  /// Channel-interleave granularity (one cache line by default).
  std::uint32_t interleave_bytes = 64;
  /// Bounded FR-FCFS scheduling window per channel; arrivals beyond it
  /// wait in a FIFO spill and are not visible to the scheduler yet.
  std::uint32_t queue_depth = 16;
  /// A row-hit may bypass the oldest request at most this many times
  /// before oldest-first is forced (FR-FCFS starvation cap).
  std::uint32_t starvation_limit = 4;
  Cycle t_rcd = 40;  ///< Activate (row open) to column command.
  Cycle t_rp = 40;   ///< Precharge (row close) latency.
  Cycle t_cas = 35;  ///< Column access to first data beat.
  /// Refresh interval (tREFI): one refresh per channel every t_refi
  /// cycles, applied lazily (no events while idle). 0 disables refresh.
  Cycle t_refi = 27300;
  /// Refresh cycle time (tRFC): every bank of the channel is unavailable
  /// this long per refresh, and all open rows close.
  Cycle t_rfc = 1225;
};

/// Per-core TLB in front of the hierarchy (page granularity, fixed
/// miss-walk latency). Disabled by default: the flat golden pins predate
/// address translation.
struct TlbConfig {
  bool enabled = false;
  std::uint32_t entries = 64;
  std::uint32_t page_bytes = 4096;
  Cycle miss_walk_latency = 60;
};

struct MemoryConfig {
  MemoryModel model = MemoryModel::kFlat;
  /// kFlat: core cycles from channel issue to first data beat (row
  /// activation, controller queuing not included — queuing is modeled
  /// explicitly).
  Cycle read_latency = 130;
  /// Channel bandwidth in bytes per core cycle (both directions share it).
  std::uint32_t bytes_per_cycle = 16;
  /// Writes are posted: the issuer never waits for them, but they occupy
  /// channel bandwidth and are counted as traffic. When false, write-back
  /// completions wait for the memory write to finish.
  bool posted_writes = true;
  DramConfig dram;  ///< kDram only.
  TlbConfig tlb;    ///< Per-core TLBs (CmpSystem interposes them).
};

/// kDram service counters (all zero under kFlat).
struct DramStats {
  std::uint64_t row_hits = 0;       ///< Open-row column accesses (tCAS).
  std::uint64_t row_misses = 0;     ///< Closed-bank activates (tRCD+tCAS).
  std::uint64_t row_conflicts = 0;  ///< Open-row replacements (tRP+tRCD+tCAS).
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t write_forwards = 0;  ///< Reads served from a queued write.
};

/// Completion callback for model-agnostic requests; invoked with the cycle
/// the data is fully available. Inline budget fits the bus's DRAM-fill
/// continuation (an on_done SmallFn plus a BusResult).
using MemCallback = SmallFn<void(Cycle), 96>;

/// The banked-DRAM engine (MemoryConfig.model == kDram). Owns per-channel
/// FR-FCFS queues, per-bank open-row state, and the lazy refresh clock;
/// requests are issued with read()/write() and complete via MemCallback at
/// their true service cycle. Channels serialize one command at a time
/// (bank-level overlap is folded into the per-request access latency — a
/// documented simplification, see DESIGN.md §9).
class DramController {
 public:
  DramController(EventQueue& eq, const MemoryConfig& cfg);

  DramController(const DramController&) = delete;
  DramController& operator=(const DramController&) = delete;

  /// Enqueues a read of `bytes` at `line`, arriving at `start` (>= now).
  /// `cb` fires at the service completion cycle. A queued older write to
  /// the same line serves the read directly (write forwarding).
  void read(Cycle start, std::uint32_t bytes, Addr line, MemCallback cb);

  /// Enqueues a write. `cb` (optional) fires when the write is serviced —
  /// the non-posted completion the issuer can wait on.
  void write(Cycle start, std::uint32_t bytes, Addr line, MemCallback cb);

  [[nodiscard]] const DramStats& stats() const noexcept { return stats_; }

  /// Attaches the timeline recorder (observer-only; nullptr detaches).
  /// Registers one track per channel (refresh catch-ups, write forwarding)
  /// and one per bank (access spans named rd/wr × hit/miss/conflict).
  void set_trace(obs::TraceRecorder* rec);

 private:
  struct Request {
    Addr line = 0;
    std::uint32_t bytes = 0;
    bool is_write = false;
    std::uint32_t bypassed = 0;  ///< FR-FCFS bypass count (oldest only).
    MemCallback cb;
  };
  struct Bank {
    std::int64_t open_row = -1;  ///< -1: precharged (no open row).
    Cycle ready = 0;             ///< Bank busy until here (incl. refresh).
  };
  struct Channel {
    std::deque<Request> queue;  ///< The scheduler's bounded window.
    std::deque<Request> spill;  ///< FIFO overflow beyond queue_depth.
    std::vector<Bank> banks;
    Cycle data_free = 0;  ///< Channel data bus busy until here.
    bool busy = false;    ///< A command is in service.
    std::uint64_t refreshes_applied = 0;
  };
  struct Decoded {
    std::uint32_t channel = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
  };

  [[nodiscard]] Decoded decode(Addr line) const noexcept;
  [[nodiscard]] Cycle transfer_cycles(std::uint32_t bytes) const noexcept;
  void issue(Cycle start, Request req);
  void arrive(Request req);
  void apply_refresh(std::size_t ci, Cycle now);
  void pump(std::size_t ci);

  EventQueue& eq_;
  MemoryConfig cfg_;
  /// std::deque, not vector: Channel holds move-only request queues and a
  /// deque grows without relocating (no noexcept-move requirement).
  std::deque<Channel> channels_;
  DramStats stats_;
  obs::TraceRecorder* trace_ = nullptr;
  std::vector<obs::TrackId> channel_tracks_;  ///< [channel]
  std::vector<obs::TrackId> bank_tracks_;     ///< [channel * banks + bank]
};

/// The memory-side facade every fabric talks to.
///
/// kFlat: the channel serializes transfers — each request occupies it for
/// ceil(bytes / bytes_per_cycle) cycles placed *time-ordered* (first fit
/// into the earliest idle gap at or after its start cycle, so a claim
/// issued out of call order is no longer queued behind later traffic).
/// Reads additionally pay `read_latency` before their data is available.
/// kDram: requests are forwarded to the DramController and complete
/// asynchronously via dram_read()/dram_write() callbacks.
class MemoryController {
 public:
  MemoryController(EventQueue& eq, const MemoryConfig& cfg)
      : eq_(eq), cfg_(cfg) {
    CDSIM_ASSERT(cfg.bytes_per_cycle >= 1);
    if (cfg_.model == MemoryModel::kDram) {
      dram_ = std::make_unique<DramController>(eq, cfg_);
    }
  }

  [[nodiscard]] MemoryModel model() const noexcept { return cfg_.model; }

  // --- kFlat synchronous API (asserts on kDram) ----------------------------

  /// Schedules a read of `bytes` starting at `start`; returns the cycle the
  /// data is fully available at the on-chip side. Zero-byte requests are
  /// no-ops (no channel claim, no counters).
  Cycle schedule_read(Cycle start, std::uint32_t bytes) {
    CDSIM_ASSERT_MSG(cfg_.model == MemoryModel::kFlat,
                     "synchronous reads are flat-model only");
    if (bytes == 0) return start;
    const Cycle begin = claim_channel(start, bytes);
    reads_.inc();
    bytes_read_.inc(bytes);
    return begin + cfg_.read_latency + transfer_cycles(bytes);
  }

  /// Posts a write of `bytes` at `start`. Returns the cycle the channel
  /// finished moving it — the completion a non-posted issuer waits on
  /// (posted issuers discard it). Zero-byte requests are no-ops.
  Cycle post_write(Cycle start, std::uint32_t bytes) {
    CDSIM_ASSERT_MSG(cfg_.model == MemoryModel::kFlat,
                     "synchronous writes are flat-model only");
    if (bytes == 0) return start;
    const Cycle begin = claim_channel(start, bytes);
    writes_.inc();
    bytes_written_.inc(bytes);
    return begin + transfer_cycles(bytes);
  }

  // --- kDram asynchronous API (asserts on kFlat) ---------------------------

  /// Enqueues a DRAM read; `cb` fires at the true service-completion cycle
  /// (possibly forwarded from a queued write to the same line).
  void dram_read(Cycle start, std::uint32_t bytes, Addr line,
                 MemCallback cb) {
    CDSIM_ASSERT_MSG(dram_ != nullptr, "dram_read needs model == kDram");
    if (bytes == 0) {  // no-op, like the flat path: no traffic, no counters
      if (cb) {
        const Cycle at = start > eq_.now() ? start : eq_.now();
        eq_.schedule_at(at, [cb = std::move(cb), at]() mutable { cb(at); });
      }
      return;
    }
    reads_.inc();
    bytes_read_.inc(bytes);
    dram_->read(start, bytes, line, std::move(cb));
  }

  /// Enqueues a DRAM write; `cb` (may be empty for posted writes) fires
  /// when the write is serviced.
  void dram_write(Cycle start, std::uint32_t bytes, Addr line,
                  MemCallback cb) {
    CDSIM_ASSERT_MSG(dram_ != nullptr, "dram_write needs model == kDram");
    if (bytes == 0) {  // no-op, like the flat path: no traffic, no counters
      if (cb) {
        const Cycle at = start > eq_.now() ? start : eq_.now();
        eq_.schedule_at(at, [cb = std::move(cb), at]() mutable { cb(at); });
      }
      return;
    }
    writes_.inc();
    bytes_written_.inc(bytes);
    dram_->write(start, bytes, line, std::move(cb));
  }

  /// Attaches the timeline recorder (kDram only — the flat channel is a
  /// latency formula with no per-event structure worth a timeline; a kFlat
  /// call is a deliberate no-op). Observer-only; nullptr detaches.
  void set_trace(obs::TraceRecorder* rec) {
    if (dram_ != nullptr) dram_->set_trace(rec);
  }

  /// kDram service counters (all zero under kFlat).
  [[nodiscard]] const DramStats& dram_stats() const noexcept {
    static constexpr DramStats kEmpty{};
    return dram_ != nullptr ? dram_->stats() : kEmpty;
  }

  // --- traffic accounting (both models) ------------------------------------

  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_.value();
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_.value();
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_read() + bytes_written();
  }
  [[nodiscard]] std::uint64_t read_count() const noexcept {
    return reads_.value();
  }
  [[nodiscard]] std::uint64_t write_count() const noexcept {
    return writes_.value();
  }

  /// Average bytes per cycle moved over [0, now] — the Fig. 4(a) numerator.
  [[nodiscard]] double bandwidth(Cycle now) const {
    return safe_div(static_cast<double>(total_bytes()),
                    static_cast<double>(now));
  }

  [[nodiscard]] const MemoryConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] Cycle transfer_cycles(std::uint32_t bytes) const noexcept {
    return (bytes + cfg_.bytes_per_cycle - 1) / cfg_.bytes_per_cycle;
  }

  /// Time-ordered channel arbitration: first fit into the earliest idle
  /// gap at or after `start`. For nondecreasing starts this is identical
  /// to the historical "begin at max(start, channel_free_at)" rule (a gap
  /// can only open at a cycle some claim already started at, so later
  /// claims — whose starts are >= that cycle — can never fit inside it),
  /// which is what keeps flat-mode golden pins bit-exact. Out-of-order
  /// starts now land in the gap they belong to instead of serializing
  /// behind later traffic.
  Cycle claim_channel(Cycle start, std::uint32_t bytes) {
    CDSIM_ASSERT(bytes > 0);
    const Cycle len = transfer_cycles(bytes);
    // Intervals that ended at or before the current event time can never
    // host a future claim (every in-tree issue point is >= now), so the
    // ledger stays O(outstanding transfers), not O(run length).
    const Cycle now = eq_.now();
    while (!busy_.empty() && busy_.begin()->second <= now) {
      busy_.erase(busy_.begin());
    }
    Cycle begin = start;
    auto it = busy_.upper_bound(begin);
    if (it != busy_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second > begin) begin = prev->second;
    }
    while (it != busy_.end() && it->first < begin + len) {
      if (it->second > begin) begin = it->second;
      ++it;
    }
    // Insert [begin, begin + len), coalescing with exact neighbours.
    Cycle nb = begin;
    Cycle ne = begin + len;
    const auto nxt = busy_.lower_bound(begin);
    if (nxt != busy_.begin()) {
      const auto prev = std::prev(nxt);
      if (prev->second == nb) {
        nb = prev->first;
        busy_.erase(prev);
      }
    }
    if (nxt != busy_.end() && nxt->first == ne) {
      ne = nxt->second;
      busy_.erase(nxt);
    }
    busy_[nb] = ne;
    return begin;
  }

  /// Once dead weight, now load-bearing: prunes the busy-interval ledger
  /// against simulated time and clocks the DRAM engine.
  EventQueue& eq_;
  MemoryConfig cfg_;
  std::unique_ptr<DramController> dram_;  ///< kDram only (else null).
  /// Flat-channel busy intervals [begin, end), coalesced, pruned at now().
  std::map<Cycle, Cycle> busy_;
  Counter reads_, writes_, bytes_read_, bytes_written_;
};

}  // namespace cdsim::mem
