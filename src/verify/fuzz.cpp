#include "cdsim/verify/fuzz.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "cdsim/common/assert.hpp"
#include "cdsim/verify/shrink.hpp"
#include "cdsim/workload/benchmarks.hpp"

namespace cdsim::verify {

namespace {

/// One cell of the (protocol x technique-config x topology x hierarchy x
/// program-mix) matrix. Decay times are deliberately tiny (the fuzzer's
/// runs are tens of thousands of cycles): small windows mean *more*
/// turn-off edges per instruction, which is the point. The blocks: the
/// historical 4-core snoop-bus matrix, the directory mesh at 16 (MESI)
/// and 8 (MOESI, asymmetric 4x2 mesh) cores with the hot-home-node NoC
/// stressor, the three-level shared-L3 machines, and the multi-program
/// rate-mode mixes (heterogeneous tenants, skewed budgets).
struct MatrixCell {
  coherence::Protocol protocol;
  decay::Technique technique;
  Cycle decay_time;
  noc::Topology topology = noc::Topology::kSnoopBus;
  std::uint32_t num_cores = 4;
  sim::Hierarchy hierarchy = sim::Hierarchy::kTwoLevel;
  std::uint32_t programs = 0;  ///< Multi-program cell (see FuzzScenario).
  /// kDram cells run banked DRAM + TLBs; values must match flat exactly.
  mem::MemoryModel mem_model = mem::MemoryModel::kFlat;
};

constexpr Cycle kDecayTimes[3] = {1024, 2048, 4096};

std::vector<MatrixCell> matrix_cells(bool dmesh_only,
                                     bool three_level_only) {
  std::vector<MatrixCell> cells;
  const auto add_block =
      [&cells](coherence::Protocol protocol, noc::Topology topo,
               std::uint32_t cores,
               sim::Hierarchy h = sim::Hierarchy::kTwoLevel,
               std::uint32_t programs = 0,
               mem::MemoryModel mm = mem::MemoryModel::kFlat) {
        cells.push_back({protocol, decay::Technique::kBaseline, 2048, topo,
                         cores, h, programs, mm});
        cells.push_back({protocol, decay::Technique::kProtocol, 2048, topo,
                         cores, h, programs, mm});
        for (const Cycle t : kDecayTimes) {
          cells.push_back({protocol, decay::Technique::kDecay, t, topo,
                           cores, h, programs, mm});
        }
        for (const Cycle t : kDecayTimes) {
          cells.push_back({protocol, decay::Technique::kSelectiveDecay, t,
                           topo, cores, h, programs, mm});
        }
      };
  if (three_level_only) {
    // The CI three-level smoke gate: shared-L3 cells only, both protocols,
    // decay at all three levels — plus a DRAM-backed round so the banked
    // memory model is oracle-checked below the L3 too.
    add_block(coherence::Protocol::kMesi, noc::Topology::kDirectoryMesh, 16,
              sim::Hierarchy::kThreeLevel);
    add_block(coherence::Protocol::kMoesi, noc::Topology::kDirectoryMesh, 8,
              sim::Hierarchy::kThreeLevel);
    add_block(coherence::Protocol::kMoesi, noc::Topology::kDirectoryMesh, 8,
              sim::Hierarchy::kThreeLevel, /*programs=*/0,
              mem::MemoryModel::kDram);
    return cells;
  }
  if (!dmesh_only) {
    add_block(coherence::Protocol::kMesi, noc::Topology::kSnoopBus, 4);
    add_block(coherence::Protocol::kMoesi, noc::Topology::kSnoopBus, 4);
    add_block(coherence::Protocol::kMesi, noc::Topology::kDirectoryMesh, 16);
    add_block(coherence::Protocol::kMoesi, noc::Topology::kDirectoryMesh, 8);
    // Three-level hierarchy: private L2s behind the shared home-banked L3,
    // with the cell's technique active at L1, L2, AND L3.
    add_block(coherence::Protocol::kMesi, noc::Topology::kDirectoryMesh, 16,
              sim::Hierarchy::kThreeLevel);
    add_block(coherence::Protocol::kMoesi, noc::Topology::kDirectoryMesh, 8,
              sim::Hierarchy::kThreeLevel);
    // Multi-program rate-mode mixes: heterogeneous fuzzer personalities
    // co-scheduled on one machine with a hot-tenant budget skew, so the
    // oracle shadows cores that retire at different times while sharing
    // the directory and NoC.
    add_block(coherence::Protocol::kMesi, noc::Topology::kDirectoryMesh, 16,
              sim::Hierarchy::kTwoLevel, /*programs=*/4);
    add_block(coherence::Protocol::kMoesi, noc::Topology::kDirectoryMesh, 8,
              sim::Hierarchy::kThreeLevel, /*programs=*/3);
    // DRAM-backed rounds: the same hostile mixes with the banked DRAM
    // controller and per-core TLBs behind the fabric. Flat vs. DRAM may
    // diverge only in timing — the oracle proves values never do.
    add_block(coherence::Protocol::kMesi, noc::Topology::kSnoopBus, 4,
              sim::Hierarchy::kTwoLevel, /*programs=*/0,
              mem::MemoryModel::kDram);
    add_block(coherence::Protocol::kMoesi, noc::Topology::kDirectoryMesh, 8,
              sim::Hierarchy::kTwoLevel, /*programs=*/0,
              mem::MemoryModel::kDram);
    add_block(coherence::Protocol::kMesi, noc::Topology::kDirectoryMesh, 16,
              sim::Hierarchy::kThreeLevel, /*programs=*/0,
              mem::MemoryModel::kDram);
  } else {
    // The CI many-core smoke gate: 16-core mesh only, both protocols, and
    // a DRAM-backed round of the MESI cells.
    add_block(coherence::Protocol::kMesi, noc::Topology::kDirectoryMesh, 16);
    add_block(coherence::Protocol::kMoesi, noc::Topology::kDirectoryMesh,
              16);
    add_block(coherence::Protocol::kMesi, noc::Topology::kDirectoryMesh, 16,
              sim::Hierarchy::kTwoLevel, /*programs=*/0,
              mem::MemoryModel::kDram);
  }
  return cells;
}

}  // namespace

std::string FuzzScenario::label() const {
  std::ostringstream os;
  os << "fuzz#" << index << "/" << coherence::to_string(protocol) << "/"
     << noc::to_string(topology) << num_cores << "/"
     << sim::to_string(hierarchy) << "/" << decay.label()
     << "/l2=" << total_l2_bytes / KiB << "K";
  if (hierarchy == sim::Hierarchy::kThreeLevel) {
    os << "/l3=" << total_l3_bytes / KiB << "K";
  }
  if (programs > 0) os << "/progs=" << programs;
  if (mem_model == mem::MemoryModel::kDram) os << "/dram";
  os << "/seed=" << seed;
  if (inject_writeback_loss) os << "/INJECTED-WB-LOSS";
  return os.str();
}

sim::SystemConfig FuzzScenario::system_config() const {
  sim::SystemConfig cfg;
  cfg.num_cores = num_cores;
  cfg.topology = topology;
  cfg.hierarchy = hierarchy;
  cfg.total_l2_bytes = total_l2_bytes;
  cfg.protocol = protocol;
  cfg.decay = decay;
  if (!decay::uses_decay(cfg.decay.technique)) cfg.decay.decay_time = 0;
  // A small L1 keeps the L2 (where all the turn-off machinery lives) in
  // the line of fire instead of swallowing the whole footprint.
  cfg.l1.size_bytes = 8 * KiB;
  cfg.l2.test_lose_decay_writeback = inject_writeback_loss;
  if (hierarchy == sim::Hierarchy::kThreeLevel) {
    // Decay at EVERY level: the scenario's technique runs in the L1 front
    // ends and the shared L3 banks too, so the oracle sees turn-off edges
    // at all three levels interleaved.
    cfg.total_l3_bytes = total_l3_bytes;
    cfg.l1_decay = cfg.decay;
    cfg.l3_decay = cfg.decay;
    // Small banks so L3 evictions and decay churn within the run.
    cfg.l3.ways = 8;
  }
  if (mem_model == mem::MemoryModel::kDram) {
    cfg.mem.model = mem::MemoryModel::kDram;
    // Per-core TLBs ride along in DRAM cells. Tiny capacity plus a short
    // refresh interval so walks, refresh stalls, and row-buffer churn all
    // fire within a 30k-instruction run.
    cfg.mem.tlb.enabled = true;
    cfg.mem.tlb.entries = 16;
    cfg.mem.dram.t_refi = 4096;
    cfg.mem.dram.t_rfc = 64;
  }
  cfg.instructions_per_core = instructions_per_core;
  if (programs > 0) {
    // Rate-mode hot-tenant skew: program 0's cores get a doubled budget,
    // so they keep issuing after the other tenants retire and the oracle
    // shadows a machine whose cores finish at different times.
    cfg.per_core_instructions.assign(num_cores, instructions_per_core);
    for (std::uint32_t c = 0; c < num_cores; c += programs) {
      cfg.per_core_instructions[c] = 2 * instructions_per_core;
    }
  }
  cfg.seed = seed;
  return cfg;
}

std::vector<FuzzScenario> fuzz_matrix(const FuzzOptions& opts) {
  const std::vector<MatrixCell> cells =
      matrix_cells(opts.dmesh_only, opts.three_level_only);
  std::vector<FuzzScenario> out;
  out.reserve(opts.scenarios);
  for (std::size_t i = 0; i < opts.scenarios; ++i) {
    const MatrixCell& cell = cells[i % cells.size()];
    FuzzScenario sc;
    sc.index = i;
    sc.protocol = cell.protocol;
    sc.topology = cell.topology;
    sc.hierarchy = cell.hierarchy;
    sc.decay = decay::DecayConfig{cell.technique, cell.decay_time, 4};
    sc.num_cores = cell.num_cores;
    sc.programs = cell.programs;
    sc.mem_model = cell.mem_model;
    // Alternate slice pressure between rounds of the matrix (32 KiB or
    // 64 KiB per core, matching the historical 4-core 128K/256K totals).
    const std::uint64_t per_core =
        ((i / cells.size()) % 2 == 0) ? 32 * KiB : 64 * KiB;
    sc.total_l2_bytes = per_core * sc.num_cores;
    if (cell.hierarchy == sim::Hierarchy::kThreeLevel) {
      // A 4x-L2 shared L3: big enough to filter refetches, small enough
      // that bank evictions and L3 decay churn within the run.
      sc.total_l3_bytes = 4 * sc.total_l2_bytes;
    }
    sc.instructions_per_core = opts.instructions_per_core;
    sc.seed = opts.base_seed + i;
    sc.fuzz.num_cores = sc.num_cores;
    sc.fuzz.decay_window = cell.decay_time;
    if (cell.topology == noc::Topology::kDirectoryMesh) {
      // NoC stressors: hot-home-node contention (all cores hammering one
      // directory bank) rebalanced against the private-churn remainder.
      sc.fuzz.w_hot_home = 0.18;
      sc.fuzz.home_tiles = sc.num_cores;
    }
    sc.inject_writeback_loss = opts.inject_writeback_loss;
    out.push_back(std::move(sc));
  }
  return out;
}

namespace {

ScenarioOutcome run_with_factory(const FuzzScenario& sc,
                                 sim::SystemConfig cfg,
                                 const workload::StreamFactory& factory) {
  workload::Benchmark bench;  // names the run; streams come from `factory`
  bench.config.name = sc.label();
  DifferentialChecker checker(cfg.num_cores);
  sim::CmpSystem sys(cfg, bench, factory);
  sys.set_observer(&checker);

  ScenarioOutcome out;
  out.metrics = sys.run();
  sys.check_coherence_invariants();
  out.divergences = checker.divergences();
  out.total_divergences = checker.total_divergences();
  out.loads_checked = checker.loads_checked();
  out.fills_checked = checker.fills_checked();
  out.writes_serialized = checker.writes_serialized();
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    out.owned_downgrades += sys.l2(c).stats().owned_downgrades.value();
  }
  return out;
}

}  // namespace

ScenarioOutcome run_scenario(const FuzzScenario& sc, bool capture) {
  sim::SystemConfig cfg = sc.system_config();
  workload::Trace trace;
  trace.num_cores = cfg.num_cores;

  const workload::FuzzerConfig& fc = sc.fuzz;
  workload::StreamFactory base;
  if (sc.programs == 0) {
    base = [&fc](CoreId core, std::uint64_t seed) {
      return std::make_unique<workload::FuzzerWorkload>(fc, core, seed);
    };
  } else {
    // Multi-program cell: core c runs personality c % programs. Each
    // personality leans on different machinery, and its seed is mixed
    // with the program index so tenants sharing a seed still draw
    // distinct streams.
    const std::uint32_t programs = sc.programs;
    base = [&fc, programs](CoreId core, std::uint64_t seed) {
      const std::uint32_t p = core % programs;
      workload::FuzzerConfig pc = fc;
      pc.name = fc.name + "/p" + std::to_string(p);
      switch (p % 4) {
        case 0:  // the classic hostile blend (the hot tenant)
          break;
        case 1:  // invalidation-heavy: ownership ping-pong through BusRdX
          pc.w_false_share = 0.40;
          pc.w_pingpong = 0.12;
          break;
        case 2:  // decay-edge heavy: long sleeps straddling the window
          pc.w_straddle = 0.22;
          pc.w_chain = 0.06;
          pc.max_gap = 7;
          break;
        default:  // store-heavy churn: dirty evictions and write-backs
          pc.w_pingpong = 0.40;
          pc.store_fraction = 0.7;
          pc.churn_lines = 96;
          break;
      }
      return std::make_unique<workload::FuzzerWorkload>(
          pc, core, seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
    };
  }
  const workload::StreamFactory factory =
      capture ? workload::capture_factory(std::move(base), &trace) : base;

  ScenarioOutcome out = run_with_factory(sc, cfg, factory);
  if (capture) out.trace = std::move(trace);
  return out;
}

ScenarioOutcome replay_scenario(const FuzzScenario& sc,
                                const workload::Trace& trace) {
  sim::SystemConfig cfg = sc.system_config();
  CDSIM_ASSERT_MSG(trace.num_cores == cfg.num_cores,
                   "trace core count does not match the scenario");
  cfg.per_core_instructions = trace.per_core_instructions();
  // Replay is synchronous — the factory dies with this call frame — so
  // alias the caller's trace instead of copying it (the shrinker replays
  // thousands of candidates).
  const auto alias = std::shared_ptr<const workload::Trace>(
      std::shared_ptr<const workload::Trace>(), &trace);
  return run_with_factory(sc, cfg, workload::replay_factory(alias));
}

namespace {

void write_failure_report(const std::string& dir, const FuzzFailure& f) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  const std::string stem =
      dir + "/fuzz_" + std::to_string(f.scenario.index);

  std::string err;
  const bool full_ok = f.trace.save(stem + ".cdt", &err);
  bool min_ok = false;
  if (!f.shrunk.records.empty()) {
    min_ok = f.shrunk.save(stem + ".min.cdt", &err);
  }

  std::ofstream rep(stem + ".report.txt", std::ios::trunc);
  rep << "Differential-verification failure\n"
      << "scenario: " << f.scenario.label() << "\n"
      << "captured trace: " << f.trace.records.size() << " ops"
      << (full_ok ? "" : " (SAVE FAILED)") << "\n"
      << "shrunken trace: " << f.shrunk.records.size() << " ops"
      << (min_ok ? "" : " (not saved)") << "\n"
      << "divergences (first " << f.divergences.size() << "):\n";
  for (const Divergence& d : f.divergences) {
    rep << "  " << to_string(d) << "\n";
  }
  rep << "\nreplay: load the .cdt with workload::Trace::load, rebuild the\n"
         "scenario config (label above), and run verify::replay_scenario.\n";
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& opts) {
  FuzzReport rep;
  for (const FuzzScenario& sc : fuzz_matrix(opts)) {
    ScenarioOutcome out = run_scenario(sc, /*capture=*/true);
    ++rep.scenarios_run;
    rep.loads_checked += out.loads_checked;
    rep.fills_checked += out.fills_checked;
    rep.writes_serialized += out.writes_serialized;
    rep.divergences += out.total_divergences;
    rep.owned_downgrades += out.owned_downgrades;

    if (out.total_divergences != 0 && rep.failures.size() < opts.max_failures) {
      FuzzFailure f;
      f.scenario = sc;
      f.divergences = out.divergences;
      f.trace = std::move(out.trace);
      if (opts.shrink_failures) {
        const auto pred = [&sc](const workload::Trace& t) {
          return replay_scenario(sc, t).total_divergences != 0;
        };
        f.shrunk = shrink_trace(f.trace, pred);
      }
      if (!opts.report_dir.empty()) write_failure_report(opts.report_dir, f);
      rep.failures.push_back(std::move(f));
    }
  }
  return rep;
}

}  // namespace cdsim::verify
