#include "cdsim/verify/shrink.hpp"

#include <algorithm>

#include "cdsim/common/assert.hpp"

namespace cdsim::verify {

namespace {

using workload::Trace;

Trace prefix_of(const Trace& t, std::size_t n) {
  Trace out;
  out.num_cores = t.num_cores;
  out.records.assign(t.records.begin(),
                     t.records.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

Trace without_range(const Trace& t, std::size_t begin, std::size_t count) {
  Trace out;
  out.num_cores = t.num_cores;
  const std::size_t end = std::min(begin + count, t.records.size());
  out.records.reserve(t.records.size() - (end - begin));
  out.records.assign(t.records.begin(),
                     t.records.begin() + static_cast<std::ptrdiff_t>(begin));
  out.records.insert(out.records.end(),
                     t.records.begin() + static_cast<std::ptrdiff_t>(end),
                     t.records.end());
  return out;
}

}  // namespace

Trace shrink_trace(const Trace& failing, const ReproPredicate& still_fails,
                   ShrinkStats* stats, const ShrinkOptions& opts) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st = ShrinkStats{};
  st.initial_ops = failing.records.size();

  auto fails = [&](const Trace& cand) {
    if (st.replays >= opts.max_replays) return false;
    ++st.replays;
    return still_fails(cand);
  };

  if (failing.records.empty() || !fails(failing)) {
    st.final_ops = failing.records.size();
    return failing;  // does not reproduce; nothing to shrink
  }
  st.reproduced = true;
  Trace cur = failing;

  // Phase 1: shortest failing prefix. The predicate is monotone for
  // prefixes in practice (a divergence at record k needs records 0..k);
  // the search result is verified before being adopted, so a non-monotone
  // predicate can only cost effectiveness, never correctness.
  std::size_t lo = 1;
  std::size_t hi = cur.records.size();
  while (lo < hi && st.replays < opts.max_replays) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails(prefix_of(cur, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo < cur.records.size()) {
    Trace cand = prefix_of(cur, lo);
    if (fails(cand)) cur = std::move(cand);
  }

  // Phase 2: delta-debugging chunk removal, chunk size halving to 1.
  std::size_t chunk = std::max<std::size_t>(cur.records.size() / 2, 1);
  while (st.replays < opts.max_replays) {
    bool removed = false;
    for (std::size_t i = 0;
         i < cur.records.size() && st.replays < opts.max_replays;) {
      if (cur.records.size() <= 1) break;
      Trace cand = without_range(cur, i, chunk);
      if (!cand.records.empty() &&
          cand.records.size() < cur.records.size() && fails(cand)) {
        cur = std::move(cand);
        removed = true;  // retry the same index against the shifted tail
      } else {
        i += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed) break;  // 1-minimal
    } else {
      chunk = std::max<std::size_t>(chunk / 2, 1);
    }
  }

  st.final_ops = cur.records.size();
  return cur;
}

}  // namespace cdsim::verify
