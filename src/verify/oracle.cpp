#include "cdsim/verify/oracle.hpp"

#include <sstream>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/host_timer.hpp"

namespace cdsim::verify {

std::string to_string(const Divergence& d) {
  std::ostringstream os;
  os << "core " << d.core << " line 0x" << std::hex << d.line << std::dec
     << " @cycle " << d.cycle << " [" << d.context << "]: observed v"
     << d.observed << ", reference model says v" << d.expected;
  return os.str();
}

DifferentialChecker::DifferentialChecker(std::uint32_t num_cores,
                                         std::size_t max_recorded)
    : num_cores_(num_cores), max_recorded_(max_recorded), copy_(num_cores) {
  CDSIM_ASSERT(num_cores >= 1);
}

Version DifferentialChecker::mem_version(Addr line) const {
  const auto it = mem_.find(line);
  return it == mem_.end() ? 0 : it->second;
}

Version DifferentialChecker::oracle_version(Addr line) const {
  const auto it = oracle_.find(line);
  return it == oracle_.end() ? 0 : it->second;
}

void DifferentialChecker::diverge(CoreId core, Addr line, Cycle now,
                                  Version observed, Version expected,
                                  const char* context) {
  ++total_divergences_;
  if (recorded_.size() < max_recorded_) {
    recorded_.push_back(Divergence{core, line, now, observed, expected,
                                   std::string(context)});
  }
}

void DifferentialChecker::on_load_hit(CoreId core, Addr line, Cycle now,
                                      bool l1) {
  const prof::ScopedPhase prof_scope(prof::Phase::kOracle);
  CDSIM_ASSERT(core < num_cores_);
  ++loads_checked_;
  const auto it = copy_[core].find(line);
  if (it == copy_[core].end()) {
    // A hit on a copy the shadow never saw installed: the hierarchy is
    // reading data whose provenance the protocol cannot explain.
    diverge(core, line, now, /*observed=*/0, oracle_version(line),
            l1 ? "l1-hit-untracked" : "l2-hit-untracked");
    return;
  }
  const Version expected = oracle_version(line);
  if (it->second != expected) {
    diverge(core, line, now, it->second, expected, l1 ? "l1-hit" : "l2-hit");
  }
}

void DifferentialChecker::on_fill(CoreId core, Addr line, Cycle now,
                                  bool from_cache, bool for_write) {
  const prof::ScopedPhase prof_scope(prof::Phase::kOracle);
  CDSIM_ASSERT(core < num_cores_);
  ++fills_checked_;
  Version v;
  bool from_l3 = false;
  if (from_cache) {
    // The supplying owner's flush ran during this grant's address phase,
    // strictly before this install.
    if (!flush_valid_ || flush_line_ != line) {
      diverge(core, line, now, /*observed=*/0, oracle_version(line),
              "fill-no-flush");
      v = mem_version(line);
    } else {
      v = flush_version_;
    }
    flush_valid_ = false;
  } else {
    // Memory-side fill: the shared L3 home bank is looked up before the
    // channel — the shadow mirrors the fabric's lookup order exactly.
    const auto l3 = l3_.find(line);
    from_l3 = l3 != l3_.end();
    v = from_l3 ? l3->second : mem_version(line);
  }
  const Version expected = oracle_version(line);
  if (v != expected) {
    diverge(core, line, now, v, expected,
            from_cache ? (for_write ? "fill-c2c-write" : "fill-c2c")
            : from_l3  ? (for_write ? "fill-l3-write" : "fill-l3")
                       : (for_write ? "fill-mem-write" : "fill-mem"));
  }
  copy_[core][line] = v;
}

void DifferentialChecker::on_write_serialized(CoreId core, Addr line,
                                              Cycle /*now*/) {
  const prof::ScopedPhase prof_scope(prof::Phase::kOracle);
  CDSIM_ASSERT(core < num_cores_);
  ++writes_serialized_;
  const Version v = ++next_version_;
  oracle_[line] = v;
  copy_[core][line] = v;
}

void DifferentialChecker::on_flush_supply(CoreId core, Addr line,
                                          Cycle now, bool memory_update) {
  const prof::ScopedPhase prof_scope(prof::Phase::kOracle);
  CDSIM_ASSERT(core < num_cores_);
  const auto it = copy_[core].find(line);
  Version v = 0;
  if (it == copy_[core].end()) {
    diverge(core, line, now, /*observed=*/0, oracle_version(line),
            "flush-untracked");
  } else {
    v = it->second;
  }
  flush_valid_ = true;
  flush_line_ = line;
  flush_version_ = v;
  if (memory_update) mem_[line] = v;
}

void DifferentialChecker::on_writeback_initiated(CoreId core, Addr line,
                                                 Cycle now) {
  const prof::ScopedPhase prof_scope(prof::Phase::kOracle);
  CDSIM_ASSERT(core < num_cores_);
  const auto it = copy_[core].find(line);
  Version v = 0;
  if (it == copy_[core].end()) {
    diverge(core, line, now, /*observed=*/0, oracle_version(line),
            "writeback-untracked");
  } else {
    v = it->second;
  }
  pending_wb_[{core, line}].push_back(v);
}

void DifferentialChecker::on_writeback_resolved(CoreId core, Addr line,
                                                Cycle now, bool cancelled,
                                                bool to_l3) {
  const prof::ScopedPhase prof_scope(prof::Phase::kOracle);
  CDSIM_ASSERT(core < num_cores_);
  const auto it = pending_wb_.find({core, line});
  if (it == pending_wb_.end() || it->second.empty()) {
    diverge(core, line, now, /*observed=*/0, mem_version(line),
            "writeback-unmatched");
    return;
  }
  const Version v = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) pending_wb_.erase(it);
  // A cancelled write-back means the data already reached memory through a
  // snoop flush; applying it would be wrong only if versions moved on, and
  // dropping it mirrors exactly what the bus did. An accepted one lands in
  // the shared L3 home bank (three-level) or memory (two-level).
  if (cancelled) return;
  if (to_l3) {
    l3_[line] = v;
  } else {
    mem_[line] = v;
  }
}

void DifferentialChecker::on_invalidate(CoreId core, Addr line,
                                        Cycle /*now*/) {
  CDSIM_ASSERT(core < num_cores_);
  copy_[core].erase(line);
}

void DifferentialChecker::on_l3_install(Addr line, Cycle /*now*/) {
  // Clean copy of what the channel just delivered.
  l3_[line] = mem_version(line);
}

void DifferentialChecker::on_l3_writeback(Addr line, Cycle now) {
  const auto it = l3_.find(line);
  if (it == l3_.end()) {
    // The bank claims to push dirty data it never held.
    diverge(kNoCore, line, now, /*observed=*/0, mem_version(line),
            "l3-writeback-untracked");
    return;
  }
  mem_[line] = it->second;
}

void DifferentialChecker::on_l3_invalidate(Addr line, Cycle /*now*/) {
  l3_.erase(line);
}

}  // namespace cdsim::verify
