#include "cdsim/workload/trace_v2.hpp"

#include <limits>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

namespace cdsim::workload {

namespace {

constexpr char kMagic[4] = {'C', 'D', 'T', '2'};
constexpr char kTrailerMagic[4] = {'2', 'T', 'D', 'C'};
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderBytes = 20;
constexpr std::size_t kChunkHeaderBytes = 16;
constexpr std::size_t kTrailerBytes = 20;
/// Sanity cap on chunk_records: bounds the decode buffer a hostile header
/// can make the reader allocate (4M records ~ 96 MB decoded).
constexpr std::uint32_t kMaxChunkRecords = 1u << 22;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::string& in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(in[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(in[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Bounds-checked varint decode; false on truncation or overlong input.
bool get_varint(const std::string& in, std::size_t& off, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (off >= in.size()) return false;
    const auto b = static_cast<unsigned char>(in[off++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return true;
  }
  return false;  // continuation bit past 10 bytes: overlong/corrupt
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ChunkedTraceWriter::ChunkedTraceWriter(const std::string& path,
                                       std::uint32_t num_cores,
                                       std::uint32_t chunk_records)
    : path_(path), num_cores_(num_cores), chunk_records_(chunk_records) {
  if (num_cores_ == 0 || num_cores_ > 255) {
    fail("unserializable num_cores " + std::to_string(num_cores_) +
         " (must be 1..255)");
    return;
  }
  if (chunk_records_ == 0 || chunk_records_ > kMaxChunkRecords) {
    fail("chunk_records " + std::to_string(chunk_records_) +
         " out of range (1.." + std::to_string(kMaxChunkRecords) + ")");
    return;
  }
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    fail("cannot open \"" + path_ + "\" for writing");
    return;
  }
  prev_addr_.assign(num_cores_, 0);
  core_ops_.assign(num_cores_, 0);
  core_instr_.assign(num_cores_, 0);

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  put_u32(header, kVersion);
  put_u32(header, num_cores_);
  put_u32(header, chunk_records_);
  put_u32(header, 0);  // reserved
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!out_.good()) {
    fail("short write to \"" + path_ + "\"");
    return;
  }
  offset_ = header.size();
}

ChunkedTraceWriter::~ChunkedTraceWriter() { finish(); }

void ChunkedTraceWriter::fail(const std::string& msg) {
  if (error_.empty()) error_ = msg;
}

void ChunkedTraceWriter::append(const TraceRecord& rec) {
  if (!ok() || finished_) return;
  if (rec.core >= num_cores_) {
    fail("trace record names core " + std::to_string(rec.core) +
         " outside num_cores " + std::to_string(num_cores_));
    return;
  }
  buf_.push_back(static_cast<char>(rec.core));
  buf_.push_back(static_cast<char>(
      (static_cast<unsigned>(rec.op.type) & 0x3u) |
      (rec.op.dependent ? 0x4u : 0u)));
  buf_.push_back(static_cast<char>(rec.op.chain));
  put_varint(buf_, rec.op.gap);
  put_varint(buf_, zigzag(static_cast<std::int64_t>(
                       rec.op.addr - prev_addr_[rec.core])));
  prev_addr_[rec.core] = rec.op.addr;

  core_ops_[rec.core] += 1;
  core_instr_[rec.core] += static_cast<std::uint64_t>(rec.op.gap) + 1;
  ++total_;
  if (++buf_records_ == chunk_records_) flush_chunk();
}

void ChunkedTraceWriter::flush_chunk() {
  if (!ok() || buf_records_ == 0) return;
  if (buf_.size() > std::numeric_limits<std::uint32_t>::max()) {
    fail("chunk payload overflows u32");  // unreachable under kMaxChunkRecords
    return;
  }
  std::string head;
  put_u32(head, static_cast<std::uint32_t>(buf_.size()));
  put_u32(head, buf_records_);
  put_u64(head, fnv1a(buf_));
  out_.write(head.data(), static_cast<std::streamsize>(head.size()));
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  if (!out_.good()) {
    fail("short write to \"" + path_ + "\"");
    return;
  }
  index_.push_back(
      {offset_, buf_records_, static_cast<std::uint32_t>(buf_.size())});
  offset_ += kChunkHeaderBytes + buf_.size();
  buf_.clear();
  buf_records_ = 0;
  // Chunks are self-contained: delta state restarts so the footer index
  // is a seek table (any chunk decodes without its predecessors).
  prev_addr_.assign(num_cores_, 0);
}

bool ChunkedTraceWriter::finish() {
  if (finished_) return ok();
  finished_ = true;
  if (!ok()) return false;
  flush_chunk();
  if (!ok()) return false;

  std::string body;
  put_u32(body, static_cast<std::uint32_t>(index_.size()));
  for (const ChunkEntry& e : index_) {
    put_u64(body, e.offset);
    put_u32(body, e.records);
    put_u32(body, e.payload_bytes);
  }
  put_u32(body, num_cores_);
  for (std::uint32_t c = 0; c < num_cores_; ++c) {
    put_u64(body, core_ops_[c]);
    put_u64(body, core_instr_[c]);
  }
  put_u64(body, total_);

  std::string tail;
  put_u64(tail, fnv1a(body));
  put_u64(tail, body.size());
  tail.append(kTrailerMagic, sizeof(kTrailerMagic));

  out_.write(body.data(), static_cast<std::streamsize>(body.size()));
  out_.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  out_.flush();
  if (!out_.good()) fail("short write to \"" + path_ + "\"");
  return ok();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

bool ChunkedTraceReader::fail(const std::string& msg) {
  if (error_.empty()) error_ = "\"" + path_ + "\": " + msg;
  return false;
}

std::unique_ptr<ChunkedTraceReader> ChunkedTraceReader::open(
    const std::string& path, std::string* error) {
  auto r = std::unique_ptr<ChunkedTraceReader>(new ChunkedTraceReader());
  r->path_ = path;
  r->in_.open(path, std::ios::binary);
  if (!r->in_) {
    set_error(error, "cannot open \"" + path + "\" for reading");
    return nullptr;
  }
  r->in_.seekg(0, std::ios::end);
  const auto end = r->in_.tellg();
  if (end < 0) {
    set_error(error, "\"" + path + "\": cannot determine file size");
    return nullptr;
  }
  const auto file_bytes = static_cast<std::uint64_t>(end);
  const auto bail = [&](const std::string& msg) {
    set_error(error, "\"" + path + "\": " + msg);
    return nullptr;
  };
  if (file_bytes < kHeaderBytes + kTrailerBytes) {
    return bail("too short to be a .cdt v2 trace");
  }

  const auto read_at = [&r](std::uint64_t off, std::size_t len,
                            std::string& out) {
    out.resize(len);
    r->in_.seekg(static_cast<std::streamoff>(off));
    r->in_.read(out.data(), static_cast<std::streamsize>(len));
    return r->in_.good();
  };

  std::string header;
  if (!read_at(0, kHeaderBytes, header)) return bail("short read (header)");
  if (header.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return bail("not a .cdt v2 trace (bad magic)");
  }
  const std::uint32_t version = get_u32(header, 4);
  if (version != kVersion) {
    return bail("uses .cdt v2 format version " + std::to_string(version) +
                "; this reader supports " + std::to_string(kVersion));
  }
  TraceV2Info& info = r->info_;
  info.num_cores = get_u32(header, 8);
  info.chunk_records = get_u32(header, 12);
  info.file_bytes = file_bytes;
  if (info.num_cores == 0 || info.num_cores > 255) {
    return bail("header carries corrupt num_cores " +
                std::to_string(info.num_cores));
  }
  if (info.chunk_records == 0 || info.chunk_records > kMaxChunkRecords) {
    return bail("header carries corrupt chunk_records " +
                std::to_string(info.chunk_records));
  }

  std::string tail;
  if (!read_at(file_bytes - kTrailerBytes, kTrailerBytes, tail)) {
    return bail("short read (trailer)");
  }
  if (tail.compare(16, sizeof(kTrailerMagic), kTrailerMagic,
                   sizeof(kTrailerMagic)) != 0) {
    return bail("trailer magic missing: truncated or corrupt footer");
  }
  const std::uint64_t body_len = get_u64(tail, 8);
  const std::uint64_t footer_start =
      file_bytes - kTrailerBytes >= body_len
          ? file_bytes - kTrailerBytes - body_len
          : 0;
  if (body_len > file_bytes - kTrailerBytes - kHeaderBytes ||
      footer_start < kHeaderBytes) {
    return bail("footer length field is corrupt");
  }
  std::string body;
  if (!read_at(footer_start, static_cast<std::size_t>(body_len), body)) {
    return bail("short read (footer)");
  }
  if (fnv1a(body) != get_u64(tail, 0)) {
    return bail("footer checksum mismatch: file is corrupt");
  }

  // Parse + cross-validate the footer body.
  std::size_t off = 0;
  const auto need = [&](std::size_t n) { return off + n <= body.size(); };
  if (!need(4)) return bail("footer index is truncated");
  info.chunk_count = get_u32(body, off);
  off += 4;
  if (!need(static_cast<std::size_t>(info.chunk_count) * 16)) {
    return bail("footer index is truncated");
  }
  r->index_.reserve(info.chunk_count);
  std::uint64_t expect_offset = kHeaderBytes;
  std::uint64_t running_records = 0;
  for (std::uint32_t i = 0; i < info.chunk_count; ++i) {
    ChunkEntry e;
    e.offset = get_u64(body, off);
    e.records = get_u32(body, off + 8);
    e.payload_bytes = get_u32(body, off + 12);
    off += 16;
    if (e.offset != expect_offset) {
      return bail("footer index chunk " + std::to_string(i) +
                  " offset is inconsistent");
    }
    if (e.records == 0 || e.records > info.chunk_records) {
      return bail("footer index chunk " + std::to_string(i) +
                  " carries invalid record count");
    }
    if (i + 1 < info.chunk_count && e.records != info.chunk_records) {
      return bail("footer index chunk " + std::to_string(i) +
                  " is short but not final");
    }
    e.first_record = running_records;
    running_records += e.records;
    expect_offset += kChunkHeaderBytes + e.payload_bytes;
    info.payload_bytes += e.payload_bytes;
    r->index_.push_back(e);
  }
  if (expect_offset != footer_start) {
    return bail("chunk data does not span header..footer: truncated or "
                "oversized");
  }
  if (!need(4)) return bail("footer core table is truncated");
  if (get_u32(body, off) != info.num_cores) {
    return bail("footer num_cores disagrees with the header");
  }
  off += 4;
  if (!need(static_cast<std::size_t>(info.num_cores) * 16 + 8)) {
    return bail("footer core table is truncated");
  }
  std::uint64_t core_op_sum = 0;
  for (std::uint32_t c = 0; c < info.num_cores; ++c) {
    info.per_core_ops.push_back(get_u64(body, off));
    info.per_core_instr.push_back(get_u64(body, off + 8));
    core_op_sum += info.per_core_ops.back();
    off += 16;
  }
  info.total_records = get_u64(body, off);
  off += 8;
  if (off != body.size()) return bail("footer carries trailing bytes");
  if (running_records != info.total_records ||
      core_op_sum != info.total_records) {
    return bail("footer record counts are inconsistent");
  }
  return r;
}

std::vector<std::uint64_t> ChunkedTraceReader::per_core_instructions()
    const {
  std::vector<std::uint64_t> budget = info_.per_core_instr;
  for (auto& b : budget) {
    if (b == 0) b = 1;  // idle filler op (see trace_source.hpp)
  }
  return budget;
}

bool ChunkedTraceReader::load_chunk(std::uint32_t idx) {
  CDSIM_ASSERT(idx < index_.size());
  const ChunkEntry& e = index_[idx];
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(e.offset));
  std::string head(kChunkHeaderBytes, '\0');
  in_.read(head.data(), static_cast<std::streamsize>(head.size()));
  if (!in_.good()) return fail("short read (chunk header)");
  const std::uint32_t payload_bytes = get_u32(head, 0);
  const std::uint32_t records = get_u32(head, 4);
  // The chunk header must agree with the footer index — a mismatch means
  // one of the two is corrupt, and there is no way to tell which.
  if (payload_bytes != e.payload_bytes || records != e.records) {
    return fail("chunk " + std::to_string(idx) +
                " header disagrees with the footer index: file is corrupt");
  }
  std::string payload(payload_bytes, '\0');
  in_.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in_.good()) return fail("short read (chunk payload)");
  if (fnv1a(payload) != get_u64(head, 8)) {
    return fail("chunk " + std::to_string(idx) +
                " checksum mismatch: file is corrupt");
  }

  chunk_.clear();
  chunk_.reserve(records);
  std::vector<Addr> prev(info_.num_cores, 0);
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < records; ++i) {
    if (off + 3 > payload.size()) {
      return fail("chunk " + std::to_string(idx) + " payload is truncated");
    }
    TraceRecord rec;
    rec.core = static_cast<unsigned char>(payload[off]);
    const auto meta = static_cast<unsigned char>(payload[off + 1]);
    rec.op.chain = static_cast<unsigned char>(payload[off + 2]);
    off += 3;
    if (rec.core >= info_.num_cores) {
      return fail("chunk " + std::to_string(idx) + " record " +
                  std::to_string(i) + " names an out-of-range core");
    }
    const unsigned type = meta & 0x3u;
    if ((meta & ~0x7u) != 0 ||
        type > static_cast<unsigned>(AccessType::kIFetch)) {
      return fail("chunk " + std::to_string(idx) + " record " +
                  std::to_string(i) + " carries invalid meta bits");
    }
    rec.op.type = static_cast<AccessType>(type);
    rec.op.dependent = (meta & 0x4u) != 0;
    std::uint64_t gap = 0;
    std::uint64_t delta = 0;
    if (!get_varint(payload, off, gap) ||
        gap > std::numeric_limits<std::uint32_t>::max() ||
        !get_varint(payload, off, delta)) {
      return fail("chunk " + std::to_string(idx) + " record " +
                  std::to_string(i) + " has a corrupt varint field");
    }
    rec.op.gap = static_cast<std::uint32_t>(gap);
    rec.op.addr =
        prev[rec.core] + static_cast<std::uint64_t>(unzigzag(delta));
    prev[rec.core] = rec.op.addr;
    chunk_.push_back(rec);
  }
  if (off != payload.size()) {
    return fail("chunk " + std::to_string(idx) +
                " payload carries trailing bytes");
  }
  cur_chunk_ = idx;
  chunk_loaded_ = true;
  return true;
}

bool ChunkedTraceReader::next(TraceRecord& out) {
  if (failed() || pos_ >= info_.total_records) return false;
  if (!chunk_loaded_ || chunk_pos_ >= chunk_.size()) {
    const std::uint32_t idx =
        chunk_loaded_ ? cur_chunk_ + 1 : cur_chunk_;
    if (idx >= index_.size() || !load_chunk(idx)) return false;
    chunk_pos_ = 0;
  }
  out = chunk_[chunk_pos_++];
  ++pos_;
  return true;
}

bool ChunkedTraceReader::seek(std::uint64_t rec) {
  if (failed()) return false;
  if (rec > info_.total_records) return false;
  if (rec == info_.total_records) {  // park at end
    pos_ = rec;
    chunk_loaded_ = !index_.empty();
    cur_chunk_ = index_.empty() ? 0 : static_cast<std::uint32_t>(
                                          index_.size() - 1);
    chunk_pos_ = chunk_.size();
    if (chunk_loaded_ && cur_chunk_ < index_.size()) {
      chunk_pos_ = index_[cur_chunk_].records;
      if (!load_chunk(cur_chunk_)) return false;
      chunk_pos_ = chunk_.size();
    }
    return true;
  }
  // Full chunks all hold chunk_records records, so the owner is a divide.
  const auto idx = static_cast<std::uint32_t>(rec / info_.chunk_records);
  CDSIM_ASSERT(idx < index_.size());
  if (!chunk_loaded_ || cur_chunk_ != idx) {
    if (!load_chunk(idx)) return false;
  }
  chunk_pos_ = static_cast<std::size_t>(rec - index_[idx].first_record);
  pos_ = rec;
  return true;
}

// ---------------------------------------------------------------------------
// Conversions + format sniffing
// ---------------------------------------------------------------------------

bool save_v2(const Trace& trace, const std::string& path, std::string* error,
             std::uint32_t chunk_records) {
  ChunkedTraceWriter w(path, trace.num_cores, chunk_records);
  for (const TraceRecord& r : trace.records) w.append(r);
  if (!w.finish()) {
    set_error(error, w.error());
    return false;
  }
  return true;
}

bool write_v2_from_source(TraceSource& src, const std::string& path,
                          std::string* error, std::uint32_t chunk_records) {
  ChunkedTraceWriter w(path, src.num_cores(), chunk_records);
  TraceRecord rec;
  while (src.next(rec)) w.append(rec);
  if (!w.finish()) {
    set_error(error, w.error());
    return false;
  }
  return true;
}

std::unique_ptr<TraceSource> open_trace_source(const std::string& path,
                                               std::string* error) {
  std::ifstream sniff(path, std::ios::binary);
  if (!sniff) {
    set_error(error, "cannot open \"" + path + "\" for reading");
    return nullptr;
  }
  char magic[4] = {};
  sniff.read(magic, sizeof(magic));
  if (!sniff.good()) {
    set_error(error, "\"" + path + "\" is too short to be a .cdt trace");
    return nullptr;
  }
  sniff.close();
  if (std::string_view(magic, 4) == std::string_view(kMagic, 4)) {
    return ChunkedTraceReader::open(path, error);
  }
  // v1 shim: load whole (v1 files are small — repros and goldens) and
  // stream through the in-memory bridge.
  std::optional<Trace> t = Trace::load(path, error);
  if (!t.has_value()) return nullptr;
  return std::make_unique<InMemoryTraceSource>(
      std::make_shared<const Trace>(std::move(*t)));
}

}  // namespace cdsim::workload
