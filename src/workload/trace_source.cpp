#include "cdsim/workload/trace_source.hpp"

#include <memory>
#include <utility>

namespace cdsim::workload {

StreamFactory capture_factory(StreamFactory inner, TraceSink* sink) {
  CDSIM_ASSERT(sink != nullptr);
  return [inner = std::move(inner), sink](CoreId core,
                                          std::uint64_t seed) -> StreamPtr {
    return std::make_unique<CaptureStream>(inner(core, seed), core, sink);
  };
}

bool ReplayDemux::pop(CoreId core, MemOp& out) {
  CDSIM_ASSERT(core < queues_.size());
  while (queues_[core].empty() && !exhausted_) {
    TraceRecord rec;
    if (!source_->next(rec)) {
      exhausted_ = true;
      break;
    }
    CDSIM_ASSERT_MSG(rec.core < queues_.size(),
                     "trace record names a core outside the trace header");
    queues_[rec.core].push_back(rec.op);
  }
  if (queues_[core].empty()) return false;
  out = queues_[core].front();
  queues_[core].pop_front();
  return true;
}

MemOp DemuxReplayStream::next(Cycle /*now*/) {
  if (!tail_) {
    MemOp op;
    if (demux_->pop(core_, op)) {
      last_ = op;
      have_last_ = true;
      return op;  // the final recorded op leaves here verbatim
    }
    tail_ = true;
    if (!have_last_) last_ = replay_idle_op(core_);
  }
  MemOp op = last_;
  // Tail repeats are re-stamped independent, mirroring ScriptedWorkload's
  // kRepeatLast contract (see scripted.hpp for why a repeated dependent
  // load would break replay determinism). The idle filler's first return
  // counts as its verbatim appearance — it is already independent.
  if (have_last_) op.dependent = false;
  have_last_ = true;
  return op;
}

MemOp FilteredReplayStream::next(Cycle /*now*/) {
  if (!tail_) {
    TraceRecord rec;
    while (!exhausted_) {
      if (!source_->next(rec)) {
        exhausted_ = true;
        break;
      }
      if (rec.core != target_) continue;  // another core's record: discard
      last_ = rec.op;
      have_last_ = true;
      return rec.op;
    }
    tail_ = true;
    if (!have_last_) last_ = replay_idle_op(target_);
  }
  MemOp op = last_;
  if (have_last_) op.dependent = false;  // see DemuxReplayStream::next
  have_last_ = true;
  return op;
}

namespace {

/// Shared-cursor state for replay_factory: the demux of the current pass
/// plus the last core handed out, so a non-ascending request (CmpSystem
/// always asks 0..N-1 in order) re-opens the source for a fresh pass.
struct DemuxPass {
  std::shared_ptr<ReplayDemux> demux;
  CoreId prev_core = 0;
  bool any = false;
};

}  // namespace

StreamFactory replay_factory(TraceOpener open) {
  CDSIM_ASSERT(open != nullptr);
  auto pass = std::make_shared<DemuxPass>();
  return [open = std::move(open), pass](CoreId core,
                                        std::uint64_t /*seed*/) -> StreamPtr {
    if (pass->demux == nullptr || (pass->any && core <= pass->prev_core)) {
      TraceSourcePtr src = open();
      CDSIM_ASSERT_MSG(src != nullptr, "trace opener failed");
      pass->demux = std::make_shared<ReplayDemux>(std::move(src));
    }
    pass->prev_core = core;
    pass->any = true;
    CDSIM_ASSERT_MSG(core < pass->demux->num_cores(),
                     "replay on more cores than the trace recorded");
    return std::make_unique<DemuxReplayStream>(pass->demux, core);
  };
}

StreamFactory streaming_replay_factory(TraceOpener open) {
  CDSIM_ASSERT(open != nullptr);
  return [open = std::move(open)](CoreId core,
                                  std::uint64_t /*seed*/) -> StreamPtr {
    TraceSourcePtr src = open();
    CDSIM_ASSERT_MSG(src != nullptr, "trace opener failed");
    CDSIM_ASSERT_MSG(core < src->num_cores(),
                     "replay on more cores than the trace recorded");
    return std::make_unique<FilteredReplayStream>(std::move(src), core);
  };
}

}  // namespace cdsim::workload
