#include "cdsim/workload/trace_file.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "cdsim/common/assert.hpp"

namespace cdsim::workload {

namespace {

constexpr char kMagic[4] = {'C', 'D', 'T', 'F'};
constexpr std::size_t kHeaderBytes = 20;
constexpr std::size_t kRecordBytes = 16;
constexpr std::size_t kChecksumBytes = 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::string& in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(in[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(in[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t fnv1a(const std::string& data, std::size_t off,
                    std::size_t len) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[off + i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

bool Trace::save(const std::string& path, std::string* error) const {
  if (num_cores == 0 || num_cores > 255) {
    fail(error, "trace has unserializable num_cores " +
                    std::to_string(num_cores) + " (must be 1..255)");
    return false;
  }
  std::string body;
  body.reserve(records.size() * kRecordBytes);
  for (const TraceRecord& r : records) {
    if (r.core >= num_cores) {
      fail(error, "trace record names core " + std::to_string(r.core) +
                      " outside num_cores " + std::to_string(num_cores));
      return false;
    }
    put_u64(body, r.op.addr);
    put_u32(body, r.op.gap);
    body.push_back(static_cast<char>(r.core));
    body.push_back(static_cast<char>(r.op.type));
    body.push_back(static_cast<char>(r.op.dependent ? 1 : 0));
    body.push_back(static_cast<char>(r.op.chain));
  }

  std::string out;
  out.reserve(kHeaderBytes + body.size() + kChecksumBytes);
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, num_cores);
  put_u64(out, records.size());
  out += body;
  put_u64(out, fnv1a(body, 0, body.size()));

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    fail(error, "cannot open \"" + path + "\" for writing");
    return false;
  }
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.flush();
  if (!f.good()) {
    fail(error, "short write to \"" + path + "\"");
    return false;
  }
  return true;
}

std::optional<Trace> Trace::load(const std::string& path,
                                 std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    fail(error, "cannot open \"" + path + "\" for reading");
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string data = ss.str();

  if (data.size() < kHeaderBytes + kChecksumBytes) {
    fail(error, "\"" + path + "\" is too short to be a .cdt trace");
    return std::nullopt;
  }
  if (data.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    fail(error, "\"" + path + "\" is not a .cdt trace (bad magic)");
    return std::nullopt;
  }
  const std::uint32_t version = get_u32(data, 4);
  if (version != kFormatVersion) {
    fail(error, "\"" + path + "\" uses .cdt format version " +
                    std::to_string(version) + "; this reader supports " +
                    std::to_string(kFormatVersion));
    return std::nullopt;
  }
  Trace t;
  t.num_cores = get_u32(data, 8);
  if (t.num_cores == 0 || t.num_cores > 255) {
    fail(error, "\"" + path + "\" header carries corrupt num_cores " +
                    std::to_string(t.num_cores));
    return std::nullopt;
  }
  const std::uint64_t n = get_u64(data, 12);
  // Divide, don't multiply: a crafted record count must not overflow the
  // size arithmetic into "valid" (size was checked >= header+checksum).
  const std::uint64_t max_records =
      (data.size() - kHeaderBytes - kChecksumBytes) / kRecordBytes;
  if (n != max_records ||
      data.size() !=
          kHeaderBytes + n * kRecordBytes + kChecksumBytes) {
    fail(error, "\"" + path + "\" is truncated or oversized: header promises " +
                    std::to_string(n) + " records, file has room for " +
                    std::to_string(max_records));
    return std::nullopt;
  }
  const std::uint64_t want_sum =
      get_u64(data, kHeaderBytes + static_cast<std::size_t>(n) * kRecordBytes);
  const std::uint64_t got_sum =
      fnv1a(data, kHeaderBytes, static_cast<std::size_t>(n) * kRecordBytes);
  if (want_sum != got_sum) {
    fail(error, "\"" + path + "\" checksum mismatch: file is corrupt");
    return std::nullopt;
  }

  t.records.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::size_t off =
        kHeaderBytes + static_cast<std::size_t>(i) * kRecordBytes;
    TraceRecord r;
    r.op.addr = get_u64(data, off);
    r.op.gap = get_u32(data, off + 8);
    r.core = static_cast<unsigned char>(data[off + 12]);
    const auto type = static_cast<unsigned char>(data[off + 13]);
    const auto flags = static_cast<unsigned char>(data[off + 14]);
    r.op.chain = static_cast<unsigned char>(data[off + 15]);
    if (r.core >= t.num_cores) {
      fail(error, "\"" + path + "\" record " + std::to_string(i) +
                      " names core " + std::to_string(r.core) +
                      " outside num_cores " + std::to_string(t.num_cores));
      return std::nullopt;
    }
    if (type > static_cast<unsigned char>(AccessType::kIFetch)) {
      fail(error, "\"" + path + "\" record " + std::to_string(i) +
                      " carries invalid access type " + std::to_string(type));
      return std::nullopt;
    }
    if (flags > 1) {
      fail(error, "\"" + path + "\" record " + std::to_string(i) +
                      " carries unknown flag bits");
      return std::nullopt;
    }
    r.op.type = static_cast<AccessType>(type);
    r.op.dependent = flags != 0;
    t.records.push_back(r);
  }
  return t;
}

std::vector<std::vector<MemOp>> Trace::ops_by_core() const {
  std::vector<std::vector<MemOp>> per(num_cores);
  for (const TraceRecord& r : records) {
    CDSIM_ASSERT(r.core < num_cores);
    per[r.core].push_back(r.op);
  }
  return per;
}

std::vector<std::uint64_t> Trace::per_core_instructions() const {
  std::vector<std::uint64_t> budget(num_cores, 0);
  for (const TraceRecord& r : records) {
    CDSIM_ASSERT(r.core < num_cores);
    budget[r.core] += static_cast<std::uint64_t>(r.op.gap) + 1;
  }
  for (auto& b : budget) {
    if (b == 0) b = 1;  // idle filler op (see replay_factory)
  }
  return budget;
}

StreamFactory replay_factory(std::shared_ptr<const Trace> trace) {
  CDSIM_ASSERT(trace != nullptr);
  return replay_factory(TraceOpener{[trace]() -> TraceSourcePtr {
    return std::make_unique<InMemoryTraceSource>(trace);
  }});
}

StreamFactory replay_factory(const Trace& trace) {
  return replay_factory(std::make_shared<const Trace>(trace));
}

}  // namespace cdsim::workload
