#include "cdsim/workload/fuzzer.hpp"

#include <algorithm>

#include "cdsim/common/assert.hpp"

namespace cdsim::workload {

namespace {

// Address map (region id in bits 40+, per-core partition in bits 32+,
// matching the synthetic generator's layout so diagnostics like
// decay_induced_by_region keep working).
constexpr Addr kPrivateBase = 0x1ull << 40;   // churn + chains (per core)
constexpr Addr kSharedBase = 0x2ull << 40;    // false share / pingpong / straddle

constexpr Addr kFalseShareOffset = 0x000000;
constexpr Addr kPingpongOffset = 0x100000;
constexpr Addr kStraddleOffset = 0x200000;
constexpr Addr kChainOffset = 0x400000;
constexpr Addr kHotHomeOffset = 0x800000;

}  // namespace

FuzzerWorkload::FuzzerWorkload(const FuzzerConfig& cfg, CoreId core,
                               std::uint64_t seed)
    : cfg_(cfg),
      core_(core),
      // Mix the core id into the seed the same way the synthetic generator
      // family does: per-core streams must be decorrelated.
      rng_(SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL *
                              (static_cast<std::uint64_t>(core) + 1)))
               .next()) {
  CDSIM_ASSERT(cfg_.line_bytes >= 8);
  CDSIM_ASSERT(cfg_.num_cores >= 1);
  CDSIM_ASSERT(cfg_.issue_width >= 1);
  CDSIM_ASSERT(cfg_.false_share_lines >= 1);
  CDSIM_ASSERT(cfg_.pingpong_lines >= 1);
  CDSIM_ASSERT(cfg_.straddle_lines >= 1);
  CDSIM_ASSERT(cfg_.chain_lines >= 1);
  CDSIM_ASSERT(cfg_.churn_lines >= 1);
}

MemOp FuzzerWorkload::next(Cycle /*now*/) {
  while (queue_.empty()) refill();
  const MemOp op = queue_.front();
  queue_.pop_front();
  return op;
}

void FuzzerWorkload::push(AccessType type, Addr addr, std::uint32_t gap,
                          bool dependent, std::uint8_t chain) {
  queue_.push_back(MemOp{type, addr, gap, dependent, chain});
}

std::uint32_t FuzzerWorkload::small_gap() {
  return static_cast<std::uint32_t>(
      rng_.below(static_cast<std::uint64_t>(cfg_.max_gap) + 1));
}

void FuzzerWorkload::refill() {
  const double pick = rng_.uniform();
  if (pick < cfg_.w_false_share) {
    burst_false_share();
  } else if (pick < cfg_.w_false_share + cfg_.w_pingpong) {
    burst_pingpong();
  } else if (pick < cfg_.w_false_share + cfg_.w_pingpong + cfg_.w_straddle) {
    burst_straddle();
  } else if (pick < cfg_.w_false_share + cfg_.w_pingpong + cfg_.w_straddle +
                        cfg_.w_chain) {
    burst_chain();
  } else if (pick < cfg_.w_false_share + cfg_.w_pingpong + cfg_.w_straddle +
                        cfg_.w_chain + cfg_.w_hot_home) {
    burst_hot_home();  // unreachable at the default w_hot_home = 0
  } else {
    burst_churn();
  }
}

void FuzzerWorkload::burst_hot_home() {
  // Directory stressor: a pool of lines spaced `home_tiles` lines apart —
  // under line-interleaved homes every one of them serializes through the
  // SAME directory bank, while all cores read/write them concurrently
  // (all-to-all sharing through one mesh hotspot). The offset keeps the
  // pool disjoint from every other shared pool.
  CDSIM_ASSERT_MSG(cfg_.home_tiles >= 1,
                   "w_hot_home > 0 requires home_tiles");
  const Addr stride =
      static_cast<Addr>(cfg_.home_tiles) * cfg_.line_bytes;
  const Addr line = kSharedBase + kHotHomeOffset +
                    rng_.below(cfg_.hot_home_lines) * stride;
  const std::uint64_t n = 2 + rng_.below(4);
  for (std::uint64_t i = 0; i < n; ++i) {
    const bool store = rng_.chance(cfg_.store_fraction);
    // Alternate a same-line and a neighbouring-pool-line touch so the one
    // bank also sees back-to-back transactions for *different* lines.
    const Addr a = (i & 1) == 0
                       ? line
                       : kSharedBase + kHotHomeOffset +
                             rng_.below(cfg_.hot_home_lines) * stride;
    push(store ? AccessType::kStore : AccessType::kLoad, a, small_gap(),
         false, 0);
  }
}

void FuzzerWorkload::burst_false_share() {
  // Every core picks offsets inside the same line: ownership must ping-pong
  // while each core believes it touches "its own" bytes.
  const Addr line = kSharedBase + kFalseShareOffset +
                    rng_.below(cfg_.false_share_lines) * cfg_.line_bytes;
  const Addr mine =
      line + (static_cast<Addr>(core_) * 8) % cfg_.line_bytes;
  const std::uint64_t n = 1 + rng_.below(3);
  for (std::uint64_t i = 0; i < n; ++i) {
    const bool store = rng_.chance(cfg_.store_fraction);
    push(store ? AccessType::kStore : AccessType::kLoad, mine, small_gap(),
         false, 0);
  }
}

void FuzzerWorkload::burst_pingpong() {
  // Store-then-load alternation over a tiny pool all cores fight for:
  // S->M upgrades racing invalidations, and under MOESI a steady source of
  // M->O downgrades (a remote load snooping our fresh store).
  const Addr line = kSharedBase + kPingpongOffset +
                    rng_.below(cfg_.pingpong_lines) * cfg_.line_bytes;
  const std::uint64_t n = 2 + rng_.below(4);
  for (std::uint64_t i = 0; i < n; ++i) {
    const bool store = ((pingpong_step_++ + core_) & 1) == 0;
    push(store ? AccessType::kStore : AccessType::kLoad, line, small_gap(),
         false, 0);
  }
}

void FuzzerWorkload::burst_straddle() {
  // Touch a handful of lines, sleep one large-gap filler, re-touch them:
  // the reuse intervals land just under or just past the decay window, so
  // the re-accesses hit either still-armed lines or lines that were turned
  // off (and, if dirty, written back) — the exact edge §III must keep
  // coherent. Several lines share one sleep so the episode's instruction
  // cost is amortized.
  const std::uint32_t k = std::max<std::uint32_t>(cfg_.straddle_park, 1);
  Addr lines[16];
  const std::uint32_t n = k > 16 ? 16 : k;
  for (std::uint32_t i = 0; i < n; ++i) {
    lines[i] = kSharedBase + kStraddleOffset +
               rng_.below(cfg_.straddle_lines) * cfg_.line_bytes;
    const bool dirty = rng_.chance(cfg_.store_fraction);
    push(dirty ? AccessType::kStore : AccessType::kLoad, lines[i],
         small_gap(), false, 0);
  }

  // Sleep between 0.5x and 1.3x the decay window (in cycles), expressed as
  // a gap in instructions on an otherwise-idle filler access to the
  // private churn region.
  const double frac = 0.5 + 0.8 * rng_.uniform();
  const auto sleep_gap = static_cast<std::uint32_t>(
      frac * static_cast<double>(cfg_.decay_window) *
      static_cast<double>(cfg_.issue_width));
  const Addr filler = kPrivateBase | (static_cast<Addr>(core_) << 32) |
                      ((churn_pos_++ % cfg_.churn_lines) * cfg_.line_bytes);
  push(AccessType::kLoad, filler, sleep_gap, false, 0);

  for (std::uint32_t i = 0; i < n; ++i) {
    const bool re_store = rng_.chance(cfg_.store_fraction);
    push(re_store ? AccessType::kStore : AccessType::kLoad, lines[i],
         small_gap(), false, 0);
  }
}

void FuzzerWorkload::burst_chain() {
  // Pointer chase: each load depends on the previous load of its chain.
  const std::uint8_t chain = next_chain_;
  next_chain_ = static_cast<std::uint8_t>((next_chain_ + 1) % kMaxChains);
  const Addr base = (kPrivateBase | (static_cast<Addr>(core_) << 32)) +
                    kChainOffset;
  const std::uint64_t n = 3 + rng_.below(4);
  for (std::uint64_t i = 0; i < n; ++i) {
    const Addr addr = base + rng_.below(cfg_.chain_lines) * cfg_.line_bytes;
    push(AccessType::kLoad, addr, small_gap(), /*dependent=*/i > 0, chain);
  }
}

void FuzzerWorkload::burst_churn() {
  // Sequential private sweep: fills sets, forces evictions, feeds clean
  // decays, and sprinkles stores/ifetches for access-type coverage.
  const Addr base = kPrivateBase | (static_cast<Addr>(core_) << 32);
  const std::uint64_t n = 2 + rng_.below(6);
  for (std::uint64_t i = 0; i < n; ++i) {
    const Addr addr =
        base + (churn_pos_++ % cfg_.churn_lines) * cfg_.line_bytes;
    AccessType type = AccessType::kLoad;
    if (rng_.chance(cfg_.ifetch_fraction)) {
      type = AccessType::kIFetch;
    } else if (rng_.chance(cfg_.store_fraction * 0.5)) {
      type = AccessType::kStore;
    }
    push(type, addr, small_gap(), false, 0);
  }
}

}  // namespace cdsim::workload
