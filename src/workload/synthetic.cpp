#include "cdsim/workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace cdsim::workload {

namespace {
// Region tags in the physical address space. Bit 40+ selects the region;
// bits 32..39 carry the core id for per-core partitions, so regions can
// never alias across cores or each other.
constexpr Addr kPrivateTag = Addr{1} << 40;
constexpr Addr kSharedRwTag = Addr{2} << 40;
constexpr Addr kSharedRoTag = Addr{3} << 40;
constexpr Addr kStreamTag = Addr{4} << 40;

constexpr Addr core_part(CoreId c) {
  return static_cast<Addr>(c) << 32;
}
}  // namespace

SyntheticWorkload::SyntheticWorkload(const SyntheticConfig& cfg, CoreId core,
                                     std::uint64_t seed)
    : cfg_(cfg),
      core_(core),
      rng_(seed * 0x9e3779b97f4a7c15ULL + core + 1) {
  CDSIM_ASSERT(cfg_.mem_fraction > 0.0 && cfg_.mem_fraction <= 1.0);
  CDSIM_ASSERT(cfg_.p_stream() >= -1e-9);
  CDSIM_ASSERT(cfg_.gen_lines >= 1 && cfg_.num_generations >= 1);
  CDSIM_ASSERT(cfg_.shared_chunk_lines >= 1 &&
               cfg_.shared_chunk_lines <= cfg_.shared_rw_lines);
  CDSIM_ASSERT(cfg_.hot_fraction > 0.0 && cfg_.hot_fraction <= 1.0);
  CDSIM_ASSERT(cfg_.private_burst >= 1 && cfg_.shared_burst >= 1 &&
               cfg_.stream_burst >= 1);

  // Convert op shares to burst-pick probabilities: a region with burst
  // length B delivers B ops per pick, so its pick weight is share / B.
  const double wp = cfg_.p_private / cfg_.private_burst;
  const double wrw = cfg_.p_shared_rw / cfg_.shared_burst;
  const double wro = cfg_.p_shared_ro / cfg_.shared_burst;
  const double ws2 = cfg_.p_stream2 / cfg_.stream2_burst;
  const double ws = cfg_.p_stream() / cfg_.stream_burst;
  const double wsum = wp + wrw + wro + ws2 + ws;
  CDSIM_ASSERT(wsum > 0.0);
  pick_private_ = wp / wsum;
  pick_shared_rw_ = pick_private_ + wrw / wsum;
  pick_shared_ro_ = pick_shared_rw_ + wro / wsum;
  pick_stream2_ = pick_shared_ro_ + ws2 / wsum;
}

Addr SyntheticWorkload::private_base() const noexcept {
  return kPrivateTag | core_part(core_);
}
Addr SyntheticWorkload::shared_rw_base() const noexcept {
  return kSharedRwTag;  // common to all cores: this is where sharing lives
}
Addr SyntheticWorkload::shared_ro_base() const noexcept {
  return kSharedRoTag;
}
Addr SyntheticWorkload::stream_base() const noexcept {
  return kStreamTag | core_part(core_);
}

void SyntheticWorkload::start_private_burst() {
  // Generation migration: after gen_accesses operations, move to fresh
  // lines, leaving the previous generation dead in the cache.
  if (gen_access_count_ >= cfg_.gen_accesses) {
    gen_access_count_ = 0;
    gen_index_ = (gen_index_ + 1) % cfg_.num_generations;
  }

  const std::uint64_t hot_lines = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(cfg_.gen_lines) * cfg_.hot_fraction));
  std::uint64_t line;
  bool hot;
  if (rng_.chance(cfg_.hot_probability)) {
    hot = true;
    line = rng_.below(hot_lines);  // hot subset at the generation's start
  } else {
    // Cold coverage is *sequential*: each cold line is touched by one burst
    // per pass, building dead residency without the random-revisit misses a
    // flat distribution would incur under decay.
    hot = false;
    const std::uint64_t cold_lines =
        std::max<std::uint64_t>(1, cfg_.gen_lines - hot_lines);
    line = hot_lines + (cold_ptr_ % cold_lines);
    ++cold_ptr_;
  }
  const std::uint64_t abs_line = gen_index_ * cfg_.gen_lines + line;
  burst_addr_ = private_base() + abs_line * cfg_.line_bytes;
  burst_remaining_ = cfg_.private_burst;
  // Hot data is actively written; cold data is (almost) read-only, so cold
  // lines die clean and Selective Decay can harvest them.
  burst_store_p_ = hot ? cfg_.store_fraction : cfg_.cold_write_fraction;
  burst_dep_p_ = cfg_.dependent_fraction;
  burst_chain_ = 0;
}

void SyntheticWorkload::start_shared_rw_burst() {
  // Migratory chunks: each core works on a chunk for `shared_run` ops,
  // then rotates. Cores start offset by their id, so over time every chunk
  // passes through every core — producing the invalidation traffic the
  // Protocol technique feeds on.
  const std::uint64_t num_chunks = std::max<std::uint64_t>(
      1, cfg_.shared_rw_lines / cfg_.shared_chunk_lines);
  const std::uint64_t rotation = shared_counter_ / cfg_.shared_run;
  const std::uint64_t chunk = (rotation + core_) % num_chunks;

  const std::uint64_t line =
      chunk * cfg_.shared_chunk_lines + rng_.below(cfg_.shared_chunk_lines);
  burst_addr_ = shared_rw_base() + line * cfg_.line_bytes;
  burst_remaining_ = cfg_.shared_burst;
  burst_store_p_ = cfg_.shared_write_fraction;
  burst_dep_p_ = cfg_.dependent_fraction;
  burst_chain_ = 1;
}

void SyntheticWorkload::start_shared_ro_burst() {
  // Two read-only populations: a hot front (lookup tables, current probe
  // image) re-read uniformly, and a sweep that pages through the whole
  // gallery/volume once per pass.
  std::uint64_t line;
  if (rng_.chance(cfg_.shared_ro_sweep_fraction)) {
    line = ro_sweep_pos_ % cfg_.shared_ro_lines;
    ++ro_sweep_pos_;
  } else {
    const std::uint64_t front =
        std::min(cfg_.shared_ro_hot_lines, cfg_.shared_ro_lines);
    line = rng_.below(std::max<std::uint64_t>(1, front));
  }
  burst_addr_ = shared_ro_base() + line * cfg_.line_bytes;
  burst_remaining_ = cfg_.shared_burst;
  burst_store_p_ = 0.0;
  burst_dep_p_ = cfg_.dependent_fraction;
  burst_chain_ = 2;
}

void SyntheticWorkload::start_stream_burst(Cycle now) {
  // Real-time-paced sweep: the buffer position is a pure function of the
  // cycle count, so the wrap period (reuse interval) is exact regardless
  // of the core's achieved IPC — like frame buffers under a fixed fps.
  const Cycle period =
      std::max<Cycle>(1, cfg_.stream_wrap_cycles / cfg_.stream_lines);
  const std::uint64_t pos = (now / period) % cfg_.stream_lines;
  burst_addr_ = stream_base() + pos * cfg_.line_bytes;
  burst_remaining_ = cfg_.stream_burst;
  burst_store_p_ = cfg_.stream_write_fraction;
  burst_dep_p_ = cfg_.stream_dependent_fraction;
  burst_chain_ = 3;
}

void SyntheticWorkload::start_stream2_burst(Cycle now) {
  const Cycle period =
      std::max<Cycle>(1, cfg_.stream2_wrap_cycles / cfg_.stream2_lines);
  const std::uint64_t pos = (now / period) % cfg_.stream2_lines;
  burst_addr_ = stream_base() +
                (cfg_.stream_lines + pos) * cfg_.line_bytes;
  burst_remaining_ = cfg_.stream2_burst;
  burst_store_p_ = cfg_.stream_write_fraction;
  burst_dep_p_ = cfg_.stream_dependent_fraction;
  burst_chain_ = 4;
}

void SyntheticWorkload::start_new_burst(Cycle now) {
  const double r = rng_.uniform();
  if (r < pick_private_) {
    start_private_burst();
  } else if (r < pick_shared_rw_) {
    start_shared_rw_burst();
  } else if (r < pick_shared_ro_) {
    start_shared_ro_burst();
  } else if (r < pick_stream2_) {
    start_stream2_burst(now);
  } else {
    start_stream_burst(now);
  }
  CDSIM_ASSERT(burst_remaining_ >= 1);
}

MemOp SyntheticWorkload::next(Cycle now) {
  if (burst_remaining_ == 0) start_new_burst(now);
  --burst_remaining_;

  // Region bookkeeping for rotation/migration counts every operation.
  ++gen_access_count_;
  ++shared_counter_;

  MemOp op;
  // Gap: expected non-memory instructions per memory op, dithered so the
  // long-run ratio is exact.
  const double mean_gap = (1.0 - cfg_.mem_fraction) / cfg_.mem_fraction;
  gap_debt_ += mean_gap;
  op.gap = static_cast<std::uint32_t>(gap_debt_);
  gap_debt_ -= op.gap;

  op.addr = burst_addr_;
  const bool is_store = rng_.chance(burst_store_p_);
  op.type = is_store ? AccessType::kStore : AccessType::kLoad;
  op.dependent = !is_store && rng_.chance(burst_dep_p_);
  op.chain = burst_chain_;
  return op;
}

}  // namespace cdsim::workload
