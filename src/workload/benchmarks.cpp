#include "cdsim/workload/benchmarks.hpp"

#include <memory>

#include "cdsim/common/assert.hpp"

// Preset calibration notes
// ------------------------
// Presets are tuned for the platform default of ~4M instructions per core
// (~3M cycles at the observed IPC), so that:
//   * per-core distinct footprint is ~14-20K lines (0.9-1.25 MB): fills a
//     256 KiB slice early (high Protocol occupation at 1 MB total) but only
//     about half of a 2 MiB slice (Protocol occupation ~50% at 8 MB total),
//     reproducing the Fig. 3(a) size trend;
//   * cold/streaming reuse intervals land between 64K and 512K cycles, so
//     the decay-time sweep (Fig. 5b / 6b) separates the techniques;
//   * hot sets are small enough to live in the L1, which makes L2 traffic
//     store-dominated (write-through), as §VI observes.
// `gen_accesses` and `shared_run` count *all* operations of the core (the
// generator increments both on every op), making migration/rotation periods
// deterministic in time regardless of the region mix.

namespace cdsim::workload {

namespace {

SyntheticConfig water_ns() {
  // WATER-NS: small, long-lived molecule arrays per core plus intense
  // migratory sharing of the force arrays. The heavy invalidation traffic
  // is what makes the Protocol technique shine on this benchmark
  // (paper §VI: "it performs better for WATER-NS").
  SyntheticConfig c;
  c.name = "WATER-NS";
  c.mem_fraction = 0.32;
  c.store_fraction = 0.40;
  c.cold_write_fraction = 0.05;
  c.dependent_fraction = 0.45;
  c.p_private = 0.58;
  c.p_shared_rw = 0.28;
  c.p_shared_ro = 0.05;
  c.p_stream2 = 0.02;
  c.private_burst = 4;
  c.shared_burst = 3;
  c.stream_burst = 8;
  c.stream2_burst = 8;
  c.gen_lines = 1024;
  c.num_generations = 18;     // ~18K-line private footprint over the run
  c.gen_accesses = 69000;     // cold set swept about once per generation
  c.hot_fraction = 0.12;
  c.hot_probability = 0.87;
  c.shared_rw_lines = 192;    // migratory force data, 12 chunks of 16
  c.shared_chunk_lines = 16;
  c.shared_run = 5000;        // chunk re-adoption ~300K cycles
  c.shared_write_fraction = 0.50;
  c.shared_ro_lines = 1024;
  c.shared_ro_hot_lines = 256;
  c.shared_ro_sweep_fraction = 0.10;
  c.stream_lines = 128;       // force sweep: dies at 128K/64K decay
  c.stream_wrap_cycles = 192 * 1024;
  c.stream2_lines = 128;      // neighbour-list rebuild: dead under all decays
  c.stream2_wrap_cycles = 768 * 1024;
  c.stream_write_fraction = 0.30;
  return c;
}

SyntheticConfig fmm() {
  // FMM: the largest, most irregular working set of the suite, with stores
  // spread over *all* of it (cold_write_fraction high): dead lines die
  // dirty (M), which is why Selective Decay "is clearly outperformed by
  // Decay" here (§VI) — SD never decays Modified residency.
  SyntheticConfig c;
  c.name = "FMM";
  c.mem_fraction = 0.35;
  c.store_fraction = 0.45;
  c.cold_write_fraction = 0.35;
  c.dependent_fraction = 0.50;
  c.p_private = 0.66;
  c.p_shared_rw = 0.08;
  c.p_shared_ro = 0.13;
  c.p_stream2 = 0.03;
  c.private_burst = 4;
  c.shared_burst = 3;
  c.stream_burst = 10;
  c.stream2_burst = 10;
  c.gen_lines = 2048;
  c.num_generations = 17;     // ~33K-line footprint (largest of the suite)
  c.gen_accesses = 83000;
  c.hot_fraction = 0.06;
  c.hot_probability = 0.85;
  c.shared_rw_lines = 2048;
  c.shared_chunk_lines = 64;
  c.shared_run = 4000;
  c.shared_write_fraction = 0.40;
  c.shared_ro_lines = 2048;
  c.shared_ro_hot_lines = 256;
  c.shared_ro_sweep_fraction = 0.10;
  c.stream_lines = 112;       // tree walk buffer: dies at 128K/64K decay
  c.stream_wrap_cycles = 192 * 1024;
  c.stream2_lines = 128;      // far-field pass: dead under all decays
  c.stream2_wrap_cycles = 768 * 1024;
  c.stream_write_fraction = 0.25;
  return c;
}

SyntheticConfig volrend() {
  // VOLREND: ray casting over a shared read-only volume; read-dominated,
  // with reuse tiers straddling the decay window — which is why a larger
  // decay time "improves significantly IPC for VOLREND" (§VI).
  SyntheticConfig c;
  c.name = "VOLREND";
  c.mem_fraction = 0.30;
  c.store_fraction = 0.20;
  c.cold_write_fraction = 0.02;
  c.dependent_fraction = 0.40;
  c.p_private = 0.42;
  c.p_shared_rw = 0.04;
  c.p_shared_ro = 0.39;
  c.p_stream2 = 0.06;
  c.private_burst = 4;
  c.shared_burst = 3;
  c.stream_burst = 8;
  c.stream2_burst = 8;
  c.gen_lines = 768;
  c.num_generations = 13;
  c.gen_accesses = 92000;
  c.hot_fraction = 0.10;
  c.hot_probability = 0.90;
  c.shared_rw_lines = 1024;
  c.shared_chunk_lines = 32;
  c.shared_run = 5000;
  c.shared_write_fraction = 0.50;
  c.shared_ro_lines = 12288;  // 768 KiB volume: hot front + slow sweep
  c.shared_ro_hot_lines = 384;
  c.shared_ro_sweep_fraction = 0.12;
  c.stream_lines = 224;       // ray buffers: die at 128K/64K decay
  c.stream_wrap_cycles = 192 * 1024;
  c.stream2_lines = 40;       // octree level cache: dies at 64K decay only
  c.stream2_wrap_cycles = 96 * 1024;
  c.stream_write_fraction = 0.20;
  return c;
}

SyntheticConfig mpeg2enc() {
  // mpeg2enc: streaming macroblock sweeps with heavy stores (output
  // bitstream, reconstructed frame) and small private tables. The hot row
  // pool wraps well under 64K cycles, so decay barely hurts it — mpeg2enc
  // shows the lowest IPC loss of the suite (Fig. 6b).
  SyntheticConfig c;
  c.name = "mpeg2enc";
  c.mem_fraction = 0.38;
  c.store_fraction = 0.45;
  c.cold_write_fraction = 0.10;
  c.dependent_fraction = 0.15;
  c.p_private = 0.32;
  c.p_shared_rw = 0.04;
  c.p_shared_ro = 0.12;
  c.p_stream2 = 0.025;
  c.private_burst = 4;
  c.shared_burst = 3;
  c.stream_burst = 14;
  c.stream2_burst = 10;
  c.gen_lines = 640;
  c.num_generations = 24;
  c.gen_accesses = 64000;
  c.hot_fraction = 0.25;
  c.hot_probability = 0.90;
  c.shared_rw_lines = 1024;
  c.shared_chunk_lines = 32;
  c.shared_run = 6000;
  c.shared_write_fraction = 0.35;
  c.shared_ro_lines = 4096;   // reference frame read by all worker cores
  c.shared_ro_hot_lines = 256;
  c.shared_ro_sweep_fraction = 0.10;
  c.stream_lines = 256;       // row pool: wraps in 32K, hot under all decays
  c.stream_wrap_cycles = 32 * 1024;
  c.stream2_lines = 32;       // rate-control stats: die at 64K decay only
  c.stream2_wrap_cycles = 96 * 1024;
  c.stream_write_fraction = 0.55;
  return c;
}

SyntheticConfig mpeg2dec() {
  // mpeg2dec: streaming with moderate stores; the frame-buffer wrap
  // (~105K cycles) dies at the 64K decay only, and a second small pool
  // (~215K) dies at 128K too — the decay-time sensitivity of Fig. 6(b).
  SyntheticConfig c;
  c.name = "mpeg2dec";
  c.mem_fraction = 0.36;
  c.store_fraction = 0.32;
  c.cold_write_fraction = 0.08;
  c.dependent_fraction = 0.20;
  c.p_private = 0.60;
  c.p_shared_rw = 0.02;
  c.p_shared_ro = 0.18;
  c.p_stream2 = 0.04;
  c.private_burst = 4;
  c.shared_burst = 3;
  c.stream_burst = 12;
  c.stream2_burst = 12;
  c.gen_lines = 1024;
  c.num_generations = 19;
  c.gen_accesses = 74500;
  c.hot_fraction = 0.10;
  c.hot_probability = 0.91;
  c.shared_rw_lines = 512;
  c.shared_chunk_lines = 32;
  c.shared_run = 6000;
  c.shared_write_fraction = 0.30;
  c.shared_ro_lines = 6144;
  c.shared_ro_hot_lines = 128;
  c.shared_ro_sweep_fraction = 0.08;
  c.stream_lines = 128;       // frame buffers (fixed fps): die at 64K only
  c.stream_wrap_cycles = 96 * 1024;
  c.stream2_lines = 48;       // GOP reference pool: dies at 128K and 64K
  c.stream2_wrap_cycles = 192 * 1024;
  c.stream_write_fraction = 0.45;
  return c;
}

SyntheticConfig facerec() {
  // facerec: sweeps probe images against a large shared read-only gallery;
  // moderate reuse, light stores — most residency dies clean, which is
  // friendly to both decay flavours.
  SyntheticConfig c;
  c.name = "facerec";
  c.mem_fraction = 0.34;
  c.store_fraction = 0.24;
  c.cold_write_fraction = 0.03;
  c.dependent_fraction = 0.25;
  c.p_private = 0.44;
  c.p_shared_rw = 0.03;
  c.p_shared_ro = 0.41;
  c.p_stream2 = 0.03;
  c.private_burst = 4;
  c.shared_burst = 3;
  c.stream_burst = 10;
  c.stream2_burst = 10;
  c.gen_lines = 768;
  c.num_generations = 21;
  c.gen_accesses = 65000;
  c.hot_fraction = 0.20;
  c.hot_probability = 0.90;
  c.shared_rw_lines = 512;
  c.shared_chunk_lines = 32;
  c.shared_run = 6000;
  c.shared_write_fraction = 0.40;
  c.shared_ro_lines = 10240;  // 640 KiB gallery: hot probe + slow sweep
  c.shared_ro_hot_lines = 512;
  c.shared_ro_sweep_fraction = 0.10;
  c.stream_lines = 64;        // probe-image rows: die at 64K decay only
  c.stream_wrap_cycles = 96 * 1024;
  c.stream2_lines = 48;       // projection workspace: dies at 128K and 64K
  c.stream2_wrap_cycles = 192 * 1024;
  c.stream_write_fraction = 0.30;
  return c;
}

}  // namespace

const std::vector<Benchmark>& benchmark_suite() {
  static const std::vector<Benchmark> suite = {
      {mpeg2enc(), /*scientific=*/false},
      {mpeg2dec(), /*scientific=*/false},
      {facerec(), /*scientific=*/false},
      {water_ns(), /*scientific=*/true},
      {fmm(), /*scientific=*/true},
      {volrend(), /*scientific=*/true},
  };
  return suite;
}

const Benchmark& benchmark_by_name(std::string_view name) {
  for (const Benchmark& b : benchmark_suite()) {
    if (b.config.name == name) return b;
  }
  CDSIM_ASSERT_MSG(false, "unknown benchmark name");
  return benchmark_suite().front();  // unreachable
}

StreamPtr make_stream(const Benchmark& b, CoreId core, std::uint64_t seed) {
  return std::make_unique<SyntheticWorkload>(b.config, core, seed);
}

}  // namespace cdsim::workload
