#include "cdsim/sim/l1_cache.hpp"

#include "cdsim/common/assert.hpp"
#include "cdsim/sim/l2_cache.hpp"

namespace cdsim::sim {

L1Cache::L1Cache(EventQueue& eq, const L1Config& cfg, CoreId core)
    : eq_(eq),
      cfg_(cfg),
      core_(core),
      tags_(cache::Geometry(cfg.size_bytes, cfg.line_bytes, cfg.ways)),
      mshr_(cfg.mshr_entries),
      wb_(cfg.write_buffer_entries) {
  // The core's load bookkeeping relies on completion callbacks never firing
  // inside try_load itself.
  CDSIM_ASSERT_MSG(cfg_.hit_latency >= 1, "L1 hit latency must be >= 1");
}

void L1Cache::notify_resources_freed() {
  if (resources_freed_) resources_freed_();
}

core::LoadOutcome L1Cache::try_load(Addr addr, core::LoadCallback on_done) {
  CDSIM_ASSERT_MSG(l2_ != nullptr, "L1 not connected to an L2");
  const Addr line = tags_.geometry().line_addr(addr);

  if (cache::Line<NoPayload>* ln = tags_.find(line)) {
    // Synchronous hit fast path: no event scheduled, the core accounts the
    // (pipeline-hidden) latency itself.
    stats_.read_hits.inc();
    if (obs_) obs_->on_load_hit(core_, line, eq_.now(), /*l1=*/true);
    tags_.touch(*ln);
    return {.accepted = true, .completed = true, .latency = cfg_.hit_latency};
  }

  // Miss. Merge into an outstanding fill when possible.
  if (cache::MshrEntry* e = mshr_.find(line)) {
    stats_.read_misses.inc();
    mshr_.merge(*e, /*is_write=*/false, std::move(on_done));
    return {.accepted = true};
  }
  if (mshr_.full()) return {};  // core parks; woken on any completion

  stats_.read_misses.inc();
  cache::MshrEntry& e = mshr_.allocate(line, /*is_write=*/false, eq_.now());
  mshr_.merge(e, /*is_write=*/false, std::move(on_done));

  l2_->read(line, [this, line](Cycle done, bool may_cache) {
    // Inclusion guard: install only if the backing L2 line is (still)
    // valid at this very moment — a snoop may have invalidated it between
    // the L2's hit decision and this response.
    if (may_cache && coherence::holds_data(l2_->line_state(line))) {
      // Fill the L1 (allocate on read miss). The victim is clean by
      // construction (write-through), so eviction is a silent drop.
      cache::Line<NoPayload>& slot = tags_.pick_victim(line);
      if (slot.valid) stats_.evictions.inc();
      tags_.install(slot, line, NoPayload{});
    }
    mshr_.complete(line, done);
    notify_resources_freed();
  });
  return {.accepted = true};
}

bool L1Cache::try_store(Addr addr) {
  CDSIM_ASSERT_MSG(l2_ != nullptr, "L1 not connected to an L2");
  const Addr line = tags_.geometry().line_addr(addr);

  // No-write-allocate: update the L1 copy only when present.
  if (cache::Line<NoPayload>* ln = tags_.find(line)) {
    stats_.write_hits.inc();
    tags_.touch(*ln);
  } else {
    stats_.write_misses.inc();
  }

  // Write-through: every store retires through the write buffer.
  if (!wb_.push(line, eq_.now())) return false;  // buffer full: core parks
  drain_write_buffer();
  return true;
}

void L1Cache::drain_write_buffer() {
  while (drains_in_flight_ < cfg_.max_drains_in_flight) {
    const std::optional<Addr> line = wb_.drain_next();
    if (!line.has_value()) return;
    ++drains_in_flight_;
    l2_->write(*line, [this, line = *line](Cycle /*done*/,
                                           bool /*may_cache*/) {
      // The slot is released only once the write reached the L2 — until
      // then pending_write() reports it, which is exactly the Table I gate.
      wb_.drain_done(line);
      --drains_in_flight_;
      notify_resources_freed();
      if (!wb_.empty()) {
        eq_.schedule_in(cfg_.drain_interval,
                        [this] { drain_write_buffer(); });
      }
    });
  }
}

void L1Cache::back_invalidate(Addr line_addr) {
  if (cache::Line<NoPayload>* ln = tags_.find(line_addr)) {
    tags_.invalidate(*ln);
    stats_.backinvals.inc();
  }
}

}  // namespace cdsim::sim
