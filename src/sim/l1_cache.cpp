#include "cdsim/sim/l1_cache.hpp"

#include "cdsim/common/assert.hpp"
#include "cdsim/common/host_timer.hpp"
#include "cdsim/sim/l2_cache.hpp"

namespace cdsim::sim {

namespace {
cache::LevelPolicy l1_policy(const L1Config& cfg) {
  cache::LevelPolicy p;
  p.name = "L1";
  p.allocate_on_write = false;  // no-write-allocate
  p.write_through = true;       // every store drains to the L2
  p.inclusive_above = false;    // nothing above to back-invalidate
  p.coherent = false;           // the L2 snoops on its behalf (inclusion)
  p.write_buffer_entries = cfg.write_buffer_entries;
  return p;
}

cache::LevelTiming l1_timing(const L1Config& cfg) {
  return cache::LevelTiming{cfg.hit_latency, cfg.mshr_entries,
                            /*retry_interval=*/cfg.drain_interval};
}
}  // namespace

L1Cache::L1Cache(EventQueue& eq, const L1Config& cfg, CoreId core,
                 const decay::DecayConfig& dcfg)
    : eq_(eq),
      cfg_(cfg),
      core_(core),
      level_(eq, cache::Geometry(cfg.size_bytes, cfg.line_bytes, cfg.ways),
             l1_timing(cfg), dcfg, l1_policy(cfg),
             [this](Cycle now) { decay_sweep(now); }) {
  // The core's load bookkeeping relies on completion callbacks never firing
  // inside try_load itself (the engine asserts hit_latency >= 1 too).
  CDSIM_ASSERT_MSG(cfg_.hit_latency >= 1, "L1 hit latency must be >= 1");
}

void L1Cache::start() { level_.start(); }
void L1Cache::stop() { level_.stop(); }

void L1Cache::notify_resources_freed() {
  if (resources_freed_) resources_freed_();
}

core::LoadOutcome L1Cache::try_load(Addr addr, core::LoadCallback on_done) {
  CDSIM_ASSERT_MSG(l2_ != nullptr, "L1 not connected to an L2");
  const Addr line = level_.geometry().line_addr(addr);

  if (LineT ln = level_.tags().find(line)) {
    // Synchronous hit fast path: no event scheduled, the core accounts the
    // (pipeline-hidden) latency itself.
    level_.stats().read_hits.inc();
    if (obs_) obs_->on_load_hit(core_, line, eq_.now(), /*l1=*/true);
    level_.touch(ln);
    return {.accepted = true,
            .completed = true,
            .latency = level_.access_latency()};
  }

  // Miss. Merge into an outstanding fill when possible.
  if (cache::MshrEntry* e = level_.mshr().find(line)) {
    level_.note_miss(line, /*is_write=*/false);
    level_.mshr().merge(*e, /*is_write=*/false, std::move(on_done));
    return {.accepted = true};
  }
  if (level_.mshr().full()) return {};  // core parks; woken on completion

  level_.note_miss(line, /*is_write=*/false);
  cache::MshrEntry& e =
      level_.mshr().allocate(line, /*is_write=*/false, eq_.now());
  level_.mshr().merge(e, /*is_write=*/false, std::move(on_done));

  l2_->read(line, [this, line](Cycle done, bool may_cache) {
    // Inclusion guard: install only if the backing L2 line is (still)
    // valid at this very moment — a snoop may have invalidated it between
    // the L2's hit decision and this response.
    if (may_cache && coherence::holds_data(l2_->line_state(line))) {
      // Fill the L1 (allocate on read miss). The victim is clean by
      // construction (write-through), so eviction is a silent drop.
      const LineT slot = level_.tags().pick_victim(line);
      if (slot.valid()) {
        level_.stats().evictions.inc();
        level_.power_off();
      }
      Payload p;
      p.decay.last_touch = eq_.now();
      // Every L1 line is a clean copy: arm as the equivalent of Shared.
      level_.arm_on_entry(p.decay, coherence::MesiState::kShared);
      const LineT installed =
          level_.tags().install(slot, line, std::move(p));
      level_.wheel_register(installed);
      level_.power_on();
      level_.clear_attribution(line);
    }
    level_.mshr().complete(line, done);
    notify_resources_freed();
  });
  return {.accepted = true};
}

bool L1Cache::try_store(Addr addr) {
  CDSIM_ASSERT_MSG(l2_ != nullptr, "L1 not connected to an L2");
  const Addr line = level_.geometry().line_addr(addr);

  // No-write-allocate: update the L1 copy only when present.
  if (LineT ln = level_.tags().find(line)) {
    level_.stats().write_hits.inc();
    level_.touch(ln);
  } else {
    level_.note_miss(line, /*is_write=*/true);
  }

  // Write-through: every store retires through the write buffer.
  if (!level_.write_buffer().push(line, eq_.now())) {
    return false;  // buffer full: core parks
  }
  drain_write_buffer();
  return true;
}

void L1Cache::drain_write_buffer() {
  while (drains_in_flight_ < cfg_.max_drains_in_flight) {
    const std::optional<Addr> line = level_.write_buffer().drain_next();
    if (!line.has_value()) return;
    ++drains_in_flight_;
    const Cycle drain_issued = eq_.now();
    l2_->write(*line, [this, line = *line, drain_issued](Cycle /*done*/,
                                                        bool /*may_cache*/) {
      if (trace_ != nullptr) {
        trace_->span(trace_track_, "wb.drain", drain_issued, eq_.now(),
                     "line", line);
      }
      // The slot is released only once the write reached the L2 — until
      // then pending_write() reports it, which is exactly the Table I gate.
      level_.write_buffer().drain_done(line);
      --drains_in_flight_;
      notify_resources_freed();
      if (!level_.write_buffer().empty()) {
        eq_.schedule_in(cfg_.drain_interval,
                        [this] { drain_write_buffer(); });
      }
    });
  }
}

void L1Cache::back_invalidate(Addr line_addr) {
  if (LineT ln = level_.tags().find(line_addr)) {
    level_.tags().invalidate(ln);
    level_.power_off();
    level_.stats().backinvals.inc();
    if (trace_ != nullptr) {
      trace_->instant(trace_track_, "backinval", eq_.now(), "line",
                      line_addr);
    }
  }
}

// ---------------------------------------------------------------------------
// Decay at level 1
// ---------------------------------------------------------------------------

void L1Cache::decay_sweep(Cycle now) {
  const prof::ScopedPhase prof_scope(prof::Phase::kDecaySweep);
  std::uint64_t swept = 0;
  level_.for_each_expired(now, [&](LineT ln, std::size_t line_index) {
    // Table I at level 1: a line with a buffered store that has not
    // reached the L2 yet must not be switched off (the store would lose
    // its local copy mid-flight). Re-examine next tick.
    if (level_.write_buffer().pending_to(ln.tag())) {
      level_.defer_to_next_tick(ln, line_index, now);
      return;
    }
    // §III legality at a write-through level: every line is clean, so the
    // turn-off is always a silent drop — no transient states, no traffic.
    // Inclusion is top-down only (the L2 keeps its backing copy), and the
    // differential oracle's copy shadow tracks the L2 slice, so an L1
    // turn-off is not a data-movement event.
    level_.stats().decay_turnoffs.inc();
    level_.mark_decayed(ln.tag());
    level_.tags().invalidate(ln);
    level_.power_off();
    ++swept;
  });
  if (trace_ != nullptr && swept > 0) {
    trace_->instant(trace_track_, "decay.sweep", now, "off", swept);
  }
}

}  // namespace cdsim::sim
