#include "cdsim/sim/parallel.hpp"

#include <exception>
#include <set>
#include <utility>

#include "cdsim/common/host_timer.hpp"
#include "cdsim/common/log.hpp"
#include "cdsim/sim/experiment.hpp"

namespace cdsim::sim {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::parallel_for_batched(
    std::size_t n, std::size_t batch,
    const std::function<void(std::size_t)>& fn) {
  if (batch == 0) batch = 1;
  for (std::size_t b = 0; b < n; b += batch) {
    const std::size_t end = b + batch < n ? b + batch : n;
    submit([&fn, b, end] {
      for (std::size_t i = b; i < end; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::scoped_lock lock(mu_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

SweepStats ExperimentRunner::run_grid(
    const std::vector<workload::Benchmark>& benchmarks,
    const std::vector<std::uint64_t>& sizes,
    const std::vector<decay::DecayConfig>& techniques, unsigned workers) {
  struct Job {
    const workload::Benchmark* bench;
    std::uint64_t bytes;
    decay::DecayConfig technique;
    std::string key;
  };

  // Every relative metric divides by the matching baseline run, so the
  // baseline is an implicit member of every technique sweep.
  std::vector<decay::DecayConfig> techs;
  techs.reserve(techniques.size() + 1);
  techs.push_back(baseline_config());
  techs.insert(techs.end(), techniques.begin(), techniques.end());

  SweepStats stats;
  std::vector<Job> jobs;
  std::set<std::string> scheduled;
  {
    std::scoped_lock lock(mu_);
    for (const auto& bench : benchmarks) {
      for (const std::uint64_t bytes : sizes) {
        for (const auto& tech : techs) {
          std::string key = key_for(bench, bytes, tech);
          if (!scheduled.insert(key).second) continue;  // duplicate cell
          if (cache_.find(key) != cache_.end()) {
            ++stats.reused;
            continue;
          }
          jobs.push_back(Job{&bench, bytes, tech, std::move(key)});
        }
      }
    }
  }
  if (jobs.empty()) return stats;

  ThreadPool pool(workers);
  stats.workers = pool.worker_count();
  // Each worker writes only its own slot; merging under the lock happens
  // once, after the barrier, in job order — so the memo map and cache file
  // contents are independent of thread scheduling.
  //
  // Happens-before: each worker's results[i] store -> its --in_flight_
  // under the pool mutex -> parallel_for_batched's wait_idle observing 0 ->
  // the unguarded reads of results[] in the merge loop below. No slot is
  // ever touched by two threads, so the barrier is the only edge needed.
  //
  // Batching: a simulation dwarfs a queue round trip, but a large grid on
  // many workers still pays jobs.size() submit()s of mutex traffic and
  // std::function heap churn. Chunking several configs per pool task keeps
  // ~4 tasks in flight per worker for load balance while amortizing the
  // scheduling overhead. Each config still seeds from its own description
  // alone (simulate() takes only the cell's parameters), so the merge —
  // done after the barrier, in job order — is bit-identical for every
  // batch size, parallel or serial.
  const std::size_t batch_hint = jobs.size() / (std::size_t{4} * stats.workers);
  const std::size_t batch = batch_hint < 1 ? 1 : batch_hint;
  std::vector<RunMetrics> results(jobs.size());
  pool.parallel_for_batched(jobs.size(), batch, [&](std::size_t i) {
    results[i] = simulate(*jobs[i].bench, jobs[i].bytes, jobs[i].technique);
  });

  // Host-profiling aggregation: the phase accumulators are process-global
  // atomics, so worker shards fold in for free — one summary covers the
  // whole grid. Reported through the logger (INFO) so library embedders
  // stay quiet by default and tests can capture it through the sink.
  if (prof::HostProfiler::enabled()) {
    CDSIM_LOG_INFO("run_grid: %zu job(s) on %u worker(s); host-time profile:",
                   jobs.size(), stats.workers);
    prof::HostProfiler::report(stderr);
  }

  // Happens-before: this mu_ acquire pairs with the release in any
  // concurrent run() that inserted one of our cells while we simulated —
  // emplace then fails and we count the cell as reused instead of
  // clobbering it (tests/tsan_grid_test.cpp races exactly this).
  std::scoped_lock lock(mu_);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (cache_.emplace(std::move(jobs[i].key), std::move(results[i])).second) {
      ++stats.simulated;
      dirty_ = true;  // so the destructor retries if this persist fails
      ++unsaved_;
    } else {
      ++stats.reused;  // a concurrent run() beat us to this cell
    }
  }
  persist_disk_cache_locked();
  return stats;
}

}  // namespace cdsim::sim
