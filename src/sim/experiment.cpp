#include "cdsim/sim/experiment.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/rng.hpp"
#include "cdsim/verify/oracle.hpp"
#include "cdsim/workload/benchmarks.hpp"
#include "cdsim/workload/trace_v2.hpp"

namespace cdsim::sim {

namespace {
// Bump when the simulator's calibration changes so stale caches re-run.
// Seeds derive from the version-free configuration description (see
// derive_config_seed), so bumping this never changes simulation results.
// v2: per-configuration seeds (was: fixed 42); sizes keyed in bytes.
// v3: interconnect/directory metrics appended to the line format, and the
//     ledger grew the noc_dyn component.
// v4: per-level attribution (hierarchy tag, total_l3_bytes, and one
//     LevelMetrics block per level) appended; the ledger grew the three
//     L3 components. v3 lines loaded through a shim while v4 was current;
//     that shim is retired (one-back policy).
// v5: memory-side block appended (mem_model tag, DRAM row-buffer /
//     activate / precharge / refresh / write-forward counters, TLB
//     hits/misses) and the ledger grew the two DRAM components. v4 lines
//     load through deserialize_v4: the memory block defaults to a flat
//     channel with zero DRAM/TLB activity — exactly what every v4 run
//     simulated — and the entry is re-keyed to v5.
constexpr const char* kCacheVersion = "v5";
constexpr const char* kShimCacheVersion = "v4";
/// Ledger width when v4 was current (components have only ever been
/// appended, so v4 indices map 1:1 onto today's enum).
constexpr std::size_t kV4LedgerComponents =
    static_cast<std::size_t>(power::Component::kDramActivate);

void serialize_level(std::ostringstream& os, const LevelMetrics& l) {
  os << ' ' << l.accesses << ' ' << l.hits << ' ' << l.misses << ' '
     << l.decay_turnoffs << ' ' << l.decay_induced_misses << ' '
     << l.writebacks << ' ' << l.occupation;
}

bool deserialize_level(std::istringstream& is, LevelMetrics& l) {
  return static_cast<bool>(is >> l.accesses >> l.hits >> l.misses >>
                           l.decay_turnoffs >> l.decay_induced_misses >>
                           l.writebacks >> l.occupation);
}

std::string serialize(const RunMetrics& m) {
  std::ostringstream os;
  os.precision(17);
  os << m.cycles << ' ' << m.instructions << ' ' << m.ipc << ' '
     << m.l2_occupation << ' ' << m.l2_miss_rate << ' ' << m.l2_accesses
     << ' ' << m.l2_misses << ' ' << m.l2_decay_turnoffs << ' '
     << m.l2_decay_induced_misses << ' ' << m.l2_coherence_invals << ' '
     << m.l2_writebacks << ' ' << m.amat << ' ' << m.mem_bandwidth << ' '
     << m.mem_bytes << ' ' << m.energy << ' ' << m.avg_l2_temp_kelvin << ' '
     << m.bus_utilization;
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    os << ' ' << m.ledger.get(static_cast<power::Component>(i));
  }
  os << ' ' << m.topology << ' ' << m.noc_flit_hops << ' '
     << m.noc_avg_packet_latency << ' ' << m.dir_directed_snoops << ' '
     << m.dir_recalls << ' ' << m.dir_deferrals;
  // v4 tail: hierarchy + per-level attribution.
  os << ' ' << m.hierarchy << ' ' << m.total_l3_bytes;
  serialize_level(os, m.l1);
  serialize_level(os, m.l2);
  serialize_level(os, m.l3);
  // v5 tail: memory-side model tag + DRAM/TLB counters.
  os << ' ' << m.mem_model << ' ' << m.dram_row_hits << ' '
     << m.dram_row_misses << ' ' << m.dram_row_conflicts << ' '
     << m.dram_activates << ' ' << m.dram_precharges << ' '
     << m.dram_refreshes << ' ' << m.dram_write_forwards << ' '
     << m.tlb_hits << ' ' << m.tlb_misses;
  return os.str();
}

/// Shared prefix of the v3 and v4 line formats, with a version-dependent
/// ledger width (components are append-only, so old indices stay valid).
bool deserialize_prefix(std::istringstream& is, RunMetrics& m,
                        std::size_t ledger_components) {
  if (!(is >> m.cycles >> m.instructions >> m.ipc >> m.l2_occupation >>
        m.l2_miss_rate >> m.l2_accesses >> m.l2_misses >>
        m.l2_decay_turnoffs >> m.l2_decay_induced_misses >>
        m.l2_coherence_invals >> m.l2_writebacks >> m.amat >>
        m.mem_bandwidth >> m.mem_bytes >> m.energy >>
        m.avg_l2_temp_kelvin >> m.bus_utilization)) {
    return false;
  }
  for (std::size_t i = 0; i < ledger_components; ++i) {
    double v = 0.0;
    if (!(is >> v)) return false;
    m.ledger.add(static_cast<power::Component>(i), v);
  }
  return static_cast<bool>(is >> m.topology >> m.noc_flit_hops >>
                           m.noc_avg_packet_latency >> m.dir_directed_snoops >>
                           m.dir_recalls >> m.dir_deferrals);
}

bool deserialize(const std::string& line, RunMetrics& m) {
  std::istringstream is(line);
  if (!deserialize_prefix(is, m, power::kNumComponents)) return false;
  if (!(is >> m.hierarchy >> m.total_l3_bytes)) return false;
  if (!(deserialize_level(is, m.l1) && deserialize_level(is, m.l2) &&
        deserialize_level(is, m.l3))) {
    return false;
  }
  return static_cast<bool>(
      is >> m.mem_model >> m.dram_row_hits >> m.dram_row_misses >>
      m.dram_row_conflicts >> m.dram_activates >> m.dram_precharges >>
      m.dram_refreshes >> m.dram_write_forwards >> m.tlb_hits >>
      m.tlb_misses);
}

/// The v4 loader shim: parses the old line format and synthesizes the v5
/// memory block. Every v4 run simulated the flat channel, so the defaults
/// (mem_model "flat", zero DRAM/TLB counters) are the true historical
/// values — nothing is approximated.
bool deserialize_v4(const std::string& line, RunMetrics& m) {
  std::istringstream is(line);
  if (!deserialize_prefix(is, m, kV4LedgerComponents)) return false;
  if (!(is >> m.hierarchy >> m.total_l3_bytes)) return false;
  return deserialize_level(is, m.l1) && deserialize_level(is, m.l2) &&
         deserialize_level(is, m.l3);
}

struct ParsedCacheLine {
  std::string key;      ///< Always carries the CURRENT version suffix.
  std::string payload;
  bool shimmed = false;  ///< Loaded through the v3 shim.
};

/// Splits a cache line into (key, payload), accepting the current version
/// and — through the shim — the previous one (the key is upgraded to the
/// current suffix so lookups hit). Malformed and older-version lines yield
/// nullopt. The single gatekeeper for both loading and persisting, so the
/// two can never disagree on which entries are valid.
std::optional<ParsedCacheLine> parse_cache_line(const std::string& line) {
  const auto bar = line.find('|');
  if (bar == std::string::npos) return std::nullopt;
  std::string key = line.substr(0, bar);
  const auto has_suffix = [&key](const std::string& sfx) {
    return key.size() >= sfx.size() &&
           key.compare(key.size() - sfx.size(), sfx.size(), sfx) == 0;
  };
  const std::string current = std::string("/") + kCacheVersion;
  if (has_suffix(current)) {
    return ParsedCacheLine{std::move(key), line.substr(bar + 1), false};
  }
  const std::string shim = std::string("/") + kShimCacheVersion;
  if (has_suffix(shim)) {
    key.replace(key.size() - shim.size(), shim.size(), current);
    return ParsedCacheLine{std::move(key), line.substr(bar + 1), true};
  }
  return std::nullopt;
}
}  // namespace

namespace detail {
std::optional<std::uint64_t> parse_positive_u64(const char* s) noexcept {
  if (s == nullptr || *s == '\0') return std::nullopt;
  // strtoull accepts leading whitespace, '+'/'-' (negatives wrap!), and
  // stops at the first bad character; insist on pure digits instead.
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return std::nullopt;
  }
  errno = 0;
  // The digit loop above already rejected empty strings and any non-digit;
  // only overflow and zero remain.
  const unsigned long long v = std::strtoull(s, nullptr, 10);
  if (errno == ERANGE || v == 0) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}
}  // namespace detail

std::uint64_t derive_config_seed(std::string_view config) noexcept {
  // FNV-1a over the description, whitened through Xoshiro256 so nearby
  // descriptions ("...1/..." vs "...2/...") yield uncorrelated streams.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : config) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  Xoshiro256 rng(h);
  return rng.next();
}

decay::DecayConfig baseline_config() {
  return decay::DecayConfig{decay::Technique::kBaseline, 0, 4};
}

std::vector<decay::DecayConfig> paper_technique_set() {
  using decay::DecayConfig;
  using decay::Technique;
  std::vector<DecayConfig> v;
  v.push_back(DecayConfig{Technique::kProtocol, 0, 4});
  for (const Cycle t : {512u * 1024u, 128u * 1024u, 64u * 1024u}) {
    v.push_back(DecayConfig{Technique::kDecay, t, 4});
  }
  for (const Cycle t : {512u * 1024u, 128u * 1024u, 64u * 1024u}) {
    v.push_back(DecayConfig{Technique::kSelectiveDecay, t, 4});
  }
  return v;
}

std::vector<std::uint64_t> paper_cache_sizes() {
  return {1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB};
}

SystemConfig make_system_config(std::uint64_t total_l2_bytes,
                                const decay::DecayConfig& technique) {
  SystemConfig cfg;
  cfg.num_cores = 4;
  cfg.total_l2_bytes = total_l2_bytes;
  cfg.decay = technique;
  // Protocol/decay configs carry a decay_time even when unused; normalize
  // the protocol/baseline label by zeroing it.
  if (!decay::uses_decay(technique.technique)) cfg.decay.decay_time = 0;
  return cfg;
}

SystemConfig normalized_run_config(const SystemConfig& cfg,
                                   const workload::Benchmark& bench) {
  // Decay sweepers divide by tick count; give non-decay configs a benign
  // decay_time (they never sweep).
  SystemConfig fixed = cfg;
  if (fixed.decay.decay_time == 0) fixed.decay.decay_time = 4;
  // Deterministic per-cell seeding: every (benchmark, size, instructions)
  // cell draws an independent workload stream, mixed with the caller's
  // cfg.seed so explicit seeds still select distinct streams. The
  // technique is deliberately NOT part of the seed: each technique must
  // face the exact same access stream as the baseline it is normalized
  // against, or relative metrics pick up stream-sampling noise. Seeding
  // here (not in ExperimentRunner) keeps the figure benches and the
  // direct run_config callers (ablations, examples, tests) consistent.
  fixed.seed = cfg.seed ^ derive_config_seed(
                              bench.config.name + "/" +
                              std::to_string(cfg.total_l2_bytes) + "/" +
                              std::to_string(cfg.instructions_per_core));
  return fixed;
}

RunMetrics run_config(const SystemConfig& cfg,
                      const workload::Benchmark& bench) {
  const SystemConfig fixed = normalized_run_config(cfg, bench);

  // CDSIM_VERIFY=1: run every configuration against the differential
  // reference-model oracle (see cdsim/verify/oracle.hpp) and abort on the
  // first run whose delivered load values diverge from it. Roughly 2x
  // slower; the null-observer default is bit-identical to not checking.
  const char* venv = std::getenv("CDSIM_VERIFY");
  if (venv != nullptr && *venv != '\0' &&
      std::string_view(venv) != std::string_view("0")) {
    // CDSIM_VERIFY_TRACE=<dir>: additionally stream the verified run's
    // exact op sequence into <dir>/<run>.cdt as chunked .cdt v2. The
    // capture goes straight to disk chunk by chunk (O(chunk) memory — no
    // whole-trace copy in shared state), and replaying the file
    // reproduces the run bit-identically.
    std::unique_ptr<workload::ChunkedTraceWriter> writer;
    workload::StreamFactory factory;  // stays null unless capturing
    const char* tenv = std::getenv("CDSIM_VERIFY_TRACE");
    if (tenv != nullptr && *tenv != '\0') {
      std::error_code ec;
      std::filesystem::create_directories(tenv, ec);  // best effort
      std::string stem;
      for (const char ch : bench.config.name + "_" + fixed.decay.label() +
                               "_s" + std::to_string(fixed.seed)) {
        const auto uc = static_cast<unsigned char>(ch);
        stem.push_back(std::isalnum(uc) != 0 ? ch : '_');
      }
      const std::string path = std::string(tenv) + "/" + stem + ".cdt";
      writer = std::make_unique<workload::ChunkedTraceWriter>(
          path, fixed.num_cores);
      if (!writer->ok()) {
        std::fprintf(stderr,
                     "cdsim: CDSIM_VERIFY_TRACE: %s; capture disabled\n",
                     writer->error().c_str());
        writer.reset();
      } else {
        factory = workload::capture_factory(
            [&bench](CoreId core, std::uint64_t seed) {
              return workload::make_stream(bench, core, seed);
            },
            writer.get());
      }
    }

    CmpSystem sys(fixed, bench, factory);
    verify::DifferentialChecker checker(fixed.num_cores);
    sys.set_observer(&checker);
    RunMetrics m = sys.run();
    if (writer != nullptr && !writer->finish()) {
      std::fprintf(stderr, "cdsim: CDSIM_VERIFY_TRACE: %s\n",
                   writer->error().c_str());
    }
    if (checker.total_divergences() != 0) {
      std::fprintf(stderr,
                   "cdsim: CDSIM_VERIFY: %llu value divergence(s) on %s/%s; "
                   "first: %s\n",
                   static_cast<unsigned long long>(
                       checker.total_divergences()),
                   m.benchmark.c_str(), m.technique.c_str(),
                   verify::to_string(checker.divergences().front()).c_str());
      std::abort();
    }
    return m;
  }
  CmpSystem sys(fixed, bench);
  return sys.run();
}

ExperimentRunner::ExperimentRunner(std::uint64_t instructions_per_core,
                                   std::string cache_path)
    : instructions_(instructions_per_core) {
  if (const char* env = std::getenv("CDSIM_INSTR")) {
    const auto v = detail::parse_positive_u64(env);
    if (!v.has_value()) {
      std::fprintf(stderr,
                   "cdsim: CDSIM_INSTR=\"%s\" is invalid: expected a "
                   "positive 64-bit decimal instruction count\n",
                   env);
      std::abort();
    }
    instructions_ = *v;
  }
  if (instructions_ == 0) instructions_ = SystemConfig{}.instructions_per_core;
  if (!cache_path.empty()) {
    cache_path_ = std::move(cache_path);
  } else if (const char* path = std::getenv("CDSIM_CACHE_FILE")) {
    if (*path == '\0') {
      std::fprintf(stderr,
                   "cdsim: CDSIM_CACHE_FILE is set but empty: expected a "
                   "cache file path (unset it to use the default)\n");
      std::abort();
    }
    cache_path_ = path;
  } else {
    cache_path_ = "cdsim_results.cache";
  }
  load_disk_cache();
}

ExperimentRunner::~ExperimentRunner() {
  std::scoped_lock lock(mu_);
  if (dirty_) persist_disk_cache_locked();
}

void ExperimentRunner::load_disk_cache() {
  std::ifstream in(cache_path_);
  if (!in) return;
  std::string line;
  std::vector<std::pair<std::string, RunMetrics>> shimmed;
  const auto recover_labels = [](const std::string& key, RunMetrics& m) {
    // Recover the labels encoded in the key: bench/size/technique/...
    std::istringstream ks(key);
    std::getline(ks, m.benchmark, '/');
    std::string size_s, tech;
    std::getline(ks, size_s, '/');
    std::getline(ks, tech, '/');
    m.technique = tech;
    m.total_l2_bytes = std::strtoull(size_s.c_str(), nullptr, 10);
  };
  while (std::getline(in, line)) {
    // Other-version entries may deserialize cleanly but describe a
    // different simulator; never let them into the memo. v4 entries load
    // through the shim (key upgraded, new fields defaulted) — but only
    // into gaps: a genuine v5 entry for the same key always wins,
    // regardless of file order (shimmed lines are applied after the loop).
    auto parsed = parse_cache_line(line);
    if (!parsed) continue;
    const std::string& key = parsed->key;
    RunMetrics m;
    if (parsed->shimmed ? !deserialize_v4(parsed->payload, m)
                        : !deserialize(parsed->payload, m)) {
      continue;
    }
    if (parsed->shimmed) {
      shimmed.emplace_back(key, std::move(m));
      continue;
    }
    recover_labels(key, m);
    cache_.emplace(key, std::move(m));
  }
  for (auto& [key, m] : shimmed) {
    recover_labels(key, m);
    cache_.emplace(key, std::move(m));  // fills gaps only: v5 entries win
  }
}

void ExperimentRunner::persist_disk_cache_locked() {
  // Merge whatever is on disk (another process may have added results since
  // we loaded) with the in-memory memo, then replace the file atomically:
  // the rename guarantees readers and concurrent writers only ever see a
  // complete file, never interleaved or half-written lines. Lines from
  // other cache versions are dead weight (lookups can never hit them) and
  // are dropped here.
  //
  // Happens-before (persistence): the caller holds mu_, so this snapshot
  // of cache_ happens-after every insertion it contains. Within one
  // process, two runners sharing a path serialize through their own mu_
  // and write distinct tmp names (pid + counter below); rename() is atomic
  // at the filesystem level, so a concurrent loader in another runner
  // reads either the old complete file or the new complete file — never a
  // torn one (tests/tsan_grid_test.cpp persists two runners into one path
  // concurrently to certify this under TSan).
  std::map<std::string, std::string> lines;
  {
    std::ifstream in(cache_path_);
    std::string line;
    std::vector<std::pair<std::string, std::string>> shimmed;
    while (in && std::getline(in, line)) {
      auto parsed = parse_cache_line(line);
      if (!parsed) continue;
      if (parsed->shimmed) {
        // A v4 line merged from disk: upgrade its payload to the v5
        // format (the key was already upgraded by the parser). Applied
        // after the loop so a genuine v5 line for the same key wins
        // regardless of file order — the same precedence load_disk_cache
        // uses.
        RunMetrics m;
        if (!deserialize_v4(parsed->payload, m)) continue;
        shimmed.emplace_back(std::move(parsed->key), serialize(m));
      } else {
        lines.emplace(std::move(parsed->key), std::move(parsed->payload));
      }
    }
    for (auto& [key, payload] : shimmed) {
      lines.emplace(std::move(key), std::move(payload));
    }
  }
  for (const auto& [key, m] : cache_) lines[key] = serialize(m);

  // pid + process-wide counter: unique even when several runners in one
  // process share a cache path, so writers never interleave in one tmp.
  static std::atomic<unsigned> tmp_counter{0};
  const std::string tmp = cache_path_ + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  bool written = false;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (out) {
      for (const auto& [key, text] : lines) out << key << '|' << text << '\n';
      out.flush();
      written = out.good();
    }
  }
  // Never install a partial file over a good cache (e.g. ENOSPC midway),
  // and keep dirty_/unsaved_ set on any failure so a later attempt retries.
  if (!written || std::rename(tmp.c_str(), cache_path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    // Warn once: an unwritable cache path silently re-simulates the whole
    // grid on every invocation, which is worth a diagnostic line.
    if (!persist_warned_) {
      persist_warned_ = true;
      std::fprintf(stderr,
                   "cdsim: warning: could not persist result cache to "
                   "\"%s\"; results will be re-simulated next run\n",
                   cache_path_.c_str());
    }
    return;
  }
  dirty_ = false;
  unsaved_ = 0;
}

std::string ExperimentRunner::config_desc(
    const workload::Benchmark& bench, std::uint64_t total_l2_bytes,
    const decay::DecayConfig& technique) const {
  // The display label alone is ambiguous: it truncates decay_time to KiB
  // and omits hierarchical_ticks, so distinct configs could share a key
  // (and therefore a cached result and a seed). Keep the label as its own
  // component — load_disk_cache recovers it for figure output — and add
  // the raw decay parameters, normalized the same way make_system_config
  // normalizes them so physically identical configs get identical keys.
  const bool decays = decay::uses_decay(technique.technique);
  // run_config turns a zero decay_time into the benign default 4, so a
  // decaying config written with decay_time 0 simulates identically to one
  // written with 4 — give them the same key.
  const Cycle decay_time =
      decays ? (technique.decay_time == 0 ? 4 : technique.decay_time) : 0;
  const std::uint32_t ticks = decays ? technique.hierarchical_ticks : 0;
  return bench.config.name + "/" + std::to_string(total_l2_bytes) + "/" +
         technique.label() + "/dt" + std::to_string(decay_time) + "t" +
         std::to_string(ticks) + "/" + std::to_string(instructions_);
}

std::string ExperimentRunner::key_for(
    const workload::Benchmark& bench, std::uint64_t total_l2_bytes,
    const decay::DecayConfig& technique) const {
  return config_desc(bench, total_l2_bytes, technique) + "/" + kCacheVersion;
}

RunMetrics ExperimentRunner::simulate(
    const workload::Benchmark& bench, std::uint64_t total_l2_bytes,
    const decay::DecayConfig& technique) const {
  SystemConfig cfg = make_system_config(total_l2_bytes, technique);
  cfg.instructions_per_core = instructions_;
  return run_config(cfg, bench);  // run_config derives the cell seed
}

const RunMetrics& ExperimentRunner::run(const workload::Benchmark& bench,
                                        std::uint64_t total_l2_bytes,
                                        const decay::DecayConfig& technique) {
  const std::string key = key_for(bench, total_l2_bytes, technique);
  {
    std::scoped_lock lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Simulate outside the lock so concurrent callers make progress. Two
  // threads racing on the same key both compute the same (deterministic)
  // result; emplace keeps the first.
  //
  // Happens-before (memoization handoff): the inserting thread releases
  // mu_ after emplace; every later reader acquires mu_ before find() and
  // only dereferences the node after that acquire, so the entry's contents
  // are visible. Returning `it->second` by reference outside the lock is
  // sound because std::map nodes are pointer-stable and a memoized entry
  // is never mutated after insertion.
  RunMetrics m = simulate(bench, total_l2_bytes, technique);
  std::scoped_lock lock(mu_);
  const auto [it, inserted] = cache_.emplace(key, std::move(m));
  if (inserted) {
    dirty_ = true;
    // Throttled incremental persistence: a killed process loses at most
    // the last few results, without rewriting the file per configuration.
    if (++unsaved_ >= kPersistEvery) persist_disk_cache_locked();
  }
  return it->second;
}

RelativeMetrics ExperimentRunner::relative(
    const workload::Benchmark& bench, std::uint64_t total_l2_bytes,
    const decay::DecayConfig& technique) {
  const RunMetrics& base = run(bench, total_l2_bytes, baseline_config());
  const RunMetrics& tech = run(bench, total_l2_bytes, technique);
  return relative_to(base, tech);
}

RelativeMetrics ExperimentRunner::suite_average(
    std::uint64_t total_l2_bytes, const decay::DecayConfig& technique) {
  RelativeMetrics avg;
  avg.occupation = 0.0;
  const auto& suite = workload::benchmark_suite();
  CDSIM_ASSERT(!suite.empty());
  for (const auto& b : suite) {
    const RelativeMetrics r = relative(b, total_l2_bytes, technique);
    avg.occupation += r.occupation;
    avg.miss_rate += r.miss_rate;
    avg.bw_increase += r.bw_increase;
    avg.amat_increase += r.amat_increase;
    avg.energy_reduction += r.energy_reduction;
    avg.ipc_loss += r.ipc_loss;
  }
  const double n = static_cast<double>(suite.size());
  avg.occupation /= n;
  avg.miss_rate /= n;
  avg.bw_increase /= n;
  avg.amat_increase /= n;
  avg.energy_reduction /= n;
  avg.ipc_loss /= n;
  return avg;
}

}  // namespace cdsim::sim
