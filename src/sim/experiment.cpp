#include "cdsim/sim/experiment.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cdsim/common/assert.hpp"

namespace cdsim::sim {

namespace {
// Bump when the simulator's calibration changes so stale caches re-run.
constexpr const char* kCacheVersion = "v1";

std::string serialize(const RunMetrics& m) {
  std::ostringstream os;
  os.precision(17);
  os << m.cycles << ' ' << m.instructions << ' ' << m.ipc << ' '
     << m.l2_occupation << ' ' << m.l2_miss_rate << ' ' << m.l2_accesses
     << ' ' << m.l2_misses << ' ' << m.l2_decay_turnoffs << ' '
     << m.l2_decay_induced_misses << ' ' << m.l2_coherence_invals << ' '
     << m.l2_writebacks << ' ' << m.amat << ' ' << m.mem_bandwidth << ' '
     << m.mem_bytes << ' ' << m.energy << ' ' << m.avg_l2_temp_kelvin << ' '
     << m.bus_utilization;
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    os << ' ' << m.ledger.get(static_cast<power::Component>(i));
  }
  return os.str();
}

bool deserialize(const std::string& line, RunMetrics& m) {
  std::istringstream is(line);
  double ledger_v[power::kNumComponents];
  if (!(is >> m.cycles >> m.instructions >> m.ipc >> m.l2_occupation >>
        m.l2_miss_rate >> m.l2_accesses >> m.l2_misses >>
        m.l2_decay_turnoffs >> m.l2_decay_induced_misses >>
        m.l2_coherence_invals >> m.l2_writebacks >> m.amat >>
        m.mem_bandwidth >> m.mem_bytes >> m.energy >>
        m.avg_l2_temp_kelvin >> m.bus_utilization)) {
    return false;
  }
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    if (!(is >> ledger_v[i])) return false;
    m.ledger.add(static_cast<power::Component>(i), ledger_v[i]);
  }
  return true;
}
}  // namespace

std::vector<decay::DecayConfig> paper_technique_set() {
  using decay::DecayConfig;
  using decay::Technique;
  std::vector<DecayConfig> v;
  v.push_back(DecayConfig{Technique::kProtocol, 0, 4});
  for (const Cycle t : {512u * 1024u, 128u * 1024u, 64u * 1024u}) {
    v.push_back(DecayConfig{Technique::kDecay, t, 4});
  }
  for (const Cycle t : {512u * 1024u, 128u * 1024u, 64u * 1024u}) {
    v.push_back(DecayConfig{Technique::kSelectiveDecay, t, 4});
  }
  return v;
}

std::vector<std::uint64_t> paper_cache_sizes() {
  return {1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB};
}

SystemConfig make_system_config(std::uint64_t total_l2_bytes,
                                const decay::DecayConfig& technique) {
  SystemConfig cfg;
  cfg.num_cores = 4;
  cfg.total_l2_bytes = total_l2_bytes;
  cfg.decay = technique;
  // Protocol/decay configs carry a decay_time even when unused; normalize
  // the protocol/baseline label by zeroing it.
  if (!decay::uses_decay(technique.technique)) cfg.decay.decay_time = 0;
  return cfg;
}

RunMetrics run_config(const SystemConfig& cfg,
                      const workload::Benchmark& bench) {
  // Decay sweepers divide by tick count; give non-decay configs a benign
  // decay_time (they never sweep).
  SystemConfig fixed = cfg;
  if (fixed.decay.decay_time == 0) fixed.decay.decay_time = 4;
  CmpSystem sys(fixed, bench);
  return sys.run();
}

ExperimentRunner::ExperimentRunner(std::uint64_t instructions_per_core)
    : instructions_(instructions_per_core) {
  if (const char* env = std::getenv("CDSIM_INSTR")) {
    const long long v = std::atoll(env);
    if (v > 0) instructions_ = static_cast<std::uint64_t>(v);
  }
  if (instructions_ == 0) instructions_ = SystemConfig{}.instructions_per_core;
  const char* path = std::getenv("CDSIM_CACHE_FILE");
  cache_path_ = path != nullptr ? path : "cdsim_results.cache";
  load_disk_cache();
}

void ExperimentRunner::load_disk_cache() {
  std::ifstream in(cache_path_);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    const auto bar = line.find('|');
    if (bar == std::string::npos) continue;
    RunMetrics m;
    if (!deserialize(line.substr(bar + 1), m)) continue;
    const std::string key = line.substr(0, bar);
    // Recover the labels encoded in the key: bench/size/technique/...
    std::istringstream ks(key);
    std::getline(ks, m.benchmark, '/');
    std::string size_s, tech;
    std::getline(ks, size_s, '/');
    std::getline(ks, tech, '/');
    m.technique = tech;
    m.total_l2_bytes = std::strtoull(size_s.c_str(), nullptr, 10) * MiB;
    cache_.emplace(key, std::move(m));
  }
}

void ExperimentRunner::append_disk_cache(const std::string& key,
                                         const RunMetrics& m) {
  std::ofstream out(cache_path_, std::ios::app);
  if (out) out << key << '|' << serialize(m) << '\n';
}

const RunMetrics& ExperimentRunner::run(const workload::Benchmark& bench,
                                        std::uint64_t total_l2_bytes,
                                        const decay::DecayConfig& technique) {
  const std::string key = bench.config.name + "/" +
                          std::to_string(total_l2_bytes / MiB) + "/" +
                          technique.label() + "/" +
                          std::to_string(instructions_) + "/" + kCacheVersion;
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  SystemConfig cfg = make_system_config(total_l2_bytes, technique);
  cfg.instructions_per_core = instructions_;
  RunMetrics m = run_config(cfg, bench);
  append_disk_cache(key, m);
  return cache_.emplace(key, std::move(m)).first->second;
}

RelativeMetrics ExperimentRunner::relative(
    const workload::Benchmark& bench, std::uint64_t total_l2_bytes,
    const decay::DecayConfig& technique) {
  const decay::DecayConfig baseline{decay::Technique::kBaseline, 0, 4};
  const RunMetrics& base = run(bench, total_l2_bytes, baseline);
  const RunMetrics& tech = run(bench, total_l2_bytes, technique);
  return relative_to(base, tech);
}

RelativeMetrics ExperimentRunner::suite_average(
    std::uint64_t total_l2_bytes, const decay::DecayConfig& technique) {
  RelativeMetrics avg;
  avg.occupation = 0.0;
  const auto& suite = workload::benchmark_suite();
  CDSIM_ASSERT(!suite.empty());
  for (const auto& b : suite) {
    const RelativeMetrics r = relative(b, total_l2_bytes, technique);
    avg.occupation += r.occupation;
    avg.miss_rate += r.miss_rate;
    avg.bw_increase += r.bw_increase;
    avg.amat_increase += r.amat_increase;
    avg.energy_reduction += r.energy_reduction;
    avg.ipc_loss += r.ipc_loss;
  }
  const double n = static_cast<double>(suite.size());
  avg.occupation /= n;
  avg.miss_rate /= n;
  avg.bw_increase /= n;
  avg.amat_increase /= n;
  avg.energy_reduction /= n;
  avg.ipc_loss /= n;
  return avg;
}

}  // namespace cdsim::sim
