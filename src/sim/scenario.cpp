#include "cdsim/sim/scenario.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "cdsim/common/assert.hpp"

namespace cdsim::sim {

std::vector<std::uint64_t> MixPlan::per_core_instructions() const {
  std::vector<std::uint64_t> out;
  out.reserve(assignment.size());
  for (const MixAssignment& a : assignment) out.push_back(a.instructions);
  return out;
}

void MixPlan::apply(SystemConfig& cfg) const {
  CDSIM_ASSERT(!assignment.empty());
  cfg.num_cores = static_cast<std::uint32_t>(assignment.size());
  cfg.per_core_instructions = per_core_instructions();
}

MixPlan plan_mix(std::vector<ProgramSpec> programs,
                 std::uint32_t num_cores) {
  if (programs.empty()) {
    throw std::invalid_argument("plan_mix: a mix needs at least one program");
  }
  if (num_cores == 0) {
    throw std::invalid_argument("plan_mix: a mix needs at least one core");
  }

  // One planning pass per program: core count + recorded budgets. For
  // .cdt v2 these come from the footer, so no chunk is ever decoded here.
  struct ProgramShape {
    std::uint32_t cores = 0;
    std::vector<std::uint64_t> budget;
  };
  std::vector<ProgramShape> shapes;
  shapes.reserve(programs.size());
  for (std::size_t p = 0; p < programs.size(); ++p) {
    ProgramSpec& spec = programs[p];
    if (spec.open == nullptr) {
      throw std::invalid_argument("plan_mix: program \"" + spec.name +
                                  "\" has no opener");
    }
    if (!(spec.weight > 0.0)) {
      throw std::invalid_argument("plan_mix: program \"" + spec.name +
                                  "\" has non-positive weight");
    }
    workload::TraceSourcePtr src = spec.open();
    if (src == nullptr) {
      throw std::invalid_argument("plan_mix: program \"" + spec.name +
                                  "\" failed to open");
    }
    ProgramShape shape;
    shape.cores = src->num_cores();
    shape.budget = src->per_core_instructions();
    CDSIM_ASSERT(shape.cores > 0 && shape.budget.size() == shape.cores);
    shapes.push_back(std::move(shape));
  }

  MixPlan plan;
  plan.assignment.reserve(num_cores);
  const auto progs = static_cast<std::uint32_t>(programs.size());
  for (std::uint32_t c = 0; c < num_cores; ++c) {
    MixAssignment a;
    a.program = c % progs;
    const std::uint32_t round = c / progs;
    const ProgramShape& shape = shapes[a.program];
    a.trace_core = static_cast<CoreId>(round % shape.cores);
    // One multiply, truncating: deterministic across platforms, and a
    // weight of exactly 1.0 reproduces the recorded budget bit-for-bit.
    const double scaled = static_cast<double>(shape.budget[a.trace_core]) *
                          programs[a.program].weight;
    a.instructions = scaled < 1.0 ? 1 : static_cast<std::uint64_t>(scaled);
    plan.assignment.push_back(a);
  }
  for (const ProgramSpec& spec : programs) {
    plan.program_names.push_back(spec.name);
  }

  auto shared =
      std::make_shared<const std::vector<ProgramSpec>>(std::move(programs));
  auto assignment = plan.assignment;
  plan.streams = [shared, assignment = std::move(assignment)](
                     CoreId core, std::uint64_t /*seed*/)
      -> workload::StreamPtr {
    CDSIM_ASSERT_MSG(core < assignment.size(),
                     "mix stream requested for an unplanned core");
    const MixAssignment& a = assignment[core];
    workload::TraceSourcePtr src = (*shared)[a.program].open();
    CDSIM_ASSERT_MSG(src != nullptr, "mix program opener failed mid-run");
    CDSIM_ASSERT_MSG(a.trace_core < src->num_cores(),
                     "mix program shrank between planning and replay");
    return std::make_unique<workload::FilteredReplayStream>(std::move(src),
                                                            a.trace_core);
  };
  return plan;
}

}  // namespace cdsim::sim
